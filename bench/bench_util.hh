/**
 * @file
 * Shared helpers for the figure/table benchmark harnesses: environment
 * knobs for runtime vs fidelity, and small printing utilities.
 *
 * Environment variables:
 *   ISOL_BENCH_QUICK=1   coarser sweeps and shorter runs (CI-friendly)
 *   ISOL_JOBS=N          sweep worker threads (also --jobs N)
 */

#ifndef ISOL_BENCH_BENCH_UTIL_HH
#define ISOL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/strings.hh"
#include "common/types.hh"
#include "isolbench/sweep.hh"

namespace isol::bench
{

/**
 * Parse the shared bench flags (currently `--jobs N`, default: hardware
 * concurrency). Unknown arguments abort with a usage message so typos in
 * long sweep invocations fail fast.
 */
inline void
parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            auto parsed = isol::parseUint(argv[++i]);
            if (!parsed || *parsed == 0) {
                std::fprintf(stderr, "%s: bad --jobs value '%s'\n",
                             argv[0], argv[i]);
                std::exit(2);
            }
            isolbench::sweep::setDefaultJobs(
                static_cast<uint32_t>(*parsed));
        } else {
            std::fprintf(stderr,
                         "%s: unknown argument '%s' (supported: "
                         "--jobs N)\n", argv[0], argv[i]);
            std::exit(2);
        }
    }
}

/**
 * Emit the sweep self-profile: a one-line summary on stderr (stdout
 * stays byte-identical across thread counts) plus BENCH_sweep.json for
 * cross-PR perf tracking.
 */
inline void
emitSweepReport()
{
    std::fprintf(stderr, "%s\n",
                 isolbench::sweep::profileSummaryLine().c_str());
    if (!isolbench::sweep::writeProfileJson("BENCH_sweep.json"))
        std::fprintf(stderr, "warning: could not write BENCH_sweep.json\n");
}

/** True when quick mode is requested via ISOL_BENCH_QUICK. */
inline bool
quickMode()
{
    const char *env = std::getenv("ISOL_BENCH_QUICK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** Print a section banner so bench output is easy to navigate. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Format GiB/s with two decimals. */
inline std::string
gibs(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", value);
    return buf;
}

/** Format microseconds with one decimal. */
inline std::string
micros(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
}

/** Format a ratio as a percentage with one decimal. */
inline std::string
percent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

} // namespace isol::bench

#endif // ISOL_BENCH_BENCH_UTIL_HH
