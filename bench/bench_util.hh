/**
 * @file
 * Shared helpers for the figure/table benchmark harnesses: environment
 * knobs for runtime vs fidelity, supervised-sweep plumbing, and small
 * printing utilities.
 *
 * Environment variables:
 *   ISOL_BENCH_QUICK=1   coarser sweeps and shorter runs (CI-friendly)
 *   ISOL_JOBS=N          sweep worker threads (also --jobs N)
 */

#ifndef ISOL_BENCH_BENCH_UTIL_HH
#define ISOL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.hh"
#include "common/types.hh"
#include "isolbench/supervisor.hh"
#include "isolbench/sweep.hh"
#include "sim/invariants.hh"
#include "workload/adversary.hh"

namespace isol::bench
{

/**
 * Adversarial tenant selected with `--adversary` (kNone when absent).
 * Benches that support a chaos tenant read this after parseArgs().
 */
inline workload::AdversaryKind &
adversaryFlag()
{
    static workload::AdversaryKind kind = workload::AdversaryKind::kNone;
    return kind;
}

/** Convenience reader for adversaryFlag(). */
inline workload::AdversaryKind
adversary()
{
    return adversaryFlag();
}

/**
 * Parse the shared bench flags. Unknown arguments abort with a usage
 * message so typos in long sweep invocations fail fast.
 *
 *   --jobs N              sweep worker threads (default: hw concurrency)
 *   --retries N           extra attempts per failed task (default 0)
 *   --task-timeout-ms N   wall-clock watchdog per task attempt
 *   --task-max-events N   simulated-event budget per task attempt
 *   --resume              skip tasks checkpointed in the run manifest
 *   --only N              run only task index N of every supervised sweep
 *   --manifest PATH       manifest file (default <prog>.manifest.json)
 *   --adversary NAME      add a misbehaving tenant (queue-flood, gc-storm,
 *                         square-wave, flush-storm, slow-drain) in benches
 *                         that support one
 *   --check-invariants    enable the runtime invariant checker in every
 *                         scenario of this process
 */
inline void
parseArgs(int argc, char **argv)
{
    namespace supervisor = isolbench::supervisor;
    supervisor::Options opt = supervisor::options();
    if (opt.manifest_path.empty()) {
        std::string prog = argv[0];
        size_t slash = prog.find_last_of('/');
        if (slash != std::string::npos)
            prog = prog.substr(slash + 1);
        opt.manifest_path = prog + ".manifest.json";
    }

    auto uintValue = [argv](int argc_, char **argv_, int &i) {
        auto parsed = i + 1 < argc_
                          ? isol::parseUint(argv_[++i])
                          : std::optional<uint64_t>{};
        if (!parsed) {
            std::fprintf(stderr, "%s: bad or missing value for '%s'\n",
                         argv[0], argv_[i]);
            std::exit(2);
        }
        return *parsed;
    };

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            uint64_t jobs = uintValue(argc, argv, i);
            if (jobs == 0) {
                std::fprintf(stderr, "%s: bad --jobs value\n", argv[0]);
                std::exit(2);
            }
            isolbench::sweep::setDefaultJobs(
                static_cast<uint32_t>(jobs));
        } else if (std::strcmp(argv[i], "--retries") == 0) {
            opt.retries =
                static_cast<uint32_t>(uintValue(argc, argv, i));
        } else if (std::strcmp(argv[i], "--task-timeout-ms") == 0) {
            opt.task_timeout_ms =
                static_cast<double>(uintValue(argc, argv, i));
        } else if (std::strcmp(argv[i], "--task-max-events") == 0) {
            opt.max_task_events = uintValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            opt.resume = true;
        } else if (std::strcmp(argv[i], "--only") == 0) {
            opt.only = uintValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--manifest") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: missing value for '--manifest'\n",
                             argv[0]);
                std::exit(2);
            }
            opt.manifest_path = argv[++i];
        } else if (std::strcmp(argv[i], "--adversary") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: missing value for '--adversary'\n",
                             argv[0]);
                std::exit(2);
            }
            auto kind = workload::parseAdversary(argv[++i]);
            if (!kind) {
                std::fprintf(stderr,
                             "%s: unknown adversary '%s' (supported:"
                             " queue-flood gc-storm square-wave"
                             " flush-storm slow-drain none)\n",
                             argv[0], argv[i]);
                std::exit(2);
            }
            adversaryFlag() = *kind;
        } else if (std::strcmp(argv[i], "--check-invariants") == 0) {
            sim::setCheckInvariantsDefault(true);
        } else {
            std::fprintf(stderr,
                         "%s: unknown argument '%s' (supported: --jobs N"
                         " --retries N --task-timeout-ms N"
                         " --task-max-events N --resume --only N"
                         " --manifest PATH --adversary NAME"
                         " --check-invariants)\n", argv[0], argv[i]);
            std::exit(2);
        }
    }

    supervisor::setOptions(opt);
    if (opt.resume)
        supervisor::loadManifestFile(opt.manifest_path);
}

/**
 * Run a supervised, checkpointed sweep of payload-producing tasks and
 * return the payloads (task order; "" where a task finally failed or
 * was skipped via --only). Task failures surface in the failure table
 * printed by emitSweepReport(), not as exceptions, so one bad grid
 * point cannot take down a whole figure.
 */
inline std::vector<std::string>
supervisedSweep(const std::string &name,
                const std::vector<isolbench::supervisor::Task> &tasks)
{
    std::vector<std::string> payloads;
    isolbench::supervisor::run(name, tasks, payloads);
    return payloads;
}

/** Join table cells into a checkpointable payload row. */
inline std::string
joinRow(const std::vector<std::string> &cells)
{
    std::string out;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out += '\t';
        out += cells[i];
    }
    return out;
}

/** Split a payload row back into table cells. */
inline std::vector<std::string>
splitRow(const std::string &payload)
{
    return isol::splitString(payload, '\t');
}

/**
 * Encode a double as a hexfloat so a checkpointed payload round-trips
 * bit-exactly through the manifest (decimal formatting would not).
 */
inline std::string
hexDouble(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", value);
    return buf;
}

/** Decode a hexDouble() payload; 0.0 for "" (failed/skipped task). */
inline double
parseHexDouble(const std::string &text)
{
    if (text.empty())
        return 0.0;
    return std::strtod(text.c_str(), nullptr);
}

/**
 * Emit the sweep self-profile and the supervisor failure table: a
 * summary on stderr (stdout stays byte-identical across thread counts
 * and across --resume) plus BENCH_sweep.json for cross-PR perf
 * tracking.
 */
inline void
emitSweepReport()
{
    std::fprintf(stderr, "%s\n",
                 isolbench::sweep::profileSummaryLine().c_str());
    std::fputs(isolbench::supervisor::failureTable().c_str(), stderr);
    if (!isolbench::sweep::writeProfileJson("BENCH_sweep.json"))
        std::fprintf(stderr, "warning: could not write BENCH_sweep.json\n");
}

/** True when quick mode is requested via ISOL_BENCH_QUICK. */
inline bool
quickMode()
{
    const char *env = std::getenv("ISOL_BENCH_QUICK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** Print a section banner so bench output is easy to navigate. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Format GiB/s with two decimals. */
inline std::string
gibs(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", value);
    return buf;
}

/** Format microseconds with one decimal. */
inline std::string
micros(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
}

/** Format a ratio as a percentage with one decimal. */
inline std::string
percent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

} // namespace isol::bench

#endif // ISOL_BENCH_BENCH_UTIL_HH
