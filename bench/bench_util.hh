/**
 * @file
 * Shared helpers for the figure/table benchmark harnesses: environment
 * knobs for runtime vs fidelity, and small printing utilities.
 *
 * Environment variables:
 *   ISOL_BENCH_QUICK=1   coarser sweeps and shorter runs (CI-friendly)
 */

#ifndef ISOL_BENCH_BENCH_UTIL_HH
#define ISOL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/types.hh"

namespace isol::bench
{

/** True when quick mode is requested via ISOL_BENCH_QUICK. */
inline bool
quickMode()
{
    const char *env = std::getenv("ISOL_BENCH_QUICK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** Print a section banner so bench output is easy to navigate. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Format GiB/s with two decimals. */
inline std::string
gibs(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", value);
    return buf;
}

/** Format microseconds with one decimal. */
inline std::string
micros(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
}

/** Format a ratio as a percentage with one decimal. */
inline std::string
percent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

} // namespace isol::bench

#endif // ISOL_BENCH_BENCH_UTIL_HH
