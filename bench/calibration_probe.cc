/**
 * @file
 * Calibration probe: prints the simulator's key operating points next to
 * the paper's measured values so model constants can be tuned. Not a
 * paper figure itself — a development and regression tool.
 */

#include <cstdio>

#include "isolbench/d1_overhead.hh"
#include "isolbench/scenario.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

int
main()
{
    stats::Table table({"metric", "paper", "simulated"});
    D1Options opts;

    // --- LC-app latency (Fig. 3) ---
    auto none1 = runLcScaling(Knob::kNone, 1, opts);
    auto mq1 = runLcScaling(Knob::kMqDeadline, 1, opts);
    auto bfq1 = runLcScaling(Knob::kBfq, 1, opts);
    table.addRow({"LC x1 none P99 (us)", "~90-120",
                  std::to_string(none1.p99_us)});
    table.addRow({"LC x1 mq-dl P99 delta", "+7.55%",
                  std::to_string((mq1.p99_us / none1.p99_us - 1) * 100) +
                      "%"});
    table.addRow({"LC x1 bfq P99 delta", "+18.87%",
                  std::to_string((bfq1.p99_us / none1.p99_us - 1) * 100) +
                      "%"});

    auto none16 = runLcScaling(Knob::kNone, 16, opts);
    auto cost16 = runLcScaling(Knob::kIoCost, 16, opts);
    table.addRow({"LC x16 none P99 (us)", "181.2",
                  std::to_string(none16.p99_us)});
    table.addRow({"LC x16 io.cost P99 (us)", "268.3",
                  std::to_string(cost16.p99_us)});

    auto none8 = runLcScaling(Knob::kNone, 8, opts);
    auto cost8 = runLcScaling(Knob::kIoCost, 8, opts);
    table.addRow({"LC x8 none CPU", "78.22%",
                  std::to_string(none8.cpu_util * 100) + "%"});
    table.addRow({"LC x8 io.cost CPU", "80.27%",
                  std::to_string(cost8.cpu_util * 100) + "%"});

    // --- Batch bandwidth (Fig. 4) ---
    auto bnone1 = runBatchScaling(Knob::kNone, 17, 1, opts);
    auto bmq1 = runBatchScaling(Knob::kMqDeadline, 17, 1, opts);
    auto bbfq1 = runBatchScaling(Knob::kBfq, 17, 1, opts);
    table.addRow({"batch x17 1ssd none GiB/s", "2.94",
                  std::to_string(bnone1.agg_gibs)});
    table.addRow({"batch x17 1ssd mq-dl GiB/s", "1.81",
                  std::to_string(bmq1.agg_gibs)});
    table.addRow({"batch x17 1ssd bfq GiB/s", "0.69",
                  std::to_string(bbfq1.agg_gibs)});

    auto bnone7 = runBatchScaling(Knob::kNone, 17, 7, opts);
    auto bmq7 = runBatchScaling(Knob::kMqDeadline, 17, 7, opts);
    auto bbfq7 = runBatchScaling(Knob::kBfq, 17, 7, opts);
    auto bmax7 = runBatchScaling(Knob::kIoMax, 17, 7, opts);
    auto bcost7 = runBatchScaling(Knob::kIoCost, 17, 7, opts);
    table.addRow({"batch x17 7ssd none GiB/s", "9.87",
                  std::to_string(bnone7.agg_gibs)});
    table.addRow({"batch x17 7ssd mq-dl GiB/s", "4.24",
                  std::to_string(bmq7.agg_gibs)});
    table.addRow({"batch x17 7ssd bfq GiB/s", "2.14",
                  std::to_string(bbfq7.agg_gibs)});
    table.addRow({"batch x17 7ssd io.max GiB/s", "8.94",
                  std::to_string(bmax7.agg_gibs)});
    table.addRow({"batch x17 7ssd io.cost GiB/s", "9.32",
                  std::to_string(bcost7.agg_gibs)});

    std::fputs(table.toAligned().c_str(), stdout);
    return 0;
}
