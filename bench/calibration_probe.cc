/**
 * @file
 * Calibration probe: prints the simulator's key operating points next to
 * the paper's measured values so model constants can be tuned. Not a
 * paper figure itself — a development and regression tool.
 *
 * Every probe point is an independent simulation; they all fan out
 * across the sweep pool and the table is printed from the collected
 * slots in a fixed order.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hh"
#include "isolbench/d1_overhead.hh"
#include "isolbench/scenario.hh"
#include "isolbench/sweep.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    stats::Table table({"metric", "paper", "simulated"});
    D1Options opts;

    // Every probe is a supervised task whose payload is the measured
    // double as a hexfloat, so checkpointed values round-trip bit-exact
    // through the manifest and a --resume prints the same table.
    auto lcP99 = [&opts](Knob knob, uint32_t apps) {
        // isol: parallel
        return [&opts, knob, apps]() -> std::string {
            return bench::hexDouble(runLcScaling(knob, apps, opts).p99_us);
        };
    };
    auto lcCpu = [&opts](Knob knob, uint32_t apps) {
        // isol: parallel
        return [&opts, knob, apps]() -> std::string {
            return bench::hexDouble(
                runLcScaling(knob, apps, opts).cpu_util);
        };
    };
    auto batchGibs = [&opts](Knob knob, uint32_t apps, uint32_t ssds) {
        // isol: parallel
        return [&opts, knob, apps, ssds]() -> std::string {
            return bench::hexDouble(
                runBatchScaling(knob, apps, ssds, opts).agg_gibs);
        };
    };
    std::vector<supervisor::Task> tasks = {
        lcP99(Knob::kNone, 1),
        lcP99(Knob::kMqDeadline, 1),
        lcP99(Knob::kBfq, 1),
        lcP99(Knob::kNone, 16),
        lcP99(Knob::kIoCost, 16),
        lcCpu(Knob::kNone, 8),
        lcCpu(Knob::kIoCost, 8),
        batchGibs(Knob::kNone, 17, 1),
        batchGibs(Knob::kMqDeadline, 17, 1),
        batchGibs(Knob::kBfq, 17, 1),
        batchGibs(Knob::kNone, 17, 7),
        batchGibs(Knob::kMqDeadline, 17, 7),
        batchGibs(Knob::kBfq, 17, 7),
        batchGibs(Knob::kIoMax, 17, 7),
        batchGibs(Knob::kIoCost, 17, 7),
    };
    std::vector<std::string> payloads =
        bench::supervisedSweep("calibration", tasks);

    LcScalingResult none1, mq1, bfq1, none16, cost16, none8, cost8;
    BatchScalingResult bnone1, bmq1, bbfq1;
    BatchScalingResult bnone7, bmq7, bbfq7, bmax7, bcost7;
    none1.p99_us = bench::parseHexDouble(payloads[0]);
    mq1.p99_us = bench::parseHexDouble(payloads[1]);
    bfq1.p99_us = bench::parseHexDouble(payloads[2]);
    none16.p99_us = bench::parseHexDouble(payloads[3]);
    cost16.p99_us = bench::parseHexDouble(payloads[4]);
    none8.cpu_util = bench::parseHexDouble(payloads[5]);
    cost8.cpu_util = bench::parseHexDouble(payloads[6]);
    bnone1.agg_gibs = bench::parseHexDouble(payloads[7]);
    bmq1.agg_gibs = bench::parseHexDouble(payloads[8]);
    bbfq1.agg_gibs = bench::parseHexDouble(payloads[9]);
    bnone7.agg_gibs = bench::parseHexDouble(payloads[10]);
    bmq7.agg_gibs = bench::parseHexDouble(payloads[11]);
    bbfq7.agg_gibs = bench::parseHexDouble(payloads[12]);
    bmax7.agg_gibs = bench::parseHexDouble(payloads[13]);
    bcost7.agg_gibs = bench::parseHexDouble(payloads[14]);

    // --- LC-app latency (Fig. 3) ---
    table.addRow({"LC x1 none P99 (us)", "~90-120",
                  std::to_string(none1.p99_us)});
    table.addRow({"LC x1 mq-dl P99 delta", "+7.55%",
                  std::to_string((mq1.p99_us / none1.p99_us - 1) * 100) +
                      "%"});
    table.addRow({"LC x1 bfq P99 delta", "+18.87%",
                  std::to_string((bfq1.p99_us / none1.p99_us - 1) * 100) +
                      "%"});

    table.addRow({"LC x16 none P99 (us)", "181.2",
                  std::to_string(none16.p99_us)});
    table.addRow({"LC x16 io.cost P99 (us)", "268.3",
                  std::to_string(cost16.p99_us)});

    table.addRow({"LC x8 none CPU", "78.22%",
                  std::to_string(none8.cpu_util * 100) + "%"});
    table.addRow({"LC x8 io.cost CPU", "80.27%",
                  std::to_string(cost8.cpu_util * 100) + "%"});

    // --- Batch bandwidth (Fig. 4) ---
    table.addRow({"batch x17 1ssd none GiB/s", "2.94",
                  std::to_string(bnone1.agg_gibs)});
    table.addRow({"batch x17 1ssd mq-dl GiB/s", "1.81",
                  std::to_string(bmq1.agg_gibs)});
    table.addRow({"batch x17 1ssd bfq GiB/s", "0.69",
                  std::to_string(bbfq1.agg_gibs)});

    table.addRow({"batch x17 7ssd none GiB/s", "9.87",
                  std::to_string(bnone7.agg_gibs)});
    table.addRow({"batch x17 7ssd mq-dl GiB/s", "4.24",
                  std::to_string(bmq7.agg_gibs)});
    table.addRow({"batch x17 7ssd bfq GiB/s", "2.14",
                  std::to_string(bbfq7.agg_gibs)});
    table.addRow({"batch x17 7ssd io.max GiB/s", "8.94",
                  std::to_string(bmax7.agg_gibs)});
    table.addRow({"batch x17 7ssd io.cost GiB/s", "9.32",
                  std::to_string(bcost7.agg_gibs)});

    std::fputs(table.toAligned().c_str(), stdout);
    bench::emitSweepReport();
    return 0;
}
