/**
 * @file
 * Ablation study: which io.cost mechanisms produce which observed
 * behaviours? (DESIGN.md calls these out as load-bearing modelling
 * decisions; this bench demonstrates each one.)
 *
 *  1. hweight donation ON vs OFF: a weight-10000 LC-app next to BE-apps.
 *     With donation, the LC-app's unused budget flows to the BE group
 *     (work conservation); without it, aggregate bandwidth collapses.
 *  2. period timer on-CPU vs free: the paper's O1 io.cost latency
 *     overhead past CPU saturation exists only when the timer's walk
 *     over active groups competes for the saturated core.
 *  3. qos vrate window (min=X): the paper's O3 bandwidth cost of an
 *     achievable model, swept.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

void
donationAblation()
{
    bench::banner("1. hweight donation: LC-app (io.weight=10000) + 4 "
                  "BE-apps");
    stats::Table table({"donation", "LC P99 (us)", "BE GiB/s",
                        "aggregate GiB/s"});
    for (bool donation : {true, false}) {
        ScenarioConfig cfg;
        cfg.knob = Knob::kIoCost;
        cfg.num_cores = 10;
        cfg.duration = msToNs(1500);
        cfg.warmup = msToNs(400);
        cfg.iocost_params.enable_donation = donation;
        Scenario scenario(cfg);
        uint32_t lc =
            scenario.addApp(workload::lcApp("lc", cfg.duration), "lc");
        for (int i = 0; i < 4; ++i) {
            scenario.addApp(
                workload::beApp(strCat("be", i), cfg.duration), "be");
        }
        scenario.tree().writeFile(scenario.group("lc"), "io.weight",
                                  "10000");
        scenario.run();
        double be_gibs = 0.0;
        for (uint32_t i = 1; i <= 4; ++i)
            be_gibs += scenario.appGiBs(i);
        table.addRow(
            {donation ? "on (kernel behaviour)" : "off",
             bench::micros(
                 nsToUs(scenario.app(lc).latency().percentile(99))),
             bench::gibs(be_gibs), bench::gibs(scenario.aggregateGiBs())});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

void
timerAblation()
{
    bench::banner("2. period timer as CPU work: 16 LC-apps on one core "
                  "(O1)");
    stats::Table table({"timer", "P99 (us)", "CPU util"});
    for (bool on_cpu : {true, false}) {
        ScenarioConfig cfg;
        cfg.knob = Knob::kIoCost;
        cfg.num_cores = 1;
        cfg.duration = msToNs(1500);
        cfg.warmup = msToNs(300);
        cfg.iocost_achievable_model = false; // D1 overhead config
        cfg.iocost_timer_on_cpu = on_cpu;
        Scenario scenario(cfg);
        for (int i = 0; i < 16; ++i) {
            scenario.addApp(
                workload::lcApp(strCat("lc", i), cfg.duration),
                strCat("lc", i));
        }
        scenario.run();
        stats::Histogram merged;
        for (uint32_t i = 0; i < 16; ++i)
            merged.merge(scenario.app(i).latency());
        table.addRow({on_cpu ? "on CPU (kernel behaviour)" : "free",
                      bench::micros(nsToUs(merged.percentile(99))),
                      bench::percent(scenario.cpuUtilization())});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

void
vrateWindowSweep()
{
    bench::banner("3. qos vrate min sweep: 4 cgroups of batch-apps, "
                  "achievable model (O3)");
    stats::Table table({"qos min %", "aggregate GiB/s", "vs none"});
    double none_gibs = 0.0;
    {
        ScenarioConfig cfg;
        cfg.knob = Knob::kNone;
        cfg.num_cores = 20;
        cfg.duration = msToNs(1000);
        cfg.warmup = msToNs(300);
        Scenario scenario(cfg);
        for (int g = 0; g < 4; ++g) {
            for (int a = 0; a < 4; ++a) {
                scenario.addApp(workload::batchApp(
                                    strCat("g", g, "a", a), cfg.duration),
                                strCat("g", g));
            }
        }
        scenario.run();
        none_gibs = scenario.aggregateGiBs();
    }
    for (uint32_t min : {25u, 50u, 75u, 100u}) {
        ScenarioConfig cfg;
        cfg.knob = Knob::kIoCost;
        cfg.num_cores = 20;
        cfg.duration = msToNs(1000);
        cfg.warmup = msToNs(300);
        Scenario scenario(cfg);
        for (int g = 0; g < 4; ++g) {
            for (int a = 0; a < 4; ++a) {
                scenario.addApp(workload::batchApp(
                                    strCat("g", g, "a", a), cfg.duration),
                                strCat("g", g));
            }
        }
        cgroup::IoCostQos qos = paperCostQos();
        qos.vrate_min = min;
        scenario.tree().setCostQos(0, qos);
        scenario.run();
        double gibs = scenario.aggregateGiBs();
        table.addRow({strCat(min), bench::gibs(gibs),
                      bench::percent(gibs / none_gibs)});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Ablation: io.cost mechanism components\n");
    donationAblation();
    timerAblation();
    vrateWindowSweep();
    return 0;
}
