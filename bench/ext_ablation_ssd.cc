/**
 * @file
 * Ablation study: SSD model parameters that drive the paper's flash
 * idiosyncrasies.
 *
 *  1. overprovisioning sweep: WAF and sustained random-write bandwidth
 *     (why GC hurts more on fuller drives);
 *  2. write-cache size sweep: write burst absorption vs backpressure;
 *  3. flush-pressure arbitration: read latency under a write flood with
 *     the controller's read-preference ratio swept (implicitly, by
 *     cache size: a tiny cache is always under pressure).
 */

#include <cstdio>
#include <functional>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

using namespace isol;

namespace
{

ssd::SsdConfig
smallFlash()
{
    ssd::SsdConfig cfg = ssd::samsung980ProLike();
    cfg.user_capacity = 512 * MiB;
    cfg.channels = 4;
    cfg.dies_per_channel = 4;
    return cfg;
}

void
overprovisionSweep()
{
    bench::banner("1. overprovisioning vs WAF and sustained write "
                  "bandwidth");
    stats::Table table({"OP", "write MiB/s", "WAF", "erases/s"});
    for (double op : {0.10, 0.20, 0.28, 0.40}) {
        sim::Simulator sim;
        ssd::SsdConfig cfg = smallFlash();
        cfg.overprovision = op;
        ssd::SsdDevice dev(sim, cfg, 3);
        dev.precondition(1.0, 2.0);
        Rng rng(3);
        uint64_t bytes = 0;
        const SimTime dur = secToNs(int64_t{2});
        std::function<void()> loop = [&] {
            uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
            dev.submit(OpType::kWrite, off, 4096, [&] {
                bytes += 4096;
                if (sim.now() < dur)
                    loop();
            });
        };
        for (int i = 0; i < 256; ++i)
            loop();
        sim.runUntil(dur);
        table.addRow(
            {formatDouble(op, 2),
             formatDouble(bytesOverNsToMiBs(bytes, dur), 0),
             formatDouble(dev.waf(), 2),
             formatDouble(static_cast<double>(dev.blocksErased()) /
                              nsToSec(dur), 0)});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

void
writeCacheSweep()
{
    bench::banner("2. write-cache size vs burst write latency");
    stats::Table table({"cache pages", "burst P50 (us)", "burst P99 (us)"});
    for (uint32_t cache : {64u, 256u, 1024u, 4096u}) {
        sim::Simulator sim;
        ssd::SsdConfig cfg = smallFlash();
        cfg.write_cache_pages = cache;
        ssd::SsdDevice dev(sim, cfg, 7);
        dev.precondition(1.0, 1.0);
        Rng rng(7);
        stats::Histogram lat;
        // A 2048-page burst at t=0.
        for (int i = 0; i < 2048; ++i) {
            uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
            SimTime start = sim.now();
            dev.submit(OpType::kWrite, off, 4096,
                       [&, start] { lat.record(sim.now() - start); });
        }
        sim.runUntil(secToNs(int64_t{2}));
        table.addRow({strCat(cache),
                      bench::micros(nsToUs(lat.percentile(50))),
                      bench::micros(nsToUs(lat.percentile(99)))});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

void
floodReadLatency()
{
    bench::banner("3. read P99 under a sustained write flood");
    stats::Table table({"write flood", "read P50 (us)", "read P99 (us)",
                        "read MiB/s"});
    for (bool flood : {false, true}) {
        sim::Simulator sim;
        ssd::SsdConfig cfg = smallFlash();
        ssd::SsdDevice dev(sim, cfg, 11);
        dev.precondition(1.0, 2.0);
        Rng rng(11);
        stats::Histogram lat;
        uint64_t read_bytes = 0;
        const SimTime dur = secToNs(int64_t{2});

        std::function<void()> read_loop = [&] {
            uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
            SimTime start = sim.now();
            dev.submit(OpType::kRead, off, 4096, [&, start] {
                lat.record(sim.now() - start);
                read_bytes += 4096;
                if (sim.now() < dur)
                    read_loop();
            });
        };
        std::function<void()> write_loop = [&] {
            uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
            dev.submit(OpType::kWrite, off, 4096, [&] {
                if (sim.now() < dur)
                    write_loop();
            });
        };
        for (int i = 0; i < 16; ++i)
            read_loop();
        if (flood) {
            for (int i = 0; i < 512; ++i)
                write_loop();
        }
        sim.runUntil(dur);
        table.addRow({flood ? "yes" : "no",
                      bench::micros(nsToUs(lat.percentile(50))),
                      bench::micros(nsToUs(lat.percentile(99))),
                      formatDouble(bytesOverNsToMiBs(read_bytes, dur),
                                   0)});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Ablation: SSD model parameters\n");
    overprovisionSweep();
    writeCacheSweep();
    floodReadLatency();
    return 0;
}
