/**
 * @file
 * Generalizability check on the Optane-like device (paper §III: "to
 * confirm generalizability we repeat our experiments on Intel Optane
 * SSDs ... useful to confirm our results on a different SSD performance
 * model").
 *
 * Re-runs a representative slice of the evaluation on the phase-change
 * preset (flat ~10 us latency, symmetric read/write, no GC) and prints
 * it next to the flash results, so the knob conclusions can be checked
 * across device models:
 *  - LC latency overhead per knob (O1 analogue);
 *  - weighted fairness (O4 analogue);
 *  - mixed read/write fairness — Optane has no GC, so the flash
 *    read/write collapse must NOT reproduce here.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/d2_fairness.hh"
#include "stats/fairness.hh"
#include "isolbench/scenario.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

double
lcP99(Knob knob, const ssd::SsdConfig &device)
{
    ScenarioConfig cfg;
    cfg.knob = knob;
    cfg.num_cores = 1;
    cfg.device = device;
    cfg.duration = msToNs(1000);
    cfg.warmup = msToNs(250);
    if (knob == Knob::kIoCost)
        cfg.iocost_achievable_model = false;
    Scenario scenario(cfg);
    uint32_t lc = scenario.addApp(workload::lcApp("lc", cfg.duration),
                                  "lc");
    scenario.run();
    return nsToUs(scenario.app(lc).latency().percentile(99));
}

FairnessResult
fairness(Knob knob, const ssd::SsdConfig &device, FairnessMix mix,
         bool weighted)
{
    FairnessOptions opts;
    opts.repeats = 1;
    opts.duration = msToNs(1200);
    opts.warmup = msToNs(300);
    // runFairness always uses the default device; inline a variant here.
    ScenarioConfig cfg;
    cfg.knob = knob;
    cfg.num_cores = 20;
    cfg.device = device;
    cfg.duration = opts.duration;
    cfg.warmup = opts.warmup;
    cfg.precondition = device.medium == ssd::MediumType::kFlash &&
                       mix == FairnessMix::kReadWrite;
    Scenario scenario(cfg);
    std::vector<std::string> groups;
    for (uint32_t g = 0; g < 4; ++g) {
        std::string name = strCat("cg", g);
        groups.push_back(name);
        for (uint32_t a = 0; a < 4; ++a) {
            workload::JobSpec spec =
                workload::batchApp(strCat(name, "-", a), cfg.duration);
            if (mix == FairnessMix::kReadWrite && g >= 2) {
                spec.op = OpType::kWrite;
                spec.read_fraction = 0.0;
            }
            scenario.addApp(std::move(spec), name);
        }
    }
    if (weighted)
        applyFairnessWeights(scenario, groups, knob);
    scenario.run();

    std::vector<double> bw(4, 0.0);
    for (uint32_t i = 0; i < scenario.numApps(); ++i)
        bw[i / 4] += scenario.appGiBs(i);
    std::vector<double> weights(4, 1.0);
    if (weighted) {
        for (uint32_t g = 0; g < 4; ++g)
            weights[g] = g + 1;
    }
    FairnessResult out;
    out.jain_mean = stats::weightedJainIndex(bw, weights);
    out.agg_gibs_mean = scenario.aggregateGiBs();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    ssd::SsdConfig flash = ssd::samsung980ProLike();
    ssd::SsdConfig optane = ssd::optaneLike();

    std::printf("Generalizability: flash (980 PRO-like) vs Optane-like "
                "phase-change device\n");

    bench::banner("LC-app P99 per knob (us)");
    stats::Table lat({"knob", "flash", "optane"});
    for (Knob knob : kAllKnobs) {
        lat.addRow({knobName(knob),
                    bench::micros(lcP99(knob, flash)),
                    bench::micros(lcP99(knob, optane))});
    }
    std::fputs(lat.toAligned().c_str(), stdout);

    bench::banner("weighted fairness, 4 cgroups (Jain / aggregate GiB/s)");
    stats::Table fair({"knob", "flash jain", "flash agg", "optane jain",
                       "optane agg"});
    for (Knob knob :
         {Knob::kBfq, Knob::kIoMax, Knob::kIoCost}) {
        FairnessResult f =
            fairness(knob, flash, FairnessMix::kUniform, true);
        FairnessResult o =
            fairness(knob, optane, FairnessMix::kUniform, true);
        fair.addRow({knobName(knob), formatDouble(f.jain_mean, 3),
                     bench::gibs(f.agg_gibs_mean),
                     formatDouble(o.jain_mean, 3),
                     bench::gibs(o.agg_gibs_mean)});
    }
    std::fputs(fair.toAligned().c_str(), stdout);

    bench::banner("read+write fairness: flash collapses under GC, "
                  "Optane does not");
    stats::Table mix({"knob", "flash jain", "flash agg", "optane jain",
                      "optane agg"});
    for (Knob knob : {Knob::kNone, Knob::kIoMax, Knob::kIoCost}) {
        FairnessResult f =
            fairness(knob, flash, FairnessMix::kReadWrite, false);
        FairnessResult o =
            fairness(knob, optane, FairnessMix::kReadWrite, false);
        mix.addRow({knobName(knob), formatDouble(f.jain_mean, 3),
                    bench::gibs(f.agg_gibs_mean),
                    formatDouble(o.jain_mean, 3),
                    bench::gibs(o.agg_gibs_mean)});
    }
    std::fputs(mix.toAligned().c_str(), stdout);
    return 0;
}
