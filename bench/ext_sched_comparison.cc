/**
 * @file
 * Extension: NVMe-era I/O scheduler comparison (none, MQ-Deadline, BFQ,
 * Kyber), replicating the scheduler-characterization methodology of the
 * paper's related work ([75], Ren et al., ICPE'24). Not a paper figure —
 * Kyber has no cgroup knob and is out of the paper's scope — but a
 * natural companion study isol-bench-sim supports.
 *
 * Three views:
 *  1. single LC-app P99 (scheduler overhead at QD1);
 *  2. batch bandwidth scalability on one SSD;
 *  3. read tail latency while a writer floods the device — Kyber's
 *     reason to exist (it throttles writes to protect reads).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

constexpr Knob kScheds[] = {Knob::kNone, Knob::kMqDeadline, Knob::kBfq,
                            Knob::kKyber};

void
overheadView()
{
    bench::banner("LC-app P99 at QD1 (scheduler overhead)");
    stats::Table table({"scheduler", "P50 (us)", "P99 (us)"});
    for (Knob knob : kScheds) {
        ScenarioConfig cfg;
        cfg.knob = knob;
        cfg.num_cores = 1;
        cfg.duration = msToNs(1200);
        cfg.warmup = msToNs(300);
        Scenario scenario(cfg);
        uint32_t lc =
            scenario.addApp(workload::lcApp("lc", cfg.duration), "lc");
        scenario.run();
        table.addRow(
            {knobName(knob),
             bench::micros(nsToUs(scenario.app(lc).latency().percentile(50))),
             bench::micros(
                 nsToUs(scenario.app(lc).latency().percentile(99)))});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

void
bandwidthView()
{
    bench::banner("batch-app bandwidth scalability, 1 SSD, 10 cores");
    stats::Table table({"apps", "none", "mq-deadline", "bfq", "kyber"});
    for (uint32_t apps : {1u, 4u, 8u, 16u}) {
        std::vector<std::string> row = {strCat(apps)};
        for (Knob knob : kScheds) {
            ScenarioConfig cfg;
            cfg.knob = knob;
            cfg.num_cores = 10;
            cfg.duration = msToNs(1000);
            cfg.warmup = msToNs(250);
            Scenario scenario(cfg);
            for (uint32_t i = 0; i < apps; ++i) {
                scenario.addApp(
                    workload::batchApp(strCat("b", i), cfg.duration),
                    strCat("b", i));
            }
            scenario.run();
            row.push_back(bench::gibs(scenario.aggregateGiBs()));
        }
        table.addRow(row);
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

void
writeFloodView()
{
    bench::banner("read P99 under a 4 KiB random-write flood "
                  "(Kyber's target case)");
    stats::Table table({"scheduler", "read P99 (us)", "read GiB/s",
                        "write GiB/s"});
    for (Knob knob : kScheds) {
        ScenarioConfig cfg;
        cfg.knob = knob;
        cfg.num_cores = 10;
        cfg.duration = secToNs(int64_t{3});
        cfg.warmup = secToNs(int64_t{1});
        cfg.precondition = true;
        Scenario scenario(cfg);
        uint32_t reader = scenario.addApp(
            workload::lcApp("reader", cfg.duration), "reader");
        workload::JobSpec writer =
            workload::batchApp("writer", cfg.duration);
        writer.op = OpType::kWrite;
        writer.read_fraction = 0.0;
        uint32_t w = scenario.addApp(std::move(writer), "writer");
        scenario.run();
        table.addRow(
            {knobName(knob),
             bench::micros(
                 nsToUs(scenario.app(reader).latency().percentile(99))),
             bench::gibs(scenario.appGiBs(reader)),
             bench::gibs(scenario.appGiBs(w))});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Extension: Linux NVMe scheduler comparison "
                "(none / mq-deadline / bfq / kyber)\n");
    overheadView();
    bandwidthView();
    writeFloodView();
    return 0;
}
