/**
 * @file
 * Reproduces Fig. 2: illustrative bandwidth-over-time examples of every
 * cgroups I/O control knob with three identical fio apps.
 *
 * Paper setup: apps A/B/C, 64 KiB random reads at QD 8, each rate-limited
 * to 1.5 GiB/s; A runs 0-50 s, B 10-70 s, C 20-50 s. We compress the
 * timeline 10:1 (A 0-5 s, B 1-7 s, C 2-5 s) — steady states are reached
 * in well under a second, so the shapes are preserved.
 *
 * Panels: (a) none, (b) MQ-DL + io.prio.class, (c) BFQ uniform weights,
 * (d) BFQ differing weights, (e) io.max, (f) io.latency, (g) io.cost
 * without weights, (h) io.cost + io.weight.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

constexpr SimTime kAStart = 0;
constexpr SimTime kADur = secToNs(int64_t{5});
constexpr SimTime kBStart = secToNs(int64_t{1});
constexpr SimTime kBDur = secToNs(int64_t{6});
constexpr SimTime kCStart = secToNs(int64_t{2});
constexpr SimTime kCDur = secToNs(int64_t{3});
constexpr SimTime kTotal = secToNs(int64_t{7});

struct Panel
{
    const char *name;
    Knob knob;
    std::function<void(Scenario &)> configure;
    /**
     * Timeline stretch relative to the 10:1-compressed base. io.latency
     * throttles by halving QD once per (real) 500 ms window, so its
     * panel needs a longer timeline for the mechanism to play out.
     */
    int stretch = 1;
};

void
runPanel(const Panel &panel)
{
    ScenarioConfig cfg;
    cfg.name = panel.name;
    cfg.knob = panel.knob;
    cfg.num_cores = 10;
    cfg.duration = kTotal * panel.stretch;
    cfg.warmup = msToNs(1); // the whole timeline is the result
    Scenario scenario(cfg);

    SimTime bin = msToNs(250) * panel.stretch;
    auto add = [&](const char *name, SimTime start, SimTime dur) {
        workload::JobSpec spec = workload::fig2App(
            name, start * panel.stretch, dur * panel.stretch);
        spec.stats_bin = bin;
        return scenario.addApp(std::move(spec), name);
    };
    uint32_t a = add("A", kAStart, kADur);
    uint32_t b = add("B", kBStart, kBDur);
    uint32_t c = add("C", kCStart, kCDur);

    if (panel.configure)
        panel.configure(scenario);
    scenario.run();

    bench::banner(panel.name);
    stats::Table table({"t(s)", "A(MiB/s)", "B(MiB/s)", "C(MiB/s)"});
    auto rate_a = scenario.app(a).bandwidthSeries().ratePerSecond();
    auto rate_b = scenario.app(b).bandwidthSeries().ratePerSecond();
    auto rate_c = scenario.app(c).bandwidthSeries().ratePerSecond();
    size_t bins = static_cast<size_t>(cfg.duration / bin);
    auto mibs = [](const std::vector<double> &rates, size_t i) {
        double rate = i < rates.size() ? rates[i] : 0.0;
        return isol::formatDouble(rate / static_cast<double>(MiB), 0);
    };
    for (size_t i = 0; i < bins; ++i) {
        table.addRow({isol::formatDouble(
                          0.25 * panel.stretch * (i + 1), 2),
                      mibs(rate_a, i), mibs(rate_b, i), mibs(rate_c, i)});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    std::printf("Fig. 2: cgroups I/O control knob examples "
                "(timeline compressed 10:1; A 0-5s, B 1-7s, C 2-5s)\n");

    std::vector<Panel> panels;
    panels.push_back({"(a) none", Knob::kNone, nullptr});
    panels.push_back({"(b) MQ-DL + io.prio.class (A=rt B=be C=idle)",
                      Knob::kMqDeadline, [](Scenario &s) {
                          s.tree().writeFile(s.group("A"), "io.prio.class",
                                             "promote-to-rt");
                          s.tree().writeFile(s.group("B"), "io.prio.class",
                                             "best-effort");
                          s.tree().writeFile(s.group("C"), "io.prio.class",
                                             "idle");
                      }});
    panels.push_back({"(c) BFQ, uniform io.bfq.weight", Knob::kBfq,
                      nullptr});
    panels.push_back({"(d) BFQ, io.bfq.weight A=400 B=200 C=100",
                      Knob::kBfq, [](Scenario &s) {
                          s.tree().writeFile(s.group("A"),
                                             "io.bfq.weight", "400");
                          s.tree().writeFile(s.group("B"),
                                             "io.bfq.weight", "200");
                          s.tree().writeFile(s.group("C"),
                                             "io.bfq.weight", "100");
                      }});
    panels.push_back({"(e) io.max (1 GiB/s per app)", Knob::kIoMax,
                      [](Scenario &s) {
                          for (const char *g : {"A", "B", "C"}) {
                              s.tree().writeFile(
                                  s.group(g), "io.max",
                                  strCat("259:0 rbps=", GiB));
                          }
                      }});
    panels.push_back({"(f) io.latency (A target=300us; timeline 4x "
                      "longer: QD halves once per 500ms window)",
                      Knob::kIoLatency,
                      [](Scenario &s) {
                          s.tree().writeFile(s.group("A"), "io.latency",
                                             "259:0 target=300");
                      },
                      /*stretch=*/4});
    panels.push_back({"(g) io.cost, uniform io.weight", Knob::kIoCost,
                      nullptr});
    panels.push_back({"(h) io.cost, io.weight A=1000 B=500 C=100",
                      Knob::kIoCost, [](Scenario &s) {
                          s.tree().writeFile(s.group("A"), "io.weight",
                                             "1000");
                          s.tree().writeFile(s.group("B"), "io.weight",
                                             "500");
                          s.tree().writeFile(s.group("C"), "io.weight",
                                             "100");
                      }});

    for (const Panel &panel : panels)
        runPanel(panel);
    return 0;
}
