/**
 * @file
 * Reproduces Fig. 3 (Q1): cgroups latency and CPU overhead when scaling
 * from 1 to 256 LC-apps on a single CPU core.
 *
 * Panels (a-c): completion-latency CDFs with annotated P99 for 1, 16 and
 * 256 co-located LC-apps. Panel (d): single-core CPU utilisation vs the
 * number of LC-apps. Also prints the §V profile numbers (context
 * switches per I/O).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/d1_overhead.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

void
printCdf(const LcScalingResult &res)
{
    // Decimate the CDF to ~18 probability points for readable output.
    std::printf("  %-12s P99=%sus CDF:", knobName(res.knob),
                bench::micros(res.p99_us).c_str());
    double next_prob = 0.05;
    for (auto [us, prob] : res.cdf) {
        if (prob + 1e-12 >= next_prob) {
            std::printf(" %.0fus@%.2f", us, prob);
            while (next_prob <= prob)
                next_prob += 0.05;
        }
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bool quick = bench::quickMode();
    D1Options opts;
    if (quick) {
        opts.duration = msToNs(800);
        opts.warmup = msToNs(200);
    }

    std::printf("Fig. 3: latency and CPU overhead, 1-256 LC-apps on one "
                "core\n");

    // Panels (a)-(c): CDFs at 1, 16, 256 apps.
    for (uint32_t apps : {1u, 16u, 256u}) {
        bench::banner(strCat("Fig. 3(", apps == 1 ? "a" : apps == 16
                             ? "b" : "c", "): CDF with ", apps,
                             " LC-app(s)"));
        for (Knob knob : kAllKnobs) {
            LcScalingResult res = runLcScaling(knob, apps, opts);
            printCdf(res);
        }
    }

    // Panel (d): CPU utilisation vs number of apps.
    bench::banner("Fig. 3(d): single-core CPU utilisation vs #LC-apps");
    std::vector<uint32_t> counts = {1, 2, 4, 8, 16, 32, 64, 128, 256};
    if (quick)
        counts = {1, 4, 16, 64, 256};
    stats::Table cpu({"apps", "none", "mq-deadline", "bfq", "io.max",
                      "io.latency", "io.cost"});
    stats::Table p99({"apps", "none", "mq-deadline", "bfq", "io.max",
                      "io.latency", "io.cost"});
    stats::Table ctx({"apps", "none", "mq-deadline", "bfq", "io.max",
                      "io.latency", "io.cost"});
    for (uint32_t apps : counts) {
        std::vector<std::string> cpu_row = {strCat(apps)};
        std::vector<std::string> p99_row = {strCat(apps)};
        std::vector<std::string> ctx_row = {strCat(apps)};
        for (Knob knob : kAllKnobs) {
            LcScalingResult res = runLcScaling(knob, apps, opts);
            cpu_row.push_back(bench::percent(res.cpu_util));
            p99_row.push_back(bench::micros(res.p99_us));
            ctx_row.push_back(isol::formatDouble(res.ctx_per_io, 2));
        }
        cpu.addRow(cpu_row);
        p99.addRow(p99_row);
        ctx.addRow(ctx_row);
    }
    std::fputs(cpu.toAligned().c_str(), stdout);

    bench::banner("P99 latency (us) vs #LC-apps (red annotations)");
    std::fputs(p99.toAligned().c_str(), stdout);

    bench::banner("context switches per I/O (sar/fio profile, SS V)");
    std::fputs(ctx.toAligned().c_str(), stdout);
    return 0;
}
