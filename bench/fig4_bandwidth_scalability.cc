/**
 * @file
 * Reproduces Fig. 4 (Q2): cgroups bandwidth and CPU scalability when
 * scaling batch-apps (4 KiB randread QD256) from 1 to 17 on 1 and 7
 * NVMe SSDs with 10 CPU cores, apps round-robined across SSDs.
 *
 * Panels: (a) aggregated bandwidth on 1 SSD, (b) on 7 SSDs,
 * (c) CPU utilisation on 1 SSD, (d) on 7 SSDs.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "isolbench/d1_overhead.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bool quick = bench::quickMode();
    D1Options opts;
    opts.duration = quick ? msToNs(800) : msToNs(1200);
    opts.warmup = quick ? msToNs(200) : msToNs(300);

    std::printf("Fig. 4: bandwidth and CPU scalability, batch-apps over "
                "1 and 7 SSDs (10 cores)\n");

    std::vector<uint32_t> counts = {1, 2, 4, 8, 12, 17};
    if (quick)
        counts = {1, 4, 17};

    for (uint32_t ssds : {1u, 7u}) {
        stats::Table bw({"apps", "none", "mq-deadline", "bfq", "io.max",
                         "io.latency", "io.cost"});
        stats::Table cpu({"apps", "none", "mq-deadline", "bfq", "io.max",
                          "io.latency", "io.cost"});
        for (uint32_t apps : counts) {
            std::vector<std::string> bw_row = {strCat(apps)};
            std::vector<std::string> cpu_row = {strCat(apps)};
            for (Knob knob : kAllKnobs) {
                BatchScalingResult res =
                    runBatchScaling(knob, apps, ssds, opts);
                bw_row.push_back(bench::gibs(res.agg_gibs));
                cpu_row.push_back(bench::percent(res.cpu_util));
            }
            bw.addRow(bw_row);
            cpu.addRow(cpu_row);
        }
        bench::banner(strCat("Fig. 4(", ssds == 1 ? "a" : "b",
                             "): aggregated bandwidth (GiB/s), ", ssds,
                             " SSD(s)"));
        std::fputs(bw.toAligned().c_str(), stdout);
        bench::banner(strCat("Fig. 4(", ssds == 1 ? "c" : "d",
                             "): CPU utilisation (10 cores), ", ssds,
                             " SSD(s)"));
        std::fputs(cpu.toAligned().c_str(), stdout);
    }
    return 0;
}
