/**
 * @file
 * Reproduces Fig. 5 (Q3/Q4): bandwidth-fairness scalability with uniform
 * workloads.
 *
 * Panels: (a) Jain fairness + aggregated bandwidth, uniform weights,
 * scaling cgroups 2..8; (b) the same at 16 cgroups (past CPU
 * saturation); (c)+(d) linearly increasing weights, 2..16 cgroups.
 * Four batch-apps per cgroup (enough to saturate the SSD); fairness runs
 * are repeated for a standard deviation, as in the paper.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/d2_fairness.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

void
runPanel(const char *title, bool weighted,
         const std::vector<uint32_t> &group_counts,
         const FairnessOptions &opts)
{
    bench::banner(title);
    stats::Table table({"cgroups", "knob", "jain", "jain-stddev",
                        "agg GiB/s"});
    for (uint32_t cgroups : group_counts) {
        for (Knob knob : kAllKnobs) {
            FairnessResult res = runFairness(
                knob, cgroups, weighted, FairnessMix::kUniform, opts);
            table.addRow({strCat(cgroups), knobName(knob),
                          isol::formatDouble(res.jain_mean, 3),
                          isol::formatDouble(res.jain_std, 3),
                          bench::gibs(res.agg_gibs_mean)});
        }
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

} // namespace

int
main()
{
    bool quick = bench::quickMode();
    FairnessOptions opts;
    opts.repeats = quick ? 1 : 2;
    opts.duration = quick ? msToNs(800) : msToNs(1200);
    opts.warmup = quick ? msToNs(250) : msToNs(300);

    std::printf("Fig. 5: bandwidth fairness scalability; uniform "
                "workload, 4 batch-apps per cgroup\n");

    std::vector<uint32_t> scaling = quick
        ? std::vector<uint32_t>{2, 8}
        : std::vector<uint32_t>{2, 4, 8};
    runPanel("Fig. 5(a): uniform weights, scaling cgroups", false,
             scaling, opts);
    runPanel("Fig. 5(b): uniform weights, 16 cgroups (past CPU "
             "saturation)", false, {16}, opts);
    runPanel("Fig. 5(c): linearly increasing weights, scaling cgroups",
             true, scaling, opts);
    runPanel("Fig. 5(d): linearly increasing weights, 16 cgroups", true,
             {16}, opts);
    return 0;
}
