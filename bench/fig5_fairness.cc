/**
 * @file
 * Reproduces Fig. 5 (Q3/Q4): bandwidth-fairness scalability with uniform
 * workloads.
 *
 * Panels: (a) Jain fairness + aggregated bandwidth, uniform weights,
 * scaling cgroups 2..8; (b) the same at 16 cgroups (past CPU
 * saturation); (c)+(d) linearly increasing weights, 2..16 cgroups.
 * Four batch-apps per cgroup (enough to saturate the SSD); fairness runs
 * are repeated for a standard deviation, as in the paper.
 *
 * Every (cgroups, knob) grid point is an independent simulation, so the
 * whole panel fans out across the sweep pool (--jobs N / ISOL_JOBS) and
 * the table is printed from the collected slots in grid order.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/d2_fairness.hh"
#include "isolbench/supervisor.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

void
runPanel(const char *name, const char *title, bool weighted,
         const std::vector<uint32_t> &group_counts,
         const FairnessOptions &opts)
{
    bench::banner(title);

    struct GridPoint
    {
        uint32_t cgroups;
        Knob knob;
    };
    std::vector<GridPoint> grid;
    for (uint32_t cgroups : group_counts) {
        for (Knob knob : kAllKnobs)
            grid.push_back({cgroups, knob});
    }

    // Each grid point runs as a supervised task returning its table row
    // as a payload; the manifest checkpoints payloads, so a --resume
    // after an interrupt reprints the exact same table.
    std::vector<supervisor::Task> tasks;
    tasks.reserve(grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        // isol: parallel
        tasks.push_back([&grid, &opts, weighted, i]() -> std::string {
            FairnessResult res =
                runFairness(grid[i].knob, grid[i].cgroups, weighted,
                            FairnessMix::kUniform, opts);
            return bench::joinRow(
                {strCat(res.cgroups), knobName(res.knob),
                 isol::formatDouble(res.jain_mean, 3),
                 isol::formatDouble(res.jain_std, 3),
                 bench::gibs(res.agg_gibs_mean)});
        });
    }
    std::vector<std::string> payloads = bench::supervisedSweep(name,
                                                               tasks);

    stats::Table table({"cgroups", "knob", "jain", "jain-stddev",
                        "agg GiB/s"});
    for (const std::string &payload : payloads) {
        if (!payload.empty())
            table.addRow(bench::splitRow(payload));
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bool quick = bench::quickMode();
    FairnessOptions opts;
    opts.repeats = quick ? 1 : 2;
    opts.duration = quick ? msToNs(800) : msToNs(1200);
    opts.warmup = quick ? msToNs(250) : msToNs(300);
    opts.adversary = bench::adversary();

    std::printf("Fig. 5: bandwidth fairness scalability; uniform "
                "workload, 4 batch-apps per cgroup\n");
    if (opts.adversary != workload::AdversaryKind::kNone) {
        std::printf("chaos tenant: cgroup 'adv' runs the %s adversary "
                    "(excluded from fairness stats)\n",
                    workload::adversaryName(opts.adversary));
    }

    std::vector<uint32_t> scaling = quick
        ? std::vector<uint32_t>{2, 8}
        : std::vector<uint32_t>{2, 4, 8};
    runPanel("fig5a", "Fig. 5(a): uniform weights, scaling cgroups",
             false, scaling, opts);
    runPanel("fig5b", "Fig. 5(b): uniform weights, 16 cgroups (past CPU "
             "saturation)", false, {16}, opts);
    runPanel("fig5c", "Fig. 5(c): linearly increasing weights, scaling "
             "cgroups", true, scaling, opts);
    runPanel("fig5d", "Fig. 5(d): linearly increasing weights, 16 "
             "cgroups", true, {16}, opts);
    bench::emitSweepReport();
    return 0;
}
