/**
 * @file
 * Reproduces Fig. 6 (Q5): bandwidth fairness with mixed workloads across
 * two cgroups:
 *  (a) half the groups use 256 KiB requests (vs 4 KiB),
 *  (b) half the groups write 4 KiB randomly (read/write interference +
 *      garbage collection on a preconditioned device).
 * The access-pattern mix (random vs sequential) is also reported; the
 * paper found all knobs fair there and does not plot it.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/d2_fairness.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

void
runPanel(const char *title, FairnessMix mix, const FairnessOptions &opts)
{
    bench::banner(title);
    stats::Table table({"knob", "jain", "jain-stddev", "agg GiB/s",
                        "group0 GiB/s", "group1 GiB/s"});
    for (Knob knob : kAllKnobs) {
        FairnessResult res = runFairness(knob, 2, false, mix, opts);
        table.addRow({knobName(knob),
                      isol::formatDouble(res.jain_mean, 3),
                      isol::formatDouble(res.jain_std, 3),
                      bench::gibs(res.agg_gibs_mean),
                      bench::gibs(res.per_group_gibs.at(0)),
                      bench::gibs(res.per_group_gibs.at(1))});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bool quick = bench::quickMode();
    FairnessOptions opts;
    opts.repeats = quick ? 1 : 3;
    opts.duration = quick ? msToNs(900) : msToNs(1500);
    opts.warmup = msToNs(300);

    std::printf("Fig. 6: bandwidth fairness, mixed workloads "
                "(2 cgroups, 4 apps each)\n");

    runPanel("Fig. 6(a): request size 4 KiB + 256 KiB",
             FairnessMix::kReqSize, opts);
    runPanel("Fig. 6(b): random read + write (preconditioned, GC)",
             FairnessMix::kReadWrite, opts);
    runPanel("(not plotted in paper) random + sequential access",
             FairnessMix::kPattern, opts);
    return 0;
}
