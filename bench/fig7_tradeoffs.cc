/**
 * @file
 * Reproduces Fig. 7 (Q6-Q9): prioritization/utilization trade-offs.
 *
 * One priority app (batch-app in panels a-d, LC-app in panels e-h) runs
 * against 4 BE-apps that saturate the SSD alone. Each knob's
 * configuration space is swept, producing (aggregate bandwidth,
 * priority metric) Pareto points:
 *   (a/e) MQ-DL io.prio.class permutations and BFQ io.bfq.weight sweep,
 *   (b/f) io.latency target sweep with BE workload variants,
 *   (c/g) io.max BE-cap sweep with BE workload variants,
 *   (d/h) io.cost qos sweep with BE workload variants.
 *
 * Each knob's configuration grid fans out across the sweep pool inside
 * runTradeoffSweep() (--jobs N / ISOL_JOBS); stdout is byte-identical
 * for any thread count.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "isolbench/d3_tradeoffs.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

void
printSweep(Knob knob, PriorityAppKind kind, BeWorkload be,
           TradeoffOptions opts)
{
    bench::banner(strCat(knobName(knob), " / priority=",
                         priorityAppKindName(kind), " / BE=",
                         beWorkloadName(be)));
    // io.latency points run for seconds each (500 ms windows must play
    // out), so sweep it at half resolution to bound the total runtime.
    if (knob == Knob::kIoLatency)
        opts.coarsen *= 2;
    auto points = runTradeoffSweep(knob, kind, be, opts);
    stats::Table table({"config", "agg GiB/s",
                        kind == PriorityAppKind::kBatch ? "prio GiB/s"
                                                        : "prio P99 us"});
    for (const auto &p : points) {
        table.addRow({p.config, bench::gibs(p.agg_gibs),
                      kind == PriorityAppKind::kBatch
                          ? bench::gibs(p.priority_gibs)
                          : bench::micros(p.priority_p99_us)});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bool quick = bench::quickMode();
    TradeoffOptions opts;
    opts.coarsen = quick ? 8 : 4;
    opts.duration = quick ? msToNs(800) : msToNs(1200);
    opts.warmup = msToNs(250);

    std::printf("Fig. 7: prioritization/utilization trade-off Pareto "
                "fronts (coarsen=%u)\n", opts.coarsen);

    const std::vector<BeWorkload> variants = {
        BeWorkload::kRand4k, BeWorkload::kSeq4k, BeWorkload::kRand256k,
        BeWorkload::kRandWrite4k};
    const std::vector<BeWorkload> base_only = {BeWorkload::kRand4k};

    for (PriorityAppKind kind :
         {PriorityAppKind::kBatch, PriorityAppKind::kLc}) {
        // Panels (a)/(e): the I/O schedulers, base workload only (the
        // paper stops there given their limited trade-offs, Q6).
        for (Knob knob : {Knob::kMqDeadline, Knob::kBfq}) {
            for (BeWorkload be : base_only)
                printSweep(knob, kind, be, opts);
        }
        // Panels (b-d)/(f-h): io.latency, io.max, io.cost across all BE
        // workload variants.
        for (Knob knob :
             {Knob::kIoLatency, Knob::kIoMax, Knob::kIoCost}) {
            for (BeWorkload be : quick ? base_only : variants)
                printSweep(knob, kind, be, opts);
        }
    }
    bench::emitSweepReport();
    return 0;
}
