/**
 * @file
 * Fleet-scale hierarchical cgroup stress bench.
 *
 * Kubernetes-style consolidation pushes cgroup counts far beyond the
 * paper's 16-tenant sweeps: a single NVMe node can host O(1000) pods
 * under several layers of slice groups. This bench sweeps 64/256/1024
 * tenants arranged in 2–4-level trees (root -> pod -> rack -> row ->
 * tenant), with heterogeneous per-tenant workloads drawn from a seeded
 * RNG and one misbehaving adversary per top-level pod subtree, and
 * measures how the knobs' per-cgroup bookkeeping scales:
 *
 *  - io.cost: hierarchical weights on every level (weight-split across
 *    child subtrees);
 *  - io.max: interior limits on the pod groups (shared subtree token
 *    buckets), leaves unlimited.
 *
 * stdout prints deterministic results only (GiB/s, event counts, gate
 * bookkeeping share); wall-clock events/sec lands in BENCH_sweep.json
 * via the sweep self-profiler, keyed by the scenario name
 * ("fleet_t<N>_d<L>_<knob>") so tools/perf_gate.py can enforce an
 * events/sec floor on the 1024-tenant configuration.
 *
 * Environment:
 *   ISOL_FLEET_TENANTS=N   run only the N-tenant grid points (CI smoke)
 *   ISOL_BENCH_QUICK=1     drop the 1024-tenant points, shorter runs
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "isolbench/supervisor.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

struct FleetPoint
{
    uint32_t tenants;
    uint32_t levels; //!< tree depth below the root (2..4)
    Knob knob;
};

struct FleetResult
{
    double agg_gibs = 0.0;
    uint64_t events = 0;
    uint64_t bookkeeping_ops = 0;
    uint64_t tracked_groups = 0;
};

/** Leaf path for tenant `i` in a `levels`-deep tree with 8 pods. */
std::string
tenantPath(uint32_t i, uint32_t levels)
{
    uint32_t pod = i % 8;
    uint32_t rack = (i / 8) % 4;
    uint32_t row = (i / 32) % 2;
    switch (levels) {
      case 2: return strCat("pod", pod, "/t", i);
      case 3: return strCat("pod", pod, "/rack", rack, "/t", i);
      default:
        return strCat("pod", pod, "/rack", rack, "/row", row, "/t", i);
    }
}

FleetResult
runFleetPoint(const FleetPoint &pt, SimTime duration, SimTime warmup)
{
    ScenarioConfig cfg;
    cfg.name = strCat("fleet_t", pt.tenants, "_d", pt.levels, "_",
                      knobName(pt.knob));
    cfg.knob = pt.knob;
    cfg.num_cores = 16;
    cfg.duration = duration;
    cfg.warmup = warmup;
    cfg.seed = 11 + pt.tenants * 31 + pt.levels * 7;
    Scenario s(cfg);

    // Heterogeneous tenants: LC probes, small batch readers, and mixed
    // writers, all drawn from one seeded stream so the fleet is
    // reproducible byte-for-byte at any --jobs count.
    Rng rng(cfg.seed * 0x9E3779B97F4A7C15ull + 1);
    for (uint32_t i = 0; i < pt.tenants; ++i) {
        std::string path = tenantPath(i, pt.levels);
        workload::JobSpec spec;
        uint64_t roll = rng.below(10);
        if (roll < 5) {
            spec = workload::lcApp(strCat("lc", i), duration);
        } else if (roll < 8) {
            spec = workload::batchApp(strCat("batch", i), duration);
            spec.iodepth = static_cast<uint32_t>(rng.between(2, 8));
            spec.block_size = 16 * KiB;
        } else {
            spec = workload::lcApp(strCat("mix", i), duration);
            spec.read_fraction = 0.7;
            spec.iodepth = 2;
            spec.block_size = 8 * KiB;
        }
        spec.seed = cfg.seed + i * 7919 + 17;
        uint32_t app = s.addApp(std::move(spec), path);
        if (pt.knob == Knob::kIoCost) {
            s.tree().writeFile(s.appGroup(app), "io.weight",
                               strCat(rng.between(50, 200)));
        }
    }

    // One adversary per pod subtree, rotating through the catalog.
    for (uint32_t pod = 0; pod < 8; ++pod) {
        s.addAdversary(workload::kAllAdversaries[
                           pod % std::size(workload::kAllAdversaries)],
                       strCat("pod", pod, "/adv"));
    }

    // Interior knobs: weights on every slice level (io.cost), shared
    // subtree token buckets on the pods (io.max).
    for (uint32_t pod = 0; pod < 8; ++pod) {
        cgroup::Cgroup &pod_cg = s.group(strCat("pod", pod));
        if (pt.knob == Knob::kIoCost) {
            s.tree().writeFile(pod_cg, "io.weight",
                               strCat(100 * (1 + pod % 4)));
        } else if (pt.knob == Knob::kIoMax) {
            s.tree().writeFile(pod_cg, "io.max",
                               strCat("259:0 rbps=", 256 * MiB,
                                      " wbps=", 128 * MiB));
        }
        if (pt.knob == Knob::kIoCost && pt.levels >= 3) {
            for (cgroup::Cgroup *rack : pod_cg.children()) {
                if (rack->name().rfind("rack", 0) == 0) {
                    s.tree().writeFile(*rack, "io.weight",
                                       strCat(rng.between(80, 160)));
                }
            }
        }
    }

    s.run();

    FleetResult res;
    res.agg_gibs = s.aggregateGiBs();
    res.events = s.sim().eventsExecuted();
    for (uint32_t d = 0; d < s.numDevices(); ++d)
        res.bookkeeping_ops += s.device(d).gateBookkeepingOps();
    if (auto *gate = s.device(0).ioCostGate())
        res.tracked_groups = gate->trackedGroups();
    else if (auto *gate_max = s.device(0).ioMaxGate())
        res.tracked_groups = gate_max->trackedGroups();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bool quick = bench::quickMode();
    SimTime duration = quick ? msToNs(120) : msToNs(250);
    SimTime warmup = quick ? msToNs(30) : msToNs(50);

    uint64_t only_tenants = 0;
    if (const char *env = std::getenv("ISOL_FLEET_TENANTS")) {
        if (auto parsed = parseUint(env))
            only_tenants = *parsed;
    }

    std::vector<FleetPoint> grid;
    for (FleetPoint pt : {FleetPoint{64, 2, Knob::kIoCost},
                          FleetPoint{64, 2, Knob::kIoMax},
                          FleetPoint{256, 3, Knob::kIoCost},
                          FleetPoint{256, 3, Knob::kIoMax},
                          FleetPoint{1024, 4, Knob::kIoCost},
                          FleetPoint{1024, 4, Knob::kIoMax}}) {
        if (only_tenants != 0 && pt.tenants != only_tenants)
            continue;
        if (quick && only_tenants == 0 && pt.tenants > 256)
            continue;
        grid.push_back(pt);
    }

    std::printf("Fleet-scale hierarchical cgroup stress: "
                "8 pods, heterogeneous tenants, one adversary per pod\n");

    std::vector<supervisor::Task> tasks;
    tasks.reserve(grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        // isol: parallel
        tasks.push_back([&grid, duration, warmup, i]() -> std::string {
            FleetResult res = runFleetPoint(grid[i], duration, warmup);
            double share =
                res.events > 0
                    ? static_cast<double>(res.bookkeeping_ops) /
                          static_cast<double>(res.events)
                    : 0.0;
            return bench::joinRow(
                {strCat(grid[i].tenants), strCat(grid[i].levels),
                 knobName(grid[i].knob), bench::gibs(res.agg_gibs),
                 strCat(res.events), strCat(res.bookkeeping_ops),
                 formatDouble(share, 3), strCat(res.tracked_groups)});
        });
    }
    std::vector<std::string> payloads =
        bench::supervisedSweep("fleet_scale", tasks);

    stats::Table table({"tenants", "levels", "knob", "agg GiB/s",
                        "events", "bookkeeping", "bk/event", "groups"});
    for (const std::string &payload : payloads) {
        if (!payload.empty())
            table.addRow(bench::splitRow(payload));
    }
    std::fputs(table.toAligned().c_str(), stdout);
    bench::emitSweepReport();
    return 0;
}
