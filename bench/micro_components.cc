/**
 * @file
 * google-benchmark micro benchmarks for the simulator components: event
 * queue throughput, histogram recording and percentile queries, FTL
 * write/GC bookkeeping, iocost accounting, and a small end-to-end
 * simulation — so performance regressions in the substrate are visible.
 *
 * In addition to the google-benchmark suite, main() hand-times the
 * schedule/pop/cancel mix (>= 1M events) on both the current EventQueue
 * and a frozen copy of the seed implementation, plus an end-to-end
 * parallel sweep, and writes the results to BENCH_micro.json so the
 * perf trajectory (and the queue-redesign speedup) is tracked across
 * PRs.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <queue>
#include <unordered_set>

#include "bench_util.hh"
#include "blk/qos_cost.hh"
#include "cgroup/cgroup.hh"
#include "common/alloc_hook.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "isolbench/sweep.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"
#include "ssd/ftl.hh"
#include "stats/histogram.hh"

using namespace isol;

namespace
{

/**
 * The seed's event queue (std::priority_queue<std::function> + an
 * unordered_set cancellation side-table), kept verbatim as the baseline
 * the BENCH_micro.json speedup is measured against.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    uint64_t
    schedule(SimTime when, Callback cb)
    {
        uint64_t id = next_id_++;
        heap_.push(Event{when, id, std::move(cb)});
        return id;
    }

    bool
    cancel(uint64_t id)
    {
        if (id == 0 || id >= next_id_)
            return false;
        return cancelled_.insert(id).second;
    }

    bool
    empty()
    {
        skipCancelled();
        return heap_.empty();
    }

    std::pair<SimTime, Callback>
    pop()
    {
        skipCancelled();
        Event &top = const_cast<Event &>(heap_.top());
        std::pair<SimTime, Callback> out{top.when, std::move(top.cb)};
        heap_.pop();
        return out;
    }

  private:
    struct Event
    {
        SimTime when;
        uint64_t id;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    void
    skipCancelled()
    {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end())
                break;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::unordered_set<uint64_t> cancelled_;
    uint64_t next_id_ = 1;
};

/**
 * The 4-ary slotted heap the timing wheel replaced, kept verbatim as the
 * second baseline: the wheel's acceptance bar is >= 2x over this heap on
 * clustered short-horizon workloads, and BENCH_micro.json records the
 * ratio per horizon distribution.
 */
class HeapEventQueue
{
  public:
    using Callback = sim::SmallCallback;

    HeapEventQueue() = default;
    HeapEventQueue(const HeapEventQueue &) = delete;
    HeapEventQueue &operator=(const HeapEventQueue &) = delete;

    uint64_t
    schedule(SimTime when, Callback cb)
    {
        uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            slot = static_cast<uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        Slot &s = slots_[slot];
        s.cb = std::move(cb);
        s.state = State::kPending;
        heap_.push_back(Key{when, next_seq_++, slot});
        siftUp(heap_.size() - 1);
        ++live_;
        return (static_cast<uint64_t>(slot) + 1) << 32 | s.gen;
    }

    bool
    cancel(uint64_t id)
    {
        uint64_t hi = id >> 32;
        if (hi == 0)
            return false;
        auto slot = static_cast<uint32_t>(hi - 1);
        auto gen = static_cast<uint32_t>(id);
        if (slot >= slots_.size())
            return false;
        Slot &s = slots_[slot];
        if (s.state != State::kPending || s.gen != gen)
            return false;
        s.cb.reset();
        s.state = State::kCancelled;
        ++s.gen;
        --live_;
        return true;
    }

    bool empty() const { return live_ == 0; }

    std::pair<SimTime, Callback>
    pop()
    {
        skipCancelled();
        const Key top = heap_.front();
        Slot &s = slots_[top.slot];
        std::pair<SimTime, Callback> out{top.when, std::move(s.cb)};
        freeSlot(top.slot);
        removeTop();
        --live_;
        return out;
    }

  private:
    enum class State : uint8_t { kFree, kPending, kCancelled };
    struct Key
    {
        SimTime when;
        uint64_t seq;
        uint32_t slot;
    };
    struct Slot
    {
        Callback cb;
        uint32_t gen = 0;
        State state = State::kFree;
    };

    static bool
    before(const Key &a, const Key &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    void
    siftUp(size_t i)
    {
        Key key = heap_[i];
        while (i > 0) {
            size_t parent = (i - 1) / 4;
            if (!before(key, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = key;
    }

    void
    siftDown(size_t i)
    {
        Key key = heap_[i];
        size_t n = heap_.size();
        for (;;) {
            size_t first = i * 4 + 1;
            if (first >= n)
                break;
            size_t best = first;
            size_t last = first + 4 < n ? first + 4 : n;
            for (size_t c = first + 1; c < last; ++c) {
                if (before(heap_[c], heap_[best]))
                    best = c;
            }
            if (!before(heap_[best], key))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = key;
    }

    void
    removeTop()
    {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }

    void
    freeSlot(uint32_t slot)
    {
        Slot &s = slots_[slot];
        s.state = State::kFree;
        ++s.gen;
        free_.push_back(slot);
    }

    void
    skipCancelled()
    {
        while (!heap_.empty()) {
            Slot &s = slots_[heap_.front().slot];
            if (s.state != State::kCancelled)
                break;
            freeSlot(heap_.front().slot);
            removeTop();
        }
    }

    std::vector<Key> heap_;
    std::vector<Slot> slots_;
    std::vector<uint32_t> free_;
    uint64_t next_seq_ = 0;
    size_t live_ = 0;
};

/** Reschedule-horizon distribution of a queue workload. */
enum class Horizon
{
    kUniform, //!< flat over ~1 ms of simulated time
    kClustered, //!< short timers near now (the DES common case)
    kBimodal, //!< mostly short with a far-future tail
};

constexpr const char *kHorizonNames[] = {"uniform", "clustered",
                                         "bimodal"};

/**
 * Steady-state schedule/pop/cancel mix under a chosen horizon
 * distribution: every iteration pops and reschedules, every eighth
 * schedules a far-future event that a later batch cancels while it is
 * still pending. Returns primitive queue operations performed.
 */
template <typename Queue>
uint64_t
horizonWorkload(Horizon kind, uint64_t iterations, uint64_t depth)
{
    Queue q;
    Rng rng(11);
    uint64_t fired = 0;
    uint64_t ops = 0;
    auto next = [&](SimTime now) -> SimTime {
        switch (kind) {
          case Horizon::kUniform:
            return now + 1 + static_cast<SimTime>(rng.below(1 << 20));
          case Horizon::kClustered:
            return now + 1 + static_cast<SimTime>(rng.below(2000));
          case Horizon::kBimodal:
            return rng.below(10) < 8
                       ? now + 1 + static_cast<SimTime>(rng.below(500))
                       : now + 500000 +
                             static_cast<SimTime>(rng.below(5000));
        }
        return now + 1;
    };
    std::vector<uint64_t> cancellable;
    cancellable.reserve(32);
    for (uint64_t i = 0; i < depth; ++i) {
        q.schedule(next(0), [&fired] { ++fired; });
        ++ops;
    }
    for (uint64_t i = 0; i < iterations; ++i) {
        auto [now, cb] = q.pop();
        cb();
        ++ops;
        q.schedule(next(now), [&fired] { ++fired; });
        ++ops;
        if ((i & 7) == 0) {
            cancellable.push_back(q.schedule(next(now) + 10000000,
                                             [&fired] { ++fired; }));
            ++ops;
            if (cancellable.size() >= 32) {
                for (uint64_t id : cancellable) {
                    q.cancel(id);
                    ++ops;
                }
                cancellable.clear();
            }
        }
    }
    while (!q.empty()) {
        q.pop().second();
        ++ops;
    }
    return ops;
}

/**
 * The schedule/pop/cancel mix both queue implementations are timed on:
 * a steady-state queue of ~1280 events where every iteration pops and
 * reschedules, and every fourth iteration schedules a far-future event
 * that is later cancelled while still pending. Returns the number of
 * primitive queue operations performed.
 */
template <typename Queue>
uint64_t
mixedQueueWorkload(uint64_t iterations, uint64_t *fired_out = nullptr)
{
    Queue q;
    Rng rng(7);
    uint64_t fired = 0;
    uint64_t ops = 0;
    std::vector<uint64_t> cancellable;
    cancellable.reserve(16);

    for (int i = 0; i < 1024; ++i) {
        q.schedule(static_cast<SimTime>(rng.below(1000)),
                   [&fired] { ++fired; });
        ++ops;
    }
    for (uint64_t i = 0; i < iterations; ++i) {
        auto [now, cb] = q.pop();
        cb();
        ++ops;
        q.schedule(now + 1 + static_cast<SimTime>(rng.below(1000)),
                   [&fired] { ++fired; });
        ++ops;
        if ((i & 3) == 0) {
            // Far enough out that the id is still pending when the
            // batch below cancels it.
            cancellable.push_back(q.schedule(
                now + 100000 + static_cast<SimTime>(rng.below(1000)),
                [&fired] { ++fired; }));
            ++ops;
            if (cancellable.size() >= 16) {
                for (uint64_t id : cancellable) {
                    q.cancel(id);
                    ++ops;
                }
                cancellable.clear();
            }
        }
    }
    while (!q.empty()) {
        q.pop().second();
        ++ops;
    }
    if (fired_out != nullptr)
        *fired_out = fired;
    return ops;
}

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int fired = 0;
        for (int i = 0; i < 1024; ++i)
            sim.at(i * 100, [&fired] { ++fired; });
        sim.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueCascade(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int depth = 0;
        std::function<void()> chain = [&] {
            if (++depth < 4096)
                sim.after(nsToNs(10), chain);
        };
        sim.after(nsToNs(10), chain);
        sim.runAll();
        benchmark::DoNotOptimize(depth);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EventQueueCascade);

void
BM_EventQueueMixed(benchmark::State &state)
{
    uint64_t ops = 0;
    for (auto _ : state)
        ops += mixedQueueWorkload<sim::EventQueue>(1 << 20);
    state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_EventQueueMixed)->Unit(benchmark::kMillisecond);

void
BM_LegacyEventQueueMixed(benchmark::State &state)
{
    uint64_t ops = 0;
    for (auto _ : state)
        ops += mixedQueueWorkload<LegacyEventQueue>(1 << 20);
    state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_LegacyEventQueueMixed)->Unit(benchmark::kMillisecond);

void
BM_EventQueueHorizon(benchmark::State &state)
{
    auto kind = static_cast<Horizon>(state.range(0));
    uint64_t ops = 0;
    for (auto _ : state)
        ops += horizonWorkload<sim::EventQueue>(kind, 1 << 18, 8192);
    state.SetItemsProcessed(static_cast<int64_t>(ops));
    state.SetLabel(kHorizonNames[state.range(0)]);
}
BENCHMARK(BM_EventQueueHorizon)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_HeapEventQueueHorizon(benchmark::State &state)
{
    auto kind = static_cast<Horizon>(state.range(0));
    uint64_t ops = 0;
    for (auto _ : state)
        ops += horizonWorkload<HeapEventQueue>(kind, 1 << 18, 8192);
    state.SetItemsProcessed(static_cast<int64_t>(ops));
    state.SetLabel(kHorizonNames[state.range(0)]);
}
BENCHMARK(BM_HeapEventQueueHorizon)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

/** One tiny end-to-end scenario, as the sweep-throughput work unit. */
uint64_t
runMiniScenario(uint64_t seed)
{
    isolbench::ScenarioConfig cfg;
    cfg.name = strCat("micro-sweep-", seed);
    cfg.knob = isolbench::Knob::kIoCost;
    cfg.num_cores = 4;
    cfg.duration = msToNs(60);
    cfg.warmup = msToNs(20);
    cfg.seed = seed;
    isolbench::Scenario scenario(cfg);
    scenario.addApp(workload::lcApp("lc", cfg.duration), "lc");
    scenario.addApp(workload::beApp("be", cfg.duration), "be");
    scenario.run();
    return scenario.sim().eventsExecuted();
}

void
BM_SweepFanout(benchmark::State &state)
{
    uint64_t events = 0;
    for (auto _ : state) {
        // isol: parallel
        auto per_run = isolbench::sweep::map<uint64_t>(
            8, [](size_t i) { return runMiniScenario(i + 1); });
        for (uint64_t e : per_run)
            events += e;
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_SweepFanout)->Unit(benchmark::kMillisecond);

void
BM_HistogramRecord(benchmark::State &state)
{
    stats::Histogram hist;
    Rng rng(1);
    for (auto _ : state)
        hist.record(static_cast<int64_t>(rng.below(10000000)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void
BM_HistogramPercentile(benchmark::State &state)
{
    stats::Histogram hist;
    Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        hist.record(static_cast<int64_t>(rng.below(10000000)));
    for (auto _ : state)
        benchmark::DoNotOptimize(hist.percentile(99.0));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramPercentile);

void
BM_FtlRandomWrite(benchmark::State &state)
{
    ssd::SsdConfig cfg = ssd::samsung980ProLike();
    cfg.user_capacity = 256 * MiB;
    cfg.channels = 4;
    cfg.dies_per_channel = 4;
    ssd::Ftl ftl(cfg);
    Rng rng(1);
    ftl.preconditionSequentialFill(1.0);
    for (auto _ : state)
        ftl.preconditionRandomOverwrite(1, rng);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FtlRandomWrite);

void
BM_IoCostAbsCost(benchmark::State &state)
{
    sim::Simulator sim;
    cgroup::CgroupTree tree;
    blk::IoCostGate gate(sim, 0, tree, [](blk::Request *) {});
    blk::Request req;
    req.op = OpType::kRead;
    req.size = 4096;
    for (auto _ : state)
        benchmark::DoNotOptimize(gate.absCost(req));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IoCostAbsCost);

void
BM_SsdRandomRead4k(benchmark::State &state)
{
    // Whole-device random-read throughput: events per simulated I/O.
    for (auto _ : state) {
        sim::Simulator sim;
        ssd::SsdDevice dev(sim, ssd::samsung980ProLike(), 3);
        Rng rng(3);
        uint64_t completed = 0;
        std::function<void()> issue = [&] {
            uint64_t off = rng.below(2097152) * 4096;
            dev.submit(OpType::kRead, off, 4096, [&] {
                ++completed;
                if (sim.now() < msToNs(5))
                    issue();
            });
        };
        for (int i = 0; i < 256; ++i)
            issue();
        sim.runUntil(msToNs(5));
        benchmark::DoNotOptimize(completed);
        state.SetItemsProcessed(
            static_cast<int64_t>(sim.eventsExecuted()));
    }
}
BENCHMARK(BM_SsdRandomRead4k)->Unit(benchmark::kMillisecond);

/** Best-of-three wall time (seconds) for `fn()`. */
template <typename Fn>
double
bestOfThree(Fn fn)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        double start_ms = isolbench::sweep::monotonicMs();
        fn();
        double wall_s =
            (isolbench::sweep::monotonicMs() - start_ms) / 1e3;
        if (wall_s < best)
            best = wall_s;
    }
    return best;
}

/** One horizon-distribution comparison row of BENCH_micro.json. */
struct HorizonResult
{
    uint64_t ops = 0;
    double heap_ops_per_sec = 0;
    double wheel_ops_per_sec = 0;
    double wheel_allocs_per_op = 0;
};

HorizonResult
measureHorizon(Horizon kind, uint64_t iterations, uint64_t depth)
{
    HorizonResult r;
    double heap_s = bestOfThree([&] {
        r.ops = horizonWorkload<HeapEventQueue>(kind, iterations, depth);
    });
    double wheel_s = bestOfThree([&] {
        r.ops = horizonWorkload<sim::EventQueue>(kind, iterations, depth);
    });
    r.heap_ops_per_sec = static_cast<double>(r.ops) / heap_s;
    r.wheel_ops_per_sec = static_cast<double>(r.ops) / wheel_s;
    if (common::allocCountingEnabled()) {
        common::resetAllocCounters();
        horizonWorkload<sim::EventQueue>(kind, iterations, depth);
        r.wheel_allocs_per_op =
            static_cast<double>(common::allocCounters().allocs) /
            static_cast<double>(r.ops);
    }
    return r;
}

/**
 * Hand-timed queue comparison + end-to-end sweep throughput, written to
 * BENCH_micro.json. Kept outside google-benchmark so the JSON schema
 * (in particular the legacy-vs-current speedup) is stable for trackers.
 */
void
writeMicroJson(const char *path)
{
    constexpr uint64_t kIterations = 1 << 20; // >= 1M mixed events
    uint64_t ops = 0;
    double legacy_s =
        bestOfThree([&] { ops = mixedQueueWorkload<LegacyEventQueue>(
                              kIterations); });
    double heap_s =
        bestOfThree([&] { ops = mixedQueueWorkload<HeapEventQueue>(
                              kIterations); });
    double current_s =
        bestOfThree([&] { ops = mixedQueueWorkload<sim::EventQueue>(
                              kIterations); });
    double legacy_ops_per_sec = static_cast<double>(ops) / legacy_s;
    double heap_ops_per_sec = static_cast<double>(ops) / heap_s;
    double current_ops_per_sec = static_cast<double>(ops) / current_s;

    // Steady-state population matches a busy sweep (thousands of
    // inflight timers), where the heap pays its log-depth sift on every
    // pop and the wheel stays O(1).
    constexpr uint64_t kHorizonIters = 1 << 19;
    constexpr uint64_t kHorizonDepth = 8192;
    HorizonResult horizons[3];
    for (int k = 0; k < 3; ++k)
        horizons[k] = measureHorizon(static_cast<Horizon>(k),
                                     kHorizonIters, kHorizonDepth);

    isolbench::sweep::clearProfiles();
    uint64_t sweep_events = 0;
    double sweep_s = bestOfThree([&] {
        sweep_events = 0;
        // isol: parallel
        auto per_run = isolbench::sweep::map<uint64_t>(
            8, [](size_t i) { return runMiniScenario(i + 1); });
        for (uint64_t e : per_run)
            sweep_events += e;
    });

    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warning: could not write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"event_queue_mixed\": {\n"
                 "    \"ops\": %llu,\n"
                 "    \"legacy_ops_per_sec\": %.0f,\n"
                 "    \"heap_ops_per_sec\": %.0f,\n"
                 "    \"current_ops_per_sec\": %.0f,\n"
                 "    \"speedup_vs_seed\": %.3f,\n"
                 "    \"speedup_vs_heap\": %.3f\n"
                 "  },\n"
                 "  \"event_queue_horizons\": {\n"
                 "    \"iterations\": %llu,\n"
                 "    \"depth\": %llu,\n",
                 static_cast<unsigned long long>(ops),
                 legacy_ops_per_sec, heap_ops_per_sec,
                 current_ops_per_sec,
                 current_ops_per_sec / legacy_ops_per_sec,
                 current_ops_per_sec / heap_ops_per_sec,
                 static_cast<unsigned long long>(kHorizonIters),
                 static_cast<unsigned long long>(kHorizonDepth));
    for (int k = 0; k < 3; ++k) {
        const HorizonResult &r = horizons[k];
        std::fprintf(f,
                     "    \"%s\": {\n"
                     "      \"ops\": %llu,\n"
                     "      \"heap_ops_per_sec\": %.0f,\n"
                     "      \"wheel_ops_per_sec\": %.0f,\n"
                     "      \"speedup_vs_heap\": %.3f,\n"
                     "      \"wheel_allocs_per_op\": %.6f\n"
                     "    }%s\n",
                     kHorizonNames[k],
                     static_cast<unsigned long long>(r.ops),
                     r.heap_ops_per_sec, r.wheel_ops_per_sec,
                     r.wheel_ops_per_sec / r.heap_ops_per_sec,
                     r.wheel_allocs_per_op, k == 2 ? "" : ",");
    }
    std::fprintf(f,
                 "  },\n"
                 "  \"alloc_counting\": %s,\n"
                 "  \"sweep_end_to_end\": {\n"
                 "    \"scenarios\": 8,\n"
                 "    \"jobs\": %u,\n"
                 "    \"events\": %llu,\n"
                 "    \"wall_s\": %.4f,\n"
                 "    \"events_per_sec\": %.0f\n"
                 "  }\n"
                 "}\n",
                 common::allocCountingEnabled() ? "true" : "false",
                 isolbench::sweep::defaultJobs(),
                 static_cast<unsigned long long>(sweep_events), sweep_s,
                 static_cast<double>(sweep_events) / sweep_s);
    std::fclose(f);
    std::printf("BENCH_micro.json: event-queue speedup vs seed %.2fx, "
                "vs 4-ary heap %.2fx (%.1f -> %.1f Mops/s); clustered "
                "horizon vs heap %.2fx; sweep %.2f Mevents/s\n",
                current_ops_per_sec / legacy_ops_per_sec,
                current_ops_per_sec / heap_ops_per_sec,
                heap_ops_per_sec / 1e6, current_ops_per_sec / 1e6,
                horizons[1].wheel_ops_per_sec /
                    horizons[1].heap_ops_per_sec,
                static_cast<double>(sweep_events) / sweep_s / 1e6);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    // Anything google-benchmark did not consume goes through the shared
    // bench flags (--jobs & supervision), which abort on real typos.
    bench::parseArgs(argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeMicroJson("BENCH_micro.json");
    return 0;
}
