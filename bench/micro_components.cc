/**
 * @file
 * google-benchmark micro benchmarks for the simulator components: event
 * queue throughput, histogram recording and percentile queries, FTL
 * write/GC bookkeeping, iocost accounting, and a small end-to-end
 * simulation — so performance regressions in the substrate are visible.
 */

#include <benchmark/benchmark.h>

#include "blk/qos_cost.hh"
#include "cgroup/cgroup.hh"
#include "common/rng.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"
#include "ssd/ftl.hh"
#include "stats/histogram.hh"

using namespace isol;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int fired = 0;
        for (int i = 0; i < 1024; ++i)
            sim.at(i * 100, [&fired] { ++fired; });
        sim.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueCascade(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int depth = 0;
        std::function<void()> chain = [&] {
            if (++depth < 4096)
                sim.after(10, chain);
        };
        sim.after(10, chain);
        sim.runAll();
        benchmark::DoNotOptimize(depth);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EventQueueCascade);

void
BM_HistogramRecord(benchmark::State &state)
{
    stats::Histogram hist;
    Rng rng(1);
    for (auto _ : state)
        hist.record(static_cast<int64_t>(rng.below(10000000)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void
BM_HistogramPercentile(benchmark::State &state)
{
    stats::Histogram hist;
    Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        hist.record(static_cast<int64_t>(rng.below(10000000)));
    for (auto _ : state)
        benchmark::DoNotOptimize(hist.percentile(99.0));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramPercentile);

void
BM_FtlRandomWrite(benchmark::State &state)
{
    ssd::SsdConfig cfg = ssd::samsung980ProLike();
    cfg.user_capacity = 256 * MiB;
    cfg.channels = 4;
    cfg.dies_per_channel = 4;
    ssd::Ftl ftl(cfg);
    Rng rng(1);
    ftl.preconditionSequentialFill(1.0);
    for (auto _ : state)
        ftl.preconditionRandomOverwrite(1, rng);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FtlRandomWrite);

void
BM_IoCostAbsCost(benchmark::State &state)
{
    sim::Simulator sim;
    cgroup::CgroupTree tree;
    blk::IoCostGate gate(sim, 0, tree, [](blk::Request *) {});
    blk::Request req;
    req.op = OpType::kRead;
    req.size = 4096;
    for (auto _ : state)
        benchmark::DoNotOptimize(gate.absCost(req));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IoCostAbsCost);

void
BM_SsdRandomRead4k(benchmark::State &state)
{
    // Whole-device random-read throughput: events per simulated I/O.
    for (auto _ : state) {
        sim::Simulator sim;
        ssd::SsdDevice dev(sim, ssd::samsung980ProLike(), 3);
        Rng rng(3);
        uint64_t completed = 0;
        std::function<void()> issue = [&] {
            uint64_t off = rng.below(2097152) * 4096;
            dev.submit(OpType::kRead, off, 4096, [&] {
                ++completed;
                if (sim.now() < msToNs(5))
                    issue();
            });
        };
        for (int i = 0; i < 256; ++i)
            issue();
        sim.runUntil(msToNs(5));
        benchmark::DoNotOptimize(completed);
        state.SetItemsProcessed(
            static_cast<int64_t>(sim.eventsExecuted()));
    }
}
BENCHMARK(BM_SsdRandomRead4k)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
