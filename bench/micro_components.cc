/**
 * @file
 * google-benchmark micro benchmarks for the simulator components: event
 * queue throughput, histogram recording and percentile queries, FTL
 * write/GC bookkeeping, iocost accounting, and a small end-to-end
 * simulation — so performance regressions in the substrate are visible.
 *
 * In addition to the google-benchmark suite, main() hand-times the
 * schedule/pop/cancel mix (>= 1M events) on both the current EventQueue
 * and a frozen copy of the seed implementation, plus an end-to-end
 * parallel sweep, and writes the results to BENCH_micro.json so the
 * perf trajectory (and the queue-redesign speedup) is tracked across
 * PRs.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <queue>
#include <unordered_set>

#include "bench_util.hh"
#include "blk/qos_cost.hh"
#include "cgroup/cgroup.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "isolbench/sweep.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"
#include "ssd/ftl.hh"
#include "stats/histogram.hh"

using namespace isol;

namespace
{

/**
 * The seed's event queue (std::priority_queue<std::function> + an
 * unordered_set cancellation side-table), kept verbatim as the baseline
 * the BENCH_micro.json speedup is measured against.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    uint64_t
    schedule(SimTime when, Callback cb)
    {
        uint64_t id = next_id_++;
        heap_.push(Event{when, id, std::move(cb)});
        return id;
    }

    bool
    cancel(uint64_t id)
    {
        if (id == 0 || id >= next_id_)
            return false;
        return cancelled_.insert(id).second;
    }

    bool
    empty()
    {
        skipCancelled();
        return heap_.empty();
    }

    std::pair<SimTime, Callback>
    pop()
    {
        skipCancelled();
        Event &top = const_cast<Event &>(heap_.top());
        std::pair<SimTime, Callback> out{top.when, std::move(top.cb)};
        heap_.pop();
        return out;
    }

  private:
    struct Event
    {
        SimTime when;
        uint64_t id;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    void
    skipCancelled()
    {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end())
                break;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::unordered_set<uint64_t> cancelled_;
    uint64_t next_id_ = 1;
};

/**
 * The schedule/pop/cancel mix both queue implementations are timed on:
 * a steady-state queue of ~1280 events where every iteration pops and
 * reschedules, and every fourth iteration schedules a far-future event
 * that is later cancelled while still pending. Returns the number of
 * primitive queue operations performed.
 */
template <typename Queue>
uint64_t
mixedQueueWorkload(uint64_t iterations, uint64_t *fired_out = nullptr)
{
    Queue q;
    Rng rng(7);
    uint64_t fired = 0;
    uint64_t ops = 0;
    std::vector<uint64_t> cancellable;
    cancellable.reserve(16);

    for (int i = 0; i < 1024; ++i) {
        q.schedule(static_cast<SimTime>(rng.below(1000)),
                   [&fired] { ++fired; });
        ++ops;
    }
    for (uint64_t i = 0; i < iterations; ++i) {
        auto [now, cb] = q.pop();
        cb();
        ++ops;
        q.schedule(now + 1 + static_cast<SimTime>(rng.below(1000)),
                   [&fired] { ++fired; });
        ++ops;
        if ((i & 3) == 0) {
            // Far enough out that the id is still pending when the
            // batch below cancels it.
            cancellable.push_back(q.schedule(
                now + 100000 + static_cast<SimTime>(rng.below(1000)),
                [&fired] { ++fired; }));
            ++ops;
            if (cancellable.size() >= 16) {
                for (uint64_t id : cancellable) {
                    q.cancel(id);
                    ++ops;
                }
                cancellable.clear();
            }
        }
    }
    while (!q.empty()) {
        q.pop().second();
        ++ops;
    }
    if (fired_out != nullptr)
        *fired_out = fired;
    return ops;
}

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int fired = 0;
        for (int i = 0; i < 1024; ++i)
            sim.at(i * 100, [&fired] { ++fired; });
        sim.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueCascade(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int depth = 0;
        std::function<void()> chain = [&] {
            if (++depth < 4096)
                sim.after(10, chain);
        };
        sim.after(10, chain);
        sim.runAll();
        benchmark::DoNotOptimize(depth);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EventQueueCascade);

void
BM_EventQueueMixed(benchmark::State &state)
{
    uint64_t ops = 0;
    for (auto _ : state)
        ops += mixedQueueWorkload<sim::EventQueue>(1 << 20);
    state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_EventQueueMixed)->Unit(benchmark::kMillisecond);

void
BM_LegacyEventQueueMixed(benchmark::State &state)
{
    uint64_t ops = 0;
    for (auto _ : state)
        ops += mixedQueueWorkload<LegacyEventQueue>(1 << 20);
    state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_LegacyEventQueueMixed)->Unit(benchmark::kMillisecond);

/** One tiny end-to-end scenario, as the sweep-throughput work unit. */
uint64_t
runMiniScenario(uint64_t seed)
{
    isolbench::ScenarioConfig cfg;
    cfg.name = strCat("micro-sweep-", seed);
    cfg.knob = isolbench::Knob::kIoCost;
    cfg.num_cores = 4;
    cfg.duration = msToNs(60);
    cfg.warmup = msToNs(20);
    cfg.seed = seed;
    isolbench::Scenario scenario(cfg);
    scenario.addApp(workload::lcApp("lc", cfg.duration), "lc");
    scenario.addApp(workload::beApp("be", cfg.duration), "be");
    scenario.run();
    return scenario.sim().eventsExecuted();
}

void
BM_SweepFanout(benchmark::State &state)
{
    uint64_t events = 0;
    for (auto _ : state) {
        // isol: parallel
        auto per_run = isolbench::sweep::map<uint64_t>(
            8, [](size_t i) { return runMiniScenario(i + 1); });
        for (uint64_t e : per_run)
            events += e;
    }
    state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_SweepFanout)->Unit(benchmark::kMillisecond);

void
BM_HistogramRecord(benchmark::State &state)
{
    stats::Histogram hist;
    Rng rng(1);
    for (auto _ : state)
        hist.record(static_cast<int64_t>(rng.below(10000000)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void
BM_HistogramPercentile(benchmark::State &state)
{
    stats::Histogram hist;
    Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        hist.record(static_cast<int64_t>(rng.below(10000000)));
    for (auto _ : state)
        benchmark::DoNotOptimize(hist.percentile(99.0));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramPercentile);

void
BM_FtlRandomWrite(benchmark::State &state)
{
    ssd::SsdConfig cfg = ssd::samsung980ProLike();
    cfg.user_capacity = 256 * MiB;
    cfg.channels = 4;
    cfg.dies_per_channel = 4;
    ssd::Ftl ftl(cfg);
    Rng rng(1);
    ftl.preconditionSequentialFill(1.0);
    for (auto _ : state)
        ftl.preconditionRandomOverwrite(1, rng);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FtlRandomWrite);

void
BM_IoCostAbsCost(benchmark::State &state)
{
    sim::Simulator sim;
    cgroup::CgroupTree tree;
    blk::IoCostGate gate(sim, 0, tree, [](blk::Request *) {});
    blk::Request req;
    req.op = OpType::kRead;
    req.size = 4096;
    for (auto _ : state)
        benchmark::DoNotOptimize(gate.absCost(req));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IoCostAbsCost);

void
BM_SsdRandomRead4k(benchmark::State &state)
{
    // Whole-device random-read throughput: events per simulated I/O.
    for (auto _ : state) {
        sim::Simulator sim;
        ssd::SsdDevice dev(sim, ssd::samsung980ProLike(), 3);
        Rng rng(3);
        uint64_t completed = 0;
        std::function<void()> issue = [&] {
            uint64_t off = rng.below(2097152) * 4096;
            dev.submit(OpType::kRead, off, 4096, [&] {
                ++completed;
                if (sim.now() < msToNs(5))
                    issue();
            });
        };
        for (int i = 0; i < 256; ++i)
            issue();
        sim.runUntil(msToNs(5));
        benchmark::DoNotOptimize(completed);
        state.SetItemsProcessed(
            static_cast<int64_t>(sim.eventsExecuted()));
    }
}
BENCHMARK(BM_SsdRandomRead4k)->Unit(benchmark::kMillisecond);

/** Best-of-three wall time (seconds) for `fn()`. */
template <typename Fn>
double
bestOfThree(Fn fn)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        double start_ms = isolbench::sweep::monotonicMs();
        fn();
        double wall_s =
            (isolbench::sweep::monotonicMs() - start_ms) / 1e3;
        if (wall_s < best)
            best = wall_s;
    }
    return best;
}

/**
 * Hand-timed queue comparison + end-to-end sweep throughput, written to
 * BENCH_micro.json. Kept outside google-benchmark so the JSON schema
 * (in particular the legacy-vs-current speedup) is stable for trackers.
 */
void
writeMicroJson(const char *path)
{
    constexpr uint64_t kIterations = 1 << 20; // >= 1M mixed events
    uint64_t ops = 0;
    double legacy_s =
        bestOfThree([&] { ops = mixedQueueWorkload<LegacyEventQueue>(
                              kIterations); });
    double current_s =
        bestOfThree([&] { ops = mixedQueueWorkload<sim::EventQueue>(
                              kIterations); });
    double legacy_ops_per_sec = static_cast<double>(ops) / legacy_s;
    double current_ops_per_sec = static_cast<double>(ops) / current_s;

    isolbench::sweep::clearProfiles();
    uint64_t sweep_events = 0;
    double sweep_s = bestOfThree([&] {
        sweep_events = 0;
        // isol: parallel
        auto per_run = isolbench::sweep::map<uint64_t>(
            8, [](size_t i) { return runMiniScenario(i + 1); });
        for (uint64_t e : per_run)
            sweep_events += e;
    });

    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warning: could not write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"event_queue_mixed\": {\n"
                 "    \"ops\": %llu,\n"
                 "    \"legacy_ops_per_sec\": %.0f,\n"
                 "    \"current_ops_per_sec\": %.0f,\n"
                 "    \"speedup_vs_seed\": %.3f\n"
                 "  },\n"
                 "  \"sweep_end_to_end\": {\n"
                 "    \"scenarios\": 8,\n"
                 "    \"jobs\": %u,\n"
                 "    \"events\": %llu,\n"
                 "    \"wall_s\": %.4f,\n"
                 "    \"events_per_sec\": %.0f\n"
                 "  }\n"
                 "}\n",
                 static_cast<unsigned long long>(ops),
                 legacy_ops_per_sec, current_ops_per_sec,
                 current_ops_per_sec / legacy_ops_per_sec,
                 isolbench::sweep::defaultJobs(),
                 static_cast<unsigned long long>(sweep_events), sweep_s,
                 static_cast<double>(sweep_events) / sweep_s);
    std::fclose(f);
    std::printf("BENCH_micro.json: event-queue speedup vs seed %.2fx "
                "(%.1f -> %.1f Mops/s), sweep %.2f Mevents/s\n",
                current_ops_per_sec / legacy_ops_per_sec,
                legacy_ops_per_sec / 1e6, current_ops_per_sec / 1e6,
                static_cast<double>(sweep_events) / sweep_s / 1e6);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    // Anything google-benchmark did not consume goes through the shared
    // bench flags (--jobs & supervision), which abort on real typos.
    bench::parseArgs(argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeMicroJson("BENCH_micro.json");
    return 0;
}
