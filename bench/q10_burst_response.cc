/**
 * @file
 * Reproduces Q10 (§VI-C, not plotted in the paper): response time of
 * each knob for high-priority bursty apps.
 *
 * A BE cgroup saturates the SSD; a high-priority app (batch-app and
 * LC-app) bursts in mid-run with the knob configured for strong
 * prioritization. We report the milliseconds until the priority app
 * sustains >= 90% of its steady-state performance.
 *
 * Expected shape (O10): io.latency takes seconds (one QD halving per
 * 500 ms window); io.cost, io.max, and the I/O schedulers respond in
 * milliseconds.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/d4_bursts.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bool quick = bench::quickMode();
    BurstOptions opts;
    opts.threshold = 0.9;
    if (quick) {
        opts.duration = secToNs(int64_t{5});
        opts.burst_start = msToNs(1000);
    }

    std::printf("Q10: response time for high-priority bursty apps "
                "(time to >= %.0f%% of steady state)\n",
                opts.threshold * 100.0);

    stats::Table table({"knob", "priority app", "response (ms)",
                        "steady value"});
    for (PriorityAppKind kind :
         {PriorityAppKind::kBatch, PriorityAppKind::kLc}) {
        for (Knob knob : {Knob::kMqDeadline, Knob::kBfq, Knob::kIoMax,
                          Knob::kIoLatency, Knob::kIoCost}) {
            BurstResult res = runBurstResponse(knob, kind, opts);
            std::string response = res.response_ms < 0.0
                ? "not reached"
                : isol::formatDouble(res.response_ms, 0);
            std::string steady = kind == PriorityAppKind::kBatch
                ? bench::gibs(res.steady_value) + " GiB/s"
                : bench::gibs(res.steady_value) + " GiB/s (QD1 rate)";
            table.addRow({knobName(knob), priorityAppKindName(kind),
                          response, steady});
        }
    }
    std::fputs(table.toAligned().c_str(), stdout);
    return 0;
}
