/**
 * @file
 * Reproduces Table I: the performance-isolation desiderata matrix for
 * the cgroups I/O control knobs, derived by actually running a
 * representative sub-benchmark per desideratum and applying the paper's
 * verdict criteria:
 *
 *  - Low Overhead: P99 latency within ~10% of `none` at 1 LC-app AND
 *    >= 85% of `none` single-SSD batch bandwidth ("-" when only one of
 *    the two holds, or when overhead appears only past CPU saturation);
 *  - Proportional Fairness: weighted Jain >= 0.9 at 16 cgroups (past
 *    CPU saturation) and with mixed request sizes. io.max is capped at
 *    "-": its fairness requires hand-translating weights into limits
 *    and retuning them whenever tenants start or stop (paper SS VII);
 *  - Priority/Utilization Trade-offs: the sweep must span a real
 *    latency range AND offer fine-grained intermediate operating points
 *    (MQ-DL's three coarse clusters do not count); knobs without a
 *    device model (io.max, io.latency) are capped at "-" as in the
 *    paper (practitioners must model the SSD themselves; io.latency
 *    additionally mishandles large requests and writes);
 *  - Priority Bursts: response within 300 ms, for knobs whose
 *    prioritization actually works (the schedulers' does not).
 */

#include <algorithm>
#include <cmath>
#include <set>
#include <cstdio>

#include "bench_util.hh"
#include "common/strings.hh"
#include "isolbench/d1_overhead.hh"
#include "isolbench/d2_fairness.hh"
#include "isolbench/d3_tradeoffs.hh"
#include "isolbench/d4_bursts.hh"
#include "isolbench/sweep.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

const char *
verdict(bool good, bool partial = false)
{
    if (good)
        return "v";
    return partial ? "-" : "x";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bool quick = bench::quickMode();
    std::printf("Table I: performance isolation desiderata for cgroups "
                "I/O control knobs\n(v = achieved, - = partial/depends, "
                "x = not achieved)\n");

    D1Options d1;
    d1.duration = quick ? msToNs(700) : msToNs(1200);
    d1.warmup = msToNs(200);
    FairnessOptions d2;
    d2.repeats = 1;
    d2.duration = quick ? msToNs(800) : msToNs(1200);
    d2.warmup = msToNs(250);
    TradeoffOptions d3;
    d3.coarsen = quick ? 10 : 5;
    d3.duration = msToNs(800);
    d3.warmup = msToNs(250);
    BurstOptions d4;
    d4.duration = secToNs(int64_t{5});
    d4.burst_start = msToNs(1000);
    d4.threshold = 0.9;

    // Baselines from the no-knob configuration. Payloads carry the
    // doubles as hexfloats so a --resume restores them bit-exactly.
    // isol: parallel
    std::vector<supervisor::Task> baseline_tasks = {
        [&]() -> std::string {
            return bench::hexDouble(runLcScaling(Knob::kNone, 1, d1)
                                        .p99_us);
        },
        [&]() -> std::string {
            return bench::hexDouble(
                runBatchScaling(Knob::kNone, 8, 1, d1).agg_gibs);
        },
    };
    std::vector<std::string> baselines =
        bench::supervisedSweep("table1-baselines", baseline_tasks);
    LcScalingResult none_lat;
    none_lat.p99_us = bench::parseHexDouble(baselines[0]);
    BatchScalingResult none_bw;
    none_bw.agg_gibs = bench::parseHexDouble(baselines[1]);

    stats::Table table({"cgroups I/O control knob", "Low Overhead",
                        "Proportional Fairness",
                        "Priority/Utilization Trade-offs",
                        "Priority Bursts"});

    struct RowSpec
    {
        Knob knob;
        const char *label;
    };
    const std::vector<RowSpec> rows = {
        {Knob::kMqDeadline, "io.prio.class + MQ-DL"},
        {Knob::kBfq, "io.bfq.weight + BFQ"},
        {Knob::kIoMax, "io.max"},
        {Knob::kIoLatency, "io.latency"},
        {Knob::kIoCost, "io.cost + io.weight"},
    };

    // Each knob's verdicts come from an independent batch of runs, so
    // the five rows evaluate concurrently as supervised checkpointed
    // tasks; the table is assembled from the row payloads in row order.
    std::vector<supervisor::Task> row_tasks;
    row_tasks.reserve(rows.size());
    for (size_t row_idx = 0; row_idx < rows.size(); ++row_idx) {
        // isol: parallel
        row_tasks.push_back([&, row_idx]() -> std::string {
        Knob knob = rows[row_idx].knob;

        // D1: low overhead.
        auto lat = runLcScaling(knob, 1, d1);
        auto bw = runBatchScaling(knob, 8, 1, d1);
        bool lat_ok = lat.p99_us <= none_lat.p99_us * 1.10;
        bool bw_ok = bw.agg_gibs >= none_bw.agg_gibs * 0.85;
        // Past CPU saturation io.cost pays latency (O1): partial.
        bool sat_ok = true;
        if (knob == Knob::kIoCost) {
            auto none16 = runLcScaling(Knob::kNone, 16, d1);
            auto k16 = runLcScaling(knob, 16, d1);
            sat_ok = k16.p99_us <= none16.p99_us * 1.15;
        }
        const char *overhead =
            verdict(lat_ok && bw_ok && sat_ok, lat_ok && bw_ok);

        // D2: proportional fairness — weighted at 16 cgroups (past CPU
        // saturation) and under mixed request sizes.
        auto fair_w =
            runFairness(knob, 16, true, FairnessMix::kUniform, d2);
        auto fair_mix =
            runFairness(knob, 2, false, FairnessMix::kReqSize, d2);
        bool fair_uniform_ok = fair_w.jain_mean >= 0.90;
        bool fair_mix_ok = fair_mix.jain_mean >= 0.80;
        const char *fairness;
        if (knob == Knob::kIoMax) {
            // Works, but only via hand-translated, statically retuned
            // limits: partial by construction (paper SS VII).
            fairness = verdict(false, fair_uniform_ok && fair_mix_ok);
        } else {
            fairness = verdict(fair_uniform_ok && fair_mix_ok,
                               fair_uniform_ok != fair_mix_ok);
        }

        // D3: trade-off capability — the LC sweep must span a real
        // latency range, vary aggregate bandwidth, and offer
        // fine-grained intermediate points (not just extremes).
        auto points = runTradeoffSweep(knob, PriorityAppKind::kLc,
                                       BeWorkload::kRand4k, d3);
        double best = 1e18;
        double worst = 0.0;
        double min_agg = 1e18;
        double max_agg = 0.0;
        for (const auto &p : points) {
            best = std::min(best, p.priority_p99_us);
            worst = std::max(worst, p.priority_p99_us);
            min_agg = std::min(min_agg, p.agg_gibs);
            max_agg = std::max(max_agg, p.agg_gibs);
        }
        // Count distinct operating clusters (quantized log-latency x
        // bandwidth). MQ-DL's three coarse clusters and BFQ's flat
        // latency both fail this; a usable trade-off needs a front of
        // at least four distinct points.
        std::set<std::pair<int, int>> clusters;
        for (const auto &p : points) {
            int lat_bin = static_cast<int>(
                std::log(std::max(p.priority_p99_us, 1.0)) / 0.22);
            int agg_bin = static_cast<int>(p.agg_gibs / 0.3);
            clusters.insert({lat_bin, agg_bin});
        }
        bool lat_range = best < worst * 0.7;
        bool agg_range = max_agg > min_agg * 1.2;
        bool fine_grained = clusters.size() >= 4;
        bool full_tradeoff = lat_range && agg_range && fine_grained;
        const char *tradeoff;
        if (knob == Knob::kIoMax || knob == Knob::kIoLatency) {
            // No device model: practitioners must model the SSD
            // themselves; io.latency also fails for large requests and
            // writes. Capped at partial, as in the paper.
            tradeoff = verdict(false, full_tradeoff ||
                                          (lat_range && agg_range));
        } else if (knob == Knob::kMqDeadline || knob == Knob::kBfq) {
            // Schedulers: coarse clusters (MQ-DL) or no latency control
            // (BFQ) must not earn partial credit for mere extremes.
            tradeoff = verdict(full_tradeoff);
        } else {
            tradeoff = verdict(full_tradeoff, lat_range || agg_range);
        }

        // D4: burst response within 300 ms, counted only for knobs with
        // working prioritization (the schedulers' is coarse/ineffective,
        // and io.max merely caps the others: partial).
        auto burst = runBurstResponse(knob, PriorityAppKind::kBatch, d4);
        bool burst_ok =
            burst.response_ms >= 0.0 && burst.response_ms <= 300.0;
        const char *bursts;
        if (knob == Knob::kMqDeadline || knob == Knob::kBfq) {
            bursts = verdict(false, false);
        } else if (knob == Knob::kIoMax) {
            bursts = verdict(false, burst_ok);
        } else {
            bursts = verdict(burst_ok);
        }

        return bench::joinRow({rows[row_idx].label, overhead, fairness,
                               tradeoff, bursts});
        });
    }
    std::vector<std::string> row_payloads =
        bench::supervisedSweep("table1-rows", row_tasks);

    for (const std::string &payload : row_payloads) {
        if (!payload.empty())
            table.addRow(bench::splitRow(payload));
    }

    std::fputs(table.toAligned().c_str(), stdout);
    std::printf("\nPaper's Table I for comparison:\n"
                "  io.prio.class + MQ-DL : x x x x\n"
                "  io.bfq.weight + BFQ   : x x x x\n"
                "  io.max                : v - - -\n"
                "  io.latency            : v x - x\n"
                "  io.cost + io.weight   : - v v v\n");
    bench::emitSweepReport();
    return 0;
}
