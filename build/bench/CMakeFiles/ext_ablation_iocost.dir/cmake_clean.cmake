file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_iocost.dir/ext_ablation_iocost.cc.o"
  "CMakeFiles/ext_ablation_iocost.dir/ext_ablation_iocost.cc.o.d"
  "ext_ablation_iocost"
  "ext_ablation_iocost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_iocost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
