# Empty dependencies file for ext_ablation_iocost.
# This may be replaced when dependencies are built.
