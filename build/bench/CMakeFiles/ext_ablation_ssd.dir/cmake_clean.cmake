file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_ssd.dir/ext_ablation_ssd.cc.o"
  "CMakeFiles/ext_ablation_ssd.dir/ext_ablation_ssd.cc.o.d"
  "ext_ablation_ssd"
  "ext_ablation_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
