# Empty compiler generated dependencies file for ext_ablation_ssd.
# This may be replaced when dependencies are built.
