file(REMOVE_RECURSE
  "CMakeFiles/ext_optane_generalizability.dir/ext_optane_generalizability.cc.o"
  "CMakeFiles/ext_optane_generalizability.dir/ext_optane_generalizability.cc.o.d"
  "ext_optane_generalizability"
  "ext_optane_generalizability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_optane_generalizability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
