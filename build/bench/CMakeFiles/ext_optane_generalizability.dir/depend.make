# Empty dependencies file for ext_optane_generalizability.
# This may be replaced when dependencies are built.
