file(REMOVE_RECURSE
  "CMakeFiles/ext_sched_comparison.dir/ext_sched_comparison.cc.o"
  "CMakeFiles/ext_sched_comparison.dir/ext_sched_comparison.cc.o.d"
  "ext_sched_comparison"
  "ext_sched_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sched_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
