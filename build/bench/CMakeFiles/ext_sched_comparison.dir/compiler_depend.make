# Empty compiler generated dependencies file for ext_sched_comparison.
# This may be replaced when dependencies are built.
