file(REMOVE_RECURSE
  "CMakeFiles/fig2_knob_examples.dir/fig2_knob_examples.cc.o"
  "CMakeFiles/fig2_knob_examples.dir/fig2_knob_examples.cc.o.d"
  "fig2_knob_examples"
  "fig2_knob_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_knob_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
