# Empty dependencies file for fig2_knob_examples.
# This may be replaced when dependencies are built.
