file(REMOVE_RECURSE
  "CMakeFiles/fig5_fairness.dir/fig5_fairness.cc.o"
  "CMakeFiles/fig5_fairness.dir/fig5_fairness.cc.o.d"
  "fig5_fairness"
  "fig5_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
