# Empty compiler generated dependencies file for fig5_fairness.
# This may be replaced when dependencies are built.
