file(REMOVE_RECURSE
  "CMakeFiles/fig6_fairness_mixed.dir/fig6_fairness_mixed.cc.o"
  "CMakeFiles/fig6_fairness_mixed.dir/fig6_fairness_mixed.cc.o.d"
  "fig6_fairness_mixed"
  "fig6_fairness_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fairness_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
