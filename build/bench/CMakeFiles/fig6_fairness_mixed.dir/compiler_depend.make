# Empty compiler generated dependencies file for fig6_fairness_mixed.
# This may be replaced when dependencies are built.
