file(REMOVE_RECURSE
  "CMakeFiles/fig7_tradeoffs.dir/fig7_tradeoffs.cc.o"
  "CMakeFiles/fig7_tradeoffs.dir/fig7_tradeoffs.cc.o.d"
  "fig7_tradeoffs"
  "fig7_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
