# Empty dependencies file for fig7_tradeoffs.
# This may be replaced when dependencies are built.
