file(REMOVE_RECURSE
  "CMakeFiles/q10_burst_response.dir/q10_burst_response.cc.o"
  "CMakeFiles/q10_burst_response.dir/q10_burst_response.cc.o.d"
  "q10_burst_response"
  "q10_burst_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q10_burst_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
