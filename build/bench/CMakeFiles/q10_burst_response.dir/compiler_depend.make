# Empty compiler generated dependencies file for q10_burst_response.
# This may be replaced when dependencies are built.
