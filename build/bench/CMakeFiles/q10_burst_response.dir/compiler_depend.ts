# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for q10_burst_response.
