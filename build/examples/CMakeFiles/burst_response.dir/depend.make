# Empty dependencies file for burst_response.
# This may be replaced when dependencies are built.
