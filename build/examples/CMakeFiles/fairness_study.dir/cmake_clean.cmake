file(REMOVE_RECURSE
  "CMakeFiles/fairness_study.dir/fairness_study.cpp.o"
  "CMakeFiles/fairness_study.dir/fairness_study.cpp.o.d"
  "fairness_study"
  "fairness_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
