
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blk/bfq.cc" "src/blk/CMakeFiles/isol_blk.dir/bfq.cc.o" "gcc" "src/blk/CMakeFiles/isol_blk.dir/bfq.cc.o.d"
  "/root/repo/src/blk/block_device.cc" "src/blk/CMakeFiles/isol_blk.dir/block_device.cc.o" "gcc" "src/blk/CMakeFiles/isol_blk.dir/block_device.cc.o.d"
  "/root/repo/src/blk/kyber.cc" "src/blk/CMakeFiles/isol_blk.dir/kyber.cc.o" "gcc" "src/blk/CMakeFiles/isol_blk.dir/kyber.cc.o.d"
  "/root/repo/src/blk/mq_deadline.cc" "src/blk/CMakeFiles/isol_blk.dir/mq_deadline.cc.o" "gcc" "src/blk/CMakeFiles/isol_blk.dir/mq_deadline.cc.o.d"
  "/root/repo/src/blk/qos_cost.cc" "src/blk/CMakeFiles/isol_blk.dir/qos_cost.cc.o" "gcc" "src/blk/CMakeFiles/isol_blk.dir/qos_cost.cc.o.d"
  "/root/repo/src/blk/qos_latency.cc" "src/blk/CMakeFiles/isol_blk.dir/qos_latency.cc.o" "gcc" "src/blk/CMakeFiles/isol_blk.dir/qos_latency.cc.o.d"
  "/root/repo/src/blk/qos_max.cc" "src/blk/CMakeFiles/isol_blk.dir/qos_max.cc.o" "gcc" "src/blk/CMakeFiles/isol_blk.dir/qos_max.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cgroup/CMakeFiles/isol_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isol_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/isol_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/isol_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
