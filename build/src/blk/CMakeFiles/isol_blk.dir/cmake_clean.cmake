file(REMOVE_RECURSE
  "CMakeFiles/isol_blk.dir/bfq.cc.o"
  "CMakeFiles/isol_blk.dir/bfq.cc.o.d"
  "CMakeFiles/isol_blk.dir/block_device.cc.o"
  "CMakeFiles/isol_blk.dir/block_device.cc.o.d"
  "CMakeFiles/isol_blk.dir/kyber.cc.o"
  "CMakeFiles/isol_blk.dir/kyber.cc.o.d"
  "CMakeFiles/isol_blk.dir/mq_deadline.cc.o"
  "CMakeFiles/isol_blk.dir/mq_deadline.cc.o.d"
  "CMakeFiles/isol_blk.dir/qos_cost.cc.o"
  "CMakeFiles/isol_blk.dir/qos_cost.cc.o.d"
  "CMakeFiles/isol_blk.dir/qos_latency.cc.o"
  "CMakeFiles/isol_blk.dir/qos_latency.cc.o.d"
  "CMakeFiles/isol_blk.dir/qos_max.cc.o"
  "CMakeFiles/isol_blk.dir/qos_max.cc.o.d"
  "libisol_blk.a"
  "libisol_blk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isol_blk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
