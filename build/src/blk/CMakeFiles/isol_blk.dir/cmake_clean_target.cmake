file(REMOVE_RECURSE
  "libisol_blk.a"
)
