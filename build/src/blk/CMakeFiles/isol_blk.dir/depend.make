# Empty dependencies file for isol_blk.
# This may be replaced when dependencies are built.
