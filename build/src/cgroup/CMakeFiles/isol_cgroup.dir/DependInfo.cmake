
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgroup/cgroup.cc" "src/cgroup/CMakeFiles/isol_cgroup.dir/cgroup.cc.o" "gcc" "src/cgroup/CMakeFiles/isol_cgroup.dir/cgroup.cc.o.d"
  "/root/repo/src/cgroup/knobs.cc" "src/cgroup/CMakeFiles/isol_cgroup.dir/knobs.cc.o" "gcc" "src/cgroup/CMakeFiles/isol_cgroup.dir/knobs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/isol_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
