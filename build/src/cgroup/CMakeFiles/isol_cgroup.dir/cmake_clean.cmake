file(REMOVE_RECURSE
  "CMakeFiles/isol_cgroup.dir/cgroup.cc.o"
  "CMakeFiles/isol_cgroup.dir/cgroup.cc.o.d"
  "CMakeFiles/isol_cgroup.dir/knobs.cc.o"
  "CMakeFiles/isol_cgroup.dir/knobs.cc.o.d"
  "libisol_cgroup.a"
  "libisol_cgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isol_cgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
