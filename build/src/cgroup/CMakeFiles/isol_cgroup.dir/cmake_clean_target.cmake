file(REMOVE_RECURSE
  "libisol_cgroup.a"
)
