# Empty compiler generated dependencies file for isol_cgroup.
# This may be replaced when dependencies are built.
