file(REMOVE_RECURSE
  "CMakeFiles/isol_common.dir/logging.cc.o"
  "CMakeFiles/isol_common.dir/logging.cc.o.d"
  "CMakeFiles/isol_common.dir/strings.cc.o"
  "CMakeFiles/isol_common.dir/strings.cc.o.d"
  "libisol_common.a"
  "libisol_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isol_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
