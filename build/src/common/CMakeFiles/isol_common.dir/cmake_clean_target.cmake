file(REMOVE_RECURSE
  "libisol_common.a"
)
