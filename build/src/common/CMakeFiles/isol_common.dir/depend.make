# Empty dependencies file for isol_common.
# This may be replaced when dependencies are built.
