file(REMOVE_RECURSE
  "CMakeFiles/isol_isolbench.dir/d1_overhead.cc.o"
  "CMakeFiles/isol_isolbench.dir/d1_overhead.cc.o.d"
  "CMakeFiles/isol_isolbench.dir/d2_fairness.cc.o"
  "CMakeFiles/isol_isolbench.dir/d2_fairness.cc.o.d"
  "CMakeFiles/isol_isolbench.dir/d3_tradeoffs.cc.o"
  "CMakeFiles/isol_isolbench.dir/d3_tradeoffs.cc.o.d"
  "CMakeFiles/isol_isolbench.dir/d4_bursts.cc.o"
  "CMakeFiles/isol_isolbench.dir/d4_bursts.cc.o.d"
  "CMakeFiles/isol_isolbench.dir/scenario.cc.o"
  "CMakeFiles/isol_isolbench.dir/scenario.cc.o.d"
  "libisol_isolbench.a"
  "libisol_isolbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isol_isolbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
