file(REMOVE_RECURSE
  "libisol_isolbench.a"
)
