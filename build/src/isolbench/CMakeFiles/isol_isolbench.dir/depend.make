# Empty dependencies file for isol_isolbench.
# This may be replaced when dependencies are built.
