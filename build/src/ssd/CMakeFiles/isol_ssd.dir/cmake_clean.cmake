file(REMOVE_RECURSE
  "CMakeFiles/isol_ssd.dir/config.cc.o"
  "CMakeFiles/isol_ssd.dir/config.cc.o.d"
  "CMakeFiles/isol_ssd.dir/device.cc.o"
  "CMakeFiles/isol_ssd.dir/device.cc.o.d"
  "CMakeFiles/isol_ssd.dir/ftl.cc.o"
  "CMakeFiles/isol_ssd.dir/ftl.cc.o.d"
  "libisol_ssd.a"
  "libisol_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isol_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
