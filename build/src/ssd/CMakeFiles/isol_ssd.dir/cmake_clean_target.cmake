file(REMOVE_RECURSE
  "libisol_ssd.a"
)
