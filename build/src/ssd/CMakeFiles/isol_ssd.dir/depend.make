# Empty dependencies file for isol_ssd.
# This may be replaced when dependencies are built.
