file(REMOVE_RECURSE
  "CMakeFiles/isol_stats.dir/fairness.cc.o"
  "CMakeFiles/isol_stats.dir/fairness.cc.o.d"
  "CMakeFiles/isol_stats.dir/histogram.cc.o"
  "CMakeFiles/isol_stats.dir/histogram.cc.o.d"
  "CMakeFiles/isol_stats.dir/table.cc.o"
  "CMakeFiles/isol_stats.dir/table.cc.o.d"
  "CMakeFiles/isol_stats.dir/timeseries.cc.o"
  "CMakeFiles/isol_stats.dir/timeseries.cc.o.d"
  "libisol_stats.a"
  "libisol_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isol_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
