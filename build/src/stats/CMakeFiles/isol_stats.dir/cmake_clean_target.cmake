file(REMOVE_RECURSE
  "libisol_stats.a"
)
