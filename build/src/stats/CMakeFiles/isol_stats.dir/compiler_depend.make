# Empty compiler generated dependencies file for isol_stats.
# This may be replaced when dependencies are built.
