file(REMOVE_RECURSE
  "CMakeFiles/isol_workload.dir/job.cc.o"
  "CMakeFiles/isol_workload.dir/job.cc.o.d"
  "CMakeFiles/isol_workload.dir/trace.cc.o"
  "CMakeFiles/isol_workload.dir/trace.cc.o.d"
  "libisol_workload.a"
  "libisol_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isol_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
