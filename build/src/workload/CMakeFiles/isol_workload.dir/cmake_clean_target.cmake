file(REMOVE_RECURSE
  "libisol_workload.a"
)
