# Empty dependencies file for isol_workload.
# This may be replaced when dependencies are built.
