file(REMOVE_RECURSE
  "CMakeFiles/test_blk_device.dir/test_blk_device.cc.o"
  "CMakeFiles/test_blk_device.dir/test_blk_device.cc.o.d"
  "test_blk_device"
  "test_blk_device.pdb"
  "test_blk_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blk_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
