# Empty dependencies file for test_blk_device.
# This may be replaced when dependencies are built.
