file(REMOVE_RECURSE
  "CMakeFiles/test_blk_elevators.dir/test_blk_elevators.cc.o"
  "CMakeFiles/test_blk_elevators.dir/test_blk_elevators.cc.o.d"
  "test_blk_elevators"
  "test_blk_elevators.pdb"
  "test_blk_elevators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blk_elevators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
