# Empty compiler generated dependencies file for test_blk_elevators.
# This may be replaced when dependencies are built.
