file(REMOVE_RECURSE
  "CMakeFiles/test_blk_qos.dir/test_blk_qos.cc.o"
  "CMakeFiles/test_blk_qos.dir/test_blk_qos.cc.o.d"
  "test_blk_qos"
  "test_blk_qos.pdb"
  "test_blk_qos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blk_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
