# Empty compiler generated dependencies file for test_blk_qos.
# This may be replaced when dependencies are built.
