
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_isolbench.cc" "tests/CMakeFiles/test_isolbench.dir/test_isolbench.cc.o" "gcc" "tests/CMakeFiles/test_isolbench.dir/test_isolbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isolbench/CMakeFiles/isol_isolbench.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/isol_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/blk/CMakeFiles/isol_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/isol_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/isol_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/isol_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/isol_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
