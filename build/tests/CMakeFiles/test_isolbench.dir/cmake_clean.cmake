file(REMOVE_RECURSE
  "CMakeFiles/test_isolbench.dir/test_isolbench.cc.o"
  "CMakeFiles/test_isolbench.dir/test_isolbench.cc.o.d"
  "test_isolbench"
  "test_isolbench.pdb"
  "test_isolbench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isolbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
