# Empty compiler generated dependencies file for test_isolbench.
# This may be replaced when dependencies are built.
