file(REMOVE_RECURSE
  "CMakeFiles/test_kyber.dir/test_kyber.cc.o"
  "CMakeFiles/test_kyber.dir/test_kyber.cc.o.d"
  "test_kyber"
  "test_kyber.pdb"
  "test_kyber[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kyber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
