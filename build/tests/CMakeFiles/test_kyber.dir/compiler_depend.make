# Empty compiler generated dependencies file for test_kyber.
# This may be replaced when dependencies are built.
