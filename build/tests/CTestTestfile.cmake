# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_ssd[1]_include.cmake")
include("/root/repo/build/tests/test_cgroup[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_blk_elevators[1]_include.cmake")
include("/root/repo/build/tests/test_blk_qos[1]_include.cmake")
include("/root/repo/build/tests/test_blk_device[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_isolbench[1]_include.cmake")
include("/root/repo/build/tests/test_kyber[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
