file(REMOVE_RECURSE
  "CMakeFiles/isolbench_cli.dir/isolbench_cli.cc.o"
  "CMakeFiles/isolbench_cli.dir/isolbench_cli.cc.o.d"
  "isolbench"
  "isolbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
