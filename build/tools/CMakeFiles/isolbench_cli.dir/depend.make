# Empty dependencies file for isolbench_cli.
# This may be replaced when dependencies are built.
