/**
 * @file
 * Burst-response demo (the paper's D4/O10): how quickly each knob gives
 * a high-priority app its performance when it bursts into a busy system.
 *
 * Prints the priority app's bandwidth trajectory after the burst for
 * io.max (responds within milliseconds) and io.latency (takes multiple
 * 500 ms windows to throttle the background apps' queue depth down) —
 * the two extremes of the paper's observation O10.
 *
 * Build & run:  ./build/examples/burst_response
 */

#include <cstdio>

#include "isolbench/d4_bursts.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

void
trace(Knob knob)
{
    ScenarioConfig cfg;
    cfg.name = strCat("burst-", knobName(knob));
    cfg.knob = knob;
    cfg.num_cores = 10;
    cfg.duration = secToNs(int64_t{6});
    cfg.warmup = msToNs(100);
    Scenario scenario(cfg);

    const SimTime burst_at = secToNs(int64_t{1});
    workload::JobSpec prio =
        workload::lcApp("prio", cfg.duration - burst_at);
    prio.start_time = burst_at;
    prio.stats_bin = msToNs(200);
    uint32_t prio_idx = scenario.addApp(std::move(prio), "prio");
    for (int i = 0; i < 4; ++i) {
        scenario.addApp(workload::beApp(strCat("be", i), cfg.duration),
                        "be");
    }

    // Strong prioritization per knob.
    if (knob == Knob::kIoMax) {
        scenario.tree().writeFile(scenario.group("be"), "io.max",
                                  strCat("259:0 rbps=", 300 * MiB));
    } else if (knob == Knob::kIoLatency) {
        scenario.tree().writeFile(scenario.appGroup(prio_idx),
                                  "io.latency", "259:0 target=100");
    }

    scenario.run();

    std::printf("\n%s: priority LC-app IOPS after bursting in at t=1s\n",
                knobName(knob));
    stats::Table table({"t(s)", "LC IOPS (per 200ms bin)"});
    const auto &series = scenario.app(prio_idx).bandwidthSeries();
    for (size_t bin = 4; bin < series.numBins(); bin += 2) {
        double iops = static_cast<double>(series.binTotal(bin)) / 4096 /
                      0.2;
        table.addRow({formatDouble(0.2 * (bin + 1), 1),
                      formatDouble(iops, 0)});
    }
    std::fputs(table.toAligned().c_str(), stdout);
}

} // namespace

int
main()
{
    std::printf("Burst response (O10): io.max reacts in milliseconds; "
                "io.latency needs\nmultiple 500 ms windows to halve the "
                "background apps' queue depth.\n");
    trace(Knob::kIoMax);
    trace(Knob::kIoLatency);

    std::printf("\nMeasured response times (time to 90%% of steady "
                "state):\n");
    BurstOptions opts;
    opts.threshold = 0.9;
    for (Knob knob : {Knob::kIoMax, Knob::kIoCost, Knob::kIoLatency}) {
        BurstResult res =
            runBurstResponse(knob, PriorityAppKind::kLc, opts);
        if (res.response_ms < 0.0)
            std::printf("  %-12s never stabilised in this run\n",
                        knobName(knob));
        else
            std::printf("  %-12s %.0f ms\n", knobName(knob),
                        res.response_ms);
    }
    return 0;
}
