/**
 * @file
 * Degradation study (D5): does a cgroup I/O knob keep protecting the
 * LC-app when the BE tenant's LBA range sits on failing media?
 *
 * Each knob runs twice with identical seeds — once healthy, once with
 * the full fault profile (media read-retry ladders, grown bad blocks,
 * latency spikes, thermal throttling, NVMe command timeouts) — and the
 * table reports the LC P99 / bandwidth deltas plus the fault counters.
 */

#include <cstdio>
#include <vector>

#include "isolbench/d5_degradation.hh"

using namespace isol;
using namespace isol::isolbench;

int
main()
{
    DegradationOptions opts;
    opts.duration = msToNs(800);
    opts.warmup = msToNs(200);

    std::vector<DegradationResult> results;
    for (Knob knob : {Knob::kNone, Knob::kIoLatency, Knob::kIoCost}) {
        std::printf("running %s (healthy + degraded)...\n",
                    knobName(knob));
        results.push_back(runDegradation(knob, opts));
    }
    std::fputs(degradationTable(results).toAligned().c_str(), stdout);
    return 0;
}
