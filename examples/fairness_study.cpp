/**
 * @file
 * Weighted-fairness study: can you actually buy "2x the bandwidth" with
 * cgroup weights? (The paper's D2, condensed into one program.)
 *
 * Three tenants with weights 1:2:4 share one SSD under each weight-
 * capable knob. We print each tenant's achieved share next to its
 * entitled share and the weighted Jain index.
 *
 * Build & run:  ./build/examples/fairness_study
 */

#include <cstdio>

#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "stats/fairness.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

int
main()
{
    std::printf("Weighted fairness: tenants gold/silver/bronze with "
                "weights 4:2:1,\n4 batch-apps each, one shared SSD.\n\n");

    struct TenantSpec
    {
        const char *name;
        uint32_t weight;
    };
    const TenantSpec tenants[] = {
        {"bronze", 1}, {"silver", 2}, {"gold", 4}};

    stats::Table table({"knob", "bronze GiB/s", "silver GiB/s",
                        "gold GiB/s", "weighted Jain", "agg GiB/s"});

    for (Knob knob : {Knob::kBfq, Knob::kIoMax, Knob::kIoCost}) {
        ScenarioConfig cfg;
        cfg.name = strCat("fairness-", knobName(knob));
        cfg.knob = knob;
        cfg.num_cores = 12;
        cfg.duration = secToNs(int64_t{2});
        cfg.warmup = msToNs(400);
        Scenario scenario(cfg);

        for (const TenantSpec &tenant : tenants) {
            for (int i = 0; i < 4; ++i) {
                scenario.addApp(
                    workload::batchApp(strCat(tenant.name, i),
                                       cfg.duration),
                    tenant.name);
            }
        }

        uint32_t weight_sum = 0;
        for (const TenantSpec &tenant : tenants)
            weight_sum += tenant.weight;
        for (const TenantSpec &tenant : tenants) {
            cgroup::Cgroup &cg = scenario.group(tenant.name);
            switch (knob) {
              case Knob::kBfq:
                scenario.tree().writeFile(cg, "io.bfq.weight",
                                          strCat(tenant.weight * 100));
                break;
              case Knob::kIoCost:
                scenario.tree().writeFile(cg, "io.weight",
                                          strCat(tenant.weight * 100));
                break;
              case Knob::kIoMax: {
                // io.max has no weights: translate shares by hand, as
                // the paper does (weight/total x max read bandwidth).
                auto rbps = static_cast<uint64_t>(
                    2.8 * static_cast<double>(GiB) * tenant.weight /
                    weight_sum);
                scenario.tree().writeFile(cg, "io.max",
                                          strCat("259:0 rbps=", rbps));
                break;
              }
              default:
                break;
            }
        }

        scenario.run();

        std::vector<double> bw(3, 0.0);
        for (uint32_t i = 0; i < scenario.numApps(); ++i)
            bw[i / 4] += scenario.appGiBs(i);
        double jain = stats::weightedJainIndex(bw, {1.0, 2.0, 4.0});
        table.addRow({knobName(knob), formatDouble(bw[0], 2),
                      formatDouble(bw[1], 2), formatDouble(bw[2], 2),
                      formatDouble(jain, 3),
                      formatDouble(scenario.aggregateGiBs(), 2)});
    }
    std::fputs(table.toAligned().c_str(), stdout);
    std::printf("\nIdeal split at e.g. 2.3 GiB/s aggregate would be "
                "0.33 / 0.66 / 1.31 GiB/s.\n");
    return 0;
}
