/**
 * @file
 * Noisy-neighbor scenario: the paper's §VI-B motivation as a runnable
 * program.
 *
 * A latency-critical tenant (think: a cache serving user requests)
 * shares one NVMe SSD with four best-effort batch tenants that saturate
 * it. We run the same co-location under every cgroup I/O control knob,
 * each configured to protect the LC tenant, and print what the LC
 * tenant's P99 actually was and what the protection cost in aggregate
 * bandwidth — the prioritization/utilization trade-off.
 *
 * Build & run:  ./build/examples/noisy_neighbor
 */

#include <cstdio>

#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "stats/table.hh"

using namespace isol;
using namespace isol::isolbench;

namespace
{

struct Outcome
{
    double lc_p99_us;
    double lc_p50_us;
    double agg_gibs;
};

Outcome
runColocation(Knob knob)
{
    ScenarioConfig cfg;
    cfg.name = strCat("noisy-neighbor-", knobName(knob));
    cfg.knob = knob;
    cfg.num_cores = 10;
    cfg.duration = secToNs(int64_t{2});
    cfg.warmup = msToNs(400);
    Scenario scenario(cfg);

    uint32_t lc =
        scenario.addApp(workload::lcApp("cache", cfg.duration), "cache");
    for (int i = 0; i < 4; ++i) {
        scenario.addApp(
            workload::beApp(strCat("batch", i), cfg.duration), "batch");
    }

    // Protect the LC tenant with whatever the knob offers.
    cgroup::CgroupTree &tree = scenario.tree();
    cgroup::Cgroup &cache = scenario.group("cache");
    cgroup::Cgroup &batch = scenario.group("batch");
    switch (knob) {
      case Knob::kNone:
      case Knob::kKyber:
        break;
      case Knob::kMqDeadline:
        tree.writeFile(cache, "io.prio.class", "promote-to-rt");
        tree.writeFile(batch, "io.prio.class", "idle");
        break;
      case Knob::kBfq:
        tree.writeFile(cache, "io.bfq.weight", "1000");
        tree.writeFile(batch, "io.bfq.weight", "1");
        break;
      case Knob::kIoMax:
        // Cap the neighbours at ~40% of the device.
        tree.writeFile(batch, "io.max",
                       strCat("259:0 rbps=", 1200 * MiB));
        break;
      case Knob::kIoLatency:
        tree.writeFile(cache, "io.latency", "259:0 target=150");
        break;
      case Knob::kIoCost: {
        tree.writeFile(cache, "io.weight", "10000");
        tree.writeFile(batch, "io.weight", "100");
        cgroup::IoCostQos qos = paperCostQos();
        qos.rpct = 99.0;
        qos.rlat = usToNs(250);
        tree.setCostQos(0, qos);
        break;
      }
    }

    scenario.run();
    return Outcome{nsToUs(scenario.app(lc).latency().percentile(99)),
                   nsToUs(scenario.app(lc).latency().percentile(50)),
                   scenario.aggregateGiBs()};
}

} // namespace

int
main()
{
    std::printf("Noisy neighbor: one LC tenant vs 4 saturating batch "
                "tenants,\neach knob configured to protect the LC "
                "tenant.\n\n");

    // Reference point: the LC tenant alone on the device.
    ScenarioConfig solo_cfg;
    solo_cfg.duration = secToNs(int64_t{1});
    solo_cfg.warmup = msToNs(200);
    Scenario solo(solo_cfg);
    uint32_t solo_lc =
        solo.addApp(workload::lcApp("cache", solo_cfg.duration), "cache");
    solo.run();
    std::printf("LC tenant alone: P99 = %.1f us\n\n",
                nsToUs(solo.app(solo_lc).latency().percentile(99)));

    stats::Table table(
        {"knob", "LC P50 (us)", "LC P99 (us)", "aggregate GiB/s"});
    for (Knob knob : kAllKnobs) {
        Outcome out = runColocation(knob);
        table.addRow({knobName(knob), formatDouble(out.lc_p50_us, 1),
                      formatDouble(out.lc_p99_us, 1),
                      formatDouble(out.agg_gibs, 2)});
    }
    std::fputs(table.toAligned().c_str(), stdout);
    std::printf("\nReading the table: lower LC P99 = better protection; "
                "higher aggregate = better utilization.\n");
    return 0;
}
