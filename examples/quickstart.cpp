/**
 * @file
 * Quickstart: the smallest useful isol-bench-sim program.
 *
 * Builds one scenario — two tenants sharing a simulated NVMe SSD under
 * the io.max knob — runs it, and prints each tenant's bandwidth and tail
 * latency. Start here to learn the public API:
 *
 *   1. ScenarioConfig selects the knob and system shape;
 *   2. addApp() adds fio-style jobs inside named cgroups;
 *   3. knobs are configured in kernel sysfs syntax via the cgroup tree;
 *   4. run() executes the discrete-event simulation;
 *   5. per-app statistics are read back from the jobs.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "isolbench/scenario.hh"

using namespace isol;
using namespace isol::isolbench;

int
main()
{
    // A system with one Samsung-980-PRO-like SSD, 4 cores, io.max.
    ScenarioConfig cfg;
    cfg.name = "quickstart";
    cfg.knob = Knob::kIoMax;
    cfg.num_cores = 4;
    cfg.duration = secToNs(int64_t{2});
    cfg.warmup = msToNs(300);
    Scenario scenario(cfg);

    // Tenant "noisy": a batch app pushing 4 KiB random reads at QD 256.
    uint32_t noisy = scenario.addApp(
        workload::batchApp("noisy", cfg.duration), "noisy");

    // Tenant "victim": a latency-critical app (4 KiB random read, QD 1).
    uint32_t victim = scenario.addApp(
        workload::lcApp("victim", cfg.duration), "victim");

    // Throttle the noisy tenant to 512 MiB/s, exactly as you would on a
    // real kernel: echo "259:0 rbps=536870912" > io.max
    scenario.tree().writeFile(scenario.group("noisy"), "io.max",
                              strCat("259:0 rbps=", 512 * MiB));

    scenario.run();

    std::printf("tenant   bandwidth      P50        P99\n");
    for (uint32_t i : {noisy, victim}) {
        const workload::FioJob &job = scenario.app(i);
        std::printf("%-8s %7.1f MiB/s %7.1f us %7.1f us\n",
                    job.spec().name.c_str(),
                    job.windowBandwidth() / static_cast<double>(MiB),
                    nsToUs(job.latency().percentile(50)),
                    nsToUs(job.latency().percentile(99)));
    }
    std::printf("\naggregate: %.2f GiB/s, CPU %.1f%%\n",
                scenario.aggregateGiBs(),
                scenario.cpuUtilization() * 100.0);
    return 0;
}
