#include "blk/bfq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace isol::blk
{

Bfq::Bfq(sim::Simulator &sim, cgroup::CgroupTree &tree, BfqParams params)
    : sim_(sim), tree_(tree), params_(params)
{
}

Bfq::~Bfq()
{
    if (idle_event_ != sim::kInvalidEventId)
        sim_.cancel(idle_event_);
}

Bfq::Queue &
Bfq::queueFor(cgroup::Cgroup *cg)
{
    auto [it, inserted] = queue_index_.try_emplace(cg, queues_.size());
    if (inserted) {
        Queue &q = queues_.emplace_back();
        q.cg = cg;
        // New/empty queues start at the current virtual time so they
        // cannot claim service for their idle past.
        q.vfinish = vtime_;
    }
    return queues_[it->second];
}

double
Bfq::weightOf(const Queue &q) const
{
    if (q.cg == nullptr)
        return 100.0; // requests without a cgroup: default weight
    // Hierarchical relative weight: absolute io.bfq.weight resolved
    // against active siblings through the cgroup tree (scaled so flat
    // single-group setups keep familiar magnitudes).
    double share = tree_.hierarchicalShare(*q.cg, /*bfq=*/true);
    return std::max(1e-6, share) * 1000.0;
}

void
Bfq::insert(Request *req)
{
    Queue &q = queueFor(req->cg);
    if (q.fifo.empty()) {
        // B-WF2Q+ back-shifting: a queue that merely drained for a
        // moment (its I/O is in flight) keeps its virtual-time credit,
        // otherwise weights would be erased every time a rate-limited
        // queue runs dry mid-slice. Only a queue idle for longer than a
        // grace window re-enters at the current virtual time.
        SimTime grace = std::max<SimTime>(params_.slice_idle, msToNs(2));
        if (q.last_busy < 0 || sim_.now() - q.last_busy > grace)
            q.vfinish = std::max(q.vfinish, vtime_);
    }
    q.fifo.push_back(req);
    ++queued_;

    // An arrival for the idling in-service queue resumes service
    // immediately; any other arrival waits for the idle window to lapse.
    if (idling_ && in_service_ == &q) {
        idling_ = false;
        if (idle_event_ != sim::kInvalidEventId) {
            sim_.cancel(idle_event_);
            idle_event_ = sim::kInvalidEventId;
        }
        kick();
    }
}

Bfq::Queue *
Bfq::pickQueue()
{
    // Creation-order iteration with strict `<` makes tie-breaks
    // deterministic: on equal vfinish the earliest-created queue wins.
    Queue *best = nullptr;
    for (Queue &q : queues_) {
        if (q.fifo.empty())
            continue;
        if (best == nullptr || q.vfinish < best->vfinish)
            best = &q;
    }
    return best;
}

Request *
Bfq::serveFrom(Queue *q)
{
    Request *req = q->fifo.front();
    q->fifo.pop_front();
    --queued_;
    double weight = weightOf(*q);
    q->vfinish += static_cast<double>(req->size) / weight;
    vtime_ = std::max(vtime_, q->vfinish);
    q->slice_served += req->size;
    q->last_busy = sim_.now();
    return req;
}

Request *
Bfq::selectNext()
{
    if (idling_)
        return nullptr; // waiting for the in-service queue to send more

    if (in_service_ != nullptr) {
        Queue *q = in_service_;
        if (q->slice_served >= params_.max_budget) {
            // Budget exhausted: expire the slice.
            q->slice_served = 0;
            in_service_ = nullptr;
        } else if (!q->fifo.empty()) {
            return serveFrom(q);
        } else if (params_.slice_idle > 0) {
            // Queue ran dry mid-slice: idle, hoping it sends more soon.
            idling_ = true;
            idle_event_ = sim_.after(params_.slice_idle, [this] {
                idle_event_ = sim::kInvalidEventId;
                if (!idling_)
                    return;
                idling_ = false;
                if (in_service_ != nullptr) {
                    in_service_->slice_served = 0;
                    in_service_ = nullptr;
                }
                kick();
            });
            return nullptr;
        } else {
            in_service_ = nullptr;
        }
    }

    Queue *next = pickQueue();
    if (next == nullptr)
        return nullptr;
    in_service_ = next;
    in_service_->slice_served = 0;
    return serveFrom(in_service_);
}

bool
Bfq::empty() const
{
    return queued_ == 0;
}

size_t
Bfq::queued() const
{
    return queued_;
}

} // namespace isol::blk
