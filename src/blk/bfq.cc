// isol: domain(blk)
#include "blk/bfq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace isol::blk
{

Bfq::Bfq(sim::Simulator &sim, cgroup::CgroupTree &tree, BfqParams params)
    : sim_(sim), tree_(tree), params_(params)
{
    removal_token_ = tree_.addRemovalListener(
        [this](cgroup::Cgroup &cg) { onCgroupRemoved(cg); });
}

Bfq::~Bfq()
{
    if (idle_event_ != sim::kInvalidEventId)
        sim_.cancel(idle_event_);
    tree_.removeRemovalListener(removal_token_);
}

Bfq::Queue &
Bfq::queueFor(const cgroup::Cgroup *cg)
{
    Queue *existing = queues_.find(cg);
    if (existing != nullptr)
        return *existing;
    Queue &q = queues_.stateFor(cg);
    // New/empty queues start at the current virtual time so they
    // cannot claim service for their idle past.
    q.vfinish = vtime_;
    q.seq = next_seq_++;
    return q;
}

void
Bfq::onCgroupRemoved(cgroup::Cgroup &cg)
{
    Queue *q = queues_.find(&cg);
    if (q == nullptr)
        return;
    if (!q->fifo.empty()) {
        fatal("bfq: cgroup '" + cg.path() + "' removed with " +
              std::to_string(q->fifo.size()) + " queued I/Os");
    }
    if (has_in_service_ && in_service_cg_ == &cg) {
        // Slice ends with the group; any pending idle window lapses on
        // its own and simply picks the next queue.
        has_in_service_ = false;
        in_service_cg_ = nullptr;
    }
    queues_.erase(&cg);
}

double
Bfq::weightOf(Queue &q)
{
    if (q.cg == nullptr)
        return 100.0; // requests without a cgroup: default weight
    // Hierarchical relative weight: absolute io.bfq.weight resolved
    // against active siblings through the cgroup tree (scaled so flat
    // single-group setups keep familiar magnitudes). Cached against the
    // tree version: the walk is O(depth x siblings) and selectNext()
    // would otherwise pay it per dispatch.
    uint64_t version = tree_.version();
    if (q.weight_version != version) {
        q.weight_version = version;
        double share = tree_.hierarchicalShare(*q.cg, /*bfq=*/true);
        q.weight = std::max(1e-6, share) * 1000.0;
    }
    return q.weight;
}

void
Bfq::insert(Request *req)
{
    Queue &q = queueFor(req->cg);
    if (q.fifo.empty()) {
        // B-WF2Q+ back-shifting: a queue that merely drained for a
        // moment (its I/O is in flight) keeps its virtual-time credit,
        // otherwise weights would be erased every time a rate-limited
        // queue runs dry mid-slice. Only a queue idle for longer than a
        // grace window re-enters at the current virtual time.
        SimTime grace = std::max<SimTime>(params_.slice_idle, msToNs(2));
        if (q.last_busy < 0 || sim_.now() - q.last_busy > grace)
            q.vfinish = std::max(q.vfinish, vtime_);
    }
    q.fifo.push_back(req);
    ++queued_;

    // An arrival for the idling in-service queue resumes service
    // immediately; any other arrival waits for the idle window to lapse.
    if (idling_ && has_in_service_ && in_service_cg_ == req->cg) {
        idling_ = false;
        if (idle_event_ != sim::kInvalidEventId) {
            sim_.cancel(idle_event_);
            idle_event_ = sim::kInvalidEventId;
        }
        kick();
    }
}

Bfq::Queue *
Bfq::pickQueue()
{
    // Strict ordering on (vfinish, creation seq) makes selection
    // deterministic: on equal vfinish the earliest-created queue wins,
    // independent of slot layout after swap-removes.
    Queue *best = nullptr;
    for (Queue &q : queues_) {
        ++bookkeeping_ops_;
        if (q.fifo.empty())
            continue;
        if (best == nullptr || q.vfinish < best->vfinish ||
            (q.vfinish == best->vfinish && q.seq < best->seq))
            best = &q;
    }
    return best;
}

Bfq::Queue *
Bfq::inServiceQueue()
{
    if (!has_in_service_)
        return nullptr;
    return queues_.find(in_service_cg_);
}

Request *
Bfq::serveFrom(Queue *q)
{
    Request *req = q->fifo.front();
    q->fifo.pop_front();
    --queued_;
    double weight = weightOf(*q);
    q->vfinish += static_cast<double>(req->size) / weight;
    vtime_ = std::max(vtime_, q->vfinish);
    q->slice_served += req->size;
    q->last_busy = sim_.now();
    return req;
}

Request *
Bfq::selectNext()
{
    if (idling_)
        return nullptr; // waiting for the in-service queue to send more

    Queue *q = inServiceQueue();
    if (q != nullptr) {
        if (q->slice_served >= params_.max_budget) {
            // Budget exhausted: expire the slice.
            q->slice_served = 0;
            has_in_service_ = false;
            in_service_cg_ = nullptr;
        } else if (!q->fifo.empty()) {
            return serveFrom(q);
        } else if (params_.slice_idle > 0) {
            // Queue ran dry mid-slice: idle, hoping it sends more soon.
            idling_ = true;
            idle_event_ = sim_.after(params_.slice_idle, [this] {
                idle_event_ = sim::kInvalidEventId;
                if (!idling_)
                    return;
                idling_ = false;
                Queue *in_service = inServiceQueue();
                if (in_service != nullptr)
                    in_service->slice_served = 0;
                has_in_service_ = false;
                in_service_cg_ = nullptr;
                kick();
            });
            return nullptr;
        } else {
            has_in_service_ = false;
            in_service_cg_ = nullptr;
        }
    }

    Queue *next = pickQueue();
    if (next == nullptr)
        return nullptr;
    has_in_service_ = true;
    in_service_cg_ = next->cg;
    next->slice_served = 0;
    return serveFrom(next);
}

bool
Bfq::empty() const
{
    return queued_ == 0;
}

size_t
Bfq::queued() const
{
    return queued_;
}

} // namespace isol::blk
