/**
 * @file
 * BFQ elevator model (paper §IV-B).
 *
 * Captures the BFQ behaviours the paper measures:
 *  - per-cgroup queues with weight-proportional service (a B-WF2Q+-style
 *    virtual-time scheduler over io.bfq.weight, resolved hierarchically);
 *  - exclusive in-service queue with a byte budget per slice;
 *  - `slice_idle`: when the in-service queue runs dry, BFQ idles the
 *    dispatch path briefly waiting for more I/O from the same queue —
 *    the cause of the unstable bandwidth in the paper's Fig. 2c/2d and a
 *    key contributor to BFQ's low NVMe throughput;
 *  - `low_latency` exists as a toggle but defaults off (paper §III
 *    disables it because it changes priorities dynamically).
 *
 * The per-device single dispatch lock is modelled by BlockDevice via
 * dispatchCost().
 */

#ifndef ISOL_BLK_BFQ_HH
#define ISOL_BLK_BFQ_HH

#include <deque>
#include <unordered_map>

#include "blk/elevator.hh"
#include "common/ring.hh"
#include "sim/simulator.hh"

namespace isol::blk
{

/** Tunables mirroring /sys/block/<dev>/queue/iosched for bfq. */
struct BfqParams
{
    SimTime slice_idle = msToNs(8); //!< 0 disables idling
    uint64_t max_budget = 4 * MiB; //!< bytes served per slice
    bool low_latency = false; //!< paper disables this
};

/**
 * BFQ scheduler.
 */
class Bfq : public Elevator
{
  public:
    Bfq(sim::Simulator &sim, cgroup::CgroupTree &tree, BfqParams params = {});
    ~Bfq() override;

    void insert(Request *req) override;
    Request *selectNext() override;
    bool empty() const override;
    size_t queued() const override;

  private:
    struct Queue
    {
        cgroup::Cgroup *cg = nullptr;
        common::RingDeque<Request *> fifo;
        double vfinish = 0.0; //!< virtual finish time (bytes / weight)
        uint64_t slice_served = 0; //!< bytes served in the current slice
        SimTime last_busy = -1; //!< when the queue last had service
    };

    Queue &queueFor(cgroup::Cgroup *cg);

    /** Weight share of a queue (hierarchical io.bfq.weight). */
    double weightOf(const Queue &q) const;

    /** Non-empty queue with the minimum virtual finish time. */
    Queue *pickQueue();

    Request *serveFrom(Queue *q);

    sim::Simulator &sim_;
    cgroup::CgroupTree &tree_;
    BfqParams params_;

    /** Queues in creation order. Iteration order must not depend on
     *  pointer values: heap addresses vary across runs and threads, and
     *  pickQueue() breaks virtual-time ties by iteration order. A
     *  deque keeps references stable across growth. */
    // isol-lint: allow(D1): lookup-only index into queues_; iteration
    // always walks the creation-order deque
    std::unordered_map<const cgroup::Cgroup *, size_t> queue_index_;
    std::deque<Queue> queues_;
    Queue *in_service_ = nullptr;
    bool idling_ = false;
    sim::EventId idle_event_ = sim::kInvalidEventId;
    double vtime_ = 0.0; //!< global virtual time
    size_t queued_ = 0;
};

} // namespace isol::blk

#endif // ISOL_BLK_BFQ_HH
