/**
 * @file
 * BFQ elevator model (paper §IV-B).
 *
 * Captures the BFQ behaviours the paper measures:
 *  - per-cgroup queues with weight-proportional service (a B-WF2Q+-style
 *    virtual-time scheduler over io.bfq.weight, resolved hierarchically);
 *  - exclusive in-service queue with a byte budget per slice;
 *  - `slice_idle`: when the in-service queue runs dry, BFQ idles the
 *    dispatch path briefly waiting for more I/O from the same queue —
 *    the cause of the unstable bandwidth in the paper's Fig. 2c/2d and a
 *    key contributor to BFQ's low NVMe throughput;
 *  - `low_latency` exists as a toggle but defaults off (paper §III
 *    disables it because it changes priorities dynamically).
 *
 * The per-device single dispatch lock is modelled by BlockDevice via
 * dispatchCost().
 */
// isol: domain(blk)

#ifndef ISOL_BLK_BFQ_HH
#define ISOL_BLK_BFQ_HH

#include "blk/cg_state.hh"
#include "blk/elevator.hh"
#include "common/ring.hh"
#include "sim/simulator.hh"

namespace isol::blk
{

/** Tunables mirroring /sys/block/<dev>/queue/iosched for bfq. */
struct BfqParams
{
    SimTime slice_idle = msToNs(8); //!< 0 disables idling
    uint64_t max_budget = 4 * MiB; //!< bytes served per slice
    bool low_latency = false; //!< paper disables this
};

/**
 * BFQ scheduler.
 */
class Bfq : public Elevator
{
  public:
    Bfq(sim::Simulator &sim, cgroup::CgroupTree &tree, BfqParams params = {});
    ~Bfq() override;

    void insert(Request *req) override;
    Request *selectNext() override;
    bool empty() const override;
    size_t queued() const override;
    uint64_t bookkeepingOps() const override { return bookkeeping_ops_; }

    /** Groups with live queues (shrinks on cgroup removal). */
    size_t trackedQueues() const { return queues_.size(); }

  private:
    struct Queue
    {
        const cgroup::Cgroup *cg = nullptr;
        common::RingDeque<Request *> fifo;
        double vfinish = 0.0; //!< virtual finish time (bytes / weight)
        uint64_t slice_served = 0; //!< bytes served in the current slice
        SimTime last_busy = -1; //!< when the queue last had service
        uint64_t seq = 0; //!< creation order, for deterministic ties
        /** Hierarchical weight cached against the tree version so the
         *  per-dispatch hot path stops walking the cgroup tree. */
        double weight = 100.0;
        uint64_t weight_version = 0;
    };

    Queue &queueFor(const cgroup::Cgroup *cg);

    /** Drop the queue when a cgroup is removed (tree listener). */
    void onCgroupRemoved(cgroup::Cgroup &cg);

    /** Weight share of a queue (hierarchical io.bfq.weight, cached). */
    double weightOf(Queue &q);

    /** Non-empty queue with the minimum virtual finish time. */
    Queue *pickQueue();

    /** The in-service queue, or nullptr (identity is the cgroup: slot
     *  positions move under arena growth and swap-remove). */
    Queue *inServiceQueue();

    Request *serveFrom(Queue *q);

    sim::Simulator &sim_;
    cgroup::CgroupTree &tree_;
    BfqParams params_;

    /** Queues in a flat dense-id arena. pickQueue() breaks virtual-time
     *  ties by each queue's creation `seq`, never by slot position or
     *  pointer value, so selection is deterministic across runs and
     *  unaffected by swap-remove perturbation. */
    CgStateArena<Queue> queues_;
    bool has_in_service_ = false;
    const cgroup::Cgroup *in_service_cg_ = nullptr;
    bool idling_ = false;
    sim::EventId idle_event_ = sim::kInvalidEventId;
    double vtime_ = 0.0; //!< global virtual time
    size_t queued_ = 0;
    uint64_t next_seq_ = 0;
    size_t removal_token_ = 0;
    uint64_t bookkeeping_ops_ = 0;
};

} // namespace isol::blk

#endif // ISOL_BLK_BFQ_HH
