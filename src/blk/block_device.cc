// isol: domain(blk)
#include "blk/block_device.hh"

#include <algorithm>

#include "common/logging.hh"

namespace isol::blk
{

BlockDevice::BlockDevice(sim::Simulator &sim, cgroup::CgroupTree &tree,
                         ssd::SsdDevice &ssd, BlockDeviceConfig cfg)
    : sim_(sim), tree_(tree), ssd_(ssd), cfg_(cfg), inv_(cfg.invariants)
{
    switch (cfg_.elevator) {
      case ElevatorType::kNone:
        elevator_ = std::make_unique<NoneElevator>();
        dispatch_cost_ = 0;
        break;
      case ElevatorType::kMqDeadline:
        elevator_ = std::make_unique<MqDeadline>(sim_, cfg_.mq_params);
        dispatch_cost_ = cfg_.mq_lock_hold;
        break;
      case ElevatorType::kBfq:
        elevator_ = std::make_unique<Bfq>(sim_, tree_, cfg_.bfq_params);
        dispatch_cost_ = cfg_.bfq_lock_hold;
        break;
      case ElevatorType::kKyber:
        elevator_ = std::make_unique<Kyber>(sim_, cfg_.kyber_params);
        dispatch_cost_ = 0; // per-cpu token pools, no dispatch lock
        break;
    }
    elevator_->setKick([this] { pumpDispatch(); });
    if (dispatch_cost_ > 0)
        dispatch_lock_ = std::make_unique<ssd::FifoServer>(sim_);

    if (cfg_.enable_io_latency) {
        cfg_.iolat_params.max_nr_requests =
            cfg_.iolatency_max_nr_requests;
        io_latency_ = std::make_unique<IoLatencyGate>(
            sim_, cfg_.dev_id, tree_,
            [this](Request *req) { enterTags(req); }, cfg_.iolat_params);
        io_latency_->setInvariants(inv_);
    }
    if (cfg_.enable_io_cost) {
        io_cost_ = std::make_unique<IoCostGate>(
            sim_, cfg_.dev_id, tree_,
            [this](Request *req) { afterIoCost(req); },
            cfg_.iocost_params);
        io_cost_->setInvariants(inv_);
    }
    if (cfg_.enable_io_max) {
        io_max_ = std::make_unique<IoMaxGate>(
            sim_, cfg_.dev_id, tree_,
            [this](Request *req) { afterIoMax(req); });
        io_max_->setInvariants(inv_);
        io_max_->setDebugCorruptBucket(cfg_.debug_corrupt_iomax_bucket);
    }
}

uint64_t
BlockDevice::gateBookkeepingOps() const
{
    uint64_t ops = elevator_->bookkeepingOps();
    if (io_max_)
        ops += io_max_->bookkeepingOps();
    if (io_latency_)
        ops += io_latency_->bookkeepingOps();
    if (io_cost_)
        ops += io_cost_->bookkeepingOps();
    return ops;
}

void
BlockDevice::finalInvariantChecks()
{
    if (inv_ == nullptr)
        return;
    if (io_max_)
        io_max_->verifyHierarchicalConsumption();
    if (io_cost_)
        io_cost_->checkHierarchicalCharges();
}

void
BlockDevice::start()
{
    if (io_latency_)
        io_latency_->start();
    if (io_cost_)
        io_cost_->start();
}

void
BlockDevice::setTimerCpuCharge(IoCostGate::CpuChargeFn fn)
{
    if (io_cost_)
        io_cost_->setCpuCharge(std::move(fn));
}

SimTime
BlockDevice::perIoCpuExtra() const
{
    SimTime extra = 0;
    switch (cfg_.elevator) {
      case ElevatorType::kNone:
        break;
      case ElevatorType::kMqDeadline:
        extra += cfg_.mq_cpu;
        break;
      case ElevatorType::kBfq:
        extra += cfg_.bfq_cpu;
        break;
      case ElevatorType::kKyber:
        extra += cfg_.kyber_cpu;
        break;
    }
    if (cfg_.enable_io_max)
        extra += cfg_.iomax_cpu;
    if (cfg_.enable_io_latency)
        extra += cfg_.iolat_cpu;
    if (cfg_.enable_io_cost)
        extra += cfg_.iocost_cpu;
    return extra;
}

SimTime
BlockDevice::submitSpinTime() const
{
    if (!dispatch_lock_)
        return 0;
    // When the lock is held right now (it almost always is at
    // saturation), a submitter expects to spin behind ~0.6 of the other
    // live contenders; when the lock is free, acquisition is immediate.
    if (!dispatch_lock_->busy())
        return 0;
    uint32_t others = submitters_ > 0 ? submitters_ - 1 : 0;
    return static_cast<SimTime>(0.6 * static_cast<double>(others) *
                                static_cast<double>(dispatch_cost_));
}

void
BlockDevice::submit(Request *req)
{
    if (req->size == 0)
        fatal("BlockDevice::submit: zero-sized request");
    req->blk_enter_time = sim_.now();
    req->prio = req->cg != nullptr ? req->cg->prioClass()
                                   : cgroup::PrioClass::kNoChange;
    // Submitters recycle Request slots; clear per-request retry state.
    req->retries = 0;
    req->attempt = 0;
    req->failed = false;
    req->timeout_event = sim::kInvalidEventId;
    ++submitted_;
    if (inv_ != nullptr) {
        inv_->onSubmit(req->cg, req->cg != nullptr
                                    ? req->cg->name()
                                    : std::string("<root>"));
    }
    // Insert-side scheduler lock acquisition.
    if (dispatch_lock_) {
        dispatch_lock_->enqueue(dispatch_cost_,
                                [this, req] { afterLock(req); });
        return;
    }
    afterLock(req);
}

void
BlockDevice::afterLock(Request *req)
{
    if (io_max_) {
        io_max_->submit(req);
        return;
    }
    afterIoMax(req);
}

void
BlockDevice::afterIoMax(Request *req)
{
    if (io_cost_) {
        io_cost_->submit(req);
        return;
    }
    afterIoCost(req);
}

void
BlockDevice::afterIoCost(Request *req)
{
    if (io_latency_) {
        io_latency_->submit(req);
        return;
    }
    enterTags(req);
}

void
BlockDevice::enterTags(Request *req)
{
    if (inflight_ >= cfg_.nr_requests) {
        tag_wait_.push_back(req);
        return;
    }
    ++inflight_;
    enterElevator(req);
}

void
BlockDevice::enterElevator(Request *req)
{
    if (inv_ != nullptr)
        inv_->onElevatorInsert(req);
    elevator_->insert(req);
    pumpDispatch();
}

void
BlockDevice::pumpDispatch()
{
    if (pumping_)
        return;
    pumping_ = true;
    while (true) {
        if (dispatch_lock_ && dispatch_pending_ > 0)
            break; // one request at a time through the dispatch lock
        Request *req = elevator_->selectNext();
        if (req == nullptr)
            break;
        if (inv_ != nullptr)
            inv_->onElevatorDispatch(req);
        if (dispatch_lock_) {
            ++dispatch_pending_;
            dispatch_lock_->enqueue(dispatch_cost_, [this, req] {
                --dispatch_pending_;
                issueToDevice(req);
                pumpDispatch();
            });
        } else {
            issueToDevice(req);
        }
    }
    pumping_ = false;
}

void
BlockDevice::issueToDevice(Request *req)
{
    req->dispatch_time = sim_.now();
    uint64_t attempt = ++attempt_seq_;
    req->attempt = attempt;
    if (cfg_.nvme_timeout.enabled) {
        req->timeout_event = sim_.after(
            cfg_.nvme_timeout.command_timeout,
            [this, req, attempt] { onCommandTimeout(req, attempt); });
    }
    ssd_.submit(req->op, req->offset, req->size, [this, req, attempt] {
        onDeviceComplete(req, attempt);
    });
}

void
BlockDevice::onDeviceComplete(Request *req, uint64_t attempt)
{
    if (req->attempt != attempt) {
        // An aborted attempt finishing anyway (its die time was already
        // spent), or the slot was recycled for a newer request. Either
        // way this completion belongs to nobody — drop it.
        ++fault_stats_.late_completions;
        return;
    }
    if (req->timeout_event != sim::kInvalidEventId) {
        sim_.cancel(req->timeout_event);
        req->timeout_event = sim::kInvalidEventId;
    }
    if (req->retries > 0) {
        ++fault_stats_.retry_successes;
        if (req->cg != nullptr)
            ++req->cg->mutableIoFaultStat().retry_successes;
    }
    finishRequest(req);
}

void
BlockDevice::onCommandTimeout(Request *req, uint64_t attempt)
{
    if (req->attempt != attempt)
        return; // stale timer
    req->timeout_event = sim::kInvalidEventId;
    // Abort the in-flight attempt: invalidating the attempt id makes its
    // eventual device completion a dropped late completion.
    req->attempt = 0;
    ++fault_stats_.timeouts;
    ++fault_stats_.aborts;
    if (req->cg != nullptr)
        ++req->cg->mutableIoFaultStat().timeouts;

    if (req->retries >= cfg_.nvme_timeout.max_retries) {
        ++fault_stats_.failed_ios;
        req->failed = true;
        if (req->cg != nullptr)
            ++req->cg->mutableIoFaultStat().failed_ios;
        finishRequest(req);
        return;
    }

    // Requeue with capped exponential backoff. The aborted attempt's
    // device time is spent: bill it to the issuing group so io.cost sees
    // the retried work.
    ++req->retries;
    uint32_t shift = std::min<uint32_t>(req->retries - 1, 30);
    SimTime backoff =
        std::min<SimTime>(cfg_.nvme_timeout.backoff_base << shift,
                          cfg_.nvme_timeout.backoff_cap);
    ++fault_stats_.requeues;
    if (req->cg != nullptr)
        ++req->cg->mutableIoFaultStat().requeues;
    if (io_cost_)
        io_cost_->chargeRetry(req);
    sim_.after(backoff, [this, req] { issueToDevice(req); });
}

void
BlockDevice::finishRequest(Request *req)
{
    ++completed_;
    if (inv_ != nullptr) {
        if (req->failed)
            inv_->onFail(req->cg);
        else
            inv_->onComplete(req->cg);
    }
    if (io_cost_)
        io_cost_->onDeviceComplete(req);
    if (io_latency_)
        io_latency_->onComplete(req);
    elevator_->onComplete(req);

    // Release the tag; admit a waiter if any.
    if (inflight_ == 0)
        panic("BlockDevice: tag underflow");
    --inflight_;
    if (!tag_wait_.empty()) {
        Request *next = tag_wait_.front();
        tag_wait_.pop_front();
        ++inflight_;
        enterElevator(next);
    }

    req->on_complete(req);
}

} // namespace isol::blk
