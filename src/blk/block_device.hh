/**
 * @file
 * BlockDevice: the per-device block-layer pipeline tying the cgroup I/O
 * control knobs to the SSD model.
 *
 *   submit -> [io.max] -> [io.cost] -> [io.latency] -> tags(nr_requests)
 *          -> elevator (none / mq-deadline / bfq) -> dispatch lock -> SSD
 *
 * Each knob is optional; the paper evaluates them one at a time. The
 * elevator dispatch path of MQ-DL and BFQ passes through a serialized
 * per-device critical section (the single dispatch lock), which is what
 * caps their NVMe bandwidth in the paper's Fig. 4 (≈1.8 / ≈0.7 GiB/s on
 * one SSD).
 */
// isol: domain(blk)

#ifndef ISOL_BLK_BLOCK_DEVICE_HH
#define ISOL_BLK_BLOCK_DEVICE_HH

#include <memory>

#include "blk/bfq.hh"
#include "blk/elevator.hh"
#include "blk/kyber.hh"
#include "blk/mq_deadline.hh"
#include "blk/qos_cost.hh"
#include "blk/qos_latency.hh"
#include "blk/qos_max.hh"
#include "blk/request.hh"
#include "common/ring.hh"
#include "fault/fault.hh"
#include "sim/invariants.hh"
#include "sim/simulator.hh"
#include "ssd/device.hh"
#include "ssd/resource.hh"

namespace isol::blk
{

/**
 * Configuration of one block device's I/O control stack.
 */
struct BlockDeviceConfig
{
    cgroup::DeviceId dev_id = 0;
    ElevatorType elevator = ElevatorType::kNone;
    bool enable_io_max = false;
    bool enable_io_latency = false;
    bool enable_io_cost = false;
    /**
     * Scheduler tags available on the device. NVMe exposes one hardware
     * queue per CPU (each with its own tag space), so the effective tag
     * pool is large and rarely binds — if it did, its FIFO wait queue
     * would override the elevator's policy. io.latency's queue-depth
     * mechanism uses the classic per-device nr_requests (1024)
     * independently.
     */
    uint32_t nr_requests = 16384;
    uint32_t iolatency_max_nr_requests = 1024;

    MqDeadlineParams mq_params;
    BfqParams bfq_params;
    KyberParams kyber_params;
    IoLatencyParams iolat_params;
    IoCostParams iocost_params;

    /**
     * Single scheduler-lock hold time per acquisition. Every request
     * acquires the lock twice (insert + dispatch), so one request costs
     * 2x this on the serialized path — the source of the paper's
     * single-SSD bandwidth plateaus (Fig. 4a) — and submitters *spin*
     * for the current backlog, burning their own CPU (Fig. 4c: a full
     * core per batch-app under MQ-DL/BFQ).
     */
    SimTime mq_lock_hold = nsToNs(1050);
    SimTime bfq_lock_hold = nsToNs(2750);

    /** Submit-side per-I/O CPU overhead charged to the issuing task. */
    SimTime mq_cpu = nsToNs(4600);
    SimTime bfq_cpu = nsToNs(12000);
    SimTime kyber_cpu = nsToNs(600); //!< per-cpu token ops, no big lock
    SimTime iomax_cpu = nsToNs(450);
    SimTime iolat_cpu = nsToNs(200);
    SimTime iocost_cpu = nsToNs(300);

    /** NVMe command-timeout handling (disabled by default). */
    fault::TimeoutFaultConfig nvme_timeout;

    /**
     * Runtime invariant checker shared by the whole scenario (nullptr =
     * checking off; every hook is then a single pointer test). Owned by
     * the Scenario, not the device.
     */
    sim::InvariantChecker *invariants = nullptr;

    /** Negative-test mutation: corrupt an io.max token bucket. */
    bool debug_corrupt_iomax_bucket = false;
};

/**
 * One NVMe block device with its cgroup I/O control pipeline.
 */
class BlockDevice
{
  public:
    BlockDevice(sim::Simulator &sim, cgroup::CgroupTree &tree,
                ssd::SsdDevice &ssd, BlockDeviceConfig cfg);

    const BlockDeviceConfig &config() const { return cfg_; }
    ssd::SsdDevice &ssd() { return ssd_; }

    /** Arm periodic controllers (io.latency window, io.cost period). */
    void start();

    /**
     * Route the io.cost period-timer work through a CPU core so its
     * cost becomes visible past CPU saturation (paper O1).
     */
    void setTimerCpuCharge(IoCostGate::CpuChargeFn fn);

    /**
     * Enter a request into the pipeline. The caller has already paid the
     * submission CPU cost (engine cost + perIoCpuExtra()).
     */
    void submit(Request *req);

    /**
     * Extra submit-side CPU one I/O costs under the enabled knobs
     * (elevator insert/lock work + qos accounting).
     */
    SimTime perIoCpuExtra() const;

    /**
     * CPU time the submitting thread will burn spinning on the scheduler
     * lock if it submits right now (0 without an elevator lock). A real
     * thread only spins while the current holder holds, so the wait is
     * bounded by the number of contending submitters, not by the whole
     * async backlog. The submitter charges this to its core in parallel
     * with the submission.
     */
    SimTime submitSpinTime() const;

    /** A job on this device started (lock-contention accounting). */
    void registerSubmitter() { ++submitters_; }

    /** A job on this device stopped. */
    void
    unregisterSubmitter()
    {
        if (submitters_ > 0)
            --submitters_;
    }

    uint32_t submitters() const { return submitters_; }

    // --- Statistics / white-box access ---
    uint64_t submitted() const { return submitted_; }
    uint64_t completed() const { return completed_; }
    uint32_t inflight() const { return inflight_; }

    /** Command-timeout / retry counters (all zero when disabled). */
    const fault::HostFaultStats &faultStats() const { return fault_stats_; }
    size_t tagWaiting() const { return tag_wait_.size(); }
    IoMaxGate *ioMaxGate() { return io_max_.get(); }
    IoLatencyGate *ioLatencyGate() { return io_latency_.get(); }
    IoCostGate *ioCostGate() { return io_cost_.get(); }
    Elevator &elevator() { return *elevator_; }

    /**
     * Per-cgroup bookkeeping work across every enabled gate and the
     * elevator: share recomputes, donation passes, chain charge walks,
     * window scans, queue-selection scans. Deterministic (pure event
     * counts), so benches report it alongside throughput to show where
     * gate state handling becomes the hot path at high tenant counts.
     */
    uint64_t gateBookkeepingOps() const;

    /**
     * End-of-run hierarchical conservation checks (no-op when invariant
     * checking is off or the relevant gate is disabled).
     */
    void finalInvariantChecks();

  private:
    void afterLock(Request *req);
    void afterIoMax(Request *req);
    void afterIoCost(Request *req);
    void enterTags(Request *req);
    void enterElevator(Request *req);
    void pumpDispatch();
    void issueToDevice(Request *req);
    void onDeviceComplete(Request *req, uint64_t attempt);
    void onCommandTimeout(Request *req, uint64_t attempt);
    void finishRequest(Request *req);

    sim::Simulator &sim_;
    cgroup::CgroupTree &tree_;
    ssd::SsdDevice &ssd_;
    BlockDeviceConfig cfg_;

    std::unique_ptr<Elevator> elevator_;
    std::unique_ptr<IoMaxGate> io_max_;
    std::unique_ptr<IoLatencyGate> io_latency_;
    std::unique_ptr<IoCostGate> io_cost_;
    std::unique_ptr<ssd::FifoServer> dispatch_lock_;

    SimTime dispatch_cost_ = 0;
    common::RingDeque<Request *> tag_wait_;
    uint32_t inflight_ = 0; //!< holding a tag (elevator + device)
    uint32_t dispatch_pending_ = 0;
    bool pumping_ = false;

    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    uint32_t submitters_ = 0;

    // Command-timeout state. Attempt ids are device-global and strictly
    // increasing: submitters recycle Request slots, so a late completion
    // of an aborted attempt must be matched by id, not by pointer.
    fault::HostFaultStats fault_stats_;
    uint64_t attempt_seq_ = 0;
    sim::InvariantChecker *inv_ = nullptr;
};

} // namespace isol::blk

#endif // ISOL_BLK_BLOCK_DEVICE_HH
