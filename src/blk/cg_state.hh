/**
 * @file
 * Flat arena-backed per-cgroup gate state, indexed by dense CgroupId.
 *
 * Every blk gate keeps one State record per cgroup it has seen. The
 * original implementations paired an `unordered_map<Cgroup*, size_t>`
 * with a creation-order `std::deque` — fine for the paper's 2-8 tenant
 * experiments, but at O(1000) groups the hash lookups dominate the
 * per-request cost and destroyed groups keep paying an O(n) skip in
 * every scan because the deque is never compacted.
 *
 * CgStateArena replaces that with two flat vectors:
 *
 *  - `slot_of_[id]` maps a dense CgroupId to the state's current slot
 *    (-1 when the gate holds no state for that group), so lookup is one
 *    bounds check and one array load — no hashing, no pointer chasing;
 *  - `states_` holds the live records contiguously in registration
 *    order; iteration touches exactly the live groups.
 *
 * Removal is swap-remove: the last record moves into the vacated slot
 * and both `slot_of_` entries are patched. Registration order is
 * therefore perturbed by removals, but deterministically — the same
 * event sequence yields the same slot layout on every run and at every
 * `--jobs` count. Iteration-order-sensitive logic (vtime scans, BFQ
 * tie-breaks) must order by an explicit key (e.g. a per-state creation
 * sequence number), not by slot position, if removals can interleave.
 *
 * Records move on insertion (vector growth) and on erase (swap), so
 * callers must not hold a `State&` across either; re-look-up via
 * find()/stateFor() instead, and key InvariantChecker monotone series
 * with caller-owned slots inside the State, never with `&state`.
 *
 * `State` must expose a `const cgroup::Cgroup *cg` member (nullptr is a
 * valid key: requests without a cgroup share one dedicated slot).
 */
// isol: domain(blk)

#ifndef ISOL_BLK_CG_STATE_HH
#define ISOL_BLK_CG_STATE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "cgroup/cgroup.hh"

namespace isol::blk
{

template <typename State>
class CgStateArena
{
  public:
    /** Look up the state for `cg`, default-constructing it on first
     *  sight (with `state.cg` set). May move existing records. */
    State &stateFor(const cgroup::Cgroup *cg)
    {
        int32_t &slot = slotRef(cg);
        if (slot < 0) {
            slot = static_cast<int32_t>(states_.size());
            states_.emplace_back();
            states_.back().cg = cg;
        }
        return states_[static_cast<size_t>(slot)];
    }

    /** nullptr when the gate holds no state for `cg`. */
    State *find(const cgroup::Cgroup *cg)
    {
        int32_t slot = slotOf(cg);
        return slot < 0 ? nullptr : &states_[static_cast<size_t>(slot)];
    }

    const State *find(const cgroup::Cgroup *cg) const
    {
        int32_t slot = slotOf(cg);
        return slot < 0 ? nullptr : &states_[static_cast<size_t>(slot)];
    }

    /**
     * Dense-id lookup for cached ancestor-chain walks: two array loads,
     * no pointer chasing through Cgroup nodes. nullptr when this gate
     * holds no state for the id.
     */
    State *findId(uint32_t id)
    {
        if (id >= slot_of_.size() || slot_of_[id] < 0)
            return nullptr;
        return &states_[static_cast<size_t>(slot_of_[id])];
    }

    bool contains(const cgroup::Cgroup *cg) const { return slotOf(cg) >= 0; }

    /** Swap-remove the state for `cg`; false when absent. */
    bool erase(const cgroup::Cgroup *cg)
    {
        int32_t slot = slotOf(cg);
        if (slot < 0)
            return false;
        auto pos = static_cast<size_t>(slot);
        size_t last = states_.size() - 1;
        if (pos != last) {
            states_[pos] = std::move(states_[last]);
            slotRef(states_[pos].cg) = slot;
        }
        states_.pop_back();
        slotRef(cg) = -1;
        return true;
    }

    size_t size() const { return states_.size(); }
    bool empty() const { return states_.empty(); }

    /** Dense registration-order access (perturbed by swap-removes). */
    State &operator[](size_t i) { return states_[i]; }
    const State &operator[](size_t i) const { return states_[i]; }

    typename std::vector<State>::iterator begin() { return states_.begin(); }
    typename std::vector<State>::iterator end() { return states_.end(); }
    typename std::vector<State>::const_iterator begin() const
    {
        return states_.begin();
    }
    typename std::vector<State>::const_iterator end() const
    {
        return states_.end();
    }

  private:
    int32_t slotOf(const cgroup::Cgroup *cg) const
    {
        if (cg == nullptr)
            return null_slot_;
        size_t id = cg->id();
        return id < slot_of_.size() ? slot_of_[id] : -1;
    }

    int32_t &slotRef(const cgroup::Cgroup *cg)
    {
        if (cg == nullptr)
            return null_slot_;
        size_t id = cg->id();
        if (id >= slot_of_.size())
            slot_of_.resize(id + 1, -1);
        return slot_of_[id];
    }

    std::vector<int32_t> slot_of_;
    int32_t null_slot_ = -1;
    std::vector<State> states_;
};

} // namespace isol::blk

#endif // ISOL_BLK_CG_STATE_HH
