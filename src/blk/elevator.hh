/**
 * @file
 * Elevator (I/O scheduler) interface and the trivial "none" elevator.
 *
 * The BlockDevice drives elevators with a pull model: it calls
 * selectNext() whenever it can dispatch. An elevator may hold back
 * requests (BFQ slice idling, MQ-DL priority starvation) and later call
 * the kick callback to restart dispatching.
 */
// isol: domain(blk)

#ifndef ISOL_BLK_ELEVATOR_HH
#define ISOL_BLK_ELEVATOR_HH

#include "blk/request.hh"
#include "common/ring.hh"
#include "common/types.hh"
#include "sim/small_function.hh"

namespace isol::blk
{

/**
 * Abstract I/O scheduler.
 */
class Elevator
{
  public:
    virtual ~Elevator() = default;

    /** Queue a request for dispatch. */
    virtual void insert(Request *req) = 0;

    /**
     * Pick the next request to dispatch, or nullptr if none should be
     * dispatched right now (empty, or intentionally idling).
     */
    virtual Request *selectNext() = 0;

    /** Notification that a previously dispatched request completed. */
    virtual void onComplete(Request *req) { (void)req; }

    /** True when no requests are queued inside the elevator. */
    virtual bool empty() const = 0;

    /** Number of queued (not yet dispatched) requests. */
    virtual size_t queued() const = 0;

    /**
     * Per-cgroup bookkeeping work performed so far (state scans, weight
     * resolution). Deterministic; benches report it to make scheduler
     * scale cliffs visible. Elevators without per-cgroup state report 0.
     */
    virtual uint64_t bookkeepingOps() const { return 0; }

    /**
     * Register the callback the elevator uses to restart dispatching
     * after holding back requests (e.g. when an idle window expires).
     */
    void setKick(sim::SmallCallback kick) { kick_ = std::move(kick); }

  protected:
    /** Restart the device dispatch loop. */
    void
    kick()
    {
        if (kick_)
            kick_();
    }

  private:
    sim::SmallCallback kick_;
};

/**
 * The "none" elevator: plain FIFO, no reordering, no added dispatch cost
 * (multi-queue direct dispatch).
 */
class NoneElevator : public Elevator
{
  public:
    void insert(Request *req) override { fifo_.push_back(req); }

    Request *
    selectNext() override
    {
        if (fifo_.empty())
            return nullptr;
        Request *req = fifo_.front();
        fifo_.pop_front();
        return req;
    }

    bool empty() const override { return fifo_.empty(); }
    size_t queued() const override { return fifo_.size(); }

  private:
    common::RingDeque<Request *> fifo_;
};

} // namespace isol::blk

#endif // ISOL_BLK_ELEVATOR_HH
