// isol: domain(blk)
#include "blk/kyber.hh"

#include <algorithm>

namespace isol::blk
{

Kyber::Kyber(sim::Simulator &sim, KyberParams params)
    : sim_(sim), params_(params), write_depth_(params.write_depth)
{
    timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, params_.tune_window, [this] { tune(); });
    timer_->start();
}

Kyber::~Kyber() = default;

Kyber::Domain
Kyber::domainOf(const Request &req)
{
    return req.op == OpType::kRead ? kReadDom : kWriteDom;
}

uint32_t
Kyber::depthOf(Domain dom) const
{
    return dom == kReadDom ? params_.read_depth : write_depth_;
}

void
Kyber::insert(Request *req)
{
    // Reuse dispatch_time as the insert timestamp for window latency; it
    // is overwritten at actual dispatch by BlockDevice.
    domains_[domainOf(*req)].fifo.push_back(req);
    ++queued_;
}

Request *
Kyber::selectNext()
{
    // Reads first (Kyber's whole point is protecting reads), writes
    // behind their scaled token depth.
    for (int d = 0; d < kNumDomains; ++d) {
        auto dom = static_cast<Domain>(d);
        DomainState &state = domains_[d];
        if (state.fifo.empty())
            continue;
        if (state.inflight >= depthOf(dom))
            continue; // out of domain tokens
        Request *req = state.fifo.front();
        state.fifo.pop_front();
        --queued_;
        ++state.inflight;
        return req;
    }
    return nullptr;
}

void
Kyber::onComplete(Request *req)
{
    DomainState &state = domains_[domainOf(*req)];
    if (state.inflight > 0)
        --state.inflight;
    state.window_lat.push_back(sim_.now() - req->blk_enter_time);
    // A token was returned: dispatching may resume.
    kick();
}

SimTime
Kyber::windowP99(std::vector<SimTime> &samples)
{
    if (samples.size() < 8)
        return 0;
    size_t idx = samples.size() * 99 / 100;
    if (idx >= samples.size())
        idx = samples.size() - 1;
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<ptrdiff_t>(idx),
                     samples.end());
    return samples[idx];
}

void
Kyber::tune()
{
    SimTime read_p99 = windowP99(domains_[kReadDom].window_lat);
    SimTime write_p99 = windowP99(domains_[kWriteDom].window_lat);
    domains_[kReadDom].window_lat.clear();
    domains_[kWriteDom].window_lat.clear();

    if (read_p99 > params_.read_lat_target) {
        // Reads are hurting: throttle the write domain.
        write_depth_ = std::max(1u, write_depth_ / 2);
    } else if (write_p99 <= params_.write_lat_target &&
               write_depth_ < params_.write_depth) {
        // Both domains healthy: recover write depth gradually.
        write_depth_ = std::min(params_.write_depth,
                                write_depth_ + write_depth_ / 4 + 1);
    }
    kick();
}

bool
Kyber::empty() const
{
    return queued_ == 0;
}

size_t
Kyber::queued() const
{
    return queued_;
}

} // namespace isol::blk
