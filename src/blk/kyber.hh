/**
 * @file
 * Kyber elevator model — an extension beyond the paper's evaluated
 * knobs.
 *
 * The paper's related work ([75], Ren et al., ICPE'24) characterises
 * BFQ, MQ-Deadline and Kyber as the three NVMe-era Linux schedulers;
 * the paper itself evaluates only the two with cgroup knobs. Kyber has
 * no cgroup integration, but including it lets isol-bench-sim reproduce
 * the scheduler-comparison studies too.
 *
 * Mechanism (block/kyber-iosched.c): requests are split into scheduling
 * domains (reads, writes, other) with per-domain token depths. A
 * latency-tuning window measures per-domain latencies against targets
 * (2 ms reads, 10 ms writes by default) and scales the *other* domains'
 * depths down when reads miss their target — Kyber throttles writes to
 * protect reads. Kyber is multi-queue friendly: no single dispatch
 * lock, so BlockDevice assigns it no serialized dispatch cost.
 */
// isol: domain(blk)

#ifndef ISOL_BLK_KYBER_HH
#define ISOL_BLK_KYBER_HH

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "blk/elevator.hh"
#include "common/ring.hh"
#include "sim/simulator.hh"

namespace isol::blk
{

/** Tunables mirroring /sys/block/<dev>/queue/iosched for kyber. */
struct KyberParams
{
    SimTime read_lat_target = msToNs(2);
    SimTime write_lat_target = msToNs(10);
    uint32_t read_depth = 256;
    uint32_t write_depth = 128;
    SimTime tune_window = msToNs(100);
};

/**
 * Kyber scheduler.
 */
class Kyber : public Elevator
{
  public:
    explicit Kyber(sim::Simulator &sim, KyberParams params = {});
    ~Kyber() override;

    void insert(Request *req) override;
    Request *selectNext() override;
    void onComplete(Request *req) override;
    bool empty() const override;
    size_t queued() const override;

    /** Current effective write-domain depth (white-box testing). */
    uint32_t writeDepth() const { return write_depth_; }

  private:
    enum Domain : int { kReadDom = 0, kWriteDom = 1, kNumDomains = 2 };

    struct DomainState
    {
        common::RingDeque<Request *> fifo;
        uint32_t inflight = 0;
        /** Latency samples (completion - insert) this window. */
        std::vector<SimTime> window_lat;
    };

    static Domain domainOf(const Request &req);
    uint32_t depthOf(Domain dom) const;

    /** P99-ish latency of a window sample set (0 when too few). */
    static SimTime windowP99(std::vector<SimTime> &samples);

    void tune();

    sim::Simulator &sim_;
    KyberParams params_;
    std::array<DomainState, kNumDomains> domains_;
    uint32_t write_depth_; //!< scaled between 1 and params.write_depth
    std::unique_ptr<sim::PeriodicTimer> timer_;
    size_t queued_ = 0;
};

} // namespace isol::blk

#endif // ISOL_BLK_KYBER_HH
