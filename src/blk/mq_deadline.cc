// isol: domain(blk)
#include "blk/mq_deadline.hh"

namespace isol::blk
{

MqDeadline::MqDeadline(sim::Simulator &sim, MqDeadlineParams params)
    : sim_(sim), params_(params)
{
}

MqDeadline::Level
MqDeadline::levelOf(const Request &req)
{
    switch (req.prio) {
      case cgroup::PrioClass::kPromoteToRt:
        return kRt;
      case cgroup::PrioClass::kIdle:
        return kIdle;
      case cgroup::PrioClass::kNoChange:
      case cgroup::PrioClass::kRestrictToBe:
        return kBe;
    }
    return kBe;
}

void
MqDeadline::insert(Request *req)
{
    ClassQueues &cls = classes_[levelOf(*req)];
    DirQueue &dir = req->op == OpType::kRead ? cls.read : cls.write;
    dir.fifo.push_back(Pending{req, sim_.now()});
    ++queued_;
}

SimTime
MqDeadline::oldestAge(const ClassQueues &cls) const
{
    SimTime oldest = -1;
    if (!cls.read.fifo.empty())
        oldest = sim_.now() - cls.read.fifo.front().arrival;
    if (!cls.write.fifo.empty()) {
        SimTime age = sim_.now() - cls.write.fifo.front().arrival;
        if (age > oldest)
            oldest = age;
    }
    return oldest;
}

Request *
MqDeadline::popDir(ClassQueues &cls, OpType dir)
{
    DirQueue &q = dir == OpType::kRead ? cls.read : cls.write;
    if (q.fifo.empty())
        return nullptr;
    Request *req = q.fifo.front().req;
    q.fifo.pop_front();
    --queued_;
    return req;
}

Request *
MqDeadline::popFrom(ClassQueues &cls)
{
    bool has_read = !cls.read.fifo.empty();
    bool has_write = !cls.write.fifo.empty();
    if (!has_read && !has_write)
        return nullptr;

    // Continue the current batch if it still has credit and requests.
    if (cls.batch_left > 0) {
        Request *req = popDir(cls, cls.batch_dir);
        if (req) {
            --cls.batch_left;
            return req;
        }
    }

    // Pick a direction: reads preferred, writes served when starved or
    // when a write deadline has expired.
    OpType dir = OpType::kRead;
    if (!has_read) {
        dir = OpType::kWrite;
    } else if (has_write) {
        bool write_expired =
            sim_.now() - cls.write.fifo.front().arrival >
            params_.write_expire;
        if (write_expired || cls.starved >= params_.writes_starved) {
            dir = OpType::kWrite;
        }
    }
    if (dir == OpType::kWrite)
        cls.starved = 0;
    else if (has_write)
        ++cls.starved;

    cls.batch_dir = dir;
    cls.batch_left = params_.fifo_batch - 1;
    return popDir(cls, dir);
}

Request *
MqDeadline::selectNext()
{
    // Aging: serve a starving lower class before higher classes.
    for (int level = kNumLevels - 1; level > 0; --level) {
        ClassQueues &cls = classes_[level];
        SimTime age = oldestAge(cls);
        if (age >= 0 && age > params_.prio_aging_expire) {
            Request *req = popFrom(cls);
            if (req) {
                ++cls.inflight;
                return req;
            }
        }
    }
    // A lower class may only dispatch when every higher class is fully
    // drained (nothing queued, nothing in flight).
    for (auto &cls : classes_) {
        Request *req = popFrom(cls);
        if (req) {
            ++cls.inflight;
            return req;
        }
        if (cls.inflight > 0)
            return nullptr; // block lower classes
    }
    return nullptr;
}

void
MqDeadline::onComplete(Request *req)
{
    ClassQueues &cls = classes_[levelOf(*req)];
    if (cls.inflight == 0)
        return; // request predates a scheduler switch
    --cls.inflight;
    // Lower classes may have been blocked on this class's in-flight I/O.
    kick();
}

bool
MqDeadline::empty() const
{
    return queued_ == 0;
}

size_t
MqDeadline::queued() const
{
    return queued_;
}

} // namespace isol::blk
