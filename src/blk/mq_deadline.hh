/**
 * @file
 * MQ-Deadline elevator model (paper §IV-B).
 *
 * Faithful to the behaviours the paper measures:
 *  - three I/O priority classes (RT > BE > IDLE) fed by io.prio.class;
 *    a lower class is only dispatched when every higher class has no
 *    request queued *or in flight* — which starves lower classes to
 *    near-zero bandwidth while a higher-priority app keeps I/O
 *    outstanding (the paper's Fig. 2b);
 *  - starvation control: a lower-class request whose age exceeds
 *    `prio_aging_expire` is served ahead of higher classes;
 *  - per-direction FIFOs with read/write expiry deadlines and
 *    fifo_batch-sized batches, writes_starved limiting read preference;
 *  - a per-device serialized dispatch critical section (the single
 *    dispatch lock) is modelled by BlockDevice via dispatchCost().
 */
// isol: domain(blk)

#ifndef ISOL_BLK_MQ_DEADLINE_HH
#define ISOL_BLK_MQ_DEADLINE_HH

#include <array>

#include "blk/elevator.hh"
#include "common/ring.hh"
#include "sim/simulator.hh"

namespace isol::blk
{

/** Tunables mirroring /sys/block/<dev>/queue/iosched for mq-deadline. */
struct MqDeadlineParams
{
    SimTime read_expire = msToNs(500);
    SimTime write_expire = secToNs(int64_t{5});
    int fifo_batch = 16;
    int writes_starved = 2;
    /** Aging promotion for lower priority classes (kernel default 10 s). */
    SimTime prio_aging_expire = secToNs(int64_t{10});
};

/**
 * mq-deadline scheduler.
 */
class MqDeadline : public Elevator
{
  public:
    explicit MqDeadline(sim::Simulator &sim, MqDeadlineParams params = {});

    void insert(Request *req) override;
    Request *selectNext() override;
    void onComplete(Request *req) override;
    bool empty() const override;
    size_t queued() const override;

  private:
    /** Internal priority levels in dispatch order. */
    enum Level : int { kRt = 0, kBe = 1, kIdle = 2, kNumLevels = 3 };

    struct Pending
    {
        Request *req;
        SimTime arrival;
    };

    struct DirQueue
    {
        common::RingDeque<Pending> fifo;
    };

    struct ClassQueues
    {
        DirQueue read;
        DirQueue write;
        int batch_left = 0;
        OpType batch_dir = OpType::kRead;
        int starved = 0;
        uint32_t inflight = 0; //!< dispatched, not yet completed

        bool
        hasQueued() const
        {
            return !read.fifo.empty() || !write.fifo.empty();
        }
    };

    static Level levelOf(const Request &req);

    /** Oldest pending request age within a class, or -1 when empty. */
    SimTime oldestAge(const ClassQueues &cls) const;

    Request *popFrom(ClassQueues &cls);
    Request *popDir(ClassQueues &cls, OpType dir);

    sim::Simulator &sim_;
    MqDeadlineParams params_;
    std::array<ClassQueues, kNumLevels> classes_;
    size_t queued_ = 0;
};

} // namespace isol::blk

#endif // ISOL_BLK_MQ_DEADLINE_HH
