#include "blk/qos_cost.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/strings.hh"
#include "sim/invariants.hh"

namespace isol::blk
{

IoCostGate::IoCostGate(sim::Simulator &sim, cgroup::DeviceId dev,
                       cgroup::CgroupTree &tree, PassFn pass,
                       IoCostParams params)
    : sim_(sim), dev_(dev), tree_(tree), pass_(std::move(pass)),
      params_(params)
{
    cgroup::IoCostQos qos = tree_.costQos(dev_);
    vrate_ = qos.vrate_max / 100.0;
    timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, params_.period, [this] { periodTick(); });
}

void
IoCostGate::start()
{
    timer_->start();
}

IoCostGate::CgState &
IoCostGate::stateFor(const cgroup::Cgroup *cg)
{
    auto [it, inserted] = state_index_.try_emplace(cg, states_.size());
    if (inserted) {
        CgState &st = states_.emplace_back();
        st.cg = cg;
        st.vtime = vnow_;
    }
    return states_[it->second];
}

SimTime
IoCostGate::absCost(OpType op, bool sequential, uint32_t size) const
{
    // Kernel linear-model form (calc_lcoefs): the per-I/O coefficient is
    // the *residual* of the IOPS duty point above the per-page cost, so
    // a 4 KiB random read costs max(1/riops, size/bps) rather than the
    // sum — the model's saturation points are met exactly.
    cgroup::IoCostModel model = tree_.costModel(dev_);
    const double page = 4096.0;
    double bps;
    uint64_t iops;
    if (op == OpType::kRead) {
        bps = static_cast<double>(model.rbps);
        iops = sequential ? model.rseqiops : model.rrandiops;
    } else {
        bps = static_cast<double>(model.wbps);
        iops = sequential ? model.wseqiops : model.wrandiops;
    }
    double page_cost = page / bps;
    double io_resid =
        std::max(0.0, 1.0 / static_cast<double>(iops) - page_cost);
    double seconds =
        static_cast<double>(size) / bps + io_resid;
    return static_cast<SimTime>(seconds * 1e9);
}

void
IoCostGate::updateVnow()
{
    SimTime now = sim_.now();
    if (now > vnow_updated_) {
        vnow_ += static_cast<double>(now - vnow_updated_) * vrate_;
        vnow_updated_ = now;
    }
}

void
IoCostGate::activate(CgState &st)
{
    st.last_io = sim_.now();
    if (st.active)
        return;
    st.active = true;
    ++active_count_;
    // A group joining after idling must not spend banked history.
    st.vtime = std::max(st.vtime, vnow_ - params_.credit_cap);
    recomputeShares();
}

void
IoCostGate::recomputeShares()
{
    // Mark every tree node that has an active descendant, then resolve
    // each active group's hierarchical weight share among marked
    // siblings (weight donation: idle groups are simply not counted).
    // isol-lint: allow(D1): lookup-only visited set; the loops below
    // iterate states_ (creation order) and tree children, never this map
    std::unordered_map<const cgroup::Cgroup *, bool> marked;
    for (CgState &st : states_) {
        if (!st.active || st.cg == nullptr)
            continue;
        const cgroup::Cgroup *node = st.cg;
        while (node != nullptr && !marked[node]) {
            marked[node] = true;
            node = node->parent();
        }
    }
    for (CgState &st : states_) {
        if (st.cg == nullptr) {
            st.share = 1.0;
            continue;
        }
        if (!st.active)
            continue;
        double share = 1.0;
        const cgroup::Cgroup *node = st.cg;
        while (!node->isRoot()) {
            const cgroup::Cgroup *parent = node->parent();
            uint64_t sum = 0;
            for (const cgroup::Cgroup *sib : parent->children()) {
                auto it = marked.find(sib);
                if (it != marked.end() && it->second)
                    sum += sib->ioWeight();
            }
            if (sum == 0)
                sum = node->ioWeight();
            share *= static_cast<double>(node->ioWeight()) /
                     static_cast<double>(sum);
            node = parent;
        }
        st.raw_share = std::max(share, 1e-9);
        // Activation/weight changes grant the full raw share; the next
        // period's donation pass trims unused budget again.
        st.share = st.raw_share;
    }
}

void
IoCostGate::donateShares()
{
    // Donation (kernel hweight_inuse): an active group consuming well
    // below its share keeps only usage + headroom; freed budget goes to
    // budget-constrained groups in proportion to their raw weights.
    double period_cap =
        static_cast<double>(params_.period) * std::max(vrate_, 1e-6);
    double want_sum = 0.0;
    double receiver_raw_sum = 0.0;
    std::vector<CgState *> receivers;

    for (CgState &st : states_) {
        if (!st.active)
            continue;
        double usage = st.period_abs / period_cap;
        st.period_abs = 0.0;
        bool constrained = usage >= 0.85 * st.share;
        double want;
        if (constrained) {
            // Using its grant: expand back toward the raw share.
            want = std::min(st.raw_share,
                            std::max(st.share * 2.0, usage * 1.25 + 0.02));
            receivers.push_back(&st);
            receiver_raw_sum += st.raw_share;
        } else {
            // Donor: keep usage plus headroom.
            want = std::min(st.raw_share, usage * 1.25 + 0.02);
        }
        st.share = std::max(want, 1e-9);
        want_sum += st.share;
    }

    double surplus = 1.0 - want_sum;
    if (surplus <= 0.0)
        return;
    if (!receivers.empty()) {
        for (CgState *st : receivers)
            st->share += surplus * st->raw_share / receiver_raw_sum;
        return;
    }
    // Nobody is constrained: return the surplus weight-proportionally so
    // no group sits below its raw entitlement (the D1 "must not
    // throttle" configurations rely on this).
    double raw_sum = 0.0;
    for (CgState &st : states_) {
        if (st.active)
            raw_sum += st.raw_share;
    }
    if (raw_sum <= 0.0)
        return;
    for (CgState &st : states_) {
        if (st.active)
            st.share += surplus * st.raw_share / raw_sum;
    }
}

bool
IoCostGate::tryCharge(CgState &st, OpType op, bool sequential,
                      uint32_t size)
{
    updateVnow();
    if (st.vtime < vnow_ - params_.credit_cap)
        st.vtime = vnow_ - params_.credit_cap;
    double abs = static_cast<double>(absCost(op, sequential, size));
    double cost = abs / std::max(st.share, 1e-9);
    if (st.vtime + cost <= vnow_ + static_cast<double>(params_.margin)) {
        st.vtime += cost;
        st.period_abs += abs; // usage accounting for donation
        if (inv_ != nullptr) {
            inv_->checkMonotonic(
                &st, "io.cost vtime monotonicity",
                strCat("cgroup '",
                       st.cg != nullptr ? st.cg->name() : "<root>", "'"),
                st.vtime);
        }
        return true;
    }
    return false;
}

void
IoCostGate::chargeRetry(Request *req)
{
    if (req->cg == nullptr)
        return;
    CgState &st = stateFor(req->cg);
    activate(st);
    updateVnow();
    double abs = static_cast<double>(absCost(*req));
    st.vtime += abs / std::max(st.share, 1e-9);
    st.period_abs += abs;
    if (inv_ != nullptr) {
        inv_->checkMonotonic(&st, "io.cost vtime monotonicity",
                             strCat("cgroup '", req->cg->name(), "'"),
                             st.vtime);
    }
}

void
IoCostGate::submit(Request *req)
{
    CgState &st = stateFor(req->cg);
    activate(st);
    if (st.queue.empty() &&
        tryCharge(st, req->op, req->sequential, req->size)) {
        pass_(req);
        return;
    }
    st.queue.push_back(QEnt{req, req->op, req->sequential, req->size});
    ++throttled_;
    drain(st);
}

void
IoCostGate::drain(CgState &st)
{
    if (st.wake_event != sim::kInvalidEventId) {
        sim_.cancel(st.wake_event);
        st.wake_event = sim::kInvalidEventId;
    }
    while (!st.queue.empty()) {
        const QEnt head = st.queue.front();
        if (tryCharge(st, head.op, head.sequential, head.size)) {
            st.queue.pop_front();
            --throttled_;
            pass_(head.req);
            continue;
        }
        // Compute when the device clock will have advanced enough.
        double cost = static_cast<double>(
                          absCost(head.op, head.sequential, head.size)) /
                      std::max(st.share, 1e-9);
        double needed =
            st.vtime + cost - static_cast<double>(params_.margin) - vnow_;
        SimTime delay = static_cast<SimTime>(
            needed / std::max(vrate_, 1e-6));
        delay = std::max<SimTime>(delay, usToNs(1));
        const cgroup::Cgroup *cg = st.cg;
        st.wake_event = sim_.after(delay, [this, cg] {
            CgState &state = stateFor(cg);
            state.wake_event = sim::kInvalidEventId;
            drain(state);
        });
        return;
    }
}

void
IoCostGate::onDeviceComplete(Request *req)
{
    SimTime lat = sim_.now() - req->dispatch_time;
    if (req->op == OpType::kRead)
        window_read_lat_.record(lat);
    else
        window_write_lat_.record(lat);
}

void
IoCostGate::periodTick()
{
    // The period timer is kernel work: walking the active groups holds
    // the ioc lock and competes with submission paths for CPU. Charge it
    // to the host CPU first; the control decisions run when it retires.
    SimTime work = params_.timer_cpu_base +
                   params_.timer_cpu_per_group *
                       static_cast<SimTime>(active_count_);
    if (cpu_charge_) {
        cpu_charge_(work, [this] { periodWork(); });
    } else {
        periodWork();
    }
}

void
IoCostGate::periodWork()
{
    updateVnow();

    // Deactivate groups idle for more than two periods (weight donation).
    bool changed = false;
    for (CgState &st : states_) {
        if (st.active && st.queue.empty() &&
            sim_.now() - st.last_io > 2 * params_.period) {
            st.active = false;
            --active_count_;
            changed = true;
        }
    }
    if (changed)
        recomputeShares();
    if (params_.enable_donation)
        donateShares();

    // QoS: compare windowed device latencies against the targets and
    // scale vrate within [min, max].
    cgroup::IoCostQos qos = tree_.costQos(dev_);
    double vmin = qos.vrate_min / 100.0;
    double vmax = qos.vrate_max / 100.0;
    if (!qos.enable) {
        vrate_ = vmax;
    } else {
        bool read_checked = qos.rpct > 0.0 && window_read_lat_.count() > 0;
        bool write_checked =
            qos.wpct > 0.0 && window_write_lat_.count() > 0;
        bool violated =
            (read_checked &&
             window_read_lat_.percentile(qos.rpct) > qos.rlat) ||
            (write_checked &&
             window_write_lat_.percentile(qos.wpct) > qos.wlat);
        if (violated)
            vrate_ = std::max(vmin, vrate_ * params_.vrate_step_down);
        else
            vrate_ = std::min(vmax, vrate_ + params_.vrate_step_up * vmax);
    }
    window_read_lat_.clear();
    window_write_lat_.clear();

    // Wakeup estimates are stale after a vrate change: re-drain.
    for (CgState &st : states_) {
        if (!st.queue.empty())
            drain(st);
    }
}

double
IoCostGate::shareOf(const cgroup::Cgroup *cg)
{
    return stateFor(cg).share;
}

} // namespace isol::blk
