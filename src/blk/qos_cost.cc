// isol: domain(blk)
#include "blk/qos_cost.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strings.hh"
#include "sim/invariants.hh"

namespace isol::blk
{

IoCostGate::IoCostGate(sim::Simulator &sim, cgroup::DeviceId dev,
                       cgroup::CgroupTree &tree, PassFn pass,
                       IoCostParams params)
    : sim_(sim), dev_(dev), tree_(tree), pass_(std::move(pass)),
      params_(params)
{
    cgroup::IoCostQos qos = tree_.costQos(dev_);
    vrate_ = qos.vrate_max / 100.0;
    timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, params_.period, [this] { periodTick(); });
    removal_token_ = tree_.addRemovalListener(
        [this](cgroup::Cgroup &cg) { onCgroupRemoved(cg); });
}

IoCostGate::~IoCostGate()
{
    tree_.removeRemovalListener(removal_token_);
}

void
IoCostGate::start()
{
    timer_->start();
}

IoCostGate::CgState &
IoCostGate::stateFor(const cgroup::Cgroup *cg)
{
    CgState *existing = states_.find(cg);
    if (existing != nullptr)
        return *existing;
    CgState &st = states_.stateFor(cg);
    st.vtime = vnow_;
    return st;
}

void
IoCostGate::ensureChainStates(const cgroup::Cgroup *cg)
{
    for (const cgroup::Cgroup *node = cg;
         node != nullptr && !node->isRoot(); node = node->parent())
        stateFor(node);
}

void
IoCostGate::onCgroupRemoved(cgroup::Cgroup &cg)
{
    CgState *st = states_.find(&cg);
    if (st == nullptr)
        return;
    if (!st->queue.empty()) {
        fatal("io.cost: cgroup '" + cg.path() + "' removed with " +
              std::to_string(st->queue.size()) + " queued I/Os");
    }
    if (st->wake_event != sim::kInvalidEventId)
        sim_.cancel(st->wake_event);
    if (st->active) {
        --active_count_;
        shares_dirty_ = true;
    }
    states_.erase(&cg);
}

SimTime
IoCostGate::absCost(OpType op, bool sequential, uint32_t size) const
{
    // Kernel linear-model form (calc_lcoefs): the per-I/O coefficient is
    // the *residual* of the IOPS duty point above the per-page cost, so
    // a 4 KiB random read costs max(1/riops, size/bps) rather than the
    // sum — the model's saturation points are met exactly.
    cgroup::IoCostModel model = tree_.costModel(dev_);
    const double page = 4096.0;
    double bps;
    uint64_t iops;
    if (op == OpType::kRead) {
        bps = static_cast<double>(model.rbps);
        iops = sequential ? model.rseqiops : model.rrandiops;
    } else {
        bps = static_cast<double>(model.wbps);
        iops = sequential ? model.wseqiops : model.wrandiops;
    }
    double page_cost = page / bps;
    double io_resid =
        std::max(0.0, 1.0 / static_cast<double>(iops) - page_cost);
    double seconds =
        static_cast<double>(size) / bps + io_resid;
    return static_cast<SimTime>(seconds * 1e9);
}

void
IoCostGate::updateVnow()
{
    SimTime now = sim_.now();
    if (now > vnow_updated_) {
        vnow_ += static_cast<double>(now - vnow_updated_) * vrate_;
        vnow_updated_ = now;
    }
}

void
IoCostGate::activate(CgState &st)
{
    st.last_io = sim_.now();
    if (st.active)
        return;
    st.active = true;
    ++active_count_;
    // A group joining after idling must not spend banked history.
    st.vtime = std::max(st.vtime, vnow_ - params_.credit_cap);
    shares_dirty_ = true;
}

void
IoCostGate::ensureShares()
{
    if (shares_dirty_ || shares_tree_version_ != tree_.version())
        recomputeShares();
}

void
IoCostGate::recomputeShares()
{
    shares_dirty_ = false;
    shares_tree_version_ = tree_.version();

    // Mark every tree node with an active descendant, accumulate each
    // marked node's weight into its parent's sibling sum, then resolve
    // each active group's hierarchical share as a product of
    // weight/sibling-sum up its cached ancestor chain. All flat
    // dense-id arrays — O(active x depth) with no hashing, which is
    // what keeps a 1000-tenant activation storm affordable.
    size_t cap = tree_.idCapacity();
    marked_scratch_.assign(cap, 0);
    weight_sum_scratch_.assign(cap, 0);
    marked_ids_.clear();
    for (CgState &st : states_) {
        if (!st.active || st.cg == nullptr)
            continue;
        for (cgroup::CgroupId id : st.cg->chain()) {
            if (marked_scratch_[id] != 0)
                break; // ancestors above are already marked
            marked_scratch_[id] = 1;
            marked_ids_.push_back(id);
            ++bookkeeping_ops_;
        }
    }
    for (cgroup::CgroupId id : marked_ids_) {
        const cgroup::Cgroup &g = tree_.group(id);
        weight_sum_scratch_[g.parent()->id()] += g.ioWeight();
        ++bookkeeping_ops_;
    }
    for (CgState &st : states_) {
        if (st.cg == nullptr) {
            st.share = 1.0;
            continue;
        }
        if (!st.active)
            continue;
        double share = 1.0;
        for (cgroup::CgroupId id : st.cg->chain()) {
            const cgroup::Cgroup &g = tree_.group(id);
            uint64_t sum = weight_sum_scratch_[g.parent()->id()];
            if (sum == 0)
                sum = g.ioWeight();
            share *= static_cast<double>(g.ioWeight()) /
                     static_cast<double>(sum);
            ++bookkeeping_ops_;
        }
        st.raw_share = std::max(share, 1e-9);
        // Activation/weight changes grant the full raw share; the next
        // period's donation pass trims unused budget again.
        st.share = st.raw_share;
    }
}

void
IoCostGate::donateShares()
{
    // Donation (kernel hweight_inuse): an active group consuming well
    // below its share keeps only usage + headroom; freed budget goes to
    // budget-constrained groups in proportion to their raw weights.
    double period_cap =
        static_cast<double>(params_.period) * std::max(vrate_, 1e-6);
    double want_sum = 0.0;
    double receiver_raw_sum = 0.0;
    donate_receivers_.clear();

    for (CgState &st : states_) {
        if (!st.active)
            continue;
        ++bookkeeping_ops_;
        double usage = st.period_abs / period_cap;
        st.period_abs = 0.0;
        bool constrained = usage >= 0.85 * st.share;
        double want;
        if (constrained) {
            // Using its grant: expand back toward the raw share.
            want = std::min(st.raw_share,
                            std::max(st.share * 2.0, usage * 1.25 + 0.02));
            donate_receivers_.push_back(&st);
            receiver_raw_sum += st.raw_share;
        } else {
            // Donor: keep usage plus headroom.
            want = std::min(st.raw_share, usage * 1.25 + 0.02);
        }
        st.share = std::max(want, 1e-9);
        want_sum += st.share;
    }

    double surplus = 1.0 - want_sum;
    if (surplus <= 0.0)
        return;
    if (!donate_receivers_.empty()) {
        for (CgState *st : donate_receivers_)
            st->share += surplus * st->raw_share / receiver_raw_sum;
        return;
    }
    // Nobody is constrained: return the surplus weight-proportionally so
    // no group sits below its raw entitlement (the D1 "must not
    // throttle" configurations rely on this).
    double raw_sum = 0.0;
    for (CgState &st : states_) {
        if (st.active)
            raw_sum += st.raw_share;
    }
    if (raw_sum <= 0.0)
        return;
    for (CgState &st : states_) {
        if (st.active)
            st.share += surplus * st.raw_share / raw_sum;
    }
}

void
IoCostGate::chargeSubtree(const cgroup::Cgroup *cg, double abs)
{
    if (cg == nullptr)
        return;
    // O(depth) walk over the cached ancestor chain: two array loads per
    // level (id -> slot -> state), no pointer chasing through the tree.
    for (cgroup::CgroupId id : cg->chain()) {
        states_.findId(id)->subtree_abs += abs;
        ++bookkeeping_ops_;
    }
}

bool
IoCostGate::tryCharge(CgState &st, OpType op, bool sequential,
                      uint32_t size)
{
    ensureShares();
    updateVnow();
    if (st.vtime < vnow_ - params_.credit_cap)
        st.vtime = vnow_ - params_.credit_cap;
    double abs = static_cast<double>(absCost(op, sequential, size));
    double cost = abs / std::max(st.share, 1e-9);
    if (st.vtime + cost <= vnow_ + static_cast<double>(params_.margin)) {
        st.vtime += cost;
        st.period_abs += abs; // usage accounting for donation
        chargeSubtree(st.cg, abs);
        if (inv_ != nullptr) {
            inv_->checkMonotonicAt(
                st.inv_vtime_last, "io.cost vtime monotonicity",
                strCat("cgroup '",
                       st.cg != nullptr ? st.cg->name() : "<root>", "'"),
                st.vtime);
        }
        return true;
    }
    return false;
}

void
IoCostGate::chargeRetry(Request *req)
{
    if (req->cg == nullptr)
        return;
    ensureChainStates(req->cg);
    CgState &st = *states_.find(req->cg);
    activate(st);
    ensureShares();
    updateVnow();
    double abs = static_cast<double>(absCost(*req));
    st.vtime += abs / std::max(st.share, 1e-9);
    st.period_abs += abs;
    chargeSubtree(st.cg, abs);
    if (inv_ != nullptr) {
        inv_->checkMonotonicAt(st.inv_vtime_last,
                               "io.cost vtime monotonicity",
                               strCat("cgroup '", req->cg->name(), "'"),
                               st.vtime);
    }
}

void
IoCostGate::submit(Request *req)
{
    ensureChainStates(req->cg);
    CgState &st = stateFor(req->cg);
    activate(st);
    if (st.queue.empty() &&
        tryCharge(st, req->op, req->sequential, req->size)) {
        pass_(req);
        return;
    }
    st.queue.push_back(QEnt{req, req->op, req->sequential, req->size});
    ++throttled_;
    drain(st);
}

void
IoCostGate::drain(CgState &st)
{
    if (st.wake_event != sim::kInvalidEventId) {
        sim_.cancel(st.wake_event);
        st.wake_event = sim::kInvalidEventId;
    }
    while (!st.queue.empty()) {
        const QEnt head = st.queue.front();
        if (tryCharge(st, head.op, head.sequential, head.size)) {
            st.queue.pop_front();
            --throttled_;
            pass_(head.req);
            continue;
        }
        // Compute when the device clock will have advanced enough.
        double cost = static_cast<double>(
                          absCost(head.op, head.sequential, head.size)) /
                      std::max(st.share, 1e-9);
        double needed =
            st.vtime + cost - static_cast<double>(params_.margin) - vnow_;
        SimTime delay = static_cast<SimTime>(
            needed / std::max(vrate_, 1e-6));
        delay = std::max<SimTime>(delay, usToNs(1));
        const cgroup::Cgroup *cg = st.cg;
        st.wake_event = sim_.after(delay, [this, cg] {
            CgState &state = stateFor(cg);
            state.wake_event = sim::kInvalidEventId;
            drain(state);
        });
        return;
    }
}

void
IoCostGate::onDeviceComplete(Request *req)
{
    SimTime lat = sim_.now() - req->dispatch_time;
    if (req->op == OpType::kRead)
        window_read_lat_.record(lat);
    else
        window_write_lat_.record(lat);
}

void
IoCostGate::periodTick()
{
    // The period timer is kernel work: walking the active groups holds
    // the ioc lock and competes with submission paths for CPU. Charge it
    // to the host CPU first; the control decisions run when it retires.
    SimTime work = params_.timer_cpu_base +
                   params_.timer_cpu_per_group *
                       static_cast<SimTime>(active_count_);
    if (cpu_charge_) {
        cpu_charge_(work, [this] { periodWork(); });
    } else {
        periodWork();
    }
}

void
IoCostGate::checkHierarchicalCharges()
{
    // Sum each parent's children into a dense-id scratch array, then
    // require every interior node's own subtree charge to cover it. By
    // construction (chargeSubtree charges whole chains) equality holds;
    // a violation means a charge or refund skipped a level.
    size_t cap = tree_.idCapacity();
    child_abs_scratch_.assign(cap, 0.0);
    for (CgState &st : states_) {
        if (st.cg == nullptr || st.cg->isRoot())
            continue;
        const cgroup::Cgroup *parent = st.cg->parent();
        if (!parent->isRoot())
            child_abs_scratch_[parent->id()] += st.subtree_abs;
    }
    for (CgState &st : states_) {
        if (st.cg == nullptr || st.cg->children().empty())
            continue;
        inv_->checkHierarchy(
            "io.cost hierarchical charge conservation",
            strCat("cgroup '", st.cg->name(), "'"),
            child_abs_scratch_[st.cg->id()], st.subtree_abs);
    }
}

void
IoCostGate::periodWork()
{
    updateVnow();

    // Deactivate groups idle for more than two periods (weight donation).
    for (CgState &st : states_) {
        ++bookkeeping_ops_;
        if (st.active && st.queue.empty() &&
            sim_.now() - st.last_io > 2 * params_.period) {
            st.active = false;
            --active_count_;
            shares_dirty_ = true;
        }
    }
    ensureShares();
    if (params_.enable_donation)
        donateShares();

    // QoS: compare windowed device latencies against the targets and
    // scale vrate within [min, max].
    cgroup::IoCostQos qos = tree_.costQos(dev_);
    double vmin = qos.vrate_min / 100.0;
    double vmax = qos.vrate_max / 100.0;
    if (!qos.enable) {
        vrate_ = vmax;
    } else {
        bool read_checked = qos.rpct > 0.0 && window_read_lat_.count() > 0;
        bool write_checked =
            qos.wpct > 0.0 && window_write_lat_.count() > 0;
        bool violated =
            (read_checked &&
             window_read_lat_.percentile(qos.rpct) > qos.rlat) ||
            (write_checked &&
             window_write_lat_.percentile(qos.wpct) > qos.wlat);
        if (violated)
            vrate_ = std::max(vmin, vrate_ * params_.vrate_step_down);
        else
            vrate_ = std::min(vmax, vrate_ + params_.vrate_step_up * vmax);
    }
    window_read_lat_.clear();
    window_write_lat_.clear();

    if (inv_ != nullptr)
        checkHierarchicalCharges();

    // Wakeup estimates are stale after a vrate change: re-drain.
    for (CgState &st : states_) {
        if (!st.queue.empty())
            drain(st);
    }
}

double
IoCostGate::shareOf(const cgroup::Cgroup *cg)
{
    ensureShares();
    return stateFor(cg).share;
}

double
IoCostGate::subtreeAbsOf(const cgroup::Cgroup *cg) const
{
    const CgState *st = states_.find(cg);
    return st == nullptr ? 0.0 : st->subtree_abs;
}

} // namespace isol::blk
