/**
 * @file
 * io.cost (blk-iocost) model — the paper's most capable knob (§IV-B).
 *
 * Mechanism, following the paper's description and Heo et al. [33]:
 *  - io.cost.model: a linear device cost model. Every I/O has an absolute
 *    cost in device-seconds: size/bps + 1/iops, with distinct
 *    coefficients for reads vs writes and sequential vs random — this is
 *    why io.cost handles mixed request sizes and writes where io.max and
 *    io.latency fail (O9), and why it shows read-preference in mixed
 *    read/write fairness (O5);
 *  - io.weight: absolute weights 1-10000, resolved hierarchically among
 *    *active* groups into an hweight share. Idle groups donate their
 *    share (work conservation, Fig. 2g/h);
 *  - hweight donation (kernel `hweight_inuse`): an active group that
 *    does not consume its share (e.g. a QD1 LC-app holding weight
 *    10000) keeps only its usage plus headroom; the surplus is
 *    re-distributed to budget-constrained groups each period. Without
 *    this, a high-weight low-usage app would strand device capacity
 *    instead of merely being protected;
 *  - virtual time: the device clock advances at `vrate`; each group may
 *    consume abs_cost/hweight of it. A group running ahead of the device
 *    clock (plus a small margin) is throttled until the clock catches up;
 *  - io.cost.qos: per-period latency-percentile checks scale vrate
 *    between min and max — an *achievable* model plus min=50% caps
 *    aggregate bandwidth at half the model rate, reproducing the paper's
 *    observation O3 (1.26 vs 2.92 GiB/s);
 *  - the period timer runs as host CPU work: past CPU saturation the
 *    timer's walk over active groups delays queued submissions and
 *    inflates tail latency — the paper's O1 io.cost overhead (+48% P99 at
 *    16 LC-apps) without any effect before saturation.
 */
// isol: domain(blk)

#ifndef ISOL_BLK_QOS_COST_HH
#define ISOL_BLK_QOS_COST_HH

#include <memory>
#include <vector>

#include "blk/cg_state.hh"
#include "blk/request.hh"
#include "common/ring.hh"
#include "sim/simulator.hh"
#include "stats/histogram.hh"

namespace isol::sim
{
class InvariantChecker;
} // namespace isol::sim

namespace isol::blk
{

/** Mechanism tunables (kernel-internal constants, not cgroup knobs). */
struct IoCostParams
{
    SimTime period = msToNs(5); //!< qos / donation timer period
    SimTime margin = msToNs(10); //!< allowed vtime lead
    SimTime credit_cap = msToNs(100); //!< max idle credit
    SimTime timer_cpu_base = usToNs(4); //!< timer CPU cost, fixed part
    SimTime timer_cpu_per_group = usToNs(10); //!< per active group
    double vrate_step_down = 0.85; //!< multiplicative decrease
    double vrate_step_up = 0.05; //!< additive increase (fraction)
    /** Ablation switch: disable hweight donation (surplus budget stays
     *  stranded with high-weight low-usage groups). */
    bool enable_donation = true;
};

/**
 * Per-device io.cost controller.
 */
class IoCostGate
{
  public:
    using PassFn = sim::SmallFunction<void(Request *)>;
    /** Charges CPU time and calls the continuation when it retires. */
    using CpuChargeFn =
        sim::SmallFunction<void(SimTime, sim::SmallCallback)>;

    IoCostGate(sim::Simulator &sim, cgroup::DeviceId dev,
               cgroup::CgroupTree &tree, PassFn pass,
               IoCostParams params = {});
    ~IoCostGate();

    /** Optional: route the period-timer work through a CPU core. */
    void setCpuCharge(CpuChargeFn fn) { cpu_charge_ = std::move(fn); }

    /** Arm the period timer. */
    void start();

    /** Admit or queue a request against the group's vtime budget. */
    void submit(Request *req);

    /** Device-side completion hook (dispatch -> complete latency). */
    void onDeviceComplete(Request *req);

    /**
     * Charge the issuing group for one retried attempt of `req`: the
     * aborted attempt's device time is spent, so the group is debited a
     * full absCost even though no completion arrives — retried work is
     * visible to the knob (the group may run into vtime debt and be
     * throttled on its next submission).
     */
    void chargeRetry(Request *req);

    /** Current vrate in [qos.min, qos.max] / 100. */
    double vrate() const { return vrate_; }

    /** Absolute cost of an I/O in device-ns under the current model. */
    SimTime absCost(const Request &req) const
    {
        return absCost(req.op, req.sequential, req.size);
    }

    /**
     * Cost-model evaluation on the inline queue-entry fields. Always
     * computed against the *live* model: io.cost.model can be rewritten
     * at runtime, so costs are never cached at submit time.
     */
    SimTime absCost(OpType op, bool sequential, uint32_t size) const;

    /** Requests currently held back. */
    size_t throttled() const { return throttled_; }

    /** Hierarchical weight share of `cg` among active groups (testing). */
    double shareOf(const cgroup::Cgroup *cg);

    /** Groups with live gate state (shrinks on cgroup removal). */
    size_t trackedGroups() const { return states_.size(); }

    /** Total abs cost charged to `cg`'s subtree so far (testing). */
    double subtreeAbsOf(const cgroup::Cgroup *cg) const;

    /**
     * Bookkeeping work performed: state visits in share recomputes,
     * donation passes, period scans, and hierarchical charge walks.
     * Deterministic (event-driven), so benches may print it.
     */
    uint64_t bookkeepingOps() const { return bookkeeping_ops_; }

    /** Opt-in runtime invariant checking (nullptr = off). */
    void setInvariants(sim::InvariantChecker *inv) { inv_ = inv; }

    /** Hierarchical conservation: children never outspend the parent.
     *  Runs every period when checking is on; also callable at end of
     *  run for a final full sweep. */
    void checkHierarchicalCharges();

  private:
    /**
     * Queue entry with the cost-model inputs laid out inline: drain()
     * evaluates the model per head scan without touching the Request.
     */
    struct QEnt
    {
        Request *req;
        OpType op;
        bool sequential;
        uint32_t size;
    };

    struct CgState
    {
        const cgroup::Cgroup *cg = nullptr;
        double vtime = 0.0; //!< consumed device-vtime (ns)
        double raw_share = 1.0; //!< weight-derived hweight
        double share = 1.0; //!< effective share after donation
        double period_abs = 0.0; //!< abs cost charged this period
        double subtree_abs = 0.0; //!< abs cost charged to the subtree
        double inv_vtime_last = 0.0; //!< monotone-series slot (checker)
        bool active = false;
        SimTime last_io = 0;
        common::RingDeque<QEnt> queue;
        sim::EventId wake_event = sim::kInvalidEventId;
    };

    CgState &stateFor(const cgroup::Cgroup *cg);

    /** Materialize gate state for `cg` and every ancestor below the
     *  root, so charge walks can assume the whole chain is present. */
    void ensureChainStates(const cgroup::Cgroup *cg);

    /** Drop state when a cgroup is removed (tree removal listener). */
    void onCgroupRemoved(cgroup::Cgroup &cg);

    /** Advance the device virtual clock to the present. */
    void updateVnow();

    /** Mark a group active and recompute shares if needed. */
    void activate(CgState &st);

    /** Recompute shares iff the active set or the tree changed. */
    void ensureShares();

    /** Recompute hweight shares over the active set. */
    void recomputeShares();

    /** Charge `abs` to every node on `cg`'s ancestor chain. */
    void chargeSubtree(const cgroup::Cgroup *cg, double abs);

    /** Per-period hweight donation: cap donors at usage, give surplus
     *  to constrained groups. */
    void donateShares();

    /** Try to pass queued requests of one group; reschedule otherwise. */
    void drain(CgState &st);

    /** Admission test + charge for one (op, sequential, size) I/O. */
    bool tryCharge(CgState &st, OpType op, bool sequential, uint32_t size);

    /** Period processing: deactivation, qos vrate scaling, re-drain. */
    void periodTick();
    void periodWork();

    sim::Simulator &sim_;
    cgroup::DeviceId dev_;
    cgroup::CgroupTree &tree_;
    PassFn pass_;
    IoCostParams params_;
    CpuChargeFn cpu_charge_;

    /** Group states in a flat dense-id arena, iterated in registration
     *  order (swap-remove perturbs it deterministically). donateShares()
     *  folds floating-point sums and periodWork() re-drains queues while
     *  iterating, so the order must never depend on pointer hash values
     *  — and it does not: slots are assigned by event order alone. */
    CgStateArena<CgState> states_;
    std::unique_ptr<sim::PeriodicTimer> timer_;

    sim::InvariantChecker *inv_ = nullptr;
    double vrate_ = 1.0;
    double vnow_ = 0.0; //!< device virtual clock (ns)
    SimTime vnow_updated_ = 0;
    size_t active_count_ = 0;
    size_t throttled_ = 0;

    /** Share cache validity: recompute lazily when the active set flips
     *  (dirty flag) or any cgroup knob/topology changed (tree version),
     *  so an activation storm at 1000 tenants coalesces into one
     *  recompute instead of one per submit. */
    bool shares_dirty_ = true;
    uint64_t shares_tree_version_ = 0;
    uint64_t bookkeeping_ops_ = 0;
    size_t removal_token_ = 0;

    /** Scratch for recomputeShares(), indexed by dense CgroupId; kept
     *  as members so steady-state recomputes do not allocate. */
    std::vector<uint8_t> marked_scratch_;
    std::vector<uint64_t> weight_sum_scratch_;
    std::vector<cgroup::CgroupId> marked_ids_;
    std::vector<CgState *> donate_receivers_;
    std::vector<double> child_abs_scratch_;

    stats::Histogram window_read_lat_;
    stats::Histogram window_write_lat_;
};

} // namespace isol::blk

#endif // ISOL_BLK_QOS_COST_HH
