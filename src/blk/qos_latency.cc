// isol: domain(blk)
#include "blk/qos_latency.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strings.hh"
#include "sim/invariants.hh"

namespace isol::blk
{

namespace
{

std::string
groupLabel(const cgroup::Cgroup *cg)
{
    return cg != nullptr ? cg->name() : std::string("<root>");
}

} // namespace

IoLatencyGate::IoLatencyGate(sim::Simulator &sim, cgroup::DeviceId dev,
                             cgroup::CgroupTree &tree, PassFn pass,
                             IoLatencyParams params)
    : sim_(sim), dev_(dev), tree_(tree), pass_(std::move(pass)),
      params_(params)
{
    timer_ = std::make_unique<sim::PeriodicTimer>(
        sim_, params_.window, [this] { windowTick(); });
    removal_token_ = tree_.addRemovalListener(
        [this](cgroup::Cgroup &cg) { onCgroupRemoved(cg); });
}

IoLatencyGate::~IoLatencyGate()
{
    tree_.removeRemovalListener(removal_token_);
}

void
IoLatencyGate::start()
{
    timer_->start();
}

IoLatencyGate::CgState &
IoLatencyGate::stateFor(const cgroup::Cgroup *cg)
{
    CgState *existing = states_.find(cg);
    if (existing != nullptr)
        return *existing;
    CgState &st = states_.stateFor(cg);
    st.qd_limit = params_.max_nr_requests;
    return st;
}

void
IoLatencyGate::onCgroupRemoved(cgroup::Cgroup &cg)
{
    CgState *st = states_.find(&cg);
    if (st == nullptr)
        return;
    if (!st->queue.empty() || st->inflight != 0) {
        fatal("io.latency: cgroup '" + cg.path() + "' removed with " +
              std::to_string(st->queue.size()) + " queued and " +
              std::to_string(st->inflight) + " in-flight I/Os");
    }
    states_.erase(&cg);
}

uint32_t
IoLatencyGate::qdLimit(const cgroup::Cgroup *cg)
{
    return stateFor(cg).qd_limit;
}

uint32_t
IoLatencyGate::useDelay(const cgroup::Cgroup *cg)
{
    return stateFor(cg).use_delay;
}

void
IoLatencyGate::submit(Request *req)
{
    CgState &st = stateFor(req->cg);
    if (st.queue.empty() && st.inflight < st.qd_limit) {
        ++st.inflight;
        if (inv_ != nullptr) {
            inv_->require(st.inflight <= st.qd_limit,
                          "io.latency window accounting",
                          strCat("cgroup '", groupLabel(st.cg),
                                 "': admitted past qd_limit ",
                                 st.qd_limit));
        }
        pass_(req);
        return;
    }
    st.queue.push_back(req);
    ++throttled_;
}

void
IoLatencyGate::onComplete(Request *req)
{
    CgState &st = stateFor(req->cg);
    st.window_lat.record(sim_.now() - req->blk_enter_time);
    if (inv_ != nullptr) {
        inv_->require(st.inflight > 0, "io.latency window accounting",
                      strCat("cgroup '", groupLabel(st.cg),
                             "': completion would underflow in-flight"));
    }
    if (st.inflight == 0)
        panic("IoLatencyGate: inflight underflow");
    --st.inflight;
    drain(st);
}

void
IoLatencyGate::drain(CgState &st)
{
    while (!st.queue.empty() && st.inflight < st.qd_limit) {
        Request *head = st.queue.front();
        st.queue.pop_front();
        --throttled_;
        ++st.inflight;
        if (inv_ != nullptr) {
            inv_->require(st.inflight <= st.qd_limit,
                          "io.latency window accounting",
                          strCat("cgroup '", groupLabel(st.cg),
                                 "': drained past qd_limit ",
                                 st.qd_limit));
        }
        pass_(head);
    }
}

void
IoLatencyGate::windowTick()
{
    // Determine the strictest violated target; groups are only penalised
    // on behalf of groups with *stricter* (smaller) targets.
    SimTime strictest_violated = kSimTimeMax;
    bool any_violated = false;
    for (CgState &st : states_) {
        ++bookkeeping_ops_;
        if (st.cg == nullptr)
            continue;
        SimTime target = st.cg->ioLatencyTarget(dev_);
        if (target <= 0 || st.window_lat.count() == 0)
            continue;
        SimTime p = st.window_lat.percentile(params_.percentile);
        if (p > target) {
            any_violated = true;
            strictest_violated = std::min(strictest_violated, target);
        }
    }

    for (CgState &st : states_) {
        ++bookkeeping_ops_;
        SimTime target =
            st.cg == nullptr ? kSimTimeMax : st.cg->ioLatencyTarget(dev_);
        if (target <= 0)
            target = kSimTimeMax; // no target: lowest priority
        bool is_victim = any_violated && target > strictest_violated;

        if (is_victim) {
            if (st.qd_limit > 1) {
                // Halve once per window.
                st.qd_limit = std::max(1u, st.qd_limit / 2);
            } else {
                // Stuck at QD 1 and the target is still violated.
                ++st.use_delay;
            }
        } else if (st.qd_limit < params_.max_nr_requests) {
            // Unthrottle opportunity.
            if (st.use_delay > 0) {
                --st.use_delay;
            } else {
                st.qd_limit = std::min(
                    params_.max_nr_requests,
                    st.qd_limit + params_.max_nr_requests / 4);
            }
        }
        st.window_lat.clear();
        drain(st);
    }
}

} // namespace isol::blk
