/**
 * @file
 * io.latency (blk-iolatency) model, following the mechanism described in
 * the paper (§IV-B) and the kernel:
 *
 *  - every 500 ms window, each cgroup with a target compares its achieved
 *    P90 completion latency against the target;
 *  - if any target is violated, every cgroup with a *higher* target (or
 *    no target: lowest priority) has its effective queue depth halved —
 *    at most once per window, down to a minimum of 1;
 *  - if no target is violated, throttled groups recover by
 *    max_nr_requests/4 per window — but only once their `use_delay`
 *    counter has drained: it increments each window the victim group sits
 *    at QD 1 while the target is still violated, and decrements on each
 *    unthrottle opportunity;
 *  - the queue-depth limit gates requests before the elevator; excess
 *    queues FIFO per cgroup and drains on completions.
 *
 * Because throttling can only halve QD once per 500 ms, full throttle-down
 * from QD 1024 takes ~10 windows (~5 s) — the paper's O10 burst finding.
 */
// isol: domain(blk)

#ifndef ISOL_BLK_QOS_LATENCY_HH
#define ISOL_BLK_QOS_LATENCY_HH

#include <memory>
#include <vector>

#include "blk/cg_state.hh"
#include "blk/request.hh"
#include "common/ring.hh"
#include "sim/simulator.hh"
#include "stats/histogram.hh"

namespace isol::sim
{
class InvariantChecker;
} // namespace isol::sim

namespace isol::blk
{

/** Tunables for the io.latency mechanism. */
struct IoLatencyParams
{
    SimTime window = msToNs(500); //!< check interval
    uint32_t max_nr_requests = 1024; //!< device queue depth
    double percentile = 90.0; //!< static percentile checked (P90)
};

/**
 * Per-device io.latency controller.
 */
class IoLatencyGate
{
  public:
    using PassFn = sim::SmallFunction<void(Request *)>;

    IoLatencyGate(sim::Simulator &sim, cgroup::DeviceId dev,
                  cgroup::CgroupTree &tree, PassFn pass,
                  IoLatencyParams params = {});
    ~IoLatencyGate();

    /** Admit or queue a request against the cgroup's QD limit. */
    void submit(Request *req);

    /** Completion hook: records latency and frees a QD slot. */
    void onComplete(Request *req);

    /** Effective queue-depth limit of `cg` (max_nr_requests if unset). */
    uint32_t qdLimit(const cgroup::Cgroup *cg);

    /** use_delay counter of `cg` (white-box testing). */
    uint32_t useDelay(const cgroup::Cgroup *cg);

    /** Requests currently held back. */
    size_t throttled() const { return throttled_; }

    /** Groups with live gate state (shrinks on cgroup removal). */
    size_t trackedGroups() const { return states_.size(); }

    /** Bookkeeping work: state visits in window scans. */
    uint64_t bookkeepingOps() const { return bookkeeping_ops_; }

    /** Must be called once to arm the periodic window timer. */
    void start();

    /** Opt-in runtime invariant checking (nullptr = off). */
    void setInvariants(sim::InvariantChecker *inv) { inv_ = inv; }

  private:
    struct CgState
    {
        const cgroup::Cgroup *cg = nullptr;
        uint32_t inflight = 0;
        uint32_t qd_limit = 0; //!< set from params at creation
        uint32_t use_delay = 0;
        stats::Histogram window_lat;
        common::RingDeque<Request *> queue;
    };

    CgState &stateFor(const cgroup::Cgroup *cg);

    /** Drop state when a cgroup is removed (tree removal listener). */
    void onCgroupRemoved(cgroup::Cgroup &cg);

    /** Window processing: check targets, throttle/unthrottle. */
    void windowTick();

    void drain(CgState &st);

    sim::Simulator &sim_;
    cgroup::DeviceId dev_;
    cgroup::CgroupTree &tree_;
    PassFn pass_;
    IoLatencyParams params_;
    /** Group states in a flat dense-id arena, iterated in registration
     *  order (swap-remove perturbs it deterministically); windowTick()
     *  drains queues while iterating, so the order must never depend on
     *  pointer hash values — slots are assigned by event order alone. */
    CgStateArena<CgState> states_;
    std::unique_ptr<sim::PeriodicTimer> timer_;
    size_t throttled_ = 0;
    sim::InvariantChecker *inv_ = nullptr;
    size_t removal_token_ = 0;
    uint64_t bookkeeping_ops_ = 0;
};

} // namespace isol::blk

#endif // ISOL_BLK_QOS_LATENCY_HH
