#include "blk/qos_max.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strings.hh"
#include "sim/invariants.hh"

namespace isol::blk
{

IoMaxGate::CgState &
IoMaxGate::stateFor(const cgroup::Cgroup *cg)
{
    return state_by_cg_[cg];
}

namespace
{

/**
 * Time needed to earn `amount` units at `rate` units/s, in ns.
 */
SimTime
earnTime(uint64_t amount, uint64_t rate)
{
    return static_cast<SimTime>(static_cast<double>(amount) /
                                static_cast<double>(rate) * 1e9);
}

} // namespace

SimTime
IoMaxGate::admissionTime(CgState &st, const cgroup::Cgroup *cg, OpType op,
                         uint32_t size) const
{
    (void)size;
    if (cg == nullptr)
        return sim_.now();
    cgroup::IoMaxLimits limits = cg->ioMax(dev_);
    if (limits.unlimited())
        return sim_.now();

    SimTime now = sim_.now();
    SimTime when = now;
    auto consider = [&](const Bucket &bucket, uint64_t rate) {
        if (rate == 0)
            return;
        // Idle credit is capped: the bucket cannot be "owed" more than
        // one slice into the past.
        SimTime base = std::max(bucket.next_free, now - kSlice);
        when = std::max(when, base);
    };
    bool read = op == OpType::kRead;
    consider(read ? st.rbps : st.wbps, read ? limits.rbps : limits.wbps);
    consider(read ? st.riops : st.wiops,
             read ? limits.riops : limits.wiops);
    return when;
}

void
IoMaxGate::consume(CgState &st, const cgroup::Cgroup *cg, OpType op,
                   uint32_t size)
{
    if (cg == nullptr)
        return;
    cgroup::IoMaxLimits limits = cg->ioMax(dev_);
    if (limits.unlimited())
        return;
    SimTime now = sim_.now();
    auto advance = [&](Bucket &bucket, const char *dim, uint64_t amount,
                       uint64_t rate) {
        if (rate == 0)
            return;
        if (inv_ != nullptr) {
            inv_->require(bucket.next_free >= 0,
                          "io.max bucket non-negativity",
                          strCat("cgroup '", cg->name(), "' ", dim,
                                 " bucket horizon at ", bucket.next_free,
                                 " ns"));
        }
        SimTime base = std::max(bucket.next_free, now - kSlice);
        bucket.next_free = base + earnTime(amount, rate);
        if (inv_ != nullptr) {
            inv_->checkMonotonic(
                &bucket, "io.max bucket monotonicity",
                strCat("cgroup '", cg->name(), "' ", dim, " bucket"),
                static_cast<double>(bucket.next_free));
        }
    };
    bool read = op == OpType::kRead;
    if (read) {
        advance(st.rbps, "rbps", size, limits.rbps);
        advance(st.riops, "riops", 1, limits.riops);
    } else {
        advance(st.wbps, "wbps", size, limits.wbps);
        advance(st.wiops, "wiops", 1, limits.wiops);
    }
    // Deliberate fault injection for the invariant checker's negative
    // tests: after a fixed consume count, tear the bandwidth bucket the
    // offending cgroup is actively draining, so its very next request
    // of the same kind walks into the corrupted state.
    if (debug_corrupt_bucket_ && ++debug_consumes_ == 64)
        (read ? st.rbps : st.wbps).next_free = -msToNs(100);
}

void
IoMaxGate::submit(Request *req)
{
    CgState &st = stateFor(req->cg);
    if (st.queue.empty()) {
        SimTime when = admissionTime(st, req->cg, req->op, req->size);
        if (when <= sim_.now()) {
            consume(st, req->cg, req->op, req->size);
            pass_(req);
            return;
        }
    }
    st.queue.push_back(QEnt{req, req->op, req->size});
    ++throttled_;
    if (!st.draining) {
        st.draining = true;
        const cgroup::Cgroup *cg = req->cg;
        const QEnt &head = st.queue.front();
        SimTime when = admissionTime(st, cg, head.op, head.size);
        sim_.at(std::max(when, sim_.now()), [this, cg] { drain(cg); });
    }
}

void
IoMaxGate::drain(const cgroup::Cgroup *cg)
{
    CgState &st = state_by_cg_[cg];
    st.draining = false;
    while (!st.queue.empty()) {
        const QEnt head = st.queue.front();
        SimTime when = admissionTime(st, cg, head.op, head.size);
        if (when <= sim_.now()) {
            consume(st, cg, head.op, head.size);
            st.queue.pop_front();
            --throttled_;
            pass_(head.req);
            continue;
        }
        st.draining = true;
        sim_.at(when, [this, cg] { drain(cg); });
        return;
    }
}

} // namespace isol::blk
