// isol: domain(blk)
#include "blk/qos_max.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strings.hh"
#include "sim/invariants.hh"

namespace isol::blk
{

IoMaxGate::IoMaxGate(sim::Simulator &sim, cgroup::DeviceId dev,
                     cgroup::CgroupTree &tree, PassFn pass)
    : sim_(sim), dev_(dev), tree_(tree), pass_(std::move(pass))
{
    removal_token_ = tree_.addRemovalListener(
        [this](cgroup::Cgroup &cg) { onCgroupRemoved(cg); });
}

IoMaxGate::~IoMaxGate()
{
    tree_.removeRemovalListener(removal_token_);
}

void
IoMaxGate::ensureChainStates(const cgroup::Cgroup *cg)
{
    for (const cgroup::Cgroup *node = cg;
         node != nullptr && !node->isRoot(); node = node->parent())
        states_.stateFor(node);
}

void
IoMaxGate::onCgroupRemoved(cgroup::Cgroup &cg)
{
    CgState *st = states_.find(&cg);
    if (st == nullptr)
        return;
    if (!st->queue.empty()) {
        fatal("io.max: cgroup '" + cg.path() + "' removed with " +
              std::to_string(st->queue.size()) + " queued I/Os");
    }
    states_.erase(&cg);
}

const cgroup::IoMaxLimits &
IoMaxGate::limitsOf(CgState &st)
{
    uint64_t version = tree_.version();
    if (st.limits_version != version) {
        st.limits_version = version;
        st.limits = st.cg->ioMax(dev_);
        st.limited = !st.limits.unlimited();
    }
    return st.limits;
}

namespace
{

/**
 * Time needed to earn `amount` units at `rate` units/s, in ns.
 */
SimTime
earnTime(uint64_t amount, uint64_t rate)
{
    return static_cast<SimTime>(static_cast<double>(amount) /
                                static_cast<double>(rate) * 1e9);
}

} // namespace

SimTime
IoMaxGate::admissionTime(const cgroup::Cgroup *cg, OpType op,
                         uint32_t size)
{
    SimTime now = sim_.now();
    if (cg == nullptr)
        return now;
    (void)size;
    SimTime when = now;
    // O(depth) chain walk: the request must clear its own buckets and
    // those of every limited ancestor (an interior io.max is a shared
    // token bucket over the whole subtree).
    for (cgroup::CgroupId id : cg->chain()) {
        CgState &st = *states_.findId(id);
        ++bookkeeping_ops_;
        limitsOf(st);
        if (!st.limited)
            continue;
        auto consider = [&](const Bucket &bucket, uint64_t rate) {
            if (rate == 0)
                return;
            // Idle credit is capped: the bucket cannot be "owed" more
            // than one slice into the past.
            SimTime base = std::max(bucket.next_free, now - kSlice);
            when = std::max(when, base);
        };
        bool read = op == OpType::kRead;
        consider(read ? st.rbps : st.wbps,
                 read ? st.limits.rbps : st.limits.wbps);
        consider(read ? st.riops : st.wiops,
                 read ? st.limits.riops : st.limits.wiops);
    }
    return when;
}

void
IoMaxGate::advanceBuckets(CgState &st, OpType op, uint32_t size)
{
    SimTime now = sim_.now();
    const cgroup::Cgroup *cg = st.cg;
    auto advance = [&](Bucket &bucket, const char *dim, uint64_t amount,
                       uint64_t rate) {
        if (rate == 0)
            return;
        if (inv_ != nullptr) {
            inv_->require(bucket.next_free >= 0,
                          "io.max bucket non-negativity",
                          strCat("cgroup '", cg->name(), "' ", dim,
                                 " bucket horizon at ", bucket.next_free,
                                 " ns"));
        }
        SimTime base = std::max(bucket.next_free, now - kSlice);
        bucket.next_free = base + earnTime(amount, rate);
        if (inv_ != nullptr) {
            inv_->checkMonotonicAt(
                bucket.inv_last, "io.max bucket monotonicity",
                strCat("cgroup '", cg->name(), "' ", dim, " bucket"),
                static_cast<double>(bucket.next_free));
        }
    };
    bool read = op == OpType::kRead;
    if (read) {
        advance(st.rbps, "rbps", size, st.limits.rbps);
        advance(st.riops, "riops", 1, st.limits.riops);
    } else {
        advance(st.wbps, "wbps", size, st.limits.wbps);
        advance(st.wiops, "wiops", 1, st.limits.wiops);
    }
}

void
IoMaxGate::consume(const cgroup::Cgroup *cg, OpType op, uint32_t size)
{
    if (cg == nullptr)
        return;
    // Charge the whole chain, self first: subtree consumption counters
    // accumulate at every level, so the hierarchical conservation check
    // (children never outspend the parent) holds by construction.
    uint64_t child_bytes = 0;
    bool have_child = false;
    for (cgroup::CgroupId id : cg->chain()) {
        CgState &st = *states_.findId(id);
        ++bookkeeping_ops_;
        limitsOf(st);
        if (st.limited)
            advanceBuckets(st, op, size);
        st.consumed_bytes += size;
        st.consumed_ios += 1;
        if (inv_ != nullptr && have_child) {
            // This node is the parent of the previous chain entry: a
            // child running ahead of its parent means a skipped level.
            inv_->checkHierarchy(
                "io.max hierarchical consumption",
                strCat("cgroup '", st.cg->name(), "'"),
                static_cast<double>(child_bytes),
                static_cast<double>(st.consumed_bytes));
        }
        child_bytes = st.consumed_bytes;
        have_child = true;
    }
    // Deliberate fault injection for the invariant checker's negative
    // tests: after a fixed consume count, tear the bandwidth bucket the
    // offending cgroup is actively draining, so its very next request
    // of the same kind walks into the corrupted state.
    if (debug_corrupt_bucket_ && ++debug_consumes_ == 64) {
        CgState &self = *states_.find(cg);
        (op == OpType::kRead ? self.rbps : self.wbps).next_free =
            -msToNs(100);
    }
}

void
IoMaxGate::submit(Request *req)
{
    if (req->cg == nullptr) {
        pass_(req);
        return;
    }
    ensureChainStates(req->cg);
    CgState &st = *states_.find(req->cg);
    if (st.queue.empty()) {
        SimTime when = admissionTime(req->cg, req->op, req->size);
        if (when <= sim_.now()) {
            consume(req->cg, req->op, req->size);
            pass_(req);
            return;
        }
    }
    st.queue.push_back(QEnt{req, req->op, req->size});
    ++throttled_;
    if (!st.draining) {
        st.draining = true;
        const cgroup::Cgroup *cg = req->cg;
        const QEnt &head = st.queue.front();
        SimTime when = admissionTime(cg, head.op, head.size);
        sim_.at(std::max(when, sim_.now()), [this, cg] { drain(cg); });
    }
}

void
IoMaxGate::drain(const cgroup::Cgroup *cg)
{
    CgState *stp = states_.find(cg);
    if (stp == nullptr)
        return; // group removed while a drain was in flight
    stp->draining = false;
    while (!stp->queue.empty()) {
        const QEnt head = stp->queue.front();
        SimTime when = admissionTime(cg, head.op, head.size);
        if (when <= sim_.now()) {
            consume(cg, head.op, head.size);
            stp->queue.pop_front();
            --throttled_;
            pass_(head.req);
            continue;
        }
        // A sibling may have consumed shared ancestor credit since the
        // last estimate; re-arm for the fresh admission time.
        stp->draining = true;
        sim_.at(when, [this, cg] { drain(cg); });
        return;
    }
}

uint64_t
IoMaxGate::consumedBytesOf(const cgroup::Cgroup *cg) const
{
    const CgState *st = states_.find(cg);
    return st == nullptr ? 0 : st->consumed_bytes;
}

void
IoMaxGate::verifyHierarchicalConsumption()
{
    if (inv_ == nullptr)
        return;
    // Sum each parent's children into a dense-id scratch array, then
    // require every interior node's own subtree consumption to cover
    // it (charges walk whole chains, so equality holds unless a level
    // was skipped).
    child_bytes_scratch_.assign(tree_.idCapacity(), 0);
    for (const CgState &st : states_) {
        const cgroup::Cgroup *parent = st.cg->parent();
        if (!parent->isRoot())
            child_bytes_scratch_[parent->id()] += st.consumed_bytes;
    }
    for (const CgState &st : states_) {
        if (st.cg->children().empty())
            continue;
        inv_->checkHierarchy(
            "io.max hierarchical consumption",
            strCat("cgroup '", st.cg->name(), "'"),
            static_cast<double>(child_bytes_scratch_[st.cg->id()]),
            static_cast<double>(st.consumed_bytes));
    }
}

} // namespace isol::blk
