/**
 * @file
 * io.max throttling (Linux blk-throttle) model.
 *
 * Each cgroup gets four token buckets per device (rbps/wbps/riops/wiops).
 * A request passes when every applicable bucket has credit; otherwise it
 * queues FIFO inside its cgroup and is released when its dimensions are
 * satisfied. As in the kernel, accumulated idle credit is capped at one
 * throttle slice so a limit cannot be burst around after an idle period.
 *
 * io.max is static: it never unthrottles in the absence of other load,
 * which is exactly the non-work-conserving behaviour the paper measures
 * (O8, Fig. 2e).
 */

#ifndef ISOL_BLK_QOS_MAX_HH
#define ISOL_BLK_QOS_MAX_HH

#include <unordered_map>

#include "blk/request.hh"
#include "common/ring.hh"
#include "sim/simulator.hh"

namespace isol::sim
{
class InvariantChecker;
} // namespace isol::sim

namespace isol::blk
{

/**
 * Per-device io.max gate.
 */
class IoMaxGate
{
  public:
    /** Passes a request deeper into the pipeline. */
    using PassFn = sim::SmallFunction<void(Request *)>;

    /**
     * @param sim simulator
     * @param dev device id used to look up io.max limits in the cgroup
     * @param pass downstream continuation
     */
    IoMaxGate(sim::Simulator &sim, cgroup::DeviceId dev, PassFn pass)
        : sim_(sim), dev_(dev), pass_(std::move(pass))
    {
    }

    /** Admit or queue a request. */
    void submit(Request *req);

    /** Requests currently held back. */
    size_t throttled() const { return throttled_; }

    /** Opt-in runtime invariant checking (nullptr = off). */
    void setInvariants(sim::InvariantChecker *inv) { inv_ = inv; }

    /**
     * Mutation hook for negative tests: after a fixed number of credit
     * consumptions, corrupt one token bucket by moving its horizon to a
     * negative time — exactly the accounting bug the invariant checker's
     * non-negativity check must catch.
     */
    void setDebugCorruptBucket(bool on) { debug_corrupt_bucket_ = on; }

  private:
    /**
     * Virtual-time token bucket: `next_free` is the time at which enough
     * credit exists for the next unit; consuming advances it.
     */
    struct Bucket
    {
        SimTime next_free = 0;
    };

    /**
     * Queue entry with the admission-relevant fields laid out inline so
     * drain scans never dereference the Request until it passes.
     */
    struct QEnt
    {
        Request *req;
        OpType op;
        uint32_t size;
    };

    struct CgState
    {
        Bucket rbps;
        Bucket wbps;
        Bucket riops;
        Bucket wiops;
        common::RingDeque<QEnt> queue;
        bool draining = false;
    };

    CgState &stateFor(const cgroup::Cgroup *cg);

    /**
     * Earliest time an (op, size) request from `cg` may pass given the
     * cgroup's current buckets (== now when it may pass immediately).
     * Does not consume credit.
     */
    SimTime admissionTime(CgState &st, const cgroup::Cgroup *cg, OpType op,
                          uint32_t size) const;

    /** Consume bucket credit for an admitted request. */
    void consume(CgState &st, const cgroup::Cgroup *cg, OpType op,
                 uint32_t size);

    /** Release queued requests whose time has come. */
    void drain(const cgroup::Cgroup *cg);

    /** Credit horizon (kernel throtl_slice for SSDs is ~20 ms). */
    static constexpr SimTime kSlice = msToNs(20);

    sim::Simulator &sim_;
    cgroup::DeviceId dev_;
    PassFn pass_;
    // isol-lint: allow(D1): lookup-only (submit/drain address a single
    // cgroup's state); never iterated, so address order cannot leak
    std::unordered_map<const cgroup::Cgroup *, CgState> state_by_cg_;
    size_t throttled_ = 0;
    sim::InvariantChecker *inv_ = nullptr;
    bool debug_corrupt_bucket_ = false;
    uint64_t debug_consumes_ = 0;
};

} // namespace isol::blk

#endif // ISOL_BLK_QOS_MAX_HH
