/**
 * @file
 * io.max throttling (Linux blk-throttle) model.
 *
 * Each cgroup gets four token buckets per device (rbps/wbps/riops/wiops).
 * A request passes when every applicable bucket has credit; otherwise it
 * queues FIFO inside its cgroup and is released when its dimensions are
 * satisfied. As in the kernel, accumulated idle credit is capped at one
 * throttle slice so a limit cannot be burst around after an idle period.
 *
 * Enforcement is hierarchical (kernel blk-throttle walks the
 * throtl_grp ancestors): a request must clear the buckets of its own
 * cgroup *and* of every ancestor that sets a limit, and admission
 * charges the whole chain. An io.max written at an interior node is
 * therefore a shared token bucket capping the subtree's aggregate —
 * siblings compete for the parent's credit in event (FIFO) order. The
 * walk follows the cgroup's cached ancestor-chain of dense ids into
 * flat arena state, so it is O(depth) with no hashing.
 *
 * io.max is static: it never unthrottles in the absence of other load,
 * which is exactly the non-work-conserving behaviour the paper measures
 * (O8, Fig. 2e).
 */
// isol: domain(blk)

#ifndef ISOL_BLK_QOS_MAX_HH
#define ISOL_BLK_QOS_MAX_HH

#include "blk/cg_state.hh"
#include "blk/request.hh"
#include "common/ring.hh"
#include "sim/simulator.hh"

namespace isol::sim
{
class InvariantChecker;
} // namespace isol::sim

namespace isol::blk
{

/**
 * Per-device io.max gate.
 */
class IoMaxGate
{
  public:
    /** Passes a request deeper into the pipeline. */
    using PassFn = sim::SmallFunction<void(Request *)>;

    /**
     * @param sim simulator
     * @param dev device id used to look up io.max limits in the cgroup
     * @param tree cgroup hierarchy (ancestor walks, removal listener)
     * @param pass downstream continuation
     */
    IoMaxGate(sim::Simulator &sim, cgroup::DeviceId dev,
              cgroup::CgroupTree &tree, PassFn pass);
    ~IoMaxGate();

    /** Admit or queue a request. */
    void submit(Request *req);

    /** Requests currently held back. */
    size_t throttled() const { return throttled_; }

    /** Groups with live gate state (shrinks on cgroup removal). */
    size_t trackedGroups() const { return states_.size(); }

    /** Bytes consumed against `cg`'s buckets, subtree-wide (testing). */
    uint64_t consumedBytesOf(const cgroup::Cgroup *cg) const;

    /** Bookkeeping work: chain-walk steps in admission/consume. */
    uint64_t bookkeepingOps() const { return bookkeeping_ops_; }

    /** Opt-in runtime invariant checking (nullptr = off). */
    void setInvariants(sim::InvariantChecker *inv) { inv_ = inv; }

    /**
     * End-of-run hierarchical conservation: for every interior node,
     * the sum of its children's subtree consumption must not exceed its
     * own (charges always walk whole chains). No-op when checking is
     * off.
     */
    void verifyHierarchicalConsumption();

    /**
     * Mutation hook for negative tests: after a fixed number of credit
     * consumptions, corrupt one token bucket by moving its horizon to a
     * negative time — exactly the accounting bug the invariant checker's
     * non-negativity check must catch.
     */
    void setDebugCorruptBucket(bool on) { debug_corrupt_bucket_ = on; }

  private:
    /**
     * Virtual-time token bucket: `next_free` is the time at which enough
     * credit exists for the next unit; consuming advances it.
     */
    struct Bucket
    {
        SimTime next_free = 0;
        double inv_last = 0.0; //!< monotone-series slot (checker)
    };

    /**
     * Queue entry with the admission-relevant fields laid out inline so
     * drain scans never dereference the Request until it passes.
     */
    struct QEnt
    {
        Request *req;
        OpType op;
        uint32_t size;
    };

    struct CgState
    {
        const cgroup::Cgroup *cg = nullptr;
        Bucket rbps;
        Bucket wbps;
        Bucket riops;
        Bucket wiops;
        /** io.max limits cached against the tree version: per-request
         *  chain walks do one version compare instead of a map find. */
        cgroup::IoMaxLimits limits;
        uint64_t limits_version = 0;
        bool limited = false;
        /** Subtree-wide consumption (self + descendants), for the
         *  hierarchical conservation checks. */
        uint64_t consumed_bytes = 0;
        uint64_t consumed_ios = 0;
        common::RingDeque<QEnt> queue;
        bool draining = false;
    };

    /** Materialize state for `cg` and every ancestor below the root. */
    void ensureChainStates(const cgroup::Cgroup *cg);

    /** Drop state when a cgroup is removed (tree removal listener). */
    void onCgroupRemoved(cgroup::Cgroup &cg);

    /** Refresh the cached limits when the tree changed. */
    const cgroup::IoMaxLimits &limitsOf(CgState &st);

    /**
     * Earliest time an (op, size) request from `cg` may pass given the
     * buckets of the whole ancestor chain (== now when it may pass
     * immediately). Does not consume credit.
     */
    SimTime admissionTime(const cgroup::Cgroup *cg, OpType op,
                          uint32_t size);

    /** Consume credit along the whole chain for an admitted request. */
    void consume(const cgroup::Cgroup *cg, OpType op, uint32_t size);

    /** Advance one state's applicable buckets. */
    void advanceBuckets(CgState &st, OpType op, uint32_t size);

    /** Release queued requests whose time has come. */
    void drain(const cgroup::Cgroup *cg);

    /** Credit horizon (kernel throtl_slice for SSDs is ~20 ms). */
    static constexpr SimTime kSlice = msToNs(20);

    sim::Simulator &sim_;
    cgroup::DeviceId dev_;
    cgroup::CgroupTree &tree_;
    PassFn pass_;
    CgStateArena<CgState> states_;
    size_t throttled_ = 0;
    sim::InvariantChecker *inv_ = nullptr;
    size_t removal_token_ = 0;
    uint64_t bookkeeping_ops_ = 0;
    std::vector<uint64_t> child_bytes_scratch_;
    bool debug_corrupt_bucket_ = false;
    uint64_t debug_consumes_ = 0;
};

} // namespace isol::blk

#endif // ISOL_BLK_QOS_MAX_HH
