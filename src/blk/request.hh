/**
 * @file
 * Block-layer request type and related enums.
 */
// isol: domain(blk)

#ifndef ISOL_BLK_REQUEST_HH
#define ISOL_BLK_REQUEST_HH

#include <cstdint>

#include "cgroup/cgroup.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"
#include "sim/small_function.hh"

namespace isol::blk
{

/** Which elevator (I/O scheduler) a block device uses. */
enum class ElevatorType : uint8_t
{
    kNone, //!< multi-queue direct dispatch (Linux "none")
    kMqDeadline, //!< mq-deadline
    kBfq, //!< BFQ
    kKyber, //!< Kyber (extension; no cgroup knob, see blk/kyber.hh)
};

/** Human-readable elevator name. */
inline const char *
elevatorName(ElevatorType type)
{
    switch (type) {
      case ElevatorType::kNone: return "none";
      case ElevatorType::kMqDeadline: return "mq-deadline";
      case ElevatorType::kBfq: return "bfq";
      case ElevatorType::kKyber: return "kyber";
    }
    return "?";
}

/**
 * One block I/O request flowing through the cgroup-controlled pipeline:
 * io.max throttle -> io.cost -> io.latency -> tags -> elevator -> device.
 */
struct Request
{
    OpType op = OpType::kRead;
    uint64_t offset = 0;
    uint32_t size = 0;

    /** Issuing cgroup (must not be null when any knob is active). */
    cgroup::Cgroup *cg = nullptr;

    /** True when the issuing stream is sequential (io.cost model choice). */
    bool sequential = false;

    /** When the request entered the block layer. */
    SimTime blk_enter_time = 0;

    /** When the request was dispatched to the device. */
    SimTime dispatch_time = 0;

    /** Completion callback into the submitter. */
    sim::SmallFunction<void(Request *)> on_complete;

    /** Resolved I/O priority class (from the cgroup, at submit). */
    cgroup::PrioClass prio = cgroup::PrioClass::kNoChange;

    // --- NVMe command-timeout state (managed by the BlockDevice) ---

    /** Requeues so far (0 on the first attempt). */
    uint32_t retries = 0;

    /** Id of the current device attempt (stale completions are dropped). */
    uint64_t attempt = 0;

    /** Armed command-timeout event for the in-flight attempt. */
    sim::EventId timeout_event = sim::kInvalidEventId;

    /** The request failed after exhausting its retries. */
    bool failed = false;
};

} // namespace isol::blk

#endif // ISOL_BLK_REQUEST_HH
