#include "cgroup/cgroup.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace isol::cgroup
{

std::string
Cgroup::path() const
{
    if (isRoot())
        return "/";
    std::string p = parent_->path();
    if (p.back() != '/')
        p += '/';
    return p + name_;
}

IoMaxLimits
Cgroup::ioMax(DeviceId dev) const
{
    auto it = io_max_.find(dev);
    return it == io_max_.end() ? IoMaxLimits{} : it->second;
}

SimTime
Cgroup::ioLatencyTarget(DeviceId dev) const
{
    auto it = io_latency_.find(dev);
    return it == io_latency_.end() ? 0 : it->second.target;
}

CgroupTree::CgroupTree()
{
    groups_.push_back(std::unique_ptr<Cgroup>(
        new Cgroup(this, nullptr, "", 0)));
    root_ = groups_.back().get();
}

Cgroup &
CgroupTree::group(CgroupId id)
{
    Cgroup *g = groups_.at(id).get();
    if (g == nullptr)
        fatal("cgroup: id " + std::to_string(id) + " refers to a removed "
              "group");
    return *g;
}

const Cgroup &
CgroupTree::group(CgroupId id) const
{
    const Cgroup *g = groups_.at(id).get();
    if (g == nullptr)
        fatal("cgroup: id " + std::to_string(id) + " refers to a removed "
              "group");
    return *g;
}

Cgroup &
CgroupTree::createChild(Cgroup &parent, const std::string &name)
{
    if (name.empty() || name.find('/') != std::string::npos)
        fatal("cgroup: invalid group name '" + name + "'");
    for (Cgroup *sibling : parent.children_) {
        if (sibling->name() == name)
            fatal("cgroup: group '" + name + "' already exists");
    }
    // v2: a group with processes cannot gain child groups that would be
    // subject to resource control. (The kernel allows child creation but
    // refuses controller enablement; we enforce at enablement time.)
    CgroupId id;
    if (!free_ids_.empty()) {
        id = free_ids_.back();
        free_ids_.pop_back();
        groups_[id].reset(new Cgroup(this, &parent, name, id));
    } else {
        id = static_cast<CgroupId>(groups_.size());
        groups_.push_back(std::unique_ptr<Cgroup>(
            new Cgroup(this, &parent, name, id)));
    }
    Cgroup *child = groups_[id].get();
    parent.children_.push_back(child);
    ++live_groups_;
    bumpVersion();
    return *child;
}

void
CgroupTree::removeGroup(Cgroup &group)
{
    if (group.isRoot())
        fatal("cgroup: cannot remove the root group");
    if (!group.children_.empty()) {
        fatal("cgroup: cannot remove '" + group.path() +
              "': group has child groups");
    }
    if (group.processes_ > 0) {
        fatal("cgroup: cannot remove '" + group.path() +
              "': group holds processes");
    }
    // Gates drop their per-cgroup state while the group is still linked.
    for (const Listener &l : removal_listeners_)
        l.fn(group);
    Cgroup *parent = group.parent_;
    auto &siblings = parent->children_;
    siblings.erase(std::find(siblings.begin(), siblings.end(), &group));
    CgroupId id = group.id_;
    groups_[id].reset();
    free_ids_.push_back(id);
    --live_groups_;
    bumpVersion();
}

size_t
CgroupTree::addRemovalListener(RemovalListener fn)
{
    size_t token = next_listener_token_++;
    removal_listeners_.push_back({token, std::move(fn)});
    return token;
}

void
CgroupTree::removeRemovalListener(size_t token)
{
    for (auto it = removal_listeners_.begin();
         it != removal_listeners_.end(); ++it) {
        if (it->token == token) {
            removal_listeners_.erase(it);
            return;
        }
    }
}

Cgroup *
CgroupTree::resolve(const std::string &path)
{
    Cgroup *node = root_;
    size_t pos = 0;
    while (pos < path.size()) {
        size_t slash = path.find('/', pos);
        size_t end = slash == std::string::npos ? path.size() : slash;
        if (end > pos) {
            std::string component = path.substr(pos, end - pos);
            Cgroup *next = nullptr;
            for (Cgroup *child : node->children_) {
                if (child->name() == component) {
                    next = child;
                    break;
                }
            }
            if (next == nullptr)
                return nullptr;
            node = next;
        }
        pos = end + 1;
    }
    return node;
}

void
CgroupTree::enableIoController(Cgroup &group)
{
    if (group.processes_ > 0) {
        fatal("cgroup: cannot enable controllers on '" + group.path() +
              "': group holds processes (no internal processes rule)");
    }
    group.io_enabled_ = true;
    bumpVersion();
}

void
CgroupTree::attachProcess(Cgroup &group)
{
    if (group.io_enabled_) {
        fatal("cgroup: cannot attach process to management group '" +
              group.path() + "'");
    }
    ++group.processes_;
    for (Cgroup *node = &group; node != nullptr; node = node->parent_)
        ++node->subtree_processes_;
    bumpVersion();
}

void
CgroupTree::detachProcess(Cgroup &group)
{
    if (group.processes_ == 0)
        fatal("cgroup: no process to detach from '" + group.path() + "'");
    --group.processes_;
    for (Cgroup *node = &group; node != nullptr; node = node->parent_)
        --node->subtree_processes_;
    bumpVersion();
}

void
CgroupTree::validateKnobWrite(Cgroup &group, const std::string &file) const
{
    if (file == "io.cost.model" || file == "io.cost.qos") {
        if (!group.isRoot())
            fatal("cgroup: " + file + " can only be set on the root group");
        return;
    }
    if (file == "io.prio.class") {
        // Not inheritable: only meaningful on process groups.
        if (group.io_enabled_) {
            fatal("cgroup: io.prio.class has no effect on management "
                  "group '" + group.path() + "'");
        }
        return;
    }
    // Remaining knobs need the parent to delegate the io controller.
    if (group.isRoot())
        fatal("cgroup: " + file + " cannot be set on the root group");
    if (!group.parent()->ioControllerEnabled()) {
        fatal("cgroup: parent of '" + group.path() +
              "' does not enable the io controller (+io)");
    }
}

namespace
{

/** Split "<dev> rest..." and parse the leading device id. */
bool
splitDevicePrefix(const std::string &value, DeviceId &dev, std::string &rest)
{
    std::string trimmed = trimString(value);
    size_t space = trimmed.find(' ');
    std::string dev_str =
        space == std::string::npos ? trimmed : trimmed.substr(0, space);
    rest = space == std::string::npos ? "" : trimmed.substr(space + 1);
    // Accept both "259:0" (maj:min) and a bare index.
    size_t colon = dev_str.find(':');
    if (colon != std::string::npos)
        dev_str = dev_str.substr(colon + 1);
    auto parsed = parseUint(dev_str);
    if (!parsed)
        return false;
    dev = static_cast<DeviceId>(*parsed);
    return true;
}

} // namespace

void
CgroupTree::writeFile(Cgroup &group, const std::string &file,
                      const std::string &value)
{
    if (file == "cgroup.subtree_control") {
        for (const std::string &token : splitWhitespace(value)) {
            if (token == "+io") {
                enableIoController(group);
            } else if (token == "-io") {
                group.io_enabled_ = false;
                bumpVersion();
            } else {
                fatal("cgroup: unsupported controller token '" + token + "'");
            }
        }
        return;
    }

    validateKnobWrite(group, file);
    // Every successful knob write below changes enforcement inputs;
    // gates cache against version(), so bump up front.
    bumpVersion();

    if (file == "io.weight") {
        auto w = parseWeight(value, 1, 10000);
        if (!w)
            fatal("cgroup: invalid io.weight '" + value + "'");
        group.io_weight_ = *w;
        return;
    }
    if (file == "io.bfq.weight") {
        auto w = parseWeight(value, 1, 1000);
        if (!w)
            fatal("cgroup: invalid io.bfq.weight '" + value + "'");
        group.bfq_weight_ = *w;
        return;
    }
    if (file == "io.prio.class") {
        auto cls = parsePrioClass(value);
        if (!cls)
            fatal("cgroup: invalid io.prio.class '" + value + "'");
        group.prio_class_ = *cls;
        return;
    }

    DeviceId dev = 0;
    std::string rest;
    if (!splitDevicePrefix(value, dev, rest))
        fatal("cgroup: " + file + " needs a leading device id: '" + value +
              "'");

    if (file == "io.max") {
        auto limits = parseIoMax(rest, group.ioMax(dev));
        if (!limits)
            fatal("cgroup: invalid io.max '" + value + "'");
        group.io_max_[dev] = *limits;
        return;
    }
    if (file == "io.latency") {
        auto cfg = parseIoLatency(rest);
        if (!cfg)
            fatal("cgroup: invalid io.latency '" + value + "'");
        group.io_latency_[dev] = *cfg;
        return;
    }
    if (file == "io.cost.model") {
        auto model = parseIoCostModel(rest, costModel(dev));
        if (!model)
            fatal("cgroup: invalid io.cost.model '" + value + "'");
        cost_models_[dev] = *model;
        return;
    }
    if (file == "io.cost.qos") {
        auto qos = parseIoCostQos(rest, costQos(dev));
        if (!qos)
            fatal("cgroup: invalid io.cost.qos '" + value + "'");
        cost_qos_[dev] = *qos;
        return;
    }
    fatal("cgroup: unknown file '" + file + "'");
}

std::string
CgroupTree::readFile(const Cgroup &group, const std::string &file) const
{
    std::ostringstream oss;
    if (file == "io.weight") {
        oss << "default " << group.ioWeight();
        return oss.str();
    }
    if (file == "io.bfq.weight") {
        oss << group.bfqWeight();
        return oss.str();
    }
    if (file == "io.prio.class")
        return prioClassName(group.prioClass());
    if (file == "cgroup.subtree_control")
        return group.ioControllerEnabled() ? "io" : "";
    if (file == "io.max") {
        bool first = true;
        for (const auto &[dev, lim] : group.io_max_) {
            if (!first)
                oss << '\n';
            first = false;
            auto field = [&](const char *key, uint64_t v) {
                oss << ' ' << key << '=';
                if (v == 0)
                    oss << "max";
                else
                    oss << v;
            };
            oss << "259:" << dev;
            field("rbps", lim.rbps);
            field("wbps", lim.wbps);
            field("riops", lim.riops);
            field("wiops", lim.wiops);
        }
        return oss.str();
    }
    if (file == "io.latency") {
        bool first = true;
        for (const auto &[dev, cfg] : group.io_latency_) {
            if (!first)
                oss << '\n';
            first = false;
            oss << "259:" << dev << " target="
                << cfg.target / 1000 << "us";
        }
        return oss.str();
    }
    if (file == "io.cost.model") {
        bool first = true;
        for (const auto &[dev, m] : cost_models_) {
            if (!first)
                oss << '\n';
            first = false;
            oss << "259:" << dev << " ctrl=" << (m.user ? "user" : "auto")
                << " model=linear rbps=" << m.rbps
                << " rseqiops=" << m.rseqiops
                << " rrandiops=" << m.rrandiops << " wbps=" << m.wbps
                << " wseqiops=" << m.wseqiops
                << " wrandiops=" << m.wrandiops;
        }
        return oss.str();
    }
    if (file == "io.cost.qos") {
        bool first = true;
        for (const auto &[dev, q] : cost_qos_) {
            if (!first)
                oss << '\n';
            first = false;
            oss << "259:" << dev << " enable=" << (q.enable ? 1 : 0)
                << " ctrl=user rpct=" << formatDouble(q.rpct, 2)
                << " rlat=" << q.rlat / 1000
                << " wpct=" << formatDouble(q.wpct, 2)
                << " wlat=" << q.wlat / 1000
                << " min=" << formatDouble(q.vrate_min, 2)
                << " max=" << formatDouble(q.vrate_max, 2);
        }
        return oss.str();
    }
    fatal("cgroup: unknown file '" + file + "'");
}

IoCostModel
CgroupTree::costModel(DeviceId dev) const
{
    auto it = cost_models_.find(dev);
    return it == cost_models_.end() ? IoCostModel{} : it->second;
}

IoCostQos
CgroupTree::costQos(DeviceId dev) const
{
    auto it = cost_qos_.find(dev);
    return it == cost_qos_.end() ? IoCostQos{} : it->second;
}

void
CgroupTree::setCostModel(DeviceId dev, const IoCostModel &model)
{
    cost_models_[dev] = model;
    bumpVersion();
}

void
CgroupTree::setCostQos(DeviceId dev, const IoCostQos &qos)
{
    if (qos.vrate_min > qos.vrate_max)
        fatal("cgroup: io.cost.qos min > max");
    cost_qos_[dev] = qos;
    bumpVersion();
}

double
CgroupTree::hierarchicalShare(const Cgroup &group, bool bfq) const
{
    double share = 1.0;
    const Cgroup *node = &group;
    while (!node->isRoot()) {
        const Cgroup *parent = node->parent();
        uint64_t sibling_sum = 0;
        for (const Cgroup *sibling : parent->children()) {
            if (!subtreeActive(*sibling))
                continue;
            sibling_sum += bfq ? sibling->bfqWeight() : sibling->ioWeight();
        }
        uint64_t own = bfq ? node->bfqWeight() : node->ioWeight();
        if (sibling_sum == 0)
            sibling_sum = own; // group alone (inactive): full share
        share *= static_cast<double>(own) /
                 static_cast<double>(sibling_sum);
        node = parent;
    }
    return share;
}

} // namespace isol::cgroup
