/**
 * @file
 * cgroup v2 hierarchy model (paper §IV-A).
 *
 * Semantics reproduced from the kernel:
 *  - one root group; all groups inherit from it;
 *  - "no internal processes": a group either delegates resource control
 *    (management group: +io in cgroup.subtree_control, no processes) or
 *    holds processes (process group: no controllers in its own
 *    subtree_control);
 *  - I/O knobs may only be set on groups whose *parent* enables the io
 *    controller — except io.cost.model/io.cost.qos (root-only) and
 *    io.prio.class (per-process-group, not inheritable);
 *  - knobs are written/read in kernel sysfs string syntax via
 *    writeFile()/readFile(), or through typed accessors.
 */

#ifndef ISOL_CGROUP_CGROUP_HH
#define ISOL_CGROUP_CGROUP_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cgroup/knobs.hh"
#include "common/types.hh"

namespace isol::cgroup
{

class CgroupTree;

/** Dense id of a cgroup within its tree. */
using CgroupId = uint32_t;

/**
 * One control group.
 */
class Cgroup
{
  public:
    const std::string &name() const { return name_; }

    /** Slash-separated path from the root ("/" for the root itself). */
    std::string path() const;

    CgroupId id() const { return id_; }
    Cgroup *parent() const { return parent_; }
    bool isRoot() const { return parent_ == nullptr; }

    const std::vector<Cgroup *> &children() const { return children_; }

    /** Whether the io controller is enabled for the children. */
    bool ioControllerEnabled() const { return io_enabled_; }

    /** Number of processes attached. */
    uint32_t processCount() const { return processes_; }

    // --- Typed knob accessors (validated like writeFile) ---

    /** io.weight (io.cost), 1-10000. */
    uint32_t ioWeight() const { return io_weight_; }

    /** io.bfq.weight, 1-1000. */
    uint32_t bfqWeight() const { return bfq_weight_; }

    /** io.prio.class. */
    PrioClass prioClass() const { return prio_class_; }

    /** io.max limits for `dev` (unlimited when never set). */
    IoMaxLimits ioMax(DeviceId dev) const;

    /** io.latency target for `dev` (0 = disabled). */
    SimTime ioLatencyTarget(DeviceId dev) const;

    // --- NVMe fault/retry accounting (filled by the block layer) ---

    /** Per-cgroup command-timeout and retry counters. */
    struct IoFaultStat
    {
        uint64_t timeouts = 0; //!< command timeouts hit by this group
        uint64_t requeues = 0; //!< retries issued after backoff
        uint64_t retry_successes = 0; //!< I/Os completing after >=1 retry
        uint64_t failed_ios = 0; //!< I/Os failed after max_retries
    };

    const IoFaultStat &ioFaultStat() const { return io_fault_; }
    IoFaultStat &mutableIoFaultStat() { return io_fault_; }

  private:
    friend class CgroupTree;

    Cgroup(CgroupTree *tree, Cgroup *parent, std::string name, CgroupId id)
        : tree_(tree), parent_(parent), name_(std::move(name)), id_(id)
    {
    }

    CgroupTree *tree_;
    Cgroup *parent_;
    std::string name_;
    CgroupId id_;
    std::vector<Cgroup *> children_;

    bool io_enabled_ = false; //!< +io in cgroup.subtree_control
    uint32_t processes_ = 0;

    uint32_t io_weight_ = 100;
    uint32_t bfq_weight_ = 100;
    PrioClass prio_class_ = PrioClass::kNoChange;
    std::map<DeviceId, IoMaxLimits> io_max_;
    std::map<DeviceId, IoLatencyConfig> io_latency_;
    IoFaultStat io_fault_;
};

/**
 * The cgroup hierarchy plus the root-only io.cost global configuration.
 */
class CgroupTree
{
  public:
    CgroupTree();

    /** The root group. */
    Cgroup &root() { return *root_; }
    const Cgroup &root() const { return *root_; }

    /** All groups in creation order (index == CgroupId). */
    const std::vector<std::unique_ptr<Cgroup>> &groups() const
    {
        return groups_;
    }

    Cgroup &group(CgroupId id) { return *groups_.at(id); }
    const Cgroup &group(CgroupId id) const { return *groups_.at(id); }

    /**
     * Create a child group. Fails if the parent holds processes (v2
     * forbids sibling processes and groups receiving controllers) when
     * the parent has the io controller enabled.
     */
    Cgroup &createChild(Cgroup &parent, const std::string &name);

    /** Enable the io controller for `group`'s children ("+io"). */
    void enableIoController(Cgroup &group);

    /**
     * Attach a process to `group`. Enforces "no internal processes":
     * groups with controllers enabled cannot hold processes.
     */
    void attachProcess(Cgroup &group);

    /** Detach one process. */
    void detachProcess(Cgroup &group);

    /**
     * Write a knob file in kernel syntax. Valid files: "io.weight",
     * "io.bfq.weight", "io.prio.class", "io.max", "io.latency",
     * "io.cost.model", "io.cost.qos", "cgroup.subtree_control".
     * io.max/io.latency/io.cost.* values must be prefixed with a device
     * id ("<dev> key=value ..."). Throws FatalError on invalid input or
     * a rule violation — like -EINVAL from the kernel.
     */
    void writeFile(Cgroup &group, const std::string &file,
                   const std::string &value);

    /** Read a knob file back in kernel-ish syntax. */
    std::string readFile(const Cgroup &group, const std::string &file) const;

    // --- Root-only io.cost globals ---

    /** io.cost.model for `dev` (defaults when never written). */
    IoCostModel costModel(DeviceId dev) const;

    /** io.cost.qos for `dev`. */
    IoCostQos costQos(DeviceId dev) const;

    /** Typed setter mirroring writeFile("io.cost.model"). */
    void setCostModel(DeviceId dev, const IoCostModel &model);

    /** Typed setter mirroring writeFile("io.cost.qos"). */
    void setCostQos(DeviceId dev, const IoCostQos &qos);

    /**
     * Hierarchical weight share of `group` in [0,1]: the product over the
     * path from the root of (weight / sum of sibling weights), counting
     * only siblings that have processes or descendants with processes.
     * `bfq` selects io.bfq.weight instead of io.weight.
     */
    double hierarchicalShare(const Cgroup &group, bool bfq) const;

  private:
    void validateKnobWrite(Cgroup &group, const std::string &file) const;

    /** True when the subtree rooted here contains any process. */
    bool subtreeActive(const Cgroup &group) const;

    std::vector<std::unique_ptr<Cgroup>> groups_;
    Cgroup *root_;

    std::map<DeviceId, IoCostModel> cost_models_;
    std::map<DeviceId, IoCostQos> cost_qos_;
};

} // namespace isol::cgroup

#endif // ISOL_CGROUP_CGROUP_HH
