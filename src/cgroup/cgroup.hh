/**
 * @file
 * cgroup v2 hierarchy model (paper §IV-A).
 *
 * Semantics reproduced from the kernel:
 *  - one root group; all groups inherit from it;
 *  - "no internal processes": a group either delegates resource control
 *    (management group: +io in cgroup.subtree_control, no processes) or
 *    holds processes (process group: no controllers in its own
 *    subtree_control);
 *  - I/O knobs may only be set on groups whose *parent* enables the io
 *    controller — except io.cost.model/io.cost.qos (root-only) and
 *    io.prio.class (per-process-group, not inheritable);
 *  - knobs are written/read in kernel sysfs string syntax via
 *    writeFile()/readFile(), or through typed accessors.
 */

#ifndef ISOL_CGROUP_CGROUP_HH
#define ISOL_CGROUP_CGROUP_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cgroup/knobs.hh"
#include "common/types.hh"

namespace isol::cgroup
{

class CgroupTree;

/** Dense id of a cgroup within its tree. */
using CgroupId = uint32_t;

/**
 * One control group.
 */
class Cgroup
{
  public:
    const std::string &name() const { return name_; }

    /** Slash-separated path from the root ("/" for the root itself). */
    std::string path() const;

    CgroupId id() const { return id_; }
    Cgroup *parent() const { return parent_; }
    bool isRoot() const { return parent_ == nullptr; }

    /** Levels below the root (root itself is depth 0). */
    uint32_t depth() const { return depth_; }

    /**
     * Cached ancestor chain as dense ids: this group first, then each
     * ancestor up to but excluding the root. Built once at creation, so
     * hierarchical charge/throttle walks are O(depth) array scans with
     * no pointer chasing. Empty for the root.
     */
    const std::vector<CgroupId> &chain() const { return chain_; }

    const std::vector<Cgroup *> &children() const { return children_; }

    /** Whether the io controller is enabled for the children. */
    bool ioControllerEnabled() const { return io_enabled_; }

    /** Number of processes attached. */
    uint32_t processCount() const { return processes_; }

    /** Processes in this group's whole subtree (incrementally kept). */
    uint32_t subtreeProcessCount() const { return subtree_processes_; }

    // --- Typed knob accessors (validated like writeFile) ---

    /** io.weight (io.cost), 1-10000. */
    uint32_t ioWeight() const { return io_weight_; }

    /** io.bfq.weight, 1-1000. */
    uint32_t bfqWeight() const { return bfq_weight_; }

    /** io.prio.class. */
    PrioClass prioClass() const { return prio_class_; }

    /** io.max limits for `dev` (unlimited when never set). */
    IoMaxLimits ioMax(DeviceId dev) const;

    /** io.latency target for `dev` (0 = disabled). */
    SimTime ioLatencyTarget(DeviceId dev) const;

    // --- NVMe fault/retry accounting (filled by the block layer) ---

    /** Per-cgroup command-timeout and retry counters. */
    struct IoFaultStat
    {
        uint64_t timeouts = 0; //!< command timeouts hit by this group
        uint64_t requeues = 0; //!< retries issued after backoff
        uint64_t retry_successes = 0; //!< I/Os completing after >=1 retry
        uint64_t failed_ios = 0; //!< I/Os failed after max_retries
    };

    const IoFaultStat &ioFaultStat() const { return io_fault_; }
    IoFaultStat &mutableIoFaultStat() { return io_fault_; }

  private:
    friend class CgroupTree;

    Cgroup(CgroupTree *tree, Cgroup *parent, std::string name, CgroupId id)
        : tree_(tree), parent_(parent), name_(std::move(name)), id_(id)
    {
        if (parent != nullptr) {
            depth_ = parent->depth_ + 1;
            chain_.reserve(parent->chain_.size() + 1);
            chain_.push_back(id);
            chain_.insert(chain_.end(), parent->chain_.begin(),
                          parent->chain_.end());
        }
    }

    CgroupTree *tree_;
    Cgroup *parent_;
    std::string name_;
    CgroupId id_;
    uint32_t depth_ = 0;
    std::vector<CgroupId> chain_;
    std::vector<Cgroup *> children_;

    bool io_enabled_ = false; //!< +io in cgroup.subtree_control
    uint32_t processes_ = 0;
    uint32_t subtree_processes_ = 0;

    uint32_t io_weight_ = 100;
    uint32_t bfq_weight_ = 100;
    PrioClass prio_class_ = PrioClass::kNoChange;
    std::map<DeviceId, IoMaxLimits> io_max_;
    std::map<DeviceId, IoLatencyConfig> io_latency_;
    IoFaultStat io_fault_;
};

/**
 * The cgroup hierarchy plus the root-only io.cost global configuration.
 */
class CgroupTree
{
  public:
    /**
     * Called just before a group is destroyed, while it is still fully
     * linked into the tree. Blk-layer gates use this to drop per-cgroup
     * state (arena slots, queues, pending wake events).
     */
    using RemovalListener = std::function<void(Cgroup &)>;

    CgroupTree();

    /** The root group. */
    Cgroup &root() { return *root_; }
    const Cgroup &root() const { return *root_; }

    /**
     * All id slots. Index == CgroupId; a slot is null while its id sits
     * on the free list after removeGroup(). Iterators must skip nulls.
     */
    const std::vector<std::unique_ptr<Cgroup>> &groups() const
    {
        return groups_;
    }

    /** Number of id slots ever allocated (bound for dense-id arrays). */
    size_t idCapacity() const { return groups_.size(); }

    /** Number of currently live groups (including the root). */
    size_t liveGroupCount() const { return live_groups_; }

    /**
     * Bumped on every topology or knob mutation (create/remove,
     * subtree_control, process attach/detach, any knob write). Gates
     * key cached shares/limits on this and re-derive lazily.
     */
    uint64_t version() const { return version_; }

    Cgroup &group(CgroupId id);
    const Cgroup &group(CgroupId id) const;

    /**
     * Create a child group. Fails if the parent holds processes (v2
     * forbids sibling processes and groups receiving controllers) when
     * the parent has the io controller enabled. Ids of removed groups
     * are recycled LIFO, so long create/destroy churn does not grow the
     * id space (or the gates' dense arrays) without bound.
     */
    Cgroup &createChild(Cgroup &parent, const std::string &name);

    /**
     * Destroy a group (rmdir). The group must be empty: no child
     * groups, no attached processes. Removal listeners run first, while
     * the group is still intact; then the id returns to the free list.
     */
    void removeGroup(Cgroup &group);

    /**
     * Register a removal listener; returns a token for removal. Order
     * of notification is registration order.
     */
    size_t addRemovalListener(RemovalListener fn);

    /** Unregister a listener (gates do this in their destructors). */
    void removeRemovalListener(size_t token);

    /**
     * Resolve a slash-separated path relative to the root ("a/b/c");
     * "" or "/" yields the root. Returns nullptr when missing.
     */
    Cgroup *resolve(const std::string &path);

    /** Enable the io controller for `group`'s children ("+io"). */
    void enableIoController(Cgroup &group);

    /**
     * Attach a process to `group`. Enforces "no internal processes":
     * groups with controllers enabled cannot hold processes.
     */
    void attachProcess(Cgroup &group);

    /** Detach one process. */
    void detachProcess(Cgroup &group);

    /**
     * Write a knob file in kernel syntax. Valid files: "io.weight",
     * "io.bfq.weight", "io.prio.class", "io.max", "io.latency",
     * "io.cost.model", "io.cost.qos", "cgroup.subtree_control".
     * io.max/io.latency/io.cost.* values must be prefixed with a device
     * id ("<dev> key=value ..."). Throws FatalError on invalid input or
     * a rule violation — like -EINVAL from the kernel.
     */
    void writeFile(Cgroup &group, const std::string &file,
                   const std::string &value);

    /** Read a knob file back in kernel-ish syntax. */
    std::string readFile(const Cgroup &group, const std::string &file) const;

    // --- Root-only io.cost globals ---

    /** io.cost.model for `dev` (defaults when never written). */
    IoCostModel costModel(DeviceId dev) const;

    /** io.cost.qos for `dev`. */
    IoCostQos costQos(DeviceId dev) const;

    /** Typed setter mirroring writeFile("io.cost.model"). */
    void setCostModel(DeviceId dev, const IoCostModel &model);

    /** Typed setter mirroring writeFile("io.cost.qos"). */
    void setCostQos(DeviceId dev, const IoCostQos &qos);

    /**
     * Hierarchical weight share of `group` in [0,1]: the product over the
     * path from the root of (weight / sum of sibling weights), counting
     * only siblings that have processes or descendants with processes.
     * `bfq` selects io.bfq.weight instead of io.weight.
     */
    double hierarchicalShare(const Cgroup &group, bool bfq) const;

    /** True when the subtree rooted here contains any process. O(1). */
    bool subtreeActive(const Cgroup &group) const
    {
        return group.subtreeProcessCount() > 0;
    }

  private:
    void validateKnobWrite(Cgroup &group, const std::string &file) const;

    void bumpVersion() { ++version_; }

    std::vector<std::unique_ptr<Cgroup>> groups_;
    std::vector<CgroupId> free_ids_;
    Cgroup *root_;
    size_t live_groups_ = 1;
    uint64_t version_ = 1;

    struct Listener
    {
        size_t token;
        RemovalListener fn;
    };
    std::vector<Listener> removal_listeners_;
    size_t next_listener_token_ = 0;

    std::map<DeviceId, IoCostModel> cost_models_;
    std::map<DeviceId, IoCostQos> cost_qos_;
};

} // namespace isol::cgroup

#endif // ISOL_CGROUP_CGROUP_HH
