#include "cgroup/knobs.hh"

#include <cstdlib>

#include "common/strings.hh"

namespace isol::cgroup
{

namespace
{

/** Split "key=value"; returns false if there is no '='. */
bool
splitKeyValue(const std::string &token, std::string &key, std::string &value)
{
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

std::optional<double>
parseDouble(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0')
        return std::nullopt;
    return v;
}

} // namespace

std::optional<PrioClass>
parsePrioClass(const std::string &text)
{
    std::string t = trimString(text);
    if (t == "no-change")
        return PrioClass::kNoChange;
    if (t == "promote-to-rt" || t == "rt" || t == "realtime")
        return PrioClass::kPromoteToRt;
    if (t == "restrict-to-be" || t == "be" || t == "best-effort")
        return PrioClass::kRestrictToBe;
    if (t == "idle")
        return PrioClass::kIdle;
    return std::nullopt;
}

const char *
prioClassName(PrioClass cls)
{
    switch (cls) {
      case PrioClass::kNoChange: return "no-change";
      case PrioClass::kPromoteToRt: return "promote-to-rt";
      case PrioClass::kRestrictToBe: return "restrict-to-be";
      case PrioClass::kIdle: return "idle";
    }
    return "?";
}

std::optional<IoMaxLimits>
parseIoMax(const std::string &text, IoMaxLimits base)
{
    IoMaxLimits out = base;
    for (const std::string &token : splitWhitespace(text)) {
        std::string key;
        std::string value;
        if (!splitKeyValue(token, key, value))
            return std::nullopt;
        // "max" maps to 0 == unlimited.
        auto parsed = value == "max" ? std::optional<uint64_t>(0)
                                     : parseSize(value);
        if (!parsed)
            return std::nullopt;
        if (key == "rbps")
            out.rbps = *parsed;
        else if (key == "wbps")
            out.wbps = *parsed;
        else if (key == "riops")
            out.riops = *parsed;
        else if (key == "wiops")
            out.wiops = *parsed;
        else
            return std::nullopt;
    }
    return out;
}

std::optional<IoLatencyConfig>
parseIoLatency(const std::string &text)
{
    IoLatencyConfig out;
    for (const std::string &token : splitWhitespace(text)) {
        std::string key;
        std::string value;
        if (!splitKeyValue(token, key, value))
            return std::nullopt;
        if (key == "target") {
            auto parsed = parseUint(value);
            if (!parsed)
                return std::nullopt;
            out.target = usToNs(static_cast<int64_t>(*parsed));
        } else {
            return std::nullopt;
        }
    }
    return out;
}

std::optional<IoCostModel>
parseIoCostModel(const std::string &text, IoCostModel base)
{
    IoCostModel out = base;
    for (const std::string &token : splitWhitespace(text)) {
        std::string key;
        std::string value;
        if (!splitKeyValue(token, key, value))
            return std::nullopt;
        if (key == "ctrl") {
            if (value == "user")
                out.user = true;
            else if (value == "auto")
                out.user = false;
            else
                return std::nullopt;
            continue;
        }
        if (key == "model") {
            if (value != "linear")
                return std::nullopt; // only the linear model exists
            continue;
        }
        auto parsed = parseSize(value);
        if (!parsed)
            return std::nullopt;
        if (key == "rbps")
            out.rbps = *parsed;
        else if (key == "rseqiops")
            out.rseqiops = *parsed;
        else if (key == "rrandiops")
            out.rrandiops = *parsed;
        else if (key == "wbps")
            out.wbps = *parsed;
        else if (key == "wseqiops")
            out.wseqiops = *parsed;
        else if (key == "wrandiops")
            out.wrandiops = *parsed;
        else
            return std::nullopt;
    }
    return out;
}

std::optional<IoCostQos>
parseIoCostQos(const std::string &text, IoCostQos base)
{
    IoCostQos out = base;
    for (const std::string &token : splitWhitespace(text)) {
        std::string key;
        std::string value;
        if (!splitKeyValue(token, key, value))
            return std::nullopt;
        if (key == "enable") {
            if (value != "0" && value != "1")
                return std::nullopt;
            out.enable = value == "1";
            continue;
        }
        if (key == "ctrl") {
            if (value != "user" && value != "auto")
                return std::nullopt;
            continue;
        }
        if (key == "rlat" || key == "wlat") {
            auto parsed = parseUint(value);
            if (!parsed)
                return std::nullopt;
            SimTime lat = usToNs(static_cast<int64_t>(*parsed));
            (key == "rlat" ? out.rlat : out.wlat) = lat;
            continue;
        }
        auto parsed = parseDouble(value);
        if (!parsed || *parsed < 0.0)
            return std::nullopt;
        if (key == "rpct")
            out.rpct = *parsed;
        else if (key == "wpct")
            out.wpct = *parsed;
        else if (key == "min")
            out.vrate_min = *parsed;
        else if (key == "max")
            out.vrate_max = *parsed;
        else
            return std::nullopt;
    }
    if (out.vrate_min > out.vrate_max)
        return std::nullopt;
    if (out.rpct > 100.0 || out.wpct > 100.0)
        return std::nullopt;
    return out;
}

std::optional<uint32_t>
parseWeight(const std::string &text, uint32_t min_weight,
            uint32_t max_weight)
{
    std::string t = trimString(text);
    // Accept the "default <w>" form used by io.weight.
    if (t.rfind("default ", 0) == 0)
        t = trimString(t.substr(8));
    auto parsed = parseUint(t);
    if (!parsed || *parsed < min_weight || *parsed > max_weight)
        return std::nullopt;
    return static_cast<uint32_t>(*parsed);
}

} // namespace isol::cgroup
