/**
 * @file
 * Typed values of the five cgroup-v2 I/O control knobs, plus parsers for
 * the kernel's sysfs string syntax (paper §IV-B).
 *
 *   io.prio.class   - I/O scheduling class hint (MQ-DL consumes it)
 *   io.bfq.weight   - BFQ absolute weight, 1-1000 (default 100)
 *   io.weight       - io.cost absolute weight, 1-10000 (default 100)
 *   io.max          - static limits: rbps/wbps/riops/wiops per device
 *   io.latency      - P90 tail-latency target per device
 *   io.cost.model   - linear device cost model (root-only, per device)
 *   io.cost.qos     - latency targets + vrate bounds (root-only)
 */

#ifndef ISOL_CGROUP_KNOBS_HH
#define ISOL_CGROUP_KNOBS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hh"

namespace isol::cgroup
{

/** Device identifier ("maj:min" in the kernel; a dense index here). */
using DeviceId = uint32_t;

/** io.prio.class values (cgroup v2 semantics). */
enum class PrioClass : uint8_t
{
    kNoChange, //!< "no-change" (default)
    kPromoteToRt, //!< "promote-to-rt"
    kRestrictToBe, //!< "restrict-to-be"
    kIdle, //!< "idle"
};

/** Parse an io.prio.class string; nullopt on unknown input. */
std::optional<PrioClass> parsePrioClass(const std::string &text);

/** Kernel-syntax name of a priority class. */
const char *prioClassName(PrioClass cls);

/** io.max limits for one device; 0 means "max" (unlimited). */
struct IoMaxLimits
{
    uint64_t rbps = 0; //!< read bytes/s
    uint64_t wbps = 0; //!< write bytes/s
    uint64_t riops = 0; //!< read IOs/s
    uint64_t wiops = 0; //!< write IOs/s

    bool
    unlimited() const
    {
        return rbps == 0 && wbps == 0 && riops == 0 && wiops == 0;
    }
};

/**
 * Parse the body of an io.max write after the device id, e.g.
 * "rbps=83886080 wbps=max riops=max wiops=max". Missing keys keep the
 * value in `base`. Returns nullopt on malformed input.
 */
std::optional<IoMaxLimits> parseIoMax(const std::string &text,
                                      IoMaxLimits base = {});

/** io.latency configuration for one device. */
struct IoLatencyConfig
{
    SimTime target = 0; //!< P90 target; 0 = disabled
};

/** Parse "target=<usec>"; nullopt on malformed input. */
std::optional<IoLatencyConfig> parseIoLatency(const std::string &text);

/**
 * io.cost.model: linear cost model per device (see
 * Documentation/admin-guide/cgroup-v2.rst and the iocost paper). Values
 * describe the device's saturation throughput per dimension.
 */
struct IoCostModel
{
    bool user = false; //!< user-provided (vs auto)
    uint64_t rbps = 2400ull * MiB; //!< read bytes/s at saturation
    uint64_t rseqiops = 600000; //!< sequential read IOPS at saturation
    uint64_t rrandiops = 600000; //!< random read IOPS at saturation
    uint64_t wbps = 500ull * MiB; //!< write bytes/s at saturation
    uint64_t wseqiops = 120000; //!< sequential write IOPS
    uint64_t wrandiops = 120000; //!< random write IOPS
};

/** Parse "ctrl=user model=linear rbps=... ..." after the device id. */
std::optional<IoCostModel> parseIoCostModel(const std::string &text,
                                            IoCostModel base = {});

/** io.cost.qos: congestion detection and vrate bounds. */
struct IoCostQos
{
    bool enable = true;
    double rpct = 0.0; //!< read latency percentile (0 disables)
    SimTime rlat = usToNs(100); //!< read latency target
    double wpct = 0.0; //!< write latency percentile (0 disables)
    SimTime wlat = usToNs(400); //!< write latency target
    double vrate_min = 25.0; //!< min vrate scaling percentage
    double vrate_max = 100.0; //!< max vrate scaling percentage
};

/** Parse "enable=1 rpct=95.00 rlat=100000 ... min=50.00 max=100.00". */
std::optional<IoCostQos> parseIoCostQos(const std::string &text,
                                        IoCostQos base = {});

/** Weight knobs share range validation; returns nullopt out of range. */
std::optional<uint32_t> parseWeight(const std::string &text,
                                    uint32_t min_weight,
                                    uint32_t max_weight);

} // namespace isol::cgroup

#endif // ISOL_CGROUP_KNOBS_HH
