#include "common/alloc_hook.hh"

#include <cstdlib>
#include <new>

namespace isol::common
{

namespace
{
// Thread-local so parallel sweep workers never contend or race; the
// linter's mutable-static rule exists to keep *simulation* results off
// shared state, which pure diagnostics counters cannot affect.
// isol-lint: allow(D4): thread-local diagnostics counters; never read
// by simulation code
thread_local AllocCounters t_counters;
} // namespace

bool
allocCountingEnabled()
{
#ifdef ISOL_COUNT_ALLOCS
    return true;
#else
    return false;
#endif
}

AllocCounters
allocCounters()
{
    return t_counters;
}

void
resetAllocCounters()
{
    t_counters = AllocCounters{};
}

} // namespace isol::common

#ifdef ISOL_COUNT_ALLOCS

namespace
{

void *
countedAlloc(std::size_t size)
{
    ++isol::common::t_counters.allocs;
    isol::common::t_counters.bytes += size;
    void *p = std::malloc(size == 0 ? 1 : size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    ++isol::common::t_counters.allocs;
    isol::common::t_counters.bytes += size;
    // aligned_alloc requires size to be a multiple of the alignment.
    std::size_t padded = (size + align - 1) / align * align;
    void *p = std::aligned_alloc(align, padded == 0 ? align : padded);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void
countedFree(void *p) noexcept
{
    if (p == nullptr)
        return;
    ++isol::common::t_counters.frees;
    std::free(p);
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(size);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(size);
    } catch (...) {
        return nullptr;
    }
}

void
operator delete(void *p) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

#endif // ISOL_COUNT_ALLOCS
