/**
 * @file
 * Heap-allocation counting for zero-allocation hot-path verification.
 *
 * When the build defines ISOL_COUNT_ALLOCS (CMake option, default ON),
 * alloc_hook.cc replaces the global operator new/delete with versions
 * that bump thread-local counters before forwarding to malloc/free. The
 * steady-state tests and `micro_components` read the counters around a
 * measured region to assert (or report) allocations per simulated I/O.
 *
 * Counters are thread-local: a worker thread observes only its own
 * allocations, so parallel sweeps do not perturb the measurement and
 * the counting itself is race-free under TSan.
 *
 * When the hook is compiled out, `allocCountingEnabled()` returns false
 * and the counters read zero; tests skip themselves.
 */

#ifndef ISOL_COMMON_ALLOC_HOOK_HH
#define ISOL_COMMON_ALLOC_HOOK_HH

#include <cstdint>

namespace isol::common
{

/** Snapshot of this thread's heap traffic since the last reset. */
struct AllocCounters
{
    uint64_t allocs = 0; //!< operator new / new[] calls
    uint64_t frees = 0; //!< operator delete / delete[] calls
    uint64_t bytes = 0; //!< total bytes requested from new
};

/** True when the operator-new hook is compiled in (ISOL_COUNT_ALLOCS). */
bool allocCountingEnabled();

/** This thread's counters since thread start / last reset. */
AllocCounters allocCounters();

/** Zero this thread's counters. */
void resetAllocCounters();

} // namespace isol::common

#endif // ISOL_COMMON_ALLOC_HOOK_HH
