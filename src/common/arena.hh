/**
 * @file
 * Typed arena allocator (object pool) for the DES hot path.
 *
 * `Arena<T>` hands out pointers to default-constructed T objects from
 * chunked slabs and recycles released objects through a free list, so a
 * steady-state workload performs zero heap allocations: each slot is
 * constructed exactly once and *retained* between uses. That retention
 * is deliberate — a recycled `WriteAdmit` keeps its `lpns` vector's
 * capacity, a recycled callback slot keeps nothing live (callers clear
 * heavy members before release) — and it is what turns per-I/O
 * `make_shared` traffic into pointer bumps.
 *
 * Objects never move: slabs are stable, so raw pointers can be captured
 * in event callbacks. The arena destroys every constructed object at
 * destruction, so slots still "live" when a simulation is cut off (their
 * completion events destroyed unfired) are released with the arena — the
 * ownership property the previous shared_ptr boxes existed to provide.
 *
 * Determinism: acquisition order is a pure function of the acquire/
 * release history (LIFO free list, in-slab address order on growth), so
 * pooled pointers never inject host-address ordering into simulations.
 */

#ifndef ISOL_COMMON_ARENA_HH
#define ISOL_COMMON_ARENA_HH

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace isol::common
{

/**
 * Chunked object pool. T must be default-constructible; objects are
 * recycled constructed (acquire() may return a previously released
 * object — callers reset the fields they use).
 */
template <typename T, size_t kChunkObjects = 64>
class Arena
{
  public:
    Arena() = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena()
    {
        for (auto &slab : slabs_) {
            T *objs = reinterpret_cast<T *>(slab.get());
            for (size_t i = 0; i < kChunkObjects; ++i)
                objs[i].~T();
        }
    }

    /** Get an object (recycled or fresh). O(1) amortised. */
    T *
    acquire()
    {
        if (free_.empty())
            grow();
        T *obj = free_.back();
        free_.pop_back();
        ++acquired_;
        if (live() > peak_live_)
            peak_live_ = live();
        return obj;
    }

    /** Return an object to the pool. It stays constructed. */
    void
    release(T *obj)
    {
        ++released_;
        free_.push_back(obj);
    }

    /** Objects currently handed out. */
    size_t live() const { return acquired_ - released_; }

    /** High-water mark of handed-out objects. */
    size_t peakLive() const { return peak_live_; }

    /** Total slots across all slabs. */
    size_t capacity() const { return slabs_.size() * kChunkObjects; }

    /** Lifetime acquire count (allocation-rate accounting). */
    size_t acquires() const { return acquired_; }

  private:
    struct SlabDelete
    {
        void
        operator()(unsigned char *p) const
        {
            ::operator delete[](p, std::align_val_t{alignof(T)});
        }
    };
    using Slab = std::unique_ptr<unsigned char[], SlabDelete>;

    void
    grow()
    {
        auto *raw = static_cast<unsigned char *>(::operator new[](
            sizeof(T) * kChunkObjects, std::align_val_t{alignof(T)}));
        slabs_.emplace_back(raw);
        T *objs = reinterpret_cast<T *>(raw);
        for (size_t i = 0; i < kChunkObjects; ++i)
            ::new (static_cast<void *>(objs + i)) T();
        // Reversed so acquire() hands out ascending in-slab addresses.
        free_.reserve(free_.size() + kChunkObjects);
        for (size_t i = kChunkObjects; i > 0; --i)
            free_.push_back(objs + (i - 1));
    }

    std::vector<Slab> slabs_;
    std::vector<T *> free_;
    size_t acquired_ = 0;
    size_t released_ = 0;
    size_t peak_live_ = 0;
};

} // namespace isol::common

#endif // ISOL_COMMON_ARENA_HH
