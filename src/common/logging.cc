#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace isol
{

namespace
{
// isol-lint: allow(D4): process-wide log threshold; set once at startup
// (CLI flag) and read-only during runs, per DESIGN.md §7
LogLevel g_level = LogLevel::kWarn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

} // namespace isol
