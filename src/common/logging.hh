/**
 * @file
 * Minimal logging and error-handling helpers.
 *
 * Follows the gem5 distinction between panic() (an internal invariant was
 * violated — a simulator bug; aborts) and fatal() (the user asked for
 * something invalid — a configuration error; throws so tests can check it).
 */

#ifndef ISOL_COMMON_LOGGING_HH
#define ISOL_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace isol
{

/** Severity levels for runtime log output. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Thrown by fatal(): an invalid user configuration was requested. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Global minimum level actually emitted (default kWarn: quiet benches). */
LogLevel logLevel();

/** Set the global minimum log level. */
void setLogLevel(LogLevel level);

/** Emit one log line if `level` is at or above the global threshold. */
void logMessage(LogLevel level, const std::string &msg);

/** Report an unrecoverable internal error (simulator bug) and abort. */
[[noreturn]] void panic(const std::string &msg);

/** Report an invalid user configuration by throwing FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Build a message from stream-style arguments.
 * Example: logMessage(LogLevel::kInfo, strCat("apps=", n));
 */
template <typename... Args>
std::string
strCat(Args &&...args)
{
    std::ostringstream oss;
    (void)(oss << ... << args);
    return oss.str();
}

} // namespace isol

#endif // ISOL_COMMON_LOGGING_HH
