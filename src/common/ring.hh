/**
 * @file
 * Power-of-two ring buffer deque for the DES hot path.
 *
 * The request pipeline uses FIFO queues everywhere (die queues, cgroup
 * throttle queues, tag waiters). `std::deque` is the obvious container,
 * but libstdc++'s deque allocates and frees 512-byte chunks as the
 * head/tail cross chunk boundaries — a steady stream of heap traffic in
 * exactly the push/pop pattern these queues live in. RingDeque keeps one
 * contiguous power-of-two buffer, doubles it on overflow, and never
 * shrinks, so a warmed-up queue performs zero allocations.
 *
 * Supports move-only element types. Indexing (operator[]) is relative to
 * the front, so gate scans can walk the queue without pointer chasing.
 */

#ifndef ISOL_COMMON_RING_HH
#define ISOL_COMMON_RING_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "common/logging.hh"

namespace isol::common
{

/**
 * Growable circular FIFO. Capacity is always a power of two; elements
 * are stored in raw slots and constructed/destroyed on push/pop.
 */
template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;
    RingDeque(const RingDeque &) = delete;
    RingDeque &operator=(const RingDeque &) = delete;

    RingDeque(RingDeque &&other) noexcept { swap(other); }

    RingDeque &
    operator=(RingDeque &&other) noexcept
    {
        if (this != &other) {
            clearAndFree();
            swap(other);
        }
        return *this;
    }

    ~RingDeque() { clearAndFree(); }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    size_t capacity() const { return cap_; }

    /** Element `i` positions behind the front (0 = front). */
    T &operator[](size_t i) { return *slot((head_ + i) & mask()); }
    const T &
    operator[](size_t i) const
    {
        return *slot((head_ + i) & mask());
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    void
    push_back(T value)
    {
        if (size_ == cap_)
            grow();
        ::new (static_cast<void *>(slot((head_ + size_) & mask())))
            T(std::move(value));
        ++size_;
    }

    void
    pop_front()
    {
        if (size_ == 0)
            panic("RingDeque::pop_front: empty");
        slot(head_)->~T();
        head_ = (head_ + 1) & mask();
        --size_;
    }

    void
    pop_back()
    {
        if (size_ == 0)
            panic("RingDeque::pop_back: empty");
        slot((head_ + size_ - 1) & mask())->~T();
        --size_;
    }

    /** Destroy all elements; capacity is retained. */
    void
    clear()
    {
        while (size_ > 0)
            pop_front();
        head_ = 0;
    }

  private:
    size_t mask() const { return cap_ - 1; }

    T *
    slot(size_t i)
    {
        return reinterpret_cast<T *>(buf_ + i * sizeof(T));
    }

    const T *
    slot(size_t i) const
    {
        return reinterpret_cast<const T *>(buf_ + i * sizeof(T));
    }

    void
    grow()
    {
        size_t new_cap = cap_ == 0 ? 16 : cap_ * 2;
        auto *raw = static_cast<unsigned char *>(::operator new[](
            sizeof(T) * new_cap, std::align_val_t{alignof(T)}));
        for (size_t i = 0; i < size_; ++i) {
            T *src = slot((head_ + i) & mask());
            ::new (static_cast<void *>(raw + i * sizeof(T)))
                T(std::move(*src));
            src->~T();
        }
        if (buf_ != nullptr)
            ::operator delete[](buf_, std::align_val_t{alignof(T)});
        buf_ = raw;
        cap_ = new_cap;
        head_ = 0;
    }

    void
    clearAndFree()
    {
        clear();
        if (buf_ != nullptr) {
            ::operator delete[](buf_, std::align_val_t{alignof(T)});
            buf_ = nullptr;
            cap_ = 0;
        }
    }

    void
    swap(RingDeque &other) noexcept
    {
        std::swap(buf_, other.buf_);
        std::swap(cap_, other.cap_);
        std::swap(head_, other.head_);
        std::swap(size_, other.size_);
    }

    unsigned char *buf_ = nullptr;
    size_t cap_ = 0;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace isol::common

#endif // ISOL_COMMON_RING_HH
