/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * Implements xoshiro256++ (public-domain algorithm by Blackman & Vigna) so
 * results are reproducible across platforms and standard-library versions —
 * std::mt19937 distributions are not bit-stable across implementations.
 */

#ifndef ISOL_COMMON_RNG_HH
#define ISOL_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace isol
{

/**
 * xoshiro256++ generator with convenience distributions.
 *
 * All distribution helpers are inline and allocation-free; one Rng instance
 * is owned per scenario to keep experiments independent and repeatable.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9E3779B97F4A7C15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire's rejection-free mix. */
    uint64_t
    below(uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // 128-bit multiply keeps the distribution close enough to uniform
        // for workload generation (bias < 2^-64 * bound).
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    between(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace isol

#endif // ISOL_COMMON_RNG_HH
