#include "common/strings.hh"

#include <cctype>
#include <cstdio>

#include "common/types.hh"

namespace isol
{

std::vector<std::string>
splitString(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        if (i > start)
            out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string
trimString(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

std::optional<uint64_t>
parseUint(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return std::nullopt;
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return std::nullopt; // overflow
        value = value * 10 + digit;
    }
    return value;
}

std::optional<uint64_t>
parseSize(std::string_view text, std::optional<uint64_t> max_value)
{
    std::string t = trimString(text);
    if (t.empty())
        return std::nullopt;
    if (max_value && t == "max")
        return max_value;

    uint64_t mult = 1;
    char last = static_cast<char>(
        std::tolower(static_cast<unsigned char>(t.back())));
    switch (last) {
      case 'k': mult = KiB; break;
      case 'm': mult = MiB; break;
      case 'g': mult = GiB; break;
      case 't': mult = GiB * 1024; break;
      default: break;
    }
    if (mult != 1)
        t.pop_back();

    auto base = parseUint(t);
    if (!base)
        return std::nullopt;
    if (*base > UINT64_MAX / mult)
        return std::nullopt;
    return *base * mult;
}

std::string
formatBytes(uint64_t bytes)
{
    char buf[64];
    if (bytes >= GiB) {
        std::snprintf(buf, sizeof(buf), "%.2fGiB",
                      static_cast<double>(bytes) / static_cast<double>(GiB));
    } else if (bytes >= MiB) {
        std::snprintf(buf, sizeof(buf), "%.2fMiB",
                      static_cast<double>(bytes) / static_cast<double>(MiB));
    } else if (bytes >= KiB) {
        std::snprintf(buf, sizeof(buf), "%.2fKiB",
                      static_cast<double>(bytes) / static_cast<double>(KiB));
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

} // namespace isol
