/**
 * @file
 * Small string utilities used by the cgroup sysfs-style knob parsers and
 * the report emitters.
 */

#ifndef ISOL_COMMON_STRINGS_HH
#define ISOL_COMMON_STRINGS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace isol
{

/** Split `text` on `sep`, keeping empty fields. */
std::vector<std::string> splitString(std::string_view text, char sep);

/** Split `text` on any run of whitespace, dropping empty fields. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Strip leading and trailing whitespace. */
std::string trimString(std::string_view text);

/**
 * Parse a non-negative integer, optionally suffixed with k/m/g/t (binary
 * multipliers, case-insensitive), e.g. "64k" -> 65536. Returns nullopt on
 * malformed input. "max" is accepted when `max_value` is provided and maps
 * to it (mirrors cgroup v2 io.max syntax).
 */
std::optional<uint64_t> parseSize(std::string_view text,
                                  std::optional<uint64_t> max_value = {});

/** Parse a plain non-negative base-10 integer. */
std::optional<uint64_t> parseUint(std::string_view text);

/** Format a byte count as a compact human-readable string ("1.5GiB"). */
std::string formatBytes(uint64_t bytes);

/** Format a double with fixed precision. */
std::string formatDouble(double value, int precision);

} // namespace isol

#endif // ISOL_COMMON_STRINGS_HH
