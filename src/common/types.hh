/**
 * @file
 * Fundamental types and unit helpers shared by every module.
 *
 * The simulator measures time in integer nanoseconds (SimTime) and data in
 * bytes (uint64_t). The helpers below keep call sites readable:
 * `4 * KiB`, `usToNs(75)`, `bytesPerSecToMiBs(...)`.
 */

#ifndef ISOL_COMMON_TYPES_HH
#define ISOL_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace isol
{

/** Simulated time in nanoseconds since simulation start. */
using SimTime = int64_t;

/** Sentinel for "no deadline / infinitely far in the future". */
constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/** Data-size units (binary prefixes, bytes). */
constexpr uint64_t KiB = 1024ull;
constexpr uint64_t MiB = 1024ull * KiB;
constexpr uint64_t GiB = 1024ull * MiB;

/** Time-unit conversions to nanoseconds. */
constexpr SimTime nsToNs(int64_t ns) { return ns; }
constexpr SimTime usToNs(int64_t us) { return us * 1000ll; }
constexpr SimTime msToNs(int64_t ms) { return ms * 1000'000ll; }
constexpr SimTime secToNs(int64_t s) { return s * 1000'000'000ll; }
constexpr SimTime secToNs(double s)
{
    return static_cast<SimTime>(s * 1e9);
}

/** Nanoseconds back to floating-point convenience units. */
constexpr double nsToUs(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double nsToMs(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double nsToSec(SimTime t) { return static_cast<double>(t) / 1e9; }

/** Convert a byte count transferred over a duration into MiB/s. */
inline double
bytesOverNsToMiBs(uint64_t bytes, SimTime dur_ns)
{
    if (dur_ns <= 0)
        return 0.0;
    return static_cast<double>(bytes) / static_cast<double>(MiB) /
           nsToSec(dur_ns);
}

/** Convert a byte count transferred over a duration into GiB/s. */
inline double
bytesOverNsToGiBs(uint64_t bytes, SimTime dur_ns)
{
    if (dur_ns <= 0)
        return 0.0;
    return static_cast<double>(bytes) / static_cast<double>(GiB) /
           nsToSec(dur_ns);
}

/** I/O direction. */
enum class OpType : uint8_t { kRead, kWrite };

/** Spatial access pattern of a request stream. */
enum class AccessPattern : uint8_t { kRandom, kSequential };

/** Human-readable name of an op type ("read"/"write"). */
inline const char *
opTypeName(OpType op)
{
    return op == OpType::kRead ? "read" : "write";
}

/** Human-readable name of an access pattern ("rand"/"seq"). */
inline const char *
accessPatternName(AccessPattern p)
{
    return p == AccessPattern::kRandom ? "rand" : "seq";
}

} // namespace isol

#endif // ISOL_COMMON_TYPES_HH
