#include "fault/fault.hh"

namespace isol::fault
{

const char *
profileName(Profile profile)
{
    switch (profile) {
      case Profile::kOff: return "off";
      case Profile::kMedia: return "media";
      case Profile::kThermal: return "thermal";
      case Profile::kAll: return "all";
    }
    return "?";
}

std::optional<Profile>
parseProfile(std::string_view text)
{
    if (text == "off")
        return Profile::kOff;
    if (text == "media")
        return Profile::kMedia;
    if (text == "thermal")
        return Profile::kThermal;
    if (text == "all")
        return Profile::kAll;
    return std::nullopt;
}

FaultPlane
profileConfig(Profile profile)
{
    FaultPlane plane;
    switch (profile) {
      case Profile::kOff:
        break;
      case Profile::kMedia:
        plane.device.media.enabled = true;
        plane.device.media.faulty_die_fraction = 0.125;
        plane.device.media.spike_rate_hz = 50.0;
        plane.timeout.enabled = true;
        break;
      case Profile::kThermal:
        plane.device.thermal.enabled = true;
        break;
      case Profile::kAll:
        plane.device.media.enabled = true;
        plane.device.media.faulty_die_fraction = 0.125;
        plane.device.media.spike_rate_hz = 50.0;
        plane.device.thermal.enabled = true;
        plane.timeout.enabled = true;
        break;
    }
    return plane;
}

} // namespace isol::fault
