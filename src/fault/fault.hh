/**
 * @file
 * Deterministic fault-injection plane: configuration and counters.
 *
 * The paper evaluates the cgroup I/O knobs on healthy devices only; this
 * subsystem lets every layer of the simulated stack misbehave on demand —
 * reproducibly. Three fault families are modelled:
 *
 *  - media faults (device): uncorrectable-read probability driving a
 *    read-retry ladder with escalating tR steps, grown bad blocks that
 *    the FTL remaps (shrinking spare capacity), and transient
 *    latency-spike windows that slow every die operation;
 *  - thermal throttling (device): a heat accumulator fed by program
 *    activity; past the high watermark the controller stretches program
 *    latency, capping write bandwidth until the device cools;
 *  - NVMe command timeouts (host/blk): in-flight commands that exceed
 *    the timeout are aborted and requeued with capped exponential
 *    backoff; retried work is visible to (and charged by) the QoS knobs.
 *
 * All randomness is drawn from dedicated xoshiro streams seeded from the
 * owning device's seed, so runs are bit-reproducible and the plane is
 * strictly opt-in: with every family disabled, no RNG draw and no code
 * path differs from a fault-free build.
 */

#ifndef ISOL_FAULT_FAULT_HH
#define ISOL_FAULT_FAULT_HH

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/types.hh"

namespace isol::fault
{

/** Named fault-plane presets selectable from the CLI (--faults). */
enum class Profile : uint8_t
{
    kOff, //!< no faults (default; behaviour identical to the seed)
    kMedia, //!< media errors + latency spikes + NVMe timeouts
    kThermal, //!< thermal throttling only
    kAll, //!< everything
};

/** CLI name of a profile ("off", "media", "thermal", "all"). */
const char *profileName(Profile profile);

/** Parse a CLI profile name; nullopt on unknown input. */
std::optional<Profile> parseProfile(std::string_view text);

/**
 * Media-error model parameters (per device).
 *
 * A read is "degraded" when its die index falls in the first
 * `faulty_die_fraction` of the dies or its LBA falls inside the
 * [faulty_lba_begin, faulty_lba_begin + faulty_lba_len) window (both
 * expressed as fractions of the device). Degraded reads fail with
 * `faulty_read_error_prob`, healthy ones with `read_error_prob`; a
 * failed read climbs the retry ladder, each step multiplying tR by
 * another `retry_step_factor` until it succeeds or the ladder is
 * exhausted (an uncorrectable error).
 */
struct MediaFaultConfig
{
    bool enabled = false;

    double read_error_prob = 2e-4; //!< per-page failure, healthy media
    double faulty_read_error_prob = 0.05; //!< per-page, degraded media
    double faulty_die_fraction = 0.0; //!< first N dies are degraded
    double faulty_lba_begin = 0.0; //!< degraded LBA window start (frac)
    double faulty_lba_len = 0.0; //!< degraded LBA window length (frac)

    uint32_t retry_ladder_steps = 4; //!< max retries before giving up
    double retry_step_factor = 1.7; //!< tR multiplier added per step
    double retry_fail_prob = 0.35; //!< chance a retry step also fails
    double remap_prob = 0.05; //!< ladder top => grown-bad-block remap

    double spike_rate_hz = 0.0; //!< mean latency-spike events per second
    SimTime spike_duration = msToNs(2); //!< length of one spike window
    double spike_factor = 8.0; //!< service multiplier inside a window
};

/**
 * Thermal-throttle parameters (per device).
 *
 * Heat accumulates with program busy time (in die-ns) and decays at
 * `cool_rate` die-ns per ns — i.e. the device can sustain `cool_rate`
 * concurrently-programming dies indefinitely. Above the high watermark
 * the controller enters throttle mode (program latency multiplied by
 * `throttle_factor`, capping program bandwidth) until the heat falls
 * below the low watermark.
 */
struct ThermalFaultConfig
{
    bool enabled = false;

    double heat_per_busy_ns = 1.0; //!< heat gained per program busy ns
    double cool_rate = 20.0; //!< heat shed per wall ns (die-ns/ns)
    double high_watermark = 2.0e9; //!< enter throttle above this heat
    double low_watermark = 1.0e9; //!< leave throttle below this heat
    double throttle_factor = 3.0; //!< program-latency multiplier
};

/**
 * NVMe command-timeout handling (host/blk side).
 *
 * An in-flight command that has not completed after `command_timeout`
 * is aborted and requeued after min(backoff_base * 2^retries,
 * backoff_cap); after `max_retries` requeues the request completes as
 * failed. The aborted attempt's device time is already spent — as on
 * real hardware, where an abort cannot reclaim die busy time.
 */
struct TimeoutFaultConfig
{
    bool enabled = false;

    SimTime command_timeout = msToNs(30); //!< abort threshold
    uint32_t max_retries = 4; //!< requeues before failing the I/O
    SimTime backoff_base = usToNs(200); //!< first requeue delay
    SimTime backoff_cap = msToNs(20); //!< exponential backoff ceiling
};

/** Device-side fault families (owned by the SSD model). */
struct DeviceFaultConfig
{
    MediaFaultConfig media;
    ThermalFaultConfig thermal;

    bool any() const { return media.enabled || thermal.enabled; }
};

/** The whole fault plane: device-side families plus host-side timeouts. */
struct FaultPlane
{
    DeviceFaultConfig device;
    TimeoutFaultConfig timeout;

    bool any() const { return device.any() || timeout.enabled; }
};

/** Build the fault plane a named profile stands for. */
FaultPlane profileConfig(Profile profile);

/** Device-side fault counters (one set per simulated SSD). */
struct DeviceFaultStats
{
    uint64_t read_retries = 0; //!< extra read attempts (ladder steps)
    uint64_t uncorrectable = 0; //!< reads that exhausted the ladder
    uint64_t remapped_blocks = 0; //!< grown bad blocks retired by the FTL
    uint64_t spike_events = 0; //!< latency-spike windows entered
    SimTime throttle_ns = 0; //!< time spent in thermal throttle mode
};

/** Host-side (block layer) fault counters, one set per block device. */
struct HostFaultStats
{
    uint64_t timeouts = 0; //!< commands that hit the timeout
    uint64_t aborts = 0; //!< aborted in-flight attempts
    uint64_t requeues = 0; //!< retries issued after backoff
    uint64_t retry_successes = 0; //!< requests completing after >=1 retry
    uint64_t failed_ios = 0; //!< requests failed after max_retries
    uint64_t late_completions = 0; //!< aborted attempts finishing anyway
};

} // namespace isol::fault

#endif // ISOL_FAULT_FAULT_HH
