#include "fault/media_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace isol::fault
{

MediaFaultModel::MediaFaultModel(const DeviceFaultConfig &cfg,
                                 uint32_t num_dies,
                                 uint64_t capacity_bytes, uint64_t seed)
    : cfg_(cfg), num_dies_(num_dies), capacity_(capacity_bytes),
      rng_(seed)
{
    if (cfg_.media.enabled) {
        if (cfg_.media.retry_ladder_steps == 0)
            fatal("MediaFaultConfig: retry_ladder_steps must be >= 1");
        if (cfg_.media.retry_step_factor < 1.0)
            fatal("MediaFaultConfig: retry_step_factor must be >= 1");
    }
    if (cfg_.thermal.enabled &&
        cfg_.thermal.low_watermark > cfg_.thermal.high_watermark) {
        fatal("ThermalFaultConfig: low watermark above high watermark");
    }
}

bool
MediaFaultModel::dieFaulty(uint32_t die) const
{
    if (!cfg_.media.enabled || cfg_.media.faulty_die_fraction <= 0.0)
        return false;
    auto faulty = static_cast<uint32_t>(cfg_.media.faulty_die_fraction *
                                        static_cast<double>(num_dies_));
    return die < faulty;
}

bool
MediaFaultModel::offsetFaulty(uint64_t offset) const
{
    if (!cfg_.media.enabled || cfg_.media.faulty_lba_len <= 0.0)
        return false;
    auto begin = static_cast<uint64_t>(cfg_.media.faulty_lba_begin *
                                       static_cast<double>(capacity_));
    auto len = static_cast<uint64_t>(cfg_.media.faulty_lba_len *
                                     static_cast<double>(capacity_));
    return offset >= begin && offset - begin < len;
}

MediaFaultModel::ReadOutcome
MediaFaultModel::readOutcome(uint64_t offset, uint32_t die,
                             SimTime base_service)
{
    ReadOutcome out;
    out.service = base_service;
    if (!cfg_.media.enabled)
        return out;

    const MediaFaultConfig &m = cfg_.media;
    bool degraded = dieFaulty(die) || offsetFaulty(offset);
    double fail_prob =
        degraded ? m.faulty_read_error_prob : m.read_error_prob;
    if (fail_prob <= 0.0 || !rng_.chance(fail_prob))
        return out;

    // The first attempt failed: climb the ladder. Step k re-reads with
    // tR scaled by retry_step_factor^k (longer sensing / stronger ECC),
    // until a step succeeds or the ladder tops out.
    double step_service = static_cast<double>(base_service);
    for (uint32_t step = 1; step <= m.retry_ladder_steps; ++step) {
        step_service *= m.retry_step_factor;
        out.service += static_cast<SimTime>(step_service);
        ++out.retries;
        ++stats_.read_retries;
        bool last = step == m.retry_ladder_steps;
        if (!rng_.chance(m.retry_fail_prob))
            break; // this retry step recovered the data
        if (last) {
            out.uncorrectable = true;
            ++stats_.uncorrectable;
        }
    }

    // Repeated-retry or uncorrectable reads flag a weak block; with
    // remap_prob the controller declares it a grown bad block and asks
    // the FTL to remap it (shrinking spare capacity).
    if ((out.uncorrectable || out.retries >= 2) && m.remap_prob > 0.0 &&
        rng_.chance(m.remap_prob)) {
        out.remap = true;
    }
    return out;
}

void
MediaFaultModel::advanceSpikes(SimTime now)
{
    const MediaFaultConfig &m = cfg_.media;
    double mean_gap_ns = 1e9 / m.spike_rate_hz;
    if (next_spike_ < 0) {
        next_spike_ = static_cast<SimTime>(rng_.exponential(mean_gap_ns));
    }
    while (now >= next_spike_) {
        spike_until_ = next_spike_ + m.spike_duration;
        ++stats_.spike_events;
        next_spike_ = spike_until_ + static_cast<SimTime>(
                                         rng_.exponential(mean_gap_ns));
    }
}

double
MediaFaultModel::serviceMultiplier(SimTime now)
{
    if (!cfg_.media.enabled || cfg_.media.spike_rate_hz <= 0.0)
        return 1.0;
    advanceSpikes(now);
    return now < spike_until_ ? cfg_.media.spike_factor : 1.0;
}

void
MediaFaultModel::updateHeat(SimTime now)
{
    if (now <= heat_updated_)
        return;
    SimTime elapsed = now - heat_updated_;
    if (throttling_)
        stats_.throttle_ns += elapsed;
    heat_ -= cfg_.thermal.cool_rate * static_cast<double>(elapsed);
    heat_ = std::max(heat_, 0.0);
    heat_updated_ = now;
    if (throttling_ && heat_ < cfg_.thermal.low_watermark)
        throttling_ = false;
}

void
MediaFaultModel::noteProgram(SimTime now, SimTime busy_ns)
{
    if (!cfg_.thermal.enabled)
        return;
    updateHeat(now);
    heat_ += cfg_.thermal.heat_per_busy_ns * static_cast<double>(busy_ns);
    if (!throttling_ && heat_ > cfg_.thermal.high_watermark)
        throttling_ = true;
}

double
MediaFaultModel::programMultiplier(SimTime now)
{
    if (!cfg_.thermal.enabled)
        return 1.0;
    updateHeat(now);
    return throttling_ ? cfg_.thermal.throttle_factor : 1.0;
}

} // namespace isol::fault
