/**
 * @file
 * Per-device fault model runtime: read-retry ladders, latency-spike
 * windows, and the thermal heat accumulator.
 *
 * The model is passive — the SSD device queries it on each operation and
 * applies the returned service-time adjustments. All state transitions
 * are pull-based and advance deterministically with simulated time, so
 * two runs with the same seed produce identical fault sequences.
 */

#ifndef ISOL_FAULT_MEDIA_MODEL_HH
#define ISOL_FAULT_MEDIA_MODEL_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "fault/fault.hh"

namespace isol::fault
{

/**
 * Runtime fault state of one device.
 */
class MediaFaultModel
{
  public:
    /**
     * @param cfg device-side fault families
     * @param num_dies dies in the owning device
     * @param capacity_bytes user-visible LBA space of the device
     * @param seed RNG seed (derive from the device seed for reproducible
     *             per-device fault streams)
     */
    MediaFaultModel(const DeviceFaultConfig &cfg, uint32_t num_dies,
                    uint64_t capacity_bytes, uint64_t seed);

    bool mediaEnabled() const { return cfg_.media.enabled; }
    bool thermalEnabled() const { return cfg_.thermal.enabled; }

    /** Whether `die` sits in the configured degraded-die region. */
    bool dieFaulty(uint32_t die) const;

    /** Whether byte offset `offset` falls in the degraded LBA window. */
    bool offsetFaulty(uint64_t offset) const;

    /** Result of pushing one page read through the media-error model. */
    struct ReadOutcome
    {
        SimTime service = 0; //!< total die busy time incl. retries
        uint32_t retries = 0; //!< extra attempts taken
        bool uncorrectable = false; //!< ladder exhausted
        bool remap = false; //!< grown bad block: FTL should remap
    };

    /**
     * Evaluate the retry ladder for one page read.
     *
     * @param offset byte offset of the page (degraded-window test)
     * @param die die serving the read (degraded-die test)
     * @param base_service healthy (jittered) tR for one attempt
     */
    ReadOutcome readOutcome(uint64_t offset, uint32_t die,
                            SimTime base_service);

    /**
     * Latency-spike multiplier at time `now`, applied to every die
     * operation. Advances the spike schedule as time passes; 1.0 when
     * spikes are disabled or no window is active.
     */
    double serviceMultiplier(SimTime now);

    /** Record `busy_ns` of program activity (heats the device). */
    void noteProgram(SimTime now, SimTime busy_ns);

    /** Thermal program-latency multiplier at time `now`. */
    double programMultiplier(SimTime now);

    /** True while the device is thermally throttled. */
    bool throttling() const { return throttling_; }

    const DeviceFaultStats &stats() const { return stats_; }

    /** Device-owned counter hook (the SSD adds remap counts here). */
    DeviceFaultStats &mutableStats() { return stats_; }

  private:
    /** Advance spike windows up to `now` (draws RNG per window). */
    void advanceSpikes(SimTime now);

    /** Decay heat to `now`; accounts throttle time transitions. */
    void updateHeat(SimTime now);

    DeviceFaultConfig cfg_;
    uint32_t num_dies_;
    uint64_t capacity_;
    Rng rng_;

    // Latency-spike schedule.
    SimTime next_spike_ = -1; //!< start of the next window (-1 = unset)
    SimTime spike_until_ = -1; //!< end of the active/last window

    // Thermal accumulator.
    double heat_ = 0.0;
    SimTime heat_updated_ = 0;
    bool throttling_ = false;

    DeviceFaultStats stats_;
};

} // namespace isol::fault

#endif // ISOL_FAULT_MEDIA_MODEL_HH
