/**
 * @file
 * Host CPU model.
 *
 * A CpuCore executes work items FIFO; every I/O submission and completion
 * charges CPU time here. This makes the paper's D1 effects — CPU
 * saturation at ~16 LC-apps per core, per-knob cycle overheads, latency
 * inflation past saturation — emergent queueing behaviour instead of
 * hard-coded outcomes.
 *
 * Context switches are counted when consecutive work items belong to
 * different owners (tasks), mirroring the paper's `fio`-reported context
 * switches per I/O.
 */

#ifndef ISOL_HOST_CPU_HH
#define ISOL_HOST_CPU_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/simulator.hh"

namespace isol::host
{

/** Identifies the task a work item belongs to (for context switches). */
using TaskId = uint32_t;

/** Owner id used for kernel work not attributable to a task. */
constexpr TaskId kKernelTask = UINT32_MAX;

/**
 * One logical CPU core: a serial FIFO work server.
 */
class CpuCore
{
  public:
    CpuCore(sim::Simulator &sim, uint32_t id) : sim_(sim), id_(id) {}

    CpuCore(const CpuCore &) = delete;
    CpuCore &operator=(const CpuCore &) = delete;

    uint32_t id() const { return id_; }

    /**
     * Enqueue `duration` ns of CPU work for `owner`; `done` fires when the
     * work retires. Returns the retire time.
     */
    SimTime
    charge(TaskId owner, SimTime duration, sim::SmallCallback done)
    {
        if (duration < 0)
            panic("CpuCore::charge: negative duration");
        SimTime start = std::max(sim_.now(), busy_until_);
        busy_until_ = start + duration;
        busy_ns_ += duration;
        ++work_items_;
        if (owner != last_owner_) {
            ++context_switches_;
            last_owner_ = owner;
        }
        sim_.at(busy_until_, std::move(done));
        return busy_until_;
    }

    /** Time at which currently queued work drains. */
    SimTime busyUntil() const { return busy_until_; }

    /** Queueing delay a work item enqueued now would see. */
    SimTime
    backlog() const
    {
        return busy_until_ > sim_.now() ? busy_until_ - sim_.now() : 0;
    }

    /** Cumulative busy time. */
    SimTime busyNs() const { return busy_ns_; }

    /** Work items executed (including queued). */
    uint64_t workItems() const { return work_items_; }

    /** Owner-transition count (proxy for context switches). */
    uint64_t contextSwitches() const { return context_switches_; }

  private:
    sim::Simulator &sim_;
    uint32_t id_;
    SimTime busy_until_ = 0;
    SimTime busy_ns_ = 0;
    uint64_t work_items_ = 0;
    uint64_t context_switches_ = 0;
    TaskId last_owner_ = kKernelTask;
};

/**
 * A set of cores with simple static placement: tasks are assigned to the
 * least-loaded core at creation time (ties broken by index), mimicking a
 * pinned-thread fio setup.
 */
class CpuSet
{
  public:
    CpuSet(sim::Simulator &sim, uint32_t num_cores)
    {
        if (num_cores == 0)
            fatal("CpuSet: need at least one core");
        cores_.reserve(num_cores);
        for (uint32_t i = 0; i < num_cores; ++i)
            cores_.push_back(std::make_unique<CpuCore>(sim, i));
    }

    uint32_t numCores() const { return static_cast<uint32_t>(cores_.size()); }

    CpuCore &core(uint32_t i) { return *cores_.at(i); }
    const CpuCore &core(uint32_t i) const { return *cores_.at(i); }

    /** Round-robin task placement (deterministic). */
    CpuCore &
    assign()
    {
        CpuCore &picked = *cores_[next_];
        next_ = (next_ + 1) % cores_.size();
        return picked;
    }

    /** Sum of busy ns over all cores. */
    SimTime
    totalBusyNs() const
    {
        SimTime total = 0;
        for (const auto &core : cores_)
            total += core->busyNs();
        return total;
    }

    /** Sum of context switches over all cores. */
    uint64_t
    totalContextSwitches() const
    {
        uint64_t total = 0;
        for (const auto &core : cores_)
            total += core->contextSwitches();
        return total;
    }

  private:
    std::vector<std::unique_ptr<CpuCore>> cores_;
    size_t next_ = 0;
};

} // namespace isol::host

#endif // ISOL_HOST_CPU_HH
