/**
 * @file
 * Storage-engine CPU cost models (io_uring / libaio, as used by fio in
 * the paper) — how much host CPU one I/O costs at a given queue depth.
 *
 * The model splits per-I/O cost into a fixed per-I/O part and a syscall
 * part amortised over the effective batch size, so QD1 latency-critical
 * apps pay the full syscall on both submit and reap while deep-queue
 * batch apps amortise it — reproducing the paper's observation that one
 * core saturates at ~16 QD1 LC-apps yet drives ~2.5 M batched IOPS.
 */

#ifndef ISOL_HOST_ENGINE_HH
#define ISOL_HOST_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace isol::host
{

/** CPU cost parameters of a storage engine. */
struct EngineConfig
{
    std::string name = "io_uring";
    SimTime per_io_cost = nsToNs(3700); //!< fixed CPU ns per I/O
    SimTime syscall_cost = nsToNs(2800); //!< per enter/reap syscall
    uint32_t max_batch = 32; //!< max I/Os amortising one syscall

    /** Submission-side CPU for one I/O at queue depth `qd`. */
    SimTime
    submitCost(uint32_t qd) const
    {
        uint32_t batch = std::clamp(qd, 1u, max_batch);
        return per_io_cost / 2 + syscall_cost / batch;
    }

    /** Completion-side CPU for one I/O at queue depth `qd`. */
    SimTime
    completeCost(uint32_t qd) const
    {
        uint32_t batch = std::clamp(qd, 1u, max_batch);
        return per_io_cost - per_io_cost / 2 + syscall_cost / batch;
    }
};

/** io_uring engine (paper §IV-§V). */
inline EngineConfig
ioUringEngine()
{
    return EngineConfig{"io_uring", nsToNs(3700), nsToNs(2800), 32};
}

/** libaio engine (paper §VI; slightly costlier per I/O). */
inline EngineConfig
libaioEngine()
{
    return EngineConfig{"libaio", nsToNs(4100), nsToNs(3100), 16};
}

} // namespace isol::host

#endif // ISOL_HOST_ENGINE_HH
