// isol: domain(coord)
#include "isolbench/d1_overhead.hh"

#include "common/logging.hh"

namespace isol::isolbench
{

void
applyOverheadKnobDefaults(ScenarioConfig &cfg)
{
    if (cfg.knob == Knob::kBfq)
        cfg.bfq_params.slice_idle = 0; // paper §V disables slice_idle
    if (cfg.knob == Knob::kIoCost)
        cfg.iocost_achievable_model = false; // beyond-saturation model
}

void
applyNoopGroupLimits(Scenario &scenario)
{
    Knob knob = scenario.config().knob;
    for (uint32_t i = 0; i < scenario.numApps(); ++i) {
        cgroup::Cgroup &cg = scenario.appGroup(i);
        for (uint32_t dev = 0; dev < scenario.numDevices(); ++dev) {
            std::string dev_prefix = strCat("259:", dev, " ");
            if (knob == Knob::kIoMax) {
                scenario.tree().writeFile(
                    cg, "io.max",
                    dev_prefix + "rbps=107374182400 wbps=107374182400");
            } else if (knob == Knob::kIoLatency) {
                // Multi-second target: never violated.
                scenario.tree().writeFile(cg, "io.latency",
                                          dev_prefix + "target=3000000");
            }
        }
    }
}

LcScalingResult
runLcScaling(Knob knob, uint32_t apps, const D1Options &opts)
{
    ScenarioConfig cfg;
    cfg.name = strCat("d1-lc-", knobName(knob), "-", apps);
    cfg.knob = knob;
    cfg.num_cores = 1;
    cfg.num_devices = 1;
    cfg.duration = opts.duration;
    cfg.warmup = opts.warmup;
    cfg.seed = opts.seed;
    applyOverheadKnobDefaults(cfg);

    Scenario scenario(cfg);
    for (uint32_t i = 0; i < apps; ++i) {
        workload::JobSpec spec =
            workload::lcApp(strCat("lc", i), cfg.duration);
        scenario.addApp(std::move(spec), strCat("lc", i));
    }
    applyNoopGroupLimits(scenario);
    scenario.run();

    LcScalingResult result;
    result.knob = knob;
    result.apps = apps;
    stats::Histogram merged;
    for (uint32_t i = 0; i < apps; ++i)
        merged.merge(scenario.app(i).latency());
    result.p50_us = nsToUs(merged.percentile(50));
    result.p99_us = nsToUs(merged.percentile(99));
    result.mean_us = merged.mean() / 1e3;
    result.cpu_util = scenario.cpuUtilization();
    result.ctx_per_io = scenario.contextSwitchesPerIo();
    for (auto [value, prob] : merged.cdf())
        result.cdf.emplace_back(nsToUs(value), prob);
    return result;
}

BatchScalingResult
runBatchScaling(Knob knob, uint32_t apps, uint32_t ssds,
                const D1Options &opts)
{
    ScenarioConfig cfg;
    cfg.name = strCat("d1-batch-", knobName(knob), "-", apps, "x", ssds);
    cfg.knob = knob;
    cfg.num_cores = 10;
    cfg.num_devices = ssds;
    cfg.duration = opts.duration;
    cfg.warmup = opts.warmup;
    cfg.seed = opts.seed;
    applyOverheadKnobDefaults(cfg);

    Scenario scenario(cfg);
    for (uint32_t i = 0; i < apps; ++i) {
        workload::JobSpec spec =
            workload::batchApp(strCat("batch", i), cfg.duration);
        scenario.addApp(std::move(spec), strCat("batch", i), i % ssds);
    }
    applyNoopGroupLimits(scenario);
    scenario.run();

    BatchScalingResult result;
    result.knob = knob;
    result.apps = apps;
    result.ssds = ssds;
    result.agg_gibs = scenario.aggregateGiBs();
    result.cpu_util = scenario.cpuUtilization();
    return result;
}

} // namespace isol::isolbench
