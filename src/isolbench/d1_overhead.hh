/**
 * @file
 * Desideratum D1 — isolation overhead and scalability (paper §V).
 *
 * Two experiment families:
 *  - Q1 (Fig. 3): latency overhead and CPU saturation when scaling LC-apps
 *    (4 KiB randread QD1) on a single core from 1 to 256;
 *  - Q2 (Fig. 4): bandwidth and CPU scalability when scaling batch-apps
 *    (4 KiB randread QD256) from 1 to 17 on 1 and 7 SSDs with 10 cores.
 *
 * Knobs are configured so the control mechanism itself never throttles
 * (§V): io.max limits and io.latency targets far beyond need, an io.cost
 * model beyond device saturation, BFQ slice_idle disabled.
 */
// isol: domain(coord)

#ifndef ISOL_ISOLBENCH_D1_OVERHEAD_HH
#define ISOL_ISOLBENCH_D1_OVERHEAD_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "isolbench/scenario.hh"

namespace isol::isolbench
{

/** Common options for the D1 runs. */
struct D1Options
{
    SimTime duration = msToNs(1500);
    SimTime warmup = msToNs(300);
    uint64_t seed = 1;
};

/** Result of one LC-app scaling point (one knob, one app count). */
struct LcScalingResult
{
    Knob knob;
    uint32_t apps;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;
    double cpu_util = 0.0; //!< single core, [0,1]
    double ctx_per_io = 0.0;
    /** Merged completion-latency CDF across apps (us, probability). */
    std::vector<std::pair<double, double>> cdf;
};

/**
 * Run `apps` LC-apps on a single core under `knob` (Fig. 3 point).
 */
LcScalingResult runLcScaling(Knob knob, uint32_t apps,
                             const D1Options &opts = {});

/** Result of one batch-app scaling point. */
struct BatchScalingResult
{
    Knob knob;
    uint32_t apps;
    uint32_t ssds;
    double agg_gibs = 0.0;
    double cpu_util = 0.0; //!< over 10 cores, [0,1]
};

/**
 * Run `apps` batch-apps over `ssds` SSDs (round-robin) with 10 cores
 * under `knob` (Fig. 4 point).
 */
BatchScalingResult runBatchScaling(Knob knob, uint32_t apps, uint32_t ssds,
                                   const D1Options &opts = {});

/**
 * Apply the D1 "knob must not throttle" configuration to a scenario
 * config (slice_idle=0 etc.) — exposed for reuse by other runners.
 */
void applyOverheadKnobDefaults(ScenarioConfig &cfg);

/**
 * Give every app group a no-op limit for its knob (io.max beyond
 * saturation, io.latency multi-second target). Must run after apps are
 * added and before run().
 */
void applyNoopGroupLimits(Scenario &scenario);

} // namespace isol::isolbench

#endif // ISOL_ISOLBENCH_D1_OVERHEAD_HH
