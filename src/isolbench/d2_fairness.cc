// isol: domain(coord)
#include "isolbench/d2_fairness.hh"

#include "common/logging.hh"
#include "isolbench/supervisor.hh"
#include "isolbench/sweep.hh"
#include "stats/fairness.hh"
#include "stats/summary.hh"

namespace isol::isolbench
{

const char *
fairnessMixName(FairnessMix mix)
{
    switch (mix) {
      case FairnessMix::kUniform: return "uniform";
      case FairnessMix::kReqSize: return "req-size";
      case FairnessMix::kPattern: return "access-pattern";
      case FairnessMix::kReadWrite: return "read-write";
    }
    return "?";
}

void
applyFairnessWeights(Scenario &scenario,
                     const std::vector<std::string> &group_names,
                     Knob knob)
{
    auto n = static_cast<uint32_t>(group_names.size());
    uint64_t weight_sum = 0;
    for (uint32_t g = 0; g < n; ++g)
        weight_sum += g + 1;

    for (uint32_t g = 0; g < n; ++g) {
        cgroup::Cgroup &cg = scenario.group(group_names[g]);
        uint32_t weight = g + 1;
        switch (knob) {
          case Knob::kNone:
          case Knob::kKyber: // no cgroup weight knob
            break;
          case Knob::kIoCost:
            // io.weight range 1-10000: scale by 100 for headroom.
            scenario.tree().writeFile(cg, "io.weight",
                                      strCat(weight * 100));
            break;
          case Knob::kBfq:
            // io.bfq.weight range 1-1000: scale by 50 (16 * 50 = 800).
            scenario.tree().writeFile(cg, "io.bfq.weight",
                                      strCat(weight * 50));
            break;
          case Knob::kMqDeadline: {
            // Approximate weights with the three priority classes.
            const char *cls = "best-effort";
            if (weight * 3 <= n)
                cls = "idle";
            else if (weight * 3 > 2 * n)
                cls = "promote-to-rt";
            scenario.tree().writeFile(cg, "io.prio.class", cls);
            break;
          }
          case Knob::kIoLatency: {
            // Lower target = higher priority: target ~ 1/weight.
            uint64_t target_us = 1200 / weight;
            scenario.tree().writeFile(
                cg, "io.latency", strCat("259:0 target=", target_us));
            break;
          }
          case Knob::kIoMax: {
            // maximum = weight/total * max read bandwidth (paper §VI-A).
            double max_read_bw = 2.8 * static_cast<double>(GiB);
            auto rbps = static_cast<uint64_t>(
                max_read_bw * weight / static_cast<double>(weight_sum));
            scenario.tree().writeFile(cg, "io.max",
                                      strCat("259:0 rbps=", rbps));
            break;
          }
        }
    }
}

FairnessResult
runFairness(Knob knob, uint32_t cgroups, bool weighted, FairnessMix mix,
            const FairnessOptions &opts)
{
    if (cgroups == 0)
        fatal("runFairness: need at least one cgroup");
    if (opts.repeats == 0)
        fatal("runFairness: need at least one repeat");

    FairnessResult result;
    result.knob = knob;
    result.cgroups = cgroups;
    result.weighted = weighted;
    result.mix = mix;

    /** One repeat's measurements, collected by repeat index. */
    struct RepeatResult
    {
        double jain = 0.0;
        double agg_gibs = 0.0;
        std::vector<double> group_bw;
    };

    std::string point_name = strCat("d2-", knobName(knob), "-", cgroups,
                                    weighted ? "-weighted-" : "-uniform-",
                                    fairnessMixName(mix));

    // Every repeat owns its whole simulated system and differs only in
    // seed, so the multi-seed std-dev loop fans out across the sweep
    // pool; the summaries are folded in repeat order afterwards to keep
    // the floating-point results identical to a sequential run. The
    // supervised map adds watchdog/budget guards and retries per repeat
    // (partial repeat statistics would silently skew the std-devs, so a
    // repeat that exhausts its retries fails the whole point).
    // isol: parallel
    std::vector<RepeatResult> reps = supervisor::guardedMap<RepeatResult>(
        strCat(point_name, "-repeats"), opts.repeats, [&](size_t rep) {
        ScenarioConfig cfg;
        cfg.name = point_name;
        cfg.knob = knob;
        cfg.num_cores = opts.num_cores;
        cfg.num_devices = 1;
        cfg.duration = opts.duration;
        cfg.warmup = opts.warmup;
        cfg.seed = opts.seed + rep * 7717;
        // Paper SS III: the SS VI isolation experiments use libaio
        // (fio + io_uring misbehaved when throttled).
        cfg.engine = host::libaioEngine();
        cfg.precondition = mix == FairnessMix::kReadWrite;
        // Fairness experiments use the achievable io.cost model (§VI-A).
        cfg.iocost_achievable_model = true;

        Scenario scenario(cfg);
        std::vector<std::string> group_names;
        for (uint32_t g = 0; g < cgroups; ++g) {
            std::string group = strCat("cg", g);
            group_names.push_back(group);
            bool alt = g >= cgroups / 2; // second half gets the variant
            for (uint32_t a = 0; a < opts.apps_per_cgroup; ++a) {
                workload::JobSpec spec = workload::batchApp(
                    strCat(group, "-app", a), cfg.duration);
                switch (mix) {
                  case FairnessMix::kUniform:
                    break;
                  case FairnessMix::kReqSize:
                    if (alt)
                        spec.block_size = 256 * KiB;
                    break;
                  case FairnessMix::kPattern:
                    if (alt)
                        spec.pattern = AccessPattern::kSequential;
                    break;
                  case FairnessMix::kReadWrite:
                    if (alt) {
                        spec.op = OpType::kWrite;
                        spec.read_fraction = 0.0;
                    }
                    break;
                }
                scenario.addApp(std::move(spec), group);
            }
        }

        if (opts.adversary != workload::AdversaryKind::kNone)
            scenario.addAdversary(opts.adversary, "adv");

        if (weighted) {
            applyFairnessWeights(scenario, group_names, knob);
        } else if (knob == Knob::kIoMax) {
            // Uniform io.max: equal fractions of the read bandwidth.
            for (const std::string &name : group_names) {
                auto rbps = static_cast<uint64_t>(
                    2.8 * static_cast<double>(GiB) / cgroups);
                scenario.tree().writeFile(scenario.group(name), "io.max",
                                          strCat("259:0 rbps=", rbps,
                                                 " wbps=", rbps));
            }
        } else if (knob == Knob::kIoLatency) {
            // Uniform targets for every group.
            for (const std::string &name : group_names) {
                scenario.tree().writeFile(scenario.group(name),
                                          "io.latency",
                                          "259:0 target=300");
            }
        }

        scenario.run();

        // Per-cgroup bandwidth. The adversary tenant (appended after the
        // measured groups) is excluded from the fairness statistics.
        RepeatResult out;
        out.group_bw.assign(cgroups, 0.0);
        uint32_t measured = cgroups * opts.apps_per_cgroup;
        for (uint32_t i = 0; i < measured; ++i)
            out.group_bw[i / opts.apps_per_cgroup] += scenario.appGiBs(i);

        std::vector<double> weights(cgroups, 1.0);
        if (weighted) {
            for (uint32_t g = 0; g < cgroups; ++g)
                weights[g] = static_cast<double>(g + 1);
        }
        out.jain = stats::weightedJainIndex(out.group_bw, weights);
        out.agg_gibs = scenario.aggregateGiBs();
        return out;
    });

    stats::Summary jain_summary;
    stats::Summary agg_summary;
    for (const RepeatResult &rep : reps) {
        jain_summary.add(rep.jain);
        agg_summary.add(rep.agg_gibs);
    }
    result.per_group_gibs = reps.back().group_bw;

    result.jain_mean = jain_summary.mean();
    result.jain_std = jain_summary.stddev();
    result.agg_gibs_mean = agg_summary.mean();
    return result;
}

} // namespace isol::isolbench
