/**
 * @file
 * Desideratum D2 — proportional fairness (paper §VI-A, Figs. 5 and 6).
 *
 * Fairness is Jain's index over per-cgroup bandwidth, weight-normalised.
 * Each cgroup runs four batch-apps (enough to saturate the SSD). Cases:
 *  - uniform weights while scaling cgroups 2..16 (Q3);
 *  - linearly increasing weights (Q4), mapped per knob: io.weight
 *    (io.cost), io.bfq.weight (BFQ), io.prio.class tiers (MQ-DL),
 *    latency targets (io.latency), and bandwidth fractions (io.max);
 *  - non-uniform workloads (Q5): half the cgroups use 256 KiB requests,
 *    sequential access, or 4 KiB random writes (GC interference).
 */
// isol: domain(coord)

#ifndef ISOL_ISOLBENCH_D2_FAIRNESS_HH
#define ISOL_ISOLBENCH_D2_FAIRNESS_HH

#include <cstdint>
#include <vector>

#include "isolbench/scenario.hh"

namespace isol::isolbench
{

/** Workload mix across cgroups. */
enum class FairnessMix : uint8_t
{
    kUniform, //!< all groups: 4 KiB random reads
    kReqSize, //!< half the groups use 256 KiB requests
    kPattern, //!< half the groups read sequentially
    kReadWrite, //!< half the groups write (GC interference)
};

const char *fairnessMixName(FairnessMix mix);

/** Options for one fairness experiment. */
struct FairnessOptions
{
    uint32_t apps_per_cgroup = 4;
    uint32_t num_cores = 20;
    uint32_t repeats = 3; //!< paper uses 5; runs are averaged
    SimTime duration = msToNs(1500);
    SimTime warmup = msToNs(300);
    uint64_t seed = 1;

    /**
     * Optional chaos tenant: when not kNone, an extra cgroup "adv" runs
     * this adversary next to the measured groups (its bandwidth is
     * excluded from the fairness statistics — the question is how well
     * the knob protects the well-behaved groups from it).
     */
    workload::AdversaryKind adversary = workload::AdversaryKind::kNone;
};

/** Aggregated result over repeats. */
struct FairnessResult
{
    Knob knob;
    uint32_t cgroups = 0;
    bool weighted = false;
    FairnessMix mix = FairnessMix::kUniform;
    double jain_mean = 0.0;
    double jain_std = 0.0;
    double agg_gibs_mean = 0.0;
    /** Per-cgroup mean bandwidth (GiB/s), last repeat. */
    std::vector<double> per_group_gibs;
};

/**
 * Run one fairness case: `cgroups` groups under `knob`, optionally with
 * linearly increasing weights, with the given workload mix.
 */
FairnessResult runFairness(Knob knob, uint32_t cgroups, bool weighted,
                           FairnessMix mix,
                           const FairnessOptions &opts = {});

/**
 * Configure per-group "weights" for a knob as the paper does (§VI-A).
 * weight of group g (0-based) is g+1. Exposed for tests.
 */
void applyFairnessWeights(Scenario &scenario,
                          const std::vector<std::string> &group_names,
                          Knob knob);

} // namespace isol::isolbench

#endif // ISOL_ISOLBENCH_D2_FAIRNESS_HH
