// isol: domain(coord)
#include "isolbench/d3_tradeoffs.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isolbench/supervisor.hh"
#include "isolbench/sweep.hh"

namespace isol::isolbench
{

const char *
priorityAppKindName(PriorityAppKind kind)
{
    return kind == PriorityAppKind::kBatch ? "batch" : "lc";
}

const char *
beWorkloadName(BeWorkload be)
{
    switch (be) {
      case BeWorkload::kRand4k: return "rand-4k";
      case BeWorkload::kSeq4k: return "seq-4k";
      case BeWorkload::kRand256k: return "rand-256k";
      case BeWorkload::kRandWrite4k: return "randwrite-4k";
    }
    return "?";
}

namespace
{

/** One knob configuration applied to the (priority, BE) group pair. */
struct KnobSetting
{
    std::string label;
    std::function<void(Scenario &, cgroup::Cgroup &, cgroup::Cgroup &)>
        apply;
};

workload::JobSpec
beSpec(BeWorkload be, SimTime duration, uint32_t index)
{
    workload::JobSpec spec =
        workload::beApp(strCat("be", index), duration);
    switch (be) {
      case BeWorkload::kRand4k:
        break;
      case BeWorkload::kSeq4k:
        spec.pattern = AccessPattern::kSequential;
        break;
      case BeWorkload::kRand256k:
        spec.block_size = 256 * KiB;
        spec.iodepth = 64;
        break;
      case BeWorkload::kRandWrite4k:
        spec.op = OpType::kWrite;
        spec.read_fraction = 0.0;
        break;
    }
    return spec;
}

/** Build the per-knob configuration sweep (paper §VI-B). */
std::vector<KnobSetting>
buildSweep(Knob knob, PriorityAppKind kind, uint32_t coarsen)
{
    std::vector<KnobSetting> sweep;
    uint32_t step_mult = std::max(1u, coarsen);

    switch (knob) {
      case Knob::kNone:
      case Knob::kKyber: {
        // No cgroup configuration to sweep: a single point.
        sweep.push_back({knobName(knob), [](Scenario &, cgroup::Cgroup &,
                                            cgroup::Cgroup &) {}});
        break;
      }
      case Knob::kMqDeadline: {
        // All io.prio.class permutations between priority and BE app.
        const char *classes[] = {"promote-to-rt", "best-effort", "idle"};
        for (const char *prio_cls : classes) {
            for (const char *be_cls : classes) {
                sweep.push_back(
                    {strCat("prio=", prio_cls, ",be=", be_cls),
                     [prio_cls, be_cls](Scenario &s, cgroup::Cgroup &prio,
                                        cgroup::Cgroup &be) {
                         s.tree().writeFile(prio, "io.prio.class",
                                            prio_cls);
                         s.tree().writeFile(be, "io.prio.class", be_cls);
                     }});
            }
        }
        break;
      }
      case Knob::kBfq: {
        // io.bfq.weight 1..1000 in steps of 25 for the priority app.
        for (uint32_t w = 1; w <= 1000; w += 25 * step_mult) {
            sweep.push_back(
                {strCat("weight=", w),
                 [w](Scenario &s, cgroup::Cgroup &prio, cgroup::Cgroup &) {
                     s.tree().writeFile(prio, "io.bfq.weight", strCat(w));
                 }});
        }
        break;
      }
      case Knob::kIoLatency: {
        // Priority target 75 us .. 1.2 ms in steps of 25 us.
        for (uint64_t t = 75; t <= 1200; t += 25 * step_mult) {
            sweep.push_back(
                {strCat("target=", t, "us"),
                 [t](Scenario &s, cgroup::Cgroup &prio, cgroup::Cgroup &) {
                     s.tree().writeFile(prio, "io.latency",
                                        strCat("259:0 target=", t));
                 }});
        }
        break;
      }
      case Knob::kIoMax: {
        // BE-app maximum 80 MiB/s .. 2.3 GiB/s in steps of 80 MiB/s,
        // plus the uncapped end of the spectrum.
        for (uint64_t mib = 80; mib <= 2355; mib += 80 * step_mult) {
            uint64_t bps = mib * MiB;
            sweep.push_back(
                {strCat("be-max=", mib, "MiB/s"),
                 [bps](Scenario &s, cgroup::Cgroup &, cgroup::Cgroup &be) {
                     s.tree().writeFile(be, "io.max",
                                        strCat("259:0 rbps=", bps,
                                               " wbps=", bps));
                 }});
        }
        sweep.push_back({"be-max=max",
                         [](Scenario &s, cgroup::Cgroup &,
                            cgroup::Cgroup &be) {
                             s.tree().writeFile(
                                 be, "io.max",
                                 "259:0 rbps=max wbps=max");
                         }});
        break;
      }
      case Knob::kIoCost: {
        // io.weight=10000 for the priority app; sweep qos min (batch)
        // and additionally the latency target (LC).
        if (kind == PriorityAppKind::kBatch) {
            for (uint32_t min = 10; min <= 100; min += 10 * step_mult) {
                sweep.push_back(
                    {strCat("qos-min=", min),
                     [min](Scenario &s, cgroup::Cgroup &prio,
                           cgroup::Cgroup &) {
                         s.tree().writeFile(prio, "io.weight", "10000");
                         cgroup::IoCostQos qos = paperCostQos();
                         qos.rpct = 99.0;
                         qos.rlat = usToNs(500);
                         qos.wpct = 99.0;
                         qos.wlat = usToNs(1000);
                         qos.vrate_min = min;
                         s.tree().setCostQos(0, qos);
                     }});
            }
        } else {
            for (uint64_t lat = 100; lat <= 1000; lat += 100 * step_mult) {
                for (uint32_t min : {25u, 50u, 75u}) {
                    sweep.push_back(
                        {strCat("qos-min=", min, ",rlat=", lat, "us"),
                         [min, lat](Scenario &s, cgroup::Cgroup &prio,
                                    cgroup::Cgroup &) {
                             s.tree().writeFile(prio, "io.weight",
                                                "10000");
                             cgroup::IoCostQos qos = paperCostQos();
                             qos.rpct = 99.0;
                             qos.rlat = usToNs(static_cast<int64_t>(lat));
                             qos.vrate_min = static_cast<double>(min);
                             s.tree().setCostQos(0, qos);
                         }});
                }
            }
        }
        break;
      }
    }
    return sweep;
}

} // namespace

std::vector<TradeoffPoint>
runTradeoffSweep(Knob knob, PriorityAppKind kind, BeWorkload be,
                 const TradeoffOptions &opts)
{
    std::vector<KnobSetting> settings = buildSweep(knob, kind,
                                                   opts.coarsen);

    // io.latency acts through 500 ms windows (one QD halving each), so
    // its configurations need several seconds to reach their operating
    // point; the other knobs settle within milliseconds.
    SimTime duration = opts.duration;
    SimTime warmup = opts.warmup;
    if (knob == Knob::kIoLatency) {
        duration = std::max<SimTime>(duration, secToNs(int64_t{6}));
        warmup = duration * 2 / 3;
    }

    // Each configuration is an independent simulation; fan the grid out
    // across the sweep pool, results landing in config order. The
    // supervised map adds watchdog/budget guards and retries per
    // configuration.
    // isol: parallel
    return supervisor::guardedMap<TradeoffPoint>(
        strCat("d3-", knobName(knob), "-", priorityAppKindName(kind),
               "-", beWorkloadName(be)),
        settings.size(), [&](size_t idx) {
        const KnobSetting &setting = settings[idx];
        ScenarioConfig cfg;
        cfg.name = strCat("d3-", knobName(knob), "-",
                          priorityAppKindName(kind), "-",
                          beWorkloadName(be), "-", setting.label);
        cfg.knob = knob;
        cfg.num_cores = opts.num_cores;
        cfg.num_devices = 1;
        cfg.duration = duration;
        cfg.warmup = warmup;
        cfg.seed = opts.seed;
        // Paper SS III: SS VI experiments use libaio when throttling.
        cfg.engine = host::libaioEngine();
        cfg.precondition = be == BeWorkload::kRandWrite4k;
        cfg.iocost_achievable_model = true;

        Scenario scenario(cfg);

        // Priority app.
        uint32_t prio_idx;
        if (kind == PriorityAppKind::kBatch) {
            workload::JobSpec spec =
                workload::batchApp("prio", cfg.duration);
            prio_idx = scenario.addApp(std::move(spec), "prio");
        } else {
            workload::JobSpec spec = workload::lcApp("prio", cfg.duration);
            prio_idx = scenario.addApp(std::move(spec), "prio");
        }
        // BE-apps (all in one best-effort cgroup).
        for (uint32_t i = 0; i < opts.num_be_apps; ++i)
            scenario.addApp(beSpec(be, cfg.duration, i), "be");

        setting.apply(scenario, scenario.appGroup(prio_idx),
                      scenario.group("be"));
        scenario.run();

        TradeoffPoint point;
        point.config = setting.label;
        point.agg_gibs = scenario.aggregateGiBs();
        point.priority_gibs = scenario.appGiBs(prio_idx);
        point.priority_p99_us =
            nsToUs(scenario.app(prio_idx).latency().percentile(99));
        return point;
    });
}

} // namespace isol::isolbench
