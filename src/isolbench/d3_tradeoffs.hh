/**
 * @file
 * Desideratum D3 — prioritization/utilization trade-offs
 * (paper §VI-B, Fig. 7).
 *
 * One priority app (a batch-app wanting bandwidth, or an LC-app wanting
 * low P99) runs against 4 BE-apps that saturate the SSD on their own.
 * For each knob we sweep its configuration space and emit
 * (aggregate bandwidth, priority-app metric) points — the Pareto fronts
 * of Fig. 7. BE-app workload variants stress flash idiosyncrasies:
 * random/sequential 4 KiB reads, 256 KiB reads, and 4 KiB writes.
 */
// isol: domain(coord)

#ifndef ISOL_ISOLBENCH_D3_TRADEOFFS_HH
#define ISOL_ISOLBENCH_D3_TRADEOFFS_HH

#include <string>
#include <vector>

#include "isolbench/scenario.hh"

namespace isol::isolbench
{

/** What the prioritized app is. */
enum class PriorityAppKind : uint8_t
{
    kBatch, //!< wants bandwidth (Fig. 7a-d)
    kLc, //!< wants low P99 latency (Fig. 7e-h)
};

const char *priorityAppKindName(PriorityAppKind kind);

/** BE-app workload variants (Fig. 7b/c/d line styles). */
enum class BeWorkload : uint8_t
{
    kRand4k,
    kSeq4k,
    kRand256k,
    kRandWrite4k,
};

const char *beWorkloadName(BeWorkload be);

/** Options for a trade-off sweep. */
struct TradeoffOptions
{
    uint32_t num_be_apps = 4;
    uint32_t num_cores = 10;
    SimTime duration = msToNs(1200);
    SimTime warmup = msToNs(300);
    uint64_t seed = 1;
    /** Sweep-resolution divisor: 1 = paper-resolution, 2 = half, ... */
    uint32_t coarsen = 1;
};

/** One point of a Pareto sweep. */
struct TradeoffPoint
{
    std::string config; //!< knob setting, e.g. "weight=250"
    double agg_gibs = 0.0; //!< aggregated bandwidth (x axis)
    double priority_gibs = 0.0; //!< batch priority app bandwidth
    double priority_p99_us = 0.0; //!< LC priority app P99
};

/**
 * Sweep `knob`'s configuration space for the given priority-app kind and
 * BE workload, returning one point per configuration.
 */
std::vector<TradeoffPoint> runTradeoffSweep(
    Knob knob, PriorityAppKind kind, BeWorkload be,
    const TradeoffOptions &opts = {});

} // namespace isol::isolbench

#endif // ISOL_ISOLBENCH_D3_TRADEOFFS_HH
