// isol: domain(coord)
#include "isolbench/d4_bursts.hh"

#include <algorithm>

#include "common/logging.hh"

namespace isol::isolbench
{

namespace
{

/** Apply the strongest-prioritization configuration for each knob. */
void
applyPriorityConfig(Scenario &scenario, Knob knob, PriorityAppKind kind,
                    cgroup::Cgroup &prio, cgroup::Cgroup &be)
{
    cgroup::CgroupTree &tree = scenario.tree();
    switch (knob) {
      case Knob::kNone:
      case Knob::kKyber: // reads are implicitly prioritized, no knob
        break;
      case Knob::kMqDeadline:
        tree.writeFile(prio, "io.prio.class", "promote-to-rt");
        tree.writeFile(be, "io.prio.class", "idle");
        break;
      case Knob::kBfq:
        tree.writeFile(prio, "io.bfq.weight", "1000");
        tree.writeFile(be, "io.bfq.weight", "1");
        break;
      case Knob::kIoMax:
        tree.writeFile(be, "io.max",
                       strCat("259:0 rbps=", 300 * MiB,
                              " wbps=", 300 * MiB));
        break;
      case Knob::kIoLatency: {
        uint64_t target_us = kind == PriorityAppKind::kLc ? 100 : 300;
        tree.writeFile(prio, "io.latency",
                       strCat("259:0 target=", target_us));
        break;
      }
      case Knob::kIoCost: {
        tree.writeFile(prio, "io.weight", "10000");
        cgroup::IoCostQos qos = paperCostQos();
        qos.rpct = 99.0;
        qos.rlat = usToNs(200);
        qos.vrate_min = 25.0;
        tree.setCostQos(0, qos);
        break;
      }
    }
}

} // namespace

BurstResult
runBurstResponse(Knob knob, PriorityAppKind kind, const BurstOptions &opts)
{
    ScenarioConfig cfg;
    cfg.name = strCat("d4-", knobName(knob), "-",
                      priorityAppKindName(kind));
    cfg.knob = knob;
    cfg.num_cores = opts.num_cores;
    cfg.num_devices = 1;
    cfg.duration = opts.duration;
    cfg.warmup = msToNs(100);
    cfg.seed = opts.seed;
    // Paper SS III: SS VI experiments use libaio when throttling.
    cfg.engine = host::libaioEngine();
    cfg.iocost_achievable_model = true;

    Scenario scenario(cfg);

    // Priority app bursts in at burst_start and runs to the end.
    workload::JobSpec prio_spec =
        kind == PriorityAppKind::kBatch
            ? workload::batchApp("prio", cfg.duration - opts.burst_start)
            : workload::lcApp("prio", cfg.duration - opts.burst_start);
    prio_spec.start_time = opts.burst_start;
    prio_spec.stats_bin = opts.bin;
    uint32_t prio_idx = scenario.addApp(std::move(prio_spec), "prio");

    for (uint32_t i = 0; i < opts.num_be_apps; ++i) {
        workload::JobSpec spec =
            workload::beApp(strCat("be", i), cfg.duration);
        scenario.addApp(std::move(spec), "be");
    }

    applyPriorityConfig(scenario, knob, kind, scenario.appGroup(prio_idx),
                        scenario.group("be"));
    scenario.run();

    BurstResult result;
    result.knob = knob;
    result.kind = kind;

    // Steady state: mean bin rate over the last quarter of the run.
    const stats::TimeSeries &series =
        scenario.app(prio_idx).bandwidthSeries();
    SimTime steady_from =
        opts.burst_start + (cfg.duration - opts.burst_start) * 3 / 4;
    double steady = series.meanRate(steady_from, cfg.duration);
    result.steady_value = steady / static_cast<double>(GiB);
    if (steady <= 0.0)
        return result; // priority app never made progress

    // First bin (after the burst) sustaining >= threshold x steady for
    // three consecutive bins.
    double bin_secs = nsToSec(opts.bin);
    double need = opts.threshold * steady * bin_secs;
    size_t first_bin =
        static_cast<size_t>(opts.burst_start / opts.bin) + 1;
    for (size_t b = first_bin; b + 2 < series.numBins(); ++b) {
        bool sustained = true;
        for (size_t k = 0; k < 3; ++k) {
            if (static_cast<double>(series.binTotal(b + k)) < need) {
                sustained = false;
                break;
            }
        }
        if (sustained) {
            SimTime when = static_cast<SimTime>(b) * opts.bin;
            result.response_ms = nsToMs(when - opts.burst_start);
            return result;
        }
    }
    return result; // never reached: response_ms stays -1
}

} // namespace isol::isolbench
