/**
 * @file
 * Desideratum D4 — performance isolation during bursts
 * (paper §VI-C, Q10).
 *
 * A BE-app runs continuously; the priority app starts mid-run (the
 * burst). We measure the response time: how long after the burst start
 * the I/O control mechanism gives the priority app its entitled
 * performance (bandwidth for a batch-app, tail latency for an LC-app).
 *
 * Expected shape (O10): io.latency needs seconds (QD can only halve once
 * per 500 ms window: 1024 -> 1 is ~10 windows); io.cost, io.max, and the
 * I/O schedulers respond in milliseconds.
 */
// isol: domain(coord)

#ifndef ISOL_ISOLBENCH_D4_BURSTS_HH
#define ISOL_ISOLBENCH_D4_BURSTS_HH

#include "isolbench/d3_tradeoffs.hh"
#include "isolbench/scenario.hh"

namespace isol::isolbench
{

/** Options for a burst-response run. */
struct BurstOptions
{
    uint32_t num_be_apps = 4;
    uint32_t num_cores = 10;
    SimTime burst_start = msToNs(1500); //!< priority app start
    SimTime duration = secToNs(int64_t{8}); //!< total run
    SimTime bin = msToNs(20); //!< detection resolution
    double threshold = 0.8; //!< fraction of steady state to reach
    uint64_t seed = 1;
};

/** Result of one burst-response measurement. */
struct BurstResult
{
    Knob knob;
    PriorityAppKind kind;
    /** ms from burst start until the priority app reaches threshold x
     *  its steady-state performance; negative when never reached. */
    double response_ms = -1.0;
    /** The steady-state reference value (GiB/s or P99 us). */
    double steady_value = 0.0;
};

/**
 * Measure the burst response time of `knob` for the given priority-app
 * kind, with the knob configured for strong prioritization (as the best
 * D3 configurations do).
 */
BurstResult runBurstResponse(Knob knob, PriorityAppKind kind,
                             const BurstOptions &opts = {});

} // namespace isol::isolbench

#endif // ISOL_ISOLBENCH_D4_BURSTS_HH
