// isol: domain(coord)
#include "isolbench/d5_degradation.hh"

#include <cstdio>

#include "common/logging.hh"

namespace isol::isolbench
{

namespace
{

/** Strongest-prioritization knob configuration (mirrors D4). */
void
applyPriorityConfig(Scenario &scenario, Knob knob, cgroup::Cgroup &lc,
                    cgroup::Cgroup &be)
{
    cgroup::CgroupTree &tree = scenario.tree();
    switch (knob) {
      case Knob::kNone:
      case Knob::kKyber: // reads are implicitly prioritized, no knob
        break;
      case Knob::kMqDeadline:
        tree.writeFile(lc, "io.prio.class", "promote-to-rt");
        tree.writeFile(be, "io.prio.class", "idle");
        break;
      case Knob::kBfq:
        tree.writeFile(lc, "io.bfq.weight", "1000");
        tree.writeFile(be, "io.bfq.weight", "1");
        break;
      case Knob::kIoMax:
        tree.writeFile(be, "io.max",
                       strCat("259:0 rbps=", 300 * MiB,
                              " wbps=", 300 * MiB));
        break;
      case Knob::kIoLatency:
        tree.writeFile(lc, "io.latency", "259:0 target=100");
        break;
      case Knob::kIoCost: {
        tree.writeFile(lc, "io.weight", "10000");
        cgroup::IoCostQos qos = paperCostQos();
        qos.rpct = 99.0;
        qos.rlat = usToNs(200);
        qos.vrate_min = 25.0;
        tree.setCostQos(0, qos);
        break;
      }
    }
}

/** Metrics of one scenario run (healthy or degraded). */
struct RunMetrics
{
    double lc_p99_us = 0.0;
    double be_gibs = 0.0;
    double agg_gibs = 0.0;
    fault::DeviceFaultStats dev;
    fault::HostFaultStats host;
};

RunMetrics
runOne(Knob knob, const DegradationOptions &opts, bool degraded)
{
    ScenarioConfig cfg;
    cfg.name = strCat("d5-", knobName(knob), "-",
                      degraded ? "degraded" : "healthy");
    cfg.knob = knob;
    cfg.num_cores = opts.num_cores;
    cfg.num_devices = 1;
    cfg.duration = opts.duration;
    cfg.warmup = opts.warmup;
    cfg.seed = opts.seed;
    cfg.device = opts.device;
    cfg.engine = host::libaioEngine();
    cfg.precondition = true; // BE writers need write steady state
    if (degraded) {
        cfg.faults = fault::profileConfig(opts.profile);
        // Pin the media degradation to the BE tenant's LBA range (the
        // second half of the device) instead of a die region: the knobs
        // must protect the LC tenant from collateral damage.
        cfg.faults.device.media.faulty_die_fraction = 0.0;
        cfg.faults.device.media.faulty_lba_begin = 0.5;
        cfg.faults.device.media.faulty_lba_len = 0.5;
    }

    Scenario scenario(cfg);
    const uint64_t cap = cfg.device.user_capacity;

    // LC tenant on the first (healthy) half of the LBA space.
    workload::JobSpec lc_spec = workload::lcApp("lc", cfg.duration);
    lc_spec.offset_base = 0;
    lc_spec.range = cap / 2;
    uint32_t lc_idx = scenario.addApp(std::move(lc_spec), "lc");

    // BE tenant confined to the second half (degraded under faults).
    // Even indices read; odd indices write 4 KiB randomly, feeding GC
    // and the thermal accumulator.
    for (uint32_t i = 0; i < opts.num_be_apps; ++i) {
        workload::JobSpec spec =
            workload::beApp(strCat("be", i), cfg.duration);
        if (i % 2 == 1) {
            spec.op = OpType::kWrite;
            spec.iodepth = 64;
        }
        spec.offset_base = cap / 2;
        spec.range = cap / 2;
        scenario.addApp(std::move(spec), "be");
    }

    applyPriorityConfig(scenario, knob, scenario.appGroup(lc_idx),
                        scenario.group("be"));
    scenario.run();

    RunMetrics m;
    m.lc_p99_us = nsToUs(scenario.app(lc_idx).latency().percentile(99));
    for (uint32_t i = 0; i < scenario.numApps(); ++i) {
        if (i != lc_idx)
            m.be_gibs += scenario.appGiBs(i);
    }
    m.agg_gibs = scenario.aggregateGiBs();
    m.dev = scenario.ssd(0).faultStats();
    m.host = scenario.device(0).faultStats();
    return m;
}

std::string
fmt(double v, const char *format = "%.2f")
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace

DegradationResult
runDegradation(Knob knob, const DegradationOptions &opts)
{
    RunMetrics healthy = runOne(knob, opts, /*degraded=*/false);
    RunMetrics degraded = runOne(knob, opts, /*degraded=*/true);

    DegradationResult r;
    r.knob = knob;
    r.profile = opts.profile;
    r.healthy_lc_p99_us = healthy.lc_p99_us;
    r.degraded_lc_p99_us = degraded.lc_p99_us;
    r.healthy_be_gibs = healthy.be_gibs;
    r.degraded_be_gibs = degraded.be_gibs;
    r.healthy_agg_gibs = healthy.agg_gibs;
    r.degraded_agg_gibs = degraded.agg_gibs;

    r.read_retries = degraded.dev.read_retries;
    r.uncorrectable = degraded.dev.uncorrectable;
    r.remapped_blocks = degraded.dev.remapped_blocks;
    r.timeouts = degraded.host.timeouts;
    r.requeues = degraded.host.requeues;
    r.retry_successes = degraded.host.retry_successes;
    r.throttle_ms = nsToMs(degraded.dev.throttle_ns);

    r.latency_preserved =
        r.degraded_lc_p99_us <= 2.0 * r.healthy_lc_p99_us + 100.0;
    r.bandwidth_preserved =
        r.degraded_agg_gibs >= 0.6 * r.healthy_agg_gibs;
    return r;
}

stats::Table
degradationTable(const std::vector<DegradationResult> &results)
{
    stats::Table table({"knob", "profile", "lc_p99_us_h", "lc_p99_us_d",
                        "be_gibs_h", "be_gibs_d", "agg_h", "agg_d",
                        "retries", "timeouts", "requeues", "remaps",
                        "throttle_ms", "lat_ok", "bw_ok"});
    for (const DegradationResult &r : results) {
        table.addRow({knobName(r.knob), fault::profileName(r.profile),
                      fmt(r.healthy_lc_p99_us, "%.1f"),
                      fmt(r.degraded_lc_p99_us, "%.1f"),
                      fmt(r.healthy_be_gibs), fmt(r.degraded_be_gibs),
                      fmt(r.healthy_agg_gibs), fmt(r.degraded_agg_gibs),
                      std::to_string(r.read_retries),
                      std::to_string(r.timeouts),
                      std::to_string(r.requeues),
                      std::to_string(r.remapped_blocks),
                      fmt(r.throttle_ms, "%.1f"),
                      r.latency_preserved ? "yes" : "NO",
                      r.bandwidth_preserved ? "yes" : "NO"});
    }
    return table;
}

} // namespace isol::isolbench
