/**
 * @file
 * Desideratum D5 (extension) — performance isolation under device
 * degradation.
 *
 * The paper evaluates every cgroup I/O knob on healthy devices; D5 asks
 * whether the knobs still deliver their desiderata when the device
 * misbehaves. An LC-app and a set of BE-apps share one SSD; the BE
 * tenant's LBA range sits on degraded media (read-retry ladders, grown
 * bad blocks, latency spikes), the device may thermally throttle, and
 * the host enforces NVMe command timeouts with abort + requeue. Each
 * knob runs twice — healthy and degraded — with identical seeds, and the
 * result reports whether the LC tail latency and the aggregate bandwidth
 * survive the degradation.
 */
// isol: domain(coord)

#ifndef ISOL_ISOLBENCH_D5_DEGRADATION_HH
#define ISOL_ISOLBENCH_D5_DEGRADATION_HH

#include <vector>

#include "fault/fault.hh"
#include "isolbench/scenario.hh"
#include "stats/table.hh"

namespace isol::isolbench
{

/** Options for one degradation run. */
struct DegradationOptions
{
    uint32_t num_be_apps = 4; //!< best-effort apps (reads + writes)
    uint32_t num_cores = 10;
    SimTime duration = msToNs(1200);
    SimTime warmup = msToNs(300);
    uint64_t seed = 1;
    /** Fault families injected in the degraded run. */
    fault::Profile profile = fault::Profile::kAll;
    /** Device under test (shrink for fast smoke runs). */
    ssd::SsdConfig device = ssd::samsung980ProLike();
};

/** Result of one healthy-vs-degraded knob evaluation. */
struct DegradationResult
{
    Knob knob = Knob::kNone;
    fault::Profile profile = fault::Profile::kAll;

    // LC-app P99 read latency (us) and bandwidths (GiB/s).
    double healthy_lc_p99_us = 0.0;
    double degraded_lc_p99_us = 0.0;
    double healthy_be_gibs = 0.0;
    double degraded_be_gibs = 0.0;
    double healthy_agg_gibs = 0.0;
    double degraded_agg_gibs = 0.0;

    // Fault counters observed in the degraded run (device + host).
    uint64_t read_retries = 0;
    uint64_t uncorrectable = 0;
    uint64_t remapped_blocks = 0;
    uint64_t timeouts = 0;
    uint64_t requeues = 0;
    uint64_t retry_successes = 0;
    double throttle_ms = 0.0;

    /** LC P99 under degradation stays within 2x healthy + 100 us. */
    bool latency_preserved = false;

    /** Degraded aggregate bandwidth stays >= 0.6x healthy. */
    bool bandwidth_preserved = false;
};

/**
 * Evaluate `knob` (configured for strong LC prioritization, as in D4)
 * under the degradation profile in `opts`. Runs a healthy and a degraded
 * scenario with identical seeds and workloads.
 */
DegradationResult runDegradation(Knob knob,
                                 const DegradationOptions &opts = {});

/** Render a set of degradation results as one table. */
stats::Table degradationTable(
    const std::vector<DegradationResult> &results);

} // namespace isol::isolbench

#endif // ISOL_ISOLBENCH_D5_DEGRADATION_HH
