// isol: domain(coord)
#include "isolbench/scenario.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strings.hh"
#include "isolbench/supervisor.hh"
#include "isolbench/sweep.hh"
#include "isolbench/validate.hh"

namespace isol::isolbench
{

const char *
knobName(Knob knob)
{
    switch (knob) {
      case Knob::kNone: return "none";
      case Knob::kMqDeadline: return "mq-deadline";
      case Knob::kBfq: return "bfq";
      case Knob::kIoMax: return "io.max";
      case Knob::kIoLatency: return "io.latency";
      case Knob::kIoCost: return "io.cost";
      case Knob::kKyber: return "kyber";
    }
    return "?";
}

cgroup::IoCostModel
generatedCostModel()
{
    cgroup::IoCostModel model;
    model.user = true;
    model.rbps = 2400ull * MiB; // => ~2.25 GiB/s 4 KiB randread point
    model.rseqiops = 650000;
    model.rrandiops = 600000;
    model.wbps = 450ull * MiB; // sustained, GC included
    model.wseqiops = 120000;
    model.wrandiops = 110000;
    return model;
}

cgroup::IoCostModel
beyondSaturationCostModel()
{
    cgroup::IoCostModel model;
    model.user = true;
    model.rbps = 100ull * GiB;
    model.rseqiops = 50000000;
    model.rrandiops = 50000000;
    model.wbps = 100ull * GiB;
    model.wseqiops = 50000000;
    model.wrandiops = 50000000;
    return model;
}

cgroup::IoCostQos
paperCostQos()
{
    cgroup::IoCostQos qos;
    qos.enable = true;
    qos.rpct = 95.0;
    qos.rlat = usToNs(100);
    qos.wpct = 95.0;
    qos.wlat = usToNs(400);
    qos.vrate_min = 50.0;
    qos.vrate_max = 100.0;
    return qos;
}

cgroup::IoCostQos
disabledCostQos()
{
    cgroup::IoCostQos qos;
    qos.enable = true;
    qos.rpct = 0.0;
    qos.wpct = 0.0;
    qos.vrate_min = 25.0;
    qos.vrate_max = 100.0;
    return qos;
}

/** Book-keeping for one app: the job plus its wiring. */
struct Scenario::AppSlot
{
    std::unique_ptr<workload::FioJob> job;
    cgroup::Cgroup *cg = nullptr;
    uint32_t device_index = 0;
};

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.num_devices == 0)
        fatal("Scenario: need at least one device");
    if (cfg_.warmup >= cfg_.duration)
        fatal("Scenario: warmup must be shorter than duration");
    if (cfg_.check_invariants)
        inv_ = std::make_unique<sim::InvariantChecker>(cfg_.name);
    cpus_ = std::make_unique<host::CpuSet>(sim_, cfg_.num_cores);
    buildDevices();
}

Scenario::~Scenario() = default;

void
Scenario::buildDevices()
{
    for (uint32_t i = 0; i < cfg_.num_devices; ++i) {
        ssd::SsdConfig scfg = cfg_.device;
        scfg.faults = cfg_.faults.device;
        auto ssd = std::make_unique<ssd::SsdDevice>(sim_, scfg,
                                                    cfg_.seed + i * 977);
        if (cfg_.precondition)
            ssd->precondition(1.0, 2.0);

        blk::BlockDeviceConfig bcfg;
        bcfg.dev_id = i;
        bcfg.invariants = inv_.get();
        bcfg.debug_corrupt_iomax_bucket = cfg_.debug_corrupt_iomax_bucket;
        bcfg.nvme_timeout = cfg_.faults.timeout;
        bcfg.mq_params = cfg_.mq_params;
        bcfg.bfq_params = cfg_.bfq_params;
        bcfg.iocost_params = cfg_.iocost_params;
        switch (cfg_.knob) {
          case Knob::kNone:
            break;
          case Knob::kMqDeadline:
            bcfg.elevator = blk::ElevatorType::kMqDeadline;
            break;
          case Knob::kBfq:
            bcfg.elevator = blk::ElevatorType::kBfq;
            break;
          case Knob::kIoMax:
            bcfg.enable_io_max = true;
            break;
          case Knob::kIoLatency:
            bcfg.enable_io_latency = true;
            break;
          case Knob::kIoCost:
            bcfg.enable_io_cost = true;
            break;
          case Knob::kKyber:
            bcfg.elevator = blk::ElevatorType::kKyber;
            break;
        }
        auto bdev = std::make_unique<blk::BlockDevice>(sim_, tree_, *ssd,
                                                       bcfg);
        if (cfg_.knob == Knob::kIoCost) {
            // io.cost.model / io.cost.qos are root-only globals.
            if (cfg_.iocost_achievable_model) {
                tree_.setCostModel(i, generatedCostModel());
                tree_.setCostQos(i, paperCostQos());
            } else {
                tree_.setCostModel(i, beyondSaturationCostModel());
                tree_.setCostQos(i, disabledCostQos());
            }
            // The iocost period timer is kernel work on CPU 0.
            if (cfg_.iocost_timer_on_cpu) {
                host::CpuCore &core = cpus_->core(0);
                bdev->setTimerCpuCharge(
                    [&core](SimTime work, sim::SmallCallback done) {
                        core.charge(host::kKernelTask, work,
                                    std::move(done));
                    });
            }
        }
        ssds_.push_back(std::move(ssd));
        bdevs_.push_back(std::move(bdev));
    }
}

uint32_t
Scenario::numDevices() const
{
    return static_cast<uint32_t>(bdevs_.size());
}

blk::BlockDevice &
Scenario::device(uint32_t i)
{
    return *bdevs_.at(i);
}

ssd::SsdDevice &
Scenario::ssd(uint32_t i)
{
    return *ssds_.at(i);
}

uint32_t
Scenario::addApp(workload::JobSpec spec, const std::string &cgroup_name,
                 uint32_t device_index)
{
    if (ran_)
        fatal("Scenario: cannot add apps after run()");
    if (device_index >= bdevs_.size())
        fatal("Scenario: bad device index");

    cgroup::Cgroup *leaf = ensureGroupPath(cgroup_name);

    auto slot = std::make_unique<AppSlot>();
    slot->cg = leaf;
    slot->device_index = device_index;
    if (spec.seed == 1)
        spec.seed = cfg_.seed + apps_.size() * 7919 + 13;
    auto task = static_cast<host::TaskId>(apps_.size() + 1);
    slot->job = std::make_unique<workload::FioJob>(
        sim_, std::move(spec), *bdevs_[device_index], cpus_->assign(),
        cfg_.engine, tree_, leaf, task);
    slot->job->setMeasureWindow(cfg_.warmup, cfg_.duration);
    apps_.push_back(std::move(slot));
    return static_cast<uint32_t>(apps_.size() - 1);
}

uint32_t
Scenario::addAdversary(workload::AdversaryKind kind,
                       const std::string &cgroup_name,
                       uint32_t device_index)
{
    return addApp(workload::adversaryApp(
                      kind,
                      strCat(cgroup_name, "-", workload::adversaryName(kind)),
                      cfg_.duration),
                  cgroup_name, device_index);
}

uint32_t
Scenario::numApps() const
{
    return static_cast<uint32_t>(apps_.size());
}

workload::FioJob &
Scenario::app(uint32_t i)
{
    return *apps_.at(i)->job;
}

cgroup::Cgroup &
Scenario::appGroup(uint32_t i)
{
    return *apps_.at(i)->cg;
}

cgroup::Cgroup *
Scenario::ensureGroupPath(const std::string &path)
{
    // Walk/create a slash-separated path under the root, enabling the io
    // controller at every interior level (cgroup v2 requires "+io" in the
    // parent's subtree_control before child knobs work). Interior groups
    // stay process-free — the no-internal-processes rule — so knobs like
    // io.max on them act as shared subtree limits.
    cgroup::Cgroup *node = &tree_.root();
    size_t start = 0;
    while (start <= path.size()) {
        size_t slash = path.find('/', start);
        size_t end = slash == std::string::npos ? path.size() : slash;
        std::string part = path.substr(start, end - start);
        if (!part.empty()) {
            if (!node->ioControllerEnabled())
                tree_.enableIoController(*node);
            cgroup::Cgroup *next = nullptr;
            for (cgroup::Cgroup *child : node->children()) {
                if (child->name() == part) {
                    next = child;
                    break;
                }
            }
            node = next != nullptr ? next
                                   : &tree_.createChild(*node, part);
        }
        if (slash == std::string::npos)
            break;
        start = slash + 1;
    }
    if (node == &tree_.root())
        fatal("Scenario: empty cgroup path");
    return node;
}

cgroup::Cgroup &
Scenario::group(const std::string &name)
{
    cgroup::Cgroup *node = tree_.resolve(name);
    if (node == nullptr || node == &tree_.root())
        fatal("Scenario: no cgroup named '" + name + "'");
    return *node;
}

std::string
Scenario::blameDetail() const
{
    std::string out = strCat(" [scenario '", cfg_.name, "'");
    // Blame the busiest tenant: the one holding the most in-flight I/O
    // when the guard tripped is almost always the storm's source.
    const AppSlot *busiest = nullptr;
    for (const auto &slot : apps_) {
        if (busiest == nullptr ||
            slot->job->inflight() > busiest->job->inflight())
            busiest = slot.get();
    }
    if (busiest != nullptr) {
        out += strCat(", busiest tenant '", busiest->job->spec().name,
                      "' in cgroup '", busiest->cg->name(),
                      "', inflight ", busiest->job->inflight());
        if (busiest->job->spec().adversary !=
            workload::AdversaryKind::kNone) {
            out += strCat(", adversary ",
                          workload::adversaryName(
                              busiest->job->spec().adversary));
        }
    }
    out += "]";
    return out;
}

uint32_t
Scenario::adversaryTenants() const
{
    uint32_t n = 0;
    for (const auto &slot : apps_) {
        if (slot->job->spec().adversary != workload::AdversaryKind::kNone)
            ++n;
    }
    return n;
}

void
Scenario::run()
{
    if (ran_)
        fatal("Scenario: run() already called");
    ran_ = true;
    for (auto &bdev : bdevs_)
        bdev->start();
    for (auto &slot : apps_)
        slot->job->schedule();
    sim_.at(cfg_.warmup, [this] {
        busy_at_warmup_ = cpus_->totalBusyNs();
    });
    double wall_start_ms = sweep::monotonicMs();
    if (supervisor::guardActive()) {
        // Same event order as runUntil(); the chunk boundaries only
        // decide when the guard gets to look at the wall clock and the
        // event budget, so supervised runs stay byte-identical.
        constexpr uint64_t kGuardChunkEvents = 8192;
        try {
            for (;;) {
                uint64_t executed =
                    sim_.runChunk(cfg_.duration, kGuardChunkEvents);
                supervisor::chargeGuardEvents(executed);
                supervisor::pollGuardDeadline();
                if (executed < kGuardChunkEvents)
                    break;
            }
        } catch (const supervisor::TaskAbort &abort) {
            // Budget/watchdog trips name the offending tenant so the
            // supervised failure table is actionable without a replay.
            throw supervisor::TaskAbort(
                abort.kind(), strCat(abort.what(), blameDetail()));
        }
    } else {
        sim_.runUntil(cfg_.duration);
    }
    double wall_ms = sweep::monotonicMs() - wall_start_ms;

    if (inv_) {
        uint64_t total_iodepth = 0;
        for (const auto &slot : apps_)
            total_iodepth += slot->job->spec().iodepth;
        inv_->finalCheck(total_iodepth);
        // Hierarchical conservation: per-subtree gate counters must
        // still reconcile bottom-up after the last event.
        for (auto &bdev : bdevs_)
            bdev->finalInvariantChecks();
    }

    sweep::ScenarioProfile profile;
    profile.name = cfg_.name;
    profile.wall_ms = wall_ms;
    profile.events = sim_.eventsExecuted();
    profile.events_per_sec =
        profile.wall_ms > 0.0
            ? static_cast<double>(profile.events) / (profile.wall_ms / 1e3)
            : 0.0;
    profile.peak_queue_depth = sim_.peakQueueDepth();
    profile.invariant_checks = inv_ ? inv_->checksPerformed() : 0;
    profile.adversary_tenants = adversaryTenants();
    for (auto &bdev : bdevs_)
        profile.gate_bookkeeping_ops += bdev->gateBookkeepingOps();
    sweep::recordProfile(std::move(profile));

    // A run that finishes with inconsistent counters must not flow into
    // a figure; the supervisor classifies this as invariant_violation.
    validate::enforce(validate::checkScenario(*this), cfg_.name);
}

double
Scenario::aggregateGiBs()
{
    uint64_t bytes = 0;
    for (auto &slot : apps_)
        bytes += slot->job->windowBytes();
    return bytesOverNsToGiBs(bytes, windowNs());
}

double
Scenario::appGiBs(uint32_t i)
{
    return static_cast<double>(apps_.at(i)->job->windowBytes()) /
           static_cast<double>(GiB) / nsToSec(windowNs());
}

double
Scenario::cpuUtilization() const
{
    SimTime busy = cpus_->totalBusyNs() - busy_at_warmup_;
    double denom = nsToSec(windowNs()) * cfg_.num_cores;
    return std::clamp(nsToSec(busy) / denom, 0.0, 1.0);
}

double
Scenario::contextSwitchesPerIo() const
{
    uint64_t ios = 0;
    for (const auto &slot : apps_)
        ios += slot->job->totalIos();
    if (ios == 0)
        return 0.0;
    return static_cast<double>(cpus_->totalContextSwitches()) /
           static_cast<double>(ios);
}

} // namespace isol::isolbench
