/**
 * @file
 * Scenario: one isol-bench experiment instance.
 *
 * A scenario owns the whole simulated system — CPU cores, one or more
 * SSDs with their block-layer pipelines, a cgroup tree, and a set of
 * apps (fio jobs) — configured for exactly one cgroup I/O control knob,
 * mirroring the paper's setup (§III): no Docker, direct I/O, knobs
 * evaluated one at a time.
 *
 * Typical use:
 *   ScenarioConfig cfg;
 *   cfg.knob = Knob::kIoCost;
 *   Scenario s(cfg);
 *   uint32_t a = s.addApp(workload::lcApp("lc", secToNs(2)), "lc");
 *   s.tree().writeFile(s.appGroup(a), "io.weight", "1000");
 *   s.run();
 *   double p99 = nsToUs(s.app(a).latency().percentile(99));
 */
// isol: domain(coord)

#ifndef ISOL_ISOLBENCH_SCENARIO_HH
#define ISOL_ISOLBENCH_SCENARIO_HH

#include <memory>
#include <string>
#include <vector>

#include "blk/block_device.hh"
#include "cgroup/cgroup.hh"
#include "fault/fault.hh"
#include "host/cpu.hh"
#include "host/engine.hh"
#include "sim/invariants.hh"
#include "sim/simulator.hh"
#include "ssd/device.hh"
#include "workload/adversary.hh"
#include "workload/app_profiles.hh"
#include "workload/job.hh"

namespace isol::isolbench
{

/** The cgroup I/O control knob under evaluation. */
enum class Knob : uint8_t
{
    kNone, //!< no I/O control (baseline)
    kMqDeadline, //!< MQ-DL + io.prio.class
    kBfq, //!< BFQ + io.bfq.weight
    kIoMax, //!< io.max
    kIoLatency, //!< io.latency
    kIoCost, //!< io.cost + io.weight
    kKyber, //!< Kyber scheduler (extension: no cgroup knob; see [75])
};

/** Kernel-style knob name used in reports. */
const char *knobName(Knob knob);

/** All knobs in the paper's column order. */
inline constexpr Knob kAllKnobs[] = {
    Knob::kNone,        Knob::kMqDeadline, Knob::kBfq,
    Knob::kIoMax,       Knob::kIoLatency,  Knob::kIoCost,
};

/** Scenario-wide configuration. */
struct ScenarioConfig
{
    std::string name = "scenario";
    Knob knob = Knob::kNone;
    uint32_t num_cores = 10;
    uint32_t num_devices = 1;
    ssd::SsdConfig device = ssd::samsung980ProLike();
    host::EngineConfig engine = host::ioUringEngine();
    bool precondition = false; //!< steady-state fill before writes
    SimTime duration = secToNs(int64_t{2});
    SimTime warmup = msToNs(300);
    uint64_t seed = 1;

    /**
     * io.cost configuration choice: when true, install the "generated"
     * achievable model + latency qos (paper §III / §VI); when false,
     * install a beyond-saturation model with qos disabled — the paper's
     * D1 overhead configuration (§V).
     */
    bool iocost_achievable_model = true;

    /** Elevator tunables (e.g. slice_idle=0 for the D1 experiments). */
    blk::MqDeadlineParams mq_params;
    blk::BfqParams bfq_params;

    /** io.cost mechanism tunables (ablation studies). */
    blk::IoCostParams iocost_params;

    /** Ablation: run the iocost period timer as host CPU work. */
    bool iocost_timer_on_cpu = true;

    /**
     * Fault-injection plane (strictly opt-in; the default keeps every
     * family disabled and the scenario identical to a fault-free build).
     */
    fault::FaultPlane faults;

    /**
     * Runtime invariant checking (sim/invariants.hh). Defaults to the
     * process-wide opt-in (`--check-invariants` flag or the
     * ISOL_CHECK_INVARIANTS env var); off means every hook is a single
     * null-pointer test.
     */
    bool check_invariants = sim::checkInvariantsDefault();

    /**
     * Negative-test mutation: deliberately corrupt an io.max token
     * bucket mid-run so the invariant checker has something to catch.
     */
    bool debug_corrupt_iomax_bucket = false;
};

/** The paper-default generated cost model (~2.3 GiB/s read saturation). */
cgroup::IoCostModel generatedCostModel();

/** A model far beyond device saturation (io.cost never throttles). */
cgroup::IoCostModel beyondSaturationCostModel();

/** Paper Fig. 2g/h qos: P95 read latency target 100 us, min=50 max=100. */
cgroup::IoCostQos paperCostQos();

/** QoS with latency checks disabled (D1 overhead configuration). */
cgroup::IoCostQos disabledCostQos();

/**
 * One fully wired experiment.
 */
class Scenario
{
  public:
    explicit Scenario(ScenarioConfig cfg);
    ~Scenario();
    Scenario(const Scenario &) = delete;
    Scenario &operator=(const Scenario &) = delete;

    const ScenarioConfig &config() const { return cfg_; }

    sim::Simulator &sim() { return sim_; }
    cgroup::CgroupTree &tree() { return tree_; }
    host::CpuSet &cpus() { return *cpus_; }

    uint32_t numDevices() const;
    blk::BlockDevice &device(uint32_t i);
    ssd::SsdDevice &ssd(uint32_t i);

    /**
     * Add an app running `spec` inside cgroup `cgroup_name` against
     * device `device_index`. Returns the app index.
     *
     * The name may be a slash path ("pods/a/lc"): interior groups are
     * created on first use with the io controller enabled at each level,
     * so knobs written on them act hierarchically (interior io.max =
     * shared subtree limit; interior io.weight splits across child
     * subtrees). Several apps may share one leaf group.
     */
    uint32_t addApp(workload::JobSpec spec, const std::string &cgroup_name,
                    uint32_t device_index = 0);

    /**
     * Add a misbehaving tenant (workload/adversary.hh) in cgroup
     * `cgroup_name` against device `device_index`, running for the full
     * scenario duration. Returns the app index.
     */
    uint32_t addAdversary(workload::AdversaryKind kind,
                          const std::string &cgroup_name,
                          uint32_t device_index = 0);

    uint32_t numApps() const;
    workload::FioJob &app(uint32_t i);

    /** Leaf cgroup of app `i`. */
    cgroup::Cgroup &appGroup(uint32_t i);

    /** Cgroup at `name` — a root-relative slash path ("pods/a/lc") or a
     *  flat name; must already exist (created by addApp). */
    cgroup::Cgroup &group(const std::string &name);

    /** Run the simulation to `cfg.duration`. Call once. */
    void run();

    // --- Window metrics (valid after run()) ---

    /** Measure-window length in ns. */
    SimTime windowNs() const { return cfg_.duration - cfg_.warmup; }

    /** Aggregated bandwidth of all apps in GiB/s. */
    double aggregateGiBs();

    /** App i's window bandwidth in GiB/s. */
    double appGiBs(uint32_t i);

    /** Mean CPU utilisation in [0, 1] over the window, all cores. */
    double cpuUtilization() const;

    /** Context switches per completed I/O over the whole run. */
    double contextSwitchesPerIo() const;

    /** Runtime invariant checker (nullptr when checking is off). */
    sim::InvariantChecker *invariants() { return inv_.get(); }

    /** Tenants whose spec carries an adversary tag. */
    uint32_t adversaryTenants() const;

  private:
    struct AppSlot;

    void buildDevices();

    /** Find-or-create the cgroup at a slash path, enabling +io at every
     *  interior level on the way down. */
    cgroup::Cgroup *ensureGroupPath(const std::string &path);

    /** " [scenario ..., busiest tenant ...]" blame for guard aborts. */
    std::string blameDetail() const;

    ScenarioConfig cfg_;
    sim::Simulator sim_;
    std::unique_ptr<sim::InvariantChecker> inv_;
    cgroup::CgroupTree tree_;
    std::unique_ptr<host::CpuSet> cpus_;
    std::vector<std::unique_ptr<ssd::SsdDevice>> ssds_;
    std::vector<std::unique_ptr<blk::BlockDevice>> bdevs_;
    std::vector<std::unique_ptr<AppSlot>> apps_;

    SimTime busy_at_warmup_ = 0;
    bool ran_ = false;
};

} // namespace isol::isolbench

#endif // ISOL_ISOLBENCH_SCENARIO_HH
