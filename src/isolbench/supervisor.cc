// isol: domain(coord)
#include "isolbench/supervisor.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "isolbench/validate.hh"
#include "sim/invariants.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"

namespace isol::isolbench::supervisor
{

namespace
{

// Like the sweep engine, the supervisor is sanctioned cross-run shared
// state: it coordinates retries and checkpoints and never feeds
// simulated decisions.

// isol-lint: allow(D4): protects the options/report/manifest sinks
std::mutex g_state_mutex;
// isol-lint: allow(D4): process-wide supervision policy set from CLI
// flags before any sweep runs
Options g_options;
// isol-lint: allow(D4): report sink (stderr only); recorded in
// execution order
std::vector<SweepReport> g_reports;
// isol-lint: allow(D4): checkpoints loaded from a prior run's manifest
// (salvage source under --resume)
std::map<std::string, ManifestSweep> g_loaded;
// isol-lint: allow(D4): checkpoints accumulated by this process (what
// the manifest writer persists)
std::map<std::string, ManifestSweep> g_current;

/** One event budget shared across a task's (possibly nested) workers. */
struct Budget
{
    std::shared_ptr<std::atomic<uint64_t>> count;
    uint64_t limit = 0;
};

/** Per-thread guard: watchdog deadline plus the budget chain. */
struct GuardState
{
    bool active = false;
    double deadline_ms = 0.0; //!< absolute monotonicMs(); 0 = none
    std::vector<Budget> budgets;
};

// isol-lint: allow(D4): per-thread task-guard context installed by the
// supervisor and copied into nested sweep workers; error path only
thread_local GuardState t_guard;

/** Copy the calling thread's guard into nested pool workers. */
void
registerWorkerContextCapture()
{
    // isol-lint: allow(D4): one-time hook registration flag
    static std::once_flag once;
    std::call_once(once, [] {
        sweep::setWorkerContextCapture([]() -> std::function<void()> {
            GuardState snapshot = t_guard;
            bool recoverable = sim::recoverableBudgets();
            return [snapshot, recoverable] {
                t_guard = snapshot;
                sim::setRecoverableBudgets(recoverable);
            };
        });
    });
}

/** Install per-attempt budgets for the current thread, RAII-scoped. */
class GuardScope
{
  public:
    explicit GuardScope(const Options &opt)
        : saved_(t_guard), saved_recoverable_(sim::recoverableBudgets())
    {
        registerWorkerContextCapture();
        GuardState next = t_guard;
        next.active = true;
        if (opt.task_timeout_ms > 0.0) {
            double deadline = sweep::monotonicMs() + opt.task_timeout_ms;
            next.deadline_ms = next.deadline_ms == 0.0
                                   ? deadline
                                   : std::min(next.deadline_ms, deadline);
        }
        if (opt.max_task_events > 0) {
            next.budgets.push_back(
                Budget{std::make_shared<std::atomic<uint64_t>>(0),
                       opt.max_task_events});
        }
        t_guard = std::move(next);
        sim::setRecoverableBudgets(true);
    }

    ~GuardScope()
    {
        t_guard = saved_;
        sim::setRecoverableBudgets(saved_recoverable_);
    }

    GuardScope(const GuardScope &) = delete;
    GuardScope &operator=(const GuardScope &) = delete;

  private:
    GuardState saved_;
    bool saved_recoverable_;
};

// --- JSON helpers (manifest is the only JSON we parse) ----------------

void
appendJsonString(std::string &out, const std::string &text)
{
    out += '"';
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Minimal pull-parser over the manifest's own output format. */
struct JsonReader
{
    const std::string &text;
    size_t pos = 0;

    explicit JsonReader(const std::string &t) : text(t) {}

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n' ||
                text[pos] == '\r' || text[pos] == '\t'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        skipSpace();
        return pos < text.size() && text[pos] == c;
    }

    bool
    readString(std::string &out)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != '"')
            return false;
        ++pos;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return false;
            char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return false;
                unsigned value = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = text[pos++];
                    value <<= 4;
                    if (h >= '0' && h <= '9')
                        value |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        value |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        value |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // The writer only escapes control bytes this way.
                out += static_cast<char>(value & 0xff);
                break;
              }
              default: return false;
            }
        }
        return false;
    }

    bool
    readUint(uint64_t &out)
    {
        skipSpace();
        size_t start = pos;
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9')
            ++pos;
        if (pos == start)
            return false;
        auto parsed = parseUint(text.substr(start, pos - start));
        if (!parsed)
            return false;
        out = *parsed;
        return true;
    }

    /** Skip a primitive value we do not care about (number/string). */
    bool
    skipValue()
    {
        skipSpace();
        if (pos >= text.size())
            return false;
        if (text[pos] == '"') {
            std::string ignored;
            return readString(ignored);
        }
        while (pos < text.size() && text[pos] != ',' &&
               text[pos] != '}' && text[pos] != ']')
            ++pos;
        return true;
    }
};

bool
readManifestEntry(JsonReader &r, ManifestEntry &entry)
{
    if (!r.consume('{'))
        return false;
    while (!r.peek('}')) {
        std::string key;
        if (!r.readString(key) || !r.consume(':'))
            return false;
        bool ok;
        if (key == "task")
            ok = r.readUint(entry.task);
        else if (key == "digest")
            ok = r.readString(entry.digest);
        else if (key == "payload")
            ok = r.readString(entry.payload);
        else
            ok = r.skipValue();
        if (!ok)
            return false;
        if (!r.consume(','))
            break;
    }
    return r.consume('}');
}

bool
readManifestSweep(JsonReader &r, ManifestSweep &sweep)
{
    if (!r.consume('{'))
        return false;
    while (!r.peek('}')) {
        std::string key;
        if (!r.readString(key) || !r.consume(':'))
            return false;
        bool ok = true;
        if (key == "name") {
            ok = r.readString(sweep.name);
        } else if (key == "tasks") {
            ok = r.readUint(sweep.tasks);
        } else if (key == "completed") {
            if (!r.consume('['))
                return false;
            while (!r.peek(']')) {
                ManifestEntry entry;
                if (!readManifestEntry(r, entry))
                    return false;
                sweep.entries.push_back(std::move(entry));
                if (!r.consume(','))
                    break;
            }
            ok = r.consume(']');
        } else {
            ok = r.skipValue();
        }
        if (!ok)
            return false;
        if (!r.consume(','))
            break;
    }
    return r.consume('}');
}

/** Write `text` to `path` atomically (temp file + rename). */
bool
writeFileAtomic(const std::string &path, const std::string &text)
{
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr)
        return false;
    bool ok = std::fputs(text.c_str(), f) >= 0;
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        return false;
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/** Persist g_current; caller holds g_state_mutex. */
void
writeManifestLocked(const std::string &path)
{
    if (path.empty())
        return;
    std::vector<ManifestSweep> sweeps;
    sweeps.reserve(g_current.size());
    for (const auto &[name, sweep] : g_current)
        sweeps.push_back(sweep);
    if (!writeFileAtomic(path, encodeManifest(sweeps)))
        std::fprintf(stderr,
                     "[supervisor] warning: could not write manifest "
                     "%s\n", path.c_str());
}

} // namespace

const char *
taskErrorKindName(TaskErrorKind kind)
{
    switch (kind) {
      case TaskErrorKind::kTimeout: return "timeout";
      case TaskErrorKind::kException: return "exception";
      case TaskErrorKind::kInvariantViolation:
        return "invariant_violation";
      case TaskErrorKind::kResourceExhausted:
        return "resource_exhausted";
    }
    return "?";
}

TaskError
classifyError(size_t task, uint32_t attempt,
              const std::exception_ptr &error)
{
    TaskError out;
    out.task = task;
    out.attempt = attempt;
    if (!error) {
        out.message = "no exception";
        return out;
    }
    try {
        std::rethrow_exception(error);
    } catch (const TaskAbort &e) {
        out.kind = e.kind();
        out.message = e.what();
    } catch (const sweep::SweepError &e) {
        // A nested sweep failed; inherit the kind of its first failure
        // (e.g. budget aborts racing across nested workers).
        out.kind = TaskErrorKind::kException;
        out.message = e.what();
        if (!e.failures().empty() && e.failures().front().error) {
            out.kind = classifyError(task, attempt,
                                     e.failures().front().error)
                           .kind;
        }
    } catch (const sim::BudgetExceeded &e) {
        out.kind = TaskErrorKind::kResourceExhausted;
        out.message = e.what();
    } catch (const validate::InvariantViolation &e) {
        out.kind = TaskErrorKind::kInvariantViolation;
        out.message = e.what();
    } catch (const sim::InvariantViolation &e) {
        // Runtime invariant checker (sim/invariants.hh): same taxonomy
        // bucket as the post-run validators.
        out.kind = TaskErrorKind::kInvariantViolation;
        out.message = e.what();
    } catch (const std::bad_alloc &e) {
        out.kind = TaskErrorKind::kResourceExhausted;
        out.message = strCat("allocation failed: ", e.what());
    } catch (const std::exception &e) {
        out.kind = TaskErrorKind::kException;
        out.message = e.what();
    } catch (...) {
        out.kind = TaskErrorKind::kException;
        out.message = "unknown non-std exception";
    }
    return out;
}

void
setOptions(const Options &options)
{
    std::lock_guard<std::mutex> lock(g_state_mutex);
    g_options = options;
}

Options
options()
{
    std::lock_guard<std::mutex> lock(g_state_mutex);
    return g_options;
}

double
backoffMs(const Options &options, size_t task, uint32_t attempt)
{
    if (attempt == 0)
        return 0.0;
    double base = options.backoff_base_ms;
    for (uint32_t a = 1; a < attempt && base < options.backoff_cap_ms;
         ++a)
        base *= 2.0;
    base = std::min(base, options.backoff_cap_ms);
    // Jitter keyed on (seed, task, attempt): identical on every replay,
    // independent of which worker runs the retry.
    Rng rng(options.backoff_seed + task * 0x9E3779B9ull + attempt);
    return base * (0.5 + 0.5 * rng.uniform());
}

std::vector<SweepReport>
reports()
{
    std::lock_guard<std::mutex> lock(g_state_mutex);
    return g_reports;
}

void
clearReports()
{
    std::lock_guard<std::mutex> lock(g_state_mutex);
    g_reports.clear();
}

std::string
failureTable()
{
    std::vector<SweepReport> all = reports();
    size_t sweeps = all.size();
    size_t tasks = 0;
    size_t completed = 0;
    size_t salvaged = 0;
    size_t retried = 0;
    size_t failed = 0;
    bool any_errors = false;
    for (const SweepReport &r : all) {
        tasks += r.tasks;
        completed += r.completed;
        salvaged += r.salvaged;
        retried += r.retried;
        failed += r.failed;
        any_errors = any_errors || !r.errors.empty() || r.salvaged > 0;
    }

    std::string out;
    if (any_errors) {
        stats::Table table({"sweep", "error kind", "errors",
                            "final-failed", "retried-ok", "salvaged"});
        for (const SweepReport &r : all) {
            if (r.errors.empty() && r.salvaged == 0)
                continue;
            constexpr TaskErrorKind kKinds[] = {
                TaskErrorKind::kTimeout, TaskErrorKind::kException,
                TaskErrorKind::kInvariantViolation,
                TaskErrorKind::kResourceExhausted};
            bool printed = false;
            for (TaskErrorKind kind : kKinds) {
                size_t errors = 0;
                size_t final_failed = 0;
                for (const TaskError &e : r.errors) {
                    if (e.kind != kind)
                        continue;
                    ++errors;
                    if (std::find(r.failed_tasks.begin(),
                                  r.failed_tasks.end(),
                                  e.task) != r.failed_tasks.end())
                        ++final_failed;
                }
                if (errors == 0)
                    continue;
                table.addRow({r.name, taskErrorKindName(kind),
                              strCat(errors), strCat(final_failed),
                              strCat(r.retried), strCat(r.salvaged)});
                printed = true;
            }
            if (!printed) {
                table.addRow({r.name, "-", "0", "0", strCat(r.retried),
                              strCat(r.salvaged)});
            }
        }
        out += table.toAligned();
    }
    out += strCat("[supervisor] ", sweeps, " sweeps, ", tasks,
                  " tasks: ", completed, " completed, ", salvaged,
                  " salvaged, ", retried, " retried-ok, ", failed,
                  " failed\n");
    return out;
}

namespace
{

SweepReport
runImpl(const std::string &sweep_name, const std::vector<Task> &tasks,
        std::vector<std::string> &payloads, uint32_t jobs,
        bool checkpoint)
{
    Options opt = options();
    size_t n = tasks.size();
    SweepReport report;
    report.name = sweep_name;
    report.tasks = n;
    payloads.assign(n, std::string());
    checkpoint = checkpoint && !opt.manifest_path.empty();

    std::vector<char> done(n, 0);

    // Salvage checkpointed results when resuming. A digest or shape
    // mismatch silently re-runs the task — stale data must never win.
    if (checkpoint && opt.resume) {
        std::lock_guard<std::mutex> lock(g_state_mutex);
        auto it = g_loaded.find(sweep_name);
        if (it != g_loaded.end() && it->second.tasks == n) {
            for (const ManifestEntry &entry : it->second.entries) {
                if (entry.task >= n || done[entry.task] != 0)
                    continue;
                if (digestOf(entry.payload) != entry.digest)
                    continue;
                payloads[entry.task] = entry.payload;
                done[entry.task] = 1;
                ++report.salvaged;
            }
        }
    }

    if (checkpoint) {
        // (Re)open this sweep's manifest section with what survived.
        std::lock_guard<std::mutex> lock(g_state_mutex);
        ManifestSweep &sweep = g_current[sweep_name];
        sweep.name = sweep_name;
        sweep.tasks = n;
        sweep.entries.clear();
        for (size_t i = 0; i < n; ++i) {
            if (done[i] != 0)
                sweep.entries.push_back(
                    ManifestEntry{i, digestOf(payloads[i]),
                                  payloads[i]});
        }
        writeManifestLocked(opt.manifest_path);
    }

    std::vector<size_t> pending;
    for (size_t i = 0; i < n; ++i) {
        if (done[i] != 0)
            continue;
        if (opt.only && *opt.only != i) {
            ++report.skipped;
            continue;
        }
        pending.push_back(i);
    }

    std::vector<char> ever_failed(n, 0);
    for (uint32_t attempt = 0; !pending.empty(); ++attempt) {
        std::vector<std::function<void()>> round;
        round.reserve(pending.size());
        for (size_t i : pending) {
            round.push_back([&tasks, &payloads, &opt, i, attempt,
                             checkpoint, &sweep_name] {
                if (attempt > 0) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::milli>(
                            backoffMs(opt, i, attempt)));
                }
                std::string payload;
                {
                    GuardScope guard(opt);
                    payload = tasks[i]();
                }
                payloads[i] = std::move(payload);
                if (checkpoint) {
                    std::lock_guard<std::mutex> lock(g_state_mutex);
                    ManifestSweep &sweep = g_current[sweep_name];
                    sweep.entries.push_back(
                        ManifestEntry{i, digestOf(payloads[i]),
                                      payloads[i]});
                    writeManifestLocked(opt.manifest_path);
                }
            });
        }

        std::vector<sweep::TaskFailure> failures =
            sweep::runCollect(std::move(round), jobs);

        std::vector<size_t> still_failing;
        for (const sweep::TaskFailure &f : failures) {
            size_t task = pending[f.task];
            report.errors.push_back(
                classifyError(task, attempt, f.error));
            ever_failed[task] = 1;
            still_failing.push_back(task);
        }
        for (size_t i : pending) {
            bool failed_now =
                std::find(still_failing.begin(), still_failing.end(),
                          i) != still_failing.end();
            if (!failed_now) {
                ++report.completed;
                if (ever_failed[i] != 0)
                    ++report.retried;
            }
        }
        pending = std::move(still_failing);
        if (attempt >= opt.retries)
            break;
    }

    report.failed = pending.size();
    report.failed_tasks = std::move(pending);
    std::sort(report.failed_tasks.begin(), report.failed_tasks.end());
    std::sort(report.errors.begin(), report.errors.end(),
              [](const TaskError &a, const TaskError &b) {
                  if (a.attempt != b.attempt)
                      return a.attempt < b.attempt;
                  return a.task < b.task;
              });

    {
        std::lock_guard<std::mutex> lock(g_state_mutex);
        g_reports.push_back(report);
    }
    return report;
}

} // namespace

SweepReport
run(const std::string &sweep_name, const std::vector<Task> &tasks,
    std::vector<std::string> &payloads, uint32_t jobs)
{
    return runImpl(sweep_name, tasks, payloads, jobs, true);
}

SweepReport
runUncheckpointed(const std::string &sweep_name,
                  const std::vector<Task> &tasks,
                  std::vector<std::string> &payloads, uint32_t jobs)
{
    return runImpl(sweep_name, tasks, payloads, jobs, false);
}

void
throwFailures(const SweepReport &report)
{
    std::vector<sweep::TaskFailure> failures;
    for (size_t task : report.failed_tasks) {
        std::string message = "failed";
        for (auto it = report.errors.rbegin(); it != report.errors.rend();
             ++it) {
            if (it->task == task) {
                message = strCat(taskErrorKindName(it->kind), ": ",
                                 it->message);
                break;
            }
        }
        failures.push_back(sweep::TaskFailure{task, message, nullptr});
    }
    throw sweep::SweepError(std::move(failures));
}

bool
guardActive()
{
    return t_guard.active;
}

void
chargeGuardEvents(uint64_t n)
{
    if (!t_guard.active || n == 0)
        return;
    for (const Budget &budget : t_guard.budgets) {
        uint64_t total =
            budget.count->fetch_add(n, std::memory_order_relaxed) + n;
        if (budget.limit != 0 && total > budget.limit) {
            throw TaskAbort(
                TaskErrorKind::kResourceExhausted,
                strCat("simulated-event budget exceeded: ", total,
                       " events > limit ", budget.limit));
        }
    }
}

void
pollGuardDeadline()
{
    if (!t_guard.active || t_guard.deadline_ms == 0.0)
        return;
    double now = sweep::monotonicMs();
    if (now > t_guard.deadline_ms) {
        throw TaskAbort(
            TaskErrorKind::kTimeout,
            strCat("watchdog deadline exceeded by ",
                   formatDouble(now - t_guard.deadline_ms, 1), " ms"));
    }
}

std::string
digestOf(const std::string &payload)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : payload) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
encodeManifest(const std::vector<ManifestSweep> &sweeps)
{
    std::string out = "{\n  \"version\": 1,\n";
    out += strCat("  \"written_ms\": ",
                  formatDouble(sweep::monotonicMs(), 3), ",\n");
    out += "  \"sweeps\": [\n";
    for (size_t s = 0; s < sweeps.size(); ++s) {
        const ManifestSweep &sweep = sweeps[s];
        out += "    {\"name\": ";
        appendJsonString(out, sweep.name);
        out += strCat(", \"tasks\": ", sweep.tasks,
                      ", \"completed\": [\n");
        std::vector<ManifestEntry> entries = sweep.entries;
        std::sort(entries.begin(), entries.end(),
                  [](const ManifestEntry &a, const ManifestEntry &b) {
                      return a.task < b.task;
                  });
        for (size_t e = 0; e < entries.size(); ++e) {
            out += strCat("      {\"task\": ", entries[e].task,
                          ", \"digest\": ");
            appendJsonString(out, entries[e].digest);
            out += ", \"payload\": ";
            appendJsonString(out, entries[e].payload);
            out += "}";
            out += e + 1 < entries.size() ? ",\n" : "\n";
        }
        out += "    ]}";
        out += s + 1 < sweeps.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

bool
decodeManifest(const std::string &text, std::vector<ManifestSweep> &out)
{
    out.clear();
    JsonReader r(text);
    if (!r.consume('{'))
        return false;
    while (!r.peek('}')) {
        std::string key;
        if (!r.readString(key) || !r.consume(':'))
            return false;
        bool ok = true;
        if (key == "sweeps") {
            if (!r.consume('['))
                return false;
            while (!r.peek(']')) {
                ManifestSweep sweep;
                if (!readManifestSweep(r, sweep))
                    return false;
                out.push_back(std::move(sweep));
                if (!r.consume(','))
                    break;
            }
            ok = r.consume(']');
        } else {
            ok = r.skipValue();
        }
        if (!ok)
            return false;
        if (!r.consume(','))
            break;
    }
    return r.consume('}');
}

bool
loadManifestFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return false;
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);

    std::vector<ManifestSweep> sweeps;
    if (!decodeManifest(text, sweeps)) {
        std::fprintf(stderr,
                     "[supervisor] warning: malformed manifest %s "
                     "ignored\n", path.c_str());
        return false;
    }
    std::lock_guard<std::mutex> lock(g_state_mutex);
    for (ManifestSweep &sweep : sweeps)
        g_loaded[sweep.name] = std::move(sweep);
    return true;
}

std::vector<ManifestSweep>
manifestState()
{
    std::lock_guard<std::mutex> lock(g_state_mutex);
    std::vector<ManifestSweep> out;
    out.reserve(g_current.size());
    for (const auto &[name, sweep] : g_current)
        out.push_back(sweep);
    return out;
}

void
resetForTest()
{
    std::lock_guard<std::mutex> lock(g_state_mutex);
    g_options = Options{};
    g_reports.clear();
    g_loaded.clear();
    g_current.clear();
}

} // namespace isol::isolbench::supervisor
