/**
 * @file
 * Fault-tolerant sweep supervisor: the job-runner robustness layer over
 * the parallel sweep engine.
 *
 * The sweep engine (sweep.hh) runs independent tasks fast and
 * deterministically; this layer keeps a long campaign alive when
 * individual tasks go bad. Each supervised task runs inside a guard
 * that
 *   - enforces per-task budgets: a wall-clock watchdog deadline
 *     (`--task-timeout-ms`) and a simulated-event budget
 *     (`--task-max-events`), polled cooperatively by Scenario::run()
 *     between event chunks so the simulation itself stays untouched;
 *   - converts overruns, std::exception, std::bad_alloc, and the
 *     runAll event-storm guard into a structured TaskError taxonomy
 *     (timeout | exception | invariant_violation | resource_exhausted)
 *     instead of tearing down the sweep;
 *   - retries failed tasks up to `--retries N` with capped exponential
 *     backoff whose jitter comes from the seeded Rng, so a replay of
 *     the same sweep is byte-identical;
 *   - checkpoints completed tasks (index + payload + digest) into a
 *     JSON run manifest written atomically, so `--resume` skips
 *     finished work after an interrupt and `--only <index>` re-runs a
 *     single failing task solo.
 *
 * Two entry points: run() supervises payload-producing tasks (each
 * returns the strings its caller will print, which is what makes
 * resumed stdout byte-identical), and guardedMap() supervises a typed
 * in-memory fan-out (the fairness repeats loop) with guards and retries
 * but no checkpointing. Every sweep records a SweepReport; benches
 * print the aggregate failure table on stderr next to the self-profiler.
 */
// isol: domain(coord)

#ifndef ISOL_ISOLBENCH_SUPERVISOR_HH
#define ISOL_ISOLBENCH_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "isolbench/sweep.hh"

namespace isol::isolbench::supervisor
{

// --- Error taxonomy ---------------------------------------------------

enum class TaskErrorKind : uint8_t
{
    kTimeout, //!< wall-clock watchdog deadline exceeded
    kException, //!< task threw (config error, bug, ...)
    kInvariantViolation, //!< result failed post-run validation
    kResourceExhausted, //!< event budget / storm guard / bad_alloc
};

const char *taskErrorKindName(TaskErrorKind kind);

/** One failed attempt of one task. */
struct TaskError
{
    size_t task = 0;
    uint32_t attempt = 0; //!< 0 = first try, n = nth retry
    TaskErrorKind kind = TaskErrorKind::kException;
    std::string message;
};

/** Thrown by the budget polls inside a guarded task. */
class TaskAbort : public std::runtime_error
{
  public:
    TaskAbort(TaskErrorKind kind, const std::string &msg)
        : std::runtime_error(msg), kind_(kind)
    {
    }

    TaskErrorKind kind() const { return kind_; }

  private:
    TaskErrorKind kind_;
};

/** Classify a captured task exception into the taxonomy. */
TaskError classifyError(size_t task, uint32_t attempt,
                        const std::exception_ptr &error);

// --- Configuration ----------------------------------------------------

/** Process-wide supervision policy (set from CLI flags). */
struct Options
{
    /** Extra attempts per failed task (0 = fail on first error). */
    uint32_t retries = 0;

    /** Wall-clock watchdog per attempt, ms (0 = no watchdog). */
    double task_timeout_ms = 0.0;

    /** Simulated-event budget per attempt (0 = no budget). */
    uint64_t max_task_events = 0;

    /** Load the manifest and skip checkpointed tasks. */
    bool resume = false;

    /** Run only this task index in every supervised sweep. */
    std::optional<uint64_t> only;

    /** Manifest file ("" disables checkpointing). */
    std::string manifest_path;

    /** Backoff ladder: base * 2^(attempt-1), capped, 50-100% jitter. */
    double backoff_base_ms = 50.0;
    double backoff_cap_ms = 2000.0;

    /** Seed of the jitter sequence (per task x attempt, replayable). */
    uint64_t backoff_seed = 0x150b0ff5;
};

void setOptions(const Options &options);
Options options();

/**
 * Deterministic backoff delay before retry `attempt` (>= 1) of `task`:
 * capped exponential with jitter drawn from a seeded Rng keyed on
 * (seed, task, attempt), so the delay sequence is identical on every
 * replay regardless of thread interleaving.
 */
double backoffMs(const Options &options, size_t task, uint32_t attempt);

// --- Reports ----------------------------------------------------------

/** Outcome of one supervised sweep. */
struct SweepReport
{
    std::string name;
    size_t tasks = 0;
    size_t completed = 0; //!< ran to success in this process
    size_t salvaged = 0; //!< skipped; payload restored from manifest
    size_t retried = 0; //!< completed, but needed >= 1 retry
    size_t skipped = 0; //!< not run because of --only
    size_t failed = 0; //!< exhausted the retry budget
    std::vector<TaskError> errors; //!< every error of every attempt
    std::vector<size_t> failed_tasks; //!< final failures, index order

    bool allOk() const { return failed == 0; }
};

/** Reports of every supervised sweep so far, in execution order. */
std::vector<SweepReport> reports();
void clearReports();

/**
 * Multi-line failure table (sweep x error kind x count x final-failed)
 * plus a totals line, for stderr. Always ends with the totals line; the
 * per-kind rows appear only when something actually went wrong.
 */
std::string failureTable();

// --- Supervised execution ---------------------------------------------

/**
 * A supervised task returns its result serialized as the text its
 * caller prints (or re-parses); payloads are what the manifest
 * checkpoints and what --resume restores.
 */
using Task = std::function<std::string()>;

/**
 * Run `tasks` under guards with retries and (when a manifest path is
 * configured) per-task checkpointing. `payloads[i]` receives task i's
 * payload — restored from the manifest when resuming — or "" when the
 * task finally failed or was skipped via --only. Never throws for task
 * failures: the returned report carries them.
 */
SweepReport run(const std::string &sweep_name,
                const std::vector<Task> &tasks,
                std::vector<std::string> &payloads, uint32_t jobs = 0);

/** guardedMap's engine: run() with checkpointing forced off. */
SweepReport runUncheckpointed(const std::string &sweep_name,
                              const std::vector<Task> &tasks,
                              std::vector<std::string> &payloads,
                              uint32_t jobs = 0);

/** Rethrow a report's final failures as a sweep::SweepError. */
[[noreturn]] void throwFailures(const SweepReport &report);

/**
 * Supervised typed fan-out for in-memory sweeps (e.g. the fairness
 * repeats loop): guards + retries + error classification, but no
 * checkpointing. R must be default-constructible and movable. Throws
 * SweepError when any task exhausts its retries — partial statistics
 * would silently skew folded results, so the whole map fails loudly
 * (and is itself retryable when nested under a supervised sweep).
 */
template <typename R, typename Fn>
std::vector<R>
guardedMap(const std::string &name, size_t n, Fn fn, uint32_t jobs = 0)
{
    std::vector<R> out(n);
    std::vector<Task> tasks;
    tasks.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        // isol: parallel
        tasks.push_back([&out, fn, i]() -> std::string {
            out[i] = fn(i);
            return std::string();
        });
    }
    std::vector<std::string> payloads;
    SweepReport report = runUncheckpointed(name, tasks, payloads, jobs);
    if (!report.allOk())
        throwFailures(report);
    return out;
}

// --- Task guard (used by Scenario::run and tests) ---------------------

/** True when the calling thread executes inside a supervised task. */
bool guardActive();

/**
 * Charge `n` executed simulated events against every budget on this
 * thread's guard chain; throws TaskAbort{resource_exhausted} when a
 * budget is exceeded. No-op outside a guard.
 */
void chargeGuardEvents(uint64_t n);

/**
 * Throw TaskAbort{timeout} when the guard's watchdog deadline passed.
 * Wall time feeds only this error path, never results. No-op outside a
 * guard.
 */
void pollGuardDeadline();

// --- Manifest (exposed for tests) -------------------------------------

/** One checkpointed task. */
struct ManifestEntry
{
    uint64_t task = 0;
    std::string digest;
    std::string payload;
};

/** Checkpoint state of one sweep. */
struct ManifestSweep
{
    std::string name;
    uint64_t tasks = 0;
    std::vector<ManifestEntry> entries;
};

/** FNV-1a 64-bit digest, 16 hex chars. */
std::string digestOf(const std::string &payload);

/** Serialize sweeps as the manifest JSON document. */
std::string encodeManifest(const std::vector<ManifestSweep> &sweeps);

/** Parse a manifest document; false on malformed input. */
bool decodeManifest(const std::string &text,
                    std::vector<ManifestSweep> &out);

/** Load checkpoints from `path` into the process manifest state. */
bool loadManifestFile(const std::string &path);

/** Snapshot of the in-process manifest state (tests). */
std::vector<ManifestSweep> manifestState();

/** Drop all supervision state: options, reports, manifest (tests). */
void resetForTest();

} // namespace isol::isolbench::supervisor

#endif // ISOL_ISOLBENCH_SUPERVISOR_HH
