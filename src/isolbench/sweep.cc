// isol: domain(coord)
#include "isolbench/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "common/strings.hh"

namespace isol::isolbench::sweep
{

namespace
{

// The sweep engine is the one sanctioned piece of cross-run shared
// state in src/: it exists to coordinate workers and collect profiles,
// is mutex/atomic-protected, and never feeds simulated decisions.

/** CLI/bench override; 0 = resolve automatically. */
// isol-lint: allow(D4): engine-wide --jobs override, atomic, never read
// by simulation code
std::atomic<uint32_t> g_jobs_override{0};

/** Set while executing inside a pool worker: nested sweeps go inline. */
// isol-lint: allow(D4): marks pool threads so nested sweeps degrade to
// inline execution; per-thread control flow, not simulation state
thread_local bool t_in_worker = false;

uint32_t
autoJobs()
{
    if (const char *env = std::getenv("ISOL_JOBS")) {
        if (auto parsed = parseUint(env); parsed && *parsed > 0)
            return static_cast<uint32_t>(*parsed);
    }
    uint32_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

// isol-lint: allow(D4): protects the worker-context capture hook below
std::mutex g_context_mutex;
// isol-lint: allow(D4): supervisor-installed capture hook so task
// budgets survive into nested worker pools; never read by simulation
WorkerContextCapture g_context_capture;

std::function<std::function<void()>()>
contextCapture()
{
    std::lock_guard<std::mutex> lock(g_context_mutex);
    return g_context_capture;
}

std::string
failureSummary(const std::vector<TaskFailure> &failures)
{
    std::string msg = strCat("sweep: ", failures.size(),
                             " tasks failed:");
    for (const TaskFailure &f : failures)
        msg += strCat(" [", f.task, "] ", f.message, ";");
    if (!msg.empty() && msg.back() == ';')
        msg.pop_back();
    return msg;
}

// isol-lint: allow(D4): protects the profile sink below
std::mutex g_profile_mutex;
// isol-lint: allow(D4): profiling sink (stderr/JSON only); recorded in
// completion order by design, summaries fold commutatively
std::vector<ScenarioProfile> g_profiles;

void
appendJsonProfile(std::string &out, const ScenarioProfile &p)
{
    out += strCat("    {\"name\": \"", p.name, "\", \"wall_ms\": ",
                  formatDouble(p.wall_ms, 3), ", \"events\": ", p.events,
                  ", \"events_per_sec\": ",
                  formatDouble(p.events_per_sec, 0),
                  ", \"peak_queue_depth\": ", p.peak_queue_depth,
                  ", \"invariant_checks\": ", p.invariant_checks,
                  ", \"adversary_tenants\": ", p.adversary_tenants,
                  ", \"gate_bookkeeping_ops\": ", p.gate_bookkeeping_ops,
                  "}");
}

} // namespace

uint32_t
defaultJobs()
{
    uint32_t override = g_jobs_override.load(std::memory_order_relaxed);
    return override != 0 ? override : autoJobs();
}

void
setDefaultJobs(uint32_t jobs)
{
    g_jobs_override.store(jobs, std::memory_order_relaxed);
}

void
setWorkerContextCapture(WorkerContextCapture capture)
{
    std::lock_guard<std::mutex> lock(g_context_mutex);
    g_context_capture = std::move(capture);
}

std::string
describeException(const std::exception_ptr &error)
{
    if (!error)
        return "no exception";
    try {
        std::rethrow_exception(error);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown non-std exception";
    }
}

SweepError::SweepError(std::vector<TaskFailure> failures)
    : std::runtime_error(failureSummary(failures)),
      failures_(std::move(failures))
{
}

std::vector<TaskFailure>
runCollect(std::vector<std::function<void()>> tasks, uint32_t jobs)
{
    size_t n = tasks.size();
    if (n == 0)
        return {};

    std::vector<std::exception_ptr> errors(n);
    std::atomic<size_t> next{0};
    auto drain = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                tasks[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    uint32_t workers = jobs != 0 ? jobs : defaultJobs();
    if (workers > n)
        workers = static_cast<uint32_t>(n);
    if (workers <= 1 || t_in_worker) {
        drain();
    } else {
        // Hand each worker the starting thread's task context (e.g. the
        // supervisor's budgets) so guards keep applying across the hop.
        std::function<void()> install;
        if (auto capture = contextCapture())
            install = capture();
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (uint32_t w = 0; w < workers; ++w) {
            pool.emplace_back([&drain, &install] {
                t_in_worker = true;
                if (install)
                    install();
                drain();
                t_in_worker = false;
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    std::vector<TaskFailure> failures;
    for (size_t i = 0; i < n; ++i) {
        if (errors[i]) {
            failures.push_back(
                TaskFailure{i, describeException(errors[i]), errors[i]});
        }
    }
    return failures;
}

void
run(std::vector<std::function<void()>> tasks, uint32_t jobs)
{
    std::vector<TaskFailure> failures = runCollect(std::move(tasks), jobs);
    if (failures.empty())
        return;
    if (failures.size() == 1)
        std::rethrow_exception(failures.front().error);
    throw SweepError(std::move(failures));
}

double
monotonicMs()
{
    // isol-lint: allow(D2): the sanctioned profiling clock; feeds
    // stderr/BENCH_sweep.json only, never simulated state
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(
               now.time_since_epoch())
        .count();
}

void
recordProfile(ScenarioProfile profile)
{
    std::lock_guard<std::mutex> lock(g_profile_mutex);
    g_profiles.push_back(std::move(profile));
}

std::vector<ScenarioProfile>
profiles()
{
    std::lock_guard<std::mutex> lock(g_profile_mutex);
    return g_profiles;
}

void
clearProfiles()
{
    std::lock_guard<std::mutex> lock(g_profile_mutex);
    g_profiles.clear();
}

ProfileSummary
profileSummary()
{
    ProfileSummary summary;
    std::lock_guard<std::mutex> lock(g_profile_mutex);
    for (const ScenarioProfile &p : g_profiles) {
        ++summary.scenarios;
        summary.wall_ms += p.wall_ms;
        summary.events += p.events;
        if (p.peak_queue_depth > summary.peak_queue_depth)
            summary.peak_queue_depth = p.peak_queue_depth;
        summary.invariant_checks += p.invariant_checks;
        summary.adversary_tenants += p.adversary_tenants;
        summary.gate_bookkeeping_ops += p.gate_bookkeeping_ops;
    }
    if (summary.wall_ms > 0.0) {
        summary.events_per_sec = static_cast<double>(summary.events) /
                                 (summary.wall_ms / 1e3);
    }
    return summary;
}

std::string
profileSummaryLine()
{
    ProfileSummary s = profileSummary();
    return strCat("[sweep] ", s.scenarios, " scenarios, ",
                  s.events, " events in ", formatDouble(s.wall_ms, 1),
                  " ms sim-cpu (", formatDouble(s.events_per_sec / 1e6, 2),
                  " M events/s, peak queue depth ", s.peak_queue_depth,
                  ", jobs=", defaultJobs(), ")");
}

bool
writeProfileJson(const std::string &path)
{
    ProfileSummary s = profileSummary();
    std::vector<ScenarioProfile> all = profiles();

    std::string out = "{\n";
    out += strCat("  \"jobs\": ", defaultJobs(), ",\n");
    out += strCat("  \"scenarios\": ", s.scenarios, ",\n");
    out += strCat("  \"wall_ms\": ", formatDouble(s.wall_ms, 3), ",\n");
    out += strCat("  \"events\": ", s.events, ",\n");
    out += strCat("  \"events_per_sec\": ",
                  formatDouble(s.events_per_sec, 0), ",\n");
    out += strCat("  \"peak_queue_depth\": ", s.peak_queue_depth, ",\n");
    out += strCat("  \"invariant_checks\": ", s.invariant_checks, ",\n");
    out += strCat("  \"adversary_tenants\": ", s.adversary_tenants,
                  ",\n");
    out += strCat("  \"gate_bookkeeping_ops\": ", s.gate_bookkeeping_ops,
                  ",\n");
    out += "  \"per_scenario\": [\n";
    for (size_t i = 0; i < all.size(); ++i) {
        appendJsonProfile(out, all[i]);
        out += i + 1 < all.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fputs(out.c_str(), f);
    std::fclose(f);
    return true;
}

} // namespace isol::isolbench::sweep
