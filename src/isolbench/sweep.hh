/**
 * @file
 * Parallel sweep engine: runs independent Scenario-style tasks across a
 * thread pool with results collected into pre-sized slots by sweep index,
 * so output is byte-identical to the sequential run for any thread count
 * and completion order.
 *
 * The design is shared-nothing, SPDK-reactor style: every task owns its
 * entire simulated system (Simulator, device models, seeded RNGs) and
 * communicates only through its result slot. Workers pull task indices
 * from one atomic counter — dynamic load balancing with no queues or
 * locks on the hot path. Nested sweeps (a parallelised runner invoked
 * from inside a worker) degrade to sequential execution instead of
 * spawning a second pool, so the thread count stays bounded at the
 * outermost fan-out.
 *
 * The engine also hosts the per-scenario wall-clock self-profiler:
 * Scenario::run() reports (events, events/sec, peak queue depth) here,
 * benches surface the aggregate on stderr and dump `BENCH_sweep.json`
 * so the perf trajectory is trackable across PRs. Profiling goes to
 * stderr/JSON only — stdout stays deterministic.
 */
// isol: domain(coord)

#ifndef ISOL_ISOLBENCH_SWEEP_HH
#define ISOL_ISOLBENCH_SWEEP_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace isol::isolbench::sweep
{

/** One failed task: its sweep index, message, and original exception. */
struct TaskFailure
{
    size_t task = 0;
    std::string message;
    std::exception_ptr error;
};

/**
 * Thrown by run() when more than one task failed: carries *every*
 * failure (index + what() + original exception_ptr) in task-index
 * order, so a caller scheduling retries sees the full set rather than
 * just the first casualty. A single failure is rethrown as the original
 * exception to preserve its type for existing catch sites.
 */
class SweepError : public std::runtime_error
{
  public:
    explicit SweepError(std::vector<TaskFailure> failures);

    const std::vector<TaskFailure> &failures() const { return failures_; }

  private:
    std::vector<TaskFailure> failures_;
};

/** Best-effort what() of a captured exception ("unknown" if opaque). */
std::string describeException(const std::exception_ptr &error);

/**
 * Worker count used when a runner passes jobs=0: the `ISOL_JOBS`
 * environment variable if set, else std::thread::hardware_concurrency.
 */
uint32_t defaultJobs();

/** Override the default worker count (CLI --jobs; 0 restores auto). */
void setDefaultJobs(uint32_t jobs);

/**
 * Execute every task exactly once on `jobs` workers (0 = defaultJobs())
 * and block until all complete. Tasks must be independent; each writes
 * only state it owns (typically a result slot keyed by its index).
 * Every task runs even if an earlier one throws. Afterwards a single
 * failure is rethrown as the original exception; several failures
 * become one SweepError carrying all of them in task-index order,
 * regardless of thread count.
 */
void run(std::vector<std::function<void()>> tasks, uint32_t jobs = 0);

/**
 * Like run(), but never throws for task failures: returns every failure
 * (index + message + exception) in task-index order instead. The sweep
 * supervisor's retry scheduler is built on this.
 */
std::vector<TaskFailure>
runCollect(std::vector<std::function<void()>> tasks, uint32_t jobs = 0);

/**
 * Register a capture hook for per-task execution context. When set, the
 * engine invokes it on the thread that starts a sweep; the returned
 * installer runs once on every pool worker before it pulls tasks, so
 * thread-local context (the supervisor's watchdog deadline and event
 * budgets) survives the hop into a nested worker pool. Pass nullptr to
 * clear.
 */
using WorkerContextCapture = std::function<std::function<void()>()>;
void setWorkerContextCapture(WorkerContextCapture capture);

/**
 * Map `fn(i)` over 0..n-1 in parallel, collecting results by index.
 * R must be default-constructible and movable.
 */
template <typename R, typename Fn>
std::vector<R>
map(size_t n, Fn fn, uint32_t jobs = 0)
{
    std::vector<R> out(n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (size_t i = 0; i < n; ++i)
        // isol: parallel
        tasks.push_back([&out, fn, i] { out[i] = fn(i); });
    run(std::move(tasks), jobs);
    return out;
}

// --- Per-scenario self-profiling -------------------------------------

/**
 * Monotonic wall-clock reading in milliseconds. The single sanctioned
 * profiling clock: wall time only ever feeds stderr summaries and
 * BENCH_sweep.json, never simulated state (isol-lint rule D2 flags any
 * other clock use).
 */
double monotonicMs();

/** Wall-clock profile of one completed Scenario::run(). */
struct ScenarioProfile
{
    std::string name;
    double wall_ms = 0.0;
    uint64_t events = 0;
    double events_per_sec = 0.0;
    uint64_t peak_queue_depth = 0;
    /** Runtime invariant checks performed (0 when checking is off). */
    uint64_t invariant_checks = 0;
    /** Tenants tagged with an adversary profile (chaos coverage). */
    uint64_t adversary_tenants = 0;
    /**
     * Per-cgroup bookkeeping operations inside the gates and elevators
     * (share recomputes, chain charge walks, window/queue scans), summed
     * over all devices. Deterministic event counts — with `events` they
     * give the fleet benches a "bookkeeping share" per scenario showing
     * where gate state handling becomes the scaling bottleneck.
     */
    uint64_t gate_bookkeeping_ops = 0;
};

/** Record one profile (thread-safe; called by Scenario::run()). */
void recordProfile(ScenarioProfile profile);

/** Snapshot of all profiles recorded so far, in completion order. */
std::vector<ScenarioProfile> profiles();

/** Drop all recorded profiles (tests). */
void clearProfiles();

/** Aggregate view over the recorded profiles. */
struct ProfileSummary
{
    uint64_t scenarios = 0;
    double wall_ms = 0.0; //!< summed single-scenario wall time
    uint64_t events = 0;
    double events_per_sec = 0.0; //!< events / summed wall time
    uint64_t peak_queue_depth = 0; //!< max across scenarios
    uint64_t invariant_checks = 0; //!< summed runtime invariant checks
    uint64_t adversary_tenants = 0; //!< summed adversarial tenants
    uint64_t gate_bookkeeping_ops = 0; //!< summed gate bookkeeping work
};

ProfileSummary profileSummary();

/** One-line human-readable summary (benches print this to stderr). */
std::string profileSummaryLine();

/**
 * Write the summary plus per-scenario profiles as JSON (BENCH_sweep.json).
 * Returns false when the file cannot be opened.
 */
bool writeProfileJson(const std::string &path);

} // namespace isol::isolbench::sweep

#endif // ISOL_ISOLBENCH_SWEEP_HH
