// isol: domain(coord)
#include "isolbench/validate.hh"

#include <cmath>

#include "common/logging.hh"
#include "isolbench/scenario.hh"

namespace isol::isolbench::validate
{

void
checkConservation(std::vector<Issue> &issues, const std::string &who,
                  uint64_t submitted, uint64_t completed, uint64_t failed,
                  uint64_t max_outstanding)
{
    if (completed > submitted) {
        issues.push_back(
            {"io-conservation",
             strCat(who, ": completed ", completed, " > submitted ",
                    submitted)});
        return;
    }
    if (failed > completed) {
        issues.push_back({"io-conservation",
                          strCat(who, ": failed ", failed,
                                 " > completed ", completed)});
        return;
    }
    uint64_t outstanding = submitted - completed;
    if (outstanding > max_outstanding) {
        issues.push_back(
            {"io-conservation",
             strCat(who, ": ", outstanding,
                    " requests neither completed nor failed (max "
                    "outstanding ", max_outstanding, ")")});
    }
}

void
checkThroughput(std::vector<Issue> &issues, const std::string &who,
                double gibs)
{
    if (!std::isfinite(gibs) || gibs < 0.0) {
        issues.push_back({"throughput",
                          strCat(who, ": bandwidth ", gibs,
                                 " GiB/s is negative or non-finite")});
    }
}

void
checkPercentiles(std::vector<Issue> &issues, const std::string &who,
                 int64_t p50, int64_t p95, int64_t p99)
{
    if (p50 < 0 || p95 < 0 || p99 < 0) {
        issues.push_back({"latency-percentiles",
                          strCat(who, ": negative percentile (p50=", p50,
                                 " p95=", p95, " p99=", p99, ")")});
        return;
    }
    if (p50 > p95 || p95 > p99) {
        issues.push_back(
            {"latency-percentiles",
             strCat(who, ": percentiles not monotone (p50=", p50,
                    " p95=", p95, " p99=", p99, ")")});
    }
}

void
checkRatio(std::vector<Issue> &issues, const std::string &who,
           double value)
{
    if (!std::isfinite(value) || value < 0.0 || value > 1.0) {
        issues.push_back({"ratio",
                          strCat(who, ": ", value,
                                 " outside [0, 1] or non-finite")});
    }
}

std::vector<Issue>
checkScenario(Scenario &scenario)
{
    std::vector<Issue> issues;

    // Apps can still hold in-flight I/O when simulated time expires, so
    // conservation is bounded by the total queue depth, not zero.
    uint64_t total_iodepth = 0;
    for (uint32_t i = 0; i < scenario.numApps(); ++i)
        total_iodepth += scenario.app(i).spec().iodepth;

    for (uint32_t d = 0; d < scenario.numDevices(); ++d) {
        blk::BlockDevice &bdev = scenario.device(d);
        checkConservation(issues, strCat("nvme", d), bdev.submitted(),
                          bdev.completed(),
                          bdev.faultStats().failed_ios, total_iodepth);
    }

    checkThroughput(issues, "aggregate", scenario.aggregateGiBs());
    checkRatio(issues, "cpu-utilization", scenario.cpuUtilization());

    for (uint32_t i = 0; i < scenario.numApps(); ++i) {
        workload::FioJob &job = scenario.app(i);
        const std::string &name = job.spec().name;
        checkThroughput(issues, name, scenario.appGiBs(i));
        if (job.windowIos() > 0) {
            const stats::Histogram &lat = job.latency();
            checkPercentiles(issues, name, lat.percentile(50),
                             lat.percentile(95), lat.percentile(99));
        }
        if (job.windowIos() > job.totalIos()) {
            issues.push_back(
                {"io-conservation",
                 strCat(name, ": window I/Os ", job.windowIos(),
                        " > total I/Os ", job.totalIos())});
        }
    }
    return issues;
}

void
enforce(const std::vector<Issue> &issues, const std::string &context)
{
    if (issues.empty())
        return;
    std::string msg = strCat("result validation failed for ", context,
                             " (", issues.size(), " issues):");
    for (const Issue &issue : issues)
        msg += strCat(" [", issue.check, "] ", issue.detail, ";");
    if (msg.back() == ';')
        msg.pop_back();
    throw InvariantViolation(msg);
}

} // namespace isol::isolbench::validate
