/**
 * @file
 * Post-run invariant checking for scenario results.
 *
 * A silently-wrong result is worse than a crashed task: it flows into a
 * figure and misleads. Every Scenario::run() therefore ends with a pass
 * over cheap structural invariants — I/O conservation (submitted ==
 * completed + outstanding, failed <= completed), non-negative finite
 * throughput, monotone latency percentiles (p50 <= p95 <= p99), CPU
 * utilisation inside [0, 1] — and a violation raises a structured
 * InvariantViolation that the sweep supervisor classifies as
 * `invariant_violation` (unsupervised runs see the exception directly).
 *
 * The individual checks are pure functions over plain numbers so tests
 * can feed them doctored results without building a simulation.
 */
// isol: domain(coord)

#ifndef ISOL_ISOLBENCH_VALIDATE_HH
#define ISOL_ISOLBENCH_VALIDATE_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace isol::isolbench
{

class Scenario;

namespace validate
{

/** Thrown by enforce(): a completed run produced inconsistent results. */
class InvariantViolation : public std::runtime_error
{
  public:
    explicit InvariantViolation(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** One failed invariant: which check, and the offending numbers. */
struct Issue
{
    std::string check;
    std::string detail;
};

/**
 * I/O conservation for one device: every submitted request is either
 * completed (failed requests also complete, with an error) or still
 * outstanding, and the outstanding population cannot exceed the total
 * queue depth of the apps driving the device.
 */
void checkConservation(std::vector<Issue> &issues, const std::string &who,
                       uint64_t submitted, uint64_t completed,
                       uint64_t failed, uint64_t max_outstanding);

/** Throughput must be finite and non-negative. */
void checkThroughput(std::vector<Issue> &issues, const std::string &who,
                     double gibs);

/** Latency percentiles must be non-negative and monotone in p. */
void checkPercentiles(std::vector<Issue> &issues, const std::string &who,
                      int64_t p50, int64_t p95, int64_t p99);

/** A utilisation-style ratio must lie in [0, 1]. */
void checkRatio(std::vector<Issue> &issues, const std::string &who,
                double value);

/** Run every invariant over a completed scenario. */
std::vector<Issue> checkScenario(Scenario &scenario);

/** Throw InvariantViolation listing `issues`; no-op when empty. */
void enforce(const std::vector<Issue> &issues, const std::string &context);

} // namespace validate

} // namespace isol::isolbench

#endif // ISOL_ISOLBENCH_VALIDATE_HH
