/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * Events are (time, sequence, callback) triples ordered by time and, for
 * equal times, by insertion order so simulations are fully deterministic.
 * Cancellation is supported through lightweight event ids; cancelled events
 * are dropped lazily when popped.
 */

#ifndef ISOL_SIM_EVENT_QUEUE_HH
#define ISOL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace isol::sim
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = uint64_t;

/** Sentinel id meaning "no event". */
constexpr EventId kInvalidEventId = 0;

/**
 * Time-ordered event queue with deterministic tie-breaking.
 *
 * The queue owns no notion of "now"; the Simulator drives it and maintains
 * the clock. Callbacks should capture at most a pointer and a small id so
 * std::function stays allocation-free on the hot path.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule `cb` to fire at absolute time `when`. */
    EventId
    schedule(SimTime when, Callback cb)
    {
        EventId id = next_id_++;
        heap_.push(Event{when, id, std::move(cb)});
        return id;
    }

    /**
     * Cancel a previously scheduled event. Safe to call for ids that have
     * already fired (harmless; the stale marker is dropped lazily).
     * Returns true the first time an id is cancelled.
     */
    bool
    cancel(EventId id)
    {
        if (id == kInvalidEventId || id >= next_id_)
            return false;
        return cancelled_.insert(id).second;
    }

    /** True when no live (non-cancelled) events remain. */
    bool
    empty() const
    {
        skipCancelled();
        return heap_.empty();
    }

    /**
     * Live events, assuming every cancelled marker still references a
     * pending event (an upper bound when fired ids were cancelled).
     */
    size_t
    size() const
    {
        size_t pending = heap_.size();
        size_t dead = cancelled_.size();
        return pending > dead ? pending - dead : 0;
    }

    /** Time of the earliest live event; kSimTimeMax when empty. */
    SimTime
    nextTime() const
    {
        skipCancelled();
        return heap_.empty() ? kSimTimeMax : heap_.top().when;
    }

    /**
     * Pop and return the earliest live event. Precondition: !empty()
     * was checked (which also drops cancelled events from the top).
     * The returned pair is (time, callback); the caller invokes it.
     */
    std::pair<SimTime, Callback>
    pop()
    {
        skipCancelled();
        // The heap stores const tops; move out via const_cast, which is
        // safe because we pop immediately after.
        Event &top = const_cast<Event &>(heap_.top());
        std::pair<SimTime, Callback> out{top.when, std::move(top.cb)};
        heap_.pop();
        return out;
    }

  private:
    struct Event
    {
        SimTime when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /**
     * Drop cancelled events sitting at the top of the heap. Logically
     * const (the set of live events is unchanged), so the lazy cleanup
     * may run from const observers like empty()/nextTime().
     */
    void
    skipCancelled() const
    {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end())
                break;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
    mutable std::unordered_set<EventId> cancelled_;
    EventId next_id_ = 1;
};

} // namespace isol::sim

#endif // ISOL_SIM_EVENT_QUEUE_HH
