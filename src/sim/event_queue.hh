/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * Events are (time, sequence, callback) triples ordered by time and, for
 * equal times, by insertion order so simulations are fully deterministic.
 *
 * Layout: a 4-ary heap of (when, seq, slot) keys over a slot arena that
 * owns the callbacks. Slots carry generation tags, so an EventId is
 * (slot, generation) and cancellation is O(1): validate the tag, destroy
 * the callback in place, and let the dead heap key fall out lazily at the
 * top. There is no side table — cancelling an id that already fired is a
 * tag mismatch, not a leaked marker — and `size()` is an exact live
 * count. The 4-ary shape halves tree depth versus the binary
 * `std::priority_queue` it replaced and keeps comparisons inside one
 * cache line per level; callbacks use SmallCallback so the pointer+id
 * captures the simulator schedules by the million never allocate.
 */

#ifndef ISOL_SIM_EVENT_QUEUE_HH
#define ISOL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "sim/small_function.hh"

namespace isol::sim
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = uint64_t;

/** Sentinel id meaning "no event". */
constexpr EventId kInvalidEventId = 0;

/**
 * Time-ordered event queue with deterministic tie-breaking.
 *
 * The queue owns no notion of "now"; the Simulator drives it and maintains
 * the clock.
 */
class EventQueue
{
  public:
    using Callback = SmallCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule `cb` to fire at absolute time `when`. */
    EventId
    schedule(SimTime when, Callback cb)
    {
        uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            slot = static_cast<uint32_t>(slots_.size());
            slots_.emplace_back();
        }
        Slot &s = slots_[slot];
        s.cb = std::move(cb);
        s.state = State::kPending;
        heap_.push_back(Key{when, next_seq_++, slot});
        siftUp(heap_.size() - 1);
        ++live_;
        if (heap_.size() > peak_depth_)
            peak_depth_ = heap_.size();
        return makeId(slot, s.gen);
    }

    /**
     * Cancel a previously scheduled event in O(1). Safe to call for ids
     * that have already fired (the generation tag no longer matches).
     * Returns true iff the event was still pending.
     */
    bool
    cancel(EventId id)
    {
        uint32_t slot;
        uint32_t gen;
        if (!splitId(id, slot, gen) || slot >= slots_.size())
            return false;
        Slot &s = slots_[slot];
        if (s.state != State::kPending || s.gen != gen)
            return false;
        // Destroy the callback now (releases captures); the heap key is
        // dropped lazily when it surfaces at the top.
        s.cb.reset();
        s.state = State::kCancelled;
        ++s.gen; // a second cancel with the same id mismatches
        --live_;
        return true;
    }

    /** True when no live (non-cancelled) events remain. */
    bool empty() const { return live_ == 0; }

    /** Exact number of live (non-cancelled) pending events. */
    size_t size() const { return live_; }

    /** Time of the earliest live event; kSimTimeMax when empty. */
    SimTime
    nextTime() const
    {
        skipCancelled();
        return live_ == 0 ? kSimTimeMax : heap_.front().when;
    }

    /**
     * Pop and return the earliest live event. Precondition: !empty().
     * The returned pair is (time, callback); the caller invokes it.
     */
    std::pair<SimTime, Callback>
    pop()
    {
        skipCancelled();
        const Key top = heap_.front();
        Slot &s = slots_[top.slot];
        std::pair<SimTime, Callback> out{top.when, std::move(s.cb)};
        freeSlot(top.slot);
        removeTop();
        --live_;
        return out;
    }

    /** High-water mark of pending events (profiling). */
    size_t peakDepth() const { return peak_depth_; }

  private:
    enum class State : uint8_t { kFree, kPending, kCancelled };

    /** Heap key; comparisons never touch the slot arena. */
    struct Key
    {
        SimTime when;
        uint64_t seq;
        uint32_t slot;
    };

    struct Slot
    {
        Callback cb;
        uint32_t gen = 0;
        State state = State::kFree;
    };

    static EventId
    makeId(uint32_t slot, uint32_t gen)
    {
        return (static_cast<EventId>(slot) + 1) << 32 | gen;
    }

    /** Decode an id; false for kInvalidEventId and malformed handles. */
    static bool
    splitId(EventId id, uint32_t &slot, uint32_t &gen)
    {
        uint64_t hi = id >> 32;
        if (hi == 0)
            return false;
        slot = static_cast<uint32_t>(hi - 1);
        gen = static_cast<uint32_t>(id);
        return true;
    }

    static bool
    before(const Key &a, const Key &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    void
    siftUp(size_t i)
    {
        Key key = heap_[i];
        while (i > 0) {
            size_t parent = (i - 1) / 4;
            if (!before(key, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = key;
    }

    void
    siftDown(size_t i)
    {
        Key key = heap_[i];
        size_t n = heap_.size();
        for (;;) {
            size_t first = i * 4 + 1;
            if (first >= n)
                break;
            size_t best = first;
            size_t last = first + 4 < n ? first + 4 : n;
            for (size_t c = first + 1; c < last; ++c) {
                if (before(heap_[c], heap_[best]))
                    best = c;
            }
            if (!before(heap_[best], key))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = key;
    }

    void
    removeTop()
    {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }

    void
    freeSlot(uint32_t slot)
    {
        Slot &s = slots_[slot];
        s.state = State::kFree;
        ++s.gen; // fired/cleaned ids mismatch from now on
        free_.push_back(slot);
    }

    /**
     * Drop cancelled keys sitting at the top of the heap. Logically const
     * (the set of live events is unchanged), so the lazy cleanup may run
     * from const observers like nextTime().
     */
    void
    skipCancelled() const
    {
        auto *self = const_cast<EventQueue *>(this);
        while (!self->heap_.empty()) {
            Slot &s = self->slots_[self->heap_.front().slot];
            if (s.state != State::kCancelled)
                break;
            self->freeSlot(self->heap_.front().slot);
            self->removeTop();
        }
    }

    std::vector<Key> heap_;
    std::vector<Slot> slots_;
    std::vector<uint32_t> free_;
    uint64_t next_seq_ = 0;
    size_t live_ = 0;
    size_t peak_depth_ = 0;
};

} // namespace isol::sim

#endif // ISOL_SIM_EVENT_QUEUE_HH
