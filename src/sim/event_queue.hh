/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * Events are (time, sequence, callback) triples ordered by time and, for
 * equal times, by insertion order so simulations are fully deterministic.
 *
 * Layout: a hierarchical timing wheel (6 levels x 64 slots, 1 ns tick,
 * ~68.7 s span) over a slot arena that owns the callbacks, with a 4-ary
 * heap as an overflow ladder for events beyond the wheel horizon (or
 * behind the cursor). Schedule and cancel are O(1); pop is amortised O(1)
 * for the clustered short-horizon timers that dominate this DES. Wheel
 * buckets are intrusive singly-linked lists through the arena, with one
 * 64-bit occupancy bitmap per level, so finding the next bucket is a
 * couple of ctz instructions.
 *
 * Determinism: a cascade can interleave entries out of sequence order
 * inside a bucket, so buckets are never trusted for ties. Instead the
 * minimum bucket is drained into a `ready_` list sorted by sequence
 * number, and pop/nextTime always compare the ready head against the
 * ladder top with the full (when, seq) key. The observable pop order is
 * therefore exactly the (when, seq) order of the old comparison-based
 * queue, byte for byte.
 *
 * Slots carry generation tags, so an EventId is (slot, generation) and
 * cancellation is O(1): validate the tag, destroy the callback in place,
 * and let the dead entry fall out lazily when its bucket or heap key is
 * next visited. There is no side table — cancelling an id that already
 * fired is a tag mismatch, not a leaked marker — and `size()` is an
 * exact live count. Callbacks use SmallCallback so the pointer+id
 * captures the simulator schedules by the million never allocate.
 */
// isol: domain(sim)

#ifndef ISOL_SIM_EVENT_QUEUE_HH
#define ISOL_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "sim/small_function.hh"

namespace isol::sim
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = uint64_t;

/** Sentinel id meaning "no event". */
constexpr EventId kInvalidEventId = 0;

/**
 * Time-ordered event queue with deterministic tie-breaking.
 *
 * The queue owns no notion of "now"; the Simulator drives it and maintains
 * the clock. The wheel keeps its own cursor, which only ever trails the
 * simulator clock: it advances to the time of the earliest live event
 * during settle(), so an event scheduled "in the past" relative to the
 * cursor (possible only through direct EventQueue use in tests) is routed
 * to the ladder and still pops in exact (when, seq) order.
 */
class EventQueue
{
  public:
    using Callback = SmallCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule `cb` to fire at absolute time `when`. */
    EventId
    schedule(SimTime when, Callback cb)
    {
        uint32_t slot = allocSlot();
        Slot &s = slots_[slot];
        s.cb = std::move(cb);
        s.when = when;
        s.seq = next_seq_++;
        s.next = kNoSlot;
        s.state = State::kPending;
        place(slot, when);
        ++live_;
        if (live_ > peak_depth_)
            peak_depth_ = live_;
        return makeId(slot, s.gen);
    }

    /**
     * Cancel a previously scheduled event in O(1). Safe to call for ids
     * that have already fired (the generation tag no longer matches).
     * Returns true iff the event was still pending.
     */
    bool
    cancel(EventId id)
    {
        uint32_t slot;
        uint32_t gen;
        if (!splitId(id, slot, gen) || slot >= slots_.size())
            return false;
        Slot &s = slots_[slot];
        if (s.state != State::kPending || s.gen != gen)
            return false;
        // Destroy the callback now (releases captures); the bucket entry
        // or ladder key is dropped lazily when it is next visited.
        s.cb.reset();
        s.state = State::kCancelled;
        ++s.gen; // a second cancel with the same id mismatches
        --live_;
        return true;
    }

    /** True when no live (non-cancelled) events remain. */
    bool empty() const { return live_ == 0; }

    /** Exact number of live (non-cancelled) pending events. */
    size_t size() const { return live_; }

    /** Time of the earliest live event; kSimTimeMax when empty. */
    SimTime
    nextTime() const
    {
        if (live_ == 0)
            return kSimTimeMax;
        // Logically const: the set of live events is unchanged; settling
        // only reorganises storage (cursor advance, cascades, lazy frees).
        auto *self = const_cast<EventQueue *>(this);
        return self->settle() == Source::kReady
                   ? self->slots_[self->ready_[self->ready_head_]].when
                   : self->ladder_.front().when;
    }

    /**
     * Pop and return the earliest live event. Precondition: !empty().
     * The returned pair is (time, callback); the caller invokes it.
     */
    std::pair<SimTime, Callback>
    pop()
    {
        if (settle() == Source::kLadder) {
            const Key top = ladder_.front();
            Slot &s = slots_[top.slot];
            std::pair<SimTime, Callback> out{top.when, std::move(s.cb)};
            freeSlot(top.slot);
            ladderRemoveTop();
            --live_;
            return out;
        }
        uint32_t slot = ready_[ready_head_++];
        Slot &s = slots_[slot];
        std::pair<SimTime, Callback> out{s.when, std::move(s.cb)};
        freeSlot(slot);
        --live_;
        return out;
    }

    /** High-water mark of live pending events (profiling). */
    size_t peakDepth() const { return peak_depth_; }

  private:
    enum class State : uint8_t { kFree, kPending, kCancelled };

    /** Where settle() found the earliest live event. */
    enum class Source : uint8_t { kReady, kLadder };

    static constexpr int kLevelBits = 6; //!< 64 slots per level
    static constexpr int kLevels = 6; //!< span 64^6 ns ~= 68.7 s
    static constexpr uint32_t kSlotsPerLevel = 1u << kLevelBits;
    static constexpr uint32_t kSlotMask = kSlotsPerLevel - 1;
    static constexpr uint32_t kNoSlot = UINT32_MAX;

    struct Slot
    {
        Callback cb;
        SimTime when = 0;
        uint64_t seq = 0;
        uint32_t next = kNoSlot; //!< intrusive bucket link
        uint32_t gen = 0;
        State state = State::kFree;
    };

    /** Overflow-ladder key; comparisons never touch the slot arena. */
    struct Key
    {
        SimTime when;
        uint64_t seq;
        uint32_t slot;
    };

    struct Bucket
    {
        uint32_t head = kNoSlot;
        uint32_t tail = kNoSlot;
    };

    static EventId
    makeId(uint32_t slot, uint32_t gen)
    {
        return (static_cast<EventId>(slot) + 1) << 32 | gen;
    }

    /** Decode an id; false for kInvalidEventId and malformed handles. */
    static bool
    splitId(EventId id, uint32_t &slot, uint32_t &gen)
    {
        uint64_t hi = id >> 32;
        if (hi == 0)
            return false;
        slot = static_cast<uint32_t>(hi - 1);
        gen = static_cast<uint32_t>(id);
        return true;
    }

    static bool
    before(const Key &a, const Key &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    /**
     * Wheel level for an event at `when` given the cursor: the index of
     * the highest differing bit, divided by the per-level shift. kLevels
     * and above means "beyond the horizon" (ladder). Precondition:
     * when >= cur_ (both non-negative, so the casts are value-preserving).
     */
    int
    levelFor(SimTime when) const
    {
        uint64_t diff =
            static_cast<uint64_t>(when) ^ static_cast<uint64_t>(cur_);
        if (diff == 0)
            return 0;
        return (63 - std::countl_zero(diff)) / kLevelBits;
    }

    uint32_t
    allocSlot()
    {
        if (!free_.empty()) {
            uint32_t slot = free_.back();
            free_.pop_back();
            return slot;
        }
        auto slot = static_cast<uint32_t>(slots_.size());
        slots_.emplace_back();
        return slot;
    }

    void
    freeSlot(uint32_t slot)
    {
        Slot &s = slots_[slot];
        s.cb.reset();
        s.state = State::kFree;
        ++s.gen; // fired/cleaned ids mismatch from now on
        s.next = kNoSlot;
        free_.push_back(slot);
    }

    /** File `slot` into the wheel or, past the horizon, the ladder. */
    void
    place(uint32_t slot, SimTime when)
    {
        if (when < cur_) {
            ladderPush(Key{when, slots_[slot].seq, slot});
            return;
        }
        int level = levelFor(when);
        if (level >= kLevels) {
            ladderPush(Key{when, slots_[slot].seq, slot});
            return;
        }
        uint32_t b = static_cast<uint32_t>(static_cast<uint64_t>(when) >>
                                           (kLevelBits * level)) &
                     kSlotMask;
        Bucket &bucket = buckets_[level][b];
        slots_[slot].next = kNoSlot;
        if (bucket.head == kNoSlot)
            bucket.head = slot;
        else
            slots_[bucket.tail].next = slot;
        bucket.tail = slot;
        occ_[level] |= uint64_t{1} << b;
    }

    void
    ladderPush(Key key)
    {
        ladder_.push_back(key);
        size_t i = ladder_.size() - 1;
        while (i > 0) {
            size_t parent = (i - 1) / 4;
            if (!before(key, ladder_[parent]))
                break;
            ladder_[i] = ladder_[parent];
            i = parent;
        }
        ladder_[i] = key;
    }

    void
    ladderRemoveTop()
    {
        ladder_.front() = ladder_.back();
        ladder_.pop_back();
        if (ladder_.empty())
            return;
        Key key = ladder_.front();
        size_t i = 0;
        size_t n = ladder_.size();
        for (;;) {
            size_t first = i * 4 + 1;
            if (first >= n)
                break;
            size_t best = first;
            size_t last = first + 4 < n ? first + 4 : n;
            for (size_t c = first + 1; c < last; ++c) {
                if (before(ladder_[c], ladder_[best]))
                    best = c;
            }
            if (!before(ladder_[best], key))
                break;
            ladder_[i] = ladder_[best];
            i = best;
        }
        ladder_[i] = key;
    }

    /** Drop cancelled keys sitting at the top of the ladder. */
    void
    stripLadder()
    {
        while (!ladder_.empty()) {
            Slot &s = slots_[ladder_.front().slot];
            if (s.state == State::kPending)
                break;
            freeSlot(ladder_.front().slot);
            ladderRemoveTop();
        }
    }

    /** Advance the ready cursor over entries cancelled since the drain. */
    void
    stripReady()
    {
        while (ready_head_ < ready_.size()) {
            uint32_t slot = ready_[ready_head_];
            if (slots_[slot].state == State::kPending)
                break;
            freeSlot(slot);
            ++ready_head_;
        }
        if (ready_head_ == ready_.size()) {
            ready_.clear();
            ready_head_ = 0;
        }
    }

    /**
     * Move ladder entries that the advancing cursor brought inside the
     * wheel horizon back into the wheel (promotion). Entries behind the
     * cursor stay on the ladder and win pops via the (when, seq) compare.
     */
    void
    promoteLadder()
    {
        for (;;) {
            stripLadder();
            if (ladder_.empty())
                break;
            const Key top = ladder_.front();
            if (top.when < cur_ || levelFor(top.when) >= kLevels)
                break;
            ladderRemoveTop();
            place(top.slot, top.when);
        }
    }

    /**
     * Find the lowest-level, lowest-index bucket holding a live entry,
     * purging dead-only buckets on the way. Live entries at one level all
     * share the enclosing higher-level window, so slot order is time
     * order and the first live bucket holds the wheel minimum.
     */
    bool
    findMinBucket(int &level_out, uint32_t &bucket_out)
    {
        for (int level = 0; level < kLevels; ++level) {
            uint64_t occ = occ_[level];
            while (occ != 0) {
                auto b = static_cast<uint32_t>(std::countr_zero(occ));
                if (compactBucket(level, b)) {
                    level_out = level;
                    bucket_out = b;
                    return true;
                }
                occ &= occ - 1;
            }
        }
        return false;
    }

    /**
     * Free cancelled entries in a bucket, relinking the survivors. Clears
     * the occupancy bit and returns false when nothing live remains.
     */
    bool
    compactBucket(int level, uint32_t b)
    {
        Bucket &bucket = buckets_[level][b];
        uint32_t head = kNoSlot;
        uint32_t tail = kNoSlot;
        uint32_t it = bucket.head;
        while (it != kNoSlot) {
            uint32_t next = slots_[it].next;
            if (slots_[it].state == State::kPending) {
                slots_[it].next = kNoSlot;
                if (head == kNoSlot)
                    head = it;
                else
                    slots_[tail].next = it;
                tail = it;
            } else {
                freeSlot(it);
            }
            it = next;
        }
        bucket.head = head;
        bucket.tail = tail;
        if (head == kNoSlot) {
            occ_[level] &= ~(uint64_t{1} << b);
            return false;
        }
        return true;
    }

    /**
     * Drain the minimum bucket: advance the cursor to its earliest live
     * time, move that time's entries (sequence-sorted) into `ready_`, and
     * cascade the rest down by re-placing them against the new cursor.
     * Re-placement always lands strictly below `level` — an entry sharing
     * the minimum's level-`level` digit differs from it only in lower
     * bits. Precondition: compactBucket(level, b) just returned true.
     */
    void
    drainMinBucket(int level, uint32_t b)
    {
        Bucket &bucket = buckets_[level][b];
        uint32_t head = bucket.head;
        bucket.head = kNoSlot;
        bucket.tail = kNoSlot;
        occ_[level] &= ~(uint64_t{1} << b);

        SimTime min_when = slots_[head].when;
        for (uint32_t it = slots_[head].next; it != kNoSlot;
             it = slots_[it].next) {
            if (slots_[it].when < min_when)
                min_when = slots_[it].when;
        }
        if (min_when > cur_)
            cur_ = min_when;

        uint32_t it = head;
        while (it != kNoSlot) {
            uint32_t next = slots_[it].next;
            slots_[it].next = kNoSlot;
            if (slots_[it].when == min_when)
                ready_.push_back(it);
            else
                place(it, slots_[it].when);
            it = next;
        }
        std::sort(ready_.begin(), ready_.end(),
                  [this](uint32_t a, uint32_t b2) {
                      return slots_[a].seq < slots_[b2].seq;
                  });
    }

    /**
     * Bring the queue to a poppable state and report where the earliest
     * live event sits. Precondition: live_ > 0. Amortised O(1): each
     * event cascades at most kLevels times over its lifetime, and dead
     * entries are freed the first time a scan meets them.
     */
    Source
    settle()
    {
        for (;;) {
            stripReady();
            stripLadder();
            if (ready_head_ < ready_.size()) {
                // Entries scheduled after the drain share this `when`
                // only with larger seq, and live wheel entries are never
                // earlier than the drained minimum, so only the ladder
                // (events behind the cursor) can beat the ready head.
                if (ladder_.empty())
                    return Source::kReady;
                const Slot &rf = slots_[ready_[ready_head_]];
                return before(ladder_.front(),
                              Key{rf.when, rf.seq, 0})
                           ? Source::kLadder
                           : Source::kReady;
            }
            promoteLadder();
            int level;
            uint32_t b;
            if (findMinBucket(level, b)) {
                // A surviving ladder top is either behind the cursor
                // (wins by time) or beyond the horizon (loses to any
                // wheel entry); promoteLadder() left nothing in between.
                if (!ladder_.empty() && ladder_.front().when < cur_)
                    return Source::kLadder;
                drainMinBucket(level, b);
                continue;
            }
            // Wheel empty: the earliest live event is on the ladder.
            if (ladder_.front().when <= cur_)
                return Source::kLadder;
            // Jump the cursor to it and pull it (and its when-group)
            // into the wheel so bucket bookkeeping stays in one place.
            cur_ = ladder_.front().when;
            promoteLadder();
        }
    }

    Bucket buckets_[kLevels][kSlotsPerLevel];
    uint64_t occ_[kLevels] = {};
    std::vector<Slot> slots_;
    std::vector<uint32_t> free_;
    std::vector<Key> ladder_; //!< 4-ary heap: far-future / behind-cursor
    std::vector<uint32_t> ready_; //!< current when-group, seq-sorted
    size_t ready_head_ = 0;
    SimTime cur_ = 0; //!< wheel cursor; trails the earliest live event
    uint64_t next_seq_ = 0;
    size_t live_ = 0;
    size_t peak_depth_ = 0;
};

} // namespace isol::sim

#endif // ISOL_SIM_EVENT_QUEUE_HH
