// isol: domain(sim)
#include "sim/invariants.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"
#include "common/strings.hh"

namespace isol::sim
{

namespace
{

// isol-lint: allow(D4): process-wide opt-in flag resolved once from the
// environment / CLI before any scenario is built; never flipped
// mid-sweep, so it cannot make two runs of one scenario diverge
std::atomic<int> g_check_default{-1};

} // namespace

bool
checkInvariantsDefault()
{
    int v = g_check_default.load(std::memory_order_relaxed);
    if (v < 0) {
        const char *env = std::getenv("ISOL_CHECK_INVARIANTS");
        v = env != nullptr && env[0] != '\0' && env[0] != '0' ? 1 : 0;
        g_check_default.store(v, std::memory_order_relaxed);
    }
    return v > 0;
}

void
setCheckInvariantsDefault(bool on)
{
    g_check_default.store(on ? 1 : 0, std::memory_order_relaxed);
}

InvariantChecker::InvariantChecker(std::string context)
    : context_(std::move(context))
{
}

void
InvariantChecker::violate(const char *what, const std::string &detail)
{
    throw InvariantViolation(strCat("invariant '", what, "' violated in '",
                                    context_, "': ", detail));
}

void
InvariantChecker::require(bool ok, const char *what,
                          const std::string &detail)
{
    ++checks_;
    if (!ok)
        violate(what, detail);
}

InvariantChecker::Group &
InvariantChecker::groupFor(const void *group, const std::string &label)
{
    auto it = group_index_.find(group);
    if (it != group_index_.end())
        return groups_[it->second];
    group_index_.emplace(group, groups_.size());
    groups_.emplace_back();
    groups_.back().label = label;
    return groups_.back();
}

void
InvariantChecker::onSubmit(const void *group, const std::string &label)
{
    ++checks_;
    ++groupFor(group, label).submitted;
}

void
InvariantChecker::onComplete(const void *group)
{
    Group &g = groupFor(group, "?");
    require(g.completed + g.failed < g.submitted, "request conservation",
            strCat("cgroup '", g.label, "': completion #",
                   g.completed + g.failed + 1, " outruns ", g.submitted,
                   " submissions"));
    ++g.completed;
}

void
InvariantChecker::onFail(const void *group)
{
    Group &g = groupFor(group, "?");
    require(g.completed + g.failed < g.submitted, "request conservation",
            strCat("cgroup '", g.label, "': failure #",
                   g.completed + g.failed + 1, " outruns ", g.submitted,
                   " submissions"));
    ++g.failed;
}

void
InvariantChecker::checkMonotonicAt(double &last, const char *what,
                                   const std::string &label, double value)
{
    // Tiny backward drift tolerance for double-typed series (io.cost
    // vtime sums floating-point charges).
    constexpr double kEps = 1e-6;
    require(value >= last - kEps, what,
            strCat(label, ": ", formatDouble(value, 3),
                   " moved backwards from ", formatDouble(last, 3)));
    last = value;
}

void
InvariantChecker::checkHierarchy(const char *what, const std::string &label,
                                 double child_sum, double parent_total)
{
    // Relative tolerance: both sides accumulate floating-point charges
    // request by request, so allow proportional drift plus a floor.
    double slack = 1e-9 * (parent_total < 1.0 ? 1.0 : parent_total) + 1e-6;
    require(child_sum <= parent_total + slack, what,
            strCat(label, ": children consumed ",
                   formatDouble(child_sum, 3), " but the parent was only "
                   "charged ", formatDouble(parent_total, 3)));
}

void
InvariantChecker::onElevatorInsert(const void *req)
{
    require(elevator_pending_.insert(req).second,
            "elevator no-duplicated-request",
            "request inserted while already pending in the elevator");
}

void
InvariantChecker::onElevatorDispatch(const void *req)
{
    require(elevator_pending_.erase(req) == 1,
            "elevator no-lost-request",
            "dispatched a request the elevator never admitted (or "
            "dispatched it twice)");
}

void
InvariantChecker::finalCheck(uint64_t max_outstanding)
{
    uint64_t outstanding = 0;
    for (const Group &g : groups_) {
        require(g.completed + g.failed <= g.submitted,
                "request conservation",
                strCat("cgroup '", g.label, "': ", g.completed,
                       " completed + ", g.failed, " failed > ",
                       g.submitted, " submitted"));
        outstanding += g.submitted - g.completed - g.failed;
    }
    require(outstanding <= max_outstanding, "request conservation",
            strCat(outstanding, " requests still in flight at end of "
                                "run, but total configured iodepth is ",
                   max_outstanding));
    require(elevator_pending_.size() <= max_outstanding,
            "elevator no-lost-request",
            strCat(elevator_pending_.size(),
                   " requests parked in elevators at end of run exceed "
                   "the total configured iodepth ",
                   max_outstanding));
}

} // namespace isol::sim
