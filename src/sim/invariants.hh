/**
 * @file
 * Runtime invariant checker: an opt-in correctness oracle wired into the
 * block-layer gates and the elevator dispatch path.
 *
 * Post-run validation (isolbench/validate.hh) can only look at final
 * counters; this layer checks structural invariants *while* the pipeline
 * runs, so a bug trips at the exact event that introduced it instead of
 * surfacing as a mysteriously skewed figure two seconds of simulated
 * time later:
 *
 *  - request conservation per cgroup: completions and failures never
 *    outrun submissions (submitted = completed + in-flight + failed);
 *  - io.cost vtime monotonicity: a group's consumed virtual time never
 *    moves backwards;
 *  - io.max token buckets: `next_free` is non-negative and monotone
 *    (consuming credit can only push the horizon forward);
 *  - hierarchical conservation: a parent's charge total covers the sum
 *    of its children's (children are only ever charged via walks that
 *    charge every ancestor, so a child sum exceeding the parent grant
 *    means a charge/refund skipped a level);
 *  - io.latency window accounting: per-group in-flight respects the
 *    queue-depth limit on admission and never underflows on completion;
 *  - elevator no-lost/no-duplicated-request: every inserted request is
 *    dispatched exactly once and never re-inserted while pending.
 *
 * Checking is strictly opt-in (ScenarioConfig::check_invariants or the
 * `ISOL_CHECK_INVARIANTS` env var / `--check-invariants` flag): hooks
 * are a single null-pointer test when disabled, so the default build
 * pays nothing. A violation throws InvariantViolation immediately; the
 * sweep supervisor classifies it as `invariant_violation`, so supervised
 * campaigns report (and retry) tripped scenarios instead of crashing.
 *
 * The checker lives in sim/ and is deliberately blind to the block
 * layer's types: call sites identify groups, series, and requests by
 * opaque pointers plus human-readable labels, which keeps the layering
 * acyclic (blk -> sim, never sim -> blk).
 */
// isol: domain(sim)

#ifndef ISOL_SIM_INVARIANTS_HH
#define ISOL_SIM_INVARIANTS_HH

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace isol::sim
{

/** Thrown on the first violated invariant; message carries the blame. */
class InvariantViolation : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Process-wide default for ScenarioConfig::check_invariants: true when
 * `ISOL_CHECK_INVARIANTS` is set (non-empty, not "0") or after
 * setCheckInvariantsDefault(true) (the `--check-invariants` flag).
 */
bool checkInvariantsDefault();
void setCheckInvariantsDefault(bool on);

/**
 * One scenario's invariant state. Owned by the Scenario, shared by every
 * gate of every device in it (keys are globally unique pointers), and
 * single-threaded like the simulation itself.
 */
class InvariantChecker
{
  public:
    /** @param context scenario name prefixed to violation messages */
    explicit InvariantChecker(std::string context);

    // --- Request conservation (per cgroup) ---

    /** A request of `group` entered the pipeline. */
    void onSubmit(const void *group, const std::string &label);

    /** A request of `group` completed successfully. */
    void onComplete(const void *group);

    /** A request of `group` failed terminally (timeout retries spent). */
    void onFail(const void *group);

    // --- Generic building blocks ---

    /** Count one check; throw InvariantViolation unless `ok`. */
    void require(bool ok, const char *what, const std::string &detail);

    /**
     * Assert a series never decreases. The caller owns the series
     * storage (`last`, initially 0 — which also makes the first
     * observation a non-negativity check) and keeps it alongside the
     * state the series describes; with thousands of tracked series,
     * that beats a central pointer-keyed map whose keys would dangle
     * when gate state moves on arena growth or swap-remove.
     */
    void checkMonotonicAt(double &last, const char *what,
                          const std::string &label, double value);

    // --- Hierarchical conservation ---

    /**
     * Assert that the children of one node consumed no more than the
     * node itself was charged (`child_sum` <= `parent_total` within a
     * relative epsilon for float accumulation). Gates call this along
     * their O(depth) charge walks, so a skipped ancestor level trips at
     * the first request it misaccounts.
     */
    void checkHierarchy(const char *what, const std::string &label,
                        double child_sum, double parent_total);

    // --- Elevator conservation ---

    /** `req` was inserted into the elevator (must not be pending). */
    void onElevatorInsert(const void *req);

    /** `req` was dispatched by the elevator (must be pending). */
    void onElevatorDispatch(const void *req);

    // --- End of run ---

    /**
     * Terminal consistency: per-group in-flight derived from the
     * conservation counters and the elevator's pending set must both be
     * bounded by `max_outstanding` (the total configured iodepth).
     */
    void finalCheck(uint64_t max_outstanding);

    /** Total individual checks performed (profiling/coverage counter). */
    uint64_t checksPerformed() const { return checks_; }

  private:
    struct Group
    {
        std::string label;
        uint64_t submitted = 0;
        uint64_t completed = 0;
        uint64_t failed = 0;
    };

    [[noreturn]] void violate(const char *what, const std::string &detail);

    Group &groupFor(const void *group, const std::string &label);

    std::string context_;
    uint64_t checks_ = 0;

    /** Group states in creation order: finalCheck() walks the deque so
     *  violation blame never depends on pointer hash order. */
    // isol-lint: allow(D1): lookup-only index into groups_; iteration
    // always walks the creation-order deque
    std::unordered_map<const void *, size_t> group_index_;
    std::deque<Group> groups_;

    // isol-lint: allow(D1): membership tests only, never iterated
    std::unordered_set<const void *> elevator_pending_;
};

} // namespace isol::sim

#endif // ISOL_SIM_INVARIANTS_HH
