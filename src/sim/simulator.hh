/**
 * @file
 * The Simulator owns the clock and the event queue and provides the
 * run-loop plus relative-time scheduling conveniences.
 */
// isol: domain(sim)

#ifndef ISOL_SIM_SIMULATOR_HH
#define ISOL_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace isol::sim
{

/**
 * Thrown instead of fatal() when an execution budget (the runAll event
 * storm guard) trips on a thread where budgets are recoverable — i.e.
 * the run executes under the sweep supervisor, which converts it into a
 * structured resource_exhausted task error instead of tearing down the
 * whole sweep. Unsupervised runs keep the hard fatal() path.
 */
class BudgetExceeded : public std::runtime_error
{
  public:
    explicit BudgetExceeded(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

// isol-lint: allow(D4): per-thread error-path policy flag set by the
// sweep supervisor's task guard; never read by simulation decisions
inline thread_local bool t_recoverable_budgets = false;

/** True when budget overruns should throw BudgetExceeded (supervised). */
inline bool
recoverableBudgets()
{
    return t_recoverable_budgets;
}

/** Mark this thread's budget overruns recoverable (task guard scope). */
inline void
setRecoverableBudgets(bool on)
{
    t_recoverable_budgets = on;
}

/**
 * Deterministic single-threaded discrete-event simulator.
 *
 * Components hold a Simulator reference and schedule callbacks either at
 * absolute times (`at`) or relative delays (`after`). The driver calls
 * runUntil()/runAll() to advance the simulation.
 */
class Simulator
{
  public:
    using Callback = EventQueue::Callback;

    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time (ns). */
    SimTime now() const { return now_; }

    /** Total events executed so far (for performance reporting). */
    uint64_t eventsExecuted() const { return events_executed_; }

    /** High-water mark of pending events (for performance reporting). */
    size_t peakQueueDepth() const { return queue_.peakDepth(); }

    /** Schedule at an absolute time; must not be in the past. */
    EventId
    at(SimTime when, Callback cb)
    {
        if (when < now_)
            panic("Simulator::at: scheduling into the past");
        return queue_.schedule(when, std::move(cb));
    }

    /** Schedule after a non-negative relative delay. */
    EventId
    after(SimTime delay, Callback cb)
    {
        if (delay < 0)
            panic("Simulator::after: negative delay");
        return queue_.schedule(now_ + delay, std::move(cb));
    }

    /** Cancel a pending event. Returns true if it had not yet fired. */
    bool cancel(EventId id) { return queue_.cancel(id); }

    /** True when no further events are pending. */
    bool idle() const { return queue_.empty(); }

    /**
     * Run events with time <= `deadline`; afterwards now() == deadline
     * (even if the queue drained earlier), so periodic statistics windows
     * line up across runs.
     */
    void
    runUntil(SimTime deadline)
    {
        while (!queue_.empty() && queue_.nextTime() <= deadline)
            step();
        if (deadline > now_)
            now_ = deadline;
    }

    /**
     * Run up to `max_steps` events with time <= `deadline`. Returns the
     * number of events executed; when fewer than `max_steps` ran, the
     * queue is drained up to the deadline and now() == deadline, exactly
     * as after runUntil(). Lets a caller interleave watchdog/budget
     * polls with event execution without perturbing the simulation.
     */
    uint64_t
    runChunk(SimTime deadline, uint64_t max_steps)
    {
        uint64_t executed = 0;
        while (executed < max_steps && !queue_.empty() &&
               queue_.nextTime() <= deadline) {
            step();
            ++executed;
        }
        if (executed < max_steps && deadline > now_)
            now_ = deadline;
        return executed;
    }

    /**
     * Run until the event queue is empty. A non-zero `max_events` caps
     * how many events this call may execute: self-rescheduling event
     * storms (e.g. a mis-wired periodic timer) then fail loudly instead
     * of hanging the process — via a recoverable BudgetExceeded under a
     * supervised sweep task, via fatal() otherwise.
     */
    void
    runAll(uint64_t max_events = 0)
    {
        uint64_t executed = 0;
        while (!queue_.empty()) {
            if (max_events != 0 && executed >= max_events) {
                std::string msg =
                    strCat("Simulator::runAll: executed ", executed,
                           " events without draining the queue — "
                           "event storm? (limit ", max_events, ")");
                if (recoverableBudgets())
                    throw BudgetExceeded(msg);
                fatal(msg);
            }
            step();
            ++executed;
        }
    }

    /** Execute exactly one event; returns false if none were pending. */
    bool
    step()
    {
        if (queue_.empty())
            return false;
        auto [when, cb] = queue_.pop();
        if (when < now_)
            panic("Simulator: time went backwards");
        now_ = when;
        ++events_executed_;
        cb();
        return true;
    }

  private:
    EventQueue queue_;
    SimTime now_ = 0;
    uint64_t events_executed_ = 0;
};

/**
 * Repeating timer helper: fires a callback every `period` ns until
 * stopped. Used for rq-qos window processing (io.latency / io.cost) and
 * statistics sampling.
 */
class PeriodicTimer
{
  public:
    /**
     * @param sim simulator driving the timer
     * @param period interval between firings (must be > 0)
     * @param cb invoked once per period
     */
    PeriodicTimer(Simulator &sim, SimTime period, SmallCallback cb)
        : sim_(sim), period_(period), cb_(std::move(cb))
    {
        if (period_ <= 0)
            panic("PeriodicTimer: period must be positive");
    }

    ~PeriodicTimer() { stop(); }

    PeriodicTimer(const PeriodicTimer &) = delete;
    PeriodicTimer &operator=(const PeriodicTimer &) = delete;

    /** Arm the timer; first firing after one period. */
    void
    start()
    {
        if (running_)
            return;
        running_ = true;
        armNext();
    }

    /** Disarm; pending firing is cancelled. */
    void
    stop()
    {
        running_ = false;
        if (pending_ != kInvalidEventId) {
            sim_.cancel(pending_);
            pending_ = kInvalidEventId;
        }
    }

    bool running() const { return running_; }

  private:
    void
    armNext()
    {
        pending_ = sim_.after(period_, [this] {
            pending_ = kInvalidEventId;
            if (!running_)
                return;
            cb_();
            if (running_)
                armNext();
        });
    }

    Simulator &sim_;
    SimTime period_;
    SmallCallback cb_;
    bool running_ = false;
    EventId pending_ = kInvalidEventId;
};

} // namespace isol::sim

#endif // ISOL_SIM_SIMULATOR_HH
