/**
 * @file
 * Small-buffer-optimised move-only callable for the DES hot path.
 *
 * `std::function` only stores two machine words inline (libstdc++), so
 * the pointer+id+index captures that simulator components schedule by the
 * million spill to the heap. SmallCallback keeps a 48-byte inline buffer —
 * enough for every capture in the tree (a `this` pointer, a request
 * pointer, an id, and change) — and falls back to the heap only for
 * oversized or throwing-move callables, so scheduling stays allocation
 * free in practice.
 */

#ifndef ISOL_SIM_SMALL_FUNCTION_HH
#define ISOL_SIM_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace isol::sim
{

/** Move-only `void()` callable with a 48-byte inline buffer. */
class SmallCallback
{
  public:
    /** Inline storage size; callables up to this size never allocate. */
    static constexpr size_t kInlineBytes = 48;

    SmallCallback() noexcept = default;
    SmallCallback(std::nullptr_t) noexcept {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    SmallCallback(F &&fn)
    {
        if constexpr (fitsInline<D>()) {
            ::new (storage()) D(std::forward<F>(fn));
            ops_ = &inlineOps<D>;
        } else {
            *reinterpret_cast<void **>(storage()) =
                new D(std::forward<F>(fn));
            ops_ = &heapOps<D>;
        }
    }

    SmallCallback(SmallCallback &&other) noexcept { moveFrom(other); }

    SmallCallback &
    operator=(SmallCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback() { reset(); }

    /** Drop the held callable (frees captured resources). */
    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage());
            ops_ = nullptr;
        }
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(storage());
    }

  private:
    struct Ops
    {
        void (*invoke)(void *self);
        void (*move)(void *self, void *dst) noexcept;
        void (*destroy)(void *self) noexcept;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= kInlineBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops inlineOps = {
        [](void *self) { (*static_cast<D *>(self))(); },
        [](void *self, void *dst) noexcept {
            ::new (dst) D(std::move(*static_cast<D *>(self)));
            static_cast<D *>(self)->~D();
        },
        [](void *self) noexcept { static_cast<D *>(self)->~D(); },
    };

    template <typename D>
    static constexpr Ops heapOps = {
        [](void *self) { (**static_cast<D **>(self))(); },
        [](void *self, void *dst) noexcept {
            *static_cast<D **>(dst) = *static_cast<D **>(self);
        },
        [](void *self) noexcept { delete *static_cast<D **>(self); },
    };

    void *storage() noexcept { return buf_; }

    void
    moveFrom(SmallCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->move(other.storage(), storage());
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace isol::sim

#endif // ISOL_SIM_SMALL_FUNCTION_HH
