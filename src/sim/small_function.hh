/**
 * @file
 * Small-buffer-optimised move-only callable for the DES hot path.
 *
 * `std::function` only stores two machine words inline (libstdc++), so
 * the pointer+id+index captures that simulator components schedule by the
 * million spill to the heap. SmallFunction keeps a 48-byte inline buffer —
 * enough for every capture in the tree (a `this` pointer, a request
 * pointer, an id, and change) — and falls back to the heap only for
 * oversized or throwing-move callables, so scheduling stays allocation
 * free in practice. `SmallCallback` is the ubiquitous `void()` alias;
 * the block layer uses `SmallFunction<void(Request *)>` for completions.
 */
// isol: domain(sim)

#ifndef ISOL_SIM_SMALL_FUNCTION_HH
#define ISOL_SIM_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace isol::sim
{

template <typename Sig> class SmallFunction;

/** Move-only `R(Args...)` callable with a 48-byte inline buffer. */
template <typename R, typename... Args>
class SmallFunction<R(Args...)>
{
  public:
    /** Inline storage size; callables up to this size never allocate. */
    static constexpr size_t kInlineBytes = 48;

    SmallFunction() noexcept = default;
    SmallFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    SmallFunction(F &&fn)
    {
        if constexpr (fitsInline<D>()) {
            ::new (storage()) D(std::forward<F>(fn));
            ops_ = &inlineOps<D>;
        } else {
            *reinterpret_cast<void **>(storage()) =
                new D(std::forward<F>(fn));
            ops_ = &heapOps<D>;
        }
    }

    SmallFunction(SmallFunction &&other) noexcept { moveFrom(other); }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    /** Drop the held callable (frees captured resources). */
    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage());
            ops_ = nullptr;
        }
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(storage(), std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *self, Args &&...args);
        void (*move)(void *self, void *dst) noexcept;
        void (*destroy)(void *self) noexcept;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= kInlineBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops inlineOps = {
        [](void *self, Args &&...args) -> R {
            return (*static_cast<D *>(self))(
                std::forward<Args>(args)...);
        },
        [](void *self, void *dst) noexcept {
            ::new (dst) D(std::move(*static_cast<D *>(self)));
            static_cast<D *>(self)->~D();
        },
        [](void *self) noexcept { static_cast<D *>(self)->~D(); },
    };

    template <typename D>
    static constexpr Ops heapOps = {
        [](void *self, Args &&...args) -> R {
            return (**static_cast<D **>(self))(
                std::forward<Args>(args)...);
        },
        [](void *self, void *dst) noexcept {
            *static_cast<D **>(dst) = *static_cast<D **>(self);
        },
        [](void *self) noexcept { delete *static_cast<D **>(self); },
    };

    void *storage() noexcept { return buf_; }

    void
    moveFrom(SmallFunction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->move(other.storage(), storage());
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

/** The ubiquitous event-queue callback type. */
using SmallCallback = SmallFunction<void()>;

} // namespace isol::sim

#endif // ISOL_SIM_SMALL_FUNCTION_HH
