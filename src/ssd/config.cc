// isol: domain(ssd)
#include "ssd/config.hh"

namespace isol::ssd
{

SsdConfig
samsung980ProLike()
{
    SsdConfig cfg;
    cfg.name = "samsung980pro-like";
    cfg.medium = MediumType::kFlash;
    cfg.channels = 8;
    cfg.dies_per_channel = 8;
    cfg.page_size = 4 * KiB;
    cfg.pages_per_block = 256;
    cfg.user_capacity = 8 * GiB;
    // Higher than a retail 980 PRO's ~9% because the simulated geometry
    // has coarse blocks-per-die granularity; the GC *dynamics* (greedy
    // victims, WAF in the 2-3 range under random overwrite) match.
    cfg.overprovision = 0.28;
    cfg.read_latency = usToNs(78);
    cfg.program_latency = usToNs(140);
    cfg.erase_latency = msToNs(3);
    cfg.latency_jitter = 0.10;
    cfg.slow_read_prob = 0.0005;
    cfg.slow_read_factor = 4.0;
    cfg.controller_latency = usToNs(3);
    cfg.channel_bw = 1200 * MiB;
    cfg.link_bw = 3276 * MiB; // ~3.2 GiB/s effective host link
    cfg.write_cache_pages = 1024;
    cfg.gc_bg_threshold = 0.12;
    cfg.gc_fg_threshold = 0.04;
    return cfg;
}

SsdConfig
optaneLike()
{
    SsdConfig cfg;
    cfg.name = "optane-like";
    cfg.medium = MediumType::kPhaseChange;
    cfg.channels = 7;
    cfg.dies_per_channel = 1;
    cfg.page_size = 4 * KiB;
    cfg.pages_per_block = 256; // unused by phase-change media
    cfg.user_capacity = 8 * GiB;
    cfg.overprovision = 0.0;
    cfg.read_latency = usToNs(10);
    cfg.program_latency = usToNs(11);
    cfg.erase_latency = 0; // no erase
    cfg.latency_jitter = 0.05;
    cfg.slow_read_prob = 0.0;
    cfg.slow_read_factor = 1.0;
    cfg.controller_latency = usToNs(2);
    cfg.channel_bw = 2500 * MiB;
    cfg.link_bw = 2560 * MiB; // ~2.5 GiB/s
    cfg.write_cache_pages = 0; // writes are synchronous on Optane
    cfg.gc_bg_threshold = 0.0;
    cfg.gc_fg_threshold = 0.0;
    return cfg;
}

} // namespace isol::ssd
