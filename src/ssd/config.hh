/**
 * @file
 * SSD device configuration: geometry, flash timings, host link, garbage
 * collection thresholds — plus the two presets used by the paper's
 * evaluation (a Samsung 980 PRO-like flash SSD and an Intel Optane-like
 * low-latency SSD).
 */
// isol: domain(ssd)

#ifndef ISOL_SSD_CONFIG_HH
#define ISOL_SSD_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "fault/fault.hh"

namespace isol::ssd
{

/** Storage medium family; Optane-style media skip the FTL/GC machinery. */
enum class MediumType : uint8_t { kFlash, kPhaseChange };

/**
 * Full device model configuration.
 *
 * The default values are meaningless; use the presets below or build your
 * own. All capacities are in bytes and all times in simulated ns.
 */
struct SsdConfig
{
    std::string name = "ssd";
    MediumType medium = MediumType::kFlash;

    // --- Geometry ---
    uint32_t channels = 8; //!< flash channels
    uint32_t dies_per_channel = 8; //!< dies per channel
    uint64_t page_size = 4 * KiB; //!< FTL mapping / page granularity
    uint32_t pages_per_block = 256; //!< pages per erase block
    uint64_t user_capacity = 8 * GiB; //!< LBA space exposed to the host
    double overprovision = 0.125; //!< extra physical space fraction

    // --- Flash timings ---
    SimTime read_latency = usToNs(78); //!< tR, die busy per page read
    SimTime program_latency = usToNs(140); //!< tProg per page program
    SimTime erase_latency = msToNs(3); //!< tErase per block erase
    double latency_jitter = 0.10; //!< +- uniform jitter fraction
    double slow_read_prob = 0.0005; //!< read-retry probability
    double slow_read_factor = 4.0; //!< retry multiplier on tR

    // --- Controller / transfer ---
    SimTime controller_latency = usToNs(3); //!< fixed per-request overhead
    uint64_t channel_bw = 1200 * MiB; //!< per-channel transfer, bytes/s
    uint64_t link_bw = static_cast<uint64_t>(3.2 * 1024) * MiB;
        //!< host link (PCIe/controller), bytes/s — caps total bandwidth

    // --- Write cache ---
    uint32_t write_cache_pages = 1024; //!< buffered pages before backpressure

    // --- Garbage collection ---
    double gc_bg_threshold = 0.12; //!< start GC when free frac below this
    double gc_fg_threshold = 0.04; //!< stall host writes below this

    // --- Fault injection (strictly opt-in; disabled by default) ---
    fault::DeviceFaultConfig faults;

    /** Total dies in the device. */
    uint32_t numDies() const { return channels * dies_per_channel; }

    /** Logical pages in the user-visible LBA space. */
    uint64_t numLogicalPages() const { return user_capacity / page_size; }

    /** Physical blocks per die. */
    uint32_t
    blocksPerDie() const
    {
        double phys = static_cast<double>(user_capacity) *
                      (1.0 + overprovision);
        double per_die = phys / numDies();
        return static_cast<uint32_t>(
            per_die / static_cast<double>(page_size * pages_per_block));
    }
};

/**
 * Flash SSD preset calibrated against the paper's measured shape for the
 * Samsung 980 PRO (≈2.9 GiB/s 4 KiB random-read saturation through the
 * evaluated host stack, ≈80 µs QD1 read latency, strongly asymmetric
 * writes, GC under sustained writes).
 */
SsdConfig samsung980ProLike();

/**
 * Intel Optane-like preset: flat low latency, no GC, symmetric read/write,
 * lower total bandwidth — a different performance model, used by the paper
 * to confirm generalisability.
 */
SsdConfig optaneLike();

} // namespace isol::ssd

#endif // ISOL_SSD_CONFIG_HH
