// isol: domain(ssd)
#include "ssd/device.hh"

#include <algorithm>

#include "common/logging.hh"

namespace isol::ssd
{

namespace
{
// Programs kept in flight per die (committed in the FTL but not yet
// programmed); small so GC decisions stay current.
constexpr uint32_t kDieProgramQd = 6;

// Reads served per write-path op when the cache is NOT under pressure:
// controllers favour reads until flush pressure builds.
constexpr uint32_t kReadBurst = 3;

// Write-path ops served per read when the cache IS under pressure: the
// controller must drain the cache, but reads are not fully starved.
constexpr uint32_t kPressureWriteBurst = 4;

// Cache occupancy fraction beyond which the controller enters flush
// mode and the arbitration ratio flips toward the write path.
constexpr double kFlushPressure = 0.75;
} // namespace

SsdDevice::SsdDevice(sim::Simulator &sim, const SsdConfig &cfg,
                     uint64_t seed)
    : sim_(sim), cfg_(cfg), rng_(seed), ftl_(cfg),
      faults_(cfg.faults, cfg.numDies(), cfg.user_capacity,
              seed ^ 0x9e3779b97f4a7c15ULL),
      link_(sim)
{
    const uint32_t dies = cfg_.numDies();
    dies_.resize(dies);
    channels_.reserve(cfg_.channels);
    for (uint32_t i = 0; i < cfg_.channels; ++i)
        channels_.push_back(std::make_unique<FifoServer>(sim_));
    pending_programs_.resize(dies);
    programs_inflight_.assign(dies, 0);
    gc_active_.assign(dies, false);
}

void
SsdDevice::precondition(double fill_fraction, double overwrite_passes)
{
    ftl_.preconditionSequentialFill(fill_fraction);
    if (overwrite_passes > 0.0) {
        uint64_t count = static_cast<uint64_t>(
            overwrite_passes * static_cast<double>(
                                   cfg_.numLogicalPages() * fill_fraction));
        ftl_.preconditionRandomOverwrite(count, rng_);
    }
    ftl_.resetStats();
}

SimTime
SsdDevice::jitter(SimTime base)
{
    double factor = 1.0;
    if (cfg_.latency_jitter > 0.0)
        factor = 1.0 + cfg_.latency_jitter * (2.0 * rng_.uniform() - 1.0);
    // Injected latency-spike windows slow every die operation.
    factor *= faults_.serviceMultiplier(sim_.now());
    if (factor == 1.0)
        return base;
    return static_cast<SimTime>(static_cast<double>(base) * factor);
}

SimTime
SsdDevice::readServiceTime()
{
    SimTime t = jitter(cfg_.read_latency);
    if (cfg_.slow_read_prob > 0.0 && rng_.chance(cfg_.slow_read_prob)) {
        t = static_cast<SimTime>(static_cast<double>(t) *
                                 cfg_.slow_read_factor);
    }
    return t;
}

SimTime
SsdDevice::programTime()
{
    SimTime t = jitter(cfg_.program_latency);
    if (faults_.thermalEnabled()) {
        double mult = faults_.programMultiplier(sim_.now());
        if (mult != 1.0)
            t = static_cast<SimTime>(static_cast<double>(t) * mult);
        faults_.noteProgram(sim_.now(), t);
    }
    return t;
}

SimTime
SsdDevice::transferTime(uint64_t bytes, uint64_t bw) const
{
    if (bw == 0)
        return 0;
    return static_cast<SimTime>(
        static_cast<double>(bytes) / static_cast<double>(bw) * 1e9);
}

FifoServer &
SsdDevice::channelOf(uint32_t die)
{
    return *channels_[die / cfg_.dies_per_channel];
}

// --- Per-die controller scheduling ----------------------------------------

bool
SsdDevice::writePressure() const
{
    if (cfg_.write_cache_pages == 0)
        return false;
    return static_cast<double>(cache_used_) >=
           kFlushPressure * static_cast<double>(cfg_.write_cache_pages);
}

void
SsdDevice::dieRead(uint32_t die, SimTime service, Callback done)
{
    dies_[die].reads.push_back(
        DieQueue::Op{service, std::move(done)});
    pumpDie(die);
}

void
SsdDevice::dieWrite(uint32_t die, SimTime service, Callback done)
{
    dies_[die].write_path.push_back(
        DieQueue::Op{service, std::move(done)});
    pumpDie(die);
}

void
SsdDevice::pumpDie(uint32_t die)
{
    DieQueue &q = dies_[die];
    if (q.busy)
        return;
    bool has_read = !q.reads.empty();
    bool has_write = !q.write_path.empty();
    if (!has_read && !has_write)
        return;

    // Arbitration by duty ratio: kReadBurst reads per write-path op
    // normally; flipped to kPressureWriteBurst write ops per read when
    // the cache needs flushing. Neither side ever fully starves.
    bool pick_write;
    if (!has_write) {
        pick_write = false;
    } else if (!has_read) {
        pick_write = true;
    } else if (writePressure()) {
        pick_write = q.write_credit < kPressureWriteBurst;
    } else {
        pick_write = q.read_credit >= kReadBurst;
    }
    if (pick_write) {
        q.read_credit = 0;
        ++q.write_credit;
    } else {
        ++q.read_credit;
        q.write_credit = 0;
    }

    auto &queue = pick_write ? q.write_path : q.reads;
    DieQueue::Op op = std::move(queue.front());
    queue.pop_front();
    q.busy = true;
    q.busy_ns += op.service;
    ++q.jobs;
    // Parking the completion on the die (instead of capturing it) keeps
    // the event capture at two words — inside the inline buffer.
    q.active_done = std::move(op.done);
    sim_.after(op.service, [this, die] {
        DieQueue &dq = dies_[die];
        dq.busy = false;
        Callback done = std::move(dq.active_done);
        done();
        pumpDie(die);
    });
}

void
SsdDevice::submit(OpType op, uint64_t offset, uint32_t size, Callback done)
{
    if (size == 0)
        fatal("SsdDevice::submit: zero-sized I/O");
    offset %= cfg_.user_capacity;

    if (cfg_.medium == MediumType::kPhaseChange) {
        submitPcm(op, offset, size, std::move(done));
        return;
    }
    if (op == OpType::kRead)
        submitFlashRead(offset, size, std::move(done));
    else
        submitFlashWrite(offset, size, std::move(done));
}

// --- Read pipeline -------------------------------------------------------

void
SsdDevice::submitFlashRead(uint64_t offset, uint32_t size, Callback done)
{
    uint64_t first = offset / cfg_.page_size;
    uint64_t last = (offset + size - 1) / cfg_.page_size;
    // Arena slot; the arena also owns slots whose I/O was cut off by the
    // end of the simulation (their events destroyed unfired).
    ReadState *state = read_states_.acquire();
    state->remaining = static_cast<uint32_t>(last - first + 1);
    state->size = size;
    state->done = std::move(done);

    for (uint64_t lpn = first; lpn <= last; ++lpn) {
        PhysLoc loc = ftl_.lookupRead(lpn);
        uint32_t die = loc.die;
        SimTime service = readServiceTime();
        if (faults_.mediaEnabled()) {
            fault::MediaFaultModel::ReadOutcome out =
                faults_.readOutcome(lpn * cfg_.page_size, die, service);
            service = out.service;
            // The read is serviced from the failing block, then the FTL
            // remaps the survivors and retires the block.
            if (out.remap && ftl_.growBadBlock(lpn))
                ++faults_.mutableStats().remapped_blocks;
        }
        dieRead(die, service, [this, die, state] {
            SimTime xfer = transferTime(cfg_.page_size, cfg_.channel_bw);
            channelOf(die).enqueue(xfer, [this, state] {
                if (--state->remaining == 0)
                    finishRead(state);
            });
        });
    }
}

void
SsdDevice::finishRead(ReadState *state)
{
    // The controller latency is per-request pipeline latency, not link
    // occupancy: completion fires controller_latency after the DMA, but
    // the link is free for the next transfer immediately.
    SimTime xfer = transferTime(state->size, cfg_.link_bw);
    link_.enqueue(xfer, [this, state] {
        sim_.after(cfg_.controller_latency, [this, state] {
            bytes_read_ += state->size;
            ++reads_completed_;
            Callback done = std::move(state->done);
            read_states_.release(state);
            done();
        });
    });
}

// --- Write pipeline ------------------------------------------------------

void
SsdDevice::submitFlashWrite(uint64_t offset, uint32_t size, Callback done)
{
    uint64_t first = offset / cfg_.page_size;
    uint64_t last = (offset + size - 1) / cfg_.page_size;
    // A recycled admit keeps its lpns capacity: zero allocations once
    // the pool and vectors are warm.
    WriteAdmit *admit = write_admits_.acquire();
    admit->lpns.clear();
    admit->lpns.reserve(last - first + 1);
    for (uint64_t lpn = first; lpn <= last; ++lpn)
        admit->lpns.push_back(lpn);
    admit->size = size;
    admit->done = std::move(done);

    SimTime xfer = transferTime(size, cfg_.link_bw);
    link_.enqueue(xfer, [this, admit] {
        sim_.after(cfg_.controller_latency, [this, admit] {
            cache_wait_.push_back(admit);
            tryAdmitWrites();
        });
    });
}

void
SsdDevice::tryAdmitWrites()
{
    while (!cache_wait_.empty()) {
        WriteAdmit *head = cache_wait_.front();
        uint32_t pages = static_cast<uint32_t>(head->lpns.size());
        uint32_t capacity = std::max<uint32_t>(cfg_.write_cache_pages, 1);
        if (cache_used_ + pages > capacity && cache_used_ > 0)
            return; // wait for cache slots (oversized writes admit alone)
        cache_wait_.pop_front();
        admitWrite(head);
    }
}

void
SsdDevice::admitWrite(WriteAdmit *admit)
{
    cache_used_ += static_cast<uint32_t>(admit->lpns.size());
    bytes_written_ += admit->size;
    ++writes_completed_;
    // Host-visible completion: data is in the device write cache. Move
    // the callback out first — it may submit and recycle pool slots.
    Callback done = std::move(admit->done);
    done();

    for (uint64_t lpn : admit->lpns) {
        // The cached copy supersedes flash: free the old page for GC now.
        ftl_.noteOverwrite(lpn);
        uint32_t die = ftl_.takeHostWriteDie();
        pending_programs_[die].push_back(lpn);
        pumpDiePrograms(die);
    }
    write_admits_.release(admit);
}

void
SsdDevice::pumpDiePrograms(uint32_t die)
{
    while (!pending_programs_[die].empty() &&
           programs_inflight_[die] < kDieProgramQd &&
           !ftl_.hostWriteStalled(die)) {
        uint64_t lpn = pending_programs_[die].front();
        pending_programs_[die].pop_front();
        ftl_.commitHostWrite(lpn, die);
        ++programs_inflight_[die];

        SimTime xfer = transferTime(cfg_.page_size, cfg_.channel_bw);
        channelOf(die).enqueue(xfer, [this, die] {
            SimTime prog = programTime();
            dieWrite(die, prog, [this, die] { onProgramDone(die); });
        });
    }
    pumpGc(die);
}

void
SsdDevice::onProgramDone(uint32_t die)
{
    if (programs_inflight_[die] == 0)
        panic("SsdDevice: program in-flight underflow");
    --programs_inflight_[die];
    if (cache_used_ == 0)
        panic("SsdDevice: write cache underflow");
    --cache_used_;
    pumpGc(die);
    pumpDiePrograms(die);
    tryAdmitWrites();
}

// --- Garbage collection --------------------------------------------------

void
SsdDevice::pumpGc(uint32_t die)
{
    if (gc_active_[die])
        return;
    // Always finish a drained victim, even above the threshold; otherwise
    // only work when the free fraction is below the background threshold.
    bool erase_pending = ftl_.victimReadyForErase(die);
    if (!erase_pending && !ftl_.needsGc(die))
        return;

    if (erase_pending) {
        gc_active_[die] = true;
        dieWrite(die, jitter(cfg_.erase_latency), [this, die] {
            ftl_.gcCommitErase(die);
            gc_active_[die] = false;
            pumpGc(die);
            pumpDiePrograms(die);
            tryAdmitWrites();
        });
        return;
    }
    if (ftl_.gcHasMove(die)) {
        gc_active_[die] = true;
        // Die-internal copyback: read + program back-to-back on the die.
        SimTime move = readServiceTime() + programTime();
        dieWrite(die, move, [this, die] {
            ftl_.gcCommitMove(die);
            gc_active_[die] = false;
            pumpGc(die);
        });
        return;
    }
    // A fresh victim was selected but is already fully invalid.
    if (ftl_.victimReadyForErase(die))
        pumpGc(die);
}

// --- Phase-change (Optane-like) path --------------------------------------

void
SsdDevice::submitPcm(OpType op, uint64_t offset, uint32_t size,
                     Callback done)
{
    uint64_t first = offset / cfg_.page_size;
    uint64_t last = (offset + size - 1) / cfg_.page_size;
    ReadState *state = read_states_.acquire();
    state->remaining = static_cast<uint32_t>(last - first + 1);
    state->size = size;
    state->done = std::move(done);
    bool is_read = op == OpType::kRead;

    for (uint64_t lpn = first; lpn <= last; ++lpn) {
        uint32_t die = static_cast<uint32_t>(lpn % cfg_.numDies());
        SimTime service = jitter(is_read ? cfg_.read_latency
                                         : cfg_.program_latency);
        // Phase-change media are symmetric: everything shares one queue.
        dieRead(die, service, [this, state, is_read] {
            if (--state->remaining > 0)
                return;
            SimTime xfer = transferTime(state->size, cfg_.link_bw);
            link_.enqueue(xfer, [this, state, is_read] {
                if (is_read) {
                    bytes_read_ += state->size;
                    ++reads_completed_;
                } else {
                    bytes_written_ += state->size;
                    ++writes_completed_;
                }
                Callback done = std::move(state->done);
                read_states_.release(state);
                done();
            });
        });
    }
}

// --- Statistics ----------------------------------------------------------

SimTime
SsdDevice::totalDieBusyNs() const
{
    SimTime total = 0;
    for (const DieQueue &die : dies_)
        total += die.busy_ns;
    return total;
}

double
SsdDevice::dieUtilization() const
{
    SimTime now = sim_.now();
    if (now <= 0)
        return 0.0;
    return static_cast<double>(totalDieBusyNs()) /
           (static_cast<double>(now) * static_cast<double>(dies_.size()));
}

} // namespace isol::ssd
