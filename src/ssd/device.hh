/**
 * @file
 * NVMe SSD device model.
 *
 * A device is a set of flash dies behind shared channels and a host link:
 *   read:  die (tR) -> channel transfer -> host link DMA -> completion
 *   write: host link DMA -> write cache admit (early completion) ->
 *          per-die program pipeline (channel -> tProg), GC interleaved
 *
 * Each die runs a small controller-side scheduler: reads are normally
 * preferred over programs/GC (kReadBurst reads per write-path op), but
 * when the write cache fills past its pressure threshold the controller
 * switches to flush mode and the write path gets strict priority — this
 * is what collapses read throughput under sustained writes on real
 * flash (the paper's read/write interference experiments).
 *
 * Garbage collection runs per die: when the free-block count drops
 * below the spare-aware threshold, valid pages of a greedily-chosen
 * victim are copied (die-internal copyback) and the block is erased;
 * when free blocks run out entirely, host programs stall behind GC.
 *
 * Phase-change (Optane-like) media bypass the FTL: symmetric flat
 * latencies, no cache, no GC.
 */
// isol: domain(ssd)

#ifndef ISOL_SSD_DEVICE_HH
#define ISOL_SSD_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.hh"
#include "common/ring.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "fault/media_model.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/ftl.hh"
#include "ssd/resource.hh"

namespace isol::ssd
{

/**
 * One simulated NVMe SSD.
 */
class SsdDevice
{
  public:
    using Callback = sim::SmallCallback;

    /**
     * @param sim simulator
     * @param cfg device model parameters
     * @param seed RNG seed for latency jitter (one stream per device)
     */
    SsdDevice(sim::Simulator &sim, const SsdConfig &cfg, uint64_t seed = 1);

    const SsdConfig &config() const { return cfg_; }

    /**
     * Instant preconditioning (paper §III): sequential fill followed by a
     * random-overwrite pass, leaving the FTL in write steady state.
     * Statistics counters are reset afterwards.
     *
     * @param fill_fraction fraction of the LBA space to fill
     * @param overwrite_passes random overwrites as a multiple of the
     *                         logical page count (1.0 = one full pass)
     */
    void precondition(double fill_fraction = 1.0,
                      double overwrite_passes = 1.0);

    /**
     * Submit one I/O. `done` fires at host-visible completion time.
     * Offsets wrap modulo the device capacity; size must be > 0.
     */
    void submit(OpType op, uint64_t offset, uint32_t size, Callback done);

    // --- Statistics ---
    uint64_t bytesRead() const { return bytes_read_; }
    uint64_t bytesWritten() const { return bytes_written_; }
    uint64_t readsCompleted() const { return reads_completed_; }
    uint64_t writesCompleted() const { return writes_completed_; }

    /** Cumulative busy ns summed over all dies. */
    SimTime totalDieBusyNs() const;

    /** Mean die utilisation in [0,1] since simulation start. */
    double dieUtilization() const;

    /** Write amplification factor since the last precondition(). */
    double waf() const { return ftl_.waf(); }

    uint64_t gcPagesMoved() const { return ftl_.gcPagesMoved(); }
    uint64_t blocksErased() const { return ftl_.blocksErased(); }

    /** Expose the FTL for white-box tests. */
    const Ftl &ftl() const { return ftl_; }

    /** Device-side fault counters (all zero when faults are disabled). */
    const fault::DeviceFaultStats &faultStats() const
    {
        return faults_.stats();
    }

    /** True while the device is thermally throttled. */
    bool throttling() const { return faults_.throttling(); }

  private:
    /**
     * Per-die controller scheduler: a read queue and a write-path queue
     * (programs, GC moves, erases) with pressure-dependent arbitration.
     */
    struct DieQueue
    {
        struct Op
        {
            SimTime service;
            Callback done;
        };

        common::RingDeque<Op> reads;
        common::RingDeque<Op> write_path;
        /** Completion of the op in service; a captured-`die` event fires
         *  it, keeping the event capture inside the inline buffer. */
        Callback active_done;
        bool busy = false;
        SimTime busy_ns = 0;
        uint64_t jobs = 0;
        uint32_t read_credit = 0; //!< reads served since last write op
        uint32_t write_credit = 0; //!< write ops since last read
    };

    /** Queue a read op on `die` and pump it. */
    void dieRead(uint32_t die, SimTime service, Callback done);

    /** Queue a write-path op (program/GC/erase) on `die` and pump it. */
    void dieWrite(uint32_t die, SimTime service, Callback done);

    /** Start the next op on `die` if it is idle. */
    void pumpDie(uint32_t die);

    /** True when the write cache is under flush pressure. */
    bool writePressure() const;

    /** Jittered service time for a die operation. */
    SimTime jitter(SimTime base);

    /** Jittered read time including the read-retry tail. */
    SimTime readServiceTime();

    /** Jittered program time including thermal throttling, if enabled. */
    SimTime programTime();

    SimTime transferTime(uint64_t bytes, uint64_t bw) const;

    FifoServer &channelOf(uint32_t die);

    // Read pipeline ------------------------------------------------------
    struct ReadState
    {
        uint32_t remaining = 0;
        uint32_t size = 0;
        Callback done;
    };

    void submitFlashRead(uint64_t offset, uint32_t size, Callback done);
    void finishRead(ReadState *state);

    // Write pipeline -----------------------------------------------------
    struct WriteAdmit
    {
        std::vector<uint64_t> lpns; //!< capacity retained across reuse
        uint32_t size = 0;
        Callback done;
    };

    void submitFlashWrite(uint64_t offset, uint32_t size, Callback done);
    void tryAdmitWrites();
    void admitWrite(WriteAdmit *admit);
    void pumpDiePrograms(uint32_t die);
    void onProgramDone(uint32_t die);

    // GC -----------------------------------------------------------------
    void pumpGc(uint32_t die);

    // Phase-change (Optane) path ------------------------------------------
    void submitPcm(OpType op, uint64_t offset, uint32_t size, Callback done);

    sim::Simulator &sim_;
    const SsdConfig cfg_;
    Rng rng_;
    Ftl ftl_;
    fault::MediaFaultModel faults_;

    std::vector<DieQueue> dies_;
    std::vector<std::unique_ptr<FifoServer>> channels_;
    FifoServer link_;

    // Request-pipeline pools: completion state lives in typed arenas
    // (raw pointers captured in events), not per-I/O shared_ptr boxes.
    common::Arena<ReadState> read_states_;
    common::Arena<WriteAdmit> write_admits_;

    // Write cache and per-die program state (flash only).
    uint32_t cache_used_ = 0;
    common::RingDeque<WriteAdmit *> cache_wait_;
    std::vector<common::RingDeque<uint64_t>> pending_programs_;
    std::vector<uint32_t> programs_inflight_;
    std::vector<bool> gc_active_;

    uint64_t bytes_read_ = 0;
    uint64_t bytes_written_ = 0;
    uint64_t reads_completed_ = 0;
    uint64_t writes_completed_ = 0;
};

} // namespace isol::ssd

#endif // ISOL_SSD_DEVICE_HH
