// isol: domain(ssd)
#include "ssd/ftl.hh"

#include <algorithm>

#include "common/logging.hh"

namespace isol::ssd
{

namespace
{
// Blocks held back per die so GC always has somewhere to move pages.
constexpr uint32_t kGcReservedBlocks = 1;
} // namespace

Ftl::Ftl(const SsdConfig &cfg)
    : cfg_(cfg),
      num_dies_(cfg.numDies()),
      blocks_per_die_(cfg.blocksPerDie()),
      pages_per_block_(cfg.pages_per_block),
      num_lpns_(cfg.numLogicalPages())
{
    if (num_dies_ == 0 || num_dies_ > 256)
        fatal("Ftl: die count must be in [1, 256]");

    // Phase-change media (Optane-like) have no FTL: in-place updates, no
    // GC. Keep only the stripe-mapping fallback.
    if (cfg_.medium != MediumType::kFlash) {
        mapping_.clear();
        return;
    }

    if (blocks_per_die_ < kGcReservedBlocks + 4)
        fatal("Ftl: too few blocks per die; raise capacity or OP");
    if (blocks_per_die_ > 4096 || pages_per_block_ > 4096)
        fatal("Ftl: geometry exceeds 32-bit mapping entry limits");

    // Spare blocks per die = physical minus the space needed for the
    // logical capacity; GC thresholds must stay below the spare fraction
    // or reclamation targets become unreachable.
    uint64_t user_pages_per_die =
        (num_lpns_ + num_dies_ - 1) / num_dies_;
    uint64_t user_blocks = (user_pages_per_die + pages_per_block_ - 1) /
                           pages_per_block_;
    if (user_blocks + kGcReservedBlocks + 2 > blocks_per_die_)
        fatal("Ftl: overprovisioning too small for the geometry");
    spare_blocks_ = blocks_per_die_ - static_cast<uint32_t>(user_blocks);
    auto configured = static_cast<uint32_t>(
        cfg_.gc_bg_threshold * static_cast<double>(blocks_per_die_));
    // Start GC at the configured fraction, clamped to what the spare
    // space can actually sustain, and never below the hard reserve.
    gc_start_free_ = std::max<uint32_t>(
        kGcReservedBlocks + 1,
        std::min(configured, spare_blocks_ * 3 / 5));

    mapping_.assign(num_lpns_, kUnmappedEntry);
    dies_.resize(num_dies_);
    for (auto &die : dies_) {
        die.blocks.resize(blocks_per_die_);
        for (auto &blk : die.blocks)
            blk.lpns.assign(pages_per_block_, kUnmapped);
        die.free_blocks.reserve(blocks_per_die_);
        // Highest indices first so block 0 is the first write point.
        for (uint32_t b = blocks_per_die_; b-- > 0;)
            die.free_blocks.push_back(b);
    }
}

uint32_t
Ftl::pack(uint32_t die, uint32_t block, uint32_t page) const
{
    return (die << 24) | (block << 12) | page;
}

PhysLoc
Ftl::unpack(uint32_t entry) const
{
    return PhysLoc{entry >> 24, (entry >> 12) & 0xFFF, entry & 0xFFF};
}

PhysLoc
Ftl::lookupRead(uint64_t lpn) const
{
    if (lpn >= num_lpns_)
        lpn %= num_lpns_;
    uint32_t entry =
        mapping_.empty() ? kUnmappedEntry : mapping_[lpn];
    if (entry == kUnmappedEntry) {
        // Never-written data: deterministic stripe placement.
        return PhysLoc{static_cast<uint32_t>(lpn % num_dies_), 0, 0};
    }
    return unpack(entry);
}

bool
Ftl::hostWriteStalled(uint32_t die) const
{
    const Die &d = dies_[die];
    // A stall happens when taking a fresh block would eat into the GC
    // reserve and the current write point is full.
    bool wp_full = d.host_wp == kNoBlock ||
                   d.blocks[d.host_wp].used >= pages_per_block_;
    return wp_full && d.free_blocks.size() <= kGcReservedBlocks;
}

void
Ftl::invalidate(uint64_t lpn)
{
    uint32_t entry = mapping_[lpn];
    if (entry == kUnmappedEntry)
        return;
    PhysLoc loc = unpack(entry);
    Block &blk = dies_[loc.die].blocks[loc.block];
    if (blk.lpns[loc.page] == lpn) {
        blk.lpns[loc.page] = kUnmapped;
        if (blk.valid == 0)
            panic("Ftl::invalidate: valid count underflow");
        --blk.valid;
    }
    mapping_[lpn] = kUnmappedEntry;
}

PhysLoc
Ftl::allocSlot(uint32_t die, bool gc)
{
    Die &d = dies_[die];
    uint32_t &wp = gc ? d.gc_wp : d.host_wp;
    if (wp == kNoBlock || d.blocks[wp].used >= pages_per_block_) {
        size_t reserve = gc ? 0 : kGcReservedBlocks;
        if (d.free_blocks.size() <= reserve)
            return PhysLoc{die, kNoBlock, 0};
        wp = d.free_blocks.back();
        d.free_blocks.pop_back();
    }
    Block &blk = d.blocks[wp];
    uint32_t page = blk.used++;
    return PhysLoc{die, wp, page};
}

PhysLoc
Ftl::commitHostWrite(uint64_t lpn, uint32_t die)
{
    if (lpn >= num_lpns_)
        lpn %= num_lpns_;
    invalidate(lpn);
    PhysLoc loc = allocSlot(die, /*gc=*/false);
    if (loc.block == kNoBlock)
        panic("Ftl::commitHostWrite: caller ignored hostWriteStalled()");
    Block &blk = dies_[die].blocks[loc.block];
    blk.lpns[loc.page] = lpn;
    ++blk.valid;
    mapping_[lpn] = pack(die, loc.block, loc.page);
    ++host_pages_written_;
    return loc;
}

uint32_t
Ftl::takeHostWriteDie()
{
    uint32_t die = write_rr_;
    write_rr_ = (write_rr_ + 1) % num_dies_;
    return die;
}

void
Ftl::noteOverwrite(uint64_t lpn)
{
    if (lpn >= num_lpns_)
        lpn %= num_lpns_;
    invalidate(lpn);
}

bool
Ftl::needsGc(uint32_t die) const
{
    if (cfg_.medium != MediumType::kFlash)
        return false;
    return dies_[die].free_blocks.size() < gc_start_free_;
}

double
Ftl::freeFraction(uint32_t die) const
{
    return static_cast<double>(dies_[die].free_blocks.size()) /
           static_cast<double>(blocks_per_die_);
}

uint32_t
Ftl::selectVictim(uint32_t die) const
{
    const Die &d = dies_[die];
    uint32_t best = kNoBlock;
    uint32_t best_valid = UINT32_MAX;
    for (uint32_t b = 0; b < blocks_per_die_; ++b) {
        if (b == d.host_wp || b == d.gc_wp)
            continue;
        const Block &blk = d.blocks[b];
        if (blk.bad)
            continue; // grown bad block: never erased or reused
        if (blk.used < pages_per_block_)
            continue; // not fully written (free or active)
        if (blk.valid < best_valid) {
            best_valid = blk.valid;
            best = b;
        }
    }
    // A fully-valid victim cannot be reclaimed at a profit; wait for
    // host overwrites to invalidate pages instead of burning die time.
    if (best != kNoBlock && best_valid >= pages_per_block_)
        return kNoBlock;
    return best;
}

bool
Ftl::gcHasMove(uint32_t die)
{
    Die &d = dies_[die];
    if (d.victim == kNoBlock) {
        d.victim = selectVictim(die);
        d.victim_scan = 0;
        if (d.victim == kNoBlock)
            return false;
    }
    return d.blocks[d.victim].valid > 0;
}

void
Ftl::gcCommitMove(uint32_t die)
{
    Die &d = dies_[die];
    if (d.victim == kNoBlock) {
        // A bad-block remap ran instant GC while this move was in
        // flight on the die and reclaimed the victim already; the die
        // time was spent but there is nothing left to copy.
        return;
    }
    Block &victim = d.blocks[d.victim];
    // Find the next still-valid page under the scan cursor.
    while (d.victim_scan < pages_per_block_ &&
           victim.lpns[d.victim_scan] == kUnmapped) {
        ++d.victim_scan;
    }
    if (d.victim_scan >= pages_per_block_ || victim.valid == 0) {
        // The host overwrote the victim's remaining pages while this
        // move was in flight on the die: the copy is moot (the die time
        // was still spent — as on real hardware).
        return;
    }

    uint64_t lpn = victim.lpns[d.victim_scan];
    PhysLoc loc = allocSlot(die, /*gc=*/true);
    if (loc.block == kNoBlock)
        panic("Ftl::gcCommitMove: GC reserve exhausted");

    victim.lpns[d.victim_scan] = kUnmapped;
    --victim.valid;
    ++d.victim_scan;

    Block &dst = d.blocks[loc.block];
    dst.lpns[loc.page] = lpn;
    ++dst.valid;
    mapping_[lpn] = pack(die, loc.block, loc.page);
    ++gc_pages_moved_;
}

bool
Ftl::victimReadyForErase(uint32_t die) const
{
    const Die &d = dies_[die];
    return d.victim != kNoBlock && d.blocks[d.victim].valid == 0;
}

void
Ftl::gcCommitErase(uint32_t die)
{
    Die &d = dies_[die];
    if (!victimReadyForErase(die)) {
        // Either the victim was reclaimed by instant GC during a
        // bad-block remap while the erase was in flight, or instant GC
        // replaced it with a fresh, still-valid victim. Both ways the
        // scheduled erase is moot; the caller re-evaluates GC state.
        return;
    }
    Block &victim = d.blocks[d.victim];
    std::fill(victim.lpns.begin(), victim.lpns.end(), kUnmapped);
    victim.used = 0;
    victim.valid = 0;
    d.free_blocks.push_back(d.victim);
    d.victim = kNoBlock;
    d.victim_scan = 0;
    ++blocks_erased_;
}

void
Ftl::instantWrite(uint64_t lpn)
{
    if (lpn >= num_lpns_)
        lpn %= num_lpns_;
    // Invalidate first so GC sees the dead page if it must run now.
    noteOverwrite(lpn);
    uint32_t die = takeHostWriteDie();
    if (hostWriteStalled(die))
        instantGc(die);
    commitHostWrite(lpn, die);
}

void
Ftl::instantGc(uint32_t die)
{
    // Reclaim until the background-GC start level is restored, breaking
    // out when a victim cycle makes no net progress (fully-valid victim).
    while (dies_[die].free_blocks.size() < gc_start_free_) {
        if (!gcHasMove(die)) {
            if (victimReadyForErase(die)) {
                gcCommitErase(die);
                continue;
            }
            break; // nothing reclaimable
        }
        const Block &victim = dies_[die].blocks[dies_[die].victim];
        if (victim.valid >= pages_per_block_)
            break; // zero net gain: moving costs what erasing frees
        while (dies_[die].blocks[dies_[die].victim].valid > 0)
            gcCommitMove(die);
        gcCommitErase(die);
    }
}

bool
Ftl::growBadBlock(uint64_t lpn)
{
    if (cfg_.medium != MediumType::kFlash)
        return false;
    if (lpn >= num_lpns_)
        lpn %= num_lpns_;
    uint32_t entry = mapping_[lpn];
    if (entry == kUnmappedEntry)
        return false;
    PhysLoc loc = unpack(entry);
    Die &d = dies_[loc.die];
    // Active blocks stay in service: retiring a write point or the GC
    // victim mid-scan would corrupt the allocation state machine.
    if (loc.block == d.host_wp || loc.block == d.gc_wp ||
        loc.block == d.victim) {
        return false;
    }
    Block &blk = d.blocks[loc.block];
    if (blk.bad)
        return false;

    // Retire the block BEFORE draining it: remap writes below can kick
    // off GC on this die, and a not-yet-bad full block with dead pages
    // is a tempting victim — letting GC erase and reuse it mid-drain
    // would put survivor pages right back into the bad block.
    blk.bad = true;
    blk.used = pages_per_block_;
    ++bad_blocks_;

    // Remap every surviving page (including the triggering one) to a
    // fresh location; instantWrite invalidates the old slot first, so
    // the block drains to zero valid pages. The block is never selected
    // as a GC victim and never returns to the free list — the die's
    // spare capacity just shrank by one block.
    std::vector<uint64_t> survivors;
    survivors.reserve(blk.valid);
    for (uint32_t p = 0; p < blk.used; ++p) {
        if (blk.lpns[p] != kUnmapped)
            survivors.push_back(blk.lpns[p]);
    }
    for (uint64_t survivor : survivors)
        instantWrite(survivor);
    if (blk.valid != 0)
        panic("Ftl::growBadBlock: block not drained by remap");
    return true;
}

bool
Ftl::checkInvariants(std::string *error) const
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (cfg_.medium != MediumType::kFlash)
        return true;

    // Every mapped LPN's slot must point back at it.
    uint64_t mapped = 0;
    for (uint64_t lpn = 0; lpn < num_lpns_; ++lpn) {
        uint32_t entry = mapping_[lpn];
        if (entry == kUnmappedEntry)
            continue;
        ++mapped;
        PhysLoc loc = unpack(entry);
        if (loc.die >= num_dies_ || loc.block >= blocks_per_die_ ||
            loc.page >= pages_per_block_) {
            return fail(strCat("lpn ", lpn, " maps out of range"));
        }
        const Block &blk = dies_[loc.die].blocks[loc.block];
        if (blk.lpns[loc.page] != lpn)
            return fail(strCat("lpn ", lpn, " slot mismatch"));
        if (loc.page >= blk.used)
            return fail(strCat("lpn ", lpn, " points at unwritten slot"));
    }

    // Per-block valid counts must equal the live slots; free blocks must
    // be empty; totals must add up.
    uint64_t valid_total = 0;
    for (uint32_t die = 0; die < num_dies_; ++die) {
        const Die &d = dies_[die];
        for (uint32_t b = 0; b < blocks_per_die_; ++b) {
            const Block &blk = d.blocks[b];
            uint32_t live = 0;
            for (uint32_t p = 0; p < blk.used; ++p)
                live += blk.lpns[p] != kUnmapped;
            for (uint32_t p = blk.used; p < pages_per_block_; ++p) {
                if (blk.lpns[p] != kUnmapped)
                    return fail(strCat("die ", die, " block ", b,
                                       " live page beyond used"));
            }
            if (live != blk.valid)
                return fail(strCat("die ", die, " block ", b,
                                   " valid count mismatch"));
            valid_total += blk.valid;
        }
        for (uint32_t b : d.free_blocks) {
            const Block &blk = d.blocks[b];
            if (blk.used != 0 || blk.valid != 0)
                return fail(strCat("die ", die, " free block ", b,
                                   " not empty"));
            if (blk.bad)
                return fail(strCat("die ", die, " bad block ", b,
                                   " on the free list"));
        }
        if (d.free_blocks.size() > blocks_per_die_)
            return fail(strCat("die ", die, " free list too large"));
    }
    if (valid_total != mapped)
        return fail(strCat("valid total ", valid_total,
                           " != mapped lpns ", mapped));
    return true;
}

void
Ftl::preconditionSequentialFill(double fill_fraction)
{
    if (cfg_.medium != MediumType::kFlash)
        return;
    fill_fraction = std::clamp(fill_fraction, 0.0, 1.0);
    uint64_t pages = static_cast<uint64_t>(
        fill_fraction * static_cast<double>(num_lpns_));
    for (uint64_t lpn = 0; lpn < pages; ++lpn)
        instantWrite(lpn);
}

void
Ftl::preconditionRandomOverwrite(uint64_t count, Rng &rng)
{
    if (cfg_.medium != MediumType::kFlash)
        return;
    for (uint64_t i = 0; i < count; ++i)
        instantWrite(rng.below(num_lpns_));
}

} // namespace isol::ssd
