/**
 * @file
 * Page-mapped flash translation layer with greedy garbage collection.
 *
 * The FTL owns the logical-to-physical mapping, per-block validity
 * bookkeeping, write-point allocation (separate host and GC write points
 * per die, as in real controllers), victim selection, and the
 * preconditioning passes the paper performs before write experiments.
 *
 * The FTL is purely bookkeeping — it consumes no simulated time. The
 * SsdDevice drives it and charges die/channel time for each operation.
 */
// isol: domain(ssd)

#ifndef ISOL_SSD_FTL_HH
#define ISOL_SSD_FTL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "ssd/config.hh"

namespace isol::ssd
{

/** Physical location of a logical page. */
struct PhysLoc
{
    uint32_t die;
    uint32_t block;
    uint32_t page;
};

/**
 * Flash translation layer state machine.
 */
class Ftl
{
  public:
    explicit Ftl(const SsdConfig &cfg);

    /** Number of dies managed. */
    uint32_t numDies() const { return num_dies_; }

    /** Blocks per die. */
    uint32_t blocksPerDie() const { return blocks_per_die_; }

    /**
     * Physical location serving a read of `lpn`. Unwritten pages resolve
     * to a deterministic stripe location (reading never-written data is
     * legal and serviced like any other read).
     */
    PhysLoc lookupRead(uint64_t lpn) const;

    /**
     * Die that the next host write will go to (global round-robin write
     * pointer). Does not advance the pointer.
     */
    uint32_t nextHostWriteDie() const { return write_rr_; }

    /**
     * True when `die` cannot currently accept a host write because free
     * space is at/below the foreground-GC threshold (host writes must
     * stall until GC frees a block).
     */
    bool hostWriteStalled(uint32_t die) const;

    /**
     * Record that `lpn` is about to be overwritten (the write was admitted
     * to the device cache): the old mapping is invalidated immediately so
     * GC can reclaim the dead page before the program lands — as on a real
     * controller, where cached data supersedes the flash copy.
     */
    void noteOverwrite(uint64_t lpn);

    /**
     * Commit one host page write of `lpn` to `die`: allocates a slot on
     * the die's host write point, invalidates any previous mapping and
     * installs the new one. Caller must ensure !hostWriteStalled(die).
     * Returns the new location.
     */
    PhysLoc commitHostWrite(uint64_t lpn, uint32_t die);

    /** Advance the round-robin host write pointer and return prior value. */
    uint32_t takeHostWriteDie();

    /** True when background GC should run on `die`. */
    bool needsGc(uint32_t die) const;

    /**
     * True when `die` has a move to perform for its current or a newly
     * selected victim. Selects a victim lazily. When this returns false
     * but a drained victim awaits erase, use victimReadyForErase().
     */
    bool gcHasMove(uint32_t die);

    /** Bookkeep one GC valid-page move on `die` (mapping updated). */
    void gcCommitMove(uint32_t die);

    /** True when the die's victim has no valid pages left (erase it). */
    bool victimReadyForErase(uint32_t die) const;

    /** Bookkeep the erase of the die's victim; frees the block. */
    void gcCommitErase(uint32_t die);

    /** Free-space fraction (free blocks / total blocks) on `die`. */
    double freeFraction(uint32_t die) const;

    /** Free blocks below which background GC starts (spare-aware). */
    uint32_t gcStartFreeBlocks() const { return gc_start_free_; }

    /** Spare (overprovisioned) blocks per die. */
    uint32_t spareBlocksPerDie() const { return spare_blocks_; }

    /**
     * Instant preconditioning: sequentially write `fill_fraction` of the
     * logical space (no simulated time).
     */
    void preconditionSequentialFill(double fill_fraction);

    /**
     * Instant preconditioning: perform `count` random-page overwrites,
     * running GC instantly whenever allocation would stall. Produces the
     * steady-state block-validity distribution the paper creates with its
     * random-overwrite pass.
     */
    void preconditionRandomOverwrite(uint64_t count, Rng &rng);

    /**
     * Declare the block holding `lpn` a grown bad block: its surviving
     * valid pages are remapped to fresh locations (instant bookkeeping;
     * the device charges die time separately) and the block is retired
     * from circulation forever, shrinking effective spare capacity.
     *
     * Returns false without side effects when the block cannot be
     * retired right now (unmapped lpn, active write point, current GC
     * victim, or non-flash media).
     */
    bool growBadBlock(uint64_t lpn);

    /** Grown bad blocks retired so far (whole device). */
    uint64_t badBlocks() const { return bad_blocks_; }

    /**
     * Verify internal consistency (testing): every mapped LPN points at
     * a slot that points back; per-block valid counts match the mapping;
     * free-list blocks are empty; block counts add up. Returns true when
     * consistent; otherwise fills `error` with the first violation.
     */
    bool checkInvariants(std::string *error = nullptr) const;

    // --- Statistics ---

    /** Zero the write/GC counters (called after preconditioning). */
    void
    resetStats()
    {
        host_pages_written_ = 0;
        gc_pages_moved_ = 0;
        blocks_erased_ = 0;
    }

    uint64_t hostPagesWritten() const { return host_pages_written_; }
    uint64_t gcPagesMoved() const { return gc_pages_moved_; }
    uint64_t blocksErased() const { return blocks_erased_; }

    /** Write amplification factor (total programs / host programs). */
    double
    waf() const
    {
        if (host_pages_written_ == 0)
            return 1.0;
        return static_cast<double>(host_pages_written_ + gc_pages_moved_) /
               static_cast<double>(host_pages_written_);
    }

  private:
    static constexpr uint32_t kNoBlock = UINT32_MAX;
    static constexpr uint64_t kUnmapped = UINT64_MAX;

    struct Block
    {
        std::vector<uint64_t> lpns; //!< lpn per slot (kUnmapped when dead)
        uint16_t used = 0; //!< slots written
        uint16_t valid = 0; //!< slots still mapped
        bool bad = false; //!< grown bad block, out of circulation
    };

    struct Die
    {
        std::vector<Block> blocks;
        std::vector<uint32_t> free_blocks;
        uint32_t host_wp = kNoBlock; //!< active host write block
        uint32_t gc_wp = kNoBlock; //!< active GC write block
        uint32_t victim = kNoBlock; //!< current GC victim
        uint32_t victim_scan = 0; //!< scan cursor into the victim
    };

    /** Pack/unpack mapping entries (die, block, page) into 32 bits. */
    uint32_t pack(uint32_t die, uint32_t block, uint32_t page) const;
    PhysLoc unpack(uint32_t entry) const;

    /** Invalidate the mapping entry of `lpn` if present. */
    void invalidate(uint64_t lpn);

    /**
     * Allocate a page slot on a write point. `gc` selects the GC write
     * point (which may dip into the reserved blocks). Returns kNoBlock
     * block when no space is available.
     */
    PhysLoc allocSlot(uint32_t die, bool gc);

    /** Pick the fullest-dead candidate victim on `die` (greedy). */
    uint32_t selectVictim(uint32_t die) const;

    /** Run GC to completion (bookkeeping only) until above fg threshold. */
    void instantGc(uint32_t die);

    /** Write one page instantly (preconditioning path). */
    void instantWrite(uint64_t lpn);

    const SsdConfig cfg_;
    uint32_t num_dies_;
    uint32_t blocks_per_die_;
    uint32_t pages_per_block_;
    uint64_t num_lpns_;
    uint32_t spare_blocks_ = 0;
    uint32_t gc_start_free_ = 2;

    std::vector<uint32_t> mapping_; //!< lpn -> packed loc (kUnmappedEntry)
    static constexpr uint32_t kUnmappedEntry = UINT32_MAX;
    std::vector<Die> dies_;

    uint32_t write_rr_ = 0;

    uint64_t host_pages_written_ = 0;
    uint64_t gc_pages_moved_ = 0;
    uint64_t blocks_erased_ = 0;
    uint64_t bad_blocks_ = 0;
};

} // namespace isol::ssd

#endif // ISOL_SSD_FTL_HH
