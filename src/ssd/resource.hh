/**
 * @file
 * Serial FIFO resource server — the building block for flash dies, flash
 * channels, and the device's host link.
 *
 * Because service is strictly FIFO and service times are known at enqueue
 * time, the server needs no explicit queue: it tracks the time at which it
 * drains (`busyUntil`) and schedules each job's completion directly. This
 * keeps the event count at one event per job.
 */
// isol: domain(ssd)

#ifndef ISOL_SSD_RESOURCE_HH
#define ISOL_SSD_RESOURCE_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/simulator.hh"

namespace isol::ssd
{

/**
 * A single-server FIFO queue with deterministic service order.
 */
class FifoServer
{
  public:
    explicit FifoServer(sim::Simulator &sim) : sim_(sim) {}

    FifoServer(const FifoServer &) = delete;
    FifoServer &operator=(const FifoServer &) = delete;

    /**
     * Enqueue a job taking `service` ns; `done` fires when it completes.
     * Returns the completion time.
     */
    SimTime
    enqueue(SimTime service, sim::SmallCallback done)
    {
        if (service < 0)
            panic("FifoServer: negative service time");
        SimTime start = std::max(sim_.now(), busy_until_);
        busy_until_ = start + service;
        busy_ns_ += service;
        ++jobs_;
        sim_.at(busy_until_, std::move(done));
        return busy_until_;
    }

    /** Time at which the server drains (may be in the past when idle). */
    SimTime busyUntil() const { return busy_until_; }

    /** Whether a job enqueued now would have to wait. */
    bool busy() const { return busy_until_ > sim_.now(); }

    /** Queueing delay a job enqueued now would experience. */
    SimTime
    backlog() const
    {
        return busy_until_ > sim_.now() ? busy_until_ - sim_.now() : 0;
    }

    /** Cumulative busy time (for utilisation statistics). */
    SimTime busyNs() const { return busy_ns_; }

    /** Total jobs served (including in flight). */
    uint64_t jobs() const { return jobs_; }

  private:
    sim::Simulator &sim_;
    SimTime busy_until_ = 0;
    SimTime busy_ns_ = 0;
    uint64_t jobs_ = 0;
};

} // namespace isol::ssd

#endif // ISOL_SSD_RESOURCE_HH
