#include "stats/fairness.hh"

#include "common/logging.hh"

namespace isol::stats
{

double
jainIndex(const std::vector<double> &allocations)
{
    size_t n = allocations.size();
    if (n <= 1)
        return 1.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : allocations) {
        if (x < 0.0)
            fatal("jainIndex: negative allocation");
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq == 0.0)
        return 1.0; // all-zero: trivially equal
    return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

double
weightedJainIndex(const std::vector<double> &allocations,
                  const std::vector<double> &weights)
{
    if (allocations.size() != weights.size())
        fatal("weightedJainIndex: size mismatch");
    std::vector<double> normalised;
    normalised.reserve(allocations.size());
    for (size_t i = 0; i < allocations.size(); ++i) {
        if (weights[i] <= 0.0)
            fatal("weightedJainIndex: non-positive weight");
        normalised.push_back(allocations[i] / weights[i]);
    }
    return jainIndex(normalised);
}

} // namespace isol::stats
