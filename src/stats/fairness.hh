/**
 * @file
 * Jain's fairness index, the D2 metric of the paper (§II-B / §VI-A).
 *
 * For allocations x_i and weights w_i the weighted index is
 *   J = (sum(x_i / w_i))^2 / (n * sum((x_i / w_i)^2)),
 * i.e. the classic Jain index over the weight-normalised allocations.
 * J == 1 means perfectly proportional sharing; J -> 1/n means one tenant
 * captured everything.
 */

#ifndef ISOL_STATS_FAIRNESS_HH
#define ISOL_STATS_FAIRNESS_HH

#include <vector>

namespace isol::stats
{

/** Unweighted Jain fairness index; 1.0 for an empty or singleton input. */
double jainIndex(const std::vector<double> &allocations);

/**
 * Weighted Jain fairness index: allocations are normalised by weight
 * before applying the classic formula. Weights must be positive and the
 * two vectors must have equal length.
 */
double weightedJainIndex(const std::vector<double> &allocations,
                         const std::vector<double> &weights);

} // namespace isol::stats

#endif // ISOL_STATS_FAIRNESS_HH
