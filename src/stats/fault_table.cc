#include "stats/fault_table.hh"

#include <cstdio>

namespace isol::stats
{

namespace
{
std::string
ms(SimTime ns)
{
    double v = static_cast<double>(ns) / 1e6;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}
} // namespace

Table
deviceFaultTable(const std::string &device,
                 const fault::DeviceFaultStats &dev,
                 const fault::HostFaultStats &host)
{
    Table table({"device", "read_retries", "uncorrectable", "remapped",
                 "spikes", "throttle_ms", "timeouts", "requeues",
                 "retry_ok", "failed", "late"});
    table.addRow({device, std::to_string(dev.read_retries),
                  std::to_string(dev.uncorrectable),
                  std::to_string(dev.remapped_blocks),
                  std::to_string(dev.spike_events), ms(dev.throttle_ns),
                  std::to_string(host.timeouts),
                  std::to_string(host.requeues),
                  std::to_string(host.retry_successes),
                  std::to_string(host.failed_ios),
                  std::to_string(host.late_completions)});
    return table;
}

Table
cgroupFaultTable(const cgroup::CgroupTree &tree, bool include_zero)
{
    Table table({"cgroup", "timeouts", "requeues", "retry_ok", "failed"});
    for (const auto &group : tree.groups()) {
        if (!group) // removed group: id slot parked on the free list
            continue;
        const cgroup::Cgroup::IoFaultStat &st = group->ioFaultStat();
        bool zero = st.timeouts == 0 && st.requeues == 0 &&
                    st.retry_successes == 0 && st.failed_ios == 0;
        if (zero && (!include_zero || group->isRoot()))
            continue;
        table.addRow({group->path(), std::to_string(st.timeouts),
                      std::to_string(st.requeues),
                      std::to_string(st.retry_successes),
                      std::to_string(st.failed_ios)});
    }
    return table;
}

} // namespace isol::stats
