/**
 * @file
 * Table emitters for the fault-injection counters: per-device media /
 * thermal / timeout statistics and the per-cgroup retry accounting.
 */

#ifndef ISOL_STATS_FAULT_TABLE_HH
#define ISOL_STATS_FAULT_TABLE_HH

#include <string>

#include "cgroup/cgroup.hh"
#include "fault/fault.hh"
#include "stats/table.hh"

namespace isol::stats
{

/**
 * One row of device-side and host-side fault counters for `device`.
 */
Table deviceFaultTable(const std::string &device,
                       const fault::DeviceFaultStats &dev,
                       const fault::HostFaultStats &host);

/**
 * Per-cgroup command-timeout / retry counters, one row per group.
 * All-zero groups are skipped unless `include_zero` (the root is always
 * skipped when zero).
 */
Table cgroupFaultTable(const cgroup::CgroupTree &tree,
                       bool include_zero = false);

} // namespace isol::stats

#endif // ISOL_STATS_FAULT_TABLE_HH
