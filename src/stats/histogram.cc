#include "stats/histogram.hh"

#include <algorithm>
#include <bit>

namespace isol::stats
{

Histogram::Histogram() = default;

size_t
Histogram::valueToIndex(int64_t value)
{
    if (value < 0)
        value = 0;
    uint64_t v = static_cast<uint64_t>(value);
    if (v < kSubBuckets)
        return static_cast<size_t>(v);
    // For v >= kSubBuckets, shift v right until it lands in
    // [kSubBuckets/2, kSubBuckets): each magnitude (power of two) then
    // contributes kSubBuckets/2 linear buckets.
    int msb = 63 - std::countl_zero(v);
    int magnitude = msb - kSubBucketBits + 1; // >= 1
    uint64_t sub = v >> magnitude; // in [kSubBuckets/2, kSubBuckets)
    return static_cast<size_t>(kSubBuckets) +
           static_cast<size_t>(magnitude - 1) * (kSubBuckets / 2) +
           static_cast<size_t>(sub - kSubBuckets / 2);
}

int64_t
Histogram::indexToValue(size_t index)
{
    if (index < kSubBuckets)
        return static_cast<int64_t>(index);
    size_t rest = index - kSubBuckets;
    uint64_t magnitude = rest / (kSubBuckets / 2) + 1;
    uint64_t sub = rest % (kSubBuckets / 2) + kSubBuckets / 2;
    // Upper edge of the bucket (largest value mapping to this index).
    return static_cast<int64_t>(((sub + 1) << magnitude) - 1);
}

void
Histogram::record(int64_t value)
{
    record(value, 1);
}

void
Histogram::record(int64_t value, uint64_t count)
{
    if (count == 0)
        return;
    if (value < 0)
        value = 0;
    size_t idx = valueToIndex(value);
    if (idx >= buckets_.size())
        buckets_.resize(idx + 1, 0);
    buckets_[idx] += count;
    count_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
    max_ = std::max(max_, value);
    if (!has_min_ || value < min_) {
        min_ = value;
        has_min_ = true;
    }
}

void
Histogram::merge(const Histogram &other)
{
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    if (other.has_min_ && (!has_min_ || other.min_ < min_)) {
        min_ = other.min_;
        has_min_ = true;
    }
}

void
Histogram::clear()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0.0;
    max_ = 0;
    min_ = 0;
    has_min_ = false;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(count_);
}

int64_t
Histogram::min() const
{
    return has_min_ ? min_ : 0;
}

int64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    // Rank of the requested percentile, 1-based.
    uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                          static_cast<double>(count_));
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            int64_t value = indexToValue(i);
            return std::min(value, max_);
        }
    }
    return max_;
}

std::vector<std::pair<int64_t, double>>
Histogram::cdf() const
{
    std::vector<std::pair<int64_t, double>> out;
    if (count_ == 0)
        return out;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        seen += buckets_[i];
        out.emplace_back(std::min(indexToValue(i), max_),
                         static_cast<double>(seen) /
                             static_cast<double>(count_));
    }
    return out;
}

} // namespace isol::stats
