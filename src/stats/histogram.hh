/**
 * @file
 * Log-linear latency histogram (HDR-histogram style).
 *
 * Values are bucketed with a fixed relative precision: each power-of-two
 * magnitude range is divided into `kSubBuckets` linear sub-buckets, giving
 * <= 1/kSubBuckets relative error on percentile queries while using a few
 * KiB of memory and O(1) inserts — essential when recording tens of
 * millions of per-I/O latencies.
 */

#ifndef ISOL_STATS_HISTOGRAM_HH
#define ISOL_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace isol::stats
{

/**
 * Fixed-precision histogram over non-negative int64 values (nanoseconds).
 */
class Histogram
{
  public:
    Histogram();

    /** Record one value (values < 0 clamp to 0). */
    void record(int64_t value);

    /** Record one value `count` times. */
    void record(int64_t value, uint64_t count);

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Remove all samples. */
    void clear();

    /** Total number of recorded samples. */
    uint64_t count() const { return count_; }

    /** Arithmetic mean of recorded samples (bucket-midpoint based). */
    double mean() const;

    /** Largest recorded value (exact, not bucketed). */
    int64_t max() const { return max_; }

    /** Smallest recorded value (exact, not bucketed). */
    int64_t min() const;

    /**
     * Value at percentile `p` in [0, 100]. Returns the representative
     * (upper-edge) value of the bucket containing that rank; 0 if empty.
     */
    int64_t percentile(double p) const;

    /**
     * CDF points as (value, cumulative_probability) pairs, one per
     * non-empty bucket — suitable for plotting the paper's Fig 3 CDFs.
     */
    std::vector<std::pair<int64_t, double>> cdf() const;

  private:
    static constexpr int kSubBucketBits = 6; // 64 sub-buckets => ~1.6% error
    static constexpr int kSubBuckets = 1 << kSubBucketBits;

    /** Map a value to its bucket index. */
    static size_t valueToIndex(int64_t value);

    /** Upper-edge representative value of a bucket. */
    static int64_t indexToValue(size_t index);

    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    int64_t max_ = 0;
    int64_t min_ = 0;
    bool has_min_ = false;
    double sum_ = 0.0;
};

} // namespace isol::stats

#endif // ISOL_STATS_HISTOGRAM_HH
