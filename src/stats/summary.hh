/**
 * @file
 * Streaming mean/variance accumulator (Welford) used for repeated-run
 * standard deviations (the paper repeats fairness experiments 5 times).
 */

#ifndef ISOL_STATS_SUMMARY_HH
#define ISOL_STATS_SUMMARY_HH

#include <cmath>
#include <cstdint>

namespace isol::stats
{

/** Online mean / sample-stddev / min / max over double observations. */
class Summary
{
  public:
    /** Add one observation. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (n_ == 1 || x < min_)
            min_ = x;
        if (n_ == 1 || x > max_)
            max_ = x;
    }

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 with fewer than 2 samples. */
    double
    variance() const
    {
        return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace isol::stats

#endif // ISOL_STATS_SUMMARY_HH
