#include "stats/table.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace isol::stats
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        fatal(strCat("Table: row has ", row.size(), " fields, expected ",
                     headers_.size()));
    rows_.push_back(std::move(row));
}

std::string
Table::toAligned() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            oss << row[c];
            if (c + 1 < row.size())
                oss << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        oss << '\n';
    };
    emitRow(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    oss << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
    return oss.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            const std::string &field = row[c];
            bool quote = field.find(',') != std::string::npos ||
                         field.find('"') != std::string::npos;
            if (quote) {
                oss << '"';
                for (char ch : field) {
                    if (ch == '"')
                        oss << '"';
                    oss << ch;
                }
                oss << '"';
            } else {
                oss << field;
            }
            if (c + 1 < row.size())
                oss << ',';
        }
        oss << '\n';
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
    return oss.str();
}

} // namespace isol::stats
