/**
 * @file
 * Aligned-text and CSV table emitters used by the benchmark harnesses to
 * print the paper's rows/series.
 */

#ifndef ISOL_STATS_TABLE_HH
#define ISOL_STATS_TABLE_HH

#include <string>
#include <vector>

namespace isol::stats
{

/**
 * Simple row/column table. Collect rows of strings; render either as an
 * aligned monospace table or as CSV.
 */
class Table
{
  public:
    /** @param headers column headers */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    size_t numRows() const { return rows_.size(); }

    /** Render with space padding and a separator line under the header. */
    std::string toAligned() const;

    /** Render as RFC-4180-ish CSV (fields containing commas are quoted). */
    std::string toCsv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace isol::stats

#endif // ISOL_STATS_TABLE_HH
