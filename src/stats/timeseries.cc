#include "stats/timeseries.hh"

#include "common/logging.hh"

namespace isol::stats
{

TimeSeries::TimeSeries(SimTime bin_width) : bin_width_(bin_width)
{
    if (bin_width_ <= 0)
        panic("TimeSeries: bin width must be positive");
}

void
TimeSeries::add(SimTime when, uint64_t amount)
{
    if (when < 0)
        when = 0;
    size_t bin = static_cast<size_t>(when / bin_width_);
    if (bin >= bins_.size())
        bins_.resize(bin + 1, 0);
    bins_[bin] += amount;
    total_ += amount;
}

uint64_t
TimeSeries::binTotal(size_t i) const
{
    return i < bins_.size() ? bins_[i] : 0;
}

uint64_t
TimeSeries::totalBetween(SimTime from, SimTime to) const
{
    if (to <= from)
        return 0;
    uint64_t sum = 0;
    for (size_t i = 0; i < bins_.size(); ++i) {
        SimTime start = static_cast<SimTime>(i) * bin_width_;
        if (start >= from && start < to)
            sum += bins_[i];
    }
    return sum;
}

std::vector<double>
TimeSeries::ratePerSecond() const
{
    std::vector<double> out;
    out.reserve(bins_.size());
    double secs = nsToSec(bin_width_);
    for (uint64_t b : bins_)
        out.push_back(static_cast<double>(b) / secs);
    return out;
}

double
TimeSeries::meanRate(SimTime from, SimTime to) const
{
    if (to <= from)
        return 0.0;
    return static_cast<double>(totalBetween(from, to)) / nsToSec(to - from);
}

} // namespace isol::stats
