/**
 * @file
 * Binned time series for bandwidth/throughput-over-time plots (Fig 2) and
 * for windowed statistics (burst-response detection).
 */

#ifndef ISOL_STATS_TIMESERIES_HH
#define ISOL_STATS_TIMESERIES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace isol::stats
{

/**
 * Accumulates a quantity (bytes, I/O count, busy-ns...) into fixed-width
 * time bins so we can plot it as a rate over time.
 */
class TimeSeries
{
  public:
    /** @param bin_width width of each bin in simulated ns (default 100ms) */
    explicit TimeSeries(SimTime bin_width = msToNs(100));

    /** Add `amount` at simulated time `when`. */
    void add(SimTime when, uint64_t amount);

    /** Bin width in ns. */
    SimTime binWidth() const { return bin_width_; }

    /** Number of bins (0..highest time seen). */
    size_t numBins() const { return bins_.size(); }

    /** Raw accumulated amount in bin `i` (0 if out of range). */
    uint64_t binTotal(size_t i) const;

    /** Sum over all bins. */
    uint64_t total() const { return total_; }

    /** Sum over bins whose start time lies in [from, to). */
    uint64_t totalBetween(SimTime from, SimTime to) const;

    /**
     * Per-bin rate in units/second, e.g. bytes/s when `add` was fed bytes.
     * One entry per bin.
     */
    std::vector<double> ratePerSecond() const;

    /** Mean rate (units/second) over [from, to). */
    double meanRate(SimTime from, SimTime to) const;

  private:
    SimTime bin_width_;
    std::vector<uint64_t> bins_;
    uint64_t total_ = 0;
};

} // namespace isol::stats

#endif // ISOL_STATS_TIMESERIES_HH
