#include "workload/adversary.hh"

#include "common/logging.hh"

namespace isol::workload
{

const char *
adversaryName(AdversaryKind kind)
{
    switch (kind) {
      case AdversaryKind::kNone: return "none";
      case AdversaryKind::kQueueFlood: return "queue-flood";
      case AdversaryKind::kGcStorm: return "gc-storm";
      case AdversaryKind::kSquareWave: return "square-wave";
      case AdversaryKind::kFlushStorm: return "flush-storm";
      case AdversaryKind::kSlowDrain: return "slow-drain";
    }
    return "?";
}

std::optional<AdversaryKind>
parseAdversary(std::string_view name)
{
    if (name == "none")
        return AdversaryKind::kNone;
    for (AdversaryKind kind : kAllAdversaries) {
        if (name == adversaryName(kind))
            return kind;
    }
    return std::nullopt;
}

JobSpec
adversaryApp(AdversaryKind kind, const std::string &name, SimTime duration)
{
    JobSpec spec;
    spec.name = name;
    spec.duration = duration;
    spec.adversary = kind;
    switch (kind) {
      case AdversaryKind::kNone:
        fatal("adversaryApp: kNone is not an adversary");
        break;
      case AdversaryKind::kQueueFlood:
        spec.pattern = AccessPattern::kRandom;
        spec.block_size = 4 * KiB;
        spec.iodepth = 512;
        spec.qd_ramp_start = 4;
        spec.qd_ramp_interval = msToNs(25);
        break;
      case AdversaryKind::kGcStorm:
        spec.op = OpType::kWrite;
        spec.read_fraction = 0.0;
        spec.pattern = AccessPattern::kRandom;
        spec.block_size = 16 * KiB;
        spec.iodepth = 128;
        break;
      case AdversaryKind::kSquareWave:
        spec.pattern = AccessPattern::kRandom;
        spec.block_size = 4 * KiB;
        spec.iodepth = 256;
        spec.burst_on = msToNs(25);
        spec.burst_off = msToNs(25);
        break;
      case AdversaryKind::kFlushStorm:
        spec.op = OpType::kWrite;
        spec.read_fraction = 0.0;
        spec.pattern = AccessPattern::kRandom;
        spec.block_size = 4 * KiB;
        spec.iodepth = 32;
        spec.fsync_every = 8;
        break;
      case AdversaryKind::kSlowDrain:
        spec.pattern = AccessPattern::kRandom;
        spec.block_size = 4 * KiB;
        spec.iodepth = 256;
        spec.reap_stall = usToNs(50);
        break;
    }
    return spec;
}

} // namespace isol::workload
