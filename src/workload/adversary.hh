/**
 * @file
 * Adversarial (misbehaving) tenant catalog — the chaos plane's workload
 * side. Each adversary is an ordinary deterministic, seeded FioJob spec
 * built by adversaryApp(); the misbehaviour comes entirely from JobSpec
 * mechanics (queue-depth ramp, fsync barrier, reap stall, duty cycle,
 * write pressure), so adversaries replay byte-identically across reruns
 * and `--jobs` like every other tenant.
 *
 * Catalog (paper ROADMAP: "misbehaving-tenant adversaries"):
 *  - queue-flood: ramps its queue depth 4 -> 512, doubling every 25 ms —
 *    the tenant that "just raises iodepth" until peers starve;
 *  - gc-storm:   sustained random overwrites at high depth that chew
 *    through the FTL's free-block pool and drag peers into GC stalls;
 *  - square-wave: 25 ms on / 25 ms off bursts at depth 256 — the duty
 *    cycle io.latency needs ~10 windows to throttle (paper O10);
 *  - flush-storm: small writes with an fsync barrier every 8 — drains
 *    the pipe constantly, defeating batching;
 *  - slow-drain:  submits at depth 256 but burns 50 us of CPU per reap,
 *    so completions back up while the device stays loaded.
 */

#ifndef ISOL_WORKLOAD_ADVERSARY_HH
#define ISOL_WORKLOAD_ADVERSARY_HH

#include <optional>
#include <string>
#include <string_view>

#include "workload/job.hh"

namespace isol::workload
{

/** CLI/report name of an adversary kind ("none" for kNone). */
const char *adversaryName(AdversaryKind kind);

/** Parse an adversaryName() back ("none" included); nullopt on typo. */
std::optional<AdversaryKind> parseAdversary(std::string_view name);

/** Every real adversary, in catalog order (kNone excluded). */
inline constexpr AdversaryKind kAllAdversaries[] = {
    AdversaryKind::kQueueFlood, AdversaryKind::kGcStorm,
    AdversaryKind::kSquareWave, AdversaryKind::kFlushStorm,
    AdversaryKind::kSlowDrain,
};

/**
 * Build the JobSpec of one adversarial tenant. Seed stays at the
 * JobSpec default so Scenario::addApp derives it deterministically from
 * the scenario seed, like every well-behaved app profile.
 */
JobSpec adversaryApp(AdversaryKind kind, const std::string &name,
                     SimTime duration);

} // namespace isol::workload

#endif // ISOL_WORKLOAD_ADVERSARY_HH
