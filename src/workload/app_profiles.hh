/**
 * @file
 * The paper's three app classes (§II-A / §III) as JobSpec factories:
 *
 *  - LC-app:    latency-critical, 4 KiB random reads at QD 1;
 *  - batch-app: bandwidth-hungry, 4 KiB random reads at QD 256;
 *  - BE-app:    best-effort (no SLO), same shape as a batch-app.
 *
 * Fig. 2's illustrative apps (64 KiB random reads, QD 8, rate-limited to
 * 1.5 GiB/s) get their own factory.
 */

#ifndef ISOL_WORKLOAD_APP_PROFILES_HH
#define ISOL_WORKLOAD_APP_PROFILES_HH

#include <string>

#include "workload/job.hh"

namespace isol::workload
{

/** Latency-critical app: 4 KiB random read, QD 1. */
inline JobSpec
lcApp(const std::string &name, SimTime duration)
{
    JobSpec spec;
    spec.name = name;
    spec.op = OpType::kRead;
    spec.pattern = AccessPattern::kRandom;
    spec.block_size = 4 * KiB;
    spec.iodepth = 1;
    spec.duration = duration;
    return spec;
}

/** Batch app: 4 KiB random read, QD 256. */
inline JobSpec
batchApp(const std::string &name, SimTime duration)
{
    JobSpec spec;
    spec.name = name;
    spec.op = OpType::kRead;
    spec.pattern = AccessPattern::kRandom;
    spec.block_size = 4 * KiB;
    spec.iodepth = 256;
    spec.duration = duration;
    return spec;
}

/** Best-effort app: no SLO; batch-shaped load. */
inline JobSpec
beApp(const std::string &name, SimTime duration)
{
    JobSpec spec = batchApp(name, duration);
    spec.name = name;
    return spec;
}

/** Fig. 2 illustrative app: 64 KiB randread QD 8, limited to 1.5 GiB/s. */
inline JobSpec
fig2App(const std::string &name, SimTime start, SimTime duration)
{
    JobSpec spec;
    spec.name = name;
    spec.op = OpType::kRead;
    spec.pattern = AccessPattern::kRandom;
    spec.block_size = 64 * KiB;
    spec.iodepth = 8;
    spec.rate_bps = 1536 * MiB; // 1.5 GiB/s
    spec.start_time = start;
    spec.duration = duration;
    return spec;
}

} // namespace isol::workload

#endif // ISOL_WORKLOAD_APP_PROFILES_HH
