#include "workload/job.hh"

#include <algorithm>

#include "common/logging.hh"

namespace isol::workload
{

/** One outstanding I/O slot (recycled between requests). */
struct FioJob::Inflight
{
    FioJob *job = nullptr;
    blk::Request req;
    SimTime issue_start = 0;
};

FioJob::FioJob(sim::Simulator &sim, JobSpec spec, blk::BlockDevice &bdev,
               host::CpuCore &core, host::EngineConfig engine,
               cgroup::CgroupTree &tree, cgroup::Cgroup *cg,
               host::TaskId task)
    : sim_(sim), spec_(std::move(spec)), bdev_(bdev), core_(core),
      engine_(engine), tree_(tree), cg_(cg), task_(task),
      rng_(spec_.seed ^ (static_cast<uint64_t>(task) << 32)),
      series_(spec.stats_bin > 0 ? spec.stats_bin : msToNs(100))
{
    if (spec_.block_size == 0)
        fatal("FioJob: block_size must be > 0");
    if (spec_.iodepth == 0)
        fatal("FioJob: iodepth must be > 0");
    if (spec_.range == 0)
        spec_.range = bdev_.ssd().config().user_capacity;
    if (spec_.read_fraction < 0.0 || spec_.read_fraction > 1.0)
        fatal("FioJob: read_fraction must be within [0, 1]");
    if (spec_.hot_fraction < 0.0 || spec_.hot_fraction > 1.0 ||
        spec_.hot_traffic < 0.0 || spec_.hot_traffic > 1.0) {
        fatal("FioJob: hotspot parameters must be within [0, 1]");
    }
    // Jobs configured with op=write default to an all-write mix.
    if (spec_.op == OpType::kWrite && spec_.read_fraction == 1.0)
        spec_.read_fraction = 0.0;

    depth_limit_ = spec_.qd_ramp_start > 0
                       ? std::min(spec_.qd_ramp_start, spec_.iodepth)
                       : spec_.iodepth;
}

FioJob::~FioJob()
{
    if (pace_event_ != sim::kInvalidEventId)
        sim_.cancel(pace_event_);
    if (burst_event_ != sim::kInvalidEventId)
        sim_.cancel(burst_event_);
    if (ramp_event_ != sim::kInvalidEventId)
        sim_.cancel(ramp_event_);
}

void
FioJob::schedule()
{
    sim_.at(spec_.start_time, [this] { start(); });
    sim_.at(spec_.start_time + spec_.duration, [this] { stop(); });
}

void
FioJob::setMeasureWindow(SimTime from, SimTime to)
{
    measure_from_ = from;
    measure_to_ = to;
}

void
FioJob::start()
{
    if (running_)
        return;
    running_ = true;
    started_at_ = sim_.now();
    pace_vtime_ = sim_.now(); // no rate credit from before the start
    if (cg_ != nullptr && !attached_) {
        tree_.attachProcess(*cg_);
        attached_ = true;
    }
    bdev_.registerSubmitter();
    if (spec_.burst_on > 0 && spec_.burst_off > 0) {
        burst_paused_ = false;
        burst_event_ = sim_.after(spec_.burst_on, [this] { burstToggle(); });
    }
    if (depth_limit_ < spec_.iodepth && spec_.qd_ramp_interval > 0) {
        ramp_event_ =
            sim_.after(spec_.qd_ramp_interval, [this] { rampDepth(); });
    }
    fillQueue();
}

void
FioJob::stop()
{
    if (running_)
        bdev_.unregisterSubmitter();
    running_ = false;
    if (pace_event_ != sim::kInvalidEventId) {
        sim_.cancel(pace_event_);
        pace_event_ = sim::kInvalidEventId;
    }
    if (burst_event_ != sim::kInvalidEventId) {
        sim_.cancel(burst_event_);
        burst_event_ = sim::kInvalidEventId;
    }
    if (ramp_event_ != sim::kInvalidEventId) {
        sim_.cancel(ramp_event_);
        ramp_event_ = sim::kInvalidEventId;
    }
    // The "process" exits once outstanding I/O drains.
    if (inflight_ == 0 && attached_) {
        tree_.detachProcess(*cg_);
        attached_ = false;
    }
}

void
FioJob::burstToggle()
{
    burst_event_ = sim::kInvalidEventId;
    if (!running_)
        return;
    burst_paused_ = !burst_paused_;
    SimTime next = burst_paused_ ? spec_.burst_off : spec_.burst_on;
    burst_event_ = sim_.after(next, [this] { burstToggle(); });
    if (!burst_paused_)
        fillQueue();
}

void
FioJob::rampDepth()
{
    ramp_event_ = sim::kInvalidEventId;
    if (!running_)
        return;
    depth_limit_ = std::min(depth_limit_ * 2, spec_.iodepth);
    if (depth_limit_ < spec_.iodepth) {
        ramp_event_ =
            sim_.after(spec_.qd_ramp_interval, [this] { rampDepth(); });
    }
    fillQueue();
}

void
FioJob::fillQueue()
{
    while (inflight_ < depth_limit_ && running_ && !burst_paused_ &&
           !fsync_draining_) {
        // Rate pacing via a virtual clock, like fio: credit accrued
        // while the job was throttled by I/O control is capped at one
        // short slice, so the job cannot later burst far above its
        // configured rate to "catch up".
        if (spec_.rate_bps > 0) {
            constexpr SimTime kCreditCap = msToNs(50);
            SimTime earn = static_cast<SimTime>(
                static_cast<double>(spec_.block_size) /
                static_cast<double>(spec_.rate_bps) * 1e9);
            SimTime base = std::max(pace_vtime_, sim_.now() - kCreditCap);
            if (base + earn > sim_.now()) {
                if (pace_event_ == sim::kInvalidEventId) {
                    pace_event_ = sim_.at(
                        std::max(base + earn, sim_.now() + 1000),
                        [this] {
                            pace_event_ = sim::kInvalidEventId;
                            fillQueue();
                        });
                }
                return;
            }
            pace_vtime_ = base + earn;
        }
        tryIssue();
    }
}

void
FioJob::tryIssue()
{
    ++inflight_;
    issued_bytes_ += spec_.block_size;
    // Latency is measured fio-style: from the moment the job decides to
    // issue, so submission CPU time and CPU queueing are included.
    SimTime issue_start = sim_.now();
    // Charge the submission CPU; the request enters the block layer when
    // the work item retires.
    SimTime cost = engine_.submitCost(spec_.iodepth) +
                   bdev_.perIoCpuExtra();
    core_.charge(task_, cost, [this, issue_start] {
        issueNow(issue_start);
    });
}

void
FioJob::issueNow(SimTime issue_start)
{
    Inflight *slot = slots_.acquire();
    slot->job = this;

    // Spin on the scheduler lock (MQ-DL/BFQ): the wait burns this
    // thread's CPU in parallel with the request waiting for the lock.
    SimTime spin = bdev_.submitSpinTime();
    if (spin > 0)
        core_.charge(task_, spin, [] {});

    slot->issue_start = issue_start;
    blk::Request &req = slot->req;
    req.op = pickOp();
    req.offset = pickOffset();
    req.size = spec_.block_size;
    req.cg = cg_;
    req.sequential = spec_.pattern == AccessPattern::kSequential;
    req.on_complete = [this, slot](blk::Request *) {
        onBlkComplete(slot);
    };
    bdev_.submit(&req);
}

uint64_t
pickHotspotBlock(Rng &rng, uint64_t blocks, double hot_fraction,
                 double hot_traffic)
{
    uint64_t hot_blocks = std::max<uint64_t>(
        static_cast<uint64_t>(hot_fraction * static_cast<double>(blocks)),
        1);
    if (rng.chance(hot_traffic) || hot_blocks >= blocks)
        return rng.below(hot_blocks);
    return hot_blocks + rng.below(blocks - hot_blocks);
}

uint64_t
FioJob::pickOffset()
{
    uint64_t blocks = std::max<uint64_t>(
        spec_.range / spec_.block_size, 1);
    uint64_t block;
    if (spec_.pattern == AccessPattern::kSequential) {
        block = seq_cursor_++ % blocks;
    } else if (spec_.hot_traffic > 0.0 && spec_.hot_fraction > 0.0) {
        // Hotspot skew: most traffic hits the head of the region.
        block = pickHotspotBlock(rng_, blocks, spec_.hot_fraction,
                                 spec_.hot_traffic);
    } else {
        block = rng_.below(blocks);
    }
    return spec_.offset_base + block * spec_.block_size;
}

OpType
FioJob::pickOp()
{
    if (spec_.read_fraction >= 1.0)
        return OpType::kRead;
    if (spec_.read_fraction <= 0.0)
        return OpType::kWrite;
    return rng_.chance(spec_.read_fraction) ? OpType::kRead
                                            : OpType::kWrite;
}

void
FioJob::onBlkComplete(Inflight *slot)
{
    // Completion (reap) CPU work, then account and refill. A slow-drain
    // adversary adds its per-I/O stall here, so completions back up on
    // the core while the device queue stays loaded.
    core_.charge(task_,
                 engine_.completeCost(spec_.iodepth) + spec_.reap_stall,
                 [this, slot] { finishIo(slot); });
}

void
FioJob::finishIo(Inflight *slot)
{
    SimTime now = sim_.now();
    SimTime lat = now - slot->issue_start;
    uint32_t size = slot->req.size;
    bool was_write = slot->req.op == OpType::kWrite;
    slots_.release(slot);
    if (inflight_ == 0)
        panic("FioJob: inflight underflow");
    --inflight_;

    // fsync barrier: every `fsync_every` completed writes, stop issuing
    // until the queue drains fully (flush semantics).
    if (spec_.fsync_every > 0 && was_write &&
        ++writes_since_flush_ >= spec_.fsync_every) {
        writes_since_flush_ = 0;
        fsync_draining_ = true;
    }
    if (fsync_draining_ && inflight_ == 0) {
        fsync_draining_ = false;
        ++flushes_;
    }

    ++total_ios_;
    series_.add(now, size);
    if (now >= measure_from_ && now < measure_to_) {
        latency_.record(lat);
        window_bytes_ += size;
        ++window_ios_;
    }

    if (running_) {
        fillQueue();
    } else if (inflight_ == 0 && attached_) {
        tree_.detachProcess(*cg_);
        attached_ = false;
    }
}

double
FioJob::windowBandwidth() const
{
    SimTime to = std::min(measure_to_, sim_.now());
    if (to <= measure_from_)
        return 0.0;
    return static_cast<double>(window_bytes_) / nsToSec(to - measure_from_);
}

} // namespace isol::workload
