/**
 * @file
 * fio-like workload generator.
 *
 * A FioJob models one fio job (one app thread): it keeps `iodepth` I/Os
 * outstanding against one block device, paces itself under a rate limit,
 * optionally runs a bursty on/off duty cycle, charges submission and
 * completion CPU to its core, and records latency/bandwidth statistics.
 */

#ifndef ISOL_WORKLOAD_JOB_HH
#define ISOL_WORKLOAD_JOB_HH

#include <memory>
#include <string>
#include <vector>

#include "blk/block_device.hh"
#include "cgroup/cgroup.hh"
#include "common/arena.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "host/cpu.hh"
#include "host/engine.hh"
#include "sim/simulator.hh"
#include "stats/histogram.hh"
#include "stats/timeseries.hh"

namespace isol::workload
{

/**
 * Misbehaving-tenant profile a spec was built from. The mechanics live
 * in plain JobSpec fields (qd ramp, fsync barrier, reap stall, duty
 * cycle); the tag lets scenarios and reports count adversarial tenants.
 * Catalog, parsing, and factories: workload/adversary.hh.
 */
enum class AdversaryKind : uint8_t
{
    kNone, //!< well-behaved tenant
    kQueueFlood, //!< unbounded queue-depth ramp
    kGcStorm, //!< write bursts that exhaust the FTL free-block pool
    kSquareWave, //!< bursty on/off duty cycle
    kFlushStorm, //!< fsync barrier after every few writes
    kSlowDrain, //!< submits fast, stalls completions on a starved CPU
};

/** Everything configurable about one job (fio option subset). */
struct JobSpec
{
    std::string name = "job";
    OpType op = OpType::kRead; //!< used when read_fraction is 0 or 1
    double read_fraction = 1.0; //!< fraction of reads in a mixed job
    AccessPattern pattern = AccessPattern::kRandom;
    uint32_t block_size = 4 * KiB;
    uint32_t iodepth = 1;
    uint64_t rate_bps = 0; //!< 0 = unlimited
    SimTime start_time = 0;
    SimTime duration = secToNs(int64_t{1});
    SimTime burst_on = 0; //!< issue window of a duty cycle (0 = steady)
    SimTime burst_off = 0; //!< pause window of a duty cycle
    uint64_t offset_base = 0; //!< start of this job's region
    uint64_t range = 0; //!< region size (0 = whole device)
    uint64_t seed = 1;
    SimTime stats_bin = msToNs(100); //!< bandwidth time-series bin width

    /**
     * Skewed ("hotspot") random access, like fio's random_distribution:
     * with probability `hot_traffic` an offset falls in the first
     * `hot_fraction` of the region. Both zero disables skew. E.g.
     * hot_fraction=0.2, hot_traffic=0.8 is the classic 80/20 pattern.
     */
    double hot_fraction = 0.0;
    double hot_traffic = 0.0;

    // --- Chaos-plane mechanics (all off by default) ---

    /** Adversary profile this spec models (reporting tag only). */
    AdversaryKind adversary = AdversaryKind::kNone;

    /**
     * Queue-depth ramp (queue-flooder): start with this effective depth
     * and double it every `qd_ramp_interval` until `iodepth` is reached.
     * 0 disables the ramp (full depth immediately).
     */
    uint32_t qd_ramp_start = 0;
    SimTime qd_ramp_interval = 0;

    /**
     * fsync/flush barrier: after every `fsync_every` completed writes,
     * stop issuing until all outstanding I/O has drained (the flush
     * semantics that serialize a write-ahead log). 0 disables.
     */
    uint32_t fsync_every = 0;

    /**
     * Slow-drain: extra completion-side CPU charged per reaped I/O. A
     * large value clogs the completion path of this job's core, so the
     * device stays loaded while completions back up. 0 disables.
     */
    SimTime reap_stall = 0;
};

/**
 * Pick a block index under hotspot skew: with probability `hot_traffic`
 * the index falls in the first `hot_fraction` of `blocks`. Exposed as a
 * free function so the distribution is directly testable.
 */
uint64_t pickHotspotBlock(Rng &rng, uint64_t blocks, double hot_fraction,
                          double hot_traffic);

/**
 * One running fio job.
 */
class FioJob
{
  public:
    /**
     * @param sim simulator
     * @param spec job parameters
     * @param bdev block device to target
     * @param core CPU core the job's thread is pinned to
     * @param engine storage-engine CPU cost model
     * @param tree cgroup hierarchy (process attach/detach)
     * @param cg cgroup the job's process lives in (may be null)
     * @param task unique task id for CPU accounting
     */
    FioJob(sim::Simulator &sim, JobSpec spec, blk::BlockDevice &bdev,
           host::CpuCore &core, host::EngineConfig engine,
           cgroup::CgroupTree &tree, cgroup::Cgroup *cg,
           host::TaskId task);

    ~FioJob();
    FioJob(const FioJob &) = delete;
    FioJob &operator=(const FioJob &) = delete;

    /** Arm the start/stop events. Call once before running the sim. */
    void schedule();

    /** Restrict latency/window statistics to [from, to). */
    void setMeasureWindow(SimTime from, SimTime to);

    const JobSpec &spec() const { return spec_; }
    bool running() const { return running_; }

    /** I/Os currently outstanding (submitted, not yet reaped). */
    uint32_t inflight() const { return inflight_; }

    /** Current effective queue-depth cap (qd ramp; == iodepth when off). */
    uint32_t depthLimit() const { return depth_limit_; }

    /** Completed fsync barriers (flush-storm adversary). */
    uint64_t flushes() const { return flushes_; }

    // --- Statistics ---

    /** Completion latencies within the measure window. */
    const stats::Histogram &latency() const { return latency_; }

    /** Completed bytes over time (100 ms bins, whole run). */
    const stats::TimeSeries &bandwidthSeries() const { return series_; }

    /** Bytes completed inside the measure window. */
    uint64_t windowBytes() const { return window_bytes_; }

    /** I/Os completed inside the measure window. */
    uint64_t windowIos() const { return window_ios_; }

    /** Mean bandwidth across the measure window, bytes/s. */
    double windowBandwidth() const;

    /** Total I/Os completed (whole run). */
    uint64_t totalIos() const { return total_ios_; }

  private:
    struct Inflight; // one outstanding I/O

    void start();
    void stop();
    void fillQueue();
    void tryIssue();
    void issueNow(SimTime issue_start);
    void onBlkComplete(Inflight *slot);
    void finishIo(Inflight *slot);
    void burstToggle();
    void rampDepth();

    uint64_t pickOffset();
    OpType pickOp();

    sim::Simulator &sim_;
    JobSpec spec_;
    blk::BlockDevice &bdev_;
    host::CpuCore &core_;
    host::EngineConfig engine_;
    cgroup::CgroupTree &tree_;
    cgroup::Cgroup *cg_;
    host::TaskId task_;
    Rng rng_;

    bool running_ = false;
    bool attached_ = false;
    bool burst_paused_ = false;
    bool fsync_draining_ = false; //!< barrier: wait for a full drain
    uint32_t inflight_ = 0;
    uint32_t depth_limit_ = 0; //!< effective iodepth cap (qd ramp)
    uint32_t writes_since_flush_ = 0;
    uint64_t flushes_ = 0;
    uint64_t issued_bytes_ = 0;
    SimTime pace_vtime_ = 0; //!< rate-limit virtual clock
    uint64_t seq_cursor_ = 0;
    SimTime started_at_ = 0;
    sim::EventId pace_event_ = sim::kInvalidEventId;
    sim::EventId burst_event_ = sim::kInvalidEventId;
    sim::EventId ramp_event_ = sim::kInvalidEventId;

    common::Arena<Inflight> slots_;

    SimTime measure_from_ = 0;
    SimTime measure_to_ = kSimTimeMax;
    stats::Histogram latency_;
    stats::TimeSeries series_;
    uint64_t window_bytes_ = 0;
    uint64_t window_ios_ = 0;
    uint64_t total_ios_ = 0;
};

} // namespace isol::workload

#endif // ISOL_WORKLOAD_JOB_HH
