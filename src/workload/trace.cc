#include "workload/trace.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace isol::workload
{

namespace
{

std::optional<OpType>
parseOp(const std::string &text)
{
    if (text == "R" || text == "r" || text == "read" || text == "READ")
        return OpType::kRead;
    if (text == "W" || text == "w" || text == "write" || text == "WRITE")
        return OpType::kWrite;
    return std::nullopt;
}

} // namespace

std::vector<TraceRecord>
parseTrace(std::istream &input)
{
    std::vector<TraceRecord> records;
    std::string line;
    size_t line_no = 0;
    while (std::getline(input, line)) {
        ++line_no;
        std::string trimmed = trimString(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        std::vector<std::string> fields = splitString(trimmed, ',');
        if (fields.size() != 4) {
            fatal(strCat("trace line ", line_no,
                         ": expected time_us,op,offset,size"));
        }
        auto time_us = parseUint(trimString(fields[0]));
        auto op = parseOp(trimString(fields[1]));
        auto offset = parseSize(trimString(fields[2]));
        auto size = parseSize(trimString(fields[3]));
        if (!time_us || !op || !offset || !size || *size == 0) {
            fatal(strCat("trace line ", line_no, ": malformed field"));
        }
        TraceRecord record;
        record.when = usToNs(static_cast<int64_t>(*time_us));
        record.op = *op;
        record.offset = *offset;
        record.size = static_cast<uint32_t>(*size);
        records.push_back(record);
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.when < b.when;
                     });
    return records;
}

std::vector<TraceRecord>
parseTraceString(const std::string &text)
{
    std::istringstream stream(text);
    return parseTrace(stream);
}

/** One in-flight replayed request. */
struct TraceReplayer::Pending
{
    TraceReplayer *owner = nullptr;
    blk::Request req;
    SimTime issue_time = 0;
};

TraceReplayer::TraceReplayer(sim::Simulator &sim,
                             std::vector<TraceRecord> trace,
                             blk::BlockDevice &bdev, host::CpuCore &core,
                             host::EngineConfig engine,
                             cgroup::CgroupTree &tree, cgroup::Cgroup *cg,
                             host::TaskId task, double time_scale)
    : sim_(sim), trace_(std::move(trace)), bdev_(bdev), core_(core),
      engine_(engine), tree_(tree), cg_(cg), task_(task),
      time_scale_(time_scale), series_(msToNs(100))
{
    if (time_scale_ <= 0.0)
        fatal("TraceReplayer: time_scale must be positive");
}

TraceReplayer::~TraceReplayer() = default;

void
TraceReplayer::schedule(SimTime start)
{
    if (trace_.empty())
        return;
    if (cg_ != nullptr && !attached_) {
        tree_.attachProcess(*cg_);
        attached_ = true;
    }
    for (size_t i = 0; i < trace_.size(); ++i) {
        SimTime when = start + static_cast<SimTime>(
            static_cast<double>(trace_[i].when) * time_scale_);
        issueAt(i, when);
    }
}

void
TraceReplayer::issueAt(size_t index, SimTime when)
{
    sim_.at(when, [this, index, when] {
        // Trace tools amortise submissions like deep-queue fio jobs.
        SimTime cost =
            engine_.submitCost(engine_.max_batch) + bdev_.perIoCpuExtra();
        core_.charge(task_, cost, [this, index, when] {
            const TraceRecord &record = trace_[index];
            auto slot = std::make_unique<Pending>();
            slot->owner = this;
            slot->issue_time = when;
            blk::Request &req = slot->req;
            req.op = record.op;
            req.offset = record.offset;
            req.size = record.size;
            req.cg = cg_;
            Pending *raw = slot.get();
            req.on_complete = [raw](blk::Request *) {
                raw->owner->onComplete(raw);
            };
            pending_.push_back(std::move(slot));
            ++issued_;
            SimTime spin = bdev_.submitSpinTime();
            if (spin > 0)
                core_.charge(task_, spin, [] {});
            bdev_.submit(&req);
        });
    });
}

void
TraceReplayer::onComplete(Pending *slot)
{
    core_.charge(task_, engine_.completeCost(engine_.max_batch),
                 [this, slot] {
        latency_.record(sim_.now() - slot->issue_time);
        series_.add(sim_.now(), slot->req.size);
        ++completed_;
        // Release the slot.
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->get() == slot) {
                pending_.erase(it);
                break;
            }
        }
        if (completed_ == trace_.size() && attached_) {
            tree_.detachProcess(*cg_);
            attached_ = false;
        }
    });
}

} // namespace isol::workload
