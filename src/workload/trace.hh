/**
 * @file
 * Block-trace replay.
 *
 * Real isolation studies often replay production block traces instead of
 * synthetic fio patterns. This module parses a simple CSV trace format
 * and replays it open-loop (requests are issued at their recorded
 * timestamps, unlike FioJob's closed-loop queue-depth discipline):
 *
 *   # time_us,op,offset,size
 *   0,R,4096,4096
 *   125,W,1048576,65536
 *
 * `op` is R/W (case-insensitive; also accepts read/write). Lines starting
 * with '#' and blank lines are ignored.
 */

#ifndef ISOL_WORKLOAD_TRACE_HH
#define ISOL_WORKLOAD_TRACE_HH

#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "blk/block_device.hh"
#include "cgroup/cgroup.hh"
#include "common/types.hh"
#include "host/cpu.hh"
#include "host/engine.hh"
#include "sim/simulator.hh"
#include "stats/histogram.hh"
#include "stats/timeseries.hh"

namespace isol::workload
{

/** One trace record. */
struct TraceRecord
{
    SimTime when = 0; //!< issue time relative to replay start
    OpType op = OpType::kRead;
    uint64_t offset = 0;
    uint32_t size = 0;
};

/**
 * Parse the CSV trace format. Throws FatalError with a line number on
 * malformed input. Records are sorted by timestamp on return.
 */
std::vector<TraceRecord> parseTrace(std::istream &input);

/** Convenience: parse from a string. */
std::vector<TraceRecord> parseTraceString(const std::string &text);

/**
 * Replays a trace against a block device, open-loop, charging submit and
 * completion CPU like a real replay tool would.
 */
class TraceReplayer
{
  public:
    /**
     * @param sim simulator
     * @param trace records (sorted by `when`)
     * @param bdev target device
     * @param core CPU core of the replay thread
     * @param engine storage-engine CPU cost model
     * @param tree cgroup hierarchy
     * @param cg cgroup the replay runs in (may be null)
     * @param task CPU-accounting task id
     * @param time_scale stretch (>1) or compress (<1) the timeline
     */
    TraceReplayer(sim::Simulator &sim, std::vector<TraceRecord> trace,
                  blk::BlockDevice &bdev, host::CpuCore &core,
                  host::EngineConfig engine, cgroup::CgroupTree &tree,
                  cgroup::Cgroup *cg, host::TaskId task,
                  double time_scale = 1.0);
    ~TraceReplayer();

    TraceReplayer(const TraceReplayer &) = delete;
    TraceReplayer &operator=(const TraceReplayer &) = delete;

    /** Schedule the replay to begin at `start`. Call once. */
    void schedule(SimTime start = 0);

    /** Requests completed so far. */
    uint64_t completed() const { return completed_; }

    /** Requests issued so far. */
    uint64_t issued() const { return issued_; }

    /** True once every record has been issued and completed. */
    bool
    done() const
    {
        return issued_ == trace_.size() && completed_ == issued_;
    }

    /** Completion latencies (from scheduled issue time). */
    const stats::Histogram &latency() const { return latency_; }

    /** Completed bytes over time. */
    const stats::TimeSeries &bandwidthSeries() const { return series_; }

  private:
    struct Pending;

    void issueAt(size_t index, SimTime when);
    void onComplete(Pending *slot);

    sim::Simulator &sim_;
    std::vector<TraceRecord> trace_;
    blk::BlockDevice &bdev_;
    host::CpuCore &core_;
    host::EngineConfig engine_;
    cgroup::CgroupTree &tree_;
    cgroup::Cgroup *cg_;
    host::TaskId task_;
    double time_scale_;

    std::vector<std::unique_ptr<Pending>> pending_;
    uint64_t issued_ = 0;
    uint64_t completed_ = 0;
    bool attached_ = false;

    stats::Histogram latency_;
    stats::TimeSeries series_;
};

} // namespace isol::workload

#endif // ISOL_WORKLOAD_TRACE_HH
