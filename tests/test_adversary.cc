/**
 * @file
 * Chaos-plane tests: the adversarial tenant catalog (determinism across
 * reruns and pool widths, each adversary's signature behaviour) and the
 * runtime invariant checker (clean runs count checks, the planted
 * io.max bucket corruption is caught).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "isolbench/scenario.hh"
#include "isolbench/sweep.hh"
#include "sim/invariants.hh"
#include "ssd/config.hh"
#include "workload/adversary.hh"
#include "workload/app_profiles.hh"

namespace isol::isolbench
{
namespace
{

/** One-die flash shrunk so GC pressure builds within ~200 ms. */
ssd::SsdConfig
tinyFlash()
{
    ssd::SsdConfig cfg = ssd::samsung980ProLike();
    cfg.user_capacity = 64 * MiB;
    cfg.channels = 1;
    cfg.dies_per_channel = 1;
    cfg.pages_per_block = 32;
    cfg.overprovision = 0.25;
    return cfg;
}

/** Victim + one adversary under `knob`; canonical result payload. */
std::string
adversaryPayload(workload::AdversaryKind kind, Knob knob,
                 bool check_invariants = false)
{
    ScenarioConfig cfg;
    cfg.name = strCat("adv-", workload::adversaryName(kind));
    cfg.knob = knob;
    cfg.num_cores = 4;
    cfg.device = tinyFlash();
    cfg.duration = msToNs(120);
    cfg.warmup = msToNs(30);
    cfg.seed = 7;
    cfg.check_invariants = check_invariants;

    Scenario scenario(cfg);
    uint32_t victim =
        scenario.addApp(workload::lcApp("victim", cfg.duration), "lc");
    uint32_t adv = scenario.addAdversary(kind, "adv");
    scenario.run();

    workload::FioJob &v = scenario.app(victim);
    workload::FioJob &a = scenario.app(adv);
    return strCat(v.totalIos(), ",", v.windowBytes(), ",",
                  v.latency().percentile(99), "|", a.totalIos(), ",",
                  a.windowBytes(), ",", a.flushes(), "|gc=",
                  scenario.ssd(0).gcPagesMoved());
}

TEST(Adversary, CatalogParsesAndNames)
{
    for (workload::AdversaryKind kind : workload::kAllAdversaries) {
        auto parsed =
            workload::parseAdversary(workload::adversaryName(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_EQ(workload::parseAdversary("none"),
              workload::AdversaryKind::kNone);
    EXPECT_FALSE(workload::parseAdversary("noise-machine").has_value());
}

TEST(Adversary, EveryKindIsDeterministicAcrossReruns)
{
    for (workload::AdversaryKind kind : workload::kAllAdversaries) {
        std::string a = adversaryPayload(kind, Knob::kNone);
        std::string b = adversaryPayload(kind, Knob::kNone);
        EXPECT_EQ(a, b) << "adversary "
                        << workload::adversaryName(kind);
        EXPECT_NE(a.find('|'), std::string::npos);
    }
}

TEST(Adversary, EveryKindIsDeterministicAcrossPoolWidths)
{
    auto runAll = [](uint32_t jobs) {
        size_t n = std::size(workload::kAllAdversaries);
        // isol: parallel
        return sweep::map<std::string>(
            n,
            [](size_t i) {
                return adversaryPayload(workload::kAllAdversaries[i],
                                        Knob::kIoCost);
            },
            jobs);
    };
    std::vector<std::string> seq = runAll(1);
    std::vector<std::string> pooled = runAll(8);
    EXPECT_EQ(seq, pooled);
}

TEST(Adversary, GcStormForcesGarbageCollection)
{
    ScenarioConfig cfg;
    cfg.name = "gc-storm";
    cfg.knob = Knob::kNone;
    cfg.num_cores = 4;
    cfg.device = tinyFlash();
    cfg.precondition = true;
    cfg.duration = msToNs(250);
    cfg.warmup = msToNs(50);

    Scenario scenario(cfg);
    scenario.addApp(workload::lcApp("victim", cfg.duration), "lc");
    uint32_t adv = scenario.addAdversary(
        workload::AdversaryKind::kGcStorm, "adv");
    scenario.run();

    // The storm's sustained random writes on a preconditioned one-die
    // device must push the FTL into garbage collection.
    EXPECT_GT(scenario.ssd(0).gcPagesMoved(), 0u);
    EXPECT_GT(scenario.app(adv).totalIos(), 0u);
}

TEST(Adversary, FlushStormActuallyFlushes)
{
    ScenarioConfig cfg;
    cfg.name = "flush-storm";
    cfg.num_cores = 4;
    cfg.device = tinyFlash();
    cfg.duration = msToNs(120);
    cfg.warmup = msToNs(30);

    Scenario scenario(cfg);
    uint32_t adv = scenario.addAdversary(
        workload::AdversaryKind::kFlushStorm, "adv");
    scenario.run();
    EXPECT_GT(scenario.app(adv).flushes(), 0u);
}

TEST(Adversary, IoMaxContainsQueueFlooder)
{
    auto victimBytes = [](Knob knob, bool limit) {
        ScenarioConfig cfg;
        cfg.name = "flood";
        cfg.knob = knob;
        cfg.num_cores = 4;
        cfg.device = tinyFlash();
        cfg.duration = msToNs(150);
        cfg.warmup = msToNs(30);

        Scenario scenario(cfg);
        uint32_t victim = scenario.addApp(
            workload::lcApp("victim", cfg.duration), "lc");
        scenario.addAdversary(workload::AdversaryKind::kQueueFlood,
                              "adv");
        if (limit) {
            scenario.tree().writeFile(scenario.group("adv"), "io.max",
                                      "259:0 rbps=33554432");
        }
        scenario.run();
        return scenario.app(victim).windowBytes();
    };

    uint64_t unprotected = victimBytes(Knob::kNone, false);
    uint64_t protected_bytes = victimBytes(Knob::kIoMax, true);
    // Throttling the flooder to 32 MiB/s must hand the victim strictly
    // more bandwidth than the free-for-all baseline.
    EXPECT_GT(protected_bytes, unprotected);
}

TEST(Invariants, CleanAdversarialRunCountsChecks)
{
    ScenarioConfig cfg;
    cfg.name = "inv-clean";
    cfg.knob = Knob::kIoMax;
    cfg.num_cores = 4;
    cfg.device = tinyFlash();
    cfg.duration = msToNs(120);
    cfg.warmup = msToNs(30);
    cfg.check_invariants = true;

    Scenario scenario(cfg);
    scenario.addApp(workload::lcApp("victim", cfg.duration), "lc");
    scenario.addAdversary(workload::AdversaryKind::kQueueFlood, "adv");
    scenario.tree().writeFile(scenario.group("adv"), "io.max",
                              "259:0 rbps=67108864");
    ASSERT_NE(scenario.invariants(), nullptr);
    scenario.run();
    EXPECT_GT(scenario.invariants()->checksPerformed(), 0u);
    EXPECT_EQ(scenario.adversaryTenants(), 1u);
}

TEST(Invariants, CorruptedIoMaxBucketIsCaught)
{
    ScenarioConfig cfg;
    cfg.name = "inv-corrupt";
    cfg.knob = Knob::kIoMax;
    cfg.num_cores = 4;
    cfg.device = tinyFlash();
    cfg.duration = msToNs(120);
    cfg.warmup = msToNs(30);
    cfg.check_invariants = true;
    cfg.debug_corrupt_iomax_bucket = true;

    Scenario scenario(cfg);
    scenario.addApp(workload::lcApp("victim", cfg.duration), "lc");
    scenario.addAdversary(workload::AdversaryKind::kQueueFlood, "adv");
    scenario.tree().writeFile(scenario.group("adv"), "io.max",
                              "259:0 rbps=67108864");
    EXPECT_THROW(scenario.run(), sim::InvariantViolation);
}

TEST(Invariants, CorruptionGoesUnnoticedWhenCheckingIsOff)
{
    ScenarioConfig cfg;
    cfg.name = "inv-off";
    cfg.knob = Knob::kIoMax;
    cfg.num_cores = 4;
    cfg.device = tinyFlash();
    cfg.duration = msToNs(120);
    cfg.warmup = msToNs(30);
    cfg.check_invariants = false;
    cfg.debug_corrupt_iomax_bucket = true;

    Scenario scenario(cfg);
    scenario.addApp(workload::lcApp("victim", cfg.duration), "lc");
    scenario.addAdversary(workload::AdversaryKind::kQueueFlood, "adv");
    scenario.tree().writeFile(scenario.group("adv"), "io.max",
                              "259:0 rbps=67108864");
    EXPECT_EQ(scenario.invariants(), nullptr);
    scenario.run(); // must not throw: hooks are null-pointer tests
    EXPECT_GT(scenario.aggregateGiBs(), 0.0);
}

} // namespace
} // namespace isol::isolbench
