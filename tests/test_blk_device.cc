/**
 * @file
 * Integration tests for the BlockDevice pipeline: knob wiring, tag
 * limits, dispatch-lock serialization, spin-time model, and end-to-end
 * completion flow against the SSD model.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "blk/block_device.hh"
#include "cgroup/cgroup.hh"
#include "common/rng.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"

namespace isol::blk
{
namespace
{

struct BdevFixture : public ::testing::Test
{
    BdevFixture() : ssd(sim, ssd::samsung980ProLike(), 7)
    {
        tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
        cg = &tree.createChild(tree.root(), "app");
        tree.attachProcess(*cg);
    }

    std::unique_ptr<BlockDevice>
    makeBdev(BlockDeviceConfig cfg)
    {
        auto bdev = std::make_unique<BlockDevice>(sim, tree, ssd, cfg);
        bdev->start();
        return bdev;
    }

    Request *
    makeReq(std::function<void()> done, OpType op = OpType::kRead,
            uint32_t size = 4096, uint64_t offset = 0)
    {
        auto req = std::make_unique<Request>();
        req->op = op;
        req->size = size;
        req->offset = offset;
        req->cg = cg;
        req->on_complete = [done = std::move(done)](Request *) { done(); };
        reqs.push_back(std::move(req));
        return reqs.back().get();
    }

    sim::Simulator sim;
    cgroup::CgroupTree tree;
    ssd::SsdDevice ssd;
    cgroup::Cgroup *cg = nullptr;
    std::vector<std::unique_ptr<Request>> reqs;
};

TEST_F(BdevFixture, NoneCompletesEndToEnd)
{
    auto bdev = makeBdev({});
    SimTime done_at = -1;
    bdev->submit(makeReq([&] { done_at = sim.now(); }));
    sim.runAll();
    EXPECT_GT(done_at, usToNs(50));
    EXPECT_LT(done_at, usToNs(200));
    EXPECT_EQ(bdev->completed(), 1u);
    EXPECT_EQ(bdev->inflight(), 0u);
}

TEST_F(BdevFixture, NoneHasNoKnobCpuOrSpin)
{
    auto bdev = makeBdev({});
    EXPECT_EQ(bdev->perIoCpuExtra(), 0);
    EXPECT_EQ(bdev->submitSpinTime(), 0);
}

TEST_F(BdevFixture, KnobCpuExtraPerConfig)
{
    BlockDeviceConfig mq;
    mq.elevator = ElevatorType::kMqDeadline;
    BlockDeviceConfig bfq;
    bfq.elevator = ElevatorType::kBfq;
    BlockDeviceConfig iomax;
    iomax.enable_io_max = true;
    BlockDeviceConfig iocost;
    iocost.enable_io_cost = true;
    EXPECT_GT(makeBdev(bfq)->perIoCpuExtra(),
              makeBdev(mq)->perIoCpuExtra());
    EXPECT_GT(makeBdev(mq)->perIoCpuExtra(),
              makeBdev(iomax)->perIoCpuExtra());
    EXPECT_GT(makeBdev(iocost)->perIoCpuExtra(), 0);
}

TEST_F(BdevFixture, TagLimitQueuesExcess)
{
    BlockDeviceConfig cfg;
    cfg.nr_requests = 4;
    auto bdev = makeBdev(cfg);
    int done = 0;
    for (int i = 0; i < 10; ++i)
        bdev->submit(makeReq([&] { ++done; }, OpType::kRead, 4096,
                             static_cast<uint64_t>(i) * 4096));
    EXPECT_EQ(bdev->inflight(), 4u);
    EXPECT_EQ(bdev->tagWaiting(), 6u);
    sim.runAll();
    EXPECT_EQ(done, 10);
    EXPECT_EQ(bdev->inflight(), 0u);
}

TEST_F(BdevFixture, DispatchLockSerializesThroughput)
{
    // With a 10 us lock hold (2 acquisitions/request), max ~50k IOPS.
    BlockDeviceConfig cfg;
    cfg.elevator = ElevatorType::kMqDeadline;
    cfg.mq_lock_hold = usToNs(10);
    auto bdev = makeBdev(cfg);
    Rng rng(3);

    int done = 0;
    std::function<void()> issue = [&] {
        uint64_t off = rng.below(1 << 20) * 4096;
        bdev->submit(makeReq([&] {
            ++done;
            if (sim.now() < msToNs(100))
                issue();
        }, OpType::kRead, 4096, off));
    };
    for (int i = 0; i < 512; ++i)
        issue();
    sim.runUntil(msToNs(100));
    double iops = done / 0.1;
    EXPECT_LT(iops, 60000.0);
    EXPECT_GT(iops, 30000.0);
}

TEST_F(BdevFixture, SpinTimeGrowsWithSubmitters)
{
    BlockDeviceConfig cfg;
    cfg.elevator = ElevatorType::kBfq;
    auto bdev = makeBdev(cfg);
    // Saturate the lock so backlog is not the binding term.
    for (int i = 0; i < 64; ++i)
        bdev->submit(makeReq([] {}, OpType::kRead, 4096,
                             static_cast<uint64_t>(i) * 4096));
    SimTime spin0 = bdev->submitSpinTime();
    for (int i = 0; i < 8; ++i)
        bdev->registerSubmitter();
    SimTime spin8 = bdev->submitSpinTime();
    EXPECT_GT(spin8, spin0);
    for (int i = 0; i < 8; ++i)
        bdev->unregisterSubmitter();
    EXPECT_EQ(bdev->submitters(), 0u);
}

TEST_F(BdevFixture, IoMaxPipelineThrottles)
{
    tree.writeFile(*cg, "io.max", "259:0 rbps=4194304"); // 4 MiB/s
    BlockDeviceConfig cfg;
    cfg.enable_io_max = true;
    auto bdev = makeBdev(cfg);

    uint64_t bytes = 0;
    Rng rng(5);
    std::function<void()> issue = [&] {
        uint64_t off = rng.below(1 << 20) * 4096;
        bdev->submit(makeReq([&] {
            bytes += 4096;
            if (sim.now() < msToNs(500))
                issue();
        }, OpType::kRead, 4096, off));
    };
    for (int i = 0; i < 64; ++i)
        issue();
    sim.runUntil(msToNs(500));
    double mibs = bytesOverNsToMiBs(bytes, msToNs(500));
    EXPECT_LT(mibs, 6.0);
    EXPECT_GT(mibs, 2.5);
}

TEST_F(BdevFixture, IoCostPipelineThrottlesToModel)
{
    cgroup::IoCostModel model;
    model.user = true;
    model.rbps = 100ull * GiB;
    model.rrandiops = 10000;
    model.rseqiops = 10000;
    tree.setCostModel(0, model);
    cgroup::IoCostQos qos;
    qos.rpct = 0.0;
    qos.wpct = 0.0;
    tree.setCostQos(0, qos);

    BlockDeviceConfig cfg;
    cfg.enable_io_cost = true;
    auto bdev = makeBdev(cfg);

    int done = 0;
    Rng rng(5);
    std::function<void()> issue = [&] {
        uint64_t off = rng.below(1 << 20) * 4096;
        bdev->submit(makeReq([&] {
            ++done;
            if (sim.now() < msToNs(500))
                issue();
        }, OpType::kRead, 4096, off));
    };
    for (int i = 0; i < 256; ++i)
        issue();
    sim.runUntil(msToNs(500));
    double iops = done / 0.5;
    EXPECT_LT(iops, 14000.0);
    EXPECT_GT(iops, 7000.0);
}

TEST_F(BdevFixture, IoLatencyPipelineCompletes)
{
    tree.writeFile(*cg, "io.latency", "259:0 target=3000000");
    BlockDeviceConfig cfg;
    cfg.enable_io_latency = true;
    auto bdev = makeBdev(cfg);
    int done = 0;
    for (int i = 0; i < 100; ++i)
        bdev->submit(makeReq([&] { ++done; }, OpType::kRead, 4096,
                             static_cast<uint64_t>(i) * 4096));
    sim.runUntil(msToNs(100));
    EXPECT_EQ(done, 100);
}

TEST_F(BdevFixture, ZeroSizeRejected)
{
    auto bdev = makeBdev({});
    EXPECT_THROW(bdev->submit(makeReq([] {}, OpType::kRead, 0)),
                 FatalError);
}

TEST_F(BdevFixture, WritesCompleteThroughPipeline)
{
    auto bdev = makeBdev({});
    int done = 0;
    for (int i = 0; i < 32; ++i)
        bdev->submit(makeReq([&] { ++done; }, OpType::kWrite, 4096,
                             static_cast<uint64_t>(i) * 4096));
    sim.runUntil(msToNs(50));
    EXPECT_EQ(done, 32);
    EXPECT_EQ(ssd.bytesWritten(), 32u * 4096u);
}

} // namespace
} // namespace isol::blk
