/**
 * @file
 * Unit tests for the elevators: none (FIFO), mq-deadline (priority
 * classes, starvation blocking, aging, read/write batching), and BFQ
 * (weighted virtual-time service, in-service exclusivity, slice idling).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blk/bfq.hh"
#include "blk/elevator.hh"
#include "blk/mq_deadline.hh"
#include "cgroup/cgroup.hh"
#include "sim/simulator.hh"

namespace isol::blk
{
namespace
{

std::unique_ptr<Request>
makeReq(OpType op, cgroup::PrioClass prio, uint32_t size = 4096,
        cgroup::Cgroup *cg = nullptr)
{
    auto req = std::make_unique<Request>();
    req->op = op;
    req->prio = prio;
    req->size = size;
    req->cg = cg;
    return req;
}

TEST(NoneElevator, FifoOrder)
{
    NoneElevator none;
    auto a = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange);
    auto b = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange);
    none.insert(a.get());
    none.insert(b.get());
    EXPECT_EQ(none.queued(), 2u);
    EXPECT_EQ(none.selectNext(), a.get());
    EXPECT_EQ(none.selectNext(), b.get());
    EXPECT_EQ(none.selectNext(), nullptr);
    EXPECT_TRUE(none.empty());
}

TEST(MqDeadline, HigherClassFirst)
{
    sim::Simulator sim;
    MqDeadline mq(sim);
    auto idle = makeReq(OpType::kRead, cgroup::PrioClass::kIdle);
    auto be = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange);
    auto rt = makeReq(OpType::kRead, cgroup::PrioClass::kPromoteToRt);
    mq.insert(idle.get());
    mq.insert(be.get());
    mq.insert(rt.get());
    EXPECT_EQ(mq.selectNext(), rt.get());
    mq.onComplete(rt.get());
    EXPECT_EQ(mq.selectNext(), be.get());
    mq.onComplete(be.get());
    EXPECT_EQ(mq.selectNext(), idle.get());
}

TEST(MqDeadline, LowerClassBlockedWhileHigherInflight)
{
    sim::Simulator sim;
    MqDeadline mq(sim);
    auto rt = makeReq(OpType::kRead, cgroup::PrioClass::kPromoteToRt);
    auto be = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange);
    mq.insert(rt.get());
    EXPECT_EQ(mq.selectNext(), rt.get()); // rt now in flight
    mq.insert(be.get());
    // BE must not dispatch while RT I/O is outstanding.
    EXPECT_EQ(mq.selectNext(), nullptr);
    mq.onComplete(rt.get());
    EXPECT_EQ(mq.selectNext(), be.get());
}

TEST(MqDeadline, AgingUnblocksStarvedClass)
{
    sim::Simulator sim;
    MqDeadlineParams params;
    params.prio_aging_expire = msToNs(100);
    MqDeadline mq(sim, params);

    auto idle = makeReq(OpType::kRead, cgroup::PrioClass::kIdle);
    mq.insert(idle.get());
    auto rt = makeReq(OpType::kRead, cgroup::PrioClass::kPromoteToRt);
    mq.insert(rt.get());
    EXPECT_EQ(mq.selectNext(), rt.get()); // idle starved behind rt

    // Keep RT in flight but age the idle request past the limit.
    sim.runUntil(msToNs(200));
    EXPECT_EQ(mq.selectNext(), idle.get());
}

TEST(MqDeadline, ReadsPreferredOverWrites)
{
    sim::Simulator sim;
    MqDeadline mq(sim);
    auto w = makeReq(OpType::kWrite, cgroup::PrioClass::kNoChange);
    auto r = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange);
    mq.insert(w.get());
    mq.insert(r.get());
    EXPECT_EQ(mq.selectNext(), r.get());
}

TEST(MqDeadline, WritesServedWhenStarved)
{
    sim::Simulator sim;
    MqDeadlineParams params;
    params.fifo_batch = 1; // one request per batch for a tight test
    params.writes_starved = 2;
    MqDeadline mq(sim, params);

    std::vector<std::unique_ptr<Request>> reads;
    auto w = makeReq(OpType::kWrite, cgroup::PrioClass::kNoChange);
    mq.insert(w.get());
    for (int i = 0; i < 5; ++i) {
        reads.push_back(
            makeReq(OpType::kRead, cgroup::PrioClass::kNoChange));
        mq.insert(reads.back().get());
    }
    // Reads win twice, then the starved write must be served.
    Request *first = mq.selectNext();
    Request *second = mq.selectNext();
    Request *third = mq.selectNext();
    EXPECT_EQ(first->op, OpType::kRead);
    EXPECT_EQ(second->op, OpType::kRead);
    EXPECT_EQ(third, w.get());
}

TEST(MqDeadline, QueuedCountTracks)
{
    sim::Simulator sim;
    MqDeadline mq(sim);
    auto a = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange);
    auto b = makeReq(OpType::kWrite, cgroup::PrioClass::kIdle);
    mq.insert(a.get());
    mq.insert(b.get());
    EXPECT_EQ(mq.queued(), 2u);
    EXPECT_FALSE(mq.empty());
    mq.selectNext();
    EXPECT_EQ(mq.queued(), 1u);
}

// --- BFQ ---

struct BfqFixture : public ::testing::Test
{
    BfqFixture()
    {
        tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
        cg_a = &tree.createChild(tree.root(), "a");
        cg_b = &tree.createChild(tree.root(), "b");
        tree.attachProcess(*cg_a);
        tree.attachProcess(*cg_b);
    }

    sim::Simulator sim;
    cgroup::CgroupTree tree;
    cgroup::Cgroup *cg_a = nullptr;
    cgroup::Cgroup *cg_b = nullptr;
};

TEST_F(BfqFixture, WeightProportionalService)
{
    BfqParams params;
    params.slice_idle = 0;
    params.max_budget = 64 * KiB; // small budget: frequent switching
    Bfq bfq(sim, tree, params);
    tree.writeFile(*cg_a, "io.bfq.weight", "300");
    tree.writeFile(*cg_b, "io.bfq.weight", "100");

    std::vector<std::unique_ptr<Request>> reqs;
    for (int i = 0; i < 200; ++i) {
        reqs.push_back(makeReq(OpType::kRead,
                               cgroup::PrioClass::kNoChange, 4096, cg_a));
        bfq.insert(reqs.back().get());
        reqs.push_back(makeReq(OpType::kRead,
                               cgroup::PrioClass::kNoChange, 4096, cg_b));
        bfq.insert(reqs.back().get());
    }
    int served_a = 0;
    int served_b = 0;
    for (int i = 0; i < 200; ++i) {
        Request *req = bfq.selectNext();
        ASSERT_NE(req, nullptr);
        (req->cg == cg_a ? served_a : served_b)++;
    }
    // 3:1 weights -> roughly 150:50 split.
    EXPECT_GT(served_a, 120);
    EXPECT_LT(served_b, 80);
}

TEST_F(BfqFixture, ServesInServiceQueueExclusively)
{
    BfqParams params;
    params.slice_idle = 0;
    params.max_budget = 1 * MiB;
    Bfq bfq(sim, tree, params);

    std::vector<std::unique_ptr<Request>> reqs;
    for (int i = 0; i < 8; ++i) {
        reqs.push_back(makeReq(OpType::kRead,
                               cgroup::PrioClass::kNoChange, 4096, cg_a));
        bfq.insert(reqs.back().get());
        reqs.push_back(makeReq(OpType::kRead,
                               cgroup::PrioClass::kNoChange, 4096, cg_b));
        bfq.insert(reqs.back().get());
    }
    // Within one slice, consecutive dispatches come from one queue.
    Request *first = bfq.selectNext();
    ASSERT_NE(first, nullptr);
    const cgroup::Cgroup *owner = first->cg;
    for (int i = 0; i < 7; ++i) {
        Request *req = bfq.selectNext();
        ASSERT_NE(req, nullptr);
        EXPECT_EQ(req->cg, owner) << "slice switched early at " << i;
    }
}

TEST_F(BfqFixture, SliceIdleHoldsDispatch)
{
    BfqParams params;
    params.slice_idle = msToNs(8);
    Bfq bfq(sim, tree, params);
    int kicks = 0;
    bfq.setKick([&] { ++kicks; });

    auto a1 = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange, 4096,
                      cg_a);
    auto b1 = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange, 4096,
                      cg_b);
    bfq.insert(a1.get());
    EXPECT_EQ(bfq.selectNext(), a1.get());
    bfq.insert(b1.get());
    // a's queue ran dry mid-slice: BFQ idles instead of serving b.
    EXPECT_EQ(bfq.selectNext(), nullptr);
    // After slice_idle expires, the kick fires and b is served.
    sim.runUntil(msToNs(10));
    EXPECT_GE(kicks, 1);
    EXPECT_EQ(bfq.selectNext(), b1.get());
}

TEST_F(BfqFixture, ArrivalFromInServiceQueueCancelsIdle)
{
    BfqParams params;
    params.slice_idle = msToNs(8);
    Bfq bfq(sim, tree, params);
    int kicks = 0;
    bfq.setKick([&] { ++kicks; });

    auto a1 = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange, 4096,
                      cg_a);
    auto a2 = makeReq(OpType::kRead, cgroup::PrioClass::kNoChange, 4096,
                      cg_a);
    bfq.insert(a1.get());
    EXPECT_EQ(bfq.selectNext(), a1.get());
    EXPECT_EQ(bfq.selectNext(), nullptr); // idling
    bfq.insert(a2.get()); // same queue: resume immediately
    EXPECT_GE(kicks, 1);
    EXPECT_EQ(bfq.selectNext(), a2.get());
    // No idle event should fire later and switch queues spuriously.
    sim.runUntil(msToNs(20));
}

TEST_F(BfqFixture, BudgetExpiresSlice)
{
    BfqParams params;
    params.slice_idle = 0;
    params.max_budget = 8 * KiB; // two 4 KiB requests per slice
    Bfq bfq(sim, tree, params);

    std::vector<std::unique_ptr<Request>> reqs;
    for (int i = 0; i < 4; ++i) {
        reqs.push_back(makeReq(OpType::kRead,
                               cgroup::PrioClass::kNoChange, 4096, cg_a));
        bfq.insert(reqs.back().get());
        reqs.push_back(makeReq(OpType::kRead,
                               cgroup::PrioClass::kNoChange, 4096, cg_b));
        bfq.insert(reqs.back().get());
    }
    // Collect owners of the first 8 dispatches; both queues must appear
    // because the tiny budget forces slice switches.
    int a_count = 0;
    for (int i = 0; i < 8; ++i) {
        Request *req = bfq.selectNext();
        ASSERT_NE(req, nullptr);
        a_count += req->cg == cg_a;
    }
    EXPECT_EQ(a_count, 4);
}

TEST_F(BfqFixture, EmptyReturnsNull)
{
    Bfq bfq(sim, tree, BfqParams{});
    EXPECT_TRUE(bfq.empty());
    EXPECT_EQ(bfq.selectNext(), nullptr);
}

} // namespace
} // namespace isol::blk
