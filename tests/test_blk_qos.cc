/**
 * @file
 * Unit tests for the rq-qos gates: io.max token buckets, io.latency
 * window/QD-halving/use_delay mechanics, and io.cost vtime accounting,
 * weights, and qos vrate scaling.
 */

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "blk/qos_cost.hh"
#include "blk/qos_latency.hh"
#include "blk/qos_max.hh"
#include "cgroup/cgroup.hh"
#include "sim/simulator.hh"

namespace isol::blk
{
namespace
{

struct QosFixture : public ::testing::Test
{
    QosFixture()
    {
        tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
        cg_a = &tree.createChild(tree.root(), "a");
        cg_b = &tree.createChild(tree.root(), "b");
        tree.attachProcess(*cg_a);
        tree.attachProcess(*cg_b);
    }

    Request *
    makeReq(cgroup::Cgroup *cg, OpType op = OpType::kRead,
            uint32_t size = 4096)
    {
        auto req = std::make_unique<Request>();
        req->op = op;
        req->size = size;
        req->cg = cg;
        req->blk_enter_time = sim.now();
        req->dispatch_time = sim.now();
        reqs.push_back(std::move(req));
        return reqs.back().get();
    }

    sim::Simulator sim;
    cgroup::CgroupTree tree;
    cgroup::Cgroup *cg_a = nullptr;
    cgroup::Cgroup *cg_b = nullptr;
    std::vector<std::unique_ptr<Request>> reqs;
};

// --- io.max ---

TEST_F(QosFixture, IoMaxUnlimitedPassesImmediately)
{
    int passed = 0;
    IoMaxGate gate(sim, 0, tree, [&](Request *) { ++passed; });
    gate.submit(makeReq(cg_a));
    EXPECT_EQ(passed, 1);
    EXPECT_EQ(gate.throttled(), 0u);
}

TEST_F(QosFixture, IoMaxEnforcesBandwidth)
{
    // 4 MiB/s limit, 4 KiB requests -> 1024 IOPS.
    tree.writeFile(*cg_a, "io.max", "259:0 rbps=4194304");
    uint64_t passed_bytes = 0;
    IoMaxGate gate(sim, 0, tree,
                   [&](Request *req) { passed_bytes += req->size; });
    // Offer 4x the limit for one second.
    for (int i = 0; i < 4096; ++i)
        gate.submit(makeReq(cg_a));
    sim.runUntil(secToNs(int64_t{1}));
    double mibs = static_cast<double>(passed_bytes) /
                  static_cast<double>(MiB);
    EXPECT_GT(mibs, 3.2);
    EXPECT_LT(mibs, 4.8);
    EXPECT_GT(gate.throttled(), 0u);
}

TEST_F(QosFixture, IoMaxEnforcesIops)
{
    tree.writeFile(*cg_a, "io.max", "259:0 riops=1000");
    int passed = 0;
    IoMaxGate gate(sim, 0, tree, [&](Request *) { ++passed; });
    for (int i = 0; i < 4000; ++i)
        gate.submit(makeReq(cg_a));
    sim.runUntil(secToNs(int64_t{1}));
    EXPECT_GT(passed, 800);
    EXPECT_LT(passed, 1300);
}

TEST_F(QosFixture, IoMaxSeparatesReadsAndWrites)
{
    tree.writeFile(*cg_a, "io.max", "259:0 rbps=4194304");
    int writes_passed = 0;
    IoMaxGate gate(sim, 0, tree, [&](Request *req) {
        writes_passed += req->op == OpType::kWrite;
    });
    // Writes are unlimited: all pass immediately.
    for (int i = 0; i < 100; ++i)
        gate.submit(makeReq(cg_a, OpType::kWrite));
    EXPECT_EQ(writes_passed, 100);
}

TEST_F(QosFixture, IoMaxPerCgroupIndependent)
{
    tree.writeFile(*cg_a, "io.max", "259:0 riops=100");
    int b_passed = 0;
    IoMaxGate gate(sim, 0, tree,
                   [&](Request *req) { b_passed += req->cg == cg_b; });
    for (int i = 0; i < 50; ++i) {
        gate.submit(makeReq(cg_a));
        gate.submit(makeReq(cg_b));
    }
    // cg_b is unlimited: everything passes now.
    EXPECT_EQ(b_passed, 50);
}

TEST_F(QosFixture, IoMaxIdleCreditCapped)
{
    tree.writeFile(*cg_a, "io.max", "259:0 riops=1000");
    int passed = 0;
    IoMaxGate gate(sim, 0, tree, [&](Request *) { ++passed; });
    // Idle for 10 seconds: must NOT bank 10k IOs of credit.
    sim.runUntil(secToNs(int64_t{10}));
    for (int i = 0; i < 2000; ++i)
        gate.submit(makeReq(cg_a));
    SimTime burst_deadline = sim.now() + msToNs(100);
    sim.runUntil(burst_deadline);
    // One slice (20 ms) of credit plus 100 ms of earning ~ 120 IOs.
    EXPECT_LT(passed, 300);
}

TEST_F(QosFixture, IoMaxFifoWithinCgroup)
{
    tree.writeFile(*cg_a, "io.max", "259:0 riops=100");
    std::vector<Request *> order;
    IoMaxGate gate(sim, 0, tree, [&](Request *req) { order.push_back(req); });
    Request *r1 = makeReq(cg_a);
    Request *r2 = makeReq(cg_a);
    Request *r3 = makeReq(cg_a);
    gate.submit(r1);
    gate.submit(r2);
    gate.submit(r3);
    sim.runUntil(msToNs(100));
    ASSERT_GE(order.size(), 3u);
    EXPECT_EQ(order[0], r1);
    EXPECT_EQ(order[1], r2);
    EXPECT_EQ(order[2], r3);
}

// --- io.latency ---

TEST_F(QosFixture, IoLatencyPassesWithinQd)
{
    int passed = 0;
    IoLatencyGate gate(sim, 0, tree, [&](Request *) { ++passed; });
    gate.start();
    gate.submit(makeReq(cg_a));
    EXPECT_EQ(passed, 1);
    EXPECT_EQ(gate.qdLimit(cg_a), 1024u);
}

TEST_F(QosFixture, IoLatencyHalvesVictimQdOncePerWindow)
{
    tree.writeFile(*cg_a, "io.latency", "259:0 target=100");
    IoLatencyGate gate(sim, 0, tree, [](Request *) {});
    gate.start();
    gate.qdLimit(cg_b); // register the victim group with the gate

    // cg_a completes with 1 ms latency (target 100 us): violated.
    // cg_b (no target) is the victim.
    for (int i = 0; i < 20; ++i) {
        Request *req = makeReq(cg_a);
        gate.submit(req);
        req->blk_enter_time = sim.now() - msToNs(1);
        gate.onComplete(req);
    }
    sim.runUntil(msToNs(501)); // one window tick
    EXPECT_EQ(gate.qdLimit(cg_b), 512u);
    EXPECT_EQ(gate.qdLimit(cg_a), 1024u); // the protected group keeps QD
}

TEST_F(QosFixture, IoLatencyFullThrottleTakesTenWindows)
{
    // O10: QD 1024 -> 1 takes ~10 halvings at one per 500 ms window.
    tree.writeFile(*cg_a, "io.latency", "259:0 target=100");
    IoLatencyGate gate(sim, 0, tree, [](Request *) {});
    gate.start();
    gate.qdLimit(cg_b); // register the victim group with the gate

    std::function<void()> violate = [&] {
        for (int i = 0; i < 20; ++i) {
            Request *req = makeReq(cg_a);
            gate.submit(req);
            req->blk_enter_time = sim.now() - msToNs(1);
            gate.onComplete(req);
        }
    };
    // Violate in every window for 4.4 seconds.
    for (int w = 0; w < 9; ++w)
        sim.at(msToNs(100 + 500 * w), violate);
    sim.runUntil(msToNs(4600));
    EXPECT_EQ(gate.qdLimit(cg_b), 2u); // 1024 / 2^9
    sim.at(msToNs(4700), violate);
    sim.runUntil(msToNs(5100));
    EXPECT_EQ(gate.qdLimit(cg_b), 1u); // fully throttled after ~5 s
}

TEST_F(QosFixture, IoLatencyUnthrottlesInQuarterSteps)
{
    tree.writeFile(*cg_a, "io.latency", "259:0 target=100");
    IoLatencyGate gate(sim, 0, tree, [](Request *) {});
    gate.start();
    gate.qdLimit(cg_b); // register the victim group with the gate
    // One violated window throttles cg_b to 512.
    for (int i = 0; i < 20; ++i) {
        Request *req = makeReq(cg_a);
        gate.submit(req);
        req->blk_enter_time = sim.now() - msToNs(1);
        gate.onComplete(req);
    }
    sim.runUntil(msToNs(501));
    ASSERT_EQ(gate.qdLimit(cg_b), 512u);
    // Quiet window: unthrottle by max_nr_requests / 4 = 256.
    sim.runUntil(msToNs(1001));
    EXPECT_EQ(gate.qdLimit(cg_b), 768u);
    sim.runUntil(msToNs(1501));
    EXPECT_EQ(gate.qdLimit(cg_b), 1024u);
}

TEST_F(QosFixture, IoLatencyUseDelayBlocksRecovery)
{
    tree.writeFile(*cg_a, "io.latency", "259:0 target=100");
    IoLatencyParams params;
    params.max_nr_requests = 4; // tiny so QD 1 is reached quickly
    IoLatencyGate gate(sim, 0, tree, [](Request *) {}, params);
    gate.start();
    gate.qdLimit(cg_b); // register the victim group with the gate

    std::function<void()> violate = [&] {
        for (int i = 0; i < 20; ++i) {
            Request *req = makeReq(cg_a);
            gate.submit(req);
            req->blk_enter_time = sim.now() - msToNs(1);
            gate.onComplete(req);
        }
    };
    // Windows 1..4 violated: QD 4 -> 2 -> 1, then use_delay grows.
    for (int w = 0; w < 4; ++w)
        sim.at(msToNs(100 + 500 * w), violate);
    sim.runUntil(msToNs(2100));
    EXPECT_EQ(gate.qdLimit(cg_b), 1u);
    EXPECT_EQ(gate.useDelay(cg_b), 2u);
    // Two quiet windows only drain use_delay; QD recovers afterwards.
    sim.runUntil(msToNs(2600));
    EXPECT_EQ(gate.qdLimit(cg_b), 1u);
    sim.runUntil(msToNs(3100));
    EXPECT_EQ(gate.qdLimit(cg_b), 1u);
    EXPECT_EQ(gate.useDelay(cg_b), 0u);
    sim.runUntil(msToNs(3600));
    EXPECT_EQ(gate.qdLimit(cg_b), 2u);
}

TEST_F(QosFixture, IoLatencyQdGateQueues)
{
    IoLatencyParams params;
    params.max_nr_requests = 2;
    int passed = 0;
    IoLatencyGate gate(sim, 0, tree, [&](Request *) { ++passed; }, params);
    gate.start();
    Request *r1 = makeReq(cg_a);
    Request *r2 = makeReq(cg_a);
    Request *r3 = makeReq(cg_a);
    gate.submit(r1);
    gate.submit(r2);
    gate.submit(r3);
    EXPECT_EQ(passed, 2);
    EXPECT_EQ(gate.throttled(), 1u);
    gate.onComplete(r1);
    EXPECT_EQ(passed, 3);
}

// --- io.cost ---

TEST_F(QosFixture, IoCostAbsCostFollowsModel)
{
    cgroup::IoCostModel model;
    model.user = true;
    model.rbps = 2400ull * MiB;
    model.rseqiops = 650000;
    model.rrandiops = 600000;
    model.wbps = 450ull * MiB;
    model.wseqiops = 120000;
    model.wrandiops = 110000;
    tree.setCostModel(0, model);
    IoCostGate gate(sim, 0, tree, [](Request *) {});

    Request *small_read = makeReq(cg_a, OpType::kRead, 4096);
    Request *big_read = makeReq(cg_a, OpType::kRead, 256 * 1024);
    Request *small_write = makeReq(cg_a, OpType::kWrite, 4096);
    // Bigger requests cost more; writes cost much more than reads.
    EXPECT_GT(gate.absCost(*big_read), gate.absCost(*small_read) * 10);
    EXPECT_GT(gate.absCost(*small_write), gate.absCost(*small_read) * 3);
}

TEST_F(QosFixture, IoCostSequentialCheaperThanRandom)
{
    IoCostGate gate(sim, 0, tree, [](Request *) {});
    Request *rand_read = makeReq(cg_a, OpType::kRead, 4096);
    rand_read->sequential = false;
    Request *seq_read = makeReq(cg_a, OpType::kRead, 4096);
    seq_read->sequential = true;
    EXPECT_LE(gate.absCost(*seq_read), gate.absCost(*rand_read));
}

TEST_F(QosFixture, IoCostThrottlesToModelRate)
{
    // Model: 1000 rand read IOPS. Offer 4x and expect ~1000/s to pass.
    cgroup::IoCostModel model;
    model.user = true;
    model.rbps = 100ull * GiB; // page cost negligible
    model.rrandiops = 1000;
    model.rseqiops = 1000;
    tree.setCostModel(0, model);
    cgroup::IoCostQos qos; // defaults: no latency percentiles active
    qos.rpct = 0.0;
    qos.wpct = 0.0;
    tree.setCostQos(0, qos);

    int passed = 0;
    IoCostGate gate(sim, 0, tree, [&](Request *) { ++passed; });
    gate.start();
    for (int i = 0; i < 4000; ++i)
        gate.submit(makeReq(cg_a));
    sim.runUntil(secToNs(int64_t{1}));
    EXPECT_GT(passed, 700);
    EXPECT_LT(passed, 1500);
}

TEST_F(QosFixture, IoCostSharesFollowWeights)
{
    tree.writeFile(*cg_a, "io.weight", "300");
    tree.writeFile(*cg_b, "io.weight", "100");
    IoCostGate gate(sim, 0, tree, [](Request *) {});
    gate.submit(makeReq(cg_a));
    gate.submit(makeReq(cg_b));
    EXPECT_NEAR(gate.shareOf(cg_a), 0.75, 1e-9);
    EXPECT_NEAR(gate.shareOf(cg_b), 0.25, 1e-9);
}

TEST_F(QosFixture, IoCostWeightDonationOnIdle)
{
    tree.writeFile(*cg_a, "io.weight", "100");
    tree.writeFile(*cg_b, "io.weight", "100");
    IoCostGate gate(sim, 0, tree, [](Request *) {});
    gate.start();
    gate.submit(makeReq(cg_a));
    gate.submit(makeReq(cg_b));
    EXPECT_NEAR(gate.shareOf(cg_a), 0.5, 1e-9);
    // cg_b goes idle; after a few periods its weight is donated.
    std::function<void()> keep_a_active = [&] {
        gate.submit(makeReq(cg_a));
    };
    for (int i = 1; i <= 40; ++i)
        sim.at(msToNs(i), keep_a_active);
    sim.runUntil(msToNs(50));
    EXPECT_NEAR(gate.shareOf(cg_a), 1.0, 1e-9);
}

TEST_F(QosFixture, IoCostWeightedThroughput)
{
    // 3:1 weights with a model of 1000 IOPS: expect ~750 vs ~250.
    cgroup::IoCostModel model;
    model.user = true;
    model.rbps = 100ull * GiB;
    model.rrandiops = 1000;
    tree.setCostModel(0, model);
    cgroup::IoCostQos qos;
    qos.rpct = 0.0;
    qos.wpct = 0.0;
    tree.setCostQos(0, qos);
    tree.writeFile(*cg_a, "io.weight", "300");
    tree.writeFile(*cg_b, "io.weight", "100");

    int passed_a = 0;
    int passed_b = 0;
    IoCostGate gate(sim, 0, tree, [&](Request *req) {
        (req->cg == cg_a ? passed_a : passed_b)++;
    });
    gate.start();
    for (int i = 0; i < 2000; ++i) {
        gate.submit(makeReq(cg_a));
        gate.submit(makeReq(cg_b));
    }
    sim.runUntil(secToNs(int64_t{1}));
    EXPECT_GT(passed_a, 550);
    EXPECT_LT(passed_b, 450);
}

TEST_F(QosFixture, IoCostVrateDropsUnderLatencyViolation)
{
    cgroup::IoCostQos qos;
    qos.rpct = 95.0;
    qos.rlat = usToNs(100);
    qos.vrate_min = 50.0;
    qos.vrate_max = 100.0;
    tree.setCostQos(0, qos);

    IoCostGate gate(sim, 0, tree, [](Request *) {});
    gate.start();
    EXPECT_DOUBLE_EQ(gate.vrate(), 1.0);
    // Feed slow device completions (1 ms) every period.
    std::function<void()> slow = [&] {
        for (int i = 0; i < 10; ++i) {
            Request *req = makeReq(cg_a);
            req->dispatch_time = sim.now() - msToNs(1);
            gate.onDeviceComplete(req);
        }
    };
    for (int i = 1; i <= 100; ++i)
        sim.at(msToNs(i), slow);
    // Check just after the last violated period, before recovery starts.
    sim.runUntil(msToNs(101));
    EXPECT_NEAR(gate.vrate(), 0.5, 1e-9); // clamped at min
}

TEST_F(QosFixture, IoCostVrateRecovers)
{
    cgroup::IoCostQos qos;
    qos.rpct = 95.0;
    qos.rlat = usToNs(100);
    qos.vrate_min = 50.0;
    qos.vrate_max = 100.0;
    tree.setCostQos(0, qos);
    IoCostGate gate(sim, 0, tree, [](Request *) {});
    gate.start();
    std::function<void()> slow = [&] {
        Request *req = makeReq(cg_a);
        req->dispatch_time = sim.now() - msToNs(1);
        gate.onDeviceComplete(req);
    };
    for (int i = 1; i <= 50; ++i)
        sim.at(msToNs(i), slow);
    sim.runUntil(msToNs(60));
    EXPECT_LT(gate.vrate(), 1.0);
    // Quiet periods: vrate climbs back to max.
    sim.runUntil(msToNs(200));
    EXPECT_DOUBLE_EQ(gate.vrate(), 1.0);
}

TEST_F(QosFixture, IoCostDonationReassignsUnusedBudget)
{
    // A weight-10000 group that barely submits donates its surplus to a
    // busy weight-100 group within a few periods.
    cgroup::IoCostModel model;
    model.user = true;
    model.rbps = 100ull * GiB;
    model.rrandiops = 10000;
    tree.setCostModel(0, model);
    cgroup::IoCostQos qos;
    qos.rpct = 0.0;
    qos.wpct = 0.0;
    tree.setCostQos(0, qos);
    tree.writeFile(*cg_a, "io.weight", "10000");
    tree.writeFile(*cg_b, "io.weight", "100");

    int passed_b = 0;
    IoCostGate gate(sim, 0, tree,
                    [&](Request *req) { passed_b += req->cg == cg_b; });
    gate.start();
    // cg_a: one tiny request per 10 ms. cg_b: constant heavy offer.
    for (int t = 1; t <= 50; ++t) {
        sim.at(msToNs(t * 10), [&] { gate.submit(makeReq(cg_a)); });
        for (int k = 0; k < 40; ++k)
            sim.at(msToNs(t * 2), [&] { gate.submit(makeReq(cg_b)); });
    }
    sim.runUntil(msToNs(500));
    // Without donation cg_b would be capped near 1% of 10k IOPS
    // (~50 IOs in 0.5 s); with donation all 2000 offered IOs pass.
    EXPECT_GE(passed_b, 1900);
}

TEST_F(QosFixture, IoCostDonationCanBeDisabled)
{
    cgroup::IoCostModel model;
    model.user = true;
    model.rbps = 100ull * GiB;
    model.rrandiops = 10000;
    tree.setCostModel(0, model);
    cgroup::IoCostQos qos;
    qos.rpct = 0.0;
    qos.wpct = 0.0;
    tree.setCostQos(0, qos);
    tree.writeFile(*cg_a, "io.weight", "10000");
    tree.writeFile(*cg_b, "io.weight", "100");

    IoCostParams params;
    params.enable_donation = false;
    int passed_b = 0;
    IoCostGate gate(sim, 0, tree,
                    [&](Request *req) { passed_b += req->cg == cg_b; },
                    params);
    gate.start();
    for (int t = 1; t <= 50; ++t) {
        sim.at(msToNs(t * 10), [&] { gate.submit(makeReq(cg_a)); });
        for (int k = 0; k < 40; ++k)
            sim.at(msToNs(t * 2), [&] { gate.submit(makeReq(cg_b)); });
    }
    sim.runUntil(msToNs(500));
    // cg_b stays pinned to ~1% of the model rate.
    EXPECT_LT(passed_b, 500);
}

TEST_F(QosFixture, IoCostFifoWithinGroup)
{
    cgroup::IoCostModel model;
    model.user = true;
    model.rbps = 100ull * GiB;
    model.rrandiops = 100;
    tree.setCostModel(0, model);
    cgroup::IoCostQos qos;
    qos.rpct = 0.0;
    qos.wpct = 0.0;
    tree.setCostQos(0, qos);

    std::vector<Request *> order;
    IoCostGate gate(sim, 0, tree,
                    [&](Request *req) { order.push_back(req); });
    gate.start();
    Request *r1 = makeReq(cg_a);
    Request *r2 = makeReq(cg_a);
    gate.submit(r1);
    gate.submit(r2);
    sim.runUntil(msToNs(100));
    ASSERT_GE(order.size(), 2u);
    EXPECT_EQ(order[0], r1);
    EXPECT_EQ(order[1], r2);
}

// --- Gate state compaction on cgroup removal ---

TEST_F(QosFixture, IoCostGateCompactsStateOnCgroupRemoval)
{
    // Regression: per-group state used to live in a creation-order deque
    // that was never compacted, so a long-lived gate leaked an entry per
    // cgroup ever seen. Removal must swap-remove the state and the
    // shares must renormalise over the survivors.
    tree.writeFile(*cg_a, "io.weight", "300");
    tree.writeFile(*cg_b, "io.weight", "100");
    IoCostGate gate(sim, 0, tree, [](Request *) {});
    gate.submit(makeReq(cg_a));
    gate.submit(makeReq(cg_b));
    sim.runUntil(msToNs(10)); // drain so cg_a's queue is empty
    ASSERT_EQ(gate.trackedGroups(), 2u);
    EXPECT_NEAR(gate.shareOf(cg_a), 0.75, 1e-9);

    tree.detachProcess(*cg_a);
    tree.removeGroup(*cg_a);
    cg_a = nullptr;
    EXPECT_EQ(gate.trackedGroups(), 1u);
    // The survivor (moved by the swap-remove) keeps working and now
    // owns the whole device.
    EXPECT_NEAR(gate.shareOf(cg_b), 1.0, 1e-9);
    gate.submit(makeReq(cg_b));
    EXPECT_NEAR(gate.shareOf(cg_b), 1.0, 1e-9);
}

TEST_F(QosFixture, RecycledCgroupIdGetsFreshGateState)
{
    // Removal returns the dense id to the tree's free list; a new group
    // reusing that id must not inherit the old group's vtime or charges.
    IoCostGate gate(sim, 0, tree, [](Request *) {});
    gate.submit(makeReq(cg_a, OpType::kRead, 64 * KiB));
    sim.runUntil(msToNs(10));
    EXPECT_GT(gate.subtreeAbsOf(cg_a), 0.0);

    cgroup::CgroupId old_id = cg_a->id();
    tree.detachProcess(*cg_a);
    tree.removeGroup(*cg_a);
    cgroup::Cgroup &fresh = tree.createChild(tree.root(), "fresh");
    ASSERT_EQ(fresh.id(), old_id); // LIFO id recycling
    tree.attachProcess(fresh);
    cg_a = nullptr;

    EXPECT_DOUBLE_EQ(gate.subtreeAbsOf(&fresh), 0.0);
    gate.submit(makeReq(&fresh));
    EXPECT_GT(gate.subtreeAbsOf(&fresh), 0.0);
}

TEST_F(QosFixture, IoMaxAndLatencyGatesDropRemovedGroups)
{
    IoMaxGate max_gate(sim, 0, tree, [](Request *) {});
    IoLatencyGate lat_gate(sim, 0, tree, [](Request *) {});
    Request *req = makeReq(cg_a);
    max_gate.submit(req);
    lat_gate.submit(req);
    lat_gate.onComplete(req);
    max_gate.submit(makeReq(cg_b));
    ASSERT_EQ(max_gate.trackedGroups(), 2u);
    ASSERT_EQ(lat_gate.trackedGroups(), 1u);

    tree.detachProcess(*cg_a);
    tree.removeGroup(*cg_a);
    cg_a = nullptr;
    EXPECT_EQ(max_gate.trackedGroups(), 1u);
    EXPECT_EQ(lat_gate.trackedGroups(), 0u);
}

} // namespace
} // namespace isol::blk
