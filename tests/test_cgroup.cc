/**
 * @file
 * Unit tests for the cgroup v2 model: hierarchy rules, sysfs-syntax knob
 * parsing, validation, and hierarchical weight resolution.
 */

#include <gtest/gtest.h>

#include "cgroup/cgroup.hh"
#include "cgroup/knobs.hh"
#include "common/logging.hh"

namespace isol::cgroup
{
namespace
{

TEST(Knobs, ParsePrioClass)
{
    EXPECT_EQ(parsePrioClass("no-change"), PrioClass::kNoChange);
    EXPECT_EQ(parsePrioClass("promote-to-rt"), PrioClass::kPromoteToRt);
    EXPECT_EQ(parsePrioClass("restrict-to-be"), PrioClass::kRestrictToBe);
    EXPECT_EQ(parsePrioClass("idle"), PrioClass::kIdle);
    EXPECT_EQ(parsePrioClass(" rt "), PrioClass::kPromoteToRt);
    EXPECT_FALSE(parsePrioClass("bogus").has_value());
}

TEST(Knobs, PrioClassNamesRoundTrip)
{
    for (PrioClass cls : {PrioClass::kNoChange, PrioClass::kPromoteToRt,
                          PrioClass::kRestrictToBe, PrioClass::kIdle}) {
        EXPECT_EQ(parsePrioClass(prioClassName(cls)), cls);
    }
}

TEST(Knobs, ParseIoMax)
{
    auto limits = parseIoMax("rbps=83886080 wbps=max riops=1000");
    ASSERT_TRUE(limits.has_value());
    EXPECT_EQ(limits->rbps, 83886080u);
    EXPECT_EQ(limits->wbps, 0u); // max == unlimited
    EXPECT_EQ(limits->riops, 1000u);
    EXPECT_EQ(limits->wiops, 0u);
    EXPECT_FALSE(limits->unlimited());
}

TEST(Knobs, ParseIoMaxSuffixes)
{
    auto limits = parseIoMax("rbps=1g wbps=512m");
    ASSERT_TRUE(limits.has_value());
    EXPECT_EQ(limits->rbps, GiB);
    EXPECT_EQ(limits->wbps, 512 * MiB);
}

TEST(Knobs, ParseIoMaxPreservesBase)
{
    IoMaxLimits base;
    base.rbps = 77;
    auto limits = parseIoMax("wbps=88", base);
    ASSERT_TRUE(limits.has_value());
    EXPECT_EQ(limits->rbps, 77u); // untouched key keeps prior value
    EXPECT_EQ(limits->wbps, 88u);
}

TEST(Knobs, ParseIoMaxRejectsGarbage)
{
    EXPECT_FALSE(parseIoMax("rbps").has_value());
    EXPECT_FALSE(parseIoMax("bogus=1").has_value());
    EXPECT_FALSE(parseIoMax("rbps=abc").has_value());
    EXPECT_FALSE(parseIoMax("=5").has_value());
}

TEST(Knobs, ParseIoLatency)
{
    auto cfg = parseIoLatency("target=75");
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->target, usToNs(75));
    EXPECT_FALSE(parseIoLatency("target=abc").has_value());
    EXPECT_FALSE(parseIoLatency("tgt=75").has_value());
}

TEST(Knobs, ParseIoCostModel)
{
    auto model = parseIoCostModel(
        "ctrl=user model=linear rbps=2000000000 rseqiops=500000 "
        "rrandiops=400000 wbps=300000000 wseqiops=100000 wrandiops=90000");
    ASSERT_TRUE(model.has_value());
    EXPECT_TRUE(model->user);
    EXPECT_EQ(model->rbps, 2000000000u);
    EXPECT_EQ(model->rrandiops, 400000u);
    EXPECT_EQ(model->wrandiops, 90000u);
    EXPECT_FALSE(parseIoCostModel("model=quadratic").has_value());
}

TEST(Knobs, ParseIoCostQos)
{
    auto qos = parseIoCostQos(
        "enable=1 ctrl=user rpct=95.00 rlat=100 wpct=95.00 wlat=400 "
        "min=50.00 max=150.00");
    ASSERT_TRUE(qos.has_value());
    EXPECT_TRUE(qos->enable);
    EXPECT_DOUBLE_EQ(qos->rpct, 95.0);
    EXPECT_EQ(qos->rlat, usToNs(100));
    EXPECT_DOUBLE_EQ(qos->vrate_min, 50.0);
    EXPECT_DOUBLE_EQ(qos->vrate_max, 150.0);
}

TEST(Knobs, ParseIoCostQosValidation)
{
    EXPECT_FALSE(parseIoCostQos("min=80 max=50").has_value());
    EXPECT_FALSE(parseIoCostQos("rpct=150").has_value());
    EXPECT_FALSE(parseIoCostQos("enable=2").has_value());
}

TEST(Knobs, ParseWeightRanges)
{
    EXPECT_EQ(parseWeight("100", 1, 10000), 100u);
    EXPECT_EQ(parseWeight("default 250", 1, 10000), 250u);
    EXPECT_FALSE(parseWeight("0", 1, 10000).has_value());
    EXPECT_FALSE(parseWeight("10001", 1, 10000).has_value());
    EXPECT_FALSE(parseWeight("1001", 1, 1000).has_value());
    EXPECT_FALSE(parseWeight("abc", 1, 1000).has_value());
}

// --- Tree semantics ---

TEST(CgroupTree, RootExists)
{
    CgroupTree tree;
    EXPECT_TRUE(tree.root().isRoot());
    EXPECT_EQ(tree.root().path(), "/");
    EXPECT_EQ(tree.groups().size(), 1u);
}

TEST(CgroupTree, CreateChildrenAndPaths)
{
    CgroupTree tree;
    Cgroup &slice = tree.createChild(tree.root(), "workloads.slice");
    Cgroup &svc = tree.createChild(slice, "container-a.service");
    EXPECT_EQ(slice.path(), "/workloads.slice");
    EXPECT_EQ(svc.path(), "/workloads.slice/container-a.service");
    EXPECT_EQ(svc.parent(), &slice);
}

TEST(CgroupTree, DuplicateNameRejected)
{
    CgroupTree tree;
    tree.createChild(tree.root(), "a");
    EXPECT_THROW(tree.createChild(tree.root(), "a"), FatalError);
}

TEST(CgroupTree, InvalidNameRejected)
{
    CgroupTree tree;
    EXPECT_THROW(tree.createChild(tree.root(), ""), FatalError);
    EXPECT_THROW(tree.createChild(tree.root(), "a/b"), FatalError);
}

TEST(CgroupTree, NoInternalProcessesRule)
{
    CgroupTree tree;
    Cgroup &mgmt = tree.createChild(tree.root(), "mgmt");
    tree.enableIoController(mgmt);
    // A management group cannot hold processes.
    EXPECT_THROW(tree.attachProcess(mgmt), FatalError);

    Cgroup &procs = tree.createChild(tree.root(), "procs");
    tree.attachProcess(procs);
    // A process group cannot become a management group.
    EXPECT_THROW(tree.enableIoController(procs), FatalError);
}

TEST(CgroupTree, DetachValidation)
{
    CgroupTree tree;
    Cgroup &g = tree.createChild(tree.root(), "g");
    EXPECT_THROW(tree.detachProcess(g), FatalError);
    tree.attachProcess(g);
    tree.detachProcess(g);
    EXPECT_EQ(g.processCount(), 0u);
}

TEST(CgroupTree, KnobNeedsParentIoController)
{
    CgroupTree tree;
    Cgroup &g = tree.createChild(tree.root(), "g");
    // Parent (root) has not enabled +io yet.
    EXPECT_THROW(tree.writeFile(g, "io.weight", "200"), FatalError);
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    tree.writeFile(g, "io.weight", "200");
    EXPECT_EQ(g.ioWeight(), 200u);
}

TEST(CgroupTree, IoCostKnobsRootOnly)
{
    CgroupTree tree;
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    Cgroup &g = tree.createChild(tree.root(), "g");
    EXPECT_THROW(tree.writeFile(g, "io.cost.model", "259:0 rbps=1000"),
                 FatalError);
    EXPECT_THROW(tree.writeFile(g, "io.cost.qos", "259:0 min=10"),
                 FatalError);
    tree.writeFile(tree.root(), "io.cost.model", "259:0 rbps=1000");
    EXPECT_EQ(tree.costModel(0).rbps, 1000u);
}

TEST(CgroupTree, PrioClassOnlyOnProcessGroups)
{
    CgroupTree tree;
    Cgroup &mgmt = tree.createChild(tree.root(), "mgmt");
    tree.enableIoController(mgmt);
    EXPECT_THROW(tree.writeFile(mgmt, "io.prio.class", "idle"),
                 FatalError);

    Cgroup &leaf = tree.createChild(mgmt, "leaf");
    tree.writeFile(leaf, "io.prio.class", "idle");
    EXPECT_EQ(leaf.prioClass(), PrioClass::kIdle);
}

TEST(CgroupTree, IoMaxPerDevice)
{
    CgroupTree tree;
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    Cgroup &g = tree.createChild(tree.root(), "g");
    tree.writeFile(g, "io.max", "259:0 rbps=1000");
    tree.writeFile(g, "io.max", "259:1 rbps=2000");
    EXPECT_EQ(g.ioMax(0).rbps, 1000u);
    EXPECT_EQ(g.ioMax(1).rbps, 2000u);
    EXPECT_TRUE(g.ioMax(2).unlimited());
    // Partial update keeps other fields.
    tree.writeFile(g, "io.max", "259:0 wbps=500");
    EXPECT_EQ(g.ioMax(0).rbps, 1000u);
    EXPECT_EQ(g.ioMax(0).wbps, 500u);
}

TEST(CgroupTree, IoLatencyPerDevice)
{
    CgroupTree tree;
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    Cgroup &g = tree.createChild(tree.root(), "g");
    tree.writeFile(g, "io.latency", "259:0 target=75");
    EXPECT_EQ(g.ioLatencyTarget(0), usToNs(75));
    EXPECT_EQ(g.ioLatencyTarget(1), 0);
}

TEST(CgroupTree, WeightValidationThroughWriteFile)
{
    CgroupTree tree;
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    Cgroup &g = tree.createChild(tree.root(), "g");
    EXPECT_THROW(tree.writeFile(g, "io.weight", "0"), FatalError);
    EXPECT_THROW(tree.writeFile(g, "io.weight", "10001"), FatalError);
    EXPECT_THROW(tree.writeFile(g, "io.bfq.weight", "1001"), FatalError);
    tree.writeFile(g, "io.bfq.weight", "1000");
    EXPECT_EQ(g.bfqWeight(), 1000u);
}

TEST(CgroupTree, UnknownFileRejected)
{
    CgroupTree tree;
    EXPECT_THROW(tree.writeFile(tree.root(), "io.bogus", "1"), FatalError);
    EXPECT_THROW((void)tree.readFile(tree.root(), "io.bogus"), FatalError);
}

TEST(CgroupTree, ReadBackFiles)
{
    CgroupTree tree;
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    Cgroup &g = tree.createChild(tree.root(), "g");
    tree.writeFile(g, "io.weight", "300");
    EXPECT_EQ(tree.readFile(g, "io.weight"), "default 300");
    tree.writeFile(g, "io.max", "259:0 rbps=1000");
    std::string max = tree.readFile(g, "io.max");
    EXPECT_NE(max.find("rbps=1000"), std::string::npos);
    EXPECT_NE(max.find("wbps=max"), std::string::npos);
    EXPECT_EQ(tree.readFile(tree.root(), "cgroup.subtree_control"), "io");
}

TEST(CgroupTree, HierarchicalShareFlat)
{
    CgroupTree tree;
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    Cgroup &a = tree.createChild(tree.root(), "a");
    Cgroup &b = tree.createChild(tree.root(), "b");
    tree.attachProcess(a);
    tree.attachProcess(b);
    tree.writeFile(a, "io.weight", "300");
    tree.writeFile(b, "io.weight", "100");
    EXPECT_NEAR(tree.hierarchicalShare(a, false), 0.75, 1e-9);
    EXPECT_NEAR(tree.hierarchicalShare(b, false), 0.25, 1e-9);
}

TEST(CgroupTree, HierarchicalShareIgnoresIdleSiblings)
{
    CgroupTree tree;
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    Cgroup &a = tree.createChild(tree.root(), "a");
    Cgroup &b = tree.createChild(tree.root(), "b");
    tree.writeFile(a, "io.weight", "100");
    tree.writeFile(b, "io.weight", "100");
    tree.attachProcess(a);
    // b has no processes: a gets everything.
    EXPECT_NEAR(tree.hierarchicalShare(a, false), 1.0, 1e-9);
}

TEST(CgroupTree, HierarchicalShareNested)
{
    // Paper's BFQ example: A weight 1000, B weight 1 -> B's children get
    // 1/1001 of the device.
    CgroupTree tree;
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    Cgroup &a = tree.createChild(tree.root(), "a");
    Cgroup &b = tree.createChild(tree.root(), "b");
    tree.enableIoController(b);
    Cgroup &b_child = tree.createChild(b, "child");
    tree.writeFile(a, "io.bfq.weight", "1000");
    tree.writeFile(b, "io.bfq.weight", "1");
    tree.attachProcess(a);
    tree.attachProcess(b_child);
    EXPECT_NEAR(tree.hierarchicalShare(b_child, true), 1.0 / 1001.0,
                1e-9);
}

TEST(CgroupTree, CostDefaultsWhenUnset)
{
    CgroupTree tree;
    IoCostModel model = tree.costModel(0);
    EXPECT_FALSE(model.user);
    EXPECT_GT(model.rbps, 0u);
    IoCostQos qos = tree.costQos(0);
    EXPECT_TRUE(qos.enable);
    EXPECT_LE(qos.vrate_min, qos.vrate_max);
}

TEST(CgroupTree, SetCostQosValidates)
{
    CgroupTree tree;
    IoCostQos qos;
    qos.vrate_min = 80;
    qos.vrate_max = 50;
    EXPECT_THROW(tree.setCostQos(0, qos), FatalError);
}

TEST(CgroupTree, SubtreeControlDisable)
{
    CgroupTree tree;
    Cgroup &g = tree.createChild(tree.root(), "g");
    tree.writeFile(g, "cgroup.subtree_control", "+io");
    EXPECT_TRUE(g.ioControllerEnabled());
    tree.writeFile(g, "cgroup.subtree_control", "-io");
    EXPECT_FALSE(g.ioControllerEnabled());
    EXPECT_THROW(tree.writeFile(g, "cgroup.subtree_control", "+cpu"),
                 FatalError);
}

TEST(CgroupTree, ChainAndDepthCached)
{
    CgroupTree tree;
    Cgroup &a = tree.createChild(tree.root(), "a");
    Cgroup &b = tree.createChild(a, "b");
    Cgroup &c = tree.createChild(b, "c");
    EXPECT_EQ(tree.root().depth(), 0u);
    EXPECT_EQ(a.depth(), 1u);
    EXPECT_EQ(c.depth(), 3u);
    // Chain is self-first, excludes the root.
    ASSERT_EQ(c.chain().size(), 3u);
    EXPECT_EQ(c.chain()[0], c.id());
    EXPECT_EQ(c.chain()[1], b.id());
    EXPECT_EQ(c.chain()[2], a.id());
    EXPECT_TRUE(tree.root().chain().empty());
}

TEST(CgroupTree, ResolvePaths)
{
    CgroupTree tree;
    Cgroup &a = tree.createChild(tree.root(), "a");
    Cgroup &b = tree.createChild(a, "b");
    EXPECT_EQ(tree.resolve(""), &tree.root());
    EXPECT_EQ(tree.resolve("/"), &tree.root());
    EXPECT_EQ(tree.resolve("a"), &a);
    EXPECT_EQ(tree.resolve("a/b"), &b);
    EXPECT_EQ(tree.resolve("a/b/"), &b);
    EXPECT_EQ(tree.resolve("a/x"), nullptr);
    EXPECT_EQ(tree.resolve("nope"), nullptr);
}

TEST(CgroupTree, RemoveGroupRules)
{
    CgroupTree tree;
    Cgroup &a = tree.createChild(tree.root(), "a");
    Cgroup &b = tree.createChild(a, "b");
    // rmdir semantics: no children, no processes, never the root.
    EXPECT_THROW(tree.removeGroup(tree.root()), FatalError);
    EXPECT_THROW(tree.removeGroup(a), FatalError); // has child b
    tree.attachProcess(b);
    EXPECT_THROW(tree.removeGroup(b), FatalError); // has a process
    tree.detachProcess(b);
    tree.removeGroup(b);
    tree.removeGroup(a);
    EXPECT_EQ(tree.liveGroupCount(), 1u);
    EXPECT_EQ(tree.resolve("a"), nullptr);
}

TEST(CgroupTree, RemovalRecyclesIdsLifo)
{
    CgroupTree tree;
    Cgroup &a = tree.createChild(tree.root(), "a");
    Cgroup &b = tree.createChild(tree.root(), "b");
    CgroupId id_a = a.id();
    CgroupId id_b = b.id();
    uint32_t cap = tree.idCapacity();
    tree.removeGroup(a);
    tree.removeGroup(b);
    // LIFO: the most recently freed id comes back first.
    EXPECT_EQ(tree.createChild(tree.root(), "c").id(), id_b);
    EXPECT_EQ(tree.createChild(tree.root(), "d").id(), id_a);
    EXPECT_EQ(tree.idCapacity(), cap);
}

TEST(CgroupTree, RemovalListenersFireWhileGroupIntact)
{
    CgroupTree tree;
    Cgroup &a = tree.createChild(tree.root(), "a");
    std::string seen;
    size_t token = tree.addRemovalListener(
        [&seen](Cgroup &cg) { seen = cg.path(); });
    tree.removeGroup(a);
    EXPECT_EQ(seen, "/a");
    tree.removeRemovalListener(token);
    Cgroup &b = tree.createChild(tree.root(), "b");
    seen.clear();
    tree.removeGroup(b);
    EXPECT_TRUE(seen.empty());
}

TEST(CgroupTree, VersionBumpsOnStructuralAndKnobChanges)
{
    CgroupTree tree;
    tree.enableIoController(tree.root());
    uint64_t v0 = tree.version();
    Cgroup &a = tree.createChild(tree.root(), "a");
    EXPECT_GT(tree.version(), v0);
    uint64_t v1 = tree.version();
    tree.writeFile(a, "io.weight", "200");
    EXPECT_GT(tree.version(), v1);
    uint64_t v2 = tree.version();
    tree.attachProcess(a);
    EXPECT_GT(tree.version(), v2);
    uint64_t v3 = tree.version();
    tree.detachProcess(a);
    tree.removeGroup(a);
    EXPECT_GT(tree.version(), v3);
}

TEST(CgroupTree, SubtreeProcessCountsMaintained)
{
    CgroupTree tree;
    Cgroup &a = tree.createChild(tree.root(), "a");
    Cgroup &b = tree.createChild(a, "b");
    Cgroup &c = tree.createChild(a, "c");
    tree.attachProcess(b);
    tree.attachProcess(b);
    tree.attachProcess(c);
    EXPECT_EQ(b.subtreeProcessCount(), 2u);
    EXPECT_EQ(a.subtreeProcessCount(), 3u);
    EXPECT_EQ(tree.root().subtreeProcessCount(), 3u);
    EXPECT_TRUE(tree.subtreeActive(a));
    tree.detachProcess(b);
    tree.detachProcess(b);
    EXPECT_EQ(a.subtreeProcessCount(), 1u);
    EXPECT_TRUE(tree.subtreeActive(a));
    tree.detachProcess(c);
    EXPECT_FALSE(tree.subtreeActive(a));
    EXPECT_EQ(tree.root().subtreeProcessCount(), 0u);
}

} // namespace
} // namespace isol::cgroup
