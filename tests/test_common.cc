/**
 * @file
 * Unit tests for src/common: units, strings, logging, RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "common/types.hh"

namespace isol
{
namespace
{

TEST(Units, TimeConversions)
{
    EXPECT_EQ(usToNs(1), 1000);
    EXPECT_EQ(msToNs(1), 1000000);
    EXPECT_EQ(secToNs(int64_t{1}), 1000000000);
    EXPECT_EQ(secToNs(1.5), 1500000000);
    EXPECT_DOUBLE_EQ(nsToUs(1500), 1.5);
    EXPECT_DOUBLE_EQ(nsToMs(1500000), 1.5);
    EXPECT_DOUBLE_EQ(nsToSec(secToNs(int64_t{3})), 3.0);
}

TEST(Units, SizeConstants)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

TEST(Units, BandwidthHelpers)
{
    // 1 GiB over 1 second is 1024 MiB/s.
    EXPECT_NEAR(bytesOverNsToMiBs(GiB, secToNs(int64_t{1})), 1024.0, 1e-9);
    EXPECT_NEAR(bytesOverNsToGiBs(GiB, secToNs(int64_t{1})), 1.0, 1e-9);
    EXPECT_EQ(bytesOverNsToMiBs(GiB, 0), 0.0);
    EXPECT_EQ(bytesOverNsToGiBs(GiB, -5), 0.0);
}

TEST(Units, Names)
{
    EXPECT_STREQ(opTypeName(OpType::kRead), "read");
    EXPECT_STREQ(opTypeName(OpType::kWrite), "write");
    EXPECT_STREQ(accessPatternName(AccessPattern::kRandom), "rand");
    EXPECT_STREQ(accessPatternName(AccessPattern::kSequential), "seq");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto parts = splitString("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitSingleField)
{
    auto parts = splitString("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWhitespaceDropsEmpty)
{
    auto parts = splitWhitespace("  rbps=1000   wbps=max \t x ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "rbps=1000");
    EXPECT_EQ(parts[1], "wbps=max");
    EXPECT_EQ(parts[2], "x");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trimString("  hi  "), "hi");
    EXPECT_EQ(trimString("hi"), "hi");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_EQ(trimString(""), "");
}

TEST(Strings, ParseUint)
{
    EXPECT_EQ(parseUint("0"), 0u);
    EXPECT_EQ(parseUint("1234"), 1234u);
    EXPECT_FALSE(parseUint("").has_value());
    EXPECT_FALSE(parseUint("12x").has_value());
    EXPECT_FALSE(parseUint("-3").has_value());
    // Overflow detection.
    EXPECT_FALSE(parseUint("99999999999999999999999").has_value());
}

TEST(Strings, ParseSizeSuffixes)
{
    EXPECT_EQ(parseSize("64"), 64u);
    EXPECT_EQ(parseSize("64k"), 64u * KiB);
    EXPECT_EQ(parseSize("64K"), 64u * KiB);
    EXPECT_EQ(parseSize("2m"), 2u * MiB);
    EXPECT_EQ(parseSize("3G"), 3u * GiB);
    EXPECT_EQ(parseSize("1t"), 1024u * GiB);
    EXPECT_FALSE(parseSize("k").has_value());
    EXPECT_FALSE(parseSize("1.5G").has_value());
}

TEST(Strings, ParseSizeMaxKeyword)
{
    EXPECT_EQ(parseSize("max", UINT64_MAX), UINT64_MAX);
    // Without a max value, "max" is invalid.
    EXPECT_FALSE(parseSize("max").has_value());
}

TEST(Strings, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(1536), "1.50KiB");
    EXPECT_EQ(formatBytes(3 * MiB / 2), "1.50MiB");
    EXPECT_EQ(formatBytes(GiB), "1.00GiB");
}

TEST(Strings, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(1.0, 0), "1");
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
    try {
        fatal("the message");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "the message");
    }
}

TEST(Logging, StrCat)
{
    EXPECT_EQ(strCat("a=", 1, " b=", 2.5), "a=1 b=2.5");
    EXPECT_EQ(strCat(), "");
}

TEST(Logging, LevelFilter)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::kError);
    EXPECT_EQ(logLevel(), LogLevel::kError);
    // Should not crash when filtered or emitted.
    logMessage(LogLevel::kDebug, "filtered");
    logMessage(LogLevel::kError, "emitted");
    setLogLevel(old);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 60);
}

TEST(Rng, BelowBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u); // all three values appear
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.exponential(100.0);
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

} // namespace
} // namespace isol
