/**
 * @file
 * Host-side fault-plane tests: NVMe command timeouts (abort + requeue +
 * capped backoff) through the block layer with per-cgroup accounting,
 * deterministic replay of whole faulty scenarios, and the d5_degradation
 * harness.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "blk/block_device.hh"
#include "cgroup/cgroup.hh"
#include "common/logging.hh"
#include "isolbench/d5_degradation.hh"
#include "isolbench/scenario.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"

namespace isol::blk
{
namespace
{

/** One-die flash config: deep read queues build multi-ms backlogs. */
ssd::SsdConfig
oneDieFlash()
{
    ssd::SsdConfig cfg = ssd::samsung980ProLike();
    cfg.user_capacity = 64 * MiB;
    cfg.channels = 1;
    cfg.dies_per_channel = 1;
    cfg.pages_per_block = 32;
    cfg.overprovision = 0.25;
    return cfg;
}

TEST(NvmeTimeout, AbortRequeueRetrySequence)
{
    sim::Simulator sim;
    cgroup::CgroupTree tree;
    ssd::SsdDevice ssd(sim, oneDieFlash(), 3);

    BlockDeviceConfig bcfg;
    bcfg.nvme_timeout.enabled = true;
    bcfg.nvme_timeout.command_timeout = msToNs(1);
    // Aborted attempts still occupy the die, so retries add device work;
    // the exponential backoff must decay the retry rate below the die's
    // service rate (~78 us/read) or the backlog never drains.
    bcfg.nvme_timeout.max_retries = 50;
    bcfg.nvme_timeout.backoff_base = usToNs(200);
    bcfg.nvme_timeout.backoff_cap = msToNs(10);
    BlockDevice bdev(sim, tree, ssd, bcfg);

    // 40 reads into a one-die device: ~78 us tR each, so the tail of the
    // queue waits >3 ms — far beyond the 1 ms command timeout.
    cgroup::Cgroup &cg = tree.createChild(tree.root(), "app");
    constexpr int kIos = 40;
    std::vector<Request> reqs(kIos);
    int completed = 0;
    int failed = 0;
    uint32_t max_retries_seen = 0;
    for (int i = 0; i < kIos; ++i) {
        reqs[i].op = OpType::kRead;
        reqs[i].offset = static_cast<uint64_t>(i) * 4096;
        reqs[i].size = 4096;
        reqs[i].cg = &cg;
        reqs[i].on_complete = [&](Request *r) {
            ++completed;
            if (r->failed)
                ++failed;
            max_retries_seen = std::max(max_retries_seen, r->retries);
        };
        bdev.submit(&reqs[i]);
    }
    sim.runAll();

    // Every request eventually completed, none permanently failed.
    EXPECT_EQ(completed, kIos);
    EXPECT_EQ(failed, 0);

    // The full timeout -> abort -> requeue -> successful-retry sequence
    // happened at least once.
    const fault::HostFaultStats &host = bdev.faultStats();
    EXPECT_GT(host.timeouts, 0u);
    EXPECT_EQ(host.aborts, host.timeouts);
    EXPECT_GT(host.requeues, 0u);
    EXPECT_GT(host.retry_successes, 0u);
    EXPECT_GT(max_retries_seen, 0u);
    // Aborted attempts still finish on the device and are dropped.
    EXPECT_GT(host.late_completions, 0u);
    EXPECT_EQ(host.failed_ios, 0u);

    // Per-cgroup accounting matches the device totals (single group).
    const cgroup::Cgroup::IoFaultStat &cgs = cg.ioFaultStat();
    EXPECT_EQ(cgs.timeouts, host.timeouts);
    EXPECT_EQ(cgs.requeues, host.requeues);
    EXPECT_EQ(cgs.retry_successes, host.retry_successes);
    EXPECT_EQ(cgs.failed_ios, 0u);
}

TEST(NvmeTimeout, FailsAfterMaxRetries)
{
    sim::Simulator sim;
    cgroup::CgroupTree tree;
    ssd::SsdDevice ssd(sim, oneDieFlash(), 3);

    BlockDeviceConfig bcfg;
    bcfg.nvme_timeout.enabled = true;
    // Shorter than a single tR: every attempt times out.
    bcfg.nvme_timeout.command_timeout = usToNs(20);
    bcfg.nvme_timeout.max_retries = 2;
    bcfg.nvme_timeout.backoff_base = usToNs(50);
    bcfg.nvme_timeout.backoff_cap = usToNs(200);
    BlockDevice bdev(sim, tree, ssd, bcfg);

    cgroup::Cgroup &cg = tree.createChild(tree.root(), "doomed");
    Request req;
    req.op = OpType::kRead;
    req.offset = 0;
    req.size = 4096;
    req.cg = &cg;
    bool done = false;
    bool failed = false;
    req.on_complete = [&](Request *r) {
        done = true;
        failed = r->failed;
    };
    bdev.submit(&req);
    sim.runAll();

    EXPECT_TRUE(done);
    EXPECT_TRUE(failed);
    EXPECT_EQ(bdev.faultStats().failed_ios, 1u);
    EXPECT_EQ(bdev.faultStats().retry_successes, 0u);
    EXPECT_EQ(bdev.faultStats().timeouts, 3u); // initial + 2 retries
    EXPECT_EQ(cg.ioFaultStat().failed_ios, 1u);
    EXPECT_EQ(cg.ioFaultStat().timeouts, 3u);
}

TEST(NvmeTimeout, DisabledAddsNoCounters)
{
    sim::Simulator sim;
    cgroup::CgroupTree tree;
    ssd::SsdDevice ssd(sim, oneDieFlash(), 3);
    BlockDevice bdev(sim, tree, ssd, BlockDeviceConfig{});

    cgroup::Cgroup &cg = tree.createChild(tree.root(), "app");
    std::vector<Request> reqs(32);
    int completed = 0;
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].op = OpType::kRead;
        reqs[i].offset = i * 4096;
        reqs[i].size = 4096;
        reqs[i].cg = &cg;
        reqs[i].on_complete = [&](Request *) { ++completed; };
        bdev.submit(&reqs[i]);
    }
    sim.runAll();
    EXPECT_EQ(completed, 32);
    EXPECT_EQ(bdev.faultStats().timeouts, 0u);
    EXPECT_EQ(bdev.faultStats().requeues, 0u);
    EXPECT_EQ(bdev.faultStats().late_completions, 0u);
    EXPECT_EQ(cg.ioFaultStat().timeouts, 0u);
}

} // namespace
} // namespace isol::blk

namespace isol::isolbench
{
namespace
{

ssd::SsdConfig
smallFlash()
{
    ssd::SsdConfig cfg = ssd::samsung980ProLike();
    cfg.user_capacity = 256 * MiB;
    cfg.channels = 2;
    cfg.dies_per_channel = 2;
    cfg.pages_per_block = 64;
    return cfg;
}

/** Run one faulty scenario and fold every stat into a summary string. */
std::string
faultySummary(uint64_t seed)
{
    ScenarioConfig cfg;
    cfg.name = "replay";
    cfg.knob = Knob::kNone;
    cfg.duration = msToNs(200);
    cfg.warmup = msToNs(50);
    cfg.seed = seed;
    cfg.device = smallFlash();
    cfg.faults = fault::profileConfig(fault::Profile::kAll);
    cfg.faults.device.media.read_error_prob = 0.01;
    cfg.faults.timeout.command_timeout = msToNs(2);

    Scenario scenario(cfg);
    uint32_t lc =
        scenario.addApp(workload::lcApp("lc", cfg.duration), "lc");
    workload::JobSpec be = workload::beApp("be", cfg.duration);
    be.iodepth = 64;
    uint32_t bi = scenario.addApp(std::move(be), "be");
    scenario.run();

    const fault::DeviceFaultStats &dev = scenario.ssd(0).faultStats();
    const fault::HostFaultStats &host = scenario.device(0).faultStats();
    return strCat(
        scenario.app(lc).totalIos(), ",", scenario.app(bi).totalIos(),
        ",", scenario.app(lc).latency().percentile(99), ",",
        scenario.app(bi).windowBytes(), ",", dev.read_retries, ",",
        dev.uncorrectable, ",", dev.remapped_blocks, ",",
        dev.spike_events, ",", dev.throttle_ns, ",", host.timeouts, ",",
        host.requeues, ",", host.retry_successes, ",",
        host.late_completions);
}

TEST(FaultReplay, SameSeedIsByteIdentical)
{
    std::string a = faultySummary(17);
    std::string b = faultySummary(17);
    EXPECT_EQ(a, b);

    std::string c = faultySummary(18);
    EXPECT_NE(a, c);
}

TEST(Degradation, SmokeRun)
{
    DegradationOptions opts;
    opts.duration = msToNs(400);
    opts.warmup = msToNs(100);
    opts.num_be_apps = 2;
    opts.device = smallFlash();

    DegradationResult r = runDegradation(Knob::kNone, opts);
    EXPECT_GT(r.healthy_agg_gibs, 0.0);
    EXPECT_GT(r.degraded_agg_gibs, 0.0);
    EXPECT_GT(r.healthy_lc_p99_us, 0.0);
    EXPECT_GT(r.degraded_lc_p99_us, 0.0);
    // The degraded run actually saw faults.
    EXPECT_GT(r.read_retries + r.timeouts + r.requeues, 0u);

    std::vector<DegradationResult> results{r};
    stats::Table table = degradationTable(results);
    EXPECT_EQ(table.numRows(), 1u);
    EXPECT_NE(table.toAligned().find("none"), std::string::npos);
}

} // namespace
} // namespace isol::isolbench
