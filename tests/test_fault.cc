/**
 * @file
 * Tests for the fault-injection plane: profiles, the media-error /
 * thermal / spike model, grown-bad-block handling in the FTL, and the
 * device-level fault counters (including bit-reproducibility and the
 * strictly-opt-in default).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "common/types.hh"
#include "fault/fault.hh"
#include "fault/media_model.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"
#include "ssd/ftl.hh"

namespace isol::fault
{
namespace
{

TEST(FaultProfile, NamesRoundTrip)
{
    for (Profile p : {Profile::kOff, Profile::kMedia, Profile::kThermal,
                      Profile::kAll}) {
        auto parsed = parseProfile(profileName(p));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_FALSE(parseProfile("bogus").has_value());
    EXPECT_FALSE(parseProfile("").has_value());
}

TEST(FaultProfile, ConfigFamilies)
{
    EXPECT_FALSE(profileConfig(Profile::kOff).any());

    FaultPlane media = profileConfig(Profile::kMedia);
    EXPECT_TRUE(media.device.media.enabled);
    EXPECT_TRUE(media.timeout.enabled);
    EXPECT_FALSE(media.device.thermal.enabled);

    FaultPlane thermal = profileConfig(Profile::kThermal);
    EXPECT_TRUE(thermal.device.thermal.enabled);
    EXPECT_FALSE(thermal.device.media.enabled);
    EXPECT_FALSE(thermal.timeout.enabled);

    FaultPlane all = profileConfig(Profile::kAll);
    EXPECT_TRUE(all.device.media.enabled);
    EXPECT_TRUE(all.device.thermal.enabled);
    EXPECT_TRUE(all.timeout.enabled);
}

TEST(MediaFaultModel, DisabledIsTransparent)
{
    DeviceFaultConfig cfg; // everything disabled
    MediaFaultModel model(cfg, 4, GiB, 42);
    auto out = model.readOutcome(0, 0, 1000);
    EXPECT_EQ(out.service, 1000);
    EXPECT_EQ(out.retries, 0u);
    EXPECT_FALSE(out.uncorrectable);
    EXPECT_FALSE(out.remap);
    EXPECT_DOUBLE_EQ(model.serviceMultiplier(msToNs(50)), 1.0);
    EXPECT_DOUBLE_EQ(model.programMultiplier(msToNs(50)), 1.0);
    EXPECT_EQ(model.stats().read_retries, 0u);
    EXPECT_EQ(model.stats().spike_events, 0u);
}

TEST(MediaFaultModel, ValidatesConfig)
{
    DeviceFaultConfig bad_ladder;
    bad_ladder.media.enabled = true;
    bad_ladder.media.retry_ladder_steps = 0;
    EXPECT_THROW(MediaFaultModel(bad_ladder, 1, GiB, 1), FatalError);

    DeviceFaultConfig bad_wm;
    bad_wm.thermal.enabled = true;
    bad_wm.thermal.low_watermark = 10.0;
    bad_wm.thermal.high_watermark = 5.0;
    EXPECT_THROW(MediaFaultModel(bad_wm, 1, GiB, 1), FatalError);
}

TEST(MediaFaultModel, FaultyRegions)
{
    DeviceFaultConfig cfg;
    cfg.media.enabled = true;
    cfg.media.faulty_die_fraction = 0.25; // first 2 of 8 dies
    cfg.media.faulty_lba_begin = 0.5;
    cfg.media.faulty_lba_len = 0.25;
    MediaFaultModel model(cfg, 8, 1000, 1);
    EXPECT_TRUE(model.dieFaulty(0));
    EXPECT_TRUE(model.dieFaulty(1));
    EXPECT_FALSE(model.dieFaulty(2));
    EXPECT_FALSE(model.offsetFaulty(499));
    EXPECT_TRUE(model.offsetFaulty(500));
    EXPECT_TRUE(model.offsetFaulty(749));
    EXPECT_FALSE(model.offsetFaulty(750));
}

TEST(MediaFaultModel, LadderEscalatesAndExhausts)
{
    DeviceFaultConfig cfg;
    cfg.media.enabled = true;
    cfg.media.read_error_prob = 1.0; // always fail the first attempt
    cfg.media.retry_fail_prob = 1.0; // ...and every retry step
    cfg.media.retry_ladder_steps = 3;
    cfg.media.retry_step_factor = 2.0;
    cfg.media.remap_prob = 0.0;
    MediaFaultModel model(cfg, 1, GiB, 7);

    auto out = model.readOutcome(0, 0, 100);
    EXPECT_EQ(out.retries, 3u);
    EXPECT_TRUE(out.uncorrectable);
    // base + base*2 + base*4 + base*8 = 1500
    EXPECT_EQ(out.service, 1500);
    EXPECT_EQ(model.stats().read_retries, 3u);
    EXPECT_EQ(model.stats().uncorrectable, 1u);
}

TEST(MediaFaultModel, RetrySucceedsWithoutExhaustion)
{
    DeviceFaultConfig cfg;
    cfg.media.enabled = true;
    cfg.media.read_error_prob = 1.0;
    cfg.media.retry_fail_prob = 0.0; // first retry always recovers
    cfg.media.retry_ladder_steps = 4;
    cfg.media.retry_step_factor = 2.0;
    MediaFaultModel model(cfg, 1, GiB, 7);

    auto out = model.readOutcome(0, 0, 100);
    EXPECT_EQ(out.retries, 1u);
    EXPECT_FALSE(out.uncorrectable);
    EXPECT_EQ(out.service, 300); // base + base*2
}

TEST(MediaFaultModel, SameSeedSameOutcomes)
{
    DeviceFaultConfig cfg;
    cfg.media.enabled = true;
    cfg.media.read_error_prob = 0.3;
    cfg.media.retry_fail_prob = 0.5;
    MediaFaultModel a(cfg, 4, GiB, 99);
    MediaFaultModel b(cfg, 4, GiB, 99);
    MediaFaultModel c(cfg, 4, GiB, 100);

    bool differs_from_c = false;
    for (int i = 0; i < 500; ++i) {
        auto oa = a.readOutcome(0, 0, 1000);
        auto ob = b.readOutcome(0, 0, 1000);
        auto oc = c.readOutcome(0, 0, 1000);
        EXPECT_EQ(oa.service, ob.service);
        EXPECT_EQ(oa.retries, ob.retries);
        EXPECT_EQ(oa.uncorrectable, ob.uncorrectable);
        if (oa.service != oc.service)
            differs_from_c = true;
    }
    EXPECT_EQ(a.stats().read_retries, b.stats().read_retries);
    EXPECT_TRUE(differs_from_c);
}

TEST(MediaFaultModel, SpikeWindows)
{
    DeviceFaultConfig cfg;
    cfg.media.enabled = true;
    cfg.media.read_error_prob = 0.0;
    cfg.media.spike_rate_hz = 1000.0; // ~1 per ms
    cfg.media.spike_duration = usToNs(100);
    cfg.media.spike_factor = 5.0;
    MediaFaultModel model(cfg, 1, GiB, 3);

    bool spiked = false;
    bool calm = false;
    for (SimTime t = 0; t < msToNs(20); t += usToNs(10)) {
        double mult = model.serviceMultiplier(t);
        if (mult == 5.0)
            spiked = true;
        else if (mult == 1.0)
            calm = true;
        else
            FAIL() << "unexpected multiplier " << mult;
    }
    EXPECT_TRUE(spiked);
    EXPECT_TRUE(calm);
    EXPECT_GT(model.stats().spike_events, 0u);
}

TEST(MediaFaultModel, ThermalThrottleCycle)
{
    DeviceFaultConfig cfg;
    cfg.thermal.enabled = true;
    cfg.thermal.heat_per_busy_ns = 1.0;
    cfg.thermal.cool_rate = 1.0;
    cfg.thermal.high_watermark = 1000.0;
    cfg.thermal.low_watermark = 500.0;
    cfg.thermal.throttle_factor = 4.0;
    MediaFaultModel model(cfg, 1, GiB, 1);

    // Cold device: no throttle.
    EXPECT_DOUBLE_EQ(model.programMultiplier(0), 1.0);
    EXPECT_FALSE(model.throttling());

    // Heat past the high watermark.
    model.noteProgram(0, 2000);
    EXPECT_TRUE(model.throttling());
    EXPECT_DOUBLE_EQ(model.programMultiplier(0), 4.0);

    // Still above the low watermark after cooling 1000 ns.
    EXPECT_DOUBLE_EQ(model.programMultiplier(1000), 4.0);
    EXPECT_EQ(model.stats().throttle_ns, 1000);

    // Below the low watermark: throttle ends, time accounted.
    EXPECT_DOUBLE_EQ(model.programMultiplier(1600), 1.0);
    EXPECT_FALSE(model.throttling());
    EXPECT_EQ(model.stats().throttle_ns, 1600);
}

} // namespace
} // namespace isol::fault

namespace isol::ssd
{
namespace
{

SsdConfig
tinyFlash()
{
    SsdConfig cfg = samsung980ProLike();
    cfg.user_capacity = 64 * MiB;
    cfg.channels = 2;
    cfg.dies_per_channel = 2;
    cfg.pages_per_block = 32;
    cfg.overprovision = 0.25;
    return cfg;
}

TEST(FtlBadBlocks, GrowRemapsAndRetires)
{
    SsdConfig cfg = tinyFlash();
    Ftl ftl(cfg);
    ftl.preconditionSequentialFill(0.9);
    ASSERT_TRUE(ftl.checkInvariants());

    uint64_t lpn = 1234;
    PhysLoc before = ftl.lookupRead(lpn);
    uint64_t retired = 0;
    // The first candidate block may be an active write point; try a few
    // lpns until one retires.
    while (!ftl.growBadBlock(lpn))
        lpn += 100;
    retired = ftl.badBlocks();
    EXPECT_EQ(retired, 1u);

    std::string error;
    EXPECT_TRUE(ftl.checkInvariants(&error)) << error;

    // The triggering lpn was remapped somewhere else and still resolves.
    PhysLoc after = ftl.lookupRead(lpn);
    bool moved = after.die != before.die || after.block != before.block ||
                 after.page != before.page;
    // (before was looked up for lpn=1234; re-check against the retired
    // lpn's new location only when it is the same lpn)
    if (lpn == 1234) {
        EXPECT_TRUE(moved);
    }
}

TEST(FtlBadBlocks, UnmappedLpnRefused)
{
    SsdConfig cfg = tinyFlash();
    Ftl ftl(cfg); // nothing written
    EXPECT_FALSE(ftl.growBadBlock(7));
    EXPECT_EQ(ftl.badBlocks(), 0u);
}

TEST(FtlBadBlocks, SurvivesGcAfterRetirement)
{
    SsdConfig cfg = tinyFlash();
    Ftl ftl(cfg);
    ftl.preconditionSequentialFill(1.0);
    Rng rng(5);
    ftl.preconditionRandomOverwrite(cfg.numLogicalPages() / 2, rng);

    uint64_t retired = 0;
    for (uint64_t lpn = 0; lpn < cfg.numLogicalPages() && retired < 4;
         lpn += 97) {
        if (ftl.growBadBlock(lpn))
            ++retired;
    }
    ASSERT_GT(retired, 0u);
    EXPECT_EQ(ftl.badBlocks(), retired);

    // GC keeps working with retired blocks out of circulation.
    ftl.preconditionRandomOverwrite(cfg.numLogicalPages(), rng);
    std::string error;
    EXPECT_TRUE(ftl.checkInvariants(&error)) << error;
    EXPECT_EQ(ftl.badBlocks(), retired); // precondition paths grow none
}

TEST(SsdFaults, DisabledByDefaultAllZero)
{
    sim::Simulator sim;
    SsdDevice dev(sim, tinyFlash(), 11);
    int done = 0;
    for (int i = 0; i < 200; ++i)
        dev.submit(OpType::kRead, i * 4096ull, 4096, [&] { ++done; });
    sim.runAll();
    EXPECT_EQ(done, 200);
    EXPECT_EQ(dev.faultStats().read_retries, 0u);
    EXPECT_EQ(dev.faultStats().uncorrectable, 0u);
    EXPECT_EQ(dev.faultStats().remapped_blocks, 0u);
    EXPECT_EQ(dev.faultStats().spike_events, 0u);
    EXPECT_EQ(dev.faultStats().throttle_ns, 0);
    EXPECT_FALSE(dev.throttling());
}

TEST(SsdFaults, MediaErrorsCountAndReproduce)
{
    SsdConfig cfg = tinyFlash();
    cfg.faults.media.enabled = true;
    cfg.faults.media.read_error_prob = 0.2;
    cfg.faults.media.retry_fail_prob = 0.6;
    cfg.faults.media.remap_prob = 0.2;

    auto run = [&](uint64_t seed) {
        sim::Simulator sim;
        SsdDevice dev(sim, cfg, seed);
        dev.precondition(1.0, 0.0);
        int done = 0;
        for (int i = 0; i < 400; ++i)
            dev.submit(OpType::kRead, i * 4096ull, 4096, [&] { ++done; });
        sim.runAll();
        EXPECT_EQ(done, 400);
        return dev.faultStats();
    };

    fault::DeviceFaultStats a = run(21);
    fault::DeviceFaultStats b = run(21);
    EXPECT_EQ(a.read_retries, b.read_retries);
    EXPECT_EQ(a.uncorrectable, b.uncorrectable);
    EXPECT_EQ(a.remapped_blocks, b.remapped_blocks);
    EXPECT_GT(a.read_retries, 0u);

    fault::DeviceFaultStats c = run(22);
    EXPECT_NE(a.read_retries, c.read_retries);
}

TEST(SsdFaults, ThermalThrottleSlowsWrites)
{
    SsdConfig cfg = tinyFlash();
    cfg.faults.thermal.enabled = true;
    // Tiny budget: a handful of programs trips the throttle.
    cfg.faults.thermal.heat_per_busy_ns = 1.0;
    cfg.faults.thermal.cool_rate = 0.05;
    cfg.faults.thermal.high_watermark = 1e6;
    cfg.faults.thermal.low_watermark = 5e5;
    cfg.faults.thermal.throttle_factor = 5.0;

    auto written = [&](bool thermal) {
        SsdConfig c = cfg;
        c.faults.thermal.enabled = thermal;
        sim::Simulator sim;
        SsdDevice dev(sim, c, 5);
        for (int i = 0; i < 512; ++i) {
            dev.submit(OpType::kWrite, i * 4096ull, 4096, [] {});
        }
        sim.runUntil(msToNs(40));
        return dev.ftl().hostPagesWritten();
    };

    uint64_t healthy = written(false);
    uint64_t throttled = written(true);
    EXPECT_LT(throttled, healthy);

    // And the throttle time is accounted.
    sim::Simulator sim;
    SsdDevice dev(sim, cfg, 5);
    for (int i = 0; i < 512; ++i)
        dev.submit(OpType::kWrite, i * 4096ull, 4096, [] {});
    sim.runUntil(msToNs(40));
    EXPECT_GT(dev.faultStats().throttle_ns, 0);
}

} // namespace
} // namespace isol::ssd
