/**
 * @file
 * Property tests for hierarchical cgroup I/O control: weight-split
 * proportionality through interior nodes, interior io.max subtree caps,
 * charge conservation on randomized 3-level trees, and a byte-identical
 * 1024-tenant fleet replay across sweep worker counts.
 *
 * Randomized cases draw from the repo's deterministic xoshiro256++
 * (common/rng.hh) with fixed seeds, so every "random" tree is the same
 * tree on every platform and every run.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "blk/qos_cost.hh"
#include "blk/qos_max.hh"
#include "cgroup/cgroup.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "isolbench/sweep.hh"
#include "sim/invariants.hh"
#include "sim/simulator.hh"
#include "workload/app_profiles.hh"

namespace isol::blk
{
namespace
{

struct HierarchyFixture : public ::testing::Test
{
    HierarchyFixture()
    {
        tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
    }

    cgroup::Cgroup &
    interior(cgroup::Cgroup &parent, const std::string &name)
    {
        cgroup::Cgroup &cg = tree.createChild(parent, name);
        tree.enableIoController(cg);
        return cg;
    }

    cgroup::Cgroup &
    leaf(cgroup::Cgroup &parent, const std::string &name)
    {
        cgroup::Cgroup &cg = tree.createChild(parent, name);
        tree.attachProcess(cg);
        return cg;
    }

    Request *
    makeReq(cgroup::Cgroup *cg, OpType op = OpType::kRead,
            uint32_t size = 4096)
    {
        auto req = std::make_unique<Request>();
        req->op = op;
        req->size = size;
        req->cg = cg;
        req->blk_enter_time = sim.now();
        req->dispatch_time = sim.now();
        reqs.push_back(std::move(req));
        return reqs.back().get();
    }

    sim::Simulator sim;
    cgroup::CgroupTree tree;
    std::vector<std::unique_ptr<Request>> reqs;
};

// --- Weight-split proportionality --------------------------------------

TEST_F(HierarchyFixture, InteriorWeightSplitsAcrossChildSubtrees)
{
    // root -> podA(w=300){a1(w=100), a2(w=300)}, podB(w=100){b1}.
    cgroup::Cgroup &pod_a = interior(tree.root(), "podA");
    cgroup::Cgroup &pod_b = interior(tree.root(), "podB");
    tree.writeFile(pod_a, "io.weight", "300");
    tree.writeFile(pod_b, "io.weight", "100");
    cgroup::Cgroup &a1 = leaf(pod_a, "a1");
    cgroup::Cgroup &a2 = leaf(pod_a, "a2");
    cgroup::Cgroup &b1 = leaf(pod_b, "b1");
    tree.writeFile(a1, "io.weight", "100");
    tree.writeFile(a2, "io.weight", "300");

    IoCostGate gate(sim, 0, tree, [](Request *) {});
    gate.submit(makeReq(&a1));
    gate.submit(makeReq(&a2));
    gate.submit(makeReq(&b1));

    // podA:podB split 3:1; inside podA, a1:a2 split 1:3.
    EXPECT_NEAR(gate.shareOf(&a1), 0.75 * 0.25, 1e-9);
    EXPECT_NEAR(gate.shareOf(&a2), 0.75 * 0.75, 1e-9);
    EXPECT_NEAR(gate.shareOf(&b1), 0.25, 1e-9);
}

TEST_F(HierarchyFixture, IdleSubtreeDoesNotDiluteActiveShares)
{
    // A pod whose leaves never submit must not absorb weight: v2 shares
    // are computed over *active* child subtrees only.
    cgroup::Cgroup &pod_a = interior(tree.root(), "podA");
    cgroup::Cgroup &pod_b = interior(tree.root(), "podB");
    tree.writeFile(pod_a, "io.weight", "100");
    tree.writeFile(pod_b, "io.weight", "900");
    cgroup::Cgroup &a1 = leaf(pod_a, "a1");
    leaf(pod_b, "b1"); // exists but stays idle

    IoCostGate gate(sim, 0, tree, [](Request *) {});
    gate.submit(makeReq(&a1));
    EXPECT_NEAR(gate.shareOf(&a1), 1.0, 1e-9);
}

/** Expected hierarchical share: product of weight / active-sibling-sum
 *  along the chain, computed independently of the gate. */
double
expectedShare(const cgroup::Cgroup &cg,
              const std::vector<cgroup::Cgroup *> &active_leaves)
{
    auto subtree_active = [&](const cgroup::Cgroup &node) {
        for (const cgroup::Cgroup *a_leaf : active_leaves) {
            for (const cgroup::Cgroup *n = a_leaf; n != nullptr;
                 n = n->parent()) {
                if (n == &node)
                    return true;
            }
        }
        return false;
    };
    double share = 1.0;
    for (const cgroup::Cgroup *node = &cg; node->parent() != nullptr;
         node = node->parent()) {
        uint64_t sum = 0;
        for (const cgroup::Cgroup *sib : node->parent()->children()) {
            if (subtree_active(*sib))
                sum += sib->ioWeight();
        }
        share *= static_cast<double>(node->ioWeight()) /
                 static_cast<double>(sum);
    }
    return share;
}

TEST_F(HierarchyFixture, WeightSplitProportionalOnRandomizedTrees)
{
    Rng rng(0xFEED5EEDull);
    for (int round = 0; round < 20; ++round) {
        sim::Simulator local_sim;
        cgroup::CgroupTree local_tree;
        local_tree.writeFile(local_tree.root(),
                             "cgroup.subtree_control", "+io");

        // Random 3-level tree: 2-4 pods, 1-3 racks each, 1-3 leaves.
        std::vector<cgroup::Cgroup *> leaves;
        uint32_t pods = static_cast<uint32_t>(rng.between(2, 4));
        for (uint32_t p = 0; p < pods; ++p) {
            cgroup::Cgroup &pod =
                local_tree.createChild(local_tree.root(), strCat("p", p));
            local_tree.enableIoController(pod);
            local_tree.writeFile(pod, "io.weight",
                                 strCat(rng.between(1, 1000)));
            uint32_t racks = static_cast<uint32_t>(rng.between(1, 3));
            for (uint32_t r = 0; r < racks; ++r) {
                cgroup::Cgroup &rack =
                    local_tree.createChild(pod, strCat("r", r));
                local_tree.enableIoController(rack);
                local_tree.writeFile(rack, "io.weight",
                                     strCat(rng.between(1, 1000)));
                uint32_t n = static_cast<uint32_t>(rng.between(1, 3));
                for (uint32_t l = 0; l < n; ++l) {
                    cgroup::Cgroup &lf =
                        local_tree.createChild(rack, strCat("l", l));
                    local_tree.attachProcess(lf);
                    local_tree.writeFile(lf, "io.weight",
                                         strCat(rng.between(1, 1000)));
                    leaves.push_back(&lf);
                }
            }
        }

        // A random non-empty subset of leaves becomes active.
        std::vector<cgroup::Cgroup *> active;
        for (cgroup::Cgroup *lf : leaves) {
            if (rng.below(2) == 0)
                active.push_back(lf);
        }
        if (active.empty())
            active.push_back(leaves[rng.below(leaves.size())]);

        IoCostGate gate(local_sim, 0, local_tree, [](Request *) {});
        std::vector<std::unique_ptr<Request>> local_reqs;
        for (cgroup::Cgroup *lf : active) {
            auto req = std::make_unique<Request>();
            req->op = OpType::kRead;
            req->size = 4096;
            req->cg = lf;
            gate.submit(req.get());
            local_reqs.push_back(std::move(req));
        }

        double total = 0.0;
        for (cgroup::Cgroup *lf : active) {
            double expect = expectedShare(*lf, active);
            EXPECT_NEAR(gate.shareOf(lf), expect, 1e-9)
                << "round " << round << " leaf " << lf->path();
            total += expect;
        }
        EXPECT_NEAR(total, 1.0, 1e-9) << "round " << round;
    }
}

// --- Interior io.max: shared subtree caps ------------------------------

TEST_F(HierarchyFixture, InteriorIoMaxCapsWholeSubtree)
{
    // pod capped at 4 MiB/s; its two unlimited leaves together must not
    // exceed the shared bucket.
    cgroup::Cgroup &pod = interior(tree.root(), "pod");
    tree.writeFile(pod, "io.max", "259:0 rbps=4194304");
    cgroup::Cgroup &a = leaf(pod, "a");
    cgroup::Cgroup &b = leaf(pod, "b");

    uint64_t passed_bytes = 0;
    IoMaxGate gate(sim, 0, tree,
                   [&](Request *req) { passed_bytes += req->size; });
    for (int i = 0; i < 2048; ++i) {
        gate.submit(makeReq(&a));
        gate.submit(makeReq(&b));
    }
    sim.runUntil(secToNs(int64_t{1}));
    double mibs =
        static_cast<double>(passed_bytes) / static_cast<double>(MiB);
    EXPECT_GT(mibs, 3.2);
    EXPECT_LT(mibs, 4.8);
    EXPECT_GT(gate.throttled(), 0u);
}

TEST_F(HierarchyFixture, TightestAncestorLimitWins)
{
    // grandparent 2 MiB/s, parent 8 MiB/s: the subtree drains at the
    // grandparent's rate regardless of the looser inner limit.
    cgroup::Cgroup &outer = interior(tree.root(), "outer");
    cgroup::Cgroup &inner = interior(outer, "inner");
    tree.writeFile(outer, "io.max", "259:0 rbps=2097152");
    tree.writeFile(inner, "io.max", "259:0 rbps=8388608");
    cgroup::Cgroup &lf = leaf(inner, "leaf");

    uint64_t passed_bytes = 0;
    IoMaxGate gate(sim, 0, tree,
                   [&](Request *req) { passed_bytes += req->size; });
    for (int i = 0; i < 4096; ++i)
        gate.submit(makeReq(&lf));
    sim.runUntil(secToNs(int64_t{1}));
    double mibs =
        static_cast<double>(passed_bytes) / static_cast<double>(MiB);
    EXPECT_GT(mibs, 1.6);
    EXPECT_LT(mibs, 2.5);
}

TEST_F(HierarchyFixture, SiblingSubtreeUnaffectedByCappedPod)
{
    cgroup::Cgroup &capped = interior(tree.root(), "capped");
    tree.writeFile(capped, "io.max", "259:0 riops=100");
    cgroup::Cgroup &free_pod = interior(tree.root(), "free");
    cgroup::Cgroup &c_leaf = leaf(capped, "x");
    cgroup::Cgroup &f_leaf = leaf(free_pod, "y");

    int free_passed = 0;
    IoMaxGate gate(sim, 0, tree, [&](Request *req) {
        free_passed += req->cg == &f_leaf;
    });
    for (int i = 0; i < 200; ++i) {
        gate.submit(makeReq(&c_leaf));
        gate.submit(makeReq(&f_leaf));
    }
    // The uncapped subtree passes everything immediately.
    EXPECT_EQ(free_passed, 200);
}

// --- Charge conservation on randomized trees ---------------------------

TEST_F(HierarchyFixture, ChargeConservationOnRandomizedTrees)
{
    Rng rng(0xC0FFEEull);
    for (int round = 0; round < 10; ++round) {
        sim::Simulator local_sim;
        cgroup::CgroupTree local_tree;
        local_tree.writeFile(local_tree.root(),
                             "cgroup.subtree_control", "+io");
        sim::InvariantChecker inv(strCat("hierarchy-", round));

        std::vector<cgroup::Cgroup *> leaves;
        std::vector<cgroup::Cgroup *> interiors;
        uint32_t pods = static_cast<uint32_t>(rng.between(2, 3));
        for (uint32_t p = 0; p < pods; ++p) {
            cgroup::Cgroup &pod =
                local_tree.createChild(local_tree.root(), strCat("p", p));
            local_tree.enableIoController(pod);
            interiors.push_back(&pod);
            uint32_t racks = static_cast<uint32_t>(rng.between(1, 3));
            for (uint32_t r = 0; r < racks; ++r) {
                cgroup::Cgroup &rack =
                    local_tree.createChild(pod, strCat("r", r));
                local_tree.enableIoController(rack);
                interiors.push_back(&rack);
                uint32_t n = static_cast<uint32_t>(rng.between(1, 3));
                for (uint32_t l = 0; l < n; ++l) {
                    cgroup::Cgroup &lf =
                        local_tree.createChild(rack, strCat("l", l));
                    local_tree.attachProcess(lf);
                    leaves.push_back(&lf);
                }
            }
        }

        IoCostGate gate(local_sim, 0, local_tree, [](Request *) {});
        gate.setInvariants(&inv);
        gate.start();
        std::vector<std::unique_ptr<Request>> local_reqs;
        uint32_t ios = static_cast<uint32_t>(rng.between(50, 200));
        for (uint32_t i = 0; i < ios; ++i) {
            auto req = std::make_unique<Request>();
            req->op = rng.below(2) == 0 ? OpType::kRead : OpType::kWrite;
            req->sequential = rng.below(2) == 0;
            req->size = static_cast<uint32_t>(
                (1 + rng.below(64)) * 4096);
            req->cg = leaves[rng.below(leaves.size())];
            gate.submit(req.get());
            local_reqs.push_back(std::move(req));
        }
        local_sim.runUntil(secToNs(int64_t{2}));

        // Bottom-up conservation: every interior node's subtree charge
        // equals the sum over its children (only leaves submit here).
        for (const cgroup::Cgroup *node : interiors) {
            double child_sum = 0.0;
            for (const cgroup::Cgroup *child : node->children())
                child_sum += gate.subtreeAbsOf(child);
            EXPECT_NEAR(gate.subtreeAbsOf(node), child_sum,
                        1e-6 + 1e-9 * child_sum)
                << "round " << round << " node " << node->path();
        }

        // And the gate's own oracle agrees (throws on violation).
        EXPECT_NO_THROW(gate.checkHierarchicalCharges());
        EXPECT_GT(inv.checksPerformed(), 0u);
    }
}

TEST_F(HierarchyFixture, IoMaxHierarchicalConsumptionConserved)
{
    cgroup::Cgroup &pod = interior(tree.root(), "pod");
    tree.writeFile(pod, "io.max", "259:0 rbps=8388608");
    cgroup::Cgroup &a = leaf(pod, "a");
    cgroup::Cgroup &b = leaf(pod, "b");

    sim::InvariantChecker inv("iomax-hier");
    IoMaxGate gate(sim, 0, tree, [](Request *) {});
    gate.setInvariants(&inv);
    for (int i = 0; i < 512; ++i) {
        gate.submit(makeReq(&a));
        gate.submit(makeReq(&b));
    }
    sim.runUntil(secToNs(int64_t{1}));

    EXPECT_EQ(gate.consumedBytesOf(&pod),
              gate.consumedBytesOf(&a) + gate.consumedBytesOf(&b));
    EXPECT_NO_THROW(gate.verifyHierarchicalConsumption());
}

// --- 1024-tenant fleet replay ------------------------------------------

/** Leaf path for tenant `i` in a 4-level tree with 8 pods. */
std::string
fleetPath(uint32_t i)
{
    return strCat("pod", i % 8, "/rack", (i / 8) % 4, "/row",
                  (i / 32) % 2, "/t", i);
}

/** One 1024-tenant, 4-level fleet scenario; exact-metrics fingerprint. */
std::string
fleetFingerprint(uint64_t seed)
{
    using namespace isol::isolbench;
    ScenarioConfig cfg;
    cfg.name = strCat("fleet-replay-", seed);
    cfg.knob = Knob::kIoCost;
    cfg.num_cores = 16;
    cfg.duration = msToNs(80);
    cfg.warmup = msToNs(20);
    cfg.seed = seed;

    Scenario s(cfg);
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
    for (uint32_t i = 0; i < 1024; ++i) {
        workload::JobSpec spec;
        if (rng.below(2) == 0) {
            spec = workload::lcApp(strCat("lc", i), cfg.duration);
        } else {
            spec = workload::batchApp(strCat("batch", i), cfg.duration);
            spec.iodepth = static_cast<uint32_t>(rng.between(2, 4));
        }
        spec.seed = seed + i * 7919 + 17;
        uint32_t app = s.addApp(std::move(spec), fleetPath(i));
        s.tree().writeFile(s.appGroup(app), "io.weight",
                           strCat(rng.between(50, 200)));
    }
    s.run();

    std::string print;
    uint64_t bytes = 0;
    uint64_t ios = 0;
    for (uint32_t i = 0; i < s.numApps(); ++i) {
        bytes += s.app(i).windowBytes();
        ios += s.app(i).totalIos();
    }
    print += strCat("bytes=", bytes, " ios=", ios,
                    " events=", s.sim().eventsExecuted());
    uint64_t bookkeeping = 0;
    for (uint32_t d = 0; d < s.numDevices(); ++d)
        bookkeeping += s.device(d).gateBookkeepingOps();
    print += strCat(" bookkeeping=", bookkeeping);
    return print;
}

TEST(FleetReplay, ByteIdenticalAcrossJobs)
{
    auto fingerprints = [](uint32_t jobs) {
        return isolbench::sweep::map<std::string>(
            2, [](size_t i) { return fleetFingerprint(23 + i * 101); },
            jobs);
    };
    std::vector<std::string> jobs1 = fingerprints(1);
    std::vector<std::string> jobs2 = fingerprints(2);
    std::vector<std::string> jobs8 = fingerprints(8);
    EXPECT_EQ(jobs1, jobs2);
    EXPECT_EQ(jobs1, jobs8);
    for (const std::string &fp : jobs1) {
        EXPECT_NE(fp.find("events="), std::string::npos);
        EXPECT_NE(fp.find("bookkeeping="), std::string::npos);
    }
}

} // namespace
} // namespace isol::blk
