/**
 * @file
 * Unit tests for the host CPU model and the storage-engine cost model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "host/cpu.hh"
#include "host/engine.hh"
#include "sim/simulator.hh"

namespace isol::host
{
namespace
{

TEST(CpuCore, SerializesWork)
{
    sim::Simulator sim;
    CpuCore core(sim, 0);
    std::vector<SimTime> done;
    core.charge(1, 100, [&] { done.push_back(sim.now()); });
    core.charge(2, 50, [&] { done.push_back(sim.now()); });
    sim.runAll();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 100);
    EXPECT_EQ(done[1], 150);
    EXPECT_EQ(core.busyNs(), 150);
}

TEST(CpuCore, IdleGapsNotBusy)
{
    sim::Simulator sim;
    CpuCore core(sim, 0);
    core.charge(1, 10, [] {});
    sim.at(1000, [&] { core.charge(1, 10, [] {}); });
    sim.runAll();
    EXPECT_EQ(core.busyNs(), 20);
    EXPECT_EQ(sim.now(), 1010);
}

TEST(CpuCore, ContextSwitchesCountOwnerChanges)
{
    sim::Simulator sim;
    CpuCore core(sim, 0);
    core.charge(1, 10, [] {});
    core.charge(1, 10, [] {}); // same owner: no switch
    core.charge(2, 10, [] {}); // switch
    core.charge(1, 10, [] {}); // switch
    sim.runAll();
    // Initial owner is kKernelTask, so the first charge also switches.
    EXPECT_EQ(core.contextSwitches(), 3u);
    EXPECT_EQ(core.workItems(), 4u);
}

TEST(CpuCore, BacklogReflectsQueuedWork)
{
    sim::Simulator sim;
    CpuCore core(sim, 0);
    EXPECT_EQ(core.backlog(), 0);
    core.charge(1, 500, [] {});
    core.charge(1, 500, [] {});
    EXPECT_EQ(core.backlog(), 1000);
}

TEST(CpuSet, RoundRobinAssignment)
{
    sim::Simulator sim;
    CpuSet cpus(sim, 3);
    EXPECT_EQ(cpus.assign().id(), 0u);
    EXPECT_EQ(cpus.assign().id(), 1u);
    EXPECT_EQ(cpus.assign().id(), 2u);
    EXPECT_EQ(cpus.assign().id(), 0u);
}

TEST(CpuSet, Aggregates)
{
    sim::Simulator sim;
    CpuSet cpus(sim, 2);
    cpus.core(0).charge(1, 100, [] {});
    cpus.core(1).charge(2, 200, [] {});
    sim.runAll();
    EXPECT_EQ(cpus.totalBusyNs(), 300);
    EXPECT_EQ(cpus.totalContextSwitches(), 2u);
}

TEST(CpuSet, RejectsZeroCores)
{
    sim::Simulator sim;
    EXPECT_THROW(CpuSet(sim, 0), FatalError);
}

TEST(Engine, Qd1PaysFullSyscalls)
{
    EngineConfig uring = ioUringEngine();
    SimTime qd1 = uring.submitCost(1) + uring.completeCost(1);
    // per_io + 2 * syscall.
    EXPECT_EQ(qd1, uring.per_io_cost + 2 * uring.syscall_cost);
}

TEST(Engine, DeepQueuesAmortise)
{
    EngineConfig uring = ioUringEngine();
    SimTime qd1 = uring.submitCost(1) + uring.completeCost(1);
    SimTime qd256 = uring.submitCost(256) + uring.completeCost(256);
    EXPECT_LT(qd256, qd1 / 2);
    // Amortisation saturates at max_batch.
    EXPECT_EQ(uring.submitCost(256), uring.submitCost(uring.max_batch));
}

TEST(Engine, CostMonotoneInQd)
{
    EngineConfig uring = ioUringEngine();
    SimTime prev = kSimTimeMax;
    for (uint32_t qd : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        SimTime cost = uring.submitCost(qd) + uring.completeCost(qd);
        EXPECT_LE(cost, prev);
        prev = cost;
    }
}

TEST(Engine, LibaioCostlierThanUring)
{
    EngineConfig uring = ioUringEngine();
    EngineConfig aio = libaioEngine();
    EXPECT_GT(aio.submitCost(1) + aio.completeCost(1),
              uring.submitCost(1) + uring.completeCost(1));
}

} // namespace
} // namespace isol::host
