/**
 * @file
 * Self-test for the isol-lint rule engine against the known-bad /
 * known-good fixture corpus (tools/isol_lint/fixtures/), plus lexer
 * unit tests and the cross-file D1 contract (declaration in a header,
 * iteration in a .cc).
 *
 * Fixtures are linted under a synthetic `src/fixtures/` path so rules
 * that are scoped to simulation code (D4) apply to them.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "cache.hh"
#include "lint.hh"

namespace
{

using isol_lint::FileInput;
using isol_lint::Finding;
using isol_lint::LintResult;
using isol_lint::TokKind;

std::string
readFixture(const std::string &name)
{
    std::string path = std::string(ISOL_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

LintResult
lintFixture(const std::string &name)
{
    return isol_lint::lintFiles(
        {{"src/fixtures/" + name, readFixture(name)}});
}

std::string
describe(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings) {
        out += f.file + ":" + std::to_string(f.line) + " [" + f.rule +
               "] " + f.message + "\n";
    }
    return out;
}

// --- Lexer -------------------------------------------------------------

TEST(LintLexer, TokensCarryKindsAndLines)
{
    auto toks = isol_lint::tokenize(
        "int x = 42; // note\n\"str\" 'c' a->b\n");
    ASSERT_GE(toks.size(), 9u);
    EXPECT_EQ(toks[0].kind, TokKind::kIdent);
    EXPECT_EQ(toks[0].text, "int");
    EXPECT_EQ(toks[3].kind, TokKind::kNumber);
    EXPECT_EQ(toks[5].kind, TokKind::kComment);
    EXPECT_EQ(toks[6].kind, TokKind::kString);
    EXPECT_EQ(toks[6].line, 2);
    EXPECT_EQ(toks[7].kind, TokKind::kChar);
    // a -> b merged as one punct
    EXPECT_EQ(toks[9].text, "->");
}

TEST(LintLexer, SkipsPreprocessorAndRawStrings)
{
    auto toks = isol_lint::tokenize(
        "#include <ctime>\n#define T time(nullptr) \\\n  + 1\n"
        "auto s = R\"x(rand() time())x\";\n");
    for (const auto &t : toks) {
        if (t.kind == TokKind::kIdent) {
            EXPECT_NE(t.text, "time");
            EXPECT_NE(t.text, "rand");
        }
    }
    bool saw_raw = false;
    for (const auto &t : toks)
        saw_raw = saw_raw || (t.kind == TokKind::kString &&
                              t.text.find("rand()") != std::string::npos);
    EXPECT_TRUE(saw_raw);
}

TEST(LintLexer, BlockCommentLineAccounting)
{
    auto toks = isol_lint::tokenize("/* a\nb\nc */ int y;\n");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokKind::kComment);
    EXPECT_EQ(toks[1].text, "int");
    EXPECT_EQ(toks[1].line, 3);
}

// --- Fixture corpus: each rule flags its bad file, passes its good ----

struct RuleCase
{
    const char *rule;
    const char *bad;
    const char *good;
};

class LintFixture : public ::testing::TestWithParam<RuleCase>
{
};

TEST_P(LintFixture, BadFixtureFlagsOnlyItsRule)
{
    const RuleCase &rc = GetParam();
    LintResult result = lintFixture(rc.bad);
    ASSERT_FALSE(result.findings.empty())
        << rc.bad << " should trigger " << rc.rule;
    for (const Finding &f : result.findings) {
        EXPECT_EQ(f.rule, rc.rule)
            << "unexpected cross-rule finding in " << rc.bad << ":\n"
            << describe(result.findings);
        EXPECT_FALSE(f.message.empty());
        EXPECT_FALSE(f.hint.empty());
        EXPECT_GT(f.line, 0);
    }
}

TEST_P(LintFixture, GoodFixtureIsClean)
{
    const RuleCase &rc = GetParam();
    LintResult result = lintFixture(rc.good);
    EXPECT_TRUE(result.findings.empty())
        << rc.good << " should lint clean but got:\n"
        << describe(result.findings);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixture,
    ::testing::Values(
        RuleCase{"D1", "d1_bad.cc", "d1_good.cc"},
        RuleCase{"D2", "d2_bad.cc", "d2_good.cc"},
        RuleCase{"D3", "d3_bad.cc", "d3_good.cc"},
        RuleCase{"D4", "d4_bad.cc", "d4_good.cc"},
        RuleCase{"D5", "d5_bad.cc", "d5_good.cc"},
        RuleCase{"D2", "supervisor_bad.cc", "supervisor_good.cc"},
        RuleCase{"P1", "p1_bad.cc", "p1_good.cc"},
        RuleCase{"P2", "p2_bad.cc", "p2_good.cc"},
        RuleCase{"P3", "p3_bad.cc", "p3_good.cc"},
        RuleCase{"U1", "u1_bad.cc", "u1_good.cc"}),
    [](const ::testing::TestParamInfo<RuleCase> &info) {
        // Derive a unique suite name from the bad fixture's basename so
        // two cases exercising the same rule (d2 / supervisor) don't
        // collide.
        std::string name;
        for (const char *p = info.param.bad; *p && *p != '.'; ++p) {
            if ((*p >= 'a' && *p <= 'z') || (*p >= 'A' && *p <= 'Z') ||
                (*p >= '0' && *p <= '9'))
                name += *p;
        }
        return name;
    });

// --- Specific rule behaviours -----------------------------------------

TEST(LintRules, D1FlagsDeclarationAndIterationSeparately)
{
    LintResult result = lintFixture("d1_bad.cc");
    size_t decls = 0;
    size_t iters = 0;
    for (const Finding &f : result.findings) {
        if (f.message.find("is a pointer-keyed") != std::string::npos)
            ++decls;
        if (f.message.find("range-for over") != std::string::npos ||
            f.message.find("iterator walk over") != std::string::npos)
            ++iters;
    }
    EXPECT_EQ(decls, 2u); // vtimes_ and active_
    EXPECT_EQ(iters, 2u); // range-for and .begin() walk
}

TEST(LintRules, D1CrossFileHeaderDeclarationCcIteration)
{
    const char *header =
        "#include <unordered_map>\n"
        "struct Cg;\n"
        "struct Gate {\n"
        "    std::unordered_map<const Cg *, int> "
        "vt_; // isol-lint: allow(D1): fixture\n"
        "};\n";
    const char *impl = "#include \"gate.hh\"\n"
                       "int Gate_sum(Gate &g) {\n"
                       "    int s = 0;\n"
                       "    for (auto &e : g.vt_)\n"
                       "        s += e.second;\n"
                       "    return s;\n"
                       "}\n";
    LintResult result = isol_lint::lintFiles(
        {{"src/gate.hh", header}, {"src/gate.cc", impl}});
    ASSERT_EQ(result.findings.size(), 1u) << describe(result.findings);
    EXPECT_EQ(result.findings[0].rule, "D1");
    EXPECT_EQ(result.findings[0].file, "src/gate.cc");
    EXPECT_EQ(result.findings[0].line, 4);
    EXPECT_NE(result.findings[0].message.find("src/gate.hh:4"),
              std::string::npos);
    ASSERT_EQ(result.suppressed.size(), 1u); // the declaration allow
}

// A deque member that merely shares its name with a pointer-keyed map in
// another class must not be blamed for that map's declaration (the
// qos_max/qos_cost `states_` collision found while dogfooding the tool).
TEST(LintRules, D1SameNameBenignContainerInOtherFileIsNotFlagged)
{
    const char *ptr_header =
        "#include <unordered_map>\n"
        "struct Cg;\n"
        "struct MaxGate {\n"
        "    std::unordered_map<const Cg *, int> "
        "states_; // isol-lint: allow(D1): fixture\n"
        "};\n";
    const char *deque_impl = "#include <deque>\n"
                             "struct CostGate {\n"
                             "    std::deque<int> states_;\n"
                             "    int sum() {\n"
                             "        int s = 0;\n"
                             "        for (int v : states_)\n"
                             "            s += v;\n"
                             "        return s;\n"
                             "    }\n"
                             "};\n";
    LintResult result = isol_lint::lintFiles(
        {{"src/max_gate.hh", ptr_header}, {"src/cost_gate.cc", deque_impl}});
    EXPECT_TRUE(result.findings.empty()) << describe(result.findings);
    ASSERT_EQ(result.suppressed.size(), 1u); // the declaration allow
}

// Ambiguity is scoped: iteration in the *same* file as the pointer-keyed
// declaration still flags even when the name is also a deque elsewhere.
TEST(LintRules, D1AmbiguousNameStillFlagsInDeclaringFile)
{
    const char *ptr_impl =
        "#include <unordered_map>\n"
        "struct Cg;\n"
        "struct MaxGate {\n"
        "    std::unordered_map<const Cg *, int> "
        "states_; // isol-lint: allow(D1): fixture\n"
        "    int sum() {\n"
        "        int s = 0;\n"
        "        for (auto &e : states_)\n"
        "            s += e.second;\n"
        "        return s;\n"
        "    }\n"
        "};\n";
    const char *deque_header = "#include <deque>\n"
                               "struct CostGate {\n"
                               "    std::deque<int> states_;\n"
                               "};\n";
    LintResult result = isol_lint::lintFiles(
        {{"src/max_gate.cc", ptr_impl}, {"src/cost_gate.hh", deque_header}});
    ASSERT_EQ(result.findings.size(), 1u) << describe(result.findings);
    EXPECT_EQ(result.findings[0].rule, "D1");
    EXPECT_EQ(result.findings[0].file, "src/max_gate.cc");
    EXPECT_EQ(result.findings[0].line, 7);
}

TEST(LintRules, D2ExemptsTheRngHeader)
{
    const char *content = "#include <random>\n"
                          "struct Seeder { int s = 0; };\n"
                          "int ambient() { std::random_device rd; "
                          "return static_cast<int>(rd()); }\n";
    LintResult in_rng = isol_lint::lintFiles(
        {{"src/common/rng.hh", content}});
    EXPECT_TRUE(in_rng.findings.empty()) << describe(in_rng.findings);

    LintResult elsewhere = isol_lint::lintFiles(
        {{"src/sim/clock.hh", content}});
    ASSERT_FALSE(elsewhere.findings.empty());
    EXPECT_EQ(elsewhere.findings[0].rule, "D2");
}

TEST(LintRules, D4OnlyAppliesUnderSrc)
{
    const char *content = "namespace n {\nint g_count = 0;\n}\n";
    LintResult in_src =
        isol_lint::lintFiles({{"src/sim/state.cc", content}});
    ASSERT_EQ(in_src.findings.size(), 1u) << describe(in_src.findings);
    EXPECT_EQ(in_src.findings[0].rule, "D4");
    EXPECT_EQ(in_src.findings[0].line, 2);

    LintResult in_bench =
        isol_lint::lintFiles({{"bench/state.cc", content}});
    EXPECT_TRUE(in_bench.findings.empty())
        << describe(in_bench.findings);
}

TEST(LintRules, SuppressionFixtureIsCleanButRecorded)
{
    LintResult result = lintFixture("suppressed.cc");
    EXPECT_TRUE(result.findings.empty()) << describe(result.findings);
    EXPECT_GE(result.suppressed.size(), 2u);
    for (const Finding &f : result.suppressed)
        EXPECT_EQ(f.rule, "D2");
}

TEST(LintRules, SuppressionIsRuleSpecific)
{
    const char *content =
        "namespace n {\n"
        "// isol-lint: allow(D2): wrong rule for this hazard\n"
        "int g_count = 0;\n"
        "}\n";
    LintResult result =
        isol_lint::lintFiles({{"src/sim/state.cc", content}});
    ASSERT_EQ(result.findings.size(), 1u) << describe(result.findings);
    EXPECT_EQ(result.findings[0].rule, "D4");
}

TEST(LintRules, RuleTableListsAllNineRules)
{
    std::set<std::string> ids;
    for (const isol_lint::RuleInfo &r : isol_lint::ruleTable())
        ids.insert(r.id);
    EXPECT_EQ(ids, (std::set<std::string>{"D1", "D2", "D3", "D4", "D5",
                                          "P1", "P2", "P3", "U1"}));
}

TEST(LintRules, FindingsAreSortedAndDeterministic)
{
    std::vector<FileInput> inputs = {
        {"src/b.cc", "namespace n { int g_b = 0; int g_a = 0; }\n"},
        {"src/a.cc", "namespace n { int g_c = 0; }\n"},
    };
    LintResult first = isol_lint::lintFiles(inputs);
    LintResult second = isol_lint::lintFiles(inputs);
    ASSERT_EQ(first.findings.size(), 3u);
    EXPECT_EQ(first.findings[0].file, "src/a.cc");
    for (size_t i = 0; i < first.findings.size(); ++i) {
        EXPECT_EQ(first.findings[i].message,
                  second.findings[i].message);
    }
}

// --- Cross-TU P-rules: ownership map x include-graph reachability -----

// A blk-domain global referenced from an ssd-domain file is only a P1
// when the referencing file can actually see the declaration through
// the include graph; an unrelated file using the same name is clean.
TEST(LintCrossTU, P1RequiresIncludeGraphReachability)
{
    const char *owner =
        "// isol: domain(blk)\n"
        "namespace blk {\n"
        "int active_queues = 0; // isol-lint: allow(D4): test global\n"
        "}\n";
    const char *trespasser =
        "// isol: domain(ssd)\n"
        "#include \"blk/state.hh\"\n"
        "int probe() { return blk::active_queues; }\n";
    const char *unrelated =
        "// isol: domain(ssd)\n"
        "int local() { int active_queues = 3; return active_queues; }\n";
    LintResult result = isol_lint::lintFiles({
        {"src/blk/state.hh", owner},
        {"src/ssd/probe.cc", trespasser},
        {"src/ssd/local.cc", unrelated},
    });
    ASSERT_EQ(result.findings.size(), 1u) << describe(result.findings);
    EXPECT_EQ(result.findings[0].rule, "P1");
    EXPECT_EQ(result.findings[0].file, "src/ssd/probe.cc");
    EXPECT_NE(result.findings[0].message.find("src/blk/state.hh:3"),
              std::string::npos);
}

// Reachability is transitive: the trespass also fires through an
// intermediate header, and a shared() declaration sanctions it.
TEST(LintCrossTU, P1TransitiveIncludeAndSharedSanction)
{
    const char *owner =
        "// isol: domain(blk)\n"
        "namespace blk {\n"
        "int gate_debt = 0; // isol-lint: allow(D4): test global\n"
        "// isol: shared(merge-layer epoch)\n"
        "int merge_epoch = 0; // isol-lint: allow(D4): test global\n"
        "}\n";
    const char *middle = "#include \"blk/state.hh\"\n";
    const char *user =
        "// isol: domain(ssd)\n"
        "#include \"blk/api.hh\"\n"
        "int probe() { return blk::gate_debt + blk::merge_epoch; }\n";
    LintResult result = isol_lint::lintFiles({
        {"src/blk/state.hh", owner},
        {"src/blk/api.hh", middle},
        {"src/ssd/probe.cc", user},
    });
    ASSERT_EQ(result.findings.size(), 1u) << describe(result.findings);
    EXPECT_EQ(result.findings[0].rule, "P1");
    EXPECT_NE(result.findings[0].message.find("gate_debt"),
              std::string::npos);
}

TEST(LintCrossTU, P2FlagsNamedCaptureOfForeignState)
{
    const char *owner =
        "// isol: domain(blk)\n"
        "namespace blk {\n"
        "int inflight = 0; // isol-lint: allow(D4): test global\n"
        "}\n";
    const char *capturer =
        "// isol: domain(ssd)\n"
        "#include \"blk/state.hh\"\n"
        "#include <functional>\n"
        "struct S { void after(long long d, std::function<void()> f); };\n"
        "void arm(S &s) {\n"
        "    using blk::inflight;\n"
        "    long long d_ns = 1;\n"
        "    s.after(d_ns, [&inflight] { ++inflight; });\n"
        "}\n";
    LintResult result = isol_lint::lintFiles({
        {"src/blk/state.hh", owner},
        {"src/ssd/arm.cc", capturer},
    });
    // The uses of the foreign symbol also fire P1 (correctly); the
    // capture itself must additionally fire P2 on the capture line.
    size_t p2 = 0;
    for (const Finding &f : result.findings) {
        EXPECT_TRUE(f.rule == "P1" || f.rule == "P2")
            << describe(result.findings);
        if (f.rule == "P2") {
            ++p2;
            EXPECT_EQ(f.line, 8);
            EXPECT_NE(f.message.find("inflight"), std::string::npos);
        }
    }
    EXPECT_EQ(p2, 1u) << describe(result.findings);
}

// --- Rule-family selection and the unused-suppression report ----------

TEST(LintOptions, FamilySelectionScopesRulesAndStaleReports)
{
    // One D4 hazard plus one stale U1 allow; with only the U family
    // enabled, the D4 never fires and only the U1 staleness reports.
    const char *content =
        "namespace n {\n"
        "int g_count = 0;\n"
        "// isol-lint: allow(U1): never matched anything\n"
        "int g_other = 0; // isol-lint: allow(D4): justified\n"
        "}\n";
    isol_lint::LintOptions u_only;
    u_only.families = {'U'};
    LintResult result = isol_lint::lintFiles(
        {{"src/sim/state.cc", content}}, u_only);
    EXPECT_TRUE(result.findings.empty()) << describe(result.findings);
    ASSERT_EQ(result.unused_suppressions.size(), 1u);
    EXPECT_EQ(result.unused_suppressions[0].rule, "U1");
    EXPECT_EQ(result.unused_suppressions[0].line, 3);

    // Full families: the D4 on g_count fires, the allow(D4) on g_other
    // is used, and the U1 allow is still stale.
    LintResult full = isol_lint::lintFiles(
        {{"src/sim/state.cc", content}});
    ASSERT_EQ(full.findings.size(), 1u) << describe(full.findings);
    EXPECT_EQ(full.findings[0].rule, "D4");
    ASSERT_EQ(full.unused_suppressions.size(), 1u);
    EXPECT_EQ(full.unused_suppressions[0].rule, "U1");
}

TEST(LintOptions, UsedSuppressionIsNotReportedStale)
{
    const char *content =
        "namespace n {\n"
        "int g_count = 0; // isol-lint: allow(D4): justified\n"
        "}\n";
    LintResult result =
        isol_lint::lintFiles({{"src/sim/state.cc", content}});
    EXPECT_TRUE(result.findings.empty()) << describe(result.findings);
    EXPECT_TRUE(result.unused_suppressions.empty());
    ASSERT_EQ(result.suppressed.size(), 1u);
}

// --- Thread-pool determinism ------------------------------------------

TEST(LintParallel, FindingOrderIsIdenticalForAnyJobCount)
{
    // A mixed corpus exercising cross-file joins (D1 declaration in one
    // file, iteration in another) plus the new fixture pairs.
    std::vector<FileInput> inputs;
    for (const char *name :
         {"d1_bad.cc", "d2_bad.cc", "d4_bad.cc", "d5_bad.cc",
          "p1_bad.cc", "p2_bad.cc", "p3_bad.cc", "u1_bad.cc",
          "suppressed.cc"})
        inputs.push_back({"src/fixtures/" + std::string(name),
                          readFixture(name)});

    isol_lint::LintOptions serial;
    serial.jobs = 1;
    isol_lint::LintOptions pooled;
    pooled.jobs = 4;
    LintResult a = isol_lint::lintFiles(inputs, serial);
    LintResult b = isol_lint::lintFiles(inputs, pooled);
    ASSERT_FALSE(a.findings.empty());
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].file, b.findings[i].file);
        EXPECT_EQ(a.findings[i].line, b.findings[i].line);
        EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
        EXPECT_EQ(a.findings[i].message, b.findings[i].message);
    }
    EXPECT_EQ(a.suppressed.size(), b.suppressed.size());
    EXPECT_EQ(a.unused_suppressions.size(),
              b.unused_suppressions.size());
}

// --- Incremental cache correctness ------------------------------------

TEST(LintCache, RoundTripEditInvalidatesTouchHits)
{
    std::vector<FileInput> inputs = {
        {"src/a.cc", "namespace n { int g_state = 0; }\n"}};
    std::vector<isol_lint::FileStat> stats = {
        {"src/a.cc", 111, inputs[0].content.size()}};
    isol_lint::LintOptions opts;
    const unsigned long long tool = isol_lint::toolDigest(opts);
    LintResult result = isol_lint::lintFiles(inputs, opts);
    ASSERT_EQ(result.findings.size(), 1u); // the D4 on g_state

    isol_lint::LintCache cache =
        isol_lint::makeCache(tool, stats, inputs, result);
    const std::string path =
        ::testing::TempDir() + "isol_lint_cache_test.txt";
    ASSERT_TRUE(isol_lint::saveCache(path, cache));
    isol_lint::LintCache loaded;
    ASSERT_TRUE(isol_lint::loadCache(path, loaded));
    EXPECT_EQ(loaded.tool_digest, tool);
    ASSERT_EQ(loaded.result.findings.size(), 1u);
    EXPECT_EQ(loaded.result.findings[0].message,
              result.findings[0].message);
    EXPECT_EQ(loaded.result.findings[0].hint, result.findings[0].hint);

    // Unchanged tree: hits on stat alone.
    EXPECT_TRUE(isol_lint::statHit(loaded, tool, stats));

    // Touch without edit: the mtime moved, so the stat probe misses,
    // but the content digests still match.
    std::vector<isol_lint::FileStat> touched = stats;
    touched[0].mtime_ns = 222;
    EXPECT_FALSE(isol_lint::statHit(loaded, tool, touched));
    EXPECT_TRUE(isol_lint::digestHit(loaded, tool, inputs));

    // Edit: content changed, digest probe misses too.
    std::vector<FileInput> edited = inputs;
    edited[0].content += "// edited\n";
    EXPECT_FALSE(isol_lint::digestHit(loaded, tool, edited));

    // Different rule families key a different cache entirely.
    isol_lint::LintOptions d_only;
    d_only.families = {'D'};
    const unsigned long long other = isol_lint::toolDigest(d_only);
    EXPECT_NE(other, tool);
    EXPECT_FALSE(isol_lint::statHit(loaded, other, stats));
    EXPECT_FALSE(isol_lint::digestHit(loaded, other, inputs));

    // A new file invalidates the whole-tree cache (rules are
    // whole-program: one new file can change findings elsewhere).
    std::vector<FileInput> grown = inputs;
    grown.push_back({"src/b.cc", "int probe();\n"});
    EXPECT_FALSE(isol_lint::digestHit(loaded, tool, grown));
}

// --- SARIF golden round-trip ------------------------------------------

TEST(LintSarif, MatchesGoldenFile)
{
    LintResult result = isol_lint::lintFiles(
        {{"tools/isol_lint/fixtures/sarif_input.cc",
          readFixture("sarif_input.cc")}});
    EXPECT_EQ(isol_lint::sarifReport(result),
              readFixture("golden.sarif"));
}

} // namespace
