/**
 * @file
 * Self-test for the isol-lint rule engine against the known-bad /
 * known-good fixture corpus (tools/isol_lint/fixtures/), plus lexer
 * unit tests and the cross-file D1 contract (declaration in a header,
 * iteration in a .cc).
 *
 * Fixtures are linted under a synthetic `src/fixtures/` path so rules
 * that are scoped to simulation code (D4) apply to them.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "lint.hh"

namespace
{

using isol_lint::FileInput;
using isol_lint::Finding;
using isol_lint::LintResult;
using isol_lint::TokKind;

std::string
readFixture(const std::string &name)
{
    std::string path = std::string(ISOL_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

LintResult
lintFixture(const std::string &name)
{
    return isol_lint::lintFiles(
        {{"src/fixtures/" + name, readFixture(name)}});
}

std::string
describe(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings) {
        out += f.file + ":" + std::to_string(f.line) + " [" + f.rule +
               "] " + f.message + "\n";
    }
    return out;
}

// --- Lexer -------------------------------------------------------------

TEST(LintLexer, TokensCarryKindsAndLines)
{
    auto toks = isol_lint::tokenize(
        "int x = 42; // note\n\"str\" 'c' a->b\n");
    ASSERT_GE(toks.size(), 9u);
    EXPECT_EQ(toks[0].kind, TokKind::kIdent);
    EXPECT_EQ(toks[0].text, "int");
    EXPECT_EQ(toks[3].kind, TokKind::kNumber);
    EXPECT_EQ(toks[5].kind, TokKind::kComment);
    EXPECT_EQ(toks[6].kind, TokKind::kString);
    EXPECT_EQ(toks[6].line, 2);
    EXPECT_EQ(toks[7].kind, TokKind::kChar);
    // a -> b merged as one punct
    EXPECT_EQ(toks[9].text, "->");
}

TEST(LintLexer, SkipsPreprocessorAndRawStrings)
{
    auto toks = isol_lint::tokenize(
        "#include <ctime>\n#define T time(nullptr) \\\n  + 1\n"
        "auto s = R\"x(rand() time())x\";\n");
    for (const auto &t : toks) {
        if (t.kind == TokKind::kIdent) {
            EXPECT_NE(t.text, "time");
            EXPECT_NE(t.text, "rand");
        }
    }
    bool saw_raw = false;
    for (const auto &t : toks)
        saw_raw = saw_raw || (t.kind == TokKind::kString &&
                              t.text.find("rand()") != std::string::npos);
    EXPECT_TRUE(saw_raw);
}

TEST(LintLexer, BlockCommentLineAccounting)
{
    auto toks = isol_lint::tokenize("/* a\nb\nc */ int y;\n");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokKind::kComment);
    EXPECT_EQ(toks[1].text, "int");
    EXPECT_EQ(toks[1].line, 3);
}

// --- Fixture corpus: each rule flags its bad file, passes its good ----

struct RuleCase
{
    const char *rule;
    const char *bad;
    const char *good;
};

class LintFixture : public ::testing::TestWithParam<RuleCase>
{
};

TEST_P(LintFixture, BadFixtureFlagsOnlyItsRule)
{
    const RuleCase &rc = GetParam();
    LintResult result = lintFixture(rc.bad);
    ASSERT_FALSE(result.findings.empty())
        << rc.bad << " should trigger " << rc.rule;
    for (const Finding &f : result.findings) {
        EXPECT_EQ(f.rule, rc.rule)
            << "unexpected cross-rule finding in " << rc.bad << ":\n"
            << describe(result.findings);
        EXPECT_FALSE(f.message.empty());
        EXPECT_FALSE(f.hint.empty());
        EXPECT_GT(f.line, 0);
    }
}

TEST_P(LintFixture, GoodFixtureIsClean)
{
    const RuleCase &rc = GetParam();
    LintResult result = lintFixture(rc.good);
    EXPECT_TRUE(result.findings.empty())
        << rc.good << " should lint clean but got:\n"
        << describe(result.findings);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixture,
    ::testing::Values(
        RuleCase{"D1", "d1_bad.cc", "d1_good.cc"},
        RuleCase{"D2", "d2_bad.cc", "d2_good.cc"},
        RuleCase{"D3", "d3_bad.cc", "d3_good.cc"},
        RuleCase{"D4", "d4_bad.cc", "d4_good.cc"},
        RuleCase{"D5", "d5_bad.cc", "d5_good.cc"},
        RuleCase{"D2", "supervisor_bad.cc", "supervisor_good.cc"}),
    [](const ::testing::TestParamInfo<RuleCase> &info) {
        // Derive a unique suite name from the bad fixture's basename so
        // two cases exercising the same rule (d2 / supervisor) don't
        // collide.
        std::string name;
        for (const char *p = info.param.bad; *p && *p != '.'; ++p) {
            if ((*p >= 'a' && *p <= 'z') || (*p >= 'A' && *p <= 'Z') ||
                (*p >= '0' && *p <= '9'))
                name += *p;
        }
        return name;
    });

// --- Specific rule behaviours -----------------------------------------

TEST(LintRules, D1FlagsDeclarationAndIterationSeparately)
{
    LintResult result = lintFixture("d1_bad.cc");
    size_t decls = 0;
    size_t iters = 0;
    for (const Finding &f : result.findings) {
        if (f.message.find("is a pointer-keyed") != std::string::npos)
            ++decls;
        if (f.message.find("range-for over") != std::string::npos ||
            f.message.find("iterator walk over") != std::string::npos)
            ++iters;
    }
    EXPECT_EQ(decls, 2u); // vtimes_ and active_
    EXPECT_EQ(iters, 2u); // range-for and .begin() walk
}

TEST(LintRules, D1CrossFileHeaderDeclarationCcIteration)
{
    const char *header =
        "#include <unordered_map>\n"
        "struct Cg;\n"
        "struct Gate {\n"
        "    std::unordered_map<const Cg *, int> "
        "vt_; // isol-lint: allow(D1): fixture\n"
        "};\n";
    const char *impl = "#include \"gate.hh\"\n"
                       "int Gate_sum(Gate &g) {\n"
                       "    int s = 0;\n"
                       "    for (auto &e : g.vt_)\n"
                       "        s += e.second;\n"
                       "    return s;\n"
                       "}\n";
    LintResult result = isol_lint::lintFiles(
        {{"src/gate.hh", header}, {"src/gate.cc", impl}});
    ASSERT_EQ(result.findings.size(), 1u) << describe(result.findings);
    EXPECT_EQ(result.findings[0].rule, "D1");
    EXPECT_EQ(result.findings[0].file, "src/gate.cc");
    EXPECT_EQ(result.findings[0].line, 4);
    EXPECT_NE(result.findings[0].message.find("src/gate.hh:4"),
              std::string::npos);
    ASSERT_EQ(result.suppressed.size(), 1u); // the declaration allow
}

// A deque member that merely shares its name with a pointer-keyed map in
// another class must not be blamed for that map's declaration (the
// qos_max/qos_cost `states_` collision found while dogfooding the tool).
TEST(LintRules, D1SameNameBenignContainerInOtherFileIsNotFlagged)
{
    const char *ptr_header =
        "#include <unordered_map>\n"
        "struct Cg;\n"
        "struct MaxGate {\n"
        "    std::unordered_map<const Cg *, int> "
        "states_; // isol-lint: allow(D1): fixture\n"
        "};\n";
    const char *deque_impl = "#include <deque>\n"
                             "struct CostGate {\n"
                             "    std::deque<int> states_;\n"
                             "    int sum() {\n"
                             "        int s = 0;\n"
                             "        for (int v : states_)\n"
                             "            s += v;\n"
                             "        return s;\n"
                             "    }\n"
                             "};\n";
    LintResult result = isol_lint::lintFiles(
        {{"src/max_gate.hh", ptr_header}, {"src/cost_gate.cc", deque_impl}});
    EXPECT_TRUE(result.findings.empty()) << describe(result.findings);
    ASSERT_EQ(result.suppressed.size(), 1u); // the declaration allow
}

// Ambiguity is scoped: iteration in the *same* file as the pointer-keyed
// declaration still flags even when the name is also a deque elsewhere.
TEST(LintRules, D1AmbiguousNameStillFlagsInDeclaringFile)
{
    const char *ptr_impl =
        "#include <unordered_map>\n"
        "struct Cg;\n"
        "struct MaxGate {\n"
        "    std::unordered_map<const Cg *, int> "
        "states_; // isol-lint: allow(D1): fixture\n"
        "    int sum() {\n"
        "        int s = 0;\n"
        "        for (auto &e : states_)\n"
        "            s += e.second;\n"
        "        return s;\n"
        "    }\n"
        "};\n";
    const char *deque_header = "#include <deque>\n"
                               "struct CostGate {\n"
                               "    std::deque<int> states_;\n"
                               "};\n";
    LintResult result = isol_lint::lintFiles(
        {{"src/max_gate.cc", ptr_impl}, {"src/cost_gate.hh", deque_header}});
    ASSERT_EQ(result.findings.size(), 1u) << describe(result.findings);
    EXPECT_EQ(result.findings[0].rule, "D1");
    EXPECT_EQ(result.findings[0].file, "src/max_gate.cc");
    EXPECT_EQ(result.findings[0].line, 7);
}

TEST(LintRules, D2ExemptsTheRngHeader)
{
    const char *content = "#include <random>\n"
                          "struct Seeder { int s = 0; };\n"
                          "int ambient() { std::random_device rd; "
                          "return static_cast<int>(rd()); }\n";
    LintResult in_rng = isol_lint::lintFiles(
        {{"src/common/rng.hh", content}});
    EXPECT_TRUE(in_rng.findings.empty()) << describe(in_rng.findings);

    LintResult elsewhere = isol_lint::lintFiles(
        {{"src/sim/clock.hh", content}});
    ASSERT_FALSE(elsewhere.findings.empty());
    EXPECT_EQ(elsewhere.findings[0].rule, "D2");
}

TEST(LintRules, D4OnlyAppliesUnderSrc)
{
    const char *content = "namespace n {\nint g_count = 0;\n}\n";
    LintResult in_src =
        isol_lint::lintFiles({{"src/sim/state.cc", content}});
    ASSERT_EQ(in_src.findings.size(), 1u) << describe(in_src.findings);
    EXPECT_EQ(in_src.findings[0].rule, "D4");
    EXPECT_EQ(in_src.findings[0].line, 2);

    LintResult in_bench =
        isol_lint::lintFiles({{"bench/state.cc", content}});
    EXPECT_TRUE(in_bench.findings.empty())
        << describe(in_bench.findings);
}

TEST(LintRules, SuppressionFixtureIsCleanButRecorded)
{
    LintResult result = lintFixture("suppressed.cc");
    EXPECT_TRUE(result.findings.empty()) << describe(result.findings);
    EXPECT_GE(result.suppressed.size(), 2u);
    for (const Finding &f : result.suppressed)
        EXPECT_EQ(f.rule, "D2");
}

TEST(LintRules, SuppressionIsRuleSpecific)
{
    const char *content =
        "namespace n {\n"
        "// isol-lint: allow(D2): wrong rule for this hazard\n"
        "int g_count = 0;\n"
        "}\n";
    LintResult result =
        isol_lint::lintFiles({{"src/sim/state.cc", content}});
    ASSERT_EQ(result.findings.size(), 1u) << describe(result.findings);
    EXPECT_EQ(result.findings[0].rule, "D4");
}

TEST(LintRules, RuleTableListsAllFiveRules)
{
    std::set<std::string> ids;
    for (const isol_lint::RuleInfo &r : isol_lint::ruleTable())
        ids.insert(r.id);
    EXPECT_EQ(ids, (std::set<std::string>{"D1", "D2", "D3", "D4", "D5"}));
}

TEST(LintRules, FindingsAreSortedAndDeterministic)
{
    std::vector<FileInput> inputs = {
        {"src/b.cc", "namespace n { int g_b = 0; int g_a = 0; }\n"},
        {"src/a.cc", "namespace n { int g_c = 0; }\n"},
    };
    LintResult first = isol_lint::lintFiles(inputs);
    LintResult second = isol_lint::lintFiles(inputs);
    ASSERT_EQ(first.findings.size(), 3u);
    EXPECT_EQ(first.findings[0].file, "src/a.cc");
    for (size_t i = 0; i < first.findings.size(); ++i) {
        EXPECT_EQ(first.findings[i].message,
                  second.findings[i].message);
    }
}

} // namespace
