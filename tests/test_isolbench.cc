/**
 * @file
 * Integration tests for the isol-bench core library: scenario wiring and
 * the paper's headline observations (O1-O10) as executable properties,
 * with deliberately loose bounds so they test shape, not calibration.
 */

#include <gtest/gtest.h>

#include "isolbench/d1_overhead.hh"
#include "isolbench/d2_fairness.hh"
#include "isolbench/d3_tradeoffs.hh"
#include "isolbench/d4_bursts.hh"
#include "isolbench/scenario.hh"
#include "stats/fairness.hh"

namespace isol::isolbench
{
namespace
{

D1Options
fastD1()
{
    D1Options opts;
    opts.duration = msToNs(700);
    opts.warmup = msToNs(200);
    return opts;
}

TEST(Scenario, BuildsAndRuns)
{
    ScenarioConfig cfg;
    cfg.duration = msToNs(300);
    cfg.warmup = msToNs(100);
    Scenario scenario(cfg);
    uint32_t a =
        scenario.addApp(workload::lcApp("lc", msToNs(300)), "lc");
    scenario.run();
    EXPECT_GT(scenario.app(a).totalIos(), 0u);
    EXPECT_GT(scenario.aggregateGiBs(), 0.0);
    EXPECT_GT(scenario.cpuUtilization(), 0.0);
}

TEST(Scenario, AppsShareNamedCgroups)
{
    ScenarioConfig cfg;
    cfg.duration = msToNs(200);
    cfg.warmup = msToNs(50);
    Scenario scenario(cfg);
    uint32_t a =
        scenario.addApp(workload::lcApp("a", msToNs(200)), "shared");
    uint32_t b =
        scenario.addApp(workload::lcApp("b", msToNs(200)), "shared");
    EXPECT_EQ(&scenario.appGroup(a), &scenario.appGroup(b));
    EXPECT_EQ(&scenario.group("shared"), &scenario.appGroup(a));
}

TEST(Scenario, ValidationErrors)
{
    ScenarioConfig bad;
    bad.num_devices = 0;
    EXPECT_THROW(Scenario{bad}, FatalError);

    ScenarioConfig warm;
    warm.warmup = warm.duration;
    EXPECT_THROW(Scenario{warm}, FatalError);

    ScenarioConfig ok;
    ok.duration = msToNs(100);
    ok.warmup = msToNs(10);
    Scenario scenario(ok);
    EXPECT_THROW(
        scenario.addApp(workload::lcApp("x", msToNs(100)), "x", 5),
        FatalError);
    EXPECT_THROW(scenario.group("missing"), FatalError);
}

TEST(Scenario, KnobNames)
{
    EXPECT_STREQ(knobName(Knob::kNone), "none");
    EXPECT_STREQ(knobName(Knob::kIoCost), "io.cost");
    EXPECT_STREQ(knobName(Knob::kMqDeadline), "mq-deadline");
}

TEST(Scenario, CostModelPresets)
{
    cgroup::IoCostModel gen = generatedCostModel();
    cgroup::IoCostModel beyond = beyondSaturationCostModel();
    EXPECT_LT(gen.rbps, beyond.rbps);
    EXPECT_LT(gen.wbps, gen.rbps); // write asymmetry
    cgroup::IoCostQos qos = paperCostQos();
    EXPECT_DOUBLE_EQ(qos.rpct, 95.0);
    EXPECT_EQ(qos.rlat, usToNs(100));
    EXPECT_DOUBLE_EQ(disabledCostQos().rpct, 0.0);
}

// --- O1/O2 shapes (D1) ---

TEST(D1, SchedulersRaiseSingleAppTailLatency)
{
    auto none = runLcScaling(Knob::kNone, 1, fastD1());
    auto mq = runLcScaling(Knob::kMqDeadline, 1, fastD1());
    auto bfq = runLcScaling(Knob::kBfq, 1, fastD1());
    EXPECT_GT(mq.p99_us, none.p99_us * 1.02);
    EXPECT_GT(bfq.p99_us, mq.p99_us);
    // io.max and io.latency add no meaningful latency (O1).
    auto iomax = runLcScaling(Knob::kIoMax, 1, fastD1());
    EXPECT_LT(iomax.p99_us, none.p99_us * 1.05);
}

TEST(D1, IoCostLatencyOverheadPastCpuSaturation)
{
    auto none = runLcScaling(Knob::kNone, 16, fastD1());
    auto cost = runLcScaling(Knob::kIoCost, 16, fastD1());
    EXPECT_GT(cost.p99_us, none.p99_us * 1.15);
    // Before saturation the overhead is minor.
    auto none1 = runLcScaling(Knob::kNone, 1, fastD1());
    auto cost1 = runLcScaling(Knob::kIoCost, 1, fastD1());
    EXPECT_LT(cost1.p99_us, none1.p99_us * 1.10);
}

TEST(D1, CpuUtilizationScalesWithApps)
{
    auto few = runLcScaling(Knob::kNone, 2, fastD1());
    auto many = runLcScaling(Knob::kNone, 16, fastD1());
    EXPECT_GT(many.cpu_util, few.cpu_util * 2);
    EXPECT_GT(many.cpu_util, 0.9); // 16 LC-apps saturate one core
}

TEST(D1, CdfIsWellFormed)
{
    auto res = runLcScaling(Knob::kNone, 4, fastD1());
    ASSERT_FALSE(res.cdf.empty());
    EXPECT_NEAR(res.cdf.back().second, 1.0, 1e-9);
    double prev = 0.0;
    for (auto [us, p] : res.cdf) {
        EXPECT_GE(p, prev);
        prev = p;
        EXPECT_GE(us, 0.0);
    }
}

TEST(D1, SchedulersCapSingleSsdBandwidth)
{
    auto none = runBatchScaling(Knob::kNone, 8, 1, fastD1());
    auto mq = runBatchScaling(Knob::kMqDeadline, 8, 1, fastD1());
    auto bfq = runBatchScaling(Knob::kBfq, 8, 1, fastD1());
    EXPECT_GT(none.agg_gibs, 2.5);
    EXPECT_LT(mq.agg_gibs, none.agg_gibs * 0.75);
    EXPECT_LT(bfq.agg_gibs, mq.agg_gibs * 0.6);
}

TEST(D1, QosKnobsScaleAcrossSsds)
{
    auto none = runBatchScaling(Knob::kNone, 8, 4, fastD1());
    auto iomax = runBatchScaling(Knob::kIoMax, 8, 4, fastD1());
    auto cost = runBatchScaling(Knob::kIoCost, 8, 4, fastD1());
    // Small (<15%) overhead vs none; far above the schedulers.
    EXPECT_GT(iomax.agg_gibs, none.agg_gibs * 0.85);
    EXPECT_GT(cost.agg_gibs, none.agg_gibs * 0.85);
}

// --- O3/O4/O5 shapes (D2) ---

FairnessOptions
fastFairness()
{
    FairnessOptions opts;
    opts.duration = msToNs(900);
    opts.warmup = msToNs(300);
    opts.repeats = 1;
    return opts;
}

TEST(D2, UniformWorkloadsAreFairPreSaturation)
{
    for (Knob knob : {Knob::kNone, Knob::kIoMax, Knob::kIoCost}) {
        auto res = runFairness(knob, 4, false, FairnessMix::kUniform,
                               fastFairness());
        EXPECT_GT(res.jain_mean, 0.85) << knobName(knob);
    }
}

TEST(D2, IoCostModelLimitsAggregateBandwidth)
{
    auto none = runFairness(Knob::kNone, 4, false, FairnessMix::kUniform,
                            fastFairness());
    auto cost = runFairness(Knob::kIoCost, 4, false,
                            FairnessMix::kUniform, fastFairness());
    // O3: the achievable model + min=50% costs aggregate bandwidth.
    EXPECT_LT(cost.agg_gibs_mean, none.agg_gibs_mean * 0.75);
}

TEST(D2, WeightedFairnessForCapableKnobs)
{
    auto cost = runFairness(Knob::kIoCost, 4, true, FairnessMix::kUniform,
                            fastFairness());
    auto iomax = runFairness(Knob::kIoMax, 4, true, FairnessMix::kUniform,
                             fastFairness());
    EXPECT_GT(cost.jain_mean, 0.8);
    EXPECT_GT(iomax.jain_mean, 0.8);
}

TEST(D2, WeightedFairnessPoorForLatencyAndMqdl)
{
    auto cost = runFairness(Knob::kIoCost, 4, true, FairnessMix::kUniform,
                            fastFairness());
    auto mq = runFairness(Knob::kMqDeadline, 4, true,
                          FairnessMix::kUniform, fastFairness());
    // O4: io.prio.class "weights" are much less fair than real weights.
    EXPECT_LT(mq.jain_mean, cost.jain_mean - 0.1);
}

TEST(D2, RequestSizeMixBreaksFairnessExceptMaxAndCost)
{
    auto none = runFairness(Knob::kNone, 2, false, FairnessMix::kReqSize,
                            fastFairness());
    auto iomax = runFairness(Knob::kIoMax, 2, false,
                             FairnessMix::kReqSize, fastFairness());
    // O5: without control, large-request groups capture the bandwidth.
    EXPECT_LT(none.jain_mean, 0.75);
    EXPECT_GT(iomax.jain_mean, none.jain_mean + 0.1);
}

TEST(D2, PerGroupBandwidthsReported)
{
    auto res = runFairness(Knob::kNone, 3, false, FairnessMix::kUniform,
                           fastFairness());
    ASSERT_EQ(res.per_group_gibs.size(), 3u);
    double sum = 0.0;
    for (double bw : res.per_group_gibs)
        sum += bw;
    EXPECT_NEAR(sum, res.agg_gibs_mean, res.agg_gibs_mean * 0.05);
}

// --- O6-O9 shapes (D3) ---

TradeoffOptions
fastTradeoff()
{
    TradeoffOptions opts;
    opts.duration = msToNs(800);
    opts.warmup = msToNs(250);
    opts.coarsen = 5;
    return opts;
}

TEST(D3, MqdlPrioritizationIsCoarse)
{
    auto points = runTradeoffSweep(Knob::kMqDeadline,
                                   PriorityAppKind::kBatch,
                                   BeWorkload::kRand4k, fastTradeoff());
    ASSERT_EQ(points.size(), 9u); // 3x3 class permutations
    double min_prio = 1e9;
    double max_prio = 0.0;
    for (const auto &p : points) {
        min_prio = std::min(min_prio, p.priority_gibs);
        max_prio = std::max(max_prio, p.priority_gibs);
    }
    // Strict prioritization: from starved to the app's full (single
    // thread, CPU-bound) performance — no fine-grained middle ground.
    EXPECT_LT(min_prio, 0.1);
    EXPECT_GT(max_prio, 0.3);
    EXPECT_GT(max_prio, min_prio * 4);
}

TEST(D3, IoMaxTradesOffButThrottlesStatically)
{
    TradeoffOptions opts = fastTradeoff();
    opts.coarsen = 3; // reach the near-saturation end of the cap sweep
    auto points = runTradeoffSweep(Knob::kIoMax, PriorityAppKind::kBatch,
                                   BeWorkload::kRand4k, opts);
    ASSERT_GE(points.size(), 4u);
    double min_prio = 1e18;
    double max_prio = 0.0;
    for (const auto &p : points) {
        min_prio = std::min(min_prio, p.priority_gibs);
        max_prio = std::max(max_prio, p.priority_gibs);
    }
    // Tight BE caps protect the priority app; loose caps let the BE
    // apps contend it down.
    EXPECT_GT(max_prio, min_prio * 1.15);
    // ...but aggregate utilisation suffers at strict caps.
    EXPECT_LT(points.front().agg_gibs, points.back().agg_gibs);
}

TEST(D3, IoCostTradesOffLatency)
{
    auto points = runTradeoffSweep(Knob::kIoCost, PriorityAppKind::kLc,
                                   BeWorkload::kRand4k, fastTradeoff());
    ASSERT_GE(points.size(), 2u);
    double best_lat = 1e18;
    double worst_lat = 0.0;
    for (const auto &p : points) {
        best_lat = std::min(best_lat, p.priority_p99_us);
        worst_lat = std::max(worst_lat, p.priority_p99_us);
    }
    EXPECT_LT(best_lat, worst_lat * 0.8); // configs span a real range
}

TEST(D3, NamesAreStable)
{
    EXPECT_STREQ(priorityAppKindName(PriorityAppKind::kBatch), "batch");
    EXPECT_STREQ(priorityAppKindName(PriorityAppKind::kLc), "lc");
    EXPECT_STREQ(beWorkloadName(BeWorkload::kRand256k), "rand-256k");
    EXPECT_STREQ(fairnessMixName(FairnessMix::kReadWrite), "read-write");
}

// --- O10 shape (D4) ---

TEST(D4, IoLatencyRespondsInSecondsOthersInMillis)
{
    BurstOptions opts;
    opts.duration = secToNs(int64_t{7});
    opts.burst_start = msToNs(1000);
    opts.threshold = 0.9;

    // io.latency is evaluated with the LC-app: reaching its latency
    // target requires throttling the BE group's QD far down, one
    // halving per 500 ms window.
    auto iolat =
        runBurstResponse(Knob::kIoLatency, PriorityAppKind::kLc, opts);
    auto iomax =
        runBurstResponse(Knob::kIoMax, PriorityAppKind::kBatch, opts);
    ASSERT_GT(iomax.response_ms, -1.0);
    // io.max responds quickly...
    EXPECT_LT(iomax.response_ms, 500.0);
    // ...io.latency needs multiple 500 ms windows to throttle the BE
    // apps down (or never stabilises within the run).
    if (iolat.response_ms >= 0.0) {
        EXPECT_GT(iolat.response_ms, 800.0);
        EXPECT_GT(iolat.response_ms, iomax.response_ms * 3);
    }
}

} // namespace
} // namespace isol::isolbench
