/**
 * @file
 * Tests for the Kyber elevator extension: domain token depths, read
 * preference, write-depth throttling under read-latency pressure, and
 * depth recovery.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blk/kyber.hh"
#include "sim/simulator.hh"

namespace isol::blk
{
namespace
{

std::unique_ptr<Request>
makeReq(OpType op, sim::Simulator &sim)
{
    auto req = std::make_unique<Request>();
    req->op = op;
    req->size = 4096;
    req->blk_enter_time = sim.now();
    return req;
}

TEST(Kyber, ReadsDispatchBeforeWrites)
{
    sim::Simulator sim;
    Kyber kyber(sim);
    auto w = makeReq(OpType::kWrite, sim);
    auto r = makeReq(OpType::kRead, sim);
    kyber.insert(w.get());
    kyber.insert(r.get());
    EXPECT_EQ(kyber.selectNext(), r.get());
    EXPECT_EQ(kyber.selectNext(), w.get());
}

TEST(Kyber, WriteDomainTokensLimitInflight)
{
    sim::Simulator sim;
    KyberParams params;
    params.write_depth = 2;
    Kyber kyber(sim, params);

    std::vector<std::unique_ptr<Request>> writes;
    for (int i = 0; i < 4; ++i) {
        writes.push_back(makeReq(OpType::kWrite, sim));
        kyber.insert(writes.back().get());
    }
    EXPECT_NE(kyber.selectNext(), nullptr);
    EXPECT_NE(kyber.selectNext(), nullptr);
    // Depth 2: the third write needs a completed token.
    EXPECT_EQ(kyber.selectNext(), nullptr);
    kyber.onComplete(writes[0].get());
    EXPECT_NE(kyber.selectNext(), nullptr);
}

TEST(Kyber, ThrottlesWritesWhenReadsMissTarget)
{
    sim::Simulator sim;
    KyberParams params;
    params.read_lat_target = usToNs(100);
    params.tune_window = msToNs(10);
    Kyber kyber(sim, params);
    uint32_t depth_before = kyber.writeDepth();

    // Complete reads with 1 ms latency (target 100 us) in each window.
    std::vector<std::unique_ptr<Request>> reqs;
    std::function<void()> slow_reads = [&] {
        for (int i = 0; i < 16; ++i) {
            reqs.push_back(makeReq(OpType::kRead, sim));
            Request *r = reqs.back().get();
            r->blk_enter_time = sim.now() - msToNs(1);
            kyber.insert(r);
            EXPECT_EQ(kyber.selectNext(), r);
            kyber.onComplete(r);
        }
    };
    for (int w = 1; w <= 4; ++w)
        sim.at(msToNs(w * 10 - 5), slow_reads);
    sim.runUntil(msToNs(45));
    EXPECT_LT(kyber.writeDepth(), depth_before);
    EXPECT_GE(kyber.writeDepth(), 1u);
}

TEST(Kyber, WriteDepthRecoversWhenHealthy)
{
    sim::Simulator sim;
    KyberParams params;
    params.read_lat_target = usToNs(100);
    params.tune_window = msToNs(10);
    Kyber kyber(sim, params);

    // Throttle down first.
    std::vector<std::unique_ptr<Request>> reqs;
    std::function<void()> slow_reads = [&] {
        for (int i = 0; i < 16; ++i) {
            reqs.push_back(makeReq(OpType::kRead, sim));
            Request *r = reqs.back().get();
            r->blk_enter_time = sim.now() - msToNs(1);
            kyber.insert(r);
            kyber.selectNext();
            kyber.onComplete(r);
        }
    };
    sim.at(msToNs(5), slow_reads);
    sim.runUntil(msToNs(15));
    uint32_t throttled = kyber.writeDepth();
    ASSERT_LT(throttled, params.write_depth);

    // Quiet windows: depth climbs back.
    sim.runUntil(msToNs(400));
    EXPECT_EQ(kyber.writeDepth(), params.write_depth);
}

TEST(Kyber, KickFiredOnTokenReturn)
{
    sim::Simulator sim;
    KyberParams params;
    params.write_depth = 1;
    Kyber kyber(sim, params);
    int kicks = 0;
    kyber.setKick([&] { ++kicks; });

    auto w1 = makeReq(OpType::kWrite, sim);
    auto w2 = makeReq(OpType::kWrite, sim);
    kyber.insert(w1.get());
    kyber.insert(w2.get());
    EXPECT_EQ(kyber.selectNext(), w1.get());
    EXPECT_EQ(kyber.selectNext(), nullptr);
    kyber.onComplete(w1.get());
    EXPECT_GE(kicks, 1);
    EXPECT_EQ(kyber.selectNext(), w2.get());
}

TEST(Kyber, EmptyAndQueuedTracking)
{
    sim::Simulator sim;
    Kyber kyber(sim);
    EXPECT_TRUE(kyber.empty());
    auto r = makeReq(OpType::kRead, sim);
    kyber.insert(r.get());
    EXPECT_EQ(kyber.queued(), 1u);
    kyber.selectNext();
    EXPECT_TRUE(kyber.empty());
}

} // namespace
} // namespace isol::blk
