/**
 * @file
 * Property-based tests (parameterized sweeps) on system invariants:
 *
 *  - FTL consistency across geometries and random workloads;
 *  - request conservation through the block-layer pipeline for every
 *    knob (nothing lost, nothing duplicated);
 *  - byte conservation between apps and the device;
 *  - determinism: identical seeds give identical results;
 *  - device model monotonicity (more parallelism -> more throughput).
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <tuple>

#include "blk/block_device.hh"
#include "common/rng.hh"
#include "isolbench/scenario.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"
#include "ssd/ftl.hh"

namespace isol
{
namespace
{

// --- FTL invariants across geometries --------------------------------------

struct FtlGeometry
{
    uint32_t channels;
    uint32_t dies_per_channel;
    uint32_t pages_per_block;
    double overprovision;
};

class FtlInvariantTest : public ::testing::TestWithParam<FtlGeometry>
{
  protected:
    ssd::SsdConfig
    makeConfig() const
    {
        ssd::SsdConfig cfg = ssd::samsung980ProLike();
        const FtlGeometry &g = GetParam();
        cfg.user_capacity = 32 * MiB;
        cfg.channels = g.channels;
        cfg.dies_per_channel = g.dies_per_channel;
        cfg.pages_per_block = g.pages_per_block;
        cfg.overprovision = g.overprovision;
        return cfg;
    }
};

TEST_P(FtlInvariantTest, ConsistentAfterSequentialFill)
{
    ssd::Ftl ftl(makeConfig());
    ftl.preconditionSequentialFill(1.0);
    std::string error;
    EXPECT_TRUE(ftl.checkInvariants(&error)) << error;
}

TEST_P(FtlInvariantTest, ConsistentAfterRandomOverwrite)
{
    ssd::SsdConfig cfg = makeConfig();
    ssd::Ftl ftl(cfg);
    Rng rng(42);
    ftl.preconditionSequentialFill(1.0);
    ftl.preconditionRandomOverwrite(cfg.numLogicalPages() * 2, rng);
    std::string error;
    EXPECT_TRUE(ftl.checkInvariants(&error)) << error;
    EXPECT_GT(ftl.blocksErased(), 0u);
}

TEST_P(FtlInvariantTest, ConsistentAfterPartialFill)
{
    ssd::SsdConfig cfg = makeConfig();
    ssd::Ftl ftl(cfg);
    Rng rng(7);
    ftl.preconditionSequentialFill(0.5);
    ftl.preconditionRandomOverwrite(cfg.numLogicalPages() / 2, rng);
    std::string error;
    EXPECT_TRUE(ftl.checkInvariants(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FtlInvariantTest,
    ::testing::Values(FtlGeometry{2, 2, 32, 0.30},
                      FtlGeometry{4, 2, 64, 0.25},
                      FtlGeometry{2, 4, 16, 0.40},
                      FtlGeometry{8, 1, 32, 0.30},
                      FtlGeometry{1, 4, 64, 0.35}));

// --- Device-level invariants -----------------------------------------------

TEST(DeviceProperties, FtlConsistentAfterTimedWrites)
{
    sim::Simulator sim;
    ssd::SsdConfig cfg = ssd::samsung980ProLike();
    cfg.user_capacity = 128 * MiB;
    cfg.channels = 4;
    cfg.dies_per_channel = 2;
    ssd::SsdDevice dev(sim, cfg, 5);
    dev.precondition(1.0, 1.0);
    Rng rng(5);

    int outstanding = 0;
    std::function<void()> loop = [&] {
        ++outstanding;
        uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
        OpType op = rng.chance(0.5) ? OpType::kRead : OpType::kWrite;
        dev.submit(op, off, 4096, [&] {
            --outstanding;
            if (sim.now() < msToNs(100))
                loop();
        });
    };
    for (int i = 0; i < 64; ++i)
        loop();
    sim.runUntil(msToNs(100));
    sim.runAll(); // drain
    EXPECT_EQ(outstanding, 0);
    std::string error;
    EXPECT_TRUE(dev.ftl().checkInvariants(&error)) << error;
}

class DeviceScalingTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(DeviceScalingTest, MoreDiesMoreRandReadThroughput)
{
    auto [small_dies, large_dies] = GetParam();
    auto measure = [](uint32_t dies_per_channel) {
        sim::Simulator sim;
        ssd::SsdConfig cfg = ssd::samsung980ProLike();
        cfg.dies_per_channel = dies_per_channel;
        cfg.link_bw = 100ull * GiB; // don't let the link cap either
        ssd::SsdDevice dev(sim, cfg, 9);
        Rng rng(9);
        uint64_t done = 0;
        std::function<void()> loop = [&] {
            uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
            dev.submit(OpType::kRead, off, 4096, [&] {
                ++done;
                if (sim.now() < msToNs(20))
                    loop();
            });
        };
        for (int i = 0; i < 2048; ++i)
            loop();
        sim.runUntil(msToNs(20));
        return done;
    };
    uint64_t small = measure(small_dies);
    uint64_t large = measure(large_dies);
    EXPECT_GT(large, small * (large_dies / small_dies) * 7 / 10)
        << "throughput must scale roughly with die count";
}

INSTANTIATE_TEST_SUITE_P(DiesSweep, DeviceScalingTest,
                         ::testing::Values(std::make_tuple(2u, 4u),
                                           std::make_tuple(4u, 8u),
                                           std::make_tuple(2u, 8u)));

// --- Pipeline conservation for every knob ----------------------------------

class KnobConservationTest
    : public ::testing::TestWithParam<isolbench::Knob>
{
};

TEST_P(KnobConservationTest, RequestsAndBytesConserved)
{
    isolbench::ScenarioConfig cfg;
    cfg.knob = GetParam();
    cfg.num_cores = 4;
    cfg.duration = msToNs(400);
    cfg.warmup = msToNs(100);
    isolbench::Scenario scenario(cfg);

    uint32_t lc = scenario.addApp(
        workload::lcApp("lc", msToNs(250)), "lc");
    workload::JobSpec batch = workload::batchApp("batch", msToNs(250));
    batch.iodepth = 32;
    uint32_t b = scenario.addApp(std::move(batch), "batch");
    scenario.run();
    // Drain everything in flight (runAll would spin on the periodic
    // qos timers, which run for the lifetime of the scenario).
    scenario.sim().runUntil(cfg.duration + msToNs(500));

    blk::BlockDevice &bdev = scenario.device(0);
    // Nothing lost, nothing duplicated.
    EXPECT_EQ(bdev.submitted(), bdev.completed());
    EXPECT_EQ(bdev.inflight(), 0u);
    EXPECT_EQ(bdev.tagWaiting(), 0u);
    // All app completions flowed through the device.
    uint64_t app_ios =
        scenario.app(lc).totalIos() + scenario.app(b).totalIos();
    EXPECT_EQ(app_ios, bdev.completed());
    // Device byte counters match request sizes.
    EXPECT_EQ(scenario.ssd(0).bytesRead(),
              scenario.app(lc).totalIos() * 4096 +
                  scenario.app(b).totalIos() * 4096);
}

TEST_P(KnobConservationTest, DeterministicAcrossRuns)
{
    auto run = [&](uint64_t seed) {
        isolbench::ScenarioConfig cfg;
        cfg.knob = GetParam();
        cfg.num_cores = 2;
        cfg.duration = msToNs(300);
        cfg.warmup = msToNs(100);
        cfg.seed = seed;
        isolbench::Scenario scenario(cfg);
        uint32_t a = scenario.addApp(
            workload::lcApp("a", msToNs(300)), "a");
        uint32_t b = scenario.addApp(
            workload::batchApp("b", msToNs(300)), "b");
        scenario.run();
        return std::make_tuple(scenario.app(a).totalIos(),
                               scenario.app(b).totalIos(),
                               scenario.app(a).latency().percentile(99));
    };
    EXPECT_EQ(run(123), run(123)) << "same seed must reproduce exactly";
    EXPECT_NE(run(123), run(456)) << "different seeds must differ";
}

INSTANTIATE_TEST_SUITE_P(
    AllKnobs, KnobConservationTest,
    ::testing::Values(isolbench::Knob::kNone,
                      isolbench::Knob::kMqDeadline, isolbench::Knob::kBfq,
                      isolbench::Knob::kIoMax, isolbench::Knob::kIoLatency,
                      isolbench::Knob::kIoCost, isolbench::Knob::kKyber),
    [](const ::testing::TestParamInfo<isolbench::Knob> &info) {
        std::string name = isolbench::knobName(info.param);
        for (char &c : name) {
            if (c == '.' || c == '-')
                c = '_';
        }
        return name;
    });

// --- Histogram vs exact percentiles (property sweep) ------------------------

class HistogramAccuracyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HistogramAccuracyTest, PercentilesWithinRelativeError)
{
    Rng rng(GetParam());
    stats::Histogram hist;
    std::vector<int64_t> exact;
    for (int i = 0; i < 20000; ++i) {
        auto v = static_cast<int64_t>(rng.below(1000000) + 1);
        hist.record(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        auto idx = static_cast<size_t>(p / 100.0 * exact.size());
        if (idx >= exact.size())
            idx = exact.size() - 1;
        double truth = static_cast<double>(exact[idx]);
        double approx = static_cast<double>(hist.percentile(p));
        EXPECT_NEAR(approx, truth, truth * 0.05 + 2.0)
            << "p" << p << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace isol
