/**
 * @file
 * Unit tests for the discrete-event simulation engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulator.hh"

namespace isol::sim
{
namespace
{

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty()) {
        auto [when, cb] = q.pop();
        (void)when;
        cb();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().second();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidId)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(kInvalidEventId));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, NextTimeSkipsCancelled)
{
    EventQueue q;
    EventId early = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(early);
    EXPECT_EQ(q.nextTime(), 20);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyNextTimeIsMax)
{
    EventQueue q;
    EXPECT_EQ(q.nextTime(), kSimTimeMax);
}

TEST(Simulator, ClockAdvances)
{
    Simulator sim;
    SimTime seen = -1;
    sim.at(100, [&] { seen = sim.now(); });
    sim.runAll();
    EXPECT_EQ(seen, 100);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, AfterIsRelative)
{
    Simulator sim;
    std::vector<SimTime> times;
    sim.at(50, [&] {
        sim.after(25, [&] { times.push_back(sim.now()); });
    });
    sim.runAll();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_EQ(times[0], 75);
}

TEST(EventQueue, ConstInspection)
{
    EventQueue q;
    const EventQueue &cq = q;
    EXPECT_TRUE(cq.empty());
    EventId id = q.schedule(5, [] {});
    EXPECT_FALSE(cq.empty());
    EXPECT_EQ(cq.nextTime(), 5);
    q.cancel(id);
    EXPECT_TRUE(cq.empty()); // skips the cancelled top, still const
}

TEST(Simulator, IdleIsConst)
{
    Simulator sim;
    const Simulator &csim = sim;
    EXPECT_TRUE(csim.idle());
    sim.at(10, [] {});
    EXPECT_FALSE(csim.idle());
}

TEST(Simulator, RunAllEventStormLimitThrows)
{
    Simulator sim;
    std::function<void()> storm = [&] { sim.after(1, storm); };
    sim.after(0, storm);
    EXPECT_THROW(sim.runAll(1000), FatalError);
}

TEST(Simulator, RunAllLimitAllowsBoundedWork)
{
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        sim.at(i, [&] { ++fired; });
    sim.runAll(100); // limit far above the event count: no throw
    EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int fired = 0;
    sim.at(10, [&] { ++fired; });
    sim.at(20, [&] { ++fired; });
    sim.at(30, [&] { ++fired; });
    sim.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 20);
    sim.runAll();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle)
{
    Simulator sim;
    sim.runUntil(msToNs(5));
    EXPECT_EQ(sim.now(), msToNs(5));
}

TEST(Simulator, EventsExecutedCounter)
{
    Simulator sim;
    for (int i = 0; i < 5; ++i)
        sim.at(i, [] {});
    sim.runAll();
    EXPECT_EQ(sim.eventsExecuted(), 5u);
}

TEST(Simulator, CascadingEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            sim.after(1, chain);
    };
    sim.after(1, chain);
    sim.runAll();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, StepReturnsFalseWhenIdle)
{
    Simulator sim;
    EXPECT_FALSE(sim.step());
    sim.at(5, [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelPendingEvent)
{
    Simulator sim;
    bool fired = false;
    EventId id = sim.at(10, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.runAll();
    EXPECT_FALSE(fired);
}

TEST(PeriodicTimer, FiresEveryPeriod)
{
    Simulator sim;
    std::vector<SimTime> fires;
    PeriodicTimer timer(sim, 100, [&] { fires.push_back(sim.now()); });
    timer.start();
    sim.runUntil(350);
    EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 300}));
}

TEST(PeriodicTimer, StopCeasesFiring)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    sim.at(250, [&] { timer.stop(); });
    sim.runUntil(1000);
    EXPECT_EQ(fires, 2);
    EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, RestartAfterStop)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    sim.runUntil(150);
    timer.stop();
    timer.start();
    sim.runUntil(450);
    // One fire at t=100, then restart at t=150 -> fires at 250, 350, 450.
    EXPECT_EQ(fires, 4);
}

TEST(PeriodicTimer, StopFromInsideCallback)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] {
        if (++fires == 2)
            timer.stop();
    });
    timer.start();
    sim.runUntil(10000);
    EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, StartIsIdempotent)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    timer.start();
    sim.runUntil(100);
    EXPECT_EQ(fires, 1);
}

} // namespace
} // namespace isol::sim
