/**
 * @file
 * Unit tests for the discrete-event simulation engine.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"
#include "sim/simulator.hh"
#include "sim/small_function.hh"

namespace isol::sim
{
namespace
{

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty()) {
        auto [when, cb] = q.pop();
        (void)when;
        cb();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().second();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidId)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(kInvalidEventId));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, NextTimeSkipsCancelled)
{
    EventQueue q;
    EventId early = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(early);
    EXPECT_EQ(q.nextTime(), 20);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyNextTimeIsMax)
{
    EventQueue q;
    EXPECT_EQ(q.nextTime(), kSimTimeMax);
}

TEST(EventQueue, CancelAfterFireDoesNotLeak)
{
    // Regression for the seed implementation: cancelling an id whose
    // event already fired inserted a permanent marker into the
    // cancellation side-table (it could never match the heap top),
    // growing memory over long runs and skewing size(). The slotted
    // queue must keep size() exact and reject the stale id.
    EventQueue q;
    std::vector<EventId> fired_ids;
    for (int round = 0; round < 1000; ++round) {
        EventId id = q.schedule(round, [] {});
        ASSERT_EQ(q.size(), 1u);
        q.pop().second();
        fired_ids.push_back(id);
        EXPECT_FALSE(q.cancel(id)) << "cancel of fired id must fail";
        EXPECT_EQ(q.size(), 0u);
        EXPECT_TRUE(q.empty());
    }
    // Stale ids stay dead even after their slots are reused.
    q.schedule(5000, [] {});
    q.schedule(5001, [] {});
    EXPECT_EQ(q.size(), 2u);
    for (EventId id : fired_ids)
        EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.nextTime(), 5000);
}

TEST(EventQueue, CancelledSlotReuseKeepsIdsDistinct)
{
    EventQueue q;
    EventId a = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(a));
    // The slot is recycled eventually; the old handle must never hit
    // the new occupant.
    EventId b = q.schedule(20, [] {});
    EXPECT_FALSE(q.cancel(a));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_TRUE(q.cancel(b));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedAgainstReferenceOrdering)
{
    // Drive the 4-ary slotted heap against a std::multimap reference
    // with a schedule/pop/cancel mix; pop order must match exactly
    // (time-ordered, insertion-order tie-break).
    EventQueue q;
    std::multimap<std::pair<SimTime, uint64_t>, int> reference;
    Rng rng(99);
    uint64_t seq = 0;
    std::vector<std::pair<EventId, std::pair<SimTime, uint64_t>>> pending;
    int fired = 0;
    std::vector<int> got;
    std::vector<int> want;

    for (int step = 0; step < 5000; ++step) {
        double dice = rng.uniform();
        if (dice < 0.55 || reference.empty()) {
            auto when = static_cast<SimTime>(rng.below(64));
            int tag = static_cast<int>(seq);
            EventId id = q.schedule(when, [tag, &got] {
                got.push_back(tag);
            });
            auto key = std::make_pair(when, seq++);
            reference.emplace(key, tag);
            pending.emplace_back(id, key);
        } else if (dice < 0.8) {
            size_t pick = rng.below(pending.size());
            EXPECT_TRUE(q.cancel(pending[pick].first));
            reference.erase(reference.find(pending[pick].second));
            pending.erase(pending.begin() +
                          static_cast<ptrdiff_t>(pick));
        } else {
            auto it = reference.begin();
            auto [when, cb] = q.pop();
            EXPECT_EQ(when, it->first.first);
            want.push_back(it->second);
            cb();
            ++fired;
            for (size_t i = 0; i < pending.size(); ++i) {
                if (pending[i].second == it->first) {
                    pending.erase(pending.begin() +
                                  static_cast<ptrdiff_t>(i));
                    break;
                }
            }
            reference.erase(it);
        }
        ASSERT_EQ(q.size(), reference.size());
    }
    while (!reference.empty()) {
        auto it = reference.begin();
        auto [when, cb] = q.pop();
        EXPECT_EQ(when, it->first.first);
        want.push_back(it->second);
        cb();
        reference.erase(it);
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(got, want);
}

TEST(EventQueue, PeakDepthHighWaterMark)
{
    EventQueue q;
    EXPECT_EQ(q.peakDepth(), 0u);
    for (int i = 0; i < 64; ++i)
        q.schedule(i, [] {});
    while (!q.empty())
        q.pop().second();
    EXPECT_EQ(q.peakDepth(), 64u);
    q.schedule(1, [] {});
    EXPECT_EQ(q.peakDepth(), 64u); // high-water mark, not current depth
}

TEST(EventQueue, FarFutureOverflowLadderRoundTrip)
{
    // Events beyond the wheel horizon live in the overflow ladder and
    // are promoted into the wheel once the cursor gets close enough.
    // The pop order must be indistinguishable from a plain sorted queue.
    EventQueue q;
    std::vector<int> order;
    const SimTime far = SimTime{1} << 40; // beyond the 2^36 ns span
    q.schedule(2 * far, [&] { order.push_back(4); });
    q.schedule(100, [&] { order.push_back(1); });
    q.schedule(far, [&] { order.push_back(2); });
    q.schedule(far, [&] { order.push_back(3); }); // tie: insertion order
    q.schedule(3 * far, [&] { order.push_back(5); });
    EXPECT_EQ(q.size(), 5u);
    EXPECT_EQ(q.nextTime(), 100);
    while (!q.empty())
        q.pop().second();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(EventQueue, LadderDemotionForPastAndOverflowTimes)
{
    // Advancing the cursor past a time and then scheduling at that time
    // again must still work (the entry is demoted to the ladder rather
    // than placed in a wheel bucket the cursor already swept).
    EventQueue q;
    q.schedule(1000, [] {});
    auto [when, cb] = q.pop();
    EXPECT_EQ(when, 1000);
    cb();
    std::vector<int> order;
    q.schedule(500, [&] { order.push_back(1); }); // before the cursor
    q.schedule(1000, [&] { order.push_back(2); });
    q.schedule(1500, [&] { order.push_back(3); });
    while (!q.empty())
        q.pop().second();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, MaxHorizonEvent)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(kSimTimeMax, [&] { order.push_back(2); });
    q.schedule(0, [&] { order.push_back(1); });
    EXPECT_EQ(q.nextTime(), 0);
    auto first = q.pop();
    EXPECT_EQ(first.first, 0);
    first.second();
    EXPECT_EQ(q.nextTime(), kSimTimeMax);
    auto last = q.pop();
    EXPECT_EQ(last.first, kSimTimeMax);
    last.second();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeExactUnderWheelAndLadderCancels)
{
    // size() must track live events exactly, whether the cancelled
    // entry sits in a wheel bucket, the ready list, or the ladder.
    EventQueue q;
    const SimTime far = SimTime{1} << 45;
    std::vector<EventId> wheel_ids;
    std::vector<EventId> ladder_ids;
    for (int i = 0; i < 16; ++i)
        wheel_ids.push_back(q.schedule(10 + i, [] {}));
    for (int i = 0; i < 16; ++i)
        ladder_ids.push_back(q.schedule(far + i, [] {}));
    EXPECT_EQ(q.size(), 32u);
    for (int i = 0; i < 16; i += 2) {
        EXPECT_TRUE(q.cancel(wheel_ids[static_cast<size_t>(i)]));
        EXPECT_TRUE(q.cancel(ladder_ids[static_cast<size_t>(i)]));
    }
    EXPECT_EQ(q.size(), 16u);
    size_t popped = 0;
    while (!q.empty()) {
        q.pop().second();
        ++popped;
        EXPECT_EQ(q.size(), 16u - popped);
    }
    EXPECT_EQ(popped, 16u);
}

TEST(EventQueue, FiredSlotReuseKeepsIdsDistinct)
{
    // After an event fires, its slot is recycled with a new generation:
    // the stale id must not cancel the slot's next occupant.
    EventQueue q;
    EventId a = q.schedule(1, [] {});
    q.pop().second(); // fire a
    bool ran = false;
    EventId b = q.schedule(2, [&] { ran = true; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(q.cancel(a)); // stale id: fired long ago
    EXPECT_EQ(q.size(), 1u);
    q.pop().second();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RandomizedWideHorizonsAgainstReference)
{
    // Same reference check as above, but with bimodal horizons spanning
    // several wheel levels plus the overflow ladder, so cascades and
    // ladder promotion are on the hot path of the test.
    EventQueue q;
    std::multimap<std::pair<SimTime, uint64_t>, int> reference;
    Rng rng(1234);
    uint64_t seq = 0;
    std::vector<std::pair<EventId, std::pair<SimTime, uint64_t>>> pending;
    SimTime now = 0;
    std::vector<int> got;
    std::vector<int> want;

    for (int step = 0; step < 8000; ++step) {
        double dice = rng.uniform();
        if (dice < 0.5 || reference.empty()) {
            uint64_t horizon;
            double kind = rng.uniform();
            if (kind < 0.7)
                horizon = rng.below(4096); // short, clustered
            else if (kind < 0.9)
                horizon = rng.below(uint64_t{1} << 22); // mid-level
            else
                horizon = rng.below(uint64_t{1} << 40); // ladder range
            auto when = now + static_cast<SimTime>(horizon);
            int tag = static_cast<int>(seq);
            EventId id =
                q.schedule(when, [tag, &got] { got.push_back(tag); });
            auto key = std::make_pair(when, seq++);
            reference.emplace(key, tag);
            pending.emplace_back(id, key);
        } else if (dice < 0.65) {
            size_t pick = rng.below(pending.size());
            EXPECT_TRUE(q.cancel(pending[pick].first));
            reference.erase(reference.find(pending[pick].second));
            pending.erase(pending.begin() +
                          static_cast<ptrdiff_t>(pick));
        } else {
            auto it = reference.begin();
            auto [when, cb] = q.pop();
            ASSERT_EQ(when, it->first.first);
            now = when;
            want.push_back(it->second);
            cb();
            for (size_t i = 0; i < pending.size(); ++i) {
                if (pending[i].second == it->first) {
                    pending.erase(pending.begin() +
                                  static_cast<ptrdiff_t>(i));
                    break;
                }
            }
            reference.erase(it);
        }
        ASSERT_EQ(q.size(), reference.size());
    }
    while (!reference.empty()) {
        auto it = reference.begin();
        auto [when, cb] = q.pop();
        ASSERT_EQ(when, it->first.first);
        want.push_back(it->second);
        cb();
        reference.erase(it);
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(got, want);
}

TEST(SmallCallback, InlineCaptureInvokes)
{
    int hits = 0;
    uint64_t id = 42;
    SmallCallback cb([&hits, id] { hits += static_cast<int>(id); });
    ASSERT_TRUE(static_cast<bool>(cb));
    cb();
    EXPECT_EQ(hits, 42);
}

TEST(SmallCallback, OversizedCaptureFallsBackToHeap)
{
    struct Big
    {
        char pad[200];
        int *counter;
    };
    int hits = 0;
    Big big{};
    big.counter = &hits;
    static_assert(sizeof(Big) > SmallCallback::kInlineBytes);
    SmallCallback cb([big] { ++*big.counter; });
    cb();
    cb();
    EXPECT_EQ(hits, 2);
}

TEST(SmallCallback, MoveTransfersOwnership)
{
    auto counter = std::make_shared<int>(0);
    SmallCallback a([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    SmallCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    b();
    EXPECT_EQ(*counter, 1);
    b = SmallCallback();
    EXPECT_EQ(counter.use_count(), 1); // capture destroyed on reset
}

TEST(SmallCallback, CancelReleasesCapturedResources)
{
    auto counter = std::make_shared<int>(0);
    EventQueue q;
    EventId id = q.schedule(10, [counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    q.cancel(id);
    // O(1) cancel destroys the callback in place, not lazily at pop.
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(Simulator, ClockAdvances)
{
    Simulator sim;
    SimTime seen = -1;
    sim.at(100, [&] { seen = sim.now(); });
    sim.runAll();
    EXPECT_EQ(seen, 100);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, AfterIsRelative)
{
    Simulator sim;
    std::vector<SimTime> times;
    sim.at(50, [&] {
        sim.after(25, [&] { times.push_back(sim.now()); });
    });
    sim.runAll();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_EQ(times[0], 75);
}

TEST(EventQueue, ConstInspection)
{
    EventQueue q;
    const EventQueue &cq = q;
    EXPECT_TRUE(cq.empty());
    EventId id = q.schedule(5, [] {});
    EXPECT_FALSE(cq.empty());
    EXPECT_EQ(cq.nextTime(), 5);
    q.cancel(id);
    EXPECT_TRUE(cq.empty()); // skips the cancelled top, still const
}

TEST(Simulator, IdleIsConst)
{
    Simulator sim;
    const Simulator &csim = sim;
    EXPECT_TRUE(csim.idle());
    sim.at(10, [] {});
    EXPECT_FALSE(csim.idle());
}

TEST(Simulator, RunAllEventStormLimitThrows)
{
    Simulator sim;
    std::function<void()> storm = [&] { sim.after(1, storm); };
    sim.after(0, storm);
    EXPECT_THROW(sim.runAll(1000), FatalError);
}

TEST(Simulator, RunAllLimitAllowsBoundedWork)
{
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        sim.at(i, [&] { ++fired; });
    sim.runAll(100); // limit far above the event count: no throw
    EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int fired = 0;
    sim.at(10, [&] { ++fired; });
    sim.at(20, [&] { ++fired; });
    sim.at(30, [&] { ++fired; });
    sim.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 20);
    sim.runAll();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle)
{
    Simulator sim;
    sim.runUntil(msToNs(5));
    EXPECT_EQ(sim.now(), msToNs(5));
}

TEST(Simulator, EventsExecutedCounter)
{
    Simulator sim;
    for (int i = 0; i < 5; ++i)
        sim.at(i, [] {});
    sim.runAll();
    EXPECT_EQ(sim.eventsExecuted(), 5u);
}

TEST(Simulator, CascadingEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            sim.after(1, chain);
    };
    sim.after(1, chain);
    sim.runAll();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, StepReturnsFalseWhenIdle)
{
    Simulator sim;
    EXPECT_FALSE(sim.step());
    sim.at(5, [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelPendingEvent)
{
    Simulator sim;
    bool fired = false;
    EventId id = sim.at(10, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.runAll();
    EXPECT_FALSE(fired);
}

TEST(PeriodicTimer, FiresEveryPeriod)
{
    Simulator sim;
    std::vector<SimTime> fires;
    PeriodicTimer timer(sim, 100, [&] { fires.push_back(sim.now()); });
    timer.start();
    sim.runUntil(350);
    EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 300}));
}

TEST(PeriodicTimer, StopCeasesFiring)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    sim.at(250, [&] { timer.stop(); });
    sim.runUntil(1000);
    EXPECT_EQ(fires, 2);
    EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, RestartAfterStop)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    sim.runUntil(150);
    timer.stop();
    timer.start();
    sim.runUntil(450);
    // One fire at t=100, then restart at t=150 -> fires at 250, 350, 450.
    EXPECT_EQ(fires, 4);
}

TEST(PeriodicTimer, StopFromInsideCallback)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] {
        if (++fires == 2)
            timer.stop();
    });
    timer.start();
    sim.runUntil(10000);
    EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, StartIsIdempotent)
{
    Simulator sim;
    int fires = 0;
    PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    timer.start();
    sim.runUntil(100);
    EXPECT_EQ(fires, 1);
}

} // namespace
} // namespace isol::sim
