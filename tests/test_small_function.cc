/**
 * @file
 * Direct edge-case coverage for sim::SmallCallback, the DES hot-path
 * callback type: inline vs heap storage selection, move-only captures,
 * self-move, over-aligned callables, and exact construction/destruction
 * counts on both storage paths.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

#include "sim/small_function.hh"

namespace isol::sim
{
namespace
{

/** Tracks every special-member call of its instances. */
struct Tally
{
    int constructed = 0;
    int destroyed = 0;
    int moves = 0;
};

struct Tracked
{
    Tally *tally;
    int *hits;

    Tracked(Tally *t, int *h) : tally(t), hits(h) { ++tally->constructed; }
    Tracked(Tracked &&other) noexcept
        : tally(other.tally), hits(other.hits)
    {
        ++tally->constructed;
        ++tally->moves;
    }
    Tracked(const Tracked &) = delete;
    Tracked &operator=(const Tracked &) = delete;
    Tracked &operator=(Tracked &&) = delete;
    ~Tracked() { ++tally->destroyed; }

    void operator()() { ++*hits; }
};

/** Same tracking, padded past the inline buffer → heap path. */
struct BigTracked : Tracked
{
    unsigned char pad[SmallCallback::kInlineBytes + 16];

    BigTracked(Tally *t, int *h) : Tracked(t, h), pad{} {}
};

static_assert(sizeof(Tracked) <= SmallCallback::kInlineBytes,
              "Tracked must exercise the inline path");
static_assert(sizeof(BigTracked) > SmallCallback::kInlineBytes,
              "BigTracked must exercise the heap path");

TEST(SmallCallback, EmptyStates)
{
    SmallCallback cb;
    EXPECT_FALSE(cb);
    SmallCallback null_cb(nullptr);
    EXPECT_FALSE(null_cb);

    SmallCallback moved_to(std::move(cb));
    EXPECT_FALSE(moved_to);
}

TEST(SmallCallback, OversizedCallableInvokesCorrectly)
{
    Tally tally;
    int hits = 0;
    {
        SmallCallback cb{BigTracked(&tally, &hits)};
        ASSERT_TRUE(cb);
        cb();
        cb();
    }
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(tally.destroyed, tally.constructed);
}

TEST(SmallCallback, InlineDestructionCountsBalance)
{
    Tally tally;
    int hits = 0;
    {
        SmallCallback cb{Tracked(&tally, &hits)};
        cb();
    }
    EXPECT_EQ(hits, 1);
    EXPECT_GT(tally.constructed, 0);
    EXPECT_EQ(tally.destroyed, tally.constructed);
}

TEST(SmallCallback, HeapDestructionCountsBalance)
{
    Tally tally;
    int hits = 0;
    {
        SmallCallback cb{BigTracked(&tally, &hits)};
        // One live instance inside cb, everything else torn down.
        EXPECT_EQ(tally.constructed - tally.destroyed, 1);
    }
    EXPECT_EQ(tally.destroyed, tally.constructed);
}

TEST(SmallCallback, MoveTransfersInlineCallableExactlyOnce)
{
    Tally tally;
    int hits = 0;
    SmallCallback a{Tracked(&tally, &hits)};
    SmallCallback b(std::move(a));
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): asserting state
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);

    int live = tally.constructed - tally.destroyed;
    EXPECT_EQ(live, 1); // exactly the instance inside b
    b.reset();
    EXPECT_EQ(tally.destroyed, tally.constructed);
}

TEST(SmallCallback, MoveOfHeapCallableStealsPointer)
{
    Tally tally;
    int hits = 0;
    SmallCallback a{BigTracked(&tally, &hits)};
    int constructed_before = tally.constructed;

    SmallCallback b(std::move(a));
    // Heap path moves the owning pointer, never the callable itself.
    EXPECT_EQ(tally.constructed, constructed_before);
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): asserting state
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);
    b.reset();
    EXPECT_EQ(tally.destroyed, tally.constructed);
}

TEST(SmallCallback, MoveOnlyCaptureWorks)
{
    auto owned = std::make_unique<int>(41);
    int out = 0;
    SmallCallback cb{[p = std::move(owned), &out] { out = *p + 1; }};
    ASSERT_TRUE(cb);
    cb();
    EXPECT_EQ(out, 42);
}

TEST(SmallCallback, SelfMoveAssignmentKeepsCallable)
{
    int hits = 0;
    SmallCallback cb{[&hits] { ++hits; }};
    SmallCallback &alias = cb;
    cb = std::move(alias);
    ASSERT_TRUE(cb);
    cb();
    EXPECT_EQ(hits, 1);
}

TEST(SmallCallback, MoveAssignmentDestroysPreviousCallable)
{
    Tally old_tally;
    Tally new_tally;
    int old_hits = 0;
    int new_hits = 0;

    SmallCallback cb{Tracked(&old_tally, &old_hits)};
    cb = SmallCallback{Tracked(&new_tally, &new_hits)};
    // The original callable was destroyed by the assignment...
    EXPECT_EQ(old_tally.destroyed, old_tally.constructed);
    // ...and the new one is the live target.
    cb();
    EXPECT_EQ(old_hits, 0);
    EXPECT_EQ(new_hits, 1);
}

TEST(SmallCallback, OverAlignedCallableFallsBackToHeap)
{
    struct alignas(64) OverAligned
    {
        int *out;
        void operator()() { *out = 7; }
    };
    static_assert(alignof(OverAligned) > alignof(std::max_align_t));

    int out = 0;
    SmallCallback cb{OverAligned{&out}};
    ASSERT_TRUE(cb);
    cb();
    EXPECT_EQ(out, 7);
}

TEST(SmallCallback, ExactBufferSizeCallableStaysUsable)
{
    struct Exact
    {
        unsigned char payload[SmallCallback::kInlineBytes - sizeof(int *)];
        int *out;
        void operator()() { *out = static_cast<int>(payload[0]) + 9; }
    };
    static_assert(sizeof(Exact) == SmallCallback::kInlineBytes);

    int out = 0;
    Exact fn{};
    fn.out = &out;
    SmallCallback cb{std::move(fn)};
    cb();
    EXPECT_EQ(out, 9);
}

TEST(SmallCallback, ResetIsIdempotent)
{
    int hits = 0;
    SmallCallback cb{[&hits] { ++hits; }};
    cb.reset();
    EXPECT_FALSE(cb);
    cb.reset();
    EXPECT_FALSE(cb);
    EXPECT_EQ(hits, 0);
}

} // namespace
} // namespace isol::sim
