/**
 * @file
 * Unit and integration tests for the SSD model: FIFO resource servers,
 * FTL bookkeeping/GC, and end-to-end device behaviour (latency,
 * saturation, write cache, GC interference, Optane preset).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/types.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"
#include "ssd/ftl.hh"
#include "ssd/resource.hh"
#include "stats/histogram.hh"

namespace isol::ssd
{
namespace
{

// A small flash config so FTL/GC tests run fast.
SsdConfig
tinyFlash()
{
    SsdConfig cfg = samsung980ProLike();
    cfg.user_capacity = 64 * MiB;
    cfg.channels = 2;
    cfg.dies_per_channel = 2;
    cfg.pages_per_block = 32;
    cfg.overprovision = 0.25;
    return cfg;
}

TEST(FifoServer, ServesSerially)
{
    sim::Simulator sim;
    FifoServer server(sim);
    std::vector<SimTime> done;
    server.enqueue(100, [&] { done.push_back(sim.now()); });
    server.enqueue(50, [&] { done.push_back(sim.now()); });
    sim.runAll();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 100);
    EXPECT_EQ(done[1], 150); // waits for the first job
}

TEST(FifoServer, IdleGapsDoNotAccumulate)
{
    sim::Simulator sim;
    FifoServer server(sim);
    SimTime second_done = 0;
    server.enqueue(10, [] {});
    sim.at(1000, [&] {
        server.enqueue(10, [&] { second_done = sim.now(); });
    });
    sim.runAll();
    EXPECT_EQ(second_done, 1010); // starts fresh after the idle gap
    EXPECT_EQ(server.busyNs(), 20);
    EXPECT_EQ(server.jobs(), 2u);
}

TEST(FifoServer, BacklogReporting)
{
    sim::Simulator sim;
    FifoServer server(sim);
    EXPECT_FALSE(server.busy());
    EXPECT_EQ(server.backlog(), 0);
    server.enqueue(100, [] {});
    EXPECT_TRUE(server.busy());
    EXPECT_EQ(server.backlog(), 100);
}

TEST(Ftl, GeometryDerivation)
{
    SsdConfig cfg = tinyFlash();
    Ftl ftl(cfg);
    EXPECT_EQ(ftl.numDies(), 4u);
    // 64 MiB * 1.25 / 4 dies / (32 * 4 KiB) blocks.
    EXPECT_EQ(ftl.blocksPerDie(), 160u);
}

TEST(Ftl, UnmappedReadsResolveToStripe)
{
    Ftl ftl(tinyFlash());
    PhysLoc a = ftl.lookupRead(0);
    PhysLoc b = ftl.lookupRead(1);
    PhysLoc c = ftl.lookupRead(4);
    EXPECT_EQ(a.die, 0u);
    EXPECT_EQ(b.die, 1u);
    EXPECT_EQ(c.die, 0u); // wraps around 4 dies
}

TEST(Ftl, WriteInstallsMapping)
{
    Ftl ftl(tinyFlash());
    uint32_t die = ftl.takeHostWriteDie();
    PhysLoc loc = ftl.commitHostWrite(123, die);
    PhysLoc read = ftl.lookupRead(123);
    EXPECT_EQ(read.die, loc.die);
    EXPECT_EQ(read.block, loc.block);
    EXPECT_EQ(read.page, loc.page);
    EXPECT_EQ(ftl.hostPagesWritten(), 1u);
}

TEST(Ftl, OverwriteInvalidatesOldLocation)
{
    Ftl ftl(tinyFlash());
    ftl.commitHostWrite(7, 0);
    PhysLoc first = ftl.lookupRead(7);
    ftl.commitHostWrite(7, 0);
    PhysLoc second = ftl.lookupRead(7);
    EXPECT_NE(first.page, second.page);
    EXPECT_EQ(ftl.hostPagesWritten(), 2u);
}

TEST(Ftl, RoundRobinWritePointer)
{
    Ftl ftl(tinyFlash());
    EXPECT_EQ(ftl.takeHostWriteDie(), 0u);
    EXPECT_EQ(ftl.takeHostWriteDie(), 1u);
    EXPECT_EQ(ftl.takeHostWriteDie(), 2u);
    EXPECT_EQ(ftl.takeHostWriteDie(), 3u);
    EXPECT_EQ(ftl.takeHostWriteDie(), 0u);
}

TEST(Ftl, SequentialFillLeavesDeviceWritable)
{
    Ftl ftl(tinyFlash());
    ftl.preconditionSequentialFill(1.0);
    for (uint32_t die = 0; die < ftl.numDies(); ++die)
        EXPECT_FALSE(ftl.hostWriteStalled(die)) << "die " << die;
}

TEST(Ftl, RandomOverwriteTriggersGc)
{
    SsdConfig cfg = tinyFlash();
    Ftl ftl(cfg);
    Rng rng(5);
    ftl.preconditionSequentialFill(1.0);
    ftl.preconditionRandomOverwrite(cfg.numLogicalPages() * 2, rng);
    EXPECT_GT(ftl.blocksErased(), 0u);
    EXPECT_GT(ftl.waf(), 1.0);
    // Every die must stay writable in steady state.
    for (uint32_t die = 0; die < ftl.numDies(); ++die)
        EXPECT_FALSE(ftl.hostWriteStalled(die));
}

TEST(Ftl, WafIsBoundedInSteadyState)
{
    SsdConfig cfg = tinyFlash();
    Ftl ftl(cfg);
    Rng rng(5);
    ftl.preconditionSequentialFill(1.0);
    ftl.preconditionRandomOverwrite(cfg.numLogicalPages(), rng);
    ftl.resetStats();
    ftl.preconditionRandomOverwrite(cfg.numLogicalPages(), rng);
    // Greedy GC with 25% OP should keep WAF in a sane band.
    EXPECT_GT(ftl.waf(), 1.0);
    EXPECT_LT(ftl.waf(), 6.0);
}

TEST(Ftl, ResetStatsClearsCounters)
{
    Ftl ftl(tinyFlash());
    ftl.commitHostWrite(1, 0);
    ftl.resetStats();
    EXPECT_EQ(ftl.hostPagesWritten(), 0u);
    EXPECT_EQ(ftl.gcPagesMoved(), 0u);
    EXPECT_EQ(ftl.blocksErased(), 0u);
    EXPECT_DOUBLE_EQ(ftl.waf(), 1.0);
}

TEST(Ftl, FreeFractionDecreasesWithWrites)
{
    Ftl ftl(tinyFlash());
    double before = ftl.freeFraction(0);
    for (int i = 0; i < 1000; ++i)
        ftl.commitHostWrite(static_cast<uint64_t>(i) * 4, 0);
    EXPECT_LT(ftl.freeFraction(0), before);
}

TEST(Ftl, RejectsBadGeometry)
{
    SsdConfig cfg = tinyFlash();
    cfg.channels = 0;
    EXPECT_THROW(Ftl{cfg}, FatalError);

    SsdConfig tiny = tinyFlash();
    tiny.user_capacity = 1 * MiB; // too few blocks per die
    EXPECT_THROW(Ftl{tiny}, FatalError);
}

// --- Device integration ---------------------------------------------------

TEST(SsdDevice, ReadLatencyNearFlashRead)
{
    sim::Simulator sim;
    SsdConfig cfg = samsung980ProLike();
    SsdDevice dev(sim, cfg);
    SimTime done_at = -1;
    dev.submit(OpType::kRead, 0, 4096, [&] { done_at = sim.now(); });
    sim.runAll();
    ASSERT_GT(done_at, 0);
    // tR (with jitter) + channel + link + controller: well under 2x tR.
    EXPECT_GT(done_at, cfg.read_latency / 2);
    EXPECT_LT(done_at, cfg.read_latency * 2);
}

TEST(SsdDevice, WriteCompletesFastViaCache)
{
    sim::Simulator sim;
    SsdConfig cfg = samsung980ProLike();
    SsdDevice dev(sim, cfg);
    SimTime done_at = -1;
    dev.submit(OpType::kWrite, 0, 4096, [&] { done_at = sim.now(); });
    sim.runAll();
    ASSERT_GT(done_at, 0);
    // Cache-acked writes are much faster than a flash program.
    EXPECT_LT(done_at, cfg.program_latency / 2);
    EXPECT_EQ(dev.bytesWritten(), 4096u);
}

TEST(SsdDevice, RandomReadSaturationNearCalibration)
{
    // Keep ~2048 random 4 KiB reads outstanding for 50 ms and check the
    // aggregate bandwidth is near the calibrated ~2.9-3.2 GiB/s point.
    sim::Simulator sim;
    SsdConfig cfg = samsung980ProLike();
    SsdDevice dev(sim, cfg);
    Rng rng(17);

    uint64_t completed_bytes = 0;
    std::function<void()> issue = [&] {
        uint64_t offset = rng.below(cfg.user_capacity / 4096) * 4096;
        dev.submit(OpType::kRead, offset, 4096, [&] {
            completed_bytes += 4096;
            if (sim.now() < msToNs(50))
                issue();
        });
    };
    for (int i = 0; i < 2048; ++i)
        issue();
    sim.runUntil(msToNs(50));

    double gibs = bytesOverNsToGiBs(completed_bytes, msToNs(50));
    EXPECT_GT(gibs, 2.5);
    EXPECT_LT(gibs, 3.4);
}

TEST(SsdDevice, LargeReadsHitLinkCap)
{
    sim::Simulator sim;
    SsdConfig cfg = samsung980ProLike();
    SsdDevice dev(sim, cfg);
    Rng rng(17);

    uint64_t completed_bytes = 0;
    const uint32_t size = 256 * KiB;
    std::function<void()> issue = [&] {
        uint64_t offset = rng.below(cfg.user_capacity / size) * size;
        dev.submit(OpType::kRead, offset, size, [&] {
            completed_bytes += size;
            if (sim.now() < msToNs(50))
                issue();
        });
    };
    for (int i = 0; i < 64; ++i)
        issue();
    sim.runUntil(msToNs(50));

    double gibs = bytesOverNsToGiBs(completed_bytes, msToNs(50));
    // Bounded by the ~3.2 GiB/s host link.
    EXPECT_GT(gibs, 2.3);
    EXPECT_LT(gibs, 3.3);
}

TEST(SsdDevice, SustainedWritesAreProgramBound)
{
    sim::Simulator sim;
    SsdConfig cfg = samsung980ProLike();
    cfg.user_capacity = 256 * MiB; // shrink so preconditioning is fast
    cfg.channels = 4;
    cfg.dies_per_channel = 4; // keep enough blocks per die
    SsdDevice dev(sim, cfg);
    dev.precondition(1.0, 2.0); // deep steady state: stable WAF from t=0
    Rng rng(23);

    uint64_t completed = 0;
    std::function<void()> issue = [&] {
        uint64_t offset = rng.below(cfg.user_capacity / 4096) * 4096;
        dev.submit(OpType::kWrite, offset, 4096, [&] {
            completed += 4096;
            if (sim.now() < msToNs(200))
                issue();
        });
    };
    for (int i = 0; i < 256; ++i)
        issue();
    sim.runUntil(msToNs(200));

    double gibs = bytesOverNsToGiBs(completed, msToNs(200));
    // Far below the read ceiling: programs + GC dominate. The 16-die
    // test device sustains ~0.05 GiB/s (the full 64-die preset ~4x).
    EXPECT_LT(gibs, 1.8);
    EXPECT_GT(gibs, 0.02);
    EXPECT_GT(dev.waf(), 1.0);
    EXPECT_LT(dev.waf(), 30.0);
}

TEST(SsdDevice, GcInterferesWithReads)
{
    // Measure read-only P99, then P99 with concurrent heavy writes; the
    // interference (GC + program occupancy) must raise the tail clearly.
    auto run = [](bool with_writes) {
        sim::Simulator sim;
        SsdConfig cfg = samsung980ProLike();
        cfg.user_capacity = 256 * MiB;
        cfg.channels = 4;
        cfg.dies_per_channel = 4;
        SsdDevice dev(sim, cfg, 99);
        dev.precondition(1.0, 1.0);
        Rng rng(31);
        stats::Histogram lat;

        std::function<void()> read_loop = [&] {
            uint64_t offset = rng.below(cfg.user_capacity / 4096) * 4096;
            SimTime start = sim.now();
            dev.submit(OpType::kRead, offset, 4096, [&, start] {
                lat.record(sim.now() - start);
                if (sim.now() < msToNs(300))
                    read_loop();
            });
        };
        read_loop();

        // Declared at function scope: completion callbacks reference it
        // for the whole run.
        std::function<void()> write_loop = [&] {
            uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
            dev.submit(OpType::kWrite, off, 4096, [&] {
                if (sim.now() < msToNs(300))
                    write_loop();
            });
        };
        if (with_writes) {
            for (int i = 0; i < 128; ++i)
                write_loop();
        }
        sim.runUntil(msToNs(300));
        return lat.percentile(99);
    };

    int64_t p99_clean = run(false);
    int64_t p99_writes = run(true);
    EXPECT_GT(p99_writes, p99_clean * 2);
}

TEST(SsdDevice, OptaneFlatLatency)
{
    sim::Simulator sim;
    SsdConfig cfg = optaneLike();
    SsdDevice dev(sim, cfg);
    SimTime read_done = -1;
    SimTime write_done = -1;
    dev.submit(OpType::kRead, 0, 4096, [&] { read_done = sim.now(); });
    sim.runAll();
    SimTime start = sim.now();
    dev.submit(OpType::kWrite, 4096, 4096,
               [&] { write_done = sim.now() - start; });
    sim.runAll();
    // Both around 12-20 us; read/write symmetric within 2x.
    EXPECT_LT(read_done, usToNs(25));
    EXPECT_LT(write_done, usToNs(25));
    EXPECT_GT(read_done, usToNs(5));
    EXPECT_GT(write_done, usToNs(5));
}

TEST(SsdDevice, OptaneNeedsNoGc)
{
    sim::Simulator sim;
    SsdConfig cfg = optaneLike();
    cfg.user_capacity = 64 * MiB;
    SsdDevice dev(sim, cfg, 3);
    Rng rng(3);
    uint64_t completed = 0;
    std::function<void()> loop = [&] {
        uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
        dev.submit(OpType::kWrite, off, 4096, [&] {
            completed += 4096;
            if (sim.now() < msToNs(100))
                loop();
        });
    };
    for (int i = 0; i < 64; ++i)
        loop();
    sim.runUntil(msToNs(100));
    EXPECT_EQ(dev.blocksErased(), 0u);
    EXPECT_DOUBLE_EQ(dev.waf(), 1.0);
    EXPECT_GT(completed, 0u);
}

TEST(SsdDevice, ZeroSizeRejected)
{
    sim::Simulator sim;
    SsdDevice dev(sim, samsung980ProLike());
    EXPECT_THROW(dev.submit(OpType::kRead, 0, 0, [] {}), FatalError);
}

TEST(SsdDevice, OffsetsWrapCapacity)
{
    sim::Simulator sim;
    SsdConfig cfg = samsung980ProLike();
    SsdDevice dev(sim, cfg);
    bool done = false;
    dev.submit(OpType::kRead, cfg.user_capacity + 4096, 4096,
               [&] { done = true; });
    sim.runAll();
    EXPECT_TRUE(done);
}

TEST(SsdDevice, CountersTrackCompletions)
{
    sim::Simulator sim;
    SsdDevice dev(sim, samsung980ProLike());
    for (int i = 0; i < 10; ++i)
        dev.submit(OpType::kRead, static_cast<uint64_t>(i) * 8192, 8192,
                   [] {});
    sim.runAll();
    EXPECT_EQ(dev.readsCompleted(), 10u);
    EXPECT_EQ(dev.bytesRead(), 10u * 8192u);
    EXPECT_GT(dev.totalDieBusyNs(), 0);
}

TEST(SsdDevice, ReadsPreferredWithoutWritePressure)
{
    // A light writer next to readers: reads keep most of their solo
    // throughput because the controller prefers reads 3:1 when the
    // write cache is not under pressure.
    auto read_iops = [](bool with_light_writes) {
        sim::Simulator sim;
        SsdConfig cfg = samsung980ProLike();
        cfg.user_capacity = 512 * MiB;
        cfg.channels = 4;
        cfg.dies_per_channel = 4;
        SsdDevice dev(sim, cfg, 21);
        dev.precondition(1.0, 1.0);
        Rng rng(21);
        uint64_t reads = 0;
        std::function<void()> read_loop = [&] {
            uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
            dev.submit(OpType::kRead, off, 4096, [&] {
                ++reads;
                if (sim.now() < msToNs(100))
                    read_loop();
            });
        };
        std::function<void()> write_loop = [&] {
            uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
            dev.submit(OpType::kWrite, off, 4096, [&] {
                if (sim.now() < msToNs(100))
                    sim.after(usToNs(200), write_loop); // light load
            });
        };
        for (int i = 0; i < 64; ++i)
            read_loop();
        if (with_light_writes) {
            for (int i = 0; i < 4; ++i)
                write_loop();
        }
        sim.runUntil(msToNs(100));
        return reads;
    };
    uint64_t solo = read_iops(false);
    uint64_t with_writes = read_iops(true);
    EXPECT_GT(with_writes, solo / 2);
}

TEST(SsdDevice, WriteFloodCollapsesReads)
{
    // A saturating writer flips the controller into flush mode: reads
    // lose most of their throughput (the paper's mixed R/W collapse).
    sim::Simulator sim;
    SsdConfig cfg = samsung980ProLike();
    cfg.user_capacity = 512 * MiB;
    cfg.channels = 4;
    cfg.dies_per_channel = 4;
    SsdDevice dev(sim, cfg, 23);
    dev.precondition(1.0, 2.0);
    Rng rng(23);
    uint64_t reads = 0;
    uint64_t writes = 0;
    std::function<void()> read_loop = [&] {
        uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
        dev.submit(OpType::kRead, off, 4096, [&] {
            ++reads;
            if (sim.now() < msToNs(400))
                read_loop();
        });
    };
    std::function<void()> write_loop = [&] {
        uint64_t off = rng.below(cfg.user_capacity / 4096) * 4096;
        dev.submit(OpType::kWrite, off, 4096, [&] {
            ++writes;
            if (sim.now() < msToNs(400))
                write_loop();
        });
    };
    for (int i = 0; i < 64; ++i)
        read_loop();
    for (int i = 0; i < 512; ++i)
        write_loop();
    sim.runUntil(msToNs(400));
    EXPECT_GT(writes, 0u);
    EXPECT_GT(reads, 0u); // not fully starved...
    // ...but far below the ~190k 4KiB reads this device serves solo.
    EXPECT_LT(reads, 60000u);
}

TEST(SsdDevice, UtilizationBetweenZeroAndOne)
{
    sim::Simulator sim;
    SsdDevice dev(sim, samsung980ProLike());
    for (int i = 0; i < 100; ++i)
        dev.submit(OpType::kRead, static_cast<uint64_t>(i) * 4096, 4096,
                   [] {});
    sim.runAll();
    double u = dev.dieUtilization();
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
}

} // namespace
} // namespace isol::ssd
