/**
 * @file
 * Unit and property tests for the statistics module: histogram precision,
 * time series binning, Jain fairness, summaries and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/rng.hh"
#include "stats/fairness.hh"
#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "stats/timeseries.hh"

namespace isol::stats
{
namespace
{

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, SingleValue)
{
    Histogram h;
    h.record(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.percentile(0), 1000);
    EXPECT_EQ(h.percentile(50), 1000);
    EXPECT_EQ(h.percentile(100), 1000);
    EXPECT_EQ(h.max(), 1000);
    EXPECT_EQ(h.min(), 1000);
}

TEST(Histogram, SmallValuesExact)
{
    Histogram h;
    for (int64_t v = 0; v < 64; ++v)
        h.record(v);
    // Values below the sub-bucket count are stored exactly.
    EXPECT_EQ(h.percentile(100), 63);
    EXPECT_EQ(h.min(), 0);
    EXPECT_NEAR(h.mean(), 31.5, 1e-9);
}

TEST(Histogram, NegativeClampsToZero)
{
    Histogram h;
    h.record(-5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.percentile(100), 0);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h;
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        h.record(static_cast<int64_t>(rng.below(1000000)));
    int64_t prev = 0;
    for (double p = 0; p <= 100.0; p += 0.5) {
        int64_t v = h.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Histogram, RelativePrecision)
{
    // Every recorded value must be recoverable within the histogram's
    // relative error bound (1/32 with 64 sub-buckets).
    Histogram h;
    for (int64_t v : {100ll, 1000ll, 10000ll, 123456ll, 99999999ll}) {
        Histogram single;
        single.record(v);
        int64_t q = single.percentile(50);
        EXPECT_GE(q, v);
        EXPECT_LE(static_cast<double>(q - v),
                  static_cast<double>(v) / 32.0 + 1.0)
            << "value " << v << " mapped to " << q;
    }
}

TEST(Histogram, UniformPercentiles)
{
    Histogram h;
    for (int64_t v = 1; v <= 100000; ++v)
        h.record(v);
    // P50 should be near 50000 within the bucket resolution.
    EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50000.0, 2000.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(99)), 99000.0, 3500.0);
}

TEST(Histogram, WeightedRecord)
{
    Histogram h;
    h.record(10, 99);
    h.record(1000000, 1);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(50), 10);
    // The single large value defines the max.
    EXPECT_EQ(h.percentile(100), 1000000);
}

TEST(Histogram, RecordZeroCountIsNoop)
{
    Histogram h;
    h.record(10, 0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, Merge)
{
    Histogram a;
    Histogram b;
    for (int i = 0; i < 100; ++i)
        a.record(100);
    for (int i = 0; i < 100; ++i)
        b.record(10000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_LE(a.percentile(25), 105);
    EXPECT_GE(a.percentile(75), 10000 * 31 / 32);
    EXPECT_EQ(a.min(), 100);
}

TEST(Histogram, Clear)
{
    Histogram h;
    h.record(42);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0);
    h.record(7);
    EXPECT_EQ(h.percentile(100), 7);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtOne)
{
    Histogram h;
    Rng rng(9);
    for (int i = 0; i < 5000; ++i)
        h.record(static_cast<int64_t>(rng.below(100000)) + 50);
    auto cdf = h.cdf();
    ASSERT_FALSE(cdf.empty());
    double prev_p = 0.0;
    int64_t prev_v = -1;
    for (auto [v, p] : cdf) {
        EXPECT_GT(v, prev_v);
        EXPECT_GE(p, prev_p);
        prev_v = v;
        prev_p = p;
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, MaxIsExact)
{
    Histogram h;
    h.record(123457);
    EXPECT_EQ(h.max(), 123457);
    // Percentile is clamped to the true max.
    EXPECT_LE(h.percentile(100), 123457);
}

class HistogramPrecisionTest : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(HistogramPrecisionTest, PercentileWithinBound)
{
    int64_t value = GetParam();
    Histogram h;
    h.record(value);
    int64_t q = h.percentile(99);
    EXPECT_GE(q, value);
    EXPECT_LE(static_cast<double>(q),
              static_cast<double>(value) * (1.0 + 1.0 / 32.0) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(ValuesAcrossMagnitudes, HistogramPrecisionTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000,
                                           4096, 65535, 1000000, 1 << 30,
                                           1ll << 40));

TEST(TimeSeries, BinsAccumulate)
{
    TimeSeries ts(msToNs(100));
    ts.add(0, 10);
    ts.add(msToNs(50), 5);
    ts.add(msToNs(150), 7);
    EXPECT_EQ(ts.binTotal(0), 15u);
    EXPECT_EQ(ts.binTotal(1), 7u);
    EXPECT_EQ(ts.binTotal(2), 0u);
    EXPECT_EQ(ts.total(), 22u);
}

TEST(TimeSeries, RatePerSecond)
{
    TimeSeries ts(msToNs(500));
    ts.add(0, 100);
    ts.add(msToNs(600), 50);
    auto rates = ts.ratePerSecond();
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0], 200.0); // 100 per half second
    EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(TimeSeries, MeanRateWindow)
{
    TimeSeries ts(msToNs(100));
    for (int i = 0; i < 10; ++i)
        ts.add(msToNs(100) * i, 100);
    // Full window: 1000 units over 1 s.
    EXPECT_NEAR(ts.meanRate(0, secToNs(int64_t{1})), 1000.0, 1e-6);
    // Half window.
    EXPECT_NEAR(ts.meanRate(0, msToNs(500)), 1000.0, 1e-6);
}

TEST(TimeSeries, TotalBetweenHonoursBounds)
{
    TimeSeries ts(msToNs(100));
    ts.add(msToNs(0), 1);
    ts.add(msToNs(100), 2);
    ts.add(msToNs(200), 4);
    EXPECT_EQ(ts.totalBetween(msToNs(100), msToNs(200)), 2u);
    EXPECT_EQ(ts.totalBetween(msToNs(100), msToNs(300)), 6u);
    EXPECT_EQ(ts.totalBetween(msToNs(300), msToNs(100)), 0u);
}

TEST(TimeSeries, NegativeTimeClampsToZero)
{
    TimeSeries ts(msToNs(100));
    ts.add(-5, 3);
    EXPECT_EQ(ts.binTotal(0), 3u);
}

TEST(Fairness, PerfectSharing)
{
    EXPECT_DOUBLE_EQ(jainIndex({10, 10, 10, 10}), 1.0);
}

TEST(Fairness, SingleAppIsFair)
{
    EXPECT_DOUBLE_EQ(jainIndex({42}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({}), 1.0);
}

TEST(Fairness, TotalCapture)
{
    // One app hogging everything: J = 1/n.
    EXPECT_NEAR(jainIndex({100, 0, 0, 0}), 0.25, 1e-12);
}

TEST(Fairness, AllZeroAllocationsAreFair)
{
    EXPECT_DOUBLE_EQ(jainIndex({0, 0, 0}), 1.0);
}

TEST(Fairness, KnownValue)
{
    // J([1,2,3]) = 36 / (3 * 14) = 6/7.
    EXPECT_NEAR(jainIndex({1, 2, 3}), 6.0 / 7.0, 1e-12);
}

TEST(Fairness, WeightedProportionalIsPerfect)
{
    // Allocations exactly proportional to weights.
    EXPECT_NEAR(weightedJainIndex({10, 20, 30}, {1, 2, 3}), 1.0, 1e-12);
}

TEST(Fairness, WeightedDetectsDisproportion)
{
    // Equal split despite weight 1:9 is unfair.
    double j = weightedJainIndex({50, 50}, {1, 9});
    EXPECT_LT(j, 0.7);
}

TEST(Fairness, WeightedErrorsOnBadInput)
{
    EXPECT_THROW(weightedJainIndex({1.0}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(weightedJainIndex({1.0}, {0.0}), FatalError);
    EXPECT_THROW(jainIndex({-1.0, 1.0}), FatalError);
}

TEST(Fairness, ScaleInvariant)
{
    double j1 = jainIndex({1, 2, 3, 4});
    double j2 = jainIndex({10, 20, 30, 40});
    EXPECT_NEAR(j1, j2, 1e-12);
}

TEST(Summary, Empty)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValue)
{
    Summary s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, KnownStats)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample stddev of this classic set is sqrt(32/7).
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, NegativeValues)
{
    Summary s;
    s.add(-10.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -10.0);
}

TEST(Table, AlignedRendering)
{
    Table t({"knob", "value"});
    t.addRow({"io.max", "1.0"});
    t.addRow({"io.cost", "0.5"});
    std::string out = t.toAligned();
    EXPECT_NE(out.find("knob"), std::string::npos);
    EXPECT_NE(out.find("io.cost"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvEscaping)
{
    Table t({"a", "b"});
    t.addRow({"x,y", "has \"quote\""});
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"has \"\"quote\"\"\""), std::string::npos);
}

TEST(Table, RowArityChecked)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
    EXPECT_THROW(Table({}), FatalError);
}

} // namespace
} // namespace isol::stats
