/**
 * @file
 * Tests for the fault-tolerant sweep supervisor: error taxonomy,
 * deterministic retry backoff, watchdog and event-budget guards, result
 * validation, manifest round-trip, and the --resume / --only flows.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "isolbench/supervisor.hh"
#include "isolbench/sweep.hh"
#include "isolbench/validate.hh"
#include "sim/simulator.hh"

namespace isol::isolbench
{
namespace
{

namespace sup = supervisor;

/** Fresh supervisor state plus a per-test manifest path. */
class SupervisorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sup::resetForTest();
        manifest_path_ = strCat(::testing::TempDir(), "isol_supervisor_",
                                ::testing::UnitTest::GetInstance()
                                    ->current_test_info()
                                    ->name(),
                                ".manifest.json");
        std::remove(manifest_path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(manifest_path_.c_str());
        sup::resetForTest();
    }

    sup::Options
    fastRetries(uint32_t retries) const
    {
        sup::Options opt;
        opt.retries = retries;
        opt.backoff_base_ms = 1.0;
        opt.backoff_cap_ms = 4.0;
        opt.manifest_path = manifest_path_;
        return opt;
    }

    std::string manifest_path_;
};

TEST_F(SupervisorTest, ErrorKindNames)
{
    EXPECT_STREQ(sup::taskErrorKindName(sup::TaskErrorKind::kTimeout),
                 "timeout");
    EXPECT_STREQ(sup::taskErrorKindName(sup::TaskErrorKind::kException),
                 "exception");
    EXPECT_STREQ(
        sup::taskErrorKindName(sup::TaskErrorKind::kInvariantViolation),
        "invariant_violation");
    EXPECT_STREQ(
        sup::taskErrorKindName(sup::TaskErrorKind::kResourceExhausted),
        "resource_exhausted");
}

std::exception_ptr
capture(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (...) {
        return std::current_exception();
    }
    return nullptr;
}

TEST_F(SupervisorTest, ClassifyErrorTaxonomy)
{
    auto kind_of = [](const std::function<void()> &fn) {
        return sup::classifyError(0, 0, capture(fn)).kind;
    };
    EXPECT_EQ(kind_of([] {
                  throw sup::TaskAbort(sup::TaskErrorKind::kTimeout,
                                       "late");
              }),
              sup::TaskErrorKind::kTimeout);
    EXPECT_EQ(kind_of([] { throw sim::BudgetExceeded("storm"); }),
              sup::TaskErrorKind::kResourceExhausted);
    EXPECT_EQ(kind_of([] {
                  throw validate::InvariantViolation("bad result");
              }),
              sup::TaskErrorKind::kInvariantViolation);
    EXPECT_EQ(kind_of([] { throw std::bad_alloc(); }),
              sup::TaskErrorKind::kResourceExhausted);
    EXPECT_EQ(kind_of([] { fatal("config error"); }),
              sup::TaskErrorKind::kException);
    EXPECT_EQ(kind_of([] { throw 42; }),
              sup::TaskErrorKind::kException);

    sup::TaskError err = sup::classifyError(
        7, 2, capture([] { fatal("boom"); }));
    EXPECT_EQ(err.task, 7u);
    EXPECT_EQ(err.attempt, 2u);
    EXPECT_EQ(err.message, "boom");
}

TEST_F(SupervisorTest, BackoffDeterministicCappedAndJittered)
{
    sup::Options opt;
    opt.backoff_base_ms = 50.0;
    opt.backoff_cap_ms = 2000.0;

    EXPECT_EQ(sup::backoffMs(opt, 3, 0), 0.0);
    for (uint32_t attempt = 1; attempt <= 8; ++attempt) {
        for (size_t task = 0; task < 4; ++task) {
            double d1 = sup::backoffMs(opt, task, attempt);
            double d2 = sup::backoffMs(opt, task, attempt);
            EXPECT_EQ(d1, d2) << "replay must be deterministic";
            double ladder =
                std::min(opt.backoff_cap_ms,
                         opt.backoff_base_ms *
                             static_cast<double>(1u << (attempt - 1)));
            EXPECT_GE(d1, ladder * 0.5);
            EXPECT_LE(d1, ladder);
        }
    }
    // Jitter must separate tasks retrying at the same attempt.
    EXPECT_NE(sup::backoffMs(opt, 0, 1), sup::backoffMs(opt, 1, 1));
}

TEST_F(SupervisorTest, RetryThenSucceedIsDeterministic)
{
    auto run_once = [this] {
        sup::resetForTest();
        sup::setOptions(fastRetries(2));
        std::vector<std::atomic<uint32_t>> attempts(4);
        std::vector<sup::Task> tasks;
        for (size_t i = 0; i < 4; ++i) {
            tasks.push_back([&attempts, i]() -> std::string {
                uint32_t attempt = attempts[i]++;
                // Task 1 fails once, task 2 fails twice.
                if (i == 1 && attempt < 1)
                    fatal("flaky once");
                if (i == 2 && attempt < 2)
                    fatal("flaky twice");
                return strCat("payload-", i, "-attempt-", attempt);
            });
        }
        std::vector<std::string> payloads;
        sup::SweepReport report =
            sup::run("retry-sweep", tasks, payloads, 4);
        return std::make_pair(report, payloads);
    };

    auto [report, payloads] = run_once();
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.completed, 4u);
    EXPECT_EQ(report.retried, 2u);
    EXPECT_EQ(report.failed, 0u);
    ASSERT_EQ(report.errors.size(), 3u);
    EXPECT_EQ(payloads[0], "payload-0-attempt-0");
    EXPECT_EQ(payloads[1], "payload-1-attempt-1");
    EXPECT_EQ(payloads[2], "payload-2-attempt-2");
    EXPECT_EQ(payloads[3], "payload-3-attempt-0");

    // Byte-identical replay, also at a different worker count.
    auto [report2, payloads2] = run_once();
    EXPECT_EQ(payloads, payloads2);
    EXPECT_EQ(report2.retried, 2u);
}

TEST_F(SupervisorTest, RetriesExhaustedReportsFailure)
{
    sup::setOptions(fastRetries(1));
    std::vector<sup::Task> tasks = {
        []() -> std::string { return "ok"; },
        []() -> std::string {
            fatal("always broken");
            return "";
        },
    };
    std::vector<std::string> payloads;
    sup::SweepReport report =
        sup::run("exhausted-sweep", tasks, payloads, 2);
    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.failed, 1u);
    ASSERT_EQ(report.failed_tasks.size(), 1u);
    EXPECT_EQ(report.failed_tasks[0], 1u);
    ASSERT_EQ(report.errors.size(), 2u); // attempt 0 + retry
    EXPECT_EQ(payloads[0], "ok");
    EXPECT_EQ(payloads[1], "");

    std::string table = sup::failureTable();
    EXPECT_NE(table.find("exhausted-sweep"), std::string::npos);
    EXPECT_NE(table.find("exception"), std::string::npos);
    EXPECT_NE(table.find("1 failed"), std::string::npos);
}

TEST_F(SupervisorTest, WatchdogDeadlineFiresAsTimeout)
{
    sup::Options opt;
    opt.task_timeout_ms = 5.0;
    opt.manifest_path.clear();
    sup::setOptions(opt);

    std::vector<sup::Task> tasks = {[]() -> std::string {
        EXPECT_TRUE(sup::guardActive());
        for (int i = 0; i < 100; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            sup::pollGuardDeadline();
        }
        return "should have timed out";
    }};
    std::vector<std::string> payloads;
    sup::SweepReport report =
        sup::runUncheckpointed("watchdog-sweep", tasks, payloads, 1);
    EXPECT_EQ(report.failed, 1u);
    ASSERT_FALSE(report.errors.empty());
    EXPECT_EQ(report.errors[0].kind, sup::TaskErrorKind::kTimeout);
    EXPECT_NE(report.errors[0].message.find("watchdog deadline"),
              std::string::npos);
}

TEST_F(SupervisorTest, EventBudgetStopsRunawayScenario)
{
    sup::Options opt;
    opt.max_task_events = 20000;
    opt.manifest_path.clear();
    sup::setOptions(opt);

    std::vector<sup::Task> tasks = {[]() -> std::string {
        ScenarioConfig cfg;
        cfg.name = "budget-test";
        cfg.num_cores = 2;
        cfg.duration = msToNs(400);
        cfg.warmup = msToNs(50);
        Scenario scenario(cfg);
        scenario.addApp(workload::beApp("be", cfg.duration), "be");
        scenario.run();
        return "ran to completion";
    }};
    std::vector<std::string> payloads;
    sup::SweepReport report =
        sup::runUncheckpointed("budget-sweep", tasks, payloads, 1);
    EXPECT_EQ(report.failed, 1u);
    ASSERT_FALSE(report.errors.empty());
    EXPECT_EQ(report.errors[0].kind,
              sup::TaskErrorKind::kResourceExhausted);
    EXPECT_NE(report.errors[0].message.find("budget"),
              std::string::npos);
}

TEST_F(SupervisorTest, StormGuardRecoverableUnderSupervision)
{
    sup::Options opt;
    opt.manifest_path.clear();
    sup::setOptions(opt);

    // A self-rescheduling event never drains the queue; runAll's storm
    // guard must surface as a recoverable resource_exhausted error when
    // supervised (unsupervised it calls fatal()).
    std::vector<sup::Task> tasks = {[]() -> std::string {
        sim::Simulator simulator;
        std::function<void()> respawn = [&] {
            simulator.after(10, [&respawn] { respawn(); });
        };
        respawn();
        simulator.runAll(5000);
        return "unreachable";
    }};
    std::vector<std::string> payloads;
    sup::SweepReport report =
        sup::runUncheckpointed("storm-sweep", tasks, payloads, 1);
    EXPECT_EQ(report.failed, 1u);
    ASSERT_FALSE(report.errors.empty());
    EXPECT_EQ(report.errors[0].kind,
              sup::TaskErrorKind::kResourceExhausted);
    EXPECT_NE(report.errors[0].message.find("event storm"),
              std::string::npos);
}

TEST_F(SupervisorTest, DoctoredResultsFailValidation)
{
    std::vector<validate::Issue> issues;
    // completed > submitted.
    validate::checkConservation(issues, "nvme0", 100, 150, 0, 64);
    // non-monotone percentiles.
    validate::checkPercentiles(issues, "app", 500, 400, 900);
    // negative throughput.
    validate::checkThroughput(issues, "agg", -1.0);
    // utilisation above 1.
    validate::checkRatio(issues, "cpu", 1.5);
    ASSERT_EQ(issues.size(), 4u);

    try {
        validate::enforce(issues, "doctored");
        FAIL() << "expected InvariantViolation";
    } catch (const validate::InvariantViolation &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("doctored"), std::string::npos);
        EXPECT_NE(what.find("io-conservation"), std::string::npos);
        EXPECT_NE(what.find("latency-percentiles"), std::string::npos);
    }

    std::vector<validate::Issue> clean;
    validate::checkConservation(clean, "nvme0", 100, 90, 5, 64);
    validate::checkPercentiles(clean, "app", 100, 200, 300);
    validate::checkThroughput(clean, "agg", 2.5);
    validate::checkRatio(clean, "cpu", 0.8);
    EXPECT_TRUE(clean.empty());
    validate::enforce(clean, "clean"); // must not throw

    // Supervised classification of a validation failure.
    sup::Options opt;
    opt.manifest_path.clear();
    sup::setOptions(opt);
    std::vector<sup::Task> tasks = {[]() -> std::string {
        std::vector<validate::Issue> bad;
        validate::checkThroughput(bad, "agg", -2.0);
        validate::enforce(bad, "doctored-task");
        return "unreachable";
    }};
    std::vector<std::string> payloads;
    sup::SweepReport report =
        sup::runUncheckpointed("invariant-sweep", tasks, payloads, 1);
    ASSERT_FALSE(report.errors.empty());
    EXPECT_EQ(report.errors[0].kind,
              sup::TaskErrorKind::kInvariantViolation);
}

TEST_F(SupervisorTest, ManifestRoundTripEscapesPayloads)
{
    sup::ManifestSweep sweep;
    sweep.name = "round\ttrip \"sweep\"\n";
    sweep.tasks = 3;
    std::string payload = "cell1\tcell2\nline \"quoted\" \\slash\x01";
    sweep.entries.push_back(
        sup::ManifestEntry{0, sup::digestOf(payload), payload});
    sweep.entries.push_back(sup::ManifestEntry{2, sup::digestOf(""), ""});

    std::string text = sup::encodeManifest({sweep});
    std::vector<sup::ManifestSweep> decoded;
    ASSERT_TRUE(sup::decodeManifest(text, decoded));
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0].name, sweep.name);
    EXPECT_EQ(decoded[0].tasks, 3u);
    ASSERT_EQ(decoded[0].entries.size(), 2u);
    EXPECT_EQ(decoded[0].entries[0].task, 0u);
    EXPECT_EQ(decoded[0].entries[0].payload, payload);
    EXPECT_EQ(decoded[0].entries[0].digest, sup::digestOf(payload));
    EXPECT_EQ(decoded[0].entries[1].task, 2u);
    EXPECT_EQ(decoded[0].entries[1].payload, "");

    std::vector<sup::ManifestSweep> none;
    EXPECT_FALSE(sup::decodeManifest("not json", none));
    EXPECT_FALSE(sup::decodeManifest("{\"sweeps\": [", none));
}

TEST_F(SupervisorTest, DigestIsStable)
{
    EXPECT_EQ(sup::digestOf("abc"), sup::digestOf("abc"));
    EXPECT_NE(sup::digestOf("abc"), sup::digestOf("abd"));
    EXPECT_EQ(sup::digestOf("").size(), 16u);
}

TEST_F(SupervisorTest, ResumeSalvagesCheckpointedTasks)
{
    std::atomic<uint32_t> executions{0};
    auto make_tasks = [&executions] {
        std::vector<sup::Task> tasks;
        for (size_t i = 0; i < 5; ++i) {
            tasks.push_back([&executions, i]() -> std::string {
                ++executions;
                return strCat("result-", i);
            });
        }
        return tasks;
    };

    // First run: everything executes and is checkpointed.
    sup::setOptions(fastRetries(0));
    std::vector<std::string> payloads;
    sup::SweepReport first =
        sup::run("resume-sweep", make_tasks(), payloads, 2);
    EXPECT_EQ(first.completed, 5u);
    EXPECT_EQ(executions.load(), 5u);

    // Second process: resume salvages every task without re-running.
    sup::resetForTest();
    sup::Options opt = fastRetries(0);
    opt.resume = true;
    sup::setOptions(opt);
    ASSERT_TRUE(sup::loadManifestFile(manifest_path_));
    std::vector<std::string> payloads2;
    sup::SweepReport second =
        sup::run("resume-sweep", make_tasks(), payloads2, 8);
    EXPECT_EQ(second.salvaged, 5u);
    EXPECT_EQ(second.completed, 0u);
    EXPECT_EQ(executions.load(), 5u) << "salvaged tasks must not re-run";
    EXPECT_EQ(payloads2, payloads);
}

TEST_F(SupervisorTest, ResumeRejectsDoctoredDigest)
{
    sup::setOptions(fastRetries(0));
    std::vector<sup::Task> tasks = {
        []() -> std::string { return "honest"; }};
    std::vector<std::string> payloads;
    sup::run("digest-sweep", tasks, payloads, 1);

    // Corrupt the checkpointed payload on disk, keeping the old digest.
    std::FILE *f = std::fopen(manifest_path_.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    size_t pos = text.find("honest");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 6, "forged");
    f = std::fopen(manifest_path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(text.c_str(), f);
    std::fclose(f);

    sup::resetForTest();
    sup::Options opt = fastRetries(0);
    opt.resume = true;
    sup::setOptions(opt);
    ASSERT_TRUE(sup::loadManifestFile(manifest_path_));
    std::vector<std::string> payloads2;
    sup::SweepReport report =
        sup::run("digest-sweep", tasks, payloads2, 1);
    // Digest mismatch: the stale payload must lose and the task re-run.
    EXPECT_EQ(report.salvaged, 0u);
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(payloads2[0], "honest");
}

TEST_F(SupervisorTest, OnlyRunsSingleTaskIndex)
{
    sup::Options opt = fastRetries(0);
    opt.only = 1;
    sup::setOptions(opt);

    std::atomic<uint32_t> executions{0};
    std::vector<sup::Task> tasks;
    for (size_t i = 0; i < 3; ++i) {
        tasks.push_back([&executions, i]() -> std::string {
            ++executions;
            return strCat("only-", i);
        });
    }
    std::vector<std::string> payloads;
    sup::SweepReport report = sup::run("only-sweep", tasks, payloads, 4);
    EXPECT_EQ(executions.load(), 1u);
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.skipped, 2u);
    EXPECT_EQ(payloads[0], "");
    EXPECT_EQ(payloads[1], "only-1");
    EXPECT_EQ(payloads[2], "");
}

TEST_F(SupervisorTest, GuardedMapReturnsTypedResultsAndThrows)
{
    sup::Options opt = fastRetries(1);
    opt.manifest_path.clear();
    sup::setOptions(opt);

    std::vector<int> squares = sup::guardedMap<int>(
        "map-ok", 6, [](size_t i) { return static_cast<int>(i * i); },
        3);
    ASSERT_EQ(squares.size(), 6u);
    for (size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], static_cast<int>(i * i));

    EXPECT_THROW(sup::guardedMap<int>(
                     "map-bad", 3,
                     [](size_t i) -> int {
                         if (i == 1)
                             fatal("permanently broken");
                         return 0;
                     },
                     3),
                 sweep::SweepError);
}

TEST_F(SupervisorTest, GuardBudgetsPropagateIntoNestedSweeps)
{
    sup::Options opt;
    opt.max_task_events = 10000;
    opt.manifest_path.clear();
    sup::setOptions(opt);

    // The outer guarded task spawns a nested worker pool; the nested
    // workers must inherit (and charge) the outer task's event budget.
    std::vector<sup::Task> tasks = {[]() -> std::string {
        std::vector<uint64_t> charged = sweep::map<uint64_t>(
            4,
            [](size_t) -> uint64_t {
                EXPECT_TRUE(sup::guardActive());
                sup::chargeGuardEvents(4000);
                return 1;
            },
            4);
        (void)charged;
        return "done";
    }};
    std::vector<std::string> payloads;
    sup::SweepReport report =
        sup::runUncheckpointed("nested-budget", tasks, payloads, 1);
    EXPECT_EQ(report.failed, 1u);
    ASSERT_FALSE(report.errors.empty());
    EXPECT_EQ(report.errors[0].kind,
              sup::TaskErrorKind::kResourceExhausted);
}

} // namespace
} // namespace isol::isolbench
