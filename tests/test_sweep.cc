/**
 * @file
 * Tests for the parallel sweep engine: slot-indexed result collection,
 * exception ordering, nested-sweep degradation, and — the core contract
 * — byte-identical reports for any worker count, with and without fault
 * injection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strings.hh"
#include "fault/fault.hh"
#include "isolbench/d2_fairness.hh"
#include "isolbench/scenario.hh"
#include "isolbench/sweep.hh"

namespace isol::isolbench
{
namespace
{

TEST(SweepEngine, ResultsLandInSlotOrder)
{
    auto out = sweep::map<int>(
        100, [](size_t i) { return static_cast<int>(i * i); }, 8);
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(SweepEngine, EmptyAndSingleTask)
{
    sweep::run({}, 8);
    auto one = sweep::map<int>(1, [](size_t) { return 7; }, 8);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 7);
}

TEST(SweepEngine, AllTasksRunDespiteThrow)
{
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([&ran, i] {
            ++ran;
            if (i == 3 || i == 5)
                fatal(strCat("task ", i, " failed"));
        });
    }
    try {
        sweep::run(std::move(tasks), 4);
        FAIL() << "expected SweepError";
    } catch (const sweep::SweepError &e) {
        // Every failure is reported, in task-index order, independent of
        // scheduling.
        ASSERT_EQ(e.failures().size(), 2u);
        EXPECT_EQ(e.failures()[0].task, 3u);
        EXPECT_EQ(e.failures()[0].message, "task 3 failed");
        EXPECT_EQ(e.failures()[1].task, 5u);
        EXPECT_EQ(e.failures()[1].message, "task 5 failed");
        EXPECT_NE(std::string(e.what()).find("2 tasks failed"),
                  std::string::npos);
    }
    EXPECT_EQ(ran.load(), 8);
}

TEST(SweepEngine, SingleFailureRethrownVerbatim)
{
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 4; ++i) {
        tasks.push_back([i] {
            if (i == 2)
                fatal("task 2 failed");
        });
    }
    // One failure: the original exception type survives for callers that
    // match on FatalError.
    try {
        sweep::run(std::move(tasks), 4);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "task 2 failed");
    }
}

TEST(SweepEngine, NestedSweepStillCorrect)
{
    auto outer = sweep::map<int>(
        4,
        [](size_t i) {
            auto inner = sweep::map<int>(
                8,
                [i](size_t j) { return static_cast<int>(i * 100 + j); },
                8);
            int sum = 0;
            for (int v : inner)
                sum += v;
            return sum;
        },
        4);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(outer[i], static_cast<int>(i * 800 + 28));
}

TEST(SweepEngine, DefaultJobsOverride)
{
    sweep::setDefaultJobs(3);
    EXPECT_EQ(sweep::defaultJobs(), 3u);
    sweep::setDefaultJobs(0);
    EXPECT_GE(sweep::defaultJobs(), 1u);
}

/** Fig. 5-style report over a (cgroups x knob) grid, as one string. */
std::string
fairnessGridReport(uint32_t jobs)
{
    const std::vector<uint32_t> group_counts = {2, 4};
    const Knob knobs[] = {Knob::kNone, Knob::kBfq, Knob::kIoCost};

    FairnessOptions opts;
    opts.apps_per_cgroup = 2;
    opts.num_cores = 8;
    opts.repeats = 2;
    opts.duration = msToNs(220);
    opts.warmup = msToNs(60);

    struct GridPoint
    {
        uint32_t cgroups;
        Knob knob;
    };
    std::vector<GridPoint> grid;
    for (uint32_t cgroups : group_counts) {
        for (Knob knob : knobs)
            grid.push_back({cgroups, knob});
    }

    std::vector<FairnessResult> results = sweep::map<FairnessResult>(
        grid.size(),
        [&](size_t i) {
            return runFairness(grid[i].knob, grid[i].cgroups, true,
                               FairnessMix::kUniform, opts);
        },
        jobs);

    std::string report;
    for (const FairnessResult &res : results) {
        report += strCat(res.cgroups, " ", knobName(res.knob), " jain=",
                         formatDouble(res.jain_mean, 6), " std=",
                         formatDouble(res.jain_std, 6), " agg=",
                         formatDouble(res.agg_gibs_mean, 6), "\n");
        for (double bw : res.per_group_gibs)
            report += strCat(" ", formatDouble(bw, 6));
        report += "\n";
    }
    return report;
}

TEST(SweepDeterminism, Fig5GridByteIdenticalAcrossJobs)
{
    std::string sequential = fairnessGridReport(1);
    std::string parallel = fairnessGridReport(8);
    EXPECT_EQ(sequential, parallel);
    EXPECT_FALSE(sequential.empty());
}

/** One fault-injected scenario; returns an exact-metrics fingerprint. */
std::string
faultedScenarioFingerprint(uint64_t seed)
{
    ScenarioConfig cfg;
    cfg.name = strCat("sweep-faults-", seed);
    cfg.knob = Knob::kIoCost;
    cfg.num_cores = 4;
    cfg.duration = msToNs(250);
    cfg.warmup = msToNs(50);
    cfg.seed = seed;
    cfg.faults = fault::profileConfig(fault::Profile::kAll);

    Scenario scenario(cfg);
    uint32_t lc = scenario.addApp(workload::lcApp("lc", cfg.duration),
                                  "lc");
    scenario.addApp(workload::beApp("be", cfg.duration), "be");
    scenario.tree().writeFile(scenario.appGroup(lc), "io.weight",
                              "10000");
    scenario.run();

    std::string print;
    for (uint32_t i = 0; i < scenario.numApps(); ++i) {
        print += strCat(scenario.app(i).windowBytes(), ":",
                        scenario.app(i).totalIos(), ":",
                        scenario.app(i).latency().percentile(99), ";");
    }
    print += strCat("events=", scenario.sim().eventsExecuted());
    return print;
}

TEST(SweepDeterminism, FaultedReplayByteIdenticalAcrossJobs)
{
    auto fingerprints = [](uint32_t jobs) {
        return sweep::map<std::string>(
            4,
            [](size_t i) {
                return faultedScenarioFingerprint(11 + i * 17);
            },
            jobs);
    };
    std::vector<std::string> sequential = fingerprints(1);
    std::vector<std::string> parallel = fingerprints(8);
    EXPECT_EQ(sequential, parallel);
    for (const std::string &fp : sequential)
        EXPECT_NE(fp.find("events="), std::string::npos);
}

TEST(SweepProfiler, RecordsScenarioRuns)
{
    sweep::clearProfiles();
    faultedScenarioFingerprint(3);
    auto profiles = sweep::profiles();
    ASSERT_EQ(profiles.size(), 1u);
    EXPECT_EQ(profiles[0].name, "sweep-faults-3");
    EXPECT_GT(profiles[0].events, 0u);
    EXPECT_GT(profiles[0].peak_queue_depth, 0u);

    auto summary = sweep::profileSummary();
    EXPECT_EQ(summary.scenarios, 1u);
    EXPECT_EQ(summary.events, profiles[0].events);
    EXPECT_NE(sweep::profileSummaryLine().find("1 scenarios"),
              std::string::npos);
    sweep::clearProfiles();
}

} // namespace
} // namespace isol::isolbench
