/**
 * @file
 * Tests for block-trace parsing/replay and hotspot access skew.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_device.hh"
#include "common/logging.hh"
#include "host/cpu.hh"
#include "host/engine.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"
#include "workload/app_profiles.hh"
#include "workload/job.hh"
#include "workload/trace.hh"

namespace isol::workload
{
namespace
{

TEST(TraceParse, BasicRecords)
{
    auto records = parseTraceString(
        "# a comment\n"
        "0,R,4096,4096\n"
        "\n"
        "125,W,1048576,65536\n");
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].when, 0);
    EXPECT_EQ(records[0].op, OpType::kRead);
    EXPECT_EQ(records[0].offset, 4096u);
    EXPECT_EQ(records[0].size, 4096u);
    EXPECT_EQ(records[1].when, usToNs(125));
    EXPECT_EQ(records[1].op, OpType::kWrite);
}

TEST(TraceParse, AcceptsWordOpsAndSuffixes)
{
    auto records = parseTraceString("10,read,1m,64k\n20,write,0,4k\n");
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].offset, MiB);
    EXPECT_EQ(records[0].size, 64 * KiB);
    EXPECT_EQ(records[1].op, OpType::kWrite);
}

TEST(TraceParse, SortsByTimestamp)
{
    auto records = parseTraceString("50,R,0,4096\n10,R,4096,4096\n");
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].when, usToNs(10));
    EXPECT_EQ(records[1].when, usToNs(50));
}

TEST(TraceParse, RejectsMalformedLines)
{
    EXPECT_THROW(parseTraceString("0,R,4096\n"), FatalError);
    EXPECT_THROW(parseTraceString("0,X,0,4096\n"), FatalError);
    EXPECT_THROW(parseTraceString("abc,R,0,4096\n"), FatalError);
    EXPECT_THROW(parseTraceString("0,R,0,0\n"), FatalError);
}

struct ReplayFixture : public ::testing::Test
{
    ReplayFixture()
        : ssd(sim, ssd::samsung980ProLike(), 31),
          bdev(sim, tree, ssd, blk::BlockDeviceConfig{}), cpus(sim, 2)
    {
        tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
        cg = &tree.createChild(tree.root(), "replay");
        bdev.start();
    }

    sim::Simulator sim;
    cgroup::CgroupTree tree;
    ssd::SsdDevice ssd;
    blk::BlockDevice bdev;
    host::CpuSet cpus;
    cgroup::Cgroup *cg = nullptr;
};

TEST_F(ReplayFixture, ReplaysAllRecords)
{
    std::string text;
    for (int i = 0; i < 50; ++i)
        text += strCat(i * 100, ",R,", i * 4096, ",4096\n");
    TraceReplayer replayer(sim, parseTraceString(text), bdev,
                           cpus.core(0), host::ioUringEngine(), tree, cg,
                           1);
    replayer.schedule();
    sim.runUntil(msToNs(100));
    EXPECT_TRUE(replayer.done());
    EXPECT_EQ(replayer.completed(), 50u);
    EXPECT_EQ(replayer.latency().count(), 50u);
    EXPECT_GT(replayer.latency().percentile(50), usToNs(50));
}

TEST_F(ReplayFixture, OpenLoopTimingRespected)
{
    // Two records 10 ms apart: the second must not complete before its
    // timestamp even though the device is idle.
    TraceReplayer replayer(sim,
                           parseTraceString("0,R,0,4096\n10000,R,8192,4096\n"),
                           bdev, cpus.core(0), host::ioUringEngine(),
                           tree, cg, 1);
    replayer.schedule();
    sim.runUntil(msToNs(5));
    EXPECT_EQ(replayer.completed(), 1u);
    sim.runUntil(msToNs(20));
    EXPECT_EQ(replayer.completed(), 2u);
}

TEST_F(ReplayFixture, TimeScaleCompresses)
{
    TraceReplayer replayer(sim,
                           parseTraceString("0,R,0,4096\n100000,R,8192,4096\n"),
                           bdev, cpus.core(0), host::ioUringEngine(),
                           tree, cg, 1, /*time_scale=*/0.1);
    replayer.schedule();
    sim.runUntil(msToNs(15)); // 100 ms record lands at 10 ms
    EXPECT_EQ(replayer.completed(), 2u);
}

TEST_F(ReplayFixture, CgroupAttachedDuringReplay)
{
    TraceReplayer replayer(sim, parseTraceString("1000,W,0,4096\n"),
                           bdev, cpus.core(0), host::ioUringEngine(),
                           tree, cg, 1);
    replayer.schedule();
    sim.runUntil(usToNs(500));
    EXPECT_EQ(cg->processCount(), 1u);
    sim.runUntil(msToNs(20));
    EXPECT_EQ(cg->processCount(), 0u);
    EXPECT_TRUE(replayer.done());
}

TEST_F(ReplayFixture, RejectsBadTimeScale)
{
    EXPECT_THROW(TraceReplayer(sim, {}, bdev, cpus.core(0),
                               host::ioUringEngine(), tree, cg, 1, 0.0),
                 FatalError);
}

// --- Hotspot access skew ---------------------------------------------------

TEST_F(ReplayFixture, HotspotSkewConcentratesTraffic)
{
    JobSpec spec = lcApp("hot", msToNs(300));
    spec.iodepth = 8;
    spec.range = 1 * GiB;
    spec.hot_fraction = 0.2;
    spec.hot_traffic = 0.8;
    FioJob job(sim, spec, bdev, cpus.core(1), host::ioUringEngine(),
               tree, cg, 2);
    job.schedule();

    // Count completions by region via the device byte counters is not
    // possible; instead sample pickOffset indirectly through a custom
    // spot check: run and verify the job completed plenty of I/O, then
    // rely on the distribution test below.
    sim.runUntil(msToNs(300));
    EXPECT_GT(job.totalIos(), 1000u);
}

TEST(HotspotDistribution, EightyTwenty)
{
    Rng rng(17);
    const uint64_t blocks = 100000;
    uint64_t hot_hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        uint64_t block = pickHotspotBlock(rng, blocks, 0.2, 0.8);
        ASSERT_LT(block, blocks);
        hot_hits += block < blocks / 5;
    }
    EXPECT_NEAR(static_cast<double>(hot_hits) / n, 0.8, 0.02);
}

TEST(HotspotDistribution, UniformWithinRegions)
{
    Rng rng(19);
    const uint64_t blocks = 1000;
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i) {
        uint64_t block = pickHotspotBlock(rng, blocks, 0.5, 0.5);
        ++counts[block / 100];
    }
    // 50/50 over halves: each decile within a half is ~equal.
    for (int d = 0; d < 5; ++d)
        EXPECT_NEAR(counts[d], 10000, 800) << "hot decile " << d;
    for (int d = 5; d < 10; ++d)
        EXPECT_NEAR(counts[d], 10000, 800) << "cold decile " << d;
}

TEST(HotspotDistribution, DegenerateFractionCoversRegion)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(pickHotspotBlock(rng, 1, 0.2, 0.8), 1u);
        EXPECT_LT(pickHotspotBlock(rng, 10, 1.0, 0.5), 10u);
    }
}

TEST(HotspotDistribution, SpecValidation)
{
    sim::Simulator sim;
    cgroup::CgroupTree tree;
    ssd::SsdDevice ssd_dev(sim, ssd::samsung980ProLike(), 41);
    blk::BlockDevice bdev(sim, tree, ssd_dev, blk::BlockDeviceConfig{});
    host::CpuSet cpus(sim, 1);
    JobSpec bad = batchApp("hot", msToNs(10));
    bad.hot_fraction = 1.5;
    EXPECT_THROW(FioJob(sim, bad, bdev, cpus.core(0),
                        host::ioUringEngine(), tree, nullptr, 2),
                 FatalError);
}

} // namespace
} // namespace isol::workload
