/**
 * @file
 * Tests for the fio-like workload generator: queue-depth maintenance,
 * rate limiting, sequential/random offsets, read/write mixes, bursts,
 * cgroup attach/detach, and measure-window statistics.
 */

#include <gtest/gtest.h>

#include <memory>

#include "blk/block_device.hh"
#include "host/cpu.hh"
#include "host/engine.hh"
#include "sim/simulator.hh"
#include "ssd/config.hh"
#include "ssd/device.hh"
#include "workload/app_profiles.hh"
#include "workload/job.hh"

namespace isol::workload
{
namespace
{

struct JobFixture : public ::testing::Test
{
    JobFixture()
        : ssd(sim, ssd::samsung980ProLike(), 11),
          bdev(sim, tree, ssd, blk::BlockDeviceConfig{}), cpus(sim, 4)
    {
        tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");
        cg = &tree.createChild(tree.root(), "app");
        bdev.start();
    }

    std::unique_ptr<FioJob>
    makeJob(JobSpec spec, uint32_t core = 0, uint32_t task = 1)
    {
        return std::make_unique<FioJob>(sim, std::move(spec), bdev,
                                        cpus.core(core),
                                        host::ioUringEngine(), tree, cg,
                                        task);
    }

    sim::Simulator sim;
    cgroup::CgroupTree tree;
    ssd::SsdDevice ssd;
    blk::BlockDevice bdev;
    host::CpuSet cpus;
    cgroup::Cgroup *cg = nullptr;
};

TEST_F(JobFixture, CompletesIos)
{
    JobSpec spec = lcApp("lc", msToNs(100));
    auto job = makeJob(spec);
    job->schedule();
    sim.runUntil(msToNs(150));
    EXPECT_GT(job->totalIos(), 100u);
    EXPECT_FALSE(job->running());
}

TEST_F(JobFixture, Qd1LatencyIncludesCpu)
{
    JobSpec spec = lcApp("lc", msToNs(200));
    auto job = makeJob(spec);
    job->setMeasureWindow(msToNs(20), msToNs(200));
    job->schedule();
    sim.runUntil(msToNs(220));
    // Device ~85 us + ~9 us submission/completion CPU.
    int64_t p50 = job->latency().percentile(50);
    EXPECT_GT(p50, usToNs(70));
    EXPECT_LT(p50, usToNs(130));
}

TEST_F(JobFixture, DeepQueueDrivesHigherThroughput)
{
    JobSpec qd1 = lcApp("lc", msToNs(100));
    JobSpec qd64 = batchApp("batch", msToNs(100));
    qd64.iodepth = 64;
    auto a = makeJob(qd1, 0, 1);
    auto b = makeJob(qd64, 1, 2);
    a->schedule();
    b->schedule();
    sim.runUntil(msToNs(120));
    EXPECT_GT(b->totalIos(), a->totalIos() * 10);
}

TEST_F(JobFixture, RateLimitHonoured)
{
    JobSpec spec = batchApp("batch", msToNs(500));
    spec.rate_bps = 64 * MiB;
    auto job = makeJob(spec);
    job->setMeasureWindow(0, msToNs(500));
    job->schedule();
    sim.runUntil(msToNs(500));
    double mibs = job->windowBandwidth() / static_cast<double>(MiB);
    EXPECT_GT(mibs, 50.0);
    EXPECT_LT(mibs, 72.0);
}

TEST_F(JobFixture, SequentialOffsetsAdvance)
{
    JobSpec spec = lcApp("seq", msToNs(50));
    spec.pattern = AccessPattern::kSequential;
    spec.offset_base = 1 * MiB;
    spec.range = 64 * KiB; // wraps after 16 x 4 KiB
    auto job = makeJob(spec);
    job->schedule();
    sim.runUntil(msToNs(60));
    EXPECT_GT(job->totalIos(), 16u); // wrapped at least once
}

TEST_F(JobFixture, MixedReadWrite)
{
    JobSpec spec = batchApp("mix", msToNs(100));
    spec.read_fraction = 0.5;
    auto job = makeJob(spec);
    job->schedule();
    sim.runUntil(msToNs(150));
    EXPECT_GT(ssd.bytesRead(), 0u);
    EXPECT_GT(ssd.bytesWritten(), 0u);
}

TEST_F(JobFixture, WriteOpImpliesWriteMix)
{
    JobSpec spec = batchApp("writer", msToNs(50));
    spec.op = OpType::kWrite;
    auto job = makeJob(spec);
    job->schedule();
    sim.runUntil(msToNs(100));
    EXPECT_EQ(ssd.bytesRead(), 0u);
    EXPECT_GT(ssd.bytesWritten(), 0u);
}

TEST_F(JobFixture, StartDelayRespected)
{
    JobSpec spec = lcApp("late", msToNs(50));
    spec.start_time = msToNs(100);
    auto job = makeJob(spec);
    job->schedule();
    sim.runUntil(msToNs(50));
    EXPECT_EQ(job->totalIos(), 0u);
    EXPECT_FALSE(job->running());
    sim.runUntil(msToNs(120));
    EXPECT_TRUE(job->running());
    sim.runUntil(msToNs(200));
    EXPECT_GT(job->totalIos(), 0u);
    EXPECT_FALSE(job->running());
}

TEST_F(JobFixture, CgroupAttachDetachLifecycle)
{
    JobSpec spec = lcApp("lc", msToNs(50));
    spec.start_time = msToNs(10);
    auto job = makeJob(spec);
    job->schedule();
    EXPECT_EQ(cg->processCount(), 0u);
    sim.runUntil(msToNs(20));
    EXPECT_EQ(cg->processCount(), 1u);
    sim.runUntil(msToNs(100)); // stopped and drained
    EXPECT_EQ(cg->processCount(), 0u);
}

TEST_F(JobFixture, BurstDutyCycle)
{
    JobSpec spec = batchApp("bursty", msToNs(400));
    spec.iodepth = 16;
    spec.burst_on = msToNs(50);
    spec.burst_off = msToNs(50);
    spec.stats_bin = msToNs(10);
    auto job = makeJob(spec);
    job->schedule();
    sim.runUntil(msToNs(400));
    const auto &series = job->bandwidthSeries();
    // On-phase bins carry far more traffic than off-phase bins.
    uint64_t on_phase = series.totalBetween(msToNs(10), msToNs(40));
    uint64_t off_phase = series.totalBetween(msToNs(70), msToNs(90));
    EXPECT_GT(on_phase, off_phase * 3 + 1);
}

TEST_F(JobFixture, MeasureWindowExcludesWarmup)
{
    JobSpec spec = lcApp("lc", msToNs(200));
    auto job = makeJob(spec);
    job->setMeasureWindow(msToNs(100), msToNs(200));
    job->schedule();
    sim.runUntil(msToNs(200));
    EXPECT_LT(job->windowIos(), job->totalIos());
    EXPECT_EQ(job->windowIos(), job->latency().count());
}

TEST_F(JobFixture, WindowBandwidthMatchesBytes)
{
    JobSpec spec = batchApp("batch", msToNs(300));
    auto job = makeJob(spec);
    job->setMeasureWindow(msToNs(100), msToNs(300));
    job->schedule();
    sim.runUntil(msToNs(300));
    double expect = static_cast<double>(job->windowBytes()) / 0.2;
    EXPECT_NEAR(job->windowBandwidth(), expect, expect * 1e-9 + 1.0);
}

TEST_F(JobFixture, InvalidSpecsRejected)
{
    JobSpec zero_bs = lcApp("bad", msToNs(10));
    zero_bs.block_size = 0;
    EXPECT_THROW(makeJob(zero_bs), FatalError);

    JobSpec zero_qd = lcApp("bad", msToNs(10));
    zero_qd.iodepth = 0;
    EXPECT_THROW(makeJob(zero_qd), FatalError);

    JobSpec bad_mix = lcApp("bad", msToNs(10));
    bad_mix.read_fraction = 1.5;
    EXPECT_THROW(makeJob(bad_mix), FatalError);
}

TEST_F(JobFixture, AppProfilesMatchPaperShapes)
{
    JobSpec lc = lcApp("lc", secToNs(int64_t{1}));
    EXPECT_EQ(lc.iodepth, 1u);
    EXPECT_EQ(lc.block_size, 4 * KiB);

    JobSpec batch = batchApp("b", secToNs(int64_t{1}));
    EXPECT_EQ(batch.iodepth, 256u);

    JobSpec fig2 = fig2App("a", 0, secToNs(int64_t{5}));
    EXPECT_EQ(fig2.block_size, 64 * KiB);
    EXPECT_EQ(fig2.iodepth, 8u);
    EXPECT_EQ(fig2.rate_bps, 1536 * MiB);
}

} // namespace
} // namespace isol::workload
