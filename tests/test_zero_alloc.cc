/**
 * @file
 * Zero-allocation steady-state verification.
 *
 * Runs a small fig5-style weighted-fairness scenario (io.cost, two
 * cgroups of batch apps) and counts heap allocations during the second
 * half of the run via the operator-new hook (common/alloc_hook.hh).
 * Once the arenas, ring deques, and the timing-wheel slot pool are warm,
 * the per-I/O hot path — submit, QoS gates, elevator, SSD pipeline,
 * completion — must not touch the heap at all.
 *
 * The assertion is allocations *per simulated I/O*, with a tiny bound
 * rather than literally zero: long-lived containers that grow with
 * simulated time, not with I/O count (time-series bins, histogram
 * buckets, an occasional hash-map rehash), are allowed their rare
 * amortised reallocation.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blk/bfq.hh"
#include "blk/qos_cost.hh"
#include "blk/qos_latency.hh"
#include "blk/qos_max.hh"
#include "common/alloc_hook.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "workload/app_profiles.hh"

namespace isol::isolbench
{
namespace
{

uint64_t
totalIos(Scenario &scenario)
{
    uint64_t total = 0;
    for (uint32_t i = 0; i < scenario.numApps(); ++i)
        total += scenario.app(i).totalIos();
    return total;
}

TEST(ZeroAlloc, SteadyStateHotPathDoesNotAllocate)
{
    if (!common::allocCountingEnabled())
        GTEST_SKIP() << "built without ISOL_COUNT_ALLOCS";

    ScenarioConfig cfg;
    cfg.knob = Knob::kIoCost;
    cfg.duration = msToNs(600);
    cfg.warmup = msToNs(100);
    cfg.check_invariants = false;
    Scenario scenario(cfg);
    for (int i = 0; i < 2; ++i) {
        scenario.addApp(workload::batchApp(strCat("a", i), msToNs(600)),
                        "cga");
        scenario.addApp(workload::batchApp(strCat("b", i), msToNs(600)),
                        "cgb");
    }

    // Let the first 300 ms warm every pool (arena slabs, ring
    // capacities, wheel slots, vector/hash-map capacity), then measure.
    uint64_t ios_at_mark = 0;
    scenario.sim().at(msToNs(300), [&] {
        ios_at_mark = totalIos(scenario);
        common::resetAllocCounters();
    });
    scenario.run();

    common::AllocCounters counters = common::allocCounters();
    uint64_t ios = totalIos(scenario) - ios_at_mark;
    ASSERT_GT(ios, 10000u) << "scenario too small to be meaningful";

    double per_io = static_cast<double>(counters.allocs) /
                    static_cast<double>(ios);
    EXPECT_LT(per_io, 0.01)
        << counters.allocs << " allocations over " << ios
        << " steady-state I/Os (" << counters.bytes << " bytes)";
}

TEST(ZeroAlloc, CgroupChurnReleasesGateState)
{
    if (!common::allocCountingEnabled())
        GTEST_SKIP() << "built without ISOL_COUNT_ALLOCS";

    // 1000 cgroups created, exercised through all four per-cgroup state
    // holders (io.cost, io.max, io.latency, bfq), then removed — in
    // batches, so the arenas see constant churn. Removal listeners must
    // drop every per-group state and the tree must recycle ids: neither
    // gate state nor id capacity may grow with the total number of
    // groups ever created, and heap traffic must balance out.
    sim::Simulator sim;
    cgroup::CgroupTree tree;
    tree.writeFile(tree.root(), "cgroup.subtree_control", "+io");

    blk::IoCostGate cost(sim, 0, tree, [](blk::Request *) {});
    blk::IoMaxGate iomax(sim, 0, tree, [](blk::Request *) {});
    blk::IoLatencyGate iolat(sim, 0, tree, [](blk::Request *) {});
    blk::BfqParams bfq_params;
    bfq_params.slice_idle = 0; // drain synchronously between batches
    blk::Bfq bfq(sim, tree, bfq_params);

    auto exercise = [&](cgroup::Cgroup &cg, blk::Request &req) {
        req.op = OpType::kRead;
        req.size = 4096;
        req.cg = &cg;
        req.blk_enter_time = sim.now();
        req.dispatch_time = sim.now();
        cost.submit(&req);
        iomax.submit(&req);
        iolat.submit(&req);
        iolat.onComplete(&req);
        bfq.insert(&req);
        while (bfq.selectNext() != nullptr) {
        }
    };

    // Warm the arenas with one throwaway batch before measuring, so
    // first-growth reallocations don't count against the churn.
    constexpr int kBatch = 8;
    constexpr int kBatches = 125; // kBatch * kBatches = 1000 groups
    blk::Request req;
    for (int b = 0; b < kBatches + 1; ++b) {
        if (b == 1)
            common::resetAllocCounters();
        std::vector<cgroup::Cgroup *> batch;
        for (int i = 0; i < kBatch; ++i) {
            cgroup::Cgroup &cg =
                tree.createChild(tree.root(), strCat("churn", i));
            tree.attachProcess(cg);
            tree.writeFile(cg, "io.weight", "200");
            exercise(cg, req);
            batch.push_back(&cg);
        }
        for (cgroup::Cgroup *cg : batch) {
            tree.detachProcess(*cg);
            tree.removeGroup(*cg);
        }
    }

    // Every gate dropped every removed group's state...
    EXPECT_EQ(cost.trackedGroups(), 0u);
    EXPECT_EQ(iomax.trackedGroups(), 0u);
    EXPECT_EQ(iolat.trackedGroups(), 0u);
    EXPECT_EQ(bfq.trackedQueues(), 0u);
    // ...the tree recycled ids instead of growing its slot table...
    EXPECT_EQ(tree.liveGroupCount(), 1u);
    EXPECT_LE(tree.idCapacity(), static_cast<uint32_t>(2 * kBatch + 1));

    // ...and the heap balanced: what the churn allocated, removal freed.
    common::AllocCounters counters = common::allocCounters();
    EXPECT_GT(counters.frees, 0u);
    int64_t outstanding = static_cast<int64_t>(counters.allocs) -
                          static_cast<int64_t>(counters.frees);
    EXPECT_LT(outstanding, 64)
        << counters.allocs << " allocs vs " << counters.frees
        << " frees across " << kBatch * kBatches << " churned groups";
}

} // namespace
} // namespace isol::isolbench
