/**
 * @file
 * Zero-allocation steady-state verification.
 *
 * Runs a small fig5-style weighted-fairness scenario (io.cost, two
 * cgroups of batch apps) and counts heap allocations during the second
 * half of the run via the operator-new hook (common/alloc_hook.hh).
 * Once the arenas, ring deques, and the timing-wheel slot pool are warm,
 * the per-I/O hot path — submit, QoS gates, elevator, SSD pipeline,
 * completion — must not touch the heap at all.
 *
 * The assertion is allocations *per simulated I/O*, with a tiny bound
 * rather than literally zero: long-lived containers that grow with
 * simulated time, not with I/O count (time-series bins, histogram
 * buckets, an occasional hash-map rehash), are allowed their rare
 * amortised reallocation.
 */

#include <gtest/gtest.h>

#include "common/alloc_hook.hh"
#include "common/strings.hh"
#include "isolbench/scenario.hh"
#include "workload/app_profiles.hh"

namespace isol::isolbench
{
namespace
{

uint64_t
totalIos(Scenario &scenario)
{
    uint64_t total = 0;
    for (uint32_t i = 0; i < scenario.numApps(); ++i)
        total += scenario.app(i).totalIos();
    return total;
}

TEST(ZeroAlloc, SteadyStateHotPathDoesNotAllocate)
{
    if (!common::allocCountingEnabled())
        GTEST_SKIP() << "built without ISOL_COUNT_ALLOCS";

    ScenarioConfig cfg;
    cfg.knob = Knob::kIoCost;
    cfg.duration = msToNs(600);
    cfg.warmup = msToNs(100);
    cfg.check_invariants = false;
    Scenario scenario(cfg);
    for (int i = 0; i < 2; ++i) {
        scenario.addApp(workload::batchApp(strCat("a", i), msToNs(600)),
                        "cga");
        scenario.addApp(workload::batchApp(strCat("b", i), msToNs(600)),
                        "cgb");
    }

    // Let the first 300 ms warm every pool (arena slabs, ring
    // capacities, wheel slots, vector/hash-map capacity), then measure.
    uint64_t ios_at_mark = 0;
    scenario.sim().at(msToNs(300), [&] {
        ios_at_mark = totalIos(scenario);
        common::resetAllocCounters();
    });
    scenario.run();

    common::AllocCounters counters = common::allocCounters();
    uint64_t ios = totalIos(scenario) - ios_at_mark;
    ASSERT_GT(ios, 10000u) << "scenario too small to be meaningful";

    double per_io = static_cast<double>(counters.allocs) /
                    static_cast<double>(ios);
    EXPECT_LT(per_io, 0.01)
        << counters.allocs << " allocations over " << ios
        << " steady-state I/Os (" << counters.bytes << " bytes)";
}

} // namespace
} // namespace isol::isolbench
