#include "fuzz.hh"

#include <cstdio>
#include <iterator>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "fault/fault.hh"
#include "isolbench/scenario.hh"
#include "isolbench/sweep.hh"
#include "isolbench/validate.hh"
#include "sim/invariants.hh"
#include "workload/adversary.hh"
#include "workload/app_profiles.hh"

namespace isol::fuzz
{

namespace
{

using isolbench::Knob;
using isolbench::Scenario;
using isolbench::ScenarioConfig;

/**
 * Shrunk flash device: small enough that GC-storm adversaries reach
 * steady-state garbage collection within a ~100 ms scenario, big enough
 * that multi-tenant mixes do not trivially serialise on one die.
 */
ssd::SsdConfig
fuzzFlash(Rng &rng)
{
    ssd::SsdConfig cfg = ssd::samsung980ProLike();
    cfg.user_capacity = (64u + 64u * rng.below(3)) * MiB;
    cfg.channels = static_cast<uint32_t>(rng.between(1, 2));
    cfg.dies_per_channel = static_cast<uint32_t>(rng.between(1, 2));
    cfg.pages_per_block = 32;
    cfg.overprovision = 0.25;
    return cfg;
}

/** Random per-cgroup knob settings, in kernel sysfs syntax. */
void
applyKnobSettings(Scenario &scenario,
                  const std::vector<std::string> &groups, Knob knob,
                  Rng &rng)
{
    for (const std::string &name : groups) {
        cgroup::Cgroup &cg = scenario.group(name);
        switch (knob) {
          case Knob::kNone:
          case Knob::kKyber:
            break;
          case Knob::kIoCost:
            scenario.tree().writeFile(
                cg, "io.weight", strCat(rng.between(1, 10000)));
            break;
          case Knob::kBfq:
            scenario.tree().writeFile(
                cg, "io.bfq.weight", strCat(rng.between(1, 1000)));
            break;
          case Knob::kMqDeadline: {
            static constexpr const char *kClasses[] = {
                "idle", "best-effort", "promote-to-rt"};
            scenario.tree().writeFile(cg, "io.prio.class",
                                      kClasses[rng.below(3)]);
            break;
          }
          case Knob::kIoLatency:
            scenario.tree().writeFile(
                cg, "io.latency",
                strCat("259:0 target=", rng.between(100, 2000)));
            break;
          case Knob::kIoMax: {
            // Low enough that the token buckets actually throttle a
            // saturating tenant on the shrunk device.
            uint64_t rbps = (32 + 32 * rng.below(8)) * MiB;
            scenario.tree().writeFile(cg, "io.max",
                                      strCat("259:0 rbps=", rbps,
                                             " wbps=", rbps));
            break;
          }
        }
    }
}

} // namespace

ScenarioOutcome
runOne(uint64_t seed, const FuzzOptions &opts)
{
    ScenarioOutcome out;
    try {
        // Derivation RNG: consumed in a fixed order so one seed always
        // maps to one scenario, independent of run order or pool width.
        Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);

        ScenarioConfig cfg;
        cfg.name = strCat("fuzz-", seed);
        cfg.knob = isolbench::kAllKnobs[rng.below(
            std::size(isolbench::kAllKnobs))];
        // The planted bucket bug lives in the io.max gate, which the
        // scenario only builds for the io.max knob — force it so every
        // mutated seed exercises the corrupted path.
        if (opts.mutate_bucket)
            cfg.knob = Knob::kIoMax;
        cfg.num_cores = static_cast<uint32_t>(rng.between(2, 6));
        cfg.device = fuzzFlash(rng);
        cfg.duration = msToNs(static_cast<int64_t>(rng.between(80, 200)));
        cfg.warmup = cfg.duration / 4;
        cfg.seed = seed;
        cfg.check_invariants = opts.check_invariants;
        cfg.debug_corrupt_iomax_bucket = opts.mutate_bucket;
        if (rng.chance(0.25))
            cfg.faults = fault::profileConfig(fault::Profile::kMedia);
        else if (rng.chance(0.125))
            cfg.faults = fault::profileConfig(fault::Profile::kThermal);

        Scenario scenario(cfg);

        // Tenant 0 is always a latency-critical victim; the rest are a
        // seed-derived mix of saturating batch apps and adversaries.
        std::vector<std::string> groups{"victim"};
        std::vector<uint32_t> apps;
        apps.push_back(scenario.addApp(
            workload::lcApp("victim", cfg.duration), "victim"));
        uint64_t tenants = rng.between(1, 3);
        for (uint64_t t = 0; t < tenants; ++t) {
            std::string group = strCat("cg", t);
            groups.push_back(group);
            if (rng.chance(0.5)) {
                workload::AdversaryKind kind = workload::kAllAdversaries
                    [rng.below(std::size(workload::kAllAdversaries))];
                apps.push_back(scenario.addAdversary(kind, group));
            } else {
                workload::JobSpec spec = workload::batchApp(
                    strCat(group, "-app"), cfg.duration);
                spec.iodepth = static_cast<uint32_t>(
                    uint64_t{1} << rng.between(3, 7));
                if (rng.chance(0.3)) {
                    spec.op = OpType::kWrite;
                    spec.read_fraction = 0.0;
                }
                apps.push_back(scenario.addApp(std::move(spec), group));
            }
        }

        applyKnobSettings(scenario, groups, cfg.knob, rng);
        scenario.run();

        // Canonical payload: integer-dominant facts only, so equality is
        // byte equality and any scheduling nondeterminism shows up.
        std::string payload;
        for (uint32_t i : apps) {
            workload::FioJob &job = scenario.app(i);
            payload += strCat(job.spec().name, ":", job.totalIos(), ":",
                              job.windowBytes(), ":",
                              job.latency().percentile(50), ":",
                              job.latency().percentile(99), ";");
        }
        const fault::DeviceFaultStats &dev = scenario.ssd(0).faultStats();
        const fault::HostFaultStats &host =
            scenario.device(0).faultStats();
        payload += strCat(
            "gc=", scenario.ssd(0).gcPagesMoved(),
            ",retry=", dev.read_retries, ",timeout=", host.timeouts,
            ",requeue=", host.requeues, ",checks=",
            scenario.invariants() != nullptr
                ? scenario.invariants()->checksPerformed()
                : 0);
        out.payload = std::move(payload);
    } catch (const sim::InvariantViolation &e) {
        out.invariant_trip = true;
        out.error = e.what();
    } catch (const isolbench::validate::InvariantViolation &e) {
        out.invariant_trip = true;
        out.error = e.what();
    } catch (const std::exception &e) {
        out.error = e.what();
    }
    return out;
}

std::string
reproLine(uint64_t seed, const FuzzOptions &opts)
{
    std::string line = strCat("isol_fuzz --seeds 1 --seed-base ", seed,
                              " --jobs ", opts.jobs);
    if (opts.check_invariants)
        line += " --check-invariants";
    if (opts.mutate_bucket)
        line += " --mutate bucket";
    if (opts.expect_violations)
        line += " --expect-violations";
    return line;
}

int
runCampaign(const FuzzOptions &opts)
{
    if (opts.seeds == 0) {
        std::fprintf(stderr, "isol_fuzz: nothing to do (--seeds 0)\n");
        return 2;
    }

    // Pass 1+2: every seed twice, same thread, back to back — catches
    // leaked process-global state (rule D4 escapes).
    std::vector<ScenarioOutcome> first(opts.seeds);
    std::vector<ScenarioOutcome> second(opts.seeds);
    for (uint64_t i = 0; i < opts.seeds; ++i) {
        first[i] = runOne(opts.seed_base + i, opts);
        second[i] = runOne(opts.seed_base + i, opts);
    }

    // Pass 3: the whole corpus through the parallel sweep pool — catches
    // cross-thread interference and pool-order dependence.
    // isol: parallel
    std::vector<ScenarioOutcome> pooled =
        isolbench::sweep::map<ScenarioOutcome>(
            opts.seeds,
            [&](size_t i) {
                return runOne(opts.seed_base + i, opts);
            },
            opts.jobs);

    uint64_t divergences = 0;
    uint64_t trips = 0;
    uint64_t errors = 0;
    for (uint64_t i = 0; i < opts.seeds; ++i) {
        uint64_t seed = opts.seed_base + i;
        const ScenarioOutcome &a = first[i];
        bool bad = false;
        if (a.invariant_trip || second[i].invariant_trip ||
            pooled[i].invariant_trip) {
            ++trips;
            if (!opts.expect_violations) {
                bad = true;
                std::fprintf(stderr,
                             "isol_fuzz: seed %llu: invariant trip: %s\n",
                             static_cast<unsigned long long>(seed),
                             (!a.error.empty() ? a.error
                              : !second[i].error.empty()
                                  ? second[i].error
                                  : pooled[i].error)
                                 .c_str());
            }
        } else if (!a.error.empty()) {
            ++errors;
            bad = true;
            std::fprintf(stderr, "isol_fuzz: seed %llu: error: %s\n",
                         static_cast<unsigned long long>(seed),
                         a.error.c_str());
        } else if (a.payload != second[i].payload) {
            ++divergences;
            bad = true;
            std::fprintf(stderr,
                         "isol_fuzz: seed %llu: rerun divergence:\n"
                         "  run1: %s\n  run2: %s\n",
                         static_cast<unsigned long long>(seed),
                         a.payload.c_str(), second[i].payload.c_str());
        } else if (a.payload != pooled[i].payload) {
            ++divergences;
            bad = true;
            std::fprintf(stderr,
                         "isol_fuzz: seed %llu: --jobs %u divergence:\n"
                         "  sequential: %s\n  pooled:     %s\n",
                         static_cast<unsigned long long>(seed), opts.jobs,
                         a.payload.c_str(), pooled[i].payload.c_str());
        }
        if (bad || (opts.expect_violations && !a.invariant_trip)) {
            std::fprintf(stderr, "  repro: %s\n",
                         reproLine(seed, opts).c_str());
        }
    }

    std::printf("isol_fuzz: %llu seeds, %llu divergences, %llu errors, "
                "%llu invariant trips\n",
                static_cast<unsigned long long>(opts.seeds),
                static_cast<unsigned long long>(divergences),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(trips));

    if (opts.expect_violations) {
        if (trips == opts.seeds && divergences == 0 && errors == 0)
            return 0;
        std::fprintf(stderr,
                     "isol_fuzz: expected every seed to trip an "
                     "invariant; only %llu/%llu did\n",
                     static_cast<unsigned long long>(trips),
                     static_cast<unsigned long long>(opts.seeds));
        return 1;
    }
    return divergences == 0 && errors == 0 && trips == 0 ? 0 : 1;
}

} // namespace isol::fuzz
