/**
 * @file
 * isol_fuzz — differential scenario fuzzer for the chaos plane.
 *
 * Each seed deterministically derives one scenario (knob, device shape,
 * tenant mix including adversaries, fault profile, knob settings), runs
 * it three times — twice sequentially and once inside the parallel
 * sweep pool — and fails on any byte divergence between the canonical
 * result payloads or on a runtime invariant trip. Every failure prints
 * a one-line repro command carrying the seed.
 *
 * The mutation mode (`--mutate bucket`) flips the deliberate io.max
 * token-bucket corruption in every scenario and expects the invariant
 * checker to catch it (`--expect-violations`), which keeps the checker
 * itself honest: a checker that stops seeing planted bugs fails CI.
 */

#ifndef ISOL_TOOLS_ISOL_FUZZ_FUZZ_HH
#define ISOL_TOOLS_ISOL_FUZZ_FUZZ_HH

#include <cstdint>
#include <string>

namespace isol::fuzz
{

/** Campaign configuration (mirrors the isol_fuzz CLI flags). */
struct FuzzOptions
{
    uint64_t seeds = 64; //!< number of seeds in the campaign
    uint64_t seed_base = 1; //!< first seed (repro: --seeds 1 --seed-base S)
    uint32_t jobs = 8; //!< sweep pool width for the parallel pass
    bool check_invariants = false; //!< run every scenario checked
    bool mutate_bucket = false; //!< plant the io.max bucket corruption
    bool expect_violations = false; //!< pass iff EVERY seed trips a check
};

/** One run of one seed, reduced to comparable facts. */
struct ScenarioOutcome
{
    /** Canonical integer-dominant result payload (byte-comparable). */
    std::string payload;
    /** what() of a non-invariant exception; "" on success. */
    std::string error;
    /** True when a runtime invariant check threw. */
    bool invariant_trip = false;
};

/** Build and run the scenario derived from `seed` once. Never throws. */
ScenarioOutcome runOne(uint64_t seed, const FuzzOptions &opts);

/** Repro command for `seed` under `opts`. */
std::string reproLine(uint64_t seed, const FuzzOptions &opts);

/**
 * Run the full campaign: every seed twice sequentially plus once under
 * the parallel sweep pool, comparing payloads byte-for-byte. Returns a
 * process exit code (0 = pass) and prints a summary plus repro lines
 * for every failing seed.
 */
int runCampaign(const FuzzOptions &opts);

} // namespace isol::fuzz

#endif // ISOL_TOOLS_ISOL_FUZZ_FUZZ_HH
