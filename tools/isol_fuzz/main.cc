/**
 * @file
 * isol_fuzz CLI — differential scenario fuzzing for the chaos plane.
 *
 * Usage:
 *   isol_fuzz [--seeds N] [--seed-base N] [--jobs N]
 *             [--check-invariants] [--mutate bucket]
 *             [--expect-violations]
 *
 * Exit status: 0 campaign passed, 1 divergence/violation/error,
 * 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "common/strings.hh"
#include "fuzz.hh"

namespace
{

[[noreturn]] void
usageError(const char *prog, const std::string &msg)
{
    std::fprintf(stderr,
                 "%s: %s\n"
                 "usage: %s [--seeds N] [--seed-base N] [--jobs N]"
                 " [--check-invariants] [--mutate bucket]"
                 " [--expect-violations]\n",
                 prog, msg.c_str(), prog);
    std::exit(2);
}

uint64_t
uintValue(int argc, char **argv, int &i)
{
    auto parsed = i + 1 < argc ? isol::parseUint(argv[++i])
                               : std::optional<uint64_t>{};
    if (!parsed)
        usageError(argv[0],
                   isol::strCat("bad or missing value for '", argv[i],
                                "'"));
    return *parsed;
}

} // namespace

int
main(int argc, char **argv)
{
    isol::fuzz::FuzzOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seeds") == 0) {
            opts.seeds = uintValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--seed-base") == 0) {
            opts.seed_base = uintValue(argc, argv, i);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            uint64_t jobs = uintValue(argc, argv, i);
            if (jobs == 0)
                usageError(argv[0], "--jobs must be positive");
            opts.jobs = static_cast<uint32_t>(jobs);
        } else if (std::strcmp(argv[i], "--check-invariants") == 0) {
            opts.check_invariants = true;
        } else if (std::strcmp(argv[i], "--mutate") == 0) {
            if (i + 1 >= argc || std::strcmp(argv[i + 1], "bucket") != 0)
                usageError(argv[0],
                           "--mutate expects 'bucket' (the only planted "
                           "mutation so far)");
            ++i;
            opts.mutate_bucket = true;
        } else if (std::strcmp(argv[i], "--expect-violations") == 0) {
            opts.expect_violations = true;
        } else {
            usageError(argv[0], isol::strCat("unknown argument '",
                                             argv[i], "'"));
        }
    }
    return isol::fuzz::runCampaign(opts);
}
