/**
 * @file
 * Incremental lint cache: line-based text serialization plus the two
 * probe predicates (see cache.hh for the protocol).
 *
 * Format (one record per line; paths go last so embedded spaces in a
 * path never break the fixed fields):
 *
 *   isol-lint-cache 1
 *   tool <digest>
 *   nfiles <N>
 *   F <mtime_ns> <size> <digest> <path>          x N
 *   nfind <N> / nsupp <N> / nunused <N>, each followed by triplets:
 *   R <line> <rule> <path>
 *   M <message>
 *   H <hint>
 */

#include "cache.hh"

#include <fstream>
#include <sstream>

namespace isol_lint
{

namespace
{

void
writeFindings(std::ostream &out, const char *tag,
              const std::vector<Finding> &findings)
{
    out << tag << " " << findings.size() << "\n";
    for (const Finding &f : findings) {
        out << "R " << f.line << " " << f.rule << " " << f.file << "\n"
            << "M " << f.message << "\n"
            << "H " << f.hint << "\n";
    }
}

bool
readFindings(std::istream &in, const char *tag,
             std::vector<Finding> &out)
{
    std::string word;
    size_t count = 0;
    if (!(in >> word) || word != tag || !(in >> count))
        return false;
    in.ignore(1, '\n');
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        Finding f;
        std::string line;
        if (!std::getline(in, line) || line.rfind("R ", 0) != 0)
            return false;
        std::istringstream rec(line.substr(2));
        if (!(rec >> f.line >> f.rule))
            return false;
        rec.ignore(1, ' ');
        std::getline(rec, f.file);
        if (!std::getline(in, line) || line.rfind("M ", 0) != 0)
            return false;
        f.message = line.substr(2);
        if (!std::getline(in, line) || line.rfind("H ", 0) != 0)
            return false;
        f.hint = line.substr(2);
        out.push_back(std::move(f));
    }
    return true;
}

} // namespace

unsigned long long
fnv1a64(const std::string &data)
{
    unsigned long long hash = 14695981039346656037ULL;
    for (unsigned char c : data) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

unsigned long long
toolDigest(const LintOptions &options)
{
    std::string key = "isol-lint-cache-format-1\n";
    for (char family : options.families)
        key += family;
    key += "\n";
    for (const RuleInfo &r : ruleTable()) {
        key += r.id;
        key += "\x1f";
        key += r.summary;
        key += "\x1f";
        key += r.hint;
        key += "\n";
    }
    return fnv1a64(key);
}

bool
loadCache(const std::string &path, LintCache &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    LintCache cache;
    std::string word;
    int version = 0;
    if (!(in >> word >> version) || word != "isol-lint-cache" ||
        version != 1)
        return false;
    if (!(in >> word >> cache.tool_digest) || word != "tool")
        return false;
    size_t nfiles = 0;
    if (!(in >> word >> nfiles) || word != "nfiles")
        return false;
    in.ignore(1, '\n');
    for (size_t i = 0; i < nfiles; ++i) {
        std::string line;
        if (!std::getline(in, line) || line.rfind("F ", 0) != 0)
            return false;
        std::istringstream rec(line.substr(2));
        CacheEntry entry;
        if (!(rec >> entry.mtime_ns >> entry.size >> entry.digest))
            return false;
        rec.ignore(1, ' ');
        std::string file_path;
        std::getline(rec, file_path);
        if (file_path.empty())
            return false;
        cache.files.emplace(std::move(file_path), entry);
    }
    if (!readFindings(in, "nfind", cache.result.findings) ||
        !readFindings(in, "nsupp", cache.result.suppressed) ||
        !readFindings(in, "nunused", cache.result.unused_suppressions))
        return false;
    out = std::move(cache);
    return true;
}

bool
saveCache(const std::string &path, const LintCache &cache)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << "isol-lint-cache 1\n"
        << "tool " << cache.tool_digest << "\n"
        << "nfiles " << cache.files.size() << "\n";
    for (const auto &[file, entry] : cache.files) {
        out << "F " << entry.mtime_ns << " " << entry.size << " "
            << entry.digest << " " << file << "\n";
    }
    writeFindings(out, "nfind", cache.result.findings);
    writeFindings(out, "nsupp", cache.result.suppressed);
    writeFindings(out, "nunused", cache.result.unused_suppressions);
    return static_cast<bool>(out);
}

bool
statHit(const LintCache &cache, unsigned long long tool_digest,
        const std::vector<FileStat> &stats)
{
    if (cache.tool_digest != tool_digest ||
        cache.files.size() != stats.size())
        return false;
    for (const FileStat &s : stats) {
        auto it = cache.files.find(s.path);
        if (it == cache.files.end() ||
            it->second.mtime_ns != s.mtime_ns ||
            it->second.size != s.size)
            return false;
    }
    return true;
}

bool
digestHit(const LintCache &cache, unsigned long long tool_digest,
          const std::vector<FileInput> &inputs)
{
    if (cache.tool_digest != tool_digest ||
        cache.files.size() != inputs.size())
        return false;
    for (const FileInput &input : inputs) {
        auto it = cache.files.find(input.path);
        if (it == cache.files.end() ||
            it->second.digest != fnv1a64(input.content))
            return false;
    }
    return true;
}

LintCache
makeCache(unsigned long long tool_digest,
          const std::vector<FileStat> &stats,
          const std::vector<FileInput> &inputs, const LintResult &result)
{
    LintCache cache;
    cache.tool_digest = tool_digest;
    cache.result = result;
    for (const FileStat &s : stats)
        cache.files[s.path] = {s.mtime_ns, s.size, 0};
    for (const FileInput &input : inputs)
        cache.files[input.path].digest = fnv1a64(input.content);
    return cache;
}

} // namespace isol_lint
