/**
 * @file
 * Incremental lint cache (--cache).
 *
 * The rule families are whole-program (D1 joins container declarations
 * across the set, P1/P2 join the ownership map with include-graph
 * reachability, U1 joins signatures with call sites), so a single
 * changed file can add or remove findings in *other* files. The cache
 * is therefore valid only for the tree as a whole: it stores, per
 * file, (mtime, size, content digest), plus the full lint result of
 * the last run.
 *
 * Probe order on the next run:
 *  1. stat hit — same path set and every (mtime, size) matches: replay
 *     the stored result without reading a single file;
 *  2. digest hit — some mtime moved, but every content digest still
 *     matches (touch without edit): replay, and refresh the stored
 *     mtimes;
 *  3. miss — any content changed: run the rule engine and rewrite the
 *     cache.
 *
 * A tool digest over the rule table and the enabled families keys the
 * whole cache, so upgrading the linter or switching --rules never
 * replays stale results.
 */

#ifndef ISOL_LINT_CACHE_HH
#define ISOL_LINT_CACHE_HH

#include <map>
#include <string>
#include <vector>

#include "lint.hh"

namespace isol_lint
{

/** FNV-1a 64-bit content digest (dependency-free, stable). */
unsigned long long fnv1a64(const std::string &data);

/** Digest keying the cache: rule table + enabled families + format. */
unsigned long long toolDigest(const LintOptions &options);

/** What the filesystem says about one input, before reading it. */
struct FileStat
{
    std::string path; //!< display path (matches FileInput::path)
    long long mtime_ns = 0;
    unsigned long long size = 0;
};

struct CacheEntry
{
    long long mtime_ns = 0;
    unsigned long long size = 0;
    unsigned long long digest = 0;
};

struct LintCache
{
    unsigned long long tool_digest = 0;
    std::map<std::string, CacheEntry> files;
    LintResult result;
};

/** Parse a cache file; false (and `out` untouched) on absence or any
 *  format mismatch — a corrupt cache is simply a miss. */
bool loadCache(const std::string &path, LintCache &out);

/** Atomically-enough (write + rename not needed for a ctest-local
 *  artifact) serialize the cache; false on I/O error. */
bool saveCache(const std::string &path, const LintCache &cache);

/** Probe 1: true when the stored tree matches `stats` exactly by
 *  (path set, mtime, size). No file content needed. */
bool statHit(const LintCache &cache, unsigned long long tool_digest,
             const std::vector<FileStat> &stats);

/** Probe 2: true when the stored tree matches `inputs` exactly by
 *  (path set, content digest). */
bool digestHit(const LintCache &cache, unsigned long long tool_digest,
               const std::vector<FileInput> &inputs);

/** Build a fresh cache from the run that just happened. */
LintCache makeCache(unsigned long long tool_digest,
                    const std::vector<FileStat> &stats,
                    const std::vector<FileInput> &inputs,
                    const LintResult &result);

} // namespace isol_lint

#endif // ISOL_LINT_CACHE_HH
