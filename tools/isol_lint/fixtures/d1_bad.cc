// isol-lint fixture: D1 known-bad — iterating pointer-keyed unordered
// containers (the PR 2 Bfq/IoCostGate/IoLatencyGate bug class).
#include <unordered_map>
#include <unordered_set>

struct Cgroup
{
    int weight;
};

struct Gate
{
    std::unordered_map<const Cgroup *, int> vtimes_;
    std::unordered_set<Cgroup *> active_;

    int
    sumWeights()
    {
        int sum = 0;
        for (auto &entry : vtimes_) // address-order visit
            sum += entry.second;
        for (auto it = active_.begin(); it != active_.end(); ++it)
            ++sum;
        return sum;
    }
};
