// isol-lint fixture: D1 known-good — pointer-keyed map kept as a
// documented lookup-only index; iteration goes through a creation-order
// deque, and value-keyed unordered maps may be iterated freely.
#include <cstdint>
#include <deque>
#include <unordered_map>

struct Cgroup
{
    int weight;
};

struct Gate
{
    // isol-lint: allow(D1): lookup-only index; iteration uses states_
    std::unordered_map<const Cgroup *, size_t> state_index_;
    std::deque<int> states_;
    std::unordered_map<uint64_t, int> by_id_;

    int
    sum(const Cgroup *cg)
    {
        int total = 0;
        for (int v : states_) // creation-order deque
            total += v;
        for (auto &entry : by_id_) // value keys, not addresses
            total += entry.second;
        auto it = state_index_.find(cg); // lookup is fine
        return it != state_index_.end() ? total + 1 : total;
    }
};
