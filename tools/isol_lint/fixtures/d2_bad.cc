// isol-lint fixture: D2 known-bad — wall clock and ambient entropy in
// simulation code.
#include <chrono>
#include <cstdlib>
#include <random>

double
wallSeconds()
{
    auto now = std::chrono::steady_clock::now(); // wall clock
    std::srand(42); // ambient entropy seed
    int r = std::rand(); // libc generator
    std::random_device rd; // hardware entropy
    (void)now;
    return static_cast<double>(r) + static_cast<double>(rd());
}
