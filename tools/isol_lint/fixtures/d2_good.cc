// isol-lint fixture: D2 known-good — seeded generator state and member
// functions that merely share a libc name.
#include <cstdint>

struct Rng
{
    uint64_t s;

    uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s;
    }
};

struct Timer
{
    uint64_t ticks = 0;

    // A member named time() is not libc time().
    uint64_t time() const { return ticks; }
};

uint64_t
draw(Rng &rng, const Timer &timer)
{
    return rng.next() + timer.time();
}
