// isol-lint fixture: D3 known-bad — comparator ordering by raw pointer
// value, so sorted order depends on heap layout.
#include <algorithm>
#include <set>
#include <vector>

struct Req
{
    int id;
};

void
sortByAddress(std::vector<const Req *> &reqs)
{
    std::sort(reqs.begin(), reqs.end(),
              [](const Req *a, const Req *b) { return a < b; });
}

std::set<Req *, std::less<Req *>> by_address_set();
