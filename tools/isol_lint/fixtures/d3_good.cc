// isol-lint fixture: D3 known-good — comparator ordering by a stable
// field; pointer equality (identity) is fine too.
#include <algorithm>
#include <vector>

struct Req
{
    int id;
};

void
sortById(std::vector<const Req *> &reqs)
{
    std::sort(reqs.begin(), reqs.end(),
              [](const Req *a, const Req *b) { return a->id < b->id; });
}

bool
sameRequest(const Req *a, const Req *b)
{
    return a == b; // identity comparison carries no ordering
}
