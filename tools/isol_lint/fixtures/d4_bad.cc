// isol-lint fixture: D4 known-bad — mutable namespace-scope and static
// state, which sweep workers would share across scenario runs.
#include <atomic>
#include <cstdint>
#include <vector>

namespace sim
{

int g_call_count = 0; // plain mutable global
static std::vector<int> g_cache; // static global collection
std::atomic<uint32_t> g_jobs{0}; // atomics are still shared state
thread_local bool t_in_worker = false; // per-thread, not per-run

int
bump()
{
    static int counter = 0; // function-local static survives runs
    return ++counter + g_call_count;
}

} // namespace sim
