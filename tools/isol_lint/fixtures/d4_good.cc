// isol-lint fixture: D4 known-good — constants at namespace scope and
// per-instance state owned by the scenario.
#include <cstdint>

namespace sim
{

constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;
const int kTableSize = 64;
static constexpr double kScale = 1.5;

struct Counters
{
    uint64_t events = 0; // instance state: one per scenario
};

uint64_t
bump(Counters &c)
{
    uint64_t local = c.events + kSeedMix % kTableSize;
    c.events = local;
    return local;
}

} // namespace sim
