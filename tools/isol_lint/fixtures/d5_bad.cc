// isol-lint fixture: D5 known-bad — floating-point accumulation into a
// captured variable from inside a parallel region; the summation order
// (and thus the rounded result) depends on worker scheduling.
#include <cstddef>
#include <vector>

double
sweepSum(const std::vector<double> &samples)
{
    double total = 0.0;
    // isol: parallel
    auto worker = [&](size_t i) {
        total += samples[i]; // cross-worker accumulation
    };
    for (size_t i = 0; i < samples.size(); ++i)
        worker(i);
    return total;
}
