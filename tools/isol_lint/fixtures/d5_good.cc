// isol-lint fixture: D5 known-good — workers accumulate into
// region-local variables and write per-index slots; the fold over
// slots happens after the parallel section, in index order.
#include <cstddef>
#include <vector>

double
sweepSum(const std::vector<double> &samples)
{
    std::vector<double> partial(samples.size(), 0.0);
    // isol: parallel
    auto worker = [&](size_t i) {
        double local = 0.0; // region-local accumulator
        local += samples[i];
        partial[i] = local; // slot write keyed by index
    };
    for (size_t i = 0; i < samples.size(); ++i)
        worker(i);

    double total = 0.0;
    for (double p : partial)
        total += p; // index-ordered fold, outside the region
    return total;
}
