// isol-lint fixture: P1 known-bad — one shard reaching into another
// shard's mutable state. The ownership map comes from the domain
// annotations; the reference crosses it without a shared() sanction.
// isol: domain(shard_a)

namespace shard_a
{
int inflight_tokens = 0; // isol-lint: allow(D4): fixture global
}

// isol: domain(shard_b)
namespace shard_b
{

int
steal()
{
    // Cross-domain mutation: shard_b must not touch shard_a's state.
    return ++shard_a::inflight_tokens;
}

} // namespace shard_b
