// isol-lint fixture: P1 known-good — the cross-domain state is the
// sanctioned barrier/merge coordination point, declared shared().
// isol: domain(shard_a)

namespace shard_a
{
// isol: shared(barrier epoch, advanced only at the merge point)
int barrier_epoch = 0; // isol-lint: allow(D4): fixture global
}

// isol: domain(shard_b)
namespace shard_b
{

int
observe()
{
    return shard_a::barrier_epoch;
}

} // namespace shard_b
