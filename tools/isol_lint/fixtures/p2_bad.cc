// isol-lint fixture: P2 known-bad — a deferred callback that
// default-captures by reference inside a domain. The callback outlives
// the frame and can run on another shard after a migration.
// isol: domain(shard_a)
#include <functional>

struct Sched
{
    void after(long long delay, std::function<void()> cb);
};

int
arm(Sched &sched)
{
    int completions = 0;
    long long wait_ns = 0;
    sched.after(wait_ns, [&] { ++completions; });
    return completions;
}
