// isol-lint fixture: P2 known-good — deferred callbacks capture by
// value (or [this] for the owning component), so nothing dangles when
// the callback migrates across the shard boundary.
// isol: domain(shard_a)
#include <functional>

struct Sched
{
    void after(long long delay, std::function<void()> cb);
};

struct Worker
{
    Sched sched;
    int completions = 0;

    void
    arm(int token)
    {
        long long wait_ns = 0;
        sched.after(wait_ns, [this, token] { completions += token; });
    }
};
