// isol-lint fixture: P3 known-bad — container push order inside a
// parallel region depends on worker interleaving, so the element order
// (and everything derived from it) differs run to run.
#include <vector>

void
collect(int n, std::vector<int> &sink)
{
    std::vector<int> out;
    // isol: parallel
    {
        for (int i = 0; i < n; ++i)
            out.push_back(i * i);
    }
    sink = out;
}
