// isol-lint fixture: P3 known-good — pre-sized per-index slots make
// the parallel write order irrelevant, and the one sanctioned append
// is explicitly merge-ordered (the merge layer sorts by index).
#include <vector>

void
collect(int n, std::vector<int> &sink)
{
    std::vector<int> out(static_cast<size_t>(n));
    std::vector<int> audit;
    // isol: parallel
    {
        for (int i = 0; i < n; ++i) {
            out[static_cast<size_t>(i)] = i * i;
            // isol: merge-ordered
            audit.push_back(i);
        }
    }
    sink = out;
}
