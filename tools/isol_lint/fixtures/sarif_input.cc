// isol-lint fixture: SARIF golden-file input — one open D2 finding
// and one suppressed finding (rendered with an inSource suppression).
long
now_wall()
{
    return time(nullptr);
}

long
profile_wall()
{
    return clock(); // isol-lint: allow(D2): profiling fixture
}
