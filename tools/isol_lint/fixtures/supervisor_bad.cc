// isol-lint fixture: D2 known-bad — a sweep-supervisor-style watchdog
// and retry jitter reading the wall clock and ambient entropy directly
// instead of going through the sanctioned sweep::monotonicMs() site and
// the seeded Rng.
#include <chrono>
#include <cstdlib>
#include <random>

bool
watchdogExpired(double deadline_ms)
{
    auto now = std::chrono::steady_clock::now(); // wall clock
    double now_ms =
        std::chrono::duration<double, std::milli>(now.time_since_epoch())
            .count();
    return now_ms > deadline_ms;
}

double
retryJitterMs(double base_ms)
{
    std::random_device rd; // hardware entropy: not replayable
    double u = static_cast<double>(rd()) / 4294967295.0;
    return base_ms * (0.5 + 0.5 * u) +
           static_cast<double>(std::rand() % 3); // libc generator
}
