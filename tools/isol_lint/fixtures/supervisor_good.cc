// isol-lint fixture: D2 known-good — the same watchdog/backoff logic
// with wall time injected from the sanctioned monotonic clock and the
// jitter drawn from a seeded generator, so replays are byte-identical.
#include <cstdint>

struct SeededRng
{
    uint64_t s;

    double
    uniform()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>(s >> 11) * 0x1.0p-53;
    }
};

// The caller samples sweep::monotonicMs() (the one allow(D2) site) and
// hands the value in; this file never touches the clock itself.
bool
watchdogExpired(double now_ms, double deadline_ms)
{
    return now_ms > deadline_ms;
}

double
retryJitterMs(double base_ms, uint64_t seed, uint64_t task,
              uint64_t attempt)
{
    SeededRng rng{seed + task * 0x9E3779B9ull + attempt};
    return base_ms * (0.5 + 0.5 * rng.uniform());
}
