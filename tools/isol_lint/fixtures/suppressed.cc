// isol-lint fixture: suppression syntax — both stand-alone (covers the
// next line) and trailing (covers its own line) allow() comments.
#include <chrono>
#include <cstdlib>

namespace profiling
{

double
nowMs()
{
    // isol-lint: allow(D2): profiling clock, stderr-only, never sim state
    auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double, std::milli>(t).count();
}

int
seedLegacy()
{
    std::srand(7); // isol-lint: allow(D2): exercising same-line allows
    return 0;
}

} // namespace profiling
