// isol-lint fixture: U1 known-bad — a raw integer literal flowing into
// a SimTime parameter (is that 500 ns? us? ms?) and a _us value bound
// to an _ns parameter without a conversion.
using SimTime = long long;

struct Sim
{
    void at(SimTime when_ns, int event);
};

void
drive(Sim &sim, long long budget_us)
{
    sim.at(500, 1);
    sim.at(budget_us, 2);
}
