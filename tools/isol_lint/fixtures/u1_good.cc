// isol-lint fixture: U1 known-good — time literals are wrapped in the
// unit helpers and the _us value is converted at the boundary, so the
// unit is explicit at every call site.
using SimTime = long long;

constexpr SimTime
nsFromNs(long long value)
{
    return value;
}

constexpr SimTime
nsFromUs(long long value)
{
    return value * 1000;
}

struct Sim
{
    void at(SimTime when_ns, int event);
};

void
drive(Sim &sim, long long budget_us)
{
    sim.at(nsFromNs(500), 1);
    sim.at(nsFromUs(budget_us), 2);
}
