/**
 * @file
 * Hand-rolled C++ lexer for isol-lint.
 *
 * Produces identifiers, numbers, string/char literals, punctuation, and
 * comments with line/offset information. Preprocessor directives are
 * consumed without emitting tokens (their text — include paths, macro
 * bodies on one logical line — would only confuse the rules).
 */

#include "lint.hh"

#include <array>
#include <cctype>

namespace isol_lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Two-character operators recognised as single tokens. `<=`/`>=` stay
 * merged so D3 sees one comparison token; `<<`/`>>` stay merged so
 * stream inserts never look like comparisons (template scans treat a
 * `>>` as two closing angles).
 */
constexpr std::array<const char *, 19> kTwoCharPuncts = {
    "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "==",
    "!=", "<=", ">=", "&&", "||", "<<", ">>", "|=", "&=",
};

} // namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> out;
    const size_t n = src.size();
    size_t i = 0;
    int line = 1;
    bool at_line_start = true;

    auto peek = [&](size_t ahead) -> char {
        return i + ahead < n ? src[i + ahead] : '\0';
    };

    while (i < n) {
        const char c = src[i];

        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            ++i;
            continue;
        }

        // Preprocessor directive: consume the logical line (with \-
        // continuations) without emitting tokens.
        if (c == '#' && at_line_start) {
            while (i < n) {
                if (src[i] == '\\' && peek(1) == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (src[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        at_line_start = false;

        // Line comment.
        if (c == '/' && peek(1) == '/') {
            size_t start = i;
            while (i < n && src[i] != '\n')
                ++i;
            out.push_back({TokKind::kComment, src.substr(start, i - start),
                           line, start});
            continue;
        }
        // Block comment.
        if (c == '/' && peek(1) == '*') {
            size_t start = i;
            int start_line = line;
            i += 2;
            while (i < n && !(src[i] == '*' && peek(1) == '/')) {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            if (i < n)
                i += 2;
            out.push_back({TokKind::kComment, src.substr(start, i - start),
                           start_line, start});
            continue;
        }

        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"') {
            size_t start = i;
            int start_line = line;
            i += 2;
            std::string delim;
            while (i < n && src[i] != '(')
                delim += src[i++];
            std::string close = ")" + delim + "\"";
            size_t end = src.find(close, i);
            if (end == std::string::npos) {
                i = n;
            } else {
                for (size_t k = i; k < end; ++k) {
                    if (src[k] == '\n')
                        ++line;
                }
                i = end + close.size();
            }
            out.push_back({TokKind::kString, src.substr(start, i - start),
                           start_line, start});
            continue;
        }

        // String / char literal with escapes.
        if (c == '"' || c == '\'') {
            size_t start = i;
            ++i;
            while (i < n && src[i] != c) {
                if (src[i] == '\\' && i + 1 < n)
                    ++i;
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            if (i < n)
                ++i;
            out.push_back({c == '"' ? TokKind::kString : TokKind::kChar,
                           src.substr(start, i - start), line, start});
            continue;
        }

        // Identifier / keyword.
        if (isIdentStart(c)) {
            size_t start = i;
            while (i < n && isIdentChar(src[i]))
                ++i;
            out.push_back({TokKind::kIdent, src.substr(start, i - start),
                           line, start});
            continue;
        }

        // Number (incl. hex, exponents, digit separators, suffixes).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            size_t start = i;
            while (i < n &&
                   (isIdentChar(src[i]) || src[i] == '.' || src[i] == '\'' ||
                    ((src[i] == '+' || src[i] == '-') && i > start &&
                     (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                      src[i - 1] == 'p' || src[i - 1] == 'P'))))
                ++i;
            out.push_back({TokKind::kNumber, src.substr(start, i - start),
                           line, start});
            continue;
        }

        // Punctuation: prefer a known two-char operator.
        if (i + 1 < n) {
            const std::string two = src.substr(i, 2);
            bool merged = false;
            for (const char *op : kTwoCharPuncts) {
                if (two == op) {
                    out.push_back({TokKind::kPunct, two, line, i});
                    i += 2;
                    merged = true;
                    break;
                }
            }
            if (merged)
                continue;
        }
        out.push_back({TokKind::kPunct, std::string(1, c), line, i});
        ++i;
    }
    return out;
}

std::vector<std::string>
scanIncludes(const std::string &src)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < src.size()) {
        size_t eol = src.find('\n', pos);
        if (eol == std::string::npos)
            eol = src.size();
        size_t p = pos;
        while (p < eol && (src[p] == ' ' || src[p] == '\t'))
            ++p;
        if (p < eol && src[p] == '#') {
            ++p;
            while (p < eol && (src[p] == ' ' || src[p] == '\t'))
                ++p;
            if (src.compare(p, 7, "include") == 0) {
                size_t open = src.find('"', p + 7);
                if (open != std::string::npos && open < eol) {
                    size_t close = src.find('"', open + 1);
                    if (close != std::string::npos && close < eol)
                        out.push_back(
                            src.substr(open + 1, close - open - 1));
                }
            }
        }
        pos = eol + 1;
    }
    return out;
}

} // namespace isol_lint
