/**
 * @file
 * isol-lint: determinism and simulation-hygiene static analysis.
 *
 * A dependency-free (no libclang) token-level checker for the hazard
 * classes that break byte-identical replay of the simulator:
 *
 *   D1  pointer-keyed unordered containers: iterating one visits
 *       elements in heap-address order, which differs run to run.
 *       Declarations are flagged too so lookup-only use is an explicit,
 *       documented decision (`allow(D1)` on the declaration).
 *   D2  wall-clock / ambient-entropy calls outside src/common/rng.hh
 *       (std::chrono clocks, time(), rand(), std::random_device, ...).
 *   D3  pointer-value ordering comparisons inside comparators
 *       (sort keys built from addresses reorder across runs).
 *   D4  mutable namespace-scope or static state in src/ (breaks the
 *       shared-nothing contract of the parallel sweep workers).
 *   D5  float/double accumulation into state declared outside a
 *       `// isol: parallel` region (summation order then depends on
 *       worker scheduling; fold per-index partials afterwards).
 *
 * Findings are suppressed with `// isol-lint: allow(D2): reason` on the
 * offending line, or on a line of its own above it (a stand-alone
 * suppression covers everything through the next line containing code,
 * so multi-line justifications work).
 *
 * The checker is heuristic by design: it tokenizes real C++ (comments,
 * strings, raw strings, preprocessor lines) but does not build an AST,
 * so rules favour the concrete idioms used in this repository over
 * full-language generality. Every rule ships with known-bad and
 * known-good fixtures under tools/isol_lint/fixtures/.
 */

#ifndef ISOL_LINT_LINT_HH
#define ISOL_LINT_LINT_HH

#include <string>
#include <vector>

namespace isol_lint
{

/** Token classes produced by the lexer. */
enum class TokKind
{
    kIdent,
    kNumber,
    kString,
    kChar,
    kPunct,
    kComment,
};

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0; //!< 1-based line of the token's first character
    size_t offset = 0; //!< byte offset into the source
};

/**
 * Tokenize C++ source. Comments are kept (rules D5 and suppression
 * handling read them); preprocessor lines are skipped entirely.
 */
std::vector<Token> tokenize(const std::string &source);

/** One rule violation (or suppressed would-be violation). */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule; //!< "D1".."D5"
    std::string message;
    std::string hint; //!< fix-it guidance
};

/** A file to lint: `path` drives rule scoping, `content` is the text. */
struct FileInput
{
    std::string path;
    std::string content;
};

struct LintResult
{
    std::vector<Finding> findings; //!< unsuppressed, sorted (file, line)
    std::vector<Finding> suppressed; //!< silenced by allow() comments
};

/**
 * Lint a set of files together. D1 is cross-file: container declarations
 * collected anywhere in the set are matched against iteration in every
 * file (headers declare, .cc files iterate).
 *
 * Path scoping: D4 only fires for paths containing a `src/` component;
 * D2 exempts paths ending in `common/rng.hh`; everything else applies
 * to all inputs.
 */
LintResult lintFiles(const std::vector<FileInput> &files);

/** Static description of one rule (--list-rules, docs). */
struct RuleInfo
{
    const char *id;
    const char *summary;
    const char *hint;
};

/** All rules, in id order. */
const std::vector<RuleInfo> &ruleTable();

} // namespace isol_lint

#endif // ISOL_LINT_LINT_HH
