/**
 * @file
 * isol-lint: determinism, sharding-safety, and unit-safety static
 * analysis for the simulator tree.
 *
 * A dependency-free (no libclang) token-level checker organised in
 * three rule families:
 *
 * Determinism (D) — hazards that break byte-identical replay:
 *   D1  pointer-keyed unordered containers: iterating one visits
 *       elements in heap-address order, which differs run to run.
 *       Declarations are flagged too so lookup-only use is an explicit,
 *       documented decision (`allow(D1)` on the declaration).
 *   D2  wall-clock / ambient-entropy calls outside src/common/rng.hh
 *       (std::chrono clocks, time(), rand(), std::random_device, ...).
 *   D3  pointer-value ordering comparisons inside comparators
 *       (sort keys built from addresses reorder across runs).
 *   D4  mutable namespace-scope or static state in src/ (breaks the
 *       shared-nothing contract of the parallel sweep workers).
 *   D5  float/double accumulation into state declared outside a
 *       `// isol: parallel` region (summation order then depends on
 *       worker scheduling; fold per-index partials afterwards).
 *
 * Sharding safety (P) — whole-program rules over the cross-TU include
 * graph and the `// isol: domain(<name>)` ownership map; they police
 * the invariants a domain-sharded conservative DES needs:
 *   P1  mutable namespace-scope state owned by one domain referenced
 *       from another domain (reachability over the include graph);
 *       sanctioned cross-domain state carries `// isol: shared(why)`.
 *   P2  deferred callbacks (arguments to at/after/schedule/defer/post)
 *       that default-capture by reference, or explicitly by-reference
 *       capture another domain's state — the callback can outlive its
 *       frame and migrate across the shard boundary.
 *   P3  non-commutative accumulation (container push order; float
 *       compound assignment in domain regions) into state declared
 *       outside a `// isol: parallel` or `// isol: domain` region,
 *       without a `// isol: merge-ordered` marker. Generalises D5.
 *
 * Unit safety (U) — silent-corruption unit mixups:
 *   U1  raw non-zero integer literals flowing into SimTime-typed
 *       parameters (wrap in nsToNs()/usToNs()/msToNs() so the unit is
 *       explicit), and unit-suffix mismatches between an argument
 *       identifier and the parameter it binds to (`_us` into `_ns`,
 *       `_bytes` into `_sectors`, ... across the blk/ssd boundary).
 *
 * Annotation grammar (machine-read comments):
 *   // isol: domain(<name>)    before the first code token: the whole
 *                              file belongs to <name>; later in the
 *                              file: the next brace block does.
 *   // isol: parallel          next brace block runs on sweep workers.
 *   // isol: shared(<why>)     this declaration is sanctioned
 *                              cross-domain state (barrier/merge
 *                              layer); P1/P2 skip it.
 *   // isol: merge-ordered     this accumulation's merge order is
 *                              explicitly managed; P3 skips it.
 *
 * Findings are suppressed with `// isol-lint: allow(D2): reason` on the
 * offending line, or on a line of its own above it (a stand-alone
 * suppression covers everything through the next line containing code,
 * so multi-line justifications work). Suppressions that no longer
 * match any finding are reported by --report-unused-suppressions.
 *
 * The checker is heuristic by design: it tokenizes real C++ (comments,
 * strings, raw strings, preprocessor lines) but does not build an AST,
 * so rules favour the concrete idioms used in this repository over
 * full-language generality. Every rule ships with known-bad and
 * known-good fixtures under tools/isol_lint/fixtures/.
 */

#ifndef ISOL_LINT_LINT_HH
#define ISOL_LINT_LINT_HH

#include <set>
#include <string>
#include <vector>

namespace isol_lint
{

/** Token classes produced by the lexer. */
enum class TokKind
{
    kIdent,
    kNumber,
    kString,
    kChar,
    kPunct,
    kComment,
};

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0; //!< 1-based line of the token's first character
    size_t offset = 0; //!< byte offset into the source
};

/**
 * Tokenize C++ source. Comments are kept (rules D5/P3 and suppression
 * handling read them); preprocessor lines are skipped entirely.
 */
std::vector<Token> tokenize(const std::string &source);

/**
 * Extract quoted `#include "..."` targets from a source file (angle
 * includes are system headers and never part of the project graph).
 * Line-based: a directive commented out with `//` is not reported.
 */
std::vector<std::string> scanIncludes(const std::string &source);

/** One rule violation (or suppressed would-be violation). */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule; //!< "D1".."D5", "P1".."P3", "U1"
    std::string message;
    std::string hint; //!< fix-it guidance
};

/** A file to lint: `path` drives rule scoping, `content` is the text. */
struct FileInput
{
    std::string path;
    std::string content;
};

struct LintResult
{
    std::vector<Finding> findings; //!< unsuppressed, sorted (file, line)
    std::vector<Finding> suppressed; //!< silenced by allow() comments
    /** allow() comments that matched nothing; line = the comment's
     *  line, rule = the allowed rule id, for the staleness gate. */
    std::vector<Finding> unused_suppressions;
};

/** Rule-family selection and execution knobs for lintFiles(). */
struct LintOptions
{
    /** Enabled families ('D', 'P', 'U'); default all. */
    std::set<char> families = {'D', 'P', 'U'};
    /** Worker threads for the per-file passes; 0/1 = serial. The
     *  finding order is path-sorted and identical for any value. */
    unsigned jobs = 1;
};

/**
 * Lint a set of files together. Cross-file state:
 *  - D1: container declarations collected anywhere in the set are
 *    matched against iteration in every file.
 *  - P1/P2: an ownership map (mutable namespace-scope declarations in
 *    `// isol: domain(...)` files) is joined with an include-graph
 *    reachability relation built from the files' quoted includes.
 *  - U1: function signatures with SimTime-typed or unit-suffixed
 *    parameters collected set-wide are matched against call sites.
 *
 * Path scoping: D4 only fires for paths containing a `src/` component;
 * D2 exempts paths ending in `common/rng.hh`; everything else applies
 * to all inputs.
 */
LintResult lintFiles(const std::vector<FileInput> &files,
                     const LintOptions &options);
LintResult lintFiles(const std::vector<FileInput> &files);

/** Static description of one rule (--list-rules, docs, SARIF). */
struct RuleInfo
{
    const char *id;
    const char *summary;
    const char *hint;
};

/** All rules, in id order (D1..D5, P1..P3, U1). */
const std::vector<RuleInfo> &ruleTable();

/**
 * Render a lint result as a deterministic SARIF 2.1.0 document (GitHub
 * code scanning ingests this via codeql-action/upload-sarif).
 * Suppressed findings are included with an in-source suppression so
 * the dashboard shows them as reviewed, not open.
 */
std::string sarifReport(const LintResult &result);

} // namespace isol_lint

#endif // ISOL_LINT_LINT_HH
